file(REMOVE_RECURSE
  "CMakeFiles/aptc.dir/aptc.cpp.o"
  "CMakeFiles/aptc.dir/aptc.cpp.o.d"
  "aptc"
  "aptc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
