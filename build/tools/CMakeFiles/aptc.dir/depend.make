# Empty dependencies file for aptc.
# This may be replaced when dependencies are built.
