# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(aptc_prove_figure3 "/root/repo/build/tools/aptc" "prove" "/root/repo/tools/samples/leaf_linked_tree.axioms" "L.L.N" "L.R.N")
set_tests_properties(aptc_prove_figure3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aptc_prove_theoremT "/root/repo/build/tools/aptc" "prove" "/root/repo/tools/samples/sparse_matrix.axioms" "ncolE+" "nrowE+.ncolE+")
set_tests_properties(aptc_prove_theoremT PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aptc_prove_unprovable "/root/repo/build/tools/aptc" "prove" "/root/repo/tools/samples/leaf_linked_tree.axioms" "L.L.N.N" "L.R.N")
set_tests_properties(aptc_prove_unprovable PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aptc_loops "/root/repo/build/tools/aptc" "loops" "/root/repo/tools/samples/worklist.apt")
set_tests_properties(aptc_loops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aptc_deps "/root/repo/build/tools/aptc" "deps" "/root/repo/tools/samples/worklist.apt" "S" "T")
set_tests_properties(aptc_deps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aptc_usage "/root/repo/build/tools/aptc" "frobnicate")
set_tests_properties(aptc_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aptc_dump "/root/repo/build/tools/aptc" "dump" "/root/repo/tools/samples/worklist.apt")
set_tests_properties(aptc_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
