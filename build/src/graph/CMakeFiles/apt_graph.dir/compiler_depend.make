# Empty compiler generated dependencies file for apt_graph.
# This may be replaced when dependencies are built.
