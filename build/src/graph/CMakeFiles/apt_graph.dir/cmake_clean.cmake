file(REMOVE_RECURSE
  "CMakeFiles/apt_graph.dir/AxiomChecker.cpp.o"
  "CMakeFiles/apt_graph.dir/AxiomChecker.cpp.o.d"
  "CMakeFiles/apt_graph.dir/GraphBuilders.cpp.o"
  "CMakeFiles/apt_graph.dir/GraphBuilders.cpp.o.d"
  "CMakeFiles/apt_graph.dir/HeapGraph.cpp.o"
  "CMakeFiles/apt_graph.dir/HeapGraph.cpp.o.d"
  "libapt_graph.a"
  "libapt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
