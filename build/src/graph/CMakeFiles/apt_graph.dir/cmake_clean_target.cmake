file(REMOVE_RECURSE
  "libapt_graph.a"
)
