file(REMOVE_RECURSE
  "libapt_core.a"
)
