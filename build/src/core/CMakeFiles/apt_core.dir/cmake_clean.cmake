file(REMOVE_RECURSE
  "CMakeFiles/apt_core.dir/AccessPath.cpp.o"
  "CMakeFiles/apt_core.dir/AccessPath.cpp.o.d"
  "CMakeFiles/apt_core.dir/Axiom.cpp.o"
  "CMakeFiles/apt_core.dir/Axiom.cpp.o.d"
  "CMakeFiles/apt_core.dir/DepTest.cpp.o"
  "CMakeFiles/apt_core.dir/DepTest.cpp.o.d"
  "CMakeFiles/apt_core.dir/Prelude.cpp.o"
  "CMakeFiles/apt_core.dir/Prelude.cpp.o.d"
  "CMakeFiles/apt_core.dir/ProofChecker.cpp.o"
  "CMakeFiles/apt_core.dir/ProofChecker.cpp.o.d"
  "CMakeFiles/apt_core.dir/Prover.cpp.o"
  "CMakeFiles/apt_core.dir/Prover.cpp.o.d"
  "CMakeFiles/apt_core.dir/Shapes.cpp.o"
  "CMakeFiles/apt_core.dir/Shapes.cpp.o.d"
  "libapt_core.a"
  "libapt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
