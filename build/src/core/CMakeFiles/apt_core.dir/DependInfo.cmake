
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AccessPath.cpp" "src/core/CMakeFiles/apt_core.dir/AccessPath.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/AccessPath.cpp.o.d"
  "/root/repo/src/core/Axiom.cpp" "src/core/CMakeFiles/apt_core.dir/Axiom.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/Axiom.cpp.o.d"
  "/root/repo/src/core/DepTest.cpp" "src/core/CMakeFiles/apt_core.dir/DepTest.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/DepTest.cpp.o.d"
  "/root/repo/src/core/Prelude.cpp" "src/core/CMakeFiles/apt_core.dir/Prelude.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/Prelude.cpp.o.d"
  "/root/repo/src/core/ProofChecker.cpp" "src/core/CMakeFiles/apt_core.dir/ProofChecker.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/ProofChecker.cpp.o.d"
  "/root/repo/src/core/Prover.cpp" "src/core/CMakeFiles/apt_core.dir/Prover.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/Prover.cpp.o.d"
  "/root/repo/src/core/Shapes.cpp" "src/core/CMakeFiles/apt_core.dir/Shapes.cpp.o" "gcc" "src/core/CMakeFiles/apt_core.dir/Shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regex/CMakeFiles/apt_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/apt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
