file(REMOVE_RECURSE
  "CMakeFiles/apt_parallel.dir/ExecutionModel.cpp.o"
  "CMakeFiles/apt_parallel.dir/ExecutionModel.cpp.o.d"
  "CMakeFiles/apt_parallel.dir/ThreadPool.cpp.o"
  "CMakeFiles/apt_parallel.dir/ThreadPool.cpp.o.d"
  "libapt_parallel.a"
  "libapt_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
