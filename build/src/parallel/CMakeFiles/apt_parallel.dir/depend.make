# Empty dependencies file for apt_parallel.
# This may be replaced when dependencies are built.
