file(REMOVE_RECURSE
  "libapt_parallel.a"
)
