file(REMOVE_RECURSE
  "CMakeFiles/apt_analysis.dir/Apm.cpp.o"
  "CMakeFiles/apt_analysis.dir/Apm.cpp.o.d"
  "CMakeFiles/apt_analysis.dir/Collector.cpp.o"
  "CMakeFiles/apt_analysis.dir/Collector.cpp.o.d"
  "CMakeFiles/apt_analysis.dir/DepQueries.cpp.o"
  "CMakeFiles/apt_analysis.dir/DepQueries.cpp.o.d"
  "libapt_analysis.a"
  "libapt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
