file(REMOVE_RECURSE
  "libapt_analysis.a"
)
