# Empty compiler generated dependencies file for apt_analysis.
# This may be replaced when dependencies are built.
