file(REMOVE_RECURSE
  "CMakeFiles/apt_ir.dir/Parser.cpp.o"
  "CMakeFiles/apt_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/apt_ir.dir/Printer.cpp.o"
  "CMakeFiles/apt_ir.dir/Printer.cpp.o.d"
  "libapt_ir.a"
  "libapt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
