file(REMOVE_RECURSE
  "libapt_ir.a"
)
