# Empty dependencies file for apt_ir.
# This may be replaced when dependencies are built.
