# Empty dependencies file for apt_sparse.
# This may be replaced when dependencies are built.
