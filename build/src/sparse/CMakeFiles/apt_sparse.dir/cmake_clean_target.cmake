file(REMOVE_RECURSE
  "libapt_sparse.a"
)
