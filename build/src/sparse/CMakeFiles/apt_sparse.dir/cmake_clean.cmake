file(REMOVE_RECURSE
  "CMakeFiles/apt_sparse.dir/Dense.cpp.o"
  "CMakeFiles/apt_sparse.dir/Dense.cpp.o.d"
  "CMakeFiles/apt_sparse.dir/Factor.cpp.o"
  "CMakeFiles/apt_sparse.dir/Factor.cpp.o.d"
  "CMakeFiles/apt_sparse.dir/SparseMatrix.cpp.o"
  "CMakeFiles/apt_sparse.dir/SparseMatrix.cpp.o.d"
  "CMakeFiles/apt_sparse.dir/Workload.cpp.o"
  "CMakeFiles/apt_sparse.dir/Workload.cpp.o.d"
  "libapt_sparse.a"
  "libapt_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
