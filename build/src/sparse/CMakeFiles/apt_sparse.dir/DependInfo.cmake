
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/Dense.cpp" "src/sparse/CMakeFiles/apt_sparse.dir/Dense.cpp.o" "gcc" "src/sparse/CMakeFiles/apt_sparse.dir/Dense.cpp.o.d"
  "/root/repo/src/sparse/Factor.cpp" "src/sparse/CMakeFiles/apt_sparse.dir/Factor.cpp.o" "gcc" "src/sparse/CMakeFiles/apt_sparse.dir/Factor.cpp.o.d"
  "/root/repo/src/sparse/SparseMatrix.cpp" "src/sparse/CMakeFiles/apt_sparse.dir/SparseMatrix.cpp.o" "gcc" "src/sparse/CMakeFiles/apt_sparse.dir/SparseMatrix.cpp.o.d"
  "/root/repo/src/sparse/Workload.cpp" "src/sparse/CMakeFiles/apt_sparse.dir/Workload.cpp.o" "gcc" "src/sparse/CMakeFiles/apt_sparse.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/apt_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
