# Empty compiler generated dependencies file for apt_baselines.
# This may be replaced when dependencies are built.
