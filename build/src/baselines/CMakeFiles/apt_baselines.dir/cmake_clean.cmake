file(REMOVE_RECURSE
  "CMakeFiles/apt_baselines.dir/Oracle.cpp.o"
  "CMakeFiles/apt_baselines.dir/Oracle.cpp.o.d"
  "libapt_baselines.a"
  "libapt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
