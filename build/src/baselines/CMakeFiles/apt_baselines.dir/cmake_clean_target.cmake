file(REMOVE_RECURSE
  "libapt_baselines.a"
)
