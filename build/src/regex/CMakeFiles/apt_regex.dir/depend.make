# Empty dependencies file for apt_regex.
# This may be replaced when dependencies are built.
