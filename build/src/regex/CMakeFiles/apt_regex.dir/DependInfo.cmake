
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/Derivative.cpp" "src/regex/CMakeFiles/apt_regex.dir/Derivative.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/Derivative.cpp.o.d"
  "/root/repo/src/regex/Dfa.cpp" "src/regex/CMakeFiles/apt_regex.dir/Dfa.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/Dfa.cpp.o.d"
  "/root/repo/src/regex/LangOps.cpp" "src/regex/CMakeFiles/apt_regex.dir/LangOps.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/LangOps.cpp.o.d"
  "/root/repo/src/regex/Nfa.cpp" "src/regex/CMakeFiles/apt_regex.dir/Nfa.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/Nfa.cpp.o.d"
  "/root/repo/src/regex/Regex.cpp" "src/regex/CMakeFiles/apt_regex.dir/Regex.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/Regex.cpp.o.d"
  "/root/repo/src/regex/RegexParser.cpp" "src/regex/CMakeFiles/apt_regex.dir/RegexParser.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/RegexParser.cpp.o.d"
  "/root/repo/src/regex/Simplify.cpp" "src/regex/CMakeFiles/apt_regex.dir/Simplify.cpp.o" "gcc" "src/regex/CMakeFiles/apt_regex.dir/Simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/apt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
