file(REMOVE_RECURSE
  "libapt_regex.a"
)
