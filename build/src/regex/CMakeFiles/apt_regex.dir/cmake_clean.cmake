file(REMOVE_RECURSE
  "CMakeFiles/apt_regex.dir/Derivative.cpp.o"
  "CMakeFiles/apt_regex.dir/Derivative.cpp.o.d"
  "CMakeFiles/apt_regex.dir/Dfa.cpp.o"
  "CMakeFiles/apt_regex.dir/Dfa.cpp.o.d"
  "CMakeFiles/apt_regex.dir/LangOps.cpp.o"
  "CMakeFiles/apt_regex.dir/LangOps.cpp.o.d"
  "CMakeFiles/apt_regex.dir/Nfa.cpp.o"
  "CMakeFiles/apt_regex.dir/Nfa.cpp.o.d"
  "CMakeFiles/apt_regex.dir/Regex.cpp.o"
  "CMakeFiles/apt_regex.dir/Regex.cpp.o.d"
  "CMakeFiles/apt_regex.dir/RegexParser.cpp.o"
  "CMakeFiles/apt_regex.dir/RegexParser.cpp.o.d"
  "CMakeFiles/apt_regex.dir/Simplify.cpp.o"
  "CMakeFiles/apt_regex.dir/Simplify.cpp.o.d"
  "libapt_regex.a"
  "libapt_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
