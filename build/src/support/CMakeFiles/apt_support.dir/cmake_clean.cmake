file(REMOVE_RECURSE
  "CMakeFiles/apt_support.dir/FieldTable.cpp.o"
  "CMakeFiles/apt_support.dir/FieldTable.cpp.o.d"
  "CMakeFiles/apt_support.dir/Strings.cpp.o"
  "CMakeFiles/apt_support.dir/Strings.cpp.o.d"
  "libapt_support.a"
  "libapt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
