file(REMOVE_RECURSE
  "libapt_support.a"
)
