# Empty compiler generated dependencies file for apt_support.
# This may be replaced when dependencies are built.
