# Empty compiler generated dependencies file for theoremT_prover.
# This may be replaced when dependencies are built.
