file(REMOVE_RECURSE
  "CMakeFiles/theoremT_prover.dir/theoremT_prover.cpp.o"
  "CMakeFiles/theoremT_prover.dir/theoremT_prover.cpp.o.d"
  "theoremT_prover"
  "theoremT_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theoremT_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
