# Empty compiler generated dependencies file for fig3_llt_prover.
# This may be replaced when dependencies are built.
