file(REMOVE_RECURSE
  "CMakeFiles/fig3_llt_prover.dir/fig3_llt_prover.cpp.o"
  "CMakeFiles/fig3_llt_prover.dir/fig3_llt_prover.cpp.o.d"
  "fig3_llt_prover"
  "fig3_llt_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_llt_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
