file(REMOVE_RECURSE
  "CMakeFiles/ablation_engines.dir/ablation_engines.cpp.o"
  "CMakeFiles/ablation_engines.dir/ablation_engines.cpp.o.d"
  "ablation_engines"
  "ablation_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
