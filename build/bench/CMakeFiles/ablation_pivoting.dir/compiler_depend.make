# Empty compiler generated dependencies file for ablation_pivoting.
# This may be replaced when dependencies are built.
