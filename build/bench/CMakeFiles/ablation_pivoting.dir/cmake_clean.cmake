file(REMOVE_RECURSE
  "CMakeFiles/ablation_pivoting.dir/ablation_pivoting.cpp.o"
  "CMakeFiles/ablation_pivoting.dir/ablation_pivoting.cpp.o.d"
  "ablation_pivoting"
  "ablation_pivoting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pivoting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
