file(REMOVE_RECURSE
  "CMakeFiles/prover_matrix_test.dir/prover_matrix_test.cpp.o"
  "CMakeFiles/prover_matrix_test.dir/prover_matrix_test.cpp.o.d"
  "prover_matrix_test"
  "prover_matrix_test.pdb"
  "prover_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prover_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
