# Empty dependencies file for prover_matrix_test.
# This may be replaced when dependencies are built.
