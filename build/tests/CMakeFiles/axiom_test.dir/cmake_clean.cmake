file(REMOVE_RECURSE
  "CMakeFiles/axiom_test.dir/axiom_test.cpp.o"
  "CMakeFiles/axiom_test.dir/axiom_test.cpp.o.d"
  "axiom_test"
  "axiom_test.pdb"
  "axiom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
