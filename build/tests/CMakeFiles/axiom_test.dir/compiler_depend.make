# Empty compiler generated dependencies file for axiom_test.
# This may be replaced when dependencies are built.
