file(REMOVE_RECURSE
  "CMakeFiles/proof_checker_test.dir/proof_checker_test.cpp.o"
  "CMakeFiles/proof_checker_test.dir/proof_checker_test.cpp.o.d"
  "proof_checker_test"
  "proof_checker_test.pdb"
  "proof_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
