# Empty dependencies file for proof_checker_test.
# This may be replaced when dependencies are built.
