file(REMOVE_RECURSE
  "CMakeFiles/deptest_test.dir/deptest_test.cpp.o"
  "CMakeFiles/deptest_test.dir/deptest_test.cpp.o.d"
  "deptest_test"
  "deptest_test.pdb"
  "deptest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deptest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
