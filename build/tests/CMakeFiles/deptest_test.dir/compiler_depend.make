# Empty compiler generated dependencies file for deptest_test.
# This may be replaced when dependencies are built.
