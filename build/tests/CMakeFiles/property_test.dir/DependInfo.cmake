
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/apt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/apt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/apt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/apt_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/apt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
