# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/axiom_test[1]_include.cmake")
include("/root/repo/build/tests/prover_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/deptest_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/shapes_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/prover_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/proof_checker_test[1]_include.cmake")
