# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparse_matrix_parallel "/root/repo/build/examples/sparse_matrix_parallel")
set_tests_properties(example_sparse_matrix_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compiler_pass "/root/repo/build/examples/compiler_pass")
set_tests_properties(example_compiler_pass PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_range_tree "/root/repo/build/examples/range_tree")
set_tests_properties(example_range_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nbody_octree "/root/repo/build/examples/nbody_octree")
set_tests_properties(example_nbody_octree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
