# Empty compiler generated dependencies file for sparse_matrix_parallel.
# This may be replaced when dependencies are built.
