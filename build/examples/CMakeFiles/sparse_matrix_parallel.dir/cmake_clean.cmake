file(REMOVE_RECURSE
  "CMakeFiles/sparse_matrix_parallel.dir/sparse_matrix_parallel.cpp.o"
  "CMakeFiles/sparse_matrix_parallel.dir/sparse_matrix_parallel.cpp.o.d"
  "sparse_matrix_parallel"
  "sparse_matrix_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_matrix_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
