file(REMOVE_RECURSE
  "CMakeFiles/nbody_octree.dir/nbody_octree.cpp.o"
  "CMakeFiles/nbody_octree.dir/nbody_octree.cpp.o.d"
  "nbody_octree"
  "nbody_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
