# Empty dependencies file for nbody_octree.
# This may be replaced when dependencies are built.
