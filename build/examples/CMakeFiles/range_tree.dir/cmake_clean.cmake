file(REMOVE_RECURSE
  "CMakeFiles/range_tree.dir/range_tree.cpp.o"
  "CMakeFiles/range_tree.dir/range_tree.cpp.o.d"
  "range_tree"
  "range_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
