# Empty compiler generated dependencies file for range_tree.
# This may be replaced when dependencies are built.
