//===- bench/ablation_engines.cpp - Experiment E6: design ablations -------===//
//
// Part of the APT project. Ablates the starred design decisions of
// DESIGN.md §5 on a fixed query mix (every provable theorem from E2-E3
// plus their unprovable twins):
//
//  * subset-query engine: subset-construction DFAs vs Brzozowski
//    derivatives;
//  * goal memoization on/off (the cache §4.2 presumes);
//  * language-query caching on/off;
//  * the intersecting-language prune on/off.
//
//===----------------------------------------------------------------------===//

#include "core/Prelude.h"
#include "core/Prover.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace apt;

namespace {

struct MixQuery {
  const char *Structure; ///< "llt" or "sm".
  const char *P, *Q;
  bool Provable;
};

const MixQuery kMix[] = {
    {"llt", "L.L.N", "L.R.N", true},
    {"llt", "L.N", "R.N", true},
    {"llt", "eps", "(L|R|N)+", true},
    {"llt", "L.L.N.N", "L.R.N", false},
    {"llt", "(L|R)*.N", "(L|R)*.N.N", false},
    {"sm", "ncolE+", "nrowE+.ncolE+", true},
    {"sm", "relem.ncolE*", "nrowH.relem.ncolE*", true},
    {"sm", "ncolE+", "ncolE+", false},
};

/// Runs the whole mix once with the given options; returns proved count.
int runMix(const ProverOptions &Opts, uint64_t *GoalsOut = nullptr) {
  FieldTable Fields;
  StructureInfo LLT = preludeLeafLinkedTree(Fields);
  StructureInfo SM = preludeSparseMatrixFull(Fields);
  Prover Pr(Fields, Opts);
  int Proved = 0;
  for (const MixQuery &Q : kMix) {
    const AxiomSet &Axioms =
        Q.Structure[0] == 'l' ? LLT.Axioms : SM.Axioms;
    bool Ok = Pr.proveDisjoint(Axioms, parseRegex(Q.P, Fields).Value,
                               parseRegex(Q.Q, Fields).Value);
    Proved += Ok;
    if (Ok != Q.Provable)
      std::fprintf(stderr, "verdict flip: %s vs %s\n", Q.P, Q.Q);
  }
  if (GoalsOut)
    *GoalsOut = Pr.stats().GoalsExplored;
  return Proved;
}

void BM_Engine(benchmark::State &State) {
  ProverOptions Opts;
  Opts.Engine =
      State.range(0) ? LangEngine::Derivative : LangEngine::Dfa;
  int Proved = 0;
  for (auto _ : State)
    Proved = runMix(Opts);
  State.counters["proved"] = Proved;
  State.SetLabel(Opts.Engine == LangEngine::Dfa ? "DFA engine"
                                                : "derivative engine");
}
BENCHMARK(BM_Engine)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

void BM_GoalCache(benchmark::State &State) {
  ProverOptions Opts;
  Opts.EnableGoalCache = State.range(0) != 0;
  uint64_t Goals = 0;
  int Proved = 0;
  for (auto _ : State)
    Proved = runMix(Opts, &Goals);
  State.counters["proved"] = Proved;
  State.counters["goals"] = static_cast<double>(Goals);
  State.SetLabel(Opts.EnableGoalCache ? "goal cache ON"
                                      : "goal cache OFF");
}
BENCHMARK(BM_GoalCache)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

void BM_IntersectPrune(benchmark::State &State) {
  ProverOptions Opts;
  Opts.PruneIntersectingLanguages = State.range(0) != 0;
  int Proved = 0;
  for (auto _ : State)
    Proved = runMix(Opts);
  State.counters["proved"] = Proved;
  State.SetLabel(Opts.PruneIntersectingLanguages
                     ? "intersect prune ON"
                     : "intersect prune OFF");
}
BENCHMARK(BM_IntersectPrune)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);

void BM_DoubleKleeneRule(benchmark::State &State) {
  // The seven-case rule only matters for the minimal-axiom Theorem T;
  // measured separately because the nested-only mode cannot prove it.
  ProverOptions Opts;
  Opts.PaperStyleDoubleKleene = State.range(0) != 0;
  FieldTable Fields;
  StructureInfo SM = preludeSparseMatrixMinimal(Fields);
  RegexRef P = parseRegex("ncolE+", Fields).Value;
  RegexRef Q = parseRegex("nrowE+.ncolE+", Fields).Value;
  bool Ok = false;
  for (auto _ : State) {
    Prover Pr(Fields, Opts);
    Ok = Pr.proveDisjoint(SM.Axioms, P, Q);
  }
  State.counters["proved"] = Ok;
  State.SetLabel(Opts.PaperStyleDoubleKleene
                     ? "seven-case rule ON (proves Theorem T)"
                     : "seven-case rule OFF (cannot prove it)");
}
BENCHMARK(BM_DoubleKleeneRule)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);

void printSummary() {
  std::printf("\n== E6: design ablations (query mix: %zu queries, "
              "%d provable) ==\n",
              sizeof(kMix) / sizeof(kMix[0]),
              []() {
                int N = 0;
                for (const MixQuery &Q : kMix)
                  N += Q.Provable;
                return N;
              }());
  struct Config {
    const char *Name;
    ProverOptions Opts;
  };
  ProverOptions Base;
  ProverOptions NoCacheO;
  NoCacheO.EnableGoalCache = false;
  ProverOptions NoPrune;
  NoPrune.PruneIntersectingLanguages = false;
  ProverOptions Deriv;
  Deriv.Engine = LangEngine::Derivative;
  Config Configs[] = {
      {"baseline (DFA, caches, prune)", Base},
      {"derivative engine", Deriv},
      {"goal cache off", NoCacheO},
      {"intersect prune off", NoPrune},
  };
  for (const Config &C : Configs) {
    uint64_t Goals = 0;
    int Proved = runMix(C.Opts, &Goals);
    std::printf("  %-32s proved %d, %8llu goals explored\n", C.Name,
                Proved, static_cast<unsigned long long>(Goals));
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
