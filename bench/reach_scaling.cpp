//===- bench/reach_scaling.cpp - Experiment E11: reach pre-pass -----------===//
//
// Part of the APT project. Benchmarks the whole-graph reachability
// pre-pass (src/reach, docs/REACHABILITY.md) on a batch workload shaped
// like the compiler-server case it targets: loop nests walking one
// structure from one handle, so most statement pairs share a handle and
// carry overlapping star languages — exactly the byte-parity fragment
// the pre-pass resolves without a prover call.
//
// Measured effects (tools/bench_check.py --mode reach gates the first):
//
//  * answer rate — on BM_BatchReachWarm/1 the pre-pass must resolve at
//    least 30% of the pairs that reach it (counter reach_answered over
//    prover_bound);
//  * cold end-to-end scaling — BM_BatchReachCold at 1, 2, and 4 worker
//    threads with the pre-pass on: the pre-pass runs in the sequential
//    prepare phase, so its cost must not erode the fan-out win;
//  * warm on/off delta — BM_BatchReachWarm/0 vs /1 is the net saving of
//    answering the fragment by model evaluation instead of the prover.
//
//===----------------------------------------------------------------------===//

#include "analysis/QueryEngine.h"
#include "ir/Parser.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

using namespace apt;

namespace {

/// The E11 workload: two functions walking lists and a leaf-linked tree
/// from a single handle each. The loop-walk pairs (W*, X*) share a
/// handle and overlapping `next*` languages — pre-pass Maybes; the
/// repeated first-cell writes (H*) are identical singleton paths —
/// pre-pass Yeses; the tree pairs (T*) are disjoint under the axioms,
/// so they escalate and stay prover-bound.
const char *kReachProgram = R"(
type Node {
  next: Node;
  val: int;
  axiom forall p <> q: p.next <> q.next;
}
type Tree {
  L: Tree;
  R: Tree;
  data: int;
  axiom forall p: p.L <> p.R;
  axiom forall p <> q: p.L <> q.L;
  axiom forall p <> q: p.R <> q.R;
}
fn wave(head: Node) {
  H0: head.val = fun();
  H1: head.val = fun();
  H2: s = head.val;
  p = head;
  while p {
    W0: p.val = fun();
    W1: p.val = fun();
    W2: x = p.val;
    W3: p.val = fun();
    p = p.next;
  }
}
fn sweep(head: Node, root: Tree) {
  q = head;
  while q {
    X0: q.val = fun();
    X1: y = q.val;
    q = q.next;
  }
  t = root.L;
  u = root.R;
  T0: t.data = fun();
  T1: u.data = fun();
  T2: z = t.data;
}
)";

Program parseOrDie(FieldTable &Fields) {
  ProgramParseResult Parsed = parseProgram(kReachProgram, Fields);
  if (!Parsed) {
    std::fprintf(stderr, "reach bench program failed to parse: %s\n",
                 Parsed.Error.c_str());
    std::exit(1);
  }
  return std::move(Parsed.Value);
}

/// Exports the pre-pass counters: answered pairs and the pairs that
/// reached the hook at all (answered + escalated). Stats are cumulative
/// over the engine's runs; the gate only reads their ratio, which is
/// run-count invariant.
void exportReachCounters(benchmark::State &State, const BatchStats &S) {
  State.counters["reach_answered"] = static_cast<double>(S.ReachPairs);
  State.counters["prover_bound"] =
      static_cast<double>(S.ReachPairs + S.ReachEscalated);
}

/// Warm batch, Arg 0 = pre-pass off, Arg 1 = on. The bench_check gate
/// reads the answer rate off the Arg(1) counters and compares the warm
/// throughputs against the checked-in baseline.
void BM_BatchReachWarm(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Analyzer.ReachPrepass = State.range(0) != 0;
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll(); // Warm caches and the model pool outside the loop.

  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  uint64_t PerRun = Engine.stats().Queries /
                    (static_cast<uint64_t>(State.iterations()) + 1);
  State.SetItemsProcessed(static_cast<int64_t>(PerRun) *
                          State.iterations());
  exportReachCounters(State, Engine.stats());
}
BENCHMARK(BM_BatchReachWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Cold end-to-end batch with the pre-pass on at 1, 2, and 4 worker
/// threads: engine construction, the sequential prepare phase (where
/// the pre-pass runs), and the prover fan-out for the escalated pairs.
void BM_BatchReachCold(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  Opts.Analyzer.ReachPrepass = true;

  uint64_t Queries = 0;
  for (auto _ : State) {
    BatchQueryEngine Engine(Prog, Fields, Opts);
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
    Queries = Engine.stats().Queries;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Queries) *
                          State.iterations());
  State.counters["queries"] = static_cast<double>(Queries);
}
BENCHMARK(BM_BatchReachCold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
