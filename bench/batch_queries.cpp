//===- bench/batch_queries.cpp - Experiment E8: batch throughput ----------===//
//
// Part of the APT project. Benchmarks the parallel batch dependence-query
// engine (analysis/QueryEngine.h) on the §5 factorization skeleton:
// every labeled statement pair of every function, answered at 1, 2, and
// 4 worker threads.
//
// Measured effects:
//
//  * single-thread vs. multi-thread throughput (queries/second) -- on a
//    multi-core host 4 jobs should clear 1.5x the 1-job rate;
//  * structural deduplication -- the duplicated loop nests below collapse
//    many statement pairs onto one prover run;
//  * shared-cache reuse -- a second runAll() on the same engine starts
//    with warm goal/language caches.
//
// On a single-core host the multi-thread rates degrade to roughly the
// sequential rate (plus pool overhead); the printed dedup/cache table is
// still meaningful.
//
//===----------------------------------------------------------------------===//

#include "analysis/QueryEngine.h"
#include "ir/Parser.h"
#include "support/ChromeTrace.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace apt;

namespace {

/// The §5 factorization skeleton with the loop bodies unrolled a few
/// times: the extra labels multiply the statement-pair count (the batch
/// workload) without adding new unique proofs, which is exactly the
/// shape a compiler produces when it queries every pair in a loop nest.
const char *kBatchProgram = R"(
type SparseMatrix {
  rows: RowHeader;
  v: int;
  axiom forall p <> q: p.rows <> q.nrowH;
  axiom forall p: p.(rows|nrowH|relem|ncolE|nrowE)+ <> p.eps;
}
type RowHeader {
  nrowH: RowHeader;
  relem: Element;
  h: int;
  axiom forall p <> q: p.nrowH <> q.nrowH;
  axiom forall p <> q: p.relem.ncolE* <> q.relem.ncolE*;
}
type Element {
  ncolE: Element;
  nrowE: Element;
  val: int;
  axiom forall p <> q: p.ncolE <> q.ncolE;
  axiom forall p <> q: p.nrowE <> q.nrowE;
  axiom forall p: p.ncolE+ <> p.nrowE+;
}
fn scale_rows(m: SparseMatrix) {
  r = m.rows;
  while r {
    e = r.relem;
    while e {
      S0: e.val = fun();
      S1: e.val = fun();
      S2: e.val = fun();
      S3: e.val = fun();
      e = e.ncolE;
    }
    r = r.nrowH;
  }
}
fn eliminate_row(pivot: Element) {
  a = pivot.nrowE;
  while a {
    u = pivot.ncolE;
    t = a.ncolE;
    while t {
      E0: t.val = fun();
      E1: t.val = fun();
      E2: t.val = fun();
      E3: t.val = fun();
      t = t.ncolE;
    }
    a = a.nrowE;
  }
}
)";

Program parseOrDie(FieldTable &Fields) {
  ProgramParseResult Parsed = parseProgram(kBatchProgram, Fields);
  if (!Parsed) {
    std::fprintf(stderr, "bench program failed to parse: %s\n",
                 Parsed.Error.c_str());
    std::exit(1);
  }
  return std::move(Parsed.Value);
}

/// Cold engine per iteration: measures the end-to-end batch, including
/// the sequential prepare/dedup phases and cache warm-up.
void BM_BatchCold(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));

  uint64_t Queries = 0;
  for (auto _ : State) {
    BatchQueryEngine Engine(Prog, Fields, Opts);
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
    Queries = Engine.stats().Queries;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Queries) *
                          State.iterations());
  State.counters["queries"] = static_cast<double>(Queries);
}
BENCHMARK(BM_BatchCold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Warm engine: repeated runAll() on one engine, the compiler-server
/// shape where the shared caches persist across requests.
void BM_BatchWarm(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll(); // Warm the shared caches once, outside the loop.

  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  uint64_t PerRun = Engine.stats().Queries /
                    (static_cast<uint64_t>(State.iterations()) + 1);
  State.SetItemsProcessed(static_cast<int64_t>(PerRun) *
                          State.iterations());
}
BENCHMARK(BM_BatchWarm)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// The warm run again with proof tracing live (collector installed,
/// runtime switch on): the delta against BM_BatchWarm is the whole
/// observability tax, which docs/OBSERVABILITY.md pins at <= 5%.
void BM_BatchWarmTraced(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll();

  trace::Collector Events;
  trace::setCollector(&Events);
  trace::setEnabled(true);
  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  trace::setEnabled(false);
  trace::flushThisThread();
  trace::setCollector(nullptr);

  uint64_t Recorded = 0;
  for (const trace::Collector::ThreadBatch &B : Events.drain())
    Recorded += B.Events.size() + B.Dropped;
  State.counters["events"] =
      static_cast<double>(Recorded) / State.iterations();
}
BENCHMARK(BM_BatchWarmTraced)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Warm run with the timestamp switch on but tracing runtime-disabled:
/// no collector is installed and enabled() stays false, so the event
/// fast path is never entered. The delta against BM_BatchWarm is the
/// cost of merely carrying the profiling machinery while it is switched
/// off, which tools/bench_check.py --mode profile pins at <= 5%.
void BM_BatchWarmTimedOff(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll();

  trace::setTimingEnabled(true);
  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  trace::setTimingEnabled(false);
}
BENCHMARK(BM_BatchWarmTimedOff)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Warm run with tracing live AND every event timestamped -- the full
/// `aptc deps --profile` recording path. The delta against
/// BM_BatchWarmTraced is the pure timestamping tax, which
/// tools/bench_check.py --mode profile pins at <= 10%.
void BM_BatchWarmProfiled(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll();

  trace::Collector Events;
  trace::setCollector(&Events);
  trace::setTimingEnabled(true);
  trace::setEnabled(true);
  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  trace::setEnabled(false);
  trace::setTimingEnabled(false);
  trace::flushThisThread();
  trace::setCollector(nullptr);

  uint64_t Recorded = 0;
  uint64_t Dropped = 0;
  for (const trace::Collector::ThreadBatch &B : Events.drain()) {
    Recorded += B.Events.size();
    Dropped += B.Dropped;
  }
  State.counters["events"] =
      static_cast<double>(Recorded) / State.iterations();
  State.counters["dropped"] = static_cast<double>(Dropped);
}
BENCHMARK(BM_BatchWarmProfiled)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// A service-sized variant of the E8 workload for the chrome-export
/// gate: the same type section, with the two skeleton functions
/// duplicated eight times (distinct function names; structural dedup
/// does not cross functions in the pair enumeration, so the batch does
/// 8x the queries). A realistic `aptc deps` invocation analyzes a whole
/// translation unit, not two functions; on the two-function skeleton
/// the export's fixed costs (stream setup, metadata, the ~20 snprintf
/// lines) alone would read as ~8% "overhead" of an unrealistically tiny
/// 0.1 ms batch.
Program parseChromeOrDie(FieldTable &Fields) {
  std::string Text(kBatchProgram);
  size_t FnStart = Text.find("fn scale_rows");
  std::string Types = Text.substr(0, FnStart);
  std::string Fns = Text.substr(FnStart);
  std::string Scaled = Types;
  for (int I = 0; I < 8; ++I) {
    std::string Copy = Fns;
    std::string Tag = std::to_string(I);
    for (const char *Name : {"scale_rows", "eliminate_row"}) {
      size_t At = Copy.find(Name);
      Copy.insert(At + std::string(Name).size(), "_" + Tag);
    }
    Scaled += Copy;
  }
  ProgramParseResult Parsed = parseProgram(Scaled, Fields);
  if (!Parsed) {
    std::fprintf(stderr, "chrome bench program failed to parse: %s\n",
                 Parsed.Error.c_str());
    std::exit(1);
  }
  return std::move(Parsed.Value);
}

/// The full `aptc deps --trace-chrome` recording path as a PAIRED
/// measurement: every benchmark iteration runs a plain cold batch and
/// then the same batch with tracing live plus one Chrome trace-event
/// export (support/ChromeTrace.h), back to back, timing each half with
/// a steady clock. Each iteration yields one paired ratio, and the
/// benchmark reports the MEDIAN ratio across its iterations as a
/// counter. Both levels of pairing matter on a small shared host
/// (often a single core): the halves of a pair run microseconds apart,
/// so drift cannot separate them, and a preemption spike only poisons
/// the one iteration it lands in, which the median discards. Comparing
/// two separately-run benchmarks seconds apart instead lets scheduler
/// noise dwarf the ~5% effect being measured.
///
/// The timing switch stays on for both halves -- only the tracing
/// switch toggles. That is deliberate twice over: setTimingEnabled
/// re-runs the fastclock calibration spin (a per-process cost the CLI
/// pays once), and a plain `aptc` run executes exactly this
/// timing-on/tracing-off configuration, so the plain half prices what
/// an untraced run really costs. tools/bench_check.py --mode profile
/// reads the counters and pins the median per-repetition
/// chrome_ns/plain_ns at <= 1.10x (the traced+chrome over plain gate
/// of docs/OBSERVABILITY.md).
void BM_BatchChrome(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseChromeOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = 1;

  trace::Collector Events;
  trace::setCollector(&Events);
  trace::setTimingEnabled(true);
  std::vector<double> PlainNs;
  std::vector<double> ChromeNs;
  std::vector<double> Ratios;
  uint64_t Exported = 0;
  uint64_t Queries = 0;
  using SteadyClock = std::chrono::steady_clock;
  for (auto _ : State) {
    trace::setEnabled(false);
    SteadyClock::time_point P0 = SteadyClock::now();
    {
      BatchQueryEngine Engine(Prog, Fields, Opts);
      std::vector<BatchResult> Results = Engine.runAll();
      benchmark::DoNotOptimize(Results.data());
      Queries = Engine.stats().Queries;
    }
    SteadyClock::time_point P1 = SteadyClock::now();

    trace::setEnabled(true);
    SteadyClock::time_point C0 = SteadyClock::now();
    {
      BatchQueryEngine Engine(Prog, Fields, Opts);
      std::vector<BatchResult> Results = Engine.runAll();
      benchmark::DoNotOptimize(Results.data());
      trace::flushThisThread();
      std::ostringstream Out;
      trace::ChromeTraceStats CS =
          trace::writeChromeTrace(Out, Events.drain());
      Exported = CS.Complete;
      benchmark::DoNotOptimize(Out.str().data());
    }
    SteadyClock::time_point C1 = SteadyClock::now();

    double P = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(P1 - P0)
            .count());
    double C = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(C1 - C0)
            .count());
    PlainNs.push_back(P);
    ChromeNs.push_back(C);
    Ratios.push_back(P > 0 ? C / P : 1.0);
  }
  trace::setEnabled(false);
  trace::setTimingEnabled(false);
  trace::flushThisThread();
  trace::setCollector(nullptr);
  Events.drain();
  auto median = [](std::vector<double> &V) {
    if (V.empty())
      return 0.0;
    std::nth_element(V.begin(), V.begin() + V.size() / 2, V.end());
    return V[V.size() / 2];
  };
  State.counters["plain_ns_median"] = median(PlainNs);
  State.counters["chrome_ns_median"] = median(ChromeNs);
  State.counters["pair_ratio_median"] = median(Ratios);
  State.counters["queries"] = static_cast<double>(Queries);
  State.counters["complete_events"] = static_cast<double>(Exported);
}
BENCHMARK(BM_BatchChrome)->Unit(benchmark::kMillisecond);

/// A triage-heavy workload (docs/TRIAGE.md): fresh allocations, caller
/// heap walks, mixed structure types and disjoint data fields give the
/// static cascade plenty to resolve, while the tree pairs E0/E1/E2 share
/// a handle and still exercise the prover. kBatchProgram stays the
/// baseline for the profile gates; this program exists so the triage
/// numbers do not disturb them.
const char *kTriageProgram = R"(
type Node {
  next: Node;
  val: int;
  aux: int;
  shape list(next);
}
type Tree {
  L: Tree;
  R: Tree;
  data: int;
  shape tree(L, R);
}
fn transform(head: Node, root: Tree) {
  p = new Node;
  q = new Node;
  r = new Node;
  A0: p.val = fun();
  A1: q.val = fun();
  A2: r.val = fun();
  B0: s0 = p.val;
  B1: p.aux = fun();
  c = head.next;
  C0: c.val = fun();
  C1: y = c.aux;
  t = root.L;
  u = root.R;
  E0: t.data = fun();
  E1: u.data = fun();
  E2: z = t.data;
}
)";

Program parseTriageOrDie(FieldTable &Fields) {
  ProgramParseResult Parsed = parseProgram(kTriageProgram, Fields);
  if (!Parsed) {
    std::fprintf(stderr, "triage bench program failed to parse: %s\n",
                 Parsed.Error.c_str());
    std::exit(1);
  }
  return std::move(Parsed.Value);
}

/// Exports the per-run triage counters of \p Engine (whose stats are
/// cumulative; a single warm-up run makes them per-run values).
void exportTriageCounters(benchmark::State &State,
                          const BatchStats &S) {
  State.counters["triaged_pairs"] = static_cast<double>(S.TriagedPairs);
  State.counters["prover_bound"] =
      static_cast<double>(S.TriagedPairs + S.TriageEscalated);
}

/// Cold end-to-end batch on the triage workload; Arg 0 = cascade off,
/// Arg 1 = on. The delta is what the cascade saves including all setup
/// (Steensgaard construction happens per engine).
void BM_BatchTriageCold(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseTriageOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Analyzer.Triage = State.range(0) != 0;

  uint64_t Queries = 0;
  for (auto _ : State) {
    BatchQueryEngine Engine(Prog, Fields, Opts);
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
    Queries = Engine.stats().Queries;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Queries) *
                          State.iterations());
}
BENCHMARK(BM_BatchTriageCold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Warm batch on the triage workload. The tools/bench_check.py --mode
/// triage gate reads the counters off the Arg(1) run: triaged_pairs /
/// prover_bound is the cascade's kill rate, pinned at >= 40% on this
/// workload.
void BM_BatchTriageWarm(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseTriageOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Analyzer.Triage = State.range(0) != 0;
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll(); // Warm caches; stats now hold one run's counts.
  BatchStats PerRun = Engine.stats();

  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(PerRun.Queries) *
                          State.iterations());
  exportTriageCounters(State, PerRun);
}
BENCHMARK(BM_BatchTriageWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Worst case for the cascade: kBatchProgram's pairs all share handles,
/// so every pair runs the full cascade and still escalates. The Arg(1)
/// over Arg(0) wall-time ratio is the pure triage-miss tax, pinned at
/// <= 5% by tools/bench_check.py --mode triage.
void BM_BatchTriageMiss(benchmark::State &State) {
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Analyzer.Triage = State.range(0) != 0;
  BatchQueryEngine Engine(Prog, Fields, Opts);
  Engine.runAll();
  BatchStats PerRun = Engine.stats();

  for (auto _ : State) {
    std::vector<BatchResult> Results = Engine.runAll();
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(PerRun.Queries) *
                          State.iterations());
  exportTriageCounters(State, PerRun);
}
BENCHMARK(BM_BatchTriageMiss)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void printBatchStats() {
  std::printf("\n== E8: batch dependence-query engine ==\n");
  FieldTable Fields;
  Program Prog = parseOrDie(Fields);
  for (unsigned Jobs : {1u, 4u}) {
    BatchOptions Opts;
    Opts.Jobs = Jobs;
    BatchQueryEngine Engine(Prog, Fields, Opts);
    Engine.runAll();
    const BatchStats &S = Engine.stats();
    std::printf("  jobs=%u: %llu queries, %llu unique, dedup %.1f%%, "
                "wall %.1f ms, cpu %.1f ms\n",
                Jobs, static_cast<unsigned long long>(S.Queries),
                static_cast<unsigned long long>(S.UniqueQueries),
                100.0 * S.dedupRatio(), S.WallMs, S.CpuMs);
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printBatchStats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
