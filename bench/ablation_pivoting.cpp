//===- bench/ablation_pivoting.cpp - Markowitz pivoting ablation ----------===//
//
// Part of the APT project. §5 stresses that "good pivot selection is one
// of the keys to reducing the number of fillins, and thus considerable
// effort is spent in selecting the best possible pivot element". This
// bench quantifies that: Markowitz selection vs. first-acceptable-pivot
// on resistor grids of growing size -- fill-ins, total element
// operations, and the knock-on effect on the simulated Figure 7
// speedups (more fill-in work also shifts the partial/full gap).
//
//===----------------------------------------------------------------------===//

#include "sparse/Kernels.h"
#include "sparse/Workload.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace apt;

namespace {

FactorResult factorGrid(unsigned Grid, bool Markowitz,
                        ExecutionModel *Model = nullptr,
                        ParallelPolicy Policy = ParallelPolicy::Sequential) {
  SparseMatrix M = SparseMatrix::fromTriplets(
      Grid * Grid, resistorGridTriplets(Grid, Grid));
  KernelOptions Opts;
  Opts.MarkowitzPivoting = Markowitz;
  Opts.Model = Model;
  Opts.Policy = Policy;
  return factor(M, Opts);
}

void BM_Pivoting(benchmark::State &State) {
  unsigned Grid = static_cast<unsigned>(State.range(0));
  bool Markowitz = State.range(1) != 0;
  FactorResult F;
  for (auto _ : State)
    F = factorGrid(Grid, Markowitz);
  State.counters["fillins"] = static_cast<double>(F.Fillins);
  State.counters["ops"] = static_cast<double>(F.totalOps());
  State.SetLabel(std::string(Markowitz ? "markowitz" : "first-pivot") +
                 " " + std::to_string(Grid) + "x" + std::to_string(Grid));
}
BENCHMARK(BM_Pivoting)
    ->Args({8, 1})
    ->Args({8, 0})
    ->Args({12, 1})
    ->Args({12, 0})
    ->Args({16, 1})
    ->Args({16, 0})
    ->Unit(benchmark::kMillisecond);

void printTable() {
  std::printf("\n== Pivoting ablation: Markowitz vs first acceptable "
              "pivot ==\n");
  std::printf("%-10s %12s %12s %14s %14s %10s\n", "grid", "fill(M)",
              "fill(first)", "ops(M)", "ops(first)", "ops ratio");
  for (unsigned Grid : {8u, 12u, 16u, 20u}) {
    FactorResult FM = factorGrid(Grid, true);
    FactorResult FF = factorGrid(Grid, false);
    std::printf("%2ux%-7u %12zu %12zu %14llu %14llu %9.1fx\n", Grid, Grid,
                FM.Fillins, FF.Fillins,
                static_cast<unsigned long long>(FM.totalOps()),
                static_cast<unsigned long long>(FF.totalOps()),
                static_cast<double>(FF.totalOps()) /
                    static_cast<double>(FM.totalOps()));
  }

  std::printf("\nEffect on simulated 7-PE speedups (16x16 grid):\n");
  for (bool Markowitz : {true, false}) {
    for (ParallelPolicy Policy :
         {ParallelPolicy::Partial, ParallelPolicy::Full}) {
      PeSimulator Sim(7, /*BarrierCost=*/200);
      factorGrid(16, Markowitz, &Sim, Policy);
      std::printf("  %-12s %-8s speedup %4.1f\n",
                  Markowitz ? "markowitz" : "first-pivot",
                  parallelPolicyName(Policy),
                  static_cast<double>(Sim.totalWork()) /
                      static_cast<double>(Sim.elapsed()));
    }
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
