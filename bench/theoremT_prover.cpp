//===- bench/theoremT_prover.cpp - Experiment E3: Theorem T ---------------===//
//
// Part of the APT project. Benchmarks proving §5's Theorem T (the
// loop-carried independence of the factorization loops) under the two
// axiom configurations the paper discusses:
//
//  * the minimal three-axiom set of §5, which forces the full seven-case
//    Kleene induction machinery ("the proof has been omitted due to its
//    length"), and
//  * the complete twelve-axiom Appendix A set, where M4 applies almost
//    directly.
//
// Also measured: the column-wise variant, the header-level row
// disjointness used when parallelizing the outer loop over row headers,
// and the cost of *failing* on the unprovable self-pair (the Maybe path
// the compiler takes for genuinely conflicting accesses).
//
//===----------------------------------------------------------------------===//

#include "core/Prelude.h"
#include "core/Prover.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace apt;

namespace {

struct Query {
  const char *Name;
  const char *P, *Q;
  bool Minimal; ///< Use the 3-axiom set (else the 12-axiom set).
  bool Expected;
};

const Query kQueries[] = {
    {"TheoremT/minimal-axioms", "ncolE+", "nrowE+.ncolE+", true, true},
    {"TheoremT/full-axioms", "ncolE+", "nrowE+.ncolE+", false, true},
    {"TheoremT-columns/full-axioms", "nrowE+", "ncolE+.nrowE+", false,
     true},
    {"HeaderRows/full-axioms", "relem.ncolE*", "nrowH.relem.ncolE*", false,
     true},
    {"SelfPair-unprovable/full-axioms", "ncolE+", "ncolE+", false, false},
};

void BM_TheoremT(benchmark::State &State) {
  const Query &Q = kQueries[State.range(0)];
  FieldTable Fields;
  StructureInfo SM = Q.Minimal ? preludeSparseMatrixMinimal(Fields)
                               : preludeSparseMatrixFull(Fields);
  RegexRef P = parseRegex(Q.P, Fields).Value;
  RegexRef QQ = parseRegex(Q.Q, Fields).Value;

  bool Proved = false;
  uint64_t Goals = 0;
  for (auto _ : State) {
    Prover Pr(Fields); // Cold caches each iteration.
    Proved = Pr.proveDisjoint(SM.Axioms, P, QQ);
    Goals = Pr.stats().GoalsExplored;
    benchmark::DoNotOptimize(Proved);
  }
  if (Proved != Q.Expected)
    State.SkipWithError("unexpected verdict");
  State.counters["goals"] = static_cast<double>(Goals);
  State.SetLabel(std::string(Q.Name) + " => " +
                 (Proved ? "No (proved)" : "Maybe"));
}
BENCHMARK(BM_TheoremT)
    ->DenseRange(0, sizeof(kQueries) / sizeof(kQueries[0]) - 1)
    ->Unit(benchmark::kMicrosecond);

/// Warm-cache variant: the compiler asks the same theorem for many loops.
void BM_TheoremTWarmCache(benchmark::State &State) {
  FieldTable Fields;
  StructureInfo SM = preludeSparseMatrixMinimal(Fields);
  RegexRef P = parseRegex("ncolE+", Fields).Value;
  RegexRef Q = parseRegex("nrowE+.ncolE+", Fields).Value;
  Prover Pr(Fields);
  for (auto _ : State)
    benchmark::DoNotOptimize(Pr.proveDisjoint(SM.Axioms, P, Q));
}
BENCHMARK(BM_TheoremTWarmCache)->Unit(benchmark::kMicrosecond);

void printProofStats() {
  std::printf("\n== E3: Theorem T proof statistics ==\n");
  for (bool Minimal : {true, false}) {
    FieldTable Fields;
    StructureInfo SM = Minimal ? preludeSparseMatrixMinimal(Fields)
                               : preludeSparseMatrixFull(Fields);
    Prover Pr(Fields);
    bool Ok = Pr.proveDisjoint(SM.Axioms,
                               parseRegex("ncolE+", Fields).Value,
                               parseRegex("nrowE+.ncolE+", Fields).Value);
    const ProverStats &S = Pr.stats();
    std::printf("  %-8s axioms: %s; %llu goals, %llu inductions, %llu "
                "hypothesis uses, %llu alt splits\n",
                Minimal ? "minimal" : "full", Ok ? "proved" : "FAILED",
                static_cast<unsigned long long>(S.GoalsExplored),
                static_cast<unsigned long long>(S.Inductions),
                static_cast<unsigned long long>(S.HypothesisHits),
                static_cast<unsigned long long>(S.AltSplits));
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printProofStats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
