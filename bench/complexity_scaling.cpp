//===- bench/complexity_scaling.cpp - Experiment E5: §4.2 complexity ------===//
//
// Part of the APT project. §4.2 argues that although the worst case is
// exponential, practical proofs are dominated by the RE->DFA conversion
// and the whole test behaves like O(n^4) time / O(n^2) space in the
// path-component count n, with n around ten in real code.
//
// This harness grows both the provable and the unprovable query families
// in n and reports prover latency, explored-goal counts, and DFA-state
// construction totals, letting the polynomial be read off the series.
//
//===----------------------------------------------------------------------===//

#include "core/Prelude.h"
#include "core/Prover.h"
#include "regex/Dfa.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace apt;

namespace {

/// L^k . N vs L^(k-1) . R . N over the leaf-linked tree: provable at any
/// depth, with n growing linearly.
std::pair<std::string, std::string> deepTreeQuery(unsigned K) {
  std::string P, Q;
  for (unsigned I = 0; I < K; ++I)
    P += "L.";
  P += "N";
  for (unsigned I = 0; I + 1 < K; ++I)
    Q += "L.";
  Q += "R.N";
  return {P, Q};
}

/// Iteration paths with k row-hops over the sparse matrix: provable,
/// exercising the Kleene machinery at growing depth.
std::pair<std::string, std::string> deepMatrixQuery(unsigned K) {
  std::string Q = "ncolE+";
  for (unsigned I = 0; I < K; ++I)
    Q = "nrowE+." + Q;
  return {"ncolE+", Q};
}

void BM_TreePathLength(benchmark::State &State) {
  FieldTable Fields;
  StructureInfo LLT = preludeLeafLinkedTree(Fields);
  auto [PT, QT] = deepTreeQuery(static_cast<unsigned>(State.range(0)));
  RegexRef P = parseRegex(PT, Fields).Value;
  RegexRef Q = parseRegex(QT, Fields).Value;
  uint64_t Goals = 0;
  for (auto _ : State) {
    Prover Pr(Fields);
    bool Ok = Pr.proveDisjoint(LLT.Axioms, P, Q);
    if (!Ok)
      State.SkipWithError("expected a proof");
    Goals = Pr.stats().GoalsExplored;
  }
  State.counters["components"] = static_cast<double>(State.range(0) + 1);
  State.counters["goals"] = static_cast<double>(Goals);
}
BENCHMARK(BM_TreePathLength)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_MatrixPathLength(benchmark::State &State) {
  FieldTable Fields;
  StructureInfo SM = preludeSparseMatrixMinimal(Fields);
  auto [PT, QT] = deepMatrixQuery(static_cast<unsigned>(State.range(0)));
  RegexRef P = parseRegex(PT, Fields).Value;
  RegexRef Q = parseRegex(QT, Fields).Value;
  uint64_t Goals = 0;
  for (auto _ : State) {
    Prover Pr(Fields);
    bool Ok = Pr.proveDisjoint(SM.Axioms, P, Q);
    if (!Ok)
      State.SkipWithError("expected a proof");
    Goals = Pr.stats().GoalsExplored;
  }
  State.counters["goals"] = static_cast<double>(Goals);
}
BENCHMARK(BM_MatrixPathLength)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

/// The failure path: unprovable queries of growing length (cost of
/// returning Maybe, which §4.2's cutoffs keep bounded).
void BM_UnprovableLength(benchmark::State &State) {
  FieldTable Fields;
  StructureInfo LLT = preludeLeafLinkedTree(Fields);
  unsigned K = static_cast<unsigned>(State.range(0));
  std::string PT, QT = "L";
  for (unsigned I = 0; I < K; ++I)
    PT += I ? ".N" : "N";
  for (unsigned I = 0; I + 1 < K; ++I)
    QT += ".N";
  QT += ".N"; // Q = L.N^k: may collide with N^k (both end deep in the
              // leaf chain), so no proof exists.
  RegexRef P = parseRegex(PT, Fields).Value;
  RegexRef Q = parseRegex(QT, Fields).Value;
  for (auto _ : State) {
    Prover Pr(Fields);
    benchmark::DoNotOptimize(Pr.proveDisjoint(LLT.Axioms, P, Q));
  }
}
BENCHMARK(BM_UnprovableLength)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

/// RE -> DFA conversion cost in isolation (the §4.2 bottleneck): the
/// sparse-matrix "any field" closure with growing alternation width.
void BM_DfaConstruction(benchmark::State &State) {
  FieldTable Fields;
  unsigned Width = static_cast<unsigned>(State.range(0));
  std::string Text = "(";
  for (unsigned I = 0; I < Width; ++I) {
    if (I)
      Text += "|";
    Text += "f" + std::to_string(I);
  }
  Text += ")+.g.(";
  for (unsigned I = 0; I < Width; ++I) {
    if (I)
      Text += "|";
    Text += "f" + std::to_string(I);
  }
  Text += ")*";
  RegexRef R = parseRegex(Text, Fields).Value;
  std::set<FieldId> Syms;
  R->collectSymbols(Syms);
  std::vector<FieldId> Alphabet(Syms.begin(), Syms.end());
  size_t States = 0;
  for (auto _ : State) {
    Dfa D = Dfa::fromRegex(*R, Alphabet);
    States = D.numStates();
    benchmark::DoNotOptimize(States);
  }
  State.counters["dfa_states"] = static_cast<double>(States);
}
BENCHMARK(BM_DfaConstruction)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

void printSeries() {
  std::printf("\n== E5: prover scaling in path length (§4.2) ==\n");
  std::printf("%-26s %10s %12s %12s\n", "query family", "components",
              "goals", "subset-qs");
  for (unsigned K = 2; K <= 14; K += 2) {
    FieldTable Fields;
    StructureInfo LLT = preludeLeafLinkedTree(Fields);
    auto [PT, QT] = deepTreeQuery(K);
    Prover Pr(Fields);
    bool Ok = Pr.proveDisjoint(LLT.Axioms, parseRegex(PT, Fields).Value,
                               parseRegex(QT, Fields).Value);
    std::printf("tree L^%-2u.N vs L^%u.R.N %s %8u %12llu %12llu\n", K,
                K - 1, Ok ? " " : "!", K + 1,
                static_cast<unsigned long long>(Pr.stats().GoalsExplored),
                static_cast<unsigned long long>(
                    Pr.langQuery().stats().SubsetQueries));
  }
  for (unsigned K = 1; K <= 5; ++K) {
    FieldTable Fields;
    StructureInfo SM = preludeSparseMatrixMinimal(Fields);
    auto [PT, QT] = deepMatrixQuery(K);
    Prover Pr(Fields);
    bool Ok = Pr.proveDisjoint(SM.Axioms, parseRegex(PT, Fields).Value,
                               parseRegex(QT, Fields).Value);
    std::printf("matrix (nrowE+)^%u theorem %s %8u %12llu %12llu\n", K,
                Ok ? " " : "!", 2 * K + 2,
                static_cast<unsigned long long>(Pr.stats().GoalsExplored),
                static_cast<unsigned long long>(
                    Pr.langQuery().stats().SubsetQueries));
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
