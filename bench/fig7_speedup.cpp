//===- bench/fig7_speedup.cpp - Experiment E1: Figure 7 -------------------===//
//
// Part of the APT project. Regenerates the paper's Figure 7:
//
//   | 1000x1000, N = 10,000          | 2 PEs | 4 PEs | 7 PEs |
//   | Factor only (partial)          |  1.7  |  2.5  |  3.1  |
//   | Scale, Factor, Solve (partial) |  1.7  |  2.4  |  3.0  |
//   | Factor only (full)             |  1.8  |  3.3  |  5.2  |
//   | Scale, Factor, Solve (full)    |  1.8  |  3.3  |  5.2  |
//
// The paper measured wall-clock speedups of hand-parallelized code on an
// 8-PE Sequent; this machine has one core, so the run replays the
// instrumented kernels on a deterministic multi-PE simulator (see
// DESIGN.md §4). "Partial" parallelizes only the structurally read-only
// steps (simplistic analysis); "full" additionally parallelizes fill-in
// insertion (sophisticated analysis); the pivot-adjustment step is
// inherently sequential in both.
//
//===----------------------------------------------------------------------===//

#include "sparse/Dense.h"
#include "sparse/Kernels.h"
#include "sparse/Workload.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace apt;

namespace {

// The paper's configuration is 1000x1000 with N = 10,000 nonzeros from a
// circuit simulation. An 8-neighbor resistor grid of 32x32 = 1024 nodes
// has ~9.2k nonzeros with circuit-like locality; an unstructured random
// pattern of the same size fills catastrophically under elimination
// (~25x growth), which no circuit matrix does.
constexpr unsigned kGrid = 32;
constexpr unsigned kN = kGrid * kGrid;

// Fork/join cost of one parallel loop on the simulated machine, in
// element-operation units. Calibrated once against the Sequent-era
// synchronization overheads (hundreds of element operations per
// barrier); the same constant applies to every row and PE count.
constexpr uint64_t kBarrierCost = 200;

const std::vector<SparseMatrix::Triplet> &workload() {
  static const std::vector<SparseMatrix::Triplet> Ts =
      resistorGridTriplets(kGrid, kGrid, /*EightNeighbors=*/true);
  return Ts;
}

/// One Figure 7 cell: simulated speedup of the given pipeline/policy.
double simulatedSpeedup(bool WholePipeline, ParallelPolicy Policy,
                        unsigned Pes, FactorResult *OutF = nullptr) {
  PeSimulator Sim(Pes, kBarrierCost);
  KernelOptions Opts;
  Opts.Policy = Policy;
  Opts.Model = &Sim;
  SparseMatrix M = SparseMatrix::fromTriplets(kN, workload());
  if (WholePipeline) {
    std::vector<double> X =
        scaleFactorSolve(M, randomScaling(kN, 3), randomVector(kN, 7), Opts);
    if (X.empty())
      return 0.0;
  } else {
    FactorResult F = factor(M, Opts);
    if (F.Singular)
      return 0.0;
    if (OutF)
      *OutF = std::move(F);
  }
  return static_cast<double>(Sim.totalWork()) /
         static_cast<double>(Sim.elapsed());
}

void BM_Fig7Cell(benchmark::State &State) {
  bool Whole = State.range(0) != 0;
  ParallelPolicy Policy =
      State.range(1) != 0 ? ParallelPolicy::Full : ParallelPolicy::Partial;
  unsigned Pes = static_cast<unsigned>(State.range(2));
  double Speedup = 0;
  for (auto _ : State)
    Speedup = simulatedSpeedup(Whole, Policy, Pes);
  State.counters["speedup"] = Speedup;
  State.SetLabel(std::string(Whole ? "scale+factor+solve" : "factor") +
                 "/" + parallelPolicyName(Policy) + "/" +
                 std::to_string(Pes) + "PE");
}

BENCHMARK(BM_Fig7Cell)
    ->Args({0, 0, 2})
    ->Args({0, 0, 4})
    ->Args({0, 0, 7})
    ->Args({1, 0, 2})
    ->Args({1, 0, 4})
    ->Args({1, 0, 7})
    ->Args({0, 1, 2})
    ->Args({0, 1, 4})
    ->Args({0, 1, 7})
    ->Args({1, 1, 2})
    ->Args({1, 1, 4})
    ->Args({1, 1, 7})
    ->Unit(benchmark::kMillisecond);

/// Prints the figure in the paper's row/column layout, plus the phase
/// decomposition that explains the shape.
void printFigure() {
  std::printf("\n== Figure 7: sparse matrix speedup results "
              "(simulated PEs) ==\n");
  std::printf("%dx%d, N = %zu actual nonzeros\n\n", kN, kN,
              workload().size());

  struct RowSpec {
    const char *Label;
    bool Whole;
    ParallelPolicy Policy;
  } Rows[] = {
      {"Factor only (partial)", false, ParallelPolicy::Partial},
      {"Scale, Factor, Solve (partial)", true, ParallelPolicy::Partial},
      {"Factor only (full)", false, ParallelPolicy::Full},
      {"Scale, Factor, Solve (full)", true, ParallelPolicy::Full},
  };
  std::printf("| %-32s | 2 PEs | 4 PEs | 7 PEs |\n", "");
  std::printf("|----------------------------------|-------|-------|-------|\n");
  for (const RowSpec &R : Rows) {
    std::printf("| %-32s |", R.Label);
    for (unsigned Pes : {2u, 4u, 7u})
      std::printf("  %4.1f |", simulatedSpeedup(R.Whole, R.Policy, Pes));
    std::printf("\n");
  }

  FactorResult F;
  simulatedSpeedup(false, ParallelPolicy::Full, 7, &F);
  uint64_t Total = F.totalOps();
  std::printf("\nFactorization phase breakdown (%zu fill-ins):\n",
              F.Fillins);
  std::printf("  heuristic %5.1f%%  search %5.1f%%  adjust(seq) %5.1f%%  "
              "fillin %5.1f%%  eliminate %5.1f%%\n",
              100.0 * F.HeuristicOps / Total, 100.0 * F.SearchOps / Total,
              100.0 * F.AdjustOps / Total, 100.0 * F.FillinOps / Total,
              100.0 * F.ElimOps / Total);
  std::printf("\nPaper reference: partial 1.7/2.5/3.1 (factor), "
              "1.7/2.4/3.0 (sfs);\n                 full    1.8/3.3/5.2 "
              "(factor), 1.8/3.3/5.2 (sfs)\n");
}

} // namespace

int main(int argc, char **argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
