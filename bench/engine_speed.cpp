//===- bench/engine_speed.cpp - Experiment E12: raw-speed engine pass -----===//
//
// Part of the APT project. Measures the raw-speed engine pass -- arena
// allocation (support/Arena.h), the bit-parallel subset kernel
// (regex/Subset.h), thread-local product scratch, and the zero-
// allocation warm query path -- against the classic representations
// they replaced:
//
//  * BM_EngineWarm/{0,1}: warm batch throughput (store pre-warmed, a
//    fresh LangQuery per batch, exactly the E9 pool of
//    bench/langops_scaling so the numbers are directly comparable to
//    BENCH_langops.baseline.json), with the bit-parallel kernel off (0)
//    and on (1). tools/bench_check.py gates the on-variant at
//    --warm-factor (default 1.3x) over the langops baseline's
//    overhauled throughput.
//  * BM_EngineCold/{0,1}: cold end-to-end cost -- store rebuilt per
//    batch over a construction-heavy pool (the E9 pairs plus
//    Myhill-Nerode blowup families, where subset construction and
//    Hopcroft dominate). The on-variant must beat the off-variant by
//    --cold-speedup (default 1.15x).
//
// Peak RSS (getrusage) and the process-wide arena high-water mark are
// exported as user counters and recorded into BENCH_engine.json; the
// bench_smoke_engine ctest fails regressions against the checked-in
// BENCH_engine.baseline.json.
//
//===----------------------------------------------------------------------===//

#include "regex/LangOps.h"
#include "regex/Minimize.h"
#include "regex/RegexParser.h"
#include "support/Arena.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <random>
#include <string>
#include <sys/resource.h>
#include <utility>
#include <vector>

using namespace apt;

namespace {

/// The E9 pool, bit for bit (bench/langops_scaling.cpp): the same fixed
/// rows and the same seeded generated tail, so warm throughput here is
/// comparable with the BENCH_langops baseline trajectory.
struct PairPool {
  FieldTable Fields;
  std::vector<std::pair<RegexRef, RegexRef>> Pairs;

  PairPool() {
    const char *Fixed[][2] = {
        {"L.L.N", "L.R.N"},
        {"L.N", "R.N"},
        {"eps", "(L|R|N)+"},
        {"L.L.N.N", "L.R.N"},
        {"(L|R)*.N", "(L|R)*.N.N"},
        {"(L|R)+.N", "N.(L|R)+"},
        {"ncolE+", "nrowE+.ncolE+"},
        {"relem.ncolE*", "nrowH.relem.ncolE*"},
        {"ncolE+", "ncolE+"},
        {"rows.(nrowH)*.relem", "rows.nrowH+.relem.ncolE+"},
        {"(nrowH|relem)*.ncolE", "relem.(ncolE|nrowE)*"},
        {"rows.relem.ncolE*.val", "rows.nrowH.relem.ncolE*.val"},
    };
    for (auto &Row : Fixed)
      Pairs.emplace_back(parseRegex(Row[0], Fields).Value,
                         parseRegex(Row[1], Fields).Value);

    std::vector<FieldId> Alpha;
    for (const char *Name : {"L", "R", "N", "ncolE", "nrowE"})
      Alpha.push_back(Fields.intern(Name));
    std::mt19937 Rng(20260805);
    std::function<RegexRef(int)> Gen = [&](int Depth) -> RegexRef {
      unsigned Pick = Rng() % (Depth <= 0 ? 5 : 9);
      if (Pick < 5)
        return Regex::symbol(Alpha[Rng() % Alpha.size()]);
      switch (Pick % 4) {
      case 0:
        return Regex::concat(Gen(Depth - 1), Gen(Depth - 1));
      case 1:
        return Regex::alt(Gen(Depth - 1), Gen(Depth - 1));
      case 2:
        return Regex::star(Gen(Depth - 1));
      default:
        return Regex::plus(Gen(Depth - 1));
      }
    };
    while (Pairs.size() < 48)
      Pairs.emplace_back(Gen(3), Gen(3));
  }
};

PairPool &pool() {
  static PairPool P;
  return P;
}

/// Construction-heavy extension for the cold runs: Myhill-Nerode blowup
/// families ((a|b)*.a.(a|b)^n has a 2^(n+1)-state minimal DFA) plus long
/// chains whose Thompson NFAs span multiple 64-bit words. Subset
/// construction and Hopcroft dominate these end to end, which is what
/// the bit-parallel kernel is for.
struct ColdPool {
  std::vector<std::pair<RegexRef, RegexRef>> Pairs;

  ColdPool() {
    FieldTable &Fields = pool().Fields;
    auto Parse = [&](const std::string &Text) {
      return parseRegex(Text, Fields).Value;
    };
    for (size_t N : {4, 5, 6}) {
      std::string Blow = "(L|R)*.L";
      for (size_t I = 0; I < N; ++I)
        Blow += ".(L|R)";
      Pairs.emplace_back(Parse(Blow), Parse("(L|R)*.R.(L|R)"));
    }
    std::string Chain = "(L|R)";
    for (int I = 0; I < 23; ++I)
      Chain += ".(L|R)";
    Pairs.emplace_back(Parse(Chain + ".N*"), Parse(Chain + ".N+"));
    Pairs.insert(Pairs.end(), pool().Pairs.begin(), pool().Pairs.end());
  }
};

ColdPool &coldPool() {
  static ColdPool P;
  return P;
}

uint64_t runBatch(const std::vector<std::pair<RegexRef, RegexRef>> &Pairs,
                  const LangOptions &Opts, MinDfaStore *Store) {
  LangQuery Q(Opts);
  Q.attachDfaStore(Store);
  uint64_t Negatives = 0;
  for (const auto &[A, B] : Pairs) {
    Negatives += !Q.subsetOf(A, B);
    Negatives += !Q.disjoint(A, B);
  }
  return Negatives;
}

double peakRssKb() {
  struct rusage Ru;
  if (getrusage(RUSAGE_SELF, &Ru) != 0)
    return 0.0;
  return static_cast<double>(Ru.ru_maxrss); // KiB on Linux.
}

/// Warm throughput on the E9 pool; range(0) toggles the bit-parallel
/// kernel. Warm batches share the thread-local product scratch and the
/// interned store, so this is the engine's steady-state query path.
void BM_EngineWarm(benchmark::State &State) {
  LangOptions Opts;
  Opts.BitParallel = State.range(0) != 0;
  MinDfaStore Store(16);
  uint64_t Negatives = runBatch(pool().Pairs, Opts, &Store);

  for (auto _ : State) {
    uint64_t N = runBatch(pool().Pairs, Opts, &Store);
    benchmark::DoNotOptimize(N);
    if (N != Negatives)
      State.SkipWithError("verdict checksum changed between batches");
  }
  State.SetItemsProcessed(static_cast<int64_t>(pool().Pairs.size()) * 2 *
                          State.iterations());
  State.counters["negatives"] = static_cast<double>(Negatives);
  State.counters["store_entries"] = static_cast<double>(Store.size());
  State.counters["peak_rss_kb"] = peakRssKb();
  State.counters["arena_high_water"] =
      static_cast<double>(Arena::statsSnapshot().HighWaterMax);
  State.SetLabel(Opts.BitParallel ? "warm, bit-parallel kernel"
                                  : "warm, classic subset construction");
}
BENCHMARK(BM_EngineWarm)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

/// Cold end-to-end: the store is rebuilt per batch over the
/// construction-heavy pool, so every iteration pays Thompson, subset
/// construction, Hopcroft, and interning.
void BM_EngineCold(benchmark::State &State) {
  LangOptions Opts;
  Opts.BitParallel = State.range(0) != 0;
  uint64_t Expect = 0;
  {
    MinDfaStore Store(16);
    Expect = runBatch(coldPool().Pairs, Opts, &Store);
  }
  for (auto _ : State) {
    MinDfaStore Store(16);
    uint64_t N = runBatch(coldPool().Pairs, Opts, &Store);
    benchmark::DoNotOptimize(N);
    if (N != Expect)
      State.SkipWithError("verdict checksum changed between batches");
  }
  State.SetItemsProcessed(static_cast<int64_t>(coldPool().Pairs.size()) * 2 *
                          State.iterations());
  State.counters["negatives"] = static_cast<double>(Expect);
  State.counters["peak_rss_kb"] = peakRssKb();
  State.SetLabel(Opts.BitParallel
                     ? "cold, bit-parallel kernel + arena scratch"
                     : "cold, classic subset construction");
}
BENCHMARK(BM_EngineCold)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
