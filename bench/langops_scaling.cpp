//===- bench/langops_scaling.cpp - Experiment E9: language-engine scaling -===//
//
// Part of the APT project. Measures the overhauled language-query
// pipeline (alphabet compression + Hopcroft minimization + on-the-fly
// product emptiness over interned minimal DFAs) against the classic
// materialized pipeline (union-alphabet DFAs, complement, full product)
// on an E8-style batch workload: a fixed pool of path-expression pairs,
// answered by a *fresh* LangQuery per batch, the way each prover run
// inside the batch engine starts with cold memo caches.
//
// Measured effects:
//
//  * warm-query throughput -- with the interned MinDfaStore warm, the
//    overhauled pipeline skips every DFA construction and only walks the
//    lazy product; the issue pins this at >= 2x over classic;
//  * cold-store cost -- the same pipeline paying construction +
//    minimization on first contact, the worst case;
//  * memory flatness across --jobs -- the global store is shared by all
//    batch workers, so its entry count must not scale with the worker
//    count (printed by the E9 summary below).
//
// tools/bench_check.py runs this binary in JSON mode, records the warm
// throughputs into BENCH_langops.json, and fails the bench_smoke ctest
// on a >25% regression against the checked-in baseline.
//
//===----------------------------------------------------------------------===//

#include "analysis/QueryEngine.h"
#include "ir/Parser.h"
#include "regex/LangOps.h"
#include "regex/Minimize.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <utility>
#include <vector>

using namespace apt;

namespace {

/// Fixed pool of query pairs: the hand-written rows are the access-path
/// languages the E2/E3 provers actually compare (leaf-linked trees and
/// sparse matrices); the generated tail adds breadth so the pool is not
/// dominated by a handful of tiny automata.
struct PairPool {
  FieldTable Fields;
  std::vector<std::pair<RegexRef, RegexRef>> Pairs;

  PairPool() {
    const char *Fixed[][2] = {
        {"L.L.N", "L.R.N"},
        {"L.N", "R.N"},
        {"eps", "(L|R|N)+"},
        {"L.L.N.N", "L.R.N"},
        {"(L|R)*.N", "(L|R)*.N.N"},
        {"(L|R)+.N", "N.(L|R)+"},
        {"ncolE+", "nrowE+.ncolE+"},
        {"relem.ncolE*", "nrowH.relem.ncolE*"},
        {"ncolE+", "ncolE+"},
        {"rows.(nrowH)*.relem", "rows.nrowH+.relem.ncolE+"},
        {"(nrowH|relem)*.ncolE", "relem.(ncolE|nrowE)*"},
        {"rows.relem.ncolE*.val", "rows.nrowH.relem.ncolE*.val"},
    };
    for (auto &Row : Fixed)
      Pairs.emplace_back(parseRegex(Row[0], Fields).Value,
                         parseRegex(Row[1], Fields).Value);

    // Deterministic generated tail over a small alphabet.
    std::vector<FieldId> Alpha;
    for (const char *Name : {"L", "R", "N", "ncolE", "nrowE"})
      Alpha.push_back(Fields.intern(Name));
    std::mt19937 Rng(20260805);
    std::function<RegexRef(int)> Gen = [&](int Depth) -> RegexRef {
      unsigned Pick = Rng() % (Depth <= 0 ? 5 : 9);
      if (Pick < 5)
        return Regex::symbol(Alpha[Rng() % Alpha.size()]);
      switch (Pick % 4) {
      case 0:
        return Regex::concat(Gen(Depth - 1), Gen(Depth - 1));
      case 1:
        return Regex::alt(Gen(Depth - 1), Gen(Depth - 1));
      case 2:
        return Regex::star(Gen(Depth - 1));
      default:
        return Regex::plus(Gen(Depth - 1));
      }
    };
    while (Pairs.size() < 48)
      Pairs.emplace_back(Gen(3), Gen(3));
  }
};

PairPool &pool() {
  static PairPool P;
  return P;
}

/// One batch: a fresh LangQuery answers subset + disjoint for every pair
/// in the pool. Returns the number of negative verdicts (a checksum the
/// optimizer cannot elide and the configs must agree on).
uint64_t runBatch(const LangOptions &Opts, MinDfaStore *Store) {
  LangQuery Q(Opts);
  Q.attachDfaStore(Store);
  uint64_t Negatives = 0;
  for (const auto &[A, B] : pool().Pairs) {
    Negatives += !Q.subsetOf(A, B);
    Negatives += !Q.disjoint(A, B);
  }
  return Negatives;
}

/// Warm throughput: range(0) selects classic (0) or overhauled (1). The
/// overhauled config runs against a pre-warmed private store, so steady
/// state measures only the lazy product walks.
void BM_WarmQueries(benchmark::State &State) {
  bool Overhauled = State.range(0) != 0;
  LangOptions Opts;
  Opts.OnTheFlyProduct = Overhauled;
  MinDfaStore Store(16);
  uint64_t Negatives = runBatch(Opts, &Store); // Warm the store once.

  for (auto _ : State) {
    uint64_t N = runBatch(Opts, &Store);
    benchmark::DoNotOptimize(N);
    if (N != Negatives)
      State.SkipWithError("verdict checksum changed between batches");
  }
  State.SetItemsProcessed(static_cast<int64_t>(pool().Pairs.size()) * 2 *
                          State.iterations());
  State.counters["negatives"] = static_cast<double>(Negatives);
  State.counters["store_entries"] = static_cast<double>(Store.size());
  State.SetLabel(Overhauled
                     ? "overhauled (warm interned store, lazy product)"
                     : "classic (materialized union-alphabet pipeline)");
}
BENCHMARK(BM_WarmQueries)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

/// Cold store: every iteration pays subset construction, minimization,
/// and interning from scratch -- the first-contact worst case.
void BM_ColdStore(benchmark::State &State) {
  LangOptions Opts; // overhauled defaults
  for (auto _ : State) {
    MinDfaStore Store(16);
    uint64_t N = runBatch(Opts, &Store);
    benchmark::DoNotOptimize(N);
  }
  State.SetItemsProcessed(static_cast<int64_t>(pool().Pairs.size()) * 2 *
                          State.iterations());
  State.SetLabel("overhauled, store rebuilt per batch");
}
BENCHMARK(BM_ColdStore)->Unit(benchmark::kMillisecond);

/// A small E8-style program for the jobs-flatness report: enough labeled
/// pairs to occupy several workers, few enough to stay fast.
const char *kJobsProgram = R"(
type RowHeader {
  nrowH: RowHeader;
  relem: Element;
  axiom forall p <> q: p.nrowH <> q.nrowH;
  axiom forall p <> q: p.relem.ncolE* <> q.relem.ncolE*;
}
type Element {
  ncolE: Element;
  nrowE: Element;
  val: int;
  axiom forall p <> q: p.ncolE <> q.ncolE;
  axiom forall p <> q: p.nrowE <> q.nrowE;
  axiom forall p: p.ncolE+ <> p.nrowE+;
}
fn sweep(h: RowHeader) {
  r = h;
  while r {
    e = r.relem;
    while e {
      A0: e.val = fun();
      A1: e.val = fun();
      e = e.ncolE;
    }
    r = r.nrowH;
  }
}
fn eliminate(pivot: Element) {
  a = pivot.nrowE;
  while a {
    t = a.ncolE;
    while t {
      B0: t.val = fun();
      B1: t.val = fun();
      t = t.ncolE;
    }
    a = a.nrowE;
  }
}
fn gather(h: RowHeader) {
  a = h.relem;
  n = h.nrowH;
  b = n.relem;
  m = n.nrowH;
  c = m.relem;
  C0: a.val = fun();
  C1: b.val = fun();
  C2: c.val = fun();
}
fn walk(p: Element) {
  x = p.ncolE;
  y = p.nrowE;
  z = x.ncolE;
  D0: x.val = fun();
  D1: y.val = fun();
  D2: z.val = fun();
}
)";

void printScalingReport() {
  std::printf("\n== E9: language-engine scaling ==\n");

  // Verdict parity + single-process store growth across configs.
  LangOptions Classic;
  Classic.OnTheFlyProduct = false;
  LangOptions Overhauled;
  MinDfaStore Store(16);
  uint64_t NegClassic = runBatch(Classic, &Store);
  uint64_t NegNew = runBatch(Overhauled, &Store);
  std::printf("  pool: %zu pairs, %llu negative verdicts "
              "(classic %llu) -- %s\n",
              pool().Pairs.size(),
              static_cast<unsigned long long>(NegNew),
              static_cast<unsigned long long>(NegClassic),
              NegNew == NegClassic ? "configs agree" : "MISMATCH");

  // Memory flatness: the global interned store must not grow with the
  // batch engine's worker count -- every worker resolves the same regex
  // keys against the same shared entries.
  FieldTable Fields;
  ProgramParseResult Parsed = parseProgram(kJobsProgram, Fields);
  if (!Parsed) {
    std::fprintf(stderr, "jobs program failed to parse: %s\n",
                 Parsed.Error.c_str());
    std::exit(1);
  }
  size_t Before = MinDfaStore::global().size();
  for (unsigned Jobs : {1u, 2u, 4u}) {
    BatchOptions Opts;
    Opts.Jobs = Jobs;
    BatchQueryEngine Engine(Parsed.Value, Fields, Opts);
    Engine.runAll();
    std::printf("  jobs=%u: global store %zu entries (+%zu), "
                "%llu queries\n",
                Jobs, MinDfaStore::global().size(),
                MinDfaStore::global().size() - Before,
                static_cast<unsigned long long>(
                    Engine.stats().Queries));
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printScalingReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
