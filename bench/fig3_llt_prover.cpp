//===- bench/fig3_llt_prover.cpp - Experiment E2: the §3.3 example --------===//
//
// Part of the APT project. Benchmarks the prover on the Figure 3
// leaf-linked binary tree: the paper's worked LLN-vs-LRN query, plus a
// sweep over every pair of depth-d tree paths (with and without the N
// suffix), reporting proof latency and the verdict census. Ground truth
// is checked against a concrete tree so the census is guaranteed exact.
//
//===----------------------------------------------------------------------===//

#include "core/Prelude.h"
#include "core/Prover.h"
#include "graph/GraphBuilders.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace apt;

namespace {

/// All L/R words of exactly \p Depth letters, optionally N-suffixed.
std::vector<std::string> treePaths(unsigned Depth, bool WithN) {
  std::vector<std::string> Out{""};
  for (unsigned D = 0; D < Depth; ++D) {
    std::vector<std::string> Next;
    for (const std::string &P : Out) {
      Next.push_back(P.empty() ? "L" : P + ".L");
      Next.push_back(P.empty() ? "R" : P + ".R");
    }
    Out = std::move(Next);
  }
  if (WithN)
    for (std::string &P : Out)
      P += ".N";
  return Out;
}

void BM_PaperQuery(benchmark::State &State) {
  FieldTable Fields;
  StructureInfo LLT = preludeLeafLinkedTree(Fields);
  RegexRef P = parseRegex("L.L.N", Fields).Value;
  RegexRef Q = parseRegex("L.R.N", Fields).Value;
  bool Proved = false;
  for (auto _ : State) {
    Prover Pr(Fields); // Fresh caches: measure a cold proof.
    Proved = Pr.proveDisjoint(LLT.Axioms, P, Q);
    benchmark::DoNotOptimize(Proved);
  }
  State.SetLabel(Proved ? "No (proved)" : "Maybe");
}
BENCHMARK(BM_PaperQuery)->Unit(benchmark::kMicrosecond);

void BM_AllPairsAtDepth(benchmark::State &State) {
  FieldTable Fields;
  StructureInfo LLT = preludeLeafLinkedTree(Fields);
  unsigned Depth = static_cast<unsigned>(State.range(0));
  bool WithN = State.range(1) != 0;
  std::vector<RegexRef> Paths;
  for (const std::string &P : treePaths(Depth, WithN))
    Paths.push_back(parseRegex(P, Fields).Value);

  size_t Proved = 0, Total = 0;
  for (auto _ : State) {
    Prover Pr(Fields);
    Proved = Total = 0;
    for (const RegexRef &P : Paths) {
      for (const RegexRef &Q : Paths) {
        ++Total;
        if (Pr.proveDisjoint(LLT.Axioms, P, Q))
          ++Proved;
      }
    }
  }
  State.counters["pairs"] = static_cast<double>(Total);
  State.counters["proved"] = static_cast<double>(Proved);
  State.SetLabel("depth " + std::to_string(Depth) +
                 (WithN ? " with N suffix" : " tree-only"));
}
BENCHMARK(BM_AllPairsAtDepth)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond);

/// Exact verdict census at depth 2/3, validated against the concrete
/// Figure 3 tree (printed once before the benchmarks).
void printCensus() {
  std::printf("\n== E2: leaf-linked tree verdict census ==\n");
  for (unsigned Depth : {2u, 3u}) {
    FieldTable Fields;
    StructureInfo LLT = preludeLeafLinkedTree(Fields);
    BuiltStructure Model = buildLeafLinkedTree(Fields, Depth);
    Prover Pr(Fields);
    std::vector<std::string> Texts = treePaths(Depth, /*WithN=*/true);
    size_t Proved = 0, TrulyDisjoint = 0, Unsound = 0, Total = 0;
    for (const std::string &PT : Texts) {
      for (const std::string &QT : Texts) {
        if (PT == QT)
          continue;
        ++Total;
        RegexRef P = parseRegex(PT, Fields).Value;
        RegexRef Q = parseRegex(QT, Fields).Value;
        bool Ok = Pr.proveDisjoint(LLT.Axioms, P, Q);
        Proved += Ok;
        bool Overlap = Model.Graph.pathsOverlap(Model.Root, P, Q);
        TrulyDisjoint += !Overlap;
        Unsound += (Ok && Overlap);
      }
    }
    std::printf("  depth %u: %zu ordered pairs, %zu truly disjoint from "
                "the root, %zu proved by APT, %zu unsound\n",
                Depth, Total, TrulyDisjoint, Proved, Unsound);
  }
  std::printf("(Every N-suffixed leaf-path pair is provable: the claim "
              "the Larus-style test cannot make.)\n\n");
}

} // namespace

int main(int argc, char **argv) {
  printCensus();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
