//===- bench/table_accuracy.cpp - Experiment E4: accuracy comparison ------===//
//
// Part of the APT project. The paper's central qualitative claim
// (§2.3/§2.4/§5): existing tests are precise only for lists and trees,
// while APT also breaks false dependences in DAGs (leaf-linked trees,
// sparse matrices) and handles cyclic structures via equality axioms.
//
// This harness runs a fixed query suite over six structures through all
// four oracles and prints a verdict table; ground truth from concrete
// heap graphs guards against unsound No answers (any unsoundness aborts
// the run). The benchmark half measures per-oracle query latency.
//
//===----------------------------------------------------------------------===//

#include "baselines/Oracle.h"
#include "core/Prelude.h"
#include "graph/AxiomChecker.h"
#include "graph/GraphBuilders.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

using namespace apt;

namespace {

/// One accuracy query: two paths over one structure, with the expected
/// ground truth (true = genuinely disjoint everywhere in the model).
struct AccuracyQuery {
  const char *Structure;
  const char *P, *Q;
  bool LoopCarried; ///< P = per-iteration access, Q = increment.
};

const AccuracyQuery kSuite[] = {
    // Lists: everything should handle straight-line queries; only
    // relational tests survive the unbounded loop.
    {"LinkedList", "eps", "next", false},
    {"LinkedList", "next", "next.next", false},
    {"LinkedList", "eps", "next", true},
    // Plain trees: the Larus-style test is precise here.
    {"BinaryTree", "L.L", "L.R", false},
    {"BinaryTree", "L.(L|R)*", "R.(L|R)*", false},
    // Leaf-linked tree: the paper's §3.3 query and its starred variant.
    {"LLBinaryTree", "L.L.N", "L.R.N", false},
    {"LLBinaryTree", "L.N", "R.N", false},
    {"LLBinaryTree", "eps", "(L|R|N)+", false},
    // Sparse matrix: Theorem T (loop-carried) and the header variant.
    {"SparseMatrix", "ncolE+", "nrowE", true},
    {"SparseMatrix", "relem.ncolE*", "nrowH", true},
    // Cyclic: the ring needs equality axioms; nothing else can help.
    {"DoublyLinkedRing", "eps", "next", false},
    {"DoublyLinkedRing", "next", "prev", false},
    // 2-D range tree.
    {"RangeTree2D", "L.sub.(yL|yR|yN)*", "R.sub.(yL|yR|yN)*", false},
    {"RangeTree2D", "L.L", "L.sub.yL", false},
};

struct Setup {
  FieldTable Fields;
  std::map<std::string, StructureInfo> Infos;
  std::map<std::string, BuiltStructure> Models;

  Setup() {
    Infos["LinkedList"] = preludeLinkedList(Fields);
    Infos["BinaryTree"] = preludeBinaryTree(Fields);
    Infos["LLBinaryTree"] = preludeLeafLinkedTree(Fields);
    Infos["SparseMatrix"] = preludeSparseMatrixFull(Fields);
    Infos["DoublyLinkedRing"] = preludeDoublyLinkedRing(Fields);
    Infos["RangeTree2D"] = preludeRangeTree2D(Fields);

    Models.emplace("LinkedList", buildLinkedList(Fields, 12));
    Models.emplace("BinaryTree", buildBinaryTree(Fields, 4));
    Models.emplace("LLBinaryTree", buildLeafLinkedTree(Fields, 2));
    Models.emplace("SparseMatrix",
                   buildSparseMatrixGraph(
                       Fields, {{0, 0}, {0, 2}, {0, 5}, {1, 1}, {1, 2},
                                {2, 0}, {2, 3}, {3, 3}, {3, 4}, {3, 5},
                                {4, 1}, {4, 4}, {5, 0}, {5, 5}}));
    Models.emplace("DoublyLinkedRing", buildDoublyLinkedRing(Fields, 8));
    Models.emplace("RangeTree2D", buildRangeTree2D(Fields, 2, 2));

    // Every model must satisfy its axioms, or the comparison is void.
    for (auto &[Name, Info] : Infos) {
      if (checkAxioms(Models.at(Name).Graph, Info.Axioms, Fields)) {
        std::fprintf(stderr, "model %s violates its axioms\n",
                     Name.c_str());
        std::abort();
      }
    }
  }

  RegexRef parse(const char *Text) {
    RegexParseResult R = parseRegex(Text, Fields);
    if (!R) {
      std::fprintf(stderr, "bad regex %s: %s\n", Text, R.Error.c_str());
      std::abort();
    }
    return R.Value;
  }

  DepVerdict ask(DependenceOracle &O, const AccuracyQuery &Q) {
    const StructureInfo &Info = Infos.at(Q.Structure);
    if (auto *KL = dynamic_cast<KLimitedOracle *>(&O))
      KL->setModel(&Models.at(Q.Structure).Graph,
                   Models.at(Q.Structure).Root);
    if (Q.LoopCarried)
      return O.mayAliasLoopCarried(Info, parse(Q.P), parse(Q.Q));
    return O.mayAlias(Info, parse(Q.P), parse(Q.Q));
  }

  /// Validates a No verdict against the concrete model (universal
  /// oracles from every node; the handle-anchored k-limited from the
  /// root only).
  void checkSound(DependenceOracle &O, const AccuracyQuery &Q,
                  DepVerdict V) {
    if (V != DepVerdict::No || Q.LoopCarried)
      return;
    const BuiltStructure &B = Models.at(Q.Structure);
    bool HandleAnchored = dynamic_cast<KLimitedOracle *>(&O) != nullptr;
    RegexRef P = parse(Q.P), QQ = parse(Q.Q);
    for (HeapGraph::NodeId Node = 0; Node < B.Graph.numNodes(); ++Node) {
      if (HandleAnchored && Node != B.Root)
        continue;
      if (B.Graph.pathsOverlap(Node, P, QQ)) {
        std::fprintf(stderr, "UNSOUND: %s said No on %s: %s vs %s\n",
                     O.name().c_str(), Q.Structure, Q.P, Q.Q);
        std::abort();
      }
    }
  }
};

void printTable() {
  Setup S;
  TypeBasedOracle TB;
  KLimitedOracle KL(2);
  LarusOracle LA;
  AptOracle APT(S.Fields);
  DependenceOracle *Oracles[] = {&TB, &KL, &LA, &APT};

  std::printf("\n== E4: dependence-test accuracy comparison ==\n");
  std::printf("Verdict per oracle (No = independence proven; unsound No "
              "answers abort the run):\n\n");
  std::printf("%-17s %-34s %-11s %-13s %-18s %-5s\n", "structure",
              "query", "type-based", "k-limited(2)", "path-intersection",
              "APT");
  int Wins[4] = {0, 0, 0, 0};
  for (const AccuracyQuery &Q : kSuite) {
    std::string QueryText = std::string(Q.P) + " vs " +
                            (Q.LoopCarried ? std::string("carried(") +
                                                 Q.Q + ")"
                                           : std::string(Q.Q));
    std::printf("%-17s %-34s", Q.Structure, QueryText.c_str());
    int Idx = 0;
    for (DependenceOracle *O : Oracles) {
      DepVerdict V = S.ask(*O, Q);
      S.checkSound(*O, Q, V);
      if (V == DepVerdict::No)
        ++Wins[Idx];
      std::printf(" %-*s", Idx == 0   ? 11
                           : Idx == 1 ? 13
                           : Idx == 2 ? 18
                                      : 5,
                  depVerdictName(V));
      ++Idx;
    }
    std::printf("\n");
  }
  size_t Total = sizeof(kSuite) / sizeof(kSuite[0]);
  std::printf("\nIndependences proven (of %zu queries): type-based %d, "
              "k-limited %d, path-intersection %d, APT %d\n\n",
              Total, Wins[0], Wins[1], Wins[2], Wins[3]);
}

void BM_OracleSuite(benchmark::State &State) {
  Setup S;
  std::unique_ptr<DependenceOracle> O;
  switch (State.range(0)) {
  case 0:
    O = std::make_unique<TypeBasedOracle>();
    break;
  case 1:
    O = std::make_unique<KLimitedOracle>(2);
    break;
  case 2:
    O = std::make_unique<LarusOracle>();
    break;
  default:
    O = std::make_unique<AptOracle>(S.Fields);
    break;
  }
  for (auto _ : State)
    for (const AccuracyQuery &Q : kSuite)
      benchmark::DoNotOptimize(S.ask(*O, Q));
  State.SetLabel(O->name());
}
BENCHMARK(BM_OracleSuite)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
