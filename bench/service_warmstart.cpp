//===- bench/service_warmstart.cpp - Experiment E10: snapshot warm start --===//
//
// Part of the APT project. Measures what the aptd snapshot mechanism
// (src/service/Snapshot.h) actually buys: a cold daemon must pay subset
// construction + Hopcroft minimization for every automaton a workload
// touches, while a warm-started daemon deserializes the interned
// minimal-DFA store from disk and only walks lazy products.
//
//  * BM_ServiceColdStart -- fresh store per iteration: construction,
//    minimization, interning, then the query sweep (the first-request
//    cost of a cold daemon);
//  * BM_ServiceWarmStart -- per iteration: read + parse + restore the
//    snapshot file, then the same query sweep (the first-request cost
//    of `aptd --snapshot-load`). Deserialization is included on
//    purpose: the gate compares end-to-end first-request latencies.
//
// The workload is a construction-heavy variant of the E9 pair pool
// (bench/langops_scaling.cpp): the hand-written leaf-linked-tree and
// sparse-matrix rows plus a deterministic generated tail at depth 4,
// 96 pairs total, so automaton construction dominates the cold run.
//
// tools/bench_check.py --mode service runs this binary in JSON mode and
// fails the bench_smoke_service ctest when warm/cold exceeds 0.6 or the
// warm throughput regresses against bench/BENCH_service.baseline.json.
//
//===----------------------------------------------------------------------===//

#include "regex/LangOps.h"
#include "regex/Minimize.h"
#include "regex/RegexParser.h"
#include "service/Snapshot.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Timeline.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

using namespace apt;

namespace {

/// Construction-heavy pair pool: E9's fixed rows plus a depth-7
/// generated tail (96 pairs), so the cold path is dominated by subset
/// construction + minimization rather than product walks. Depth
/// matters: determinization cost grows super-linearly with regex depth
/// while the *minimal* DFA (what the snapshot stores) stays small, so
/// deeper pairs widen exactly the gap the snapshot is meant to close.
struct PairPool {
  FieldTable Fields;
  std::vector<std::pair<RegexRef, RegexRef>> Pairs;

  PairPool() {
    const char *Fixed[][2] = {
        {"L.L.N", "L.R.N"},
        {"L.N", "R.N"},
        {"eps", "(L|R|N)+"},
        {"L.L.N.N", "L.R.N"},
        {"(L|R)*.N", "(L|R)*.N.N"},
        {"(L|R)+.N", "N.(L|R)+"},
        {"ncolE+", "nrowE+.ncolE+"},
        {"relem.ncolE*", "nrowH.relem.ncolE*"},
        {"ncolE+", "ncolE+"},
        {"rows.(nrowH)*.relem", "rows.nrowH+.relem.ncolE+"},
        {"(nrowH|relem)*.ncolE", "relem.(ncolE|nrowE)*"},
        {"rows.relem.ncolE*.val", "rows.nrowH.relem.ncolE*.val"},
    };
    for (auto &Row : Fixed)
      Pairs.emplace_back(parseRegex(Row[0], Fields).Value,
                         parseRegex(Row[1], Fields).Value);

    std::vector<FieldId> Alpha;
    for (const char *Name : {"L", "R", "N", "ncolE", "nrowE", "relem"})
      Alpha.push_back(Fields.intern(Name));
    std::mt19937 Rng(20260808);
    // Operator-heavy shape (leaves only at the depth floor or with
    // probability 1/8): shallow trees would make construction trivial
    // and the warm/cold ratio meaningless.
    std::function<RegexRef(int)> Gen = [&](int Depth) -> RegexRef {
      unsigned Pick = Rng() % 8;
      if (Depth <= 0 || Pick == 0)
        return Regex::symbol(Alpha[Rng() % Alpha.size()]);
      switch (Pick) {
      case 1:
      case 2:
        return Regex::star(Gen(Depth - 1));
      case 3:
        return Regex::plus(Gen(Depth - 1));
      case 4:
      case 5:
        return Regex::concat(Gen(Depth - 1), Gen(Depth - 1));
      default:
        return Regex::alt(Gen(Depth - 1), Gen(Depth - 1));
      }
    };
    while (Pairs.size() < 96)
      Pairs.emplace_back(Gen(7), Gen(7));
  }
};

PairPool &pool() {
  static PairPool P;
  return P;
}

/// The query sweep a first request runs: subset + disjoint per pair,
/// fresh LangQuery (cold memo caches) against \p Store.
uint64_t runSweep(MinDfaStore *Store) {
  LangQuery Q{LangOptions{}};
  Q.attachDfaStore(Store);
  uint64_t Negatives = 0;
  for (const auto &[A, B] : pool().Pairs) {
    Negatives += !Q.subsetOf(A, B);
    Negatives += !Q.disjoint(A, B);
  }
  return Negatives;
}

/// The snapshot fixture: a store warmed by one sweep, serialized once.
/// Returns the path of the snapshot file (written on first use).
const std::string &snapshotFile() {
  static std::string Path = [] {
    MinDfaStore Store(16);
    runSweep(&Store);
    std::string P = "/tmp/apt_service_warmstart_" +
                    std::to_string(::getpid()) + ".snapshot.json";
    std::ofstream Out(P);
    // Compact form: the warm path re-parses this file every iteration,
    // so fixture whitespace would be measured as restore cost.
    Out << svc::storeToJson(Store).dump() << '\n';
    return P;
  }();
  return Path;
}

void BM_ServiceColdStart(benchmark::State &State) {
  uint64_t Negatives = 0;
  for (auto _ : State) {
    MinDfaStore Store(16);
    Negatives = runSweep(&Store);
    benchmark::DoNotOptimize(Negatives);
  }
  State.SetItemsProcessed(static_cast<int64_t>(pool().Pairs.size()) * 2 *
                          State.iterations());
  State.counters["negatives"] = static_cast<double>(Negatives);
  State.SetLabel("fresh store: construction + minimization + queries");
}
BENCHMARK(BM_ServiceColdStart)->Unit(benchmark::kMillisecond);

void BM_ServiceWarmStart(benchmark::State &State) {
  const std::string &Snap = snapshotFile();
  uint64_t Negatives = 0;
  size_t Entries = 0;
  for (auto _ : State) {
    MinDfaStore Store(16);
    std::ifstream In(Snap);
    std::stringstream Buf;
    Buf << In.rdbuf();
    JsonParseResult Doc = parseJson(Buf.str());
    std::string Error;
    Entries = 0;
    if (!Doc ||
        svc::storeFromJson(Doc.Value, Store, Entries, Error) !=
            svc::SnapshotError::None) {
      State.SkipWithError("snapshot restore failed");
      break;
    }
    Negatives = runSweep(&Store);
    benchmark::DoNotOptimize(Negatives);
  }
  State.SetItemsProcessed(static_cast<int64_t>(pool().Pairs.size()) * 2 *
                          State.iterations());
  State.counters["negatives"] = static_cast<double>(Negatives);
  State.counters["restored_entries"] = static_cast<double>(Entries);
  State.SetLabel("snapshot restore (read + parse + intern) + queries");
}
BENCHMARK(BM_ServiceWarmStart)->Unit(benchmark::kMillisecond);

/// One daemon timeline reading (support/Timeline.h): a filtered
/// Registry::values() walk over a registry populated the way a live
/// aptd's is (service counters, cache gauges, per-op histograms). The
/// poll loop pays this once per --timeline-ms; tools/bench_check.py
/// --mode service gates it at <= 1% of the default 1 s interval.
void BM_TimelineSample(benchmark::State &State) {
  metrics::Registry Reg;
  Reg.counter("apt.svc.proto.requests").add(1234);
  Reg.counter("apt.svc.slow_requests").add(7);
  Reg.counter("apt.trace.dropped_events").add(0);
  for (int I = 0; I < 8; ++I) {
    std::string N = "apt.svc.sessions.s" + std::to_string(I);
    Reg.gauge(N + ".dfa_entries").set(100 + I);
    Reg.gauge(N + ".goal_entries").set(200 + I);
  }
  for (const char *Op : {"ping", "run", "stats", "status", "timeline"})
    for (int I = 0; I < 64; ++I)
      Reg.histogram(std::string("apt.svc.op.") + Op + ".wall_us")
          .observe(10 + I);

  metrics::Timeline Ring(256);
  uint64_t AtMs = 0;
  for (auto _ : State) {
    Ring.sample(Reg, ++AtMs);
    benchmark::DoNotOptimize(Ring.latest());
  }
  State.counters["values_per_sample"] =
      Ring.latest() ? static_cast<double>(Ring.latest()->Values.size()) : 0;
}
BENCHMARK(BM_TimelineSample)->Unit(benchmark::kMicrosecond);

/// Verdict parity between the two paths, printed before the timings so
/// a semantic break is obvious even in record-only runs.
void printParityReport() {
  MinDfaStore Cold(16);
  uint64_t NegCold = runSweep(&Cold);

  MinDfaStore Warm(16);
  std::ifstream In(snapshotFile());
  std::stringstream Buf;
  Buf << In.rdbuf();
  JsonParseResult Doc = parseJson(Buf.str());
  std::string Error;
  size_t Entries = 0;
  if (!Doc || svc::storeFromJson(Doc.Value, Warm, Entries, Error) !=
                  svc::SnapshotError::None) {
    std::fprintf(stderr, "snapshot fixture failed to restore: %s\n",
                 Error.c_str());
    std::exit(1);
  }
  uint64_t NegWarm = runSweep(&Warm);
  std::printf("\n== E10: snapshot warm start ==\n"
              "  pool: %zu pairs; cold store %zu entries, restored %zu; "
              "%llu negative verdicts (warm %llu) -- %s\n\n",
              pool().Pairs.size(), Cold.size(), Entries,
              static_cast<unsigned long long>(NegCold),
              static_cast<unsigned long long>(NegWarm),
              NegCold == NegWarm ? "paths agree" : "MISMATCH");
  if (NegCold != NegWarm)
    std::exit(1);
}

} // namespace

int main(int argc, char **argv) {
  printParityReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::remove(snapshotFile().c_str());
  return 0;
}
