#!/usr/bin/env python3
"""Daemon-mode parity check: `aptc ... --connect <aptd>` must be
indistinguishable from a one-shot `aptc ...` run.

Starts an aptd on a scratch Unix socket, then for every sample command
(prove pairs on both axiom samples, batch deps at --jobs 1 and 4, single
labeled deps, loops, dump, and lint on every sample including the
deliberately broken ones) runs the one-shot CLI and the daemon-routed
CLI and asserts stdout bytes and exit codes are equal. Every command
runs twice against the daemon — cold (first touch of the session) and
warm (resident caches serving) — because the warm path is where daemon
mode could drift.

Then exercises the snapshot cycle: `snapshot_save` through the protocol,
daemon restart with --snapshot-load, and the full command set again
against the warm-started daemon — verdicts must still be byte-identical.

Finally the artifact-parity phase: against a fresh daemon per jobs
level, a one-shot and a daemon-routed `deps --trace --metrics-json` run
must produce (a) canonically byte-equal traces (verdict/proof records;
event records are interleaving-dependent by design), (b) equal nonzero
counter deltas excluding wall-time counters, and (c) on the daemon side
a request id that matches between the trace header and the metrics meta
block — the request-correlation contract of docs/SERVICE.md.

Exit status: 0 on parity, 1 with per-command diffs otherwise.
No third-party dependencies.

Usage: tools/service_parity_check.py <aptc> <aptd> <samples-dir> <scratch>
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import time


def wait_for_daemon(sock_path, proc, timeout=20.0):
    """Polls until the daemon answers a ping on sock_path."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("aptd exited during startup: %s" %
                               proc.returncode)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.settimeout(2.0)
                s.connect(sock_path)
                s.sendall(b'{"id": 0, "op": "ping"}\n')
                data = b""
                while b"\n" not in data:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                resp = json.loads(data.split(b"\n", 1)[0])
                if resp.get("ok") and resp["result"].get("pong"):
                    return
        except (OSError, json.JSONDecodeError, KeyError):
            time.sleep(0.05)
    raise RuntimeError("aptd did not come up on %s" % sock_path)


def request(sock_path, req):
    """One protocol round trip; returns the parsed response object."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(60.0)
        s.connect(sock_path)
        s.sendall(json.dumps(req).encode() + b"\n")
        data = b""
        while b"\n" not in data:
            chunk = s.recv(65536)
            if not chunk:
                raise RuntimeError("daemon closed connection mid-response")
            data += chunk
        return json.loads(data.split(b"\n", 1)[0])


def sample_commands(samples):
    """Every (name, argv-tail) pair the parity sweep covers."""
    llt = os.path.join(samples, "leaf_linked_tree.axioms")
    sparse = os.path.join(samples, "sparse_matrix.axioms")
    worklist = os.path.join(samples, "worklist.apt")
    triage_mix = os.path.join(samples, "triage_mix.apt")
    lint_dir = os.path.join(samples, "lint")
    cmds = [
        ("prove_llt", ["prove", llt, "L.L.N", "L.R.N"]),
        ("prove_llt_maybe", ["prove", llt, "L.L.N.N", "L.R.N"]),
        ("prove_sparse", ["prove", sparse, "ncolE+", "nrowE+.ncolE+"]),
        ("deps_labeled", ["deps", worklist, "S", "T"]),
        ("deps_j1", ["deps", worklist, "--jobs", "1"]),
        ("deps_j4", ["deps", worklist, "--jobs", "4"]),
        ("deps_triage_j1", ["deps", triage_mix, "--jobs", "1"]),
        ("deps_triage_j4", ["deps", triage_mix, "--jobs", "4"]),
        ("deps_iw", ["deps", worklist, "--invariant-writes", "--jobs", "1"]),
        ("loops", ["loops", worklist]),
        ("dump", ["dump", worklist]),
        ("usage", ["frobnicate"]),
    ]
    for f in sorted(os.listdir(samples)):
        if f.endswith((".axioms", ".apt")):
            cmds.append(("lint_" + f, ["lint", os.path.join(samples, f)]))
    for f in sorted(os.listdir(lint_dir)):
        cmds.append(("lint_" + f, ["lint", os.path.join(lint_dir, f)]))
    return cmds


def run_pair(aptc, sock_path, name, tail, errors, phase):
    one = subprocess.run([aptc] + tail, capture_output=True)
    via = subprocess.run([aptc] + tail + ["--connect", sock_path],
                         capture_output=True)
    if one.returncode != via.returncode:
        errors.append("%s/%s: exit %d one-shot vs %d daemon" %
                      (phase, name, one.returncode, via.returncode))
    if one.stdout != via.stdout:
        errors.append("%s/%s: stdout differs\n  one-shot: %r\n  daemon:   %r"
                      % (phase, name, one.stdout[:400], via.stdout[:400]))
    # stderr must match too, except for --stats runs (engine counters are
    # resident-state dependent by design; docs/SERVICE.md).
    if "--stats" not in tail and one.stderr != via.stderr:
        errors.append("%s/%s: stderr differs\n  one-shot: %r\n  daemon:   %r"
                      % (phase, name, one.stderr[:400], via.stderr[:400]))
    return one


def canonical_trace(path):
    """The deterministic projection of a JSONL trace: its verdict and
    proof records, key-sorted and line-sorted (analysis/TraceExport.h's
    canonicalTrace, reimplemented so the comparison is independent of
    the binary under test)."""
    kept = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") in ("verdict", "proof"):
                kept.append(json.dumps(rec, sort_keys=True))
    return "\n".join(sorted(kept))


def nonzero_counters(path):
    """Counter deltas from a --metrics-json file, minus wall-time
    counters (scheduling-dependent) and zero deltas (no information)."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {k: v for k, v in doc.get("counters", {}).items()
            if v != 0 and "wall" not in k}


def artifact_parity(aptc, aptd, samples, scratch, errors):
    """One-shot vs daemon-routed runs with every artifact flag: traces
    canonically equal, counters equal, request ids correlated."""
    worklist = os.path.join(samples, "worklist.apt")
    for jobs in ("1", "4"):
        # Fresh daemon per jobs level: artifact counter deltas are only
        # comparable against a cold session (a warm cache serves fewer
        # proofs, which is correct but not parity-comparable).
        sock_path = "/tmp/aptd_art_%d_%s.sock" % (os.getpid(), jobs)
        daemon = subprocess.Popen([aptd, "--socket", sock_path],
                                  stderr=subprocess.DEVNULL)
        try:
            wait_for_daemon(sock_path, daemon)
            tag = "artifacts_j%s" % jobs
            one_tr = os.path.join(scratch, tag + "_one.trace.jsonl")
            via_tr = os.path.join(scratch, tag + "_via.trace.jsonl")
            one_m = os.path.join(scratch, tag + "_one.metrics.json")
            via_m = os.path.join(scratch, tag + "_via.metrics.json")
            tail = ["deps", worklist, "--jobs", jobs]
            one = subprocess.run(
                [aptc] + tail + ["--trace=" + one_tr,
                                 "--metrics-json=" + one_m],
                capture_output=True)
            via = subprocess.run(
                [aptc] + tail + ["--trace=" + via_tr,
                                 "--metrics-json=" + via_m,
                                 "--connect", sock_path],
                capture_output=True)
            if one.returncode != via.returncode:
                errors.append("%s: exit %d one-shot vs %d daemon" %
                              (tag, one.returncode, via.returncode))
                continue
            if canonical_trace(one_tr) != canonical_trace(via_tr):
                errors.append("%s: canonical traces differ" % tag)
            if nonzero_counters(one_m) != nonzero_counters(via_m):
                errors.append("%s: counter deltas differ\n  one-shot: %r\n"
                              "  daemon:   %r" %
                              (tag, nonzero_counters(one_m),
                               nonzero_counters(via_m)))

            with open(one_tr, encoding="utf-8") as f:
                one_hdr = json.loads(f.readline())
            with open(via_tr, encoding="utf-8") as f:
                via_hdr = json.loads(f.readline())
            if "request" in one_hdr:
                errors.append("%s: one-shot trace header has a request id"
                              % tag)
            rid = via_hdr.get("request")
            if not isinstance(rid, int) or rid < 1:
                errors.append("%s: daemon trace header request id missing "
                              "or bad: %r" % (tag, rid))
            with open(via_m, encoding="utf-8") as f:
                meta = json.load(f).get("meta", {})
            if meta.get("request") != rid:
                errors.append("%s: metrics meta request %r != trace header "
                              "request %r" % (tag, meta.get("request"), rid))
            if "build" not in via_hdr or "build" not in meta:
                errors.append("%s: artifact missing build block" % tag)

            request(sock_path, {"id": 99, "op": "shutdown"})
            daemon.wait(timeout=20)
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                daemon.wait(timeout=10)


def main():
    if len(sys.argv) != 5:
        sys.exit(__doc__)
    aptc, aptd, samples, scratch = sys.argv[1:5]
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch, exist_ok=True)
    # Keep the socket path short (sun_path is ~108 bytes).
    sock_path = "/tmp/aptd_parity_%d.sock" % os.getpid()
    snap_path = os.path.join(scratch, "parity.snapshot.json")
    cmds = sample_commands(samples)
    errors = []

    daemon = subprocess.Popen([aptd, "--socket", sock_path],
                              stderr=subprocess.DEVNULL)
    try:
        wait_for_daemon(sock_path, daemon)
        for name, tail in cmds:
            run_pair(aptc, sock_path, name, tail, errors, "cold")
        # Warm pass: resident sessions, caches populated by the cold pass.
        for name, tail in cmds:
            run_pair(aptc, sock_path, name, tail, errors, "warm")

        resp = request(sock_path, {"id": 1, "op": "snapshot_save",
                                   "path": snap_path})
        if not resp.get("ok"):
            errors.append("snapshot_save failed: %r" % resp)
        resp = request(sock_path, {"id": 2, "op": "shutdown"})
        if not resp.get("ok"):
            errors.append("shutdown failed: %r" % resp)
        daemon.wait(timeout=20)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    if not errors:
        # Restart warm-started from the snapshot; parity must survive
        # cache restoration (byte-identical verdicts from restored DFAs
        # and goal entries).
        daemon = subprocess.Popen(
            [aptd, "--socket", sock_path, "--snapshot-load", snap_path],
            stderr=subprocess.DEVNULL)
        try:
            wait_for_daemon(sock_path, daemon)
            for name, tail in cmds:
                run_pair(aptc, sock_path, name, tail, errors, "restored")
            request(sock_path, {"id": 3, "op": "shutdown"})
            daemon.wait(timeout=20)
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                daemon.wait(timeout=10)

    if not errors:
        artifact_parity(aptc, aptd, samples, scratch, errors)

    for e in errors:
        print("service_parity_check: %s" % e)
    if errors:
        sys.exit(1)
    print("service_parity_check: OK (%d commands x cold/warm/restored "
          "+ artifact parity at jobs 1/4)" % len(cmds))


if __name__ == "__main__":
    main()
