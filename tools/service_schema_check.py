#!/usr/bin/env python3
"""Validates live aptd responses against the checked-in wire-protocol
schema (docs/service_schema.json), so the daemon's response shape cannot
drift from its documentation.

Starts an aptd on a scratch socket and drives every protocol op plus
every error path (unparseable line -> APTD-E001, malformed request ->
APTD-E002, unknown op -> APTD-E003, missing file -> APTD-E004, snapshot
version mismatch -> APTD-E005, corrupt snapshot -> APTD-E006). Each
response line must validate against the top-level response schema, each
success result against its per-op definition, and the `metrics` result
against docs/metrics_schema.json. Reuses the JSON-Schema subset
validator from tools/metrics_schema_check.py.

Exit status: 0 on success, 1 with per-error report lines otherwise.
No third-party dependencies.

Usage: tools/service_schema_check.py <aptd-binary> <repo-root> <scratch-dir>
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from metrics_schema_check import validate  # noqa: E402


def wait_for_daemon(sock_path, proc, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("aptd exited during startup: %s" %
                               proc.returncode)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.settimeout(2.0)
                s.connect(sock_path)
                return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError("aptd did not come up on %s" % sock_path)


def raw_request(sock_path, line_bytes):
    """Sends raw bytes (one line) and returns the parsed response."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(60.0)
        s.connect(sock_path)
        s.sendall(line_bytes + b"\n")
        data = b""
        while b"\n" not in data:
            chunk = s.recv(65536)
            if not chunk:
                raise RuntimeError("daemon closed connection mid-response")
            data += chunk
        return json.loads(data.split(b"\n", 1)[0])


def request(sock_path, req):
    return raw_request(sock_path, json.dumps(req).encode())


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    aptd, root, scratch = sys.argv[1:4]
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch, exist_ok=True)
    with open(os.path.join(root, "docs", "service_schema.json"),
              encoding="utf-8") as f:
        schema = json.load(f)
    with open(os.path.join(root, "docs", "metrics_schema.json"),
              encoding="utf-8") as f:
        metrics_schema = json.load(f)
    samples = os.path.join(root, "tools", "samples")
    sock_path = "/tmp/aptd_schema_%d.sock" % os.getpid()

    # Snapshot fixtures for the rejection paths.
    version99 = os.path.join(scratch, "version99.snapshot.json")
    with open(version99, "w", encoding="utf-8") as f:
        json.dump({"kind": "aptd-snapshot", "version": 99, "sessions": []}, f)
    corrupt = os.path.join(scratch, "corrupt.snapshot.json")
    with open(corrupt, "w", encoding="utf-8") as f:
        f.write('{"kind": "aptd-snapshot", "version": 1, "sessions": [42]}')
    snap_out = os.path.join(scratch, "saved.snapshot.json")

    errors = []

    def check(name, resp, expect_ok, result_def=None, error_code=None):
        validate(resp, schema, name, errors)
        if resp.get("ok") != expect_ok:
            errors.append("%s: expected ok=%s, got %r" %
                          (name, expect_ok, resp))
            return resp
        if expect_ok and "result" not in resp:
            errors.append("%s: ok response without result" % name)
        if not expect_ok and "error" not in resp:
            errors.append("%s: error response without error member" % name)
        if result_def:
            validate(resp.get("result", {}),
                     {"$ref": "#/definitions/" + result_def},
                     name + ".result", errors,
                     root=schema)
        if error_code:
            got = resp.get("error", {}).get("code")
            if got != error_code:
                errors.append("%s: expected error code %s, got %r" %
                              (name, error_code, got))
        return resp

    daemon = subprocess.Popen([aptd, "--socket", sock_path, "--slow-ms", "0"],
                              stderr=subprocess.DEVNULL)
    try:
        wait_for_daemon(sock_path, daemon)

        check("ping", request(sock_path, {"id": 1, "op": "ping"}),
              True, "ping_result")
        check("run", request(sock_path, {
            "id": 2, "op": "run",
            "argv": ["prove",
                     os.path.join(samples, "leaf_linked_tree.axioms"),
                     "L.L.N", "L.R.N"]}), True, "run_result")
        check("run_verdict_exit", request(sock_path, {
            "id": 3, "op": "run",
            "argv": ["prove",
                     os.path.join(samples, "leaf_linked_tree.axioms"),
                     "L.L.N.N", "L.R.N"]}), True, "run_result")
        check("load_axioms", request(sock_path, {
            "id": 4, "op": "load_axioms",
            "path": os.path.join(samples, "sparse_matrix.axioms")}),
            True, "load_result")
        check("load_program", request(sock_path, {
            "id": 5, "op": "load_program",
            "path": os.path.join(samples, "worklist.apt")}),
            True, "load_result")
        check("stats", request(sock_path, {"id": 6, "op": "stats"}),
              True, "stats_result")
        resp = check("status", request(sock_path, {"id": 60, "op": "status"}),
                     True, "status_result")
        # The op table must reflect the traffic this very run generated.
        ops = resp.get("result", {}).get("ops", {})
        for op in ("ping", "run", "stats"):
            if op not in ops:
                errors.append("status: ops table missing '%s' after driving "
                              "it: %r" % (op, sorted(ops)))
        check("timeline", request(sock_path, {"id": 61, "op": "timeline"}),
              True, "timeline_result")

        resp = check("metrics", request(sock_path, {"id": 7, "op": "metrics"}),
                     True)
        validate(resp.get("result", {}), metrics_schema, "metrics.result",
                 errors)

        check("snapshot_save", request(sock_path, {
            "id": 8, "op": "snapshot_save", "path": snap_out}),
            True, "snapshot_result")
        check("snapshot_load", request(sock_path, {
            "id": 9, "op": "snapshot_load", "path": snap_out}),
            True, "snapshot_result")

        # Error paths, one per code.
        check("bad_json", raw_request(sock_path, b'{"id": 10,'), False,
              error_code="APTD-E001")
        check("bad_request", raw_request(sock_path, b'{"id": 11}'), False,
              error_code="APTD-E002")
        check("bad_argv", request(sock_path,
                                  {"id": 12, "op": "run", "argv": []}),
              False, error_code="APTD-E002")
        check("unknown_op", request(sock_path,
                                    {"id": 13, "op": "frobnicate"}),
              False, error_code="APTD-E003")
        check("missing_file", request(sock_path, {
            "id": 14, "op": "load_axioms",
            "path": os.path.join(scratch, "no_such_file.axioms")}),
            False, error_code="APTD-E004")
        check("snapshot_version", request(sock_path, {
            "id": 15, "op": "snapshot_load", "path": version99}),
            False, error_code="APTD-E005")
        check("snapshot_corrupt", request(sock_path, {
            "id": 16, "op": "snapshot_load", "path": corrupt}),
            False, error_code="APTD-E006")

        check("shutdown", request(sock_path, {"id": 17, "op": "shutdown"}),
              True, "shutdown_result")
        daemon.wait(timeout=20)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    for e in errors:
        print("service_schema_check: %s" % e)
    if errors:
        sys.exit(1)
    print("service_schema_check: OK")


if __name__ == "__main__":
    main()
