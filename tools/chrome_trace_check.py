#!/usr/bin/env python3
"""Structural validator for `aptc --trace-chrome` output.

Runs a batch deps analysis at --jobs 1 and 4 plus a prove query, each
with --trace-chrome, and validates every produced file:

  * the file parses as one JSON array;
  * every element is an object with "ph", "pid", "tid" and "name", and
    "ph" is one of M (metadata), X (complete), b/e (async pair);
  * every X event has a numeric "ts" and a numeric "dur" >= 0;
  * within each (pid, tid) track, X timestamps are non-decreasing in
    array order (the writer sorts per track; viewers do not need it,
    humans diffing traces do);
  * async b/e events balance per (cat, id);
  * when the binary was built with tracing compiled in (detected from
    `aptc --version`), each file must contain at least one X event —
    an APT_TRACE=OFF build legitimately produces only metadata.

Exit status: 0 on success, 1 with per-error report lines otherwise.
No third-party dependencies.

Usage: tools/chrome_trace_check.py <aptc> <samples-dir> <scratch-dir>
"""

import json
import os
import shutil
import subprocess
import sys


def trace_compiled_in(aptc):
    """Reads the build config from `aptc --version` (support/Version.h)."""
    out = subprocess.run([aptc, "--version"], capture_output=True,
                         text=True, check=True).stdout
    return "trace=on" in out


def validate_chrome_trace(path, name, require_events, errors):
    try:
        with open(path, encoding="utf-8") as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append("%s: unreadable or invalid JSON: %s" % (name, e))
        return
    if not isinstance(events, list):
        errors.append("%s: top level is not an array" % name)
        return

    track_last_ts = {}
    async_open = {}
    complete = 0
    for i, ev in enumerate(events):
        where = "%s[%d]" % (name, i)
        if not isinstance(ev, dict):
            errors.append("%s: not an object" % where)
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                errors.append("%s: missing '%s'" % (where, key))
        ph = ev.get("ph")
        if ph not in ("M", "X", "b", "e"):
            errors.append("%s: unexpected ph %r" % (where, ph))
            continue
        if ph == "X":
            complete += 1
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)):
                errors.append("%s: X without numeric ts: %r" % (where, ts))
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append("%s: X with bad dur %r" % (where, dur))
            track = (ev.get("pid"), ev.get("tid"))
            last = track_last_ts.get(track)
            if last is not None and ts < last:
                errors.append("%s: ts %s goes backwards on track %r "
                              "(previous %s)" % (where, ts, track, last))
            track_last_ts[track] = ts
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"))
            if ev.get("id") is None:
                errors.append("%s: async %s without id" % (where, ph))
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                if async_open.get(key, 0) <= 0:
                    errors.append("%s: 'e' without matching 'b' for %r" %
                                  (where, key))
                else:
                    async_open[key] -= 1

    for key, n in async_open.items():
        if n != 0:
            errors.append("%s: %d unclosed 'b' event(s) for %r" %
                          (name, n, key))
    if require_events and complete == 0:
        errors.append("%s: no X events despite tracing compiled in" % name)


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    aptc, samples, scratch = sys.argv[1:4]
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch, exist_ok=True)
    require_events = trace_compiled_in(aptc)

    worklist = os.path.join(samples, "worklist.apt")
    llt = os.path.join(samples, "leaf_linked_tree.axioms")
    runs = [
        ("deps_j1", ["deps", worklist, "--jobs", "1"]),
        ("deps_j4", ["deps", worklist, "--jobs", "4"]),
        ("prove", ["prove", llt, "L.L.N", "L.R.N"]),
    ]

    errors = []
    for name, tail in runs:
        out = os.path.join(scratch, name + ".chrome.json")
        proc = subprocess.run([aptc] + tail + ["--trace-chrome=" + out],
                              capture_output=True)
        if proc.returncode != 0:
            errors.append("%s: aptc exited %d: %s" %
                          (name, proc.returncode, proc.stderr[:300]))
            continue
        validate_chrome_trace(out, name, require_events, errors)

    for e in errors:
        print("chrome_trace_check: %s" % e)
    if errors:
        sys.exit(1)
    print("chrome_trace_check: OK (%d traces, tracing %s)" %
          (len(runs), "on" if require_events else "off"))


if __name__ == "__main__":
    main()
