#!/usr/bin/env python3
"""Service soak: a live aptd under a few hundred mixed requests, with
the observability contracts checked end to end.

Starts aptd with --slow-ms 1 and --timeline-ms 50, then:

  1. Artifact phase (first, while the session is cold and therefore
     guaranteed slow enough for the slow-request log): daemon-routed
     `deps --jobs 1|4` with --trace, --trace-chrome and --metrics-json.
     The request id in each trace header must equal the metrics meta id
     and the chrome async-track id — the correlation contract.
  2. Soak phase: a few hundred mixed requests (ping / run / stats /
     status / timeline / metrics) with periodic status polls; uptime,
     the request counter, and every per-op count must be monotone.
  3. Final audit: the slow-request log must still hold the artifact
     request ids with op=run and the right detail; the timeline must
     hold >= 2 samples with non-decreasing at_ms and zero ring drops;
     apt.trace.dropped_events must be 0; status.requests must equal the
     number of requests this harness issued.

Exit status: 0 on success, 1 with per-error report lines otherwise.
No third-party dependencies.

Usage: tools/service_soak_check.py <aptc> <aptd> <samples-dir> <scratch>
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import time


def wait_for_daemon(sock_path, proc, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("aptd exited during startup: %s" %
                               proc.returncode)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.settimeout(2.0)
                s.connect(sock_path)
                return
        except OSError:
            time.sleep(0.05)
    raise RuntimeError("aptd did not come up on %s" % sock_path)


class Client:
    """Counts every request it sends, so the final status.requests
    check can assert exact accounting."""

    def __init__(self, sock_path):
        self.sock_path = sock_path
        self.sent = 0

    def request(self, req):
        self.sent += 1
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.settimeout(120.0)
            s.connect(self.sock_path)
            s.sendall(json.dumps(req).encode() + b"\n")
            data = b""
            while b"\n" not in data:
                chunk = s.recv(65536)
                if not chunk:
                    raise RuntimeError("daemon closed mid-response")
                data += chunk
            return json.loads(data.split(b"\n", 1)[0])

    def result(self, op, errors, **kw):
        resp = self.request(dict(id=self.sent + 1, op=op, **kw))
        if not resp.get("ok"):
            errors.append("%s failed: %r" % (op, resp))
            return {}
        return resp.get("result", {})


def artifact_run(client, worklist, scratch, jobs, errors):
    """One daemon-routed run with every artifact flag; returns its
    request id (from the run result, cross-checked against every
    artifact header) or None."""
    tag = "soak_j%s" % jobs
    tr = os.path.join(scratch, tag + ".trace.jsonl")
    chrome = os.path.join(scratch, tag + ".chrome.json")
    metrics = os.path.join(scratch, tag + ".metrics.json")
    argv = ["deps", worklist, "--jobs", jobs, "--trace=" + tr,
            "--trace-chrome=" + chrome, "--metrics-json=" + metrics]
    result = client.result("run", errors, argv=argv)
    if result.get("exit") != 0:
        errors.append("%s: run exited %r" % (tag, result.get("exit")))
        return None
    rid = result.get("request")
    if not isinstance(rid, int) or rid < 1:
        errors.append("%s: run result carries no request id: %r" % (tag, rid))
        return None

    with open(tr, encoding="utf-8") as f:
        header = json.loads(f.readline())
    if header.get("request") != rid:
        errors.append("%s: trace header request %r != run result %r" %
                      (tag, header.get("request"), rid))
    with open(metrics, encoding="utf-8") as f:
        meta = json.load(f).get("meta", {})
    if meta.get("request") != rid:
        errors.append("%s: metrics meta request %r != run result %r" %
                      (tag, meta.get("request"), rid))
    with open(chrome, encoding="utf-8") as f:
        events = json.load(f)
    async_ids = sorted({ev.get("id") for ev in events
                        if ev.get("ph") in ("b", "e")})
    if async_ids != [rid]:
        errors.append("%s: chrome async track ids %r, expected [%d]" %
                      (tag, async_ids, rid))
    return (rid, tr)


def check_monotone(prev, status, errors):
    """Asserts the status counters never move backwards between polls."""
    if status.get("uptime_ms", 0) < prev.get("uptime_ms", 0):
        errors.append("status: uptime went backwards: %r -> %r" %
                      (prev.get("uptime_ms"), status.get("uptime_ms")))
    if status.get("requests", 0) < prev.get("requests", 0):
        errors.append("status: request counter went backwards: %r -> %r" %
                      (prev.get("requests"), status.get("requests")))
    for op, now in status.get("ops", {}).items():
        before = prev.get("ops", {}).get(op, {})
        if now.get("count", 0) < before.get("count", 0):
            errors.append("status: op %s count went backwards: %r -> %r" %
                          (op, before.get("count"), now.get("count")))


def main():
    if len(sys.argv) != 5:
        sys.exit(__doc__)
    _aptc, aptd, samples, scratch = sys.argv[1:5]
    shutil.rmtree(scratch, ignore_errors=True)
    os.makedirs(scratch, exist_ok=True)
    sock_path = "/tmp/aptd_soak_%d.sock" % os.getpid()
    worklist = os.path.join(samples, "worklist.apt")
    llt = os.path.join(samples, "leaf_linked_tree.axioms")
    errors = []

    daemon = subprocess.Popen(
        [aptd, "--socket", sock_path, "--slow-ms", "1",
         "--timeline-ms", "50"],
        stderr=subprocess.DEVNULL)
    client = Client(sock_path)
    try:
        wait_for_daemon(sock_path, daemon)

        # Phase 1: artifacts while cold — these are the heaviest requests
        # of the whole soak, so the top-16 slow log must retain them.
        artifacts = []
        for jobs in ("1", "4"):
            got = artifact_run(client, worklist, scratch, jobs, errors)
            if got:
                artifacts.append(got)

        # Phase 2: mixed traffic with periodic monotonicity probes.
        prev_status = {}
        for i in range(300):
            kind = i % 6
            if kind == 0:
                client.result("ping", errors)
            elif kind == 1:
                client.result("run", errors,
                              argv=["prove", llt, "L.L.N", "L.R.N"])
            elif kind == 2:
                client.result("stats", errors)
            elif kind == 3:
                client.result("metrics", errors)
            elif kind == 4:
                client.result("timeline", errors)
            else:
                status = client.result("status", errors)
                check_monotone(prev_status, status, errors)
                prev_status = status
            if errors and len(errors) > 20:
                break  # something is systematically broken; stop early

        # Phase 3: final audit. Let a few timeline intervals elapse first
        # — on a fast machine the whole soak can finish inside one
        # --timeline-ms period (the poll loop samples on its own clock,
        # so this sleep needs no accompanying traffic).
        time.sleep(0.3)
        stats = client.result("stats", errors)
        slow = stats.get("slow_queries", [])
        slow_by_rid = {q.get("request"): q for q in slow}
        for rid, trace_path in artifacts:
            entry = slow_by_rid.get(rid)
            if entry is None:
                errors.append("slow log lost artifact request %d: %r" %
                              (rid, [q.get("request") for q in slow]))
                continue
            if entry.get("op") != "run":
                errors.append("slow entry %d has op %r, expected run" %
                              (rid, entry.get("op")))
            if trace_path not in entry.get("detail", ""):
                errors.append("slow entry %d detail %r does not name its "
                              "trace file" % (rid, entry.get("detail")))
        walls = [q.get("wall_us", 0) for q in slow]
        if walls != sorted(walls, reverse=True):
            errors.append("slow log not sorted slowest-first: %r" % walls)
        if len(slow) > 16:
            errors.append("slow log exceeds its 16-entry cap: %d" % len(slow))

        timeline = client.result("timeline", errors)
        ats = [s.get("at_ms", 0) for s in timeline.get("samples", [])]
        if len(ats) < 2:
            errors.append("timeline holds %d sample(s), expected >= 2" %
                          len(ats))
        if ats != sorted(ats):
            errors.append("timeline at_ms not monotone: %r" % ats[:20])

        metrics = client.result("metrics", errors)
        dropped = metrics.get("counters", {}).get("apt.trace.dropped_events",
                                                  0)
        if dropped != 0:
            errors.append("trace ring dropped %r event(s) during the soak" %
                          dropped)

        status = client.result("status", errors)
        # Every request this harness sent is in flight-accounted: the two
        # artifact runs, the soak traffic, and the audit requests above,
        # including this status itself.
        if status.get("requests") != client.sent:
            errors.append("status.requests %r != %d requests issued" %
                          (status.get("requests"), client.sent))
        tl_summary = status.get("timeline", {})
        if tl_summary.get("dropped", 0) != timeline.get("dropped", 1):
            errors.append("status timeline summary dropped %r != timeline "
                          "op %r" % (tl_summary.get("dropped"),
                                     timeline.get("dropped")))

        client.result("shutdown", errors)
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    for e in errors:
        print("service_soak_check: %s" % e)
    if errors:
        sys.exit(1)
    print("service_soak_check: OK (%d requests; slow log, timeline and "
          "request ids audited)" % client.sent)


if __name__ == "__main__":
    main()
