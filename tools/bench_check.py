#!/usr/bin/env python3
"""Smoke-run the language-engine scaling benchmark and gate regressions.

Runs bench/langops_scaling in Google-benchmark JSON mode with short
repetitions, extracts warm-query throughput (items/second) for the
classic and overhauled pipelines, and writes a compact BENCH_langops.json
next to the build. If a checked-in baseline exists, the run FAILS when
either warm throughput drops more than --tolerance (default 25%) below
it; if no baseline exists yet, the current numbers are recorded as the
baseline so the first CI run on a new machine self-seeds.

--record-only skips the comparison (and baseline seeding) entirely --
sanitizer builds use it, since asan/tsan throughput says nothing about
the language engine.

Exit codes: 0 ok, 1 regression or speedup shortfall, 2 harness error.
"""

import argparse
import json
import os
import subprocess
import sys


WARM_BENCH = "BM_WarmQueries"
CLASSIC_ARG = "0"
OVERHAULED_ARG = "1"


def run_benchmark(bench_path, min_time):
    """Runs the benchmark binary in JSON mode; returns the parsed report."""
    out_path = bench_path + ".tmp.json"
    cmd = [
        bench_path,
        "--benchmark_filter=" + WARM_BENCH,
        "--benchmark_min_time=%s" % min_time,
        "--benchmark_out_format=json",
        "--benchmark_out=" + out_path,
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write("bench_check: %s exited with %d\n"
                         % (bench_path, proc.returncode))
        sys.exit(2)
    try:
        with open(out_path) as f:
            report = json.load(f)
    finally:
        try:
            os.remove(out_path)
        except OSError:
            pass
    return report


def warm_throughputs(report):
    """Extracts items/second for the classic and overhauled warm runs."""
    rates = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if not name.startswith(WARM_BENCH + "/"):
            continue
        arg = name.split("/")[1]
        ips = b.get("items_per_second")
        if ips is None:
            continue
        # Keep the best of any repetitions: throughput noise is one-sided.
        rates[arg] = max(rates.get(arg, 0.0), float(ips))
    missing = [a for a in (CLASSIC_ARG, OVERHAULED_ARG) if a not in rates]
    if missing:
        sys.stderr.write("bench_check: report is missing %s runs %s\n"
                         % (WARM_BENCH, missing))
        sys.exit(2)
    return rates[CLASSIC_ARG], rates[OVERHAULED_ARG]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the langops_scaling binary")
    ap.add_argument("--out", required=True,
                    help="where to write BENCH_langops.json")
    ap.add_argument("--baseline",
                    help="checked-in baseline JSON (created if absent)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop vs baseline (default .25)")
    ap.add_argument("--min-time", default="0.05",
                    help="benchmark_min_time per run, seconds")
    ap.add_argument("--record-only", action="store_true",
                    help="write results, skip baseline comparison")
    args = ap.parse_args()

    report = run_benchmark(args.bench, args.min_time)
    classic, overhauled = warm_throughputs(report)
    speedup = overhauled / classic if classic else float("inf")

    result = {
        "benchmark": WARM_BENCH,
        "classic_items_per_second": classic,
        "overhauled_items_per_second": overhauled,
        "warm_speedup": speedup,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print("bench_check: classic %.0f q/s, overhauled %.0f q/s "
          "(%.2fx warm speedup) -> %s"
          % (classic, overhauled, speedup, args.out))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    if speedup < 2.0:
        sys.stderr.write("bench_check: warm speedup %.2fx is below the "
                         "2x floor\n" % speedup)
        return 1

    if not args.baseline:
        return 0
    if not os.path.exists(args.baseline):
        with open(args.baseline, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print("bench_check: no baseline found, seeded %s" % args.baseline)
        return 0

    with open(args.baseline) as f:
        base = json.load(f)
    failed = False
    for key in ("classic_items_per_second", "overhauled_items_per_second"):
        ref = float(base.get(key, 0.0))
        cur = result[key]
        if ref > 0 and cur < ref * (1.0 - args.tolerance):
            sys.stderr.write(
                "bench_check: %s regressed: %.0f -> %.0f q/s "
                "(-%.0f%%, tolerance %.0f%%)\n"
                % (key, ref, cur, 100.0 * (1.0 - cur / ref),
                   100.0 * args.tolerance))
            failed = True
        else:
            print("bench_check: %s ok (baseline %.0f, now %.0f q/s)"
                  % (key, ref, cur))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
