#!/usr/bin/env python3
"""Smoke-run a benchmark binary and gate regressions.

Two modes, selected with --mode (default `langops` preserves the
original behavior):

`langops` runs bench/langops_scaling in Google-benchmark JSON mode with
short repetitions, extracts warm-query throughput (items/second) for the
classic and overhauled pipelines, and writes a compact BENCH_langops.json
next to the build. If a checked-in baseline exists, the run FAILS when
either warm throughput drops more than --tolerance (default 25%) below
it; if no baseline exists yet, the current numbers are recorded as the
baseline so the first CI run on a new machine self-seeds.

`triage` runs the BM_BatchTriage* family of bench/batch_queries and
gates the static triage cascade (docs/TRIAGE.md) two ways:

  * on the triage-heavy workload (BM_BatchTriageWarm/1) the cascade must
    resolve at least --kill-rate (default 40%) of the prover-bound pairs
    (kill rate = triaged_pairs / prover_bound, read off the benchmark's
    user counters);
  * on the all-escalate workload the cascade's miss tax --
    BM_BatchTriageMiss/1 over BM_BatchTriageMiss/0, min-of-repetitions --
    must stay within --overhead-miss (default 5%);

and additionally fails if the triage-on warm throughput drops more than
--tolerance below the checked-in BENCH_triage.baseline.json (self-seeds
like langops mode).

`service` runs bench/service_warmstart with repetitions and gates the
aptd snapshot mechanism: restoring the interned minimal-DFA store from
a snapshot file (BM_ServiceWarmStart, including read + parse) must cost
at most --warm-ratio (default 0.6) of rebuilding it from scratch
(BM_ServiceColdStart), min-of-repetitions; one daemon timeline reading
(BM_TimelineSample, support/Timeline.h) must cost at most
--timeline-budget (default 1%) of the default 1 s sampling interval;
and the warm throughput must not drop more than --tolerance below the
checked-in BENCH_service.baseline.json (self-seeds like langops mode).

`profile` runs the warm-batch family of bench/batch_queries at one
worker thread with repetitions and gates the time-attribution profiling
overhead on the min-of-repetitions wall time per iteration:

  * BM_BatchWarmProfiled (tracing + timestamps) vs. BM_BatchWarmTraced
    (tracing, no timestamps) must stay within --overhead-profiled
    (default 10%);
  * BM_BatchWarmTimedOff (timestamp switch on, tracing runtime-disabled)
    vs. BM_BatchWarm must stay within --overhead-disabled (default 5%);
  * BM_BatchChrome alternates a plain cold batch and the same batch
    under timed tracing + one Chrome trace-event export
    (support/ChromeTrace.h) back to back inside one timing loop; each
    iteration yields one paired ratio and the benchmark reports the
    median over its iterations as a counter. The median of those
    per-repetition medians must stay within --overhead-chrome (default
    10%). The double pairing is the point: the halves of a ratio run
    microseconds apart (drift cannot separate them) and a preemption
    spike poisons only the iteration it lands in (the median discards
    it) -- a cross-run comparison on a small shared host measures
    scheduler noise, not overhead;

and additionally fails if the plain warm throughput drops more than
--tolerance below the checked-in BENCH_profile.baseline.json (self-seeds
like langops mode).

`reach` runs the BM_BatchReach* family of bench/reach_scaling
(Experiment E11) and gates the whole-graph reachability pre-pass
(docs/REACHABILITY.md): on the E11 workload the pre-pass must answer at
least --answer-rate (default 30%) of the pairs that reach it
(reach_answered / prover_bound, read off the BM_BatchReachWarm/1 user
counters), and the pre-pass-on warm throughput must not drop more than
--tolerance below the checked-in BENCH_reach.baseline.json (self-seeds
like langops mode).

--record-only skips all comparisons (and baseline seeding) entirely --
sanitizer builds use it, since asan/tsan timings say nothing about the
engines being measured.

--history <file> appends one dated JSONL line per gated run (mode,
pass/fail status, the full result object) to a tracked history file --
bench/BENCH_history.jsonl in this repo -- so throughput trends survive
baseline reseeds. History is skipped under --record-only.

Exit codes: 0 ok, 1 regression or overhead breach, 2 harness error.
"""

import argparse
import json
import os
import subprocess
import sys
import time


WARM_BENCH = "BM_WarmQueries"
CLASSIC_ARG = "0"
OVERHAULED_ARG = "1"

# Profile mode: the warm-batch variants, all compared at jobs=1 (the
# most stable configuration on a loaded or single-core CI host).
PROFILE_FILTER = "(BM_BatchWarm[A-Za-z]*/1|BM_BatchChrome)$"
PROFILE_VARIANTS = [
    "BM_BatchWarm",
    "BM_BatchWarmTraced",
    "BM_BatchWarmTimedOff",
    "BM_BatchWarmProfiled",
]
# The chrome-export benchmark reports both halves of its paired
# measurement (plain vs traced+exported cold batch) as counters; the
# gate folds per-repetition ratios by median (see chrome_pair_stats).
PROFILE_CHROME_BENCH = "BM_BatchChrome"

# Service mode: cold store rebuild vs snapshot restore (docs/SERVICE.md),
# plus one daemon timeline reading (support/Timeline.h).
SERVICE_FILTER = "(BM_Service(Cold|Warm)Start|BM_TimelineSample)$"
SERVICE_RUNS = ["BM_ServiceColdStart", "BM_ServiceWarmStart",
                "BM_TimelineSample"]

# Triage mode: warm kill-rate run and the all-escalate miss-tax pair,
# each at triage off (/0) and on (/1).
TRIAGE_FILTER = "BM_BatchTriage(Warm|Miss)/[01]$"
TRIAGE_RUNS = [
    "BM_BatchTriageWarm/0",
    "BM_BatchTriageWarm/1",
    "BM_BatchTriageMiss/0",
    "BM_BatchTriageMiss/1",
]

# Reach mode: warm answer-rate pair (pre-pass off /0 and on /1) plus the
# cold scaling runs at 1, 2, and 4 worker threads (docs/REACHABILITY.md).
REACH_FILTER = "BM_BatchReach(Warm/[01]|Cold/[124])$"
REACH_RUNS = [
    "BM_BatchReachWarm/0",
    "BM_BatchReachWarm/1",
    "BM_BatchReachCold/1",
    "BM_BatchReachCold/2",
    "BM_BatchReachCold/4",
]

# Engine mode (Experiment E12, docs/MEMORY.md): warm batch throughput
# over the E9 pool and cold end-to-end store rebuilds over a
# construction-heavy pool, each with the bit-parallel kernel off (/0)
# and on (/1). The warm gate is absolute -- the engine must clear
# --warm-factor times the langops baseline's overhauled throughput,
# read from BENCH_langops.baseline.json next to --baseline -- so the
# raw-speed pass is measured against the trajectory it started from,
# not against itself.
ENGINE_FILTER = "BM_Engine(Warm|Cold)/[01]$"
ENGINE_RUNS = [
    "BM_EngineWarm/0",
    "BM_EngineWarm/1",
    "BM_EngineCold/0",
    "BM_EngineCold/1",
]
ENGINE_LANGOPS_BASELINE = "BENCH_langops.baseline.json"


def run_benchmark(bench_path, min_time, bench_filter, repetitions=None):
    """Runs the benchmark binary in JSON mode; returns the parsed report."""
    out_path = bench_path + ".tmp.json"
    cmd = [
        bench_path,
        "--benchmark_filter=" + bench_filter,
        "--benchmark_min_time=%s" % min_time,
        "--benchmark_out_format=json",
        "--benchmark_out=" + out_path,
    ]
    if repetitions:
        # Plain consecutive repetitions, full --min-time each. (Random
        # interleaving would remove drift bias between the arms of a
        # paired measurement, but google-benchmark divides min_time
        # across interleaved repetitions, and the resulting handful of
        # iterations per rep is far noisier than any drift.)
        cmd.append("--benchmark_repetitions=%d" % repetitions)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write("bench_check: %s exited with %d\n"
                         % (bench_path, proc.returncode))
        sys.exit(2)
    try:
        with open(out_path) as f:
            report = json.load(f)
    finally:
        try:
            os.remove(out_path)
        except OSError:
            pass
    return report


def write_result(path, result):
    with open(path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")


def compare_baseline(result, baseline_path, keys, tolerance):
    """Higher-is-better comparison of `keys` against a baseline file.

    Seeds the baseline when absent. Returns True when a key regressed.
    """
    if not baseline_path:
        return False
    if not os.path.exists(baseline_path):
        write_result(baseline_path, result)
        print("bench_check: no baseline found, seeded %s" % baseline_path)
        return False
    with open(baseline_path) as f:
        base = json.load(f)
    failed = False
    for key in keys:
        ref = float(base.get(key, 0.0))
        cur = result[key]
        if ref > 0 and cur < ref * (1.0 - tolerance):
            sys.stderr.write(
                "bench_check: %s regressed: %.0f -> %.0f q/s "
                "(-%.0f%%, tolerance %.0f%%)\n"
                % (key, ref, cur, 100.0 * (1.0 - cur / ref),
                   100.0 * tolerance))
            failed = True
        else:
            print("bench_check: %s ok (baseline %.0f, now %.0f q/s)"
                  % (key, ref, cur))
    return failed


def warm_throughputs(report):
    """Extracts items/second for the classic and overhauled warm runs."""
    rates = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if not name.startswith(WARM_BENCH + "/"):
            continue
        arg = name.split("/")[1]
        ips = b.get("items_per_second")
        if ips is None:
            continue
        # Keep the best of any repetitions: throughput noise is one-sided.
        rates[arg] = max(rates.get(arg, 0.0), float(ips))
    missing = [a for a in (CLASSIC_ARG, OVERHAULED_ARG) if a not in rates]
    if missing:
        sys.stderr.write("bench_check: report is missing %s runs %s\n"
                         % (WARM_BENCH, missing))
        sys.exit(2)
    return rates[CLASSIC_ARG], rates[OVERHAULED_ARG]


def run_langops(args):
    report = run_benchmark(args.bench, args.min_time, WARM_BENCH)
    classic, overhauled = warm_throughputs(report)
    speedup = overhauled / classic if classic else float("inf")

    result = {
        "benchmark": WARM_BENCH,
        "classic_items_per_second": classic,
        "overhauled_items_per_second": overhauled,
        "warm_speedup": speedup,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    write_result(args.out, result)
    print("bench_check: classic %.0f q/s, overhauled %.0f q/s "
          "(%.2fx warm speedup) -> %s"
          % (classic, overhauled, speedup, args.out))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    if speedup < 2.0:
        sys.stderr.write("bench_check: warm speedup %.2fx is below the "
                         "2x floor\n" % speedup)
        return 1

    failed = compare_baseline(
        result, args.baseline,
        ("classic_items_per_second", "overhauled_items_per_second"),
        args.tolerance)
    return 1 if failed else 0


def warm_batch_times(report):
    """Min-of-repetitions wall time per iteration for each warm variant.

    Min is the right aggregate for these overhead ratios because the
    warm iterations are cache-hot and micro-scale, so scheduling noise
    is strictly additive and the floor is the honest cost. Also returns
    best items/second per variant (for the baseline throughput gate).
    """
    times = {}
    items = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "").split("/")[0]
        if name not in PROFILE_VARIANTS:
            continue
        real = b.get("real_time")
        if real is None:
            continue
        unit = b.get("time_unit", "ns")
        seconds = float(real) * {"ns": 1e-9, "us": 1e-6,
                                 "ms": 1e-3, "s": 1.0}[unit]
        if name not in times or seconds < times[name]:
            times[name] = seconds
        ips = b.get("items_per_second")
        if ips is not None:
            items[name] = max(items.get(name, 0.0), float(ips))
    missing = [v for v in PROFILE_VARIANTS if v not in times]
    if missing:
        sys.stderr.write("bench_check: report is missing warm-batch runs "
                         "%s\n" % missing)
        sys.exit(2)
    return times, items


def chrome_pair_stats(report):
    """The median repetition of BM_BatchChrome's paired measurement.

    Each repetition already reports the median per-iteration-pair
    ratio (plus median per-batch walls) as counters, so preemption
    spikes were discarded inside the repetition; the median across
    repetitions just guards against a wholly unlucky rep. Returns
    (ratio, plain_seconds_per_batch, chrome_seconds_per_batch).
    """
    reps = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b.get("name", "").split("/")[0] != PROFILE_CHROME_BENCH:
            continue
        ratio = b.get("pair_ratio_median")
        plain = b.get("plain_ns_median")
        chrome = b.get("chrome_ns_median")
        if not ratio or not plain or not chrome:
            continue
        reps.append((float(ratio), float(plain) / 1e9,
                     float(chrome) / 1e9))
    if not reps:
        sys.stderr.write("bench_check: report is missing %s counters\n"
                         % PROFILE_CHROME_BENCH)
        sys.exit(2)
    reps.sort()
    return reps[len(reps) // 2]


def run_profile(args):
    report = run_benchmark(args.bench, args.min_time, PROFILE_FILTER,
                           repetitions=args.repetitions)
    times, items = warm_batch_times(report)

    plain = times["BM_BatchWarm"]
    traced = times["BM_BatchWarmTraced"]
    timed_off = times["BM_BatchWarmTimedOff"]
    profiled = times["BM_BatchWarmProfiled"]
    ratio_chrome, chrome_plain, chrome = chrome_pair_stats(report)
    ratio_profiled = profiled / traced if traced else float("inf")
    ratio_disabled = timed_off / plain if plain else float("inf")

    result = {
        "benchmark": "BM_BatchWarm*/1",
        "warm_items_per_second": items.get("BM_BatchWarm", 0.0),
        "warm_seconds": plain,
        "traced_seconds": traced,
        "timed_off_seconds": timed_off,
        "profiled_seconds": profiled,
        "chrome_plain_seconds": chrome_plain,
        "chrome_seconds": chrome,
        "profiled_over_traced": ratio_profiled,
        "timed_off_over_plain": ratio_disabled,
        "chrome_over_plain": ratio_chrome,
        "repetitions": args.repetitions,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    write_result(args.out, result)
    print("bench_check: warm %.3f ms, traced %.3f ms, timed-off %.3f ms, "
          "profiled %.3f ms, chrome %.3f ms -> %s"
          % (plain * 1e3, traced * 1e3, timed_off * 1e3, profiled * 1e3,
             chrome * 1e3, args.out))
    print("bench_check: profiled/traced %.3fx (limit %.2fx), "
          "timed-off/plain %.3fx (limit %.2fx), chrome/plain %.3fx "
          "(limit %.2fx)"
          % (ratio_profiled, 1.0 + args.overhead_profiled,
             ratio_disabled, 1.0 + args.overhead_disabled,
             ratio_chrome, 1.0 + args.overhead_chrome))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    failed = False
    if ratio_profiled > 1.0 + args.overhead_profiled:
        sys.stderr.write(
            "bench_check: timed profiling costs %.1f%% over untimed "
            "tracing (limit %.0f%%)\n"
            % (100.0 * (ratio_profiled - 1.0),
               100.0 * args.overhead_profiled))
        failed = True
    if ratio_disabled > 1.0 + args.overhead_disabled:
        sys.stderr.write(
            "bench_check: runtime-disabled profiling costs %.1f%% over "
            "the plain warm run (limit %.0f%%)\n"
            % (100.0 * (ratio_disabled - 1.0),
               100.0 * args.overhead_disabled))
        failed = True
    if ratio_chrome > 1.0 + args.overhead_chrome:
        sys.stderr.write(
            "bench_check: timed tracing + Chrome export costs %.1f%% "
            "over the plain warm run (limit %.0f%%)\n"
            % (100.0 * (ratio_chrome - 1.0), 100.0 * args.overhead_chrome))
        failed = True

    if compare_baseline(result, args.baseline,
                        ("warm_items_per_second",), args.tolerance):
        failed = True
    return 1 if failed else 0


def service_runs(report):
    """Min wall seconds and best items/second for the two service runs."""
    times = {}
    items = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if name not in SERVICE_RUNS:
            continue
        real = b.get("real_time")
        if real is None:
            continue
        unit = b.get("time_unit", "ns")
        seconds = float(real) * {"ns": 1e-9, "us": 1e-6,
                                 "ms": 1e-3, "s": 1.0}[unit]
        if name not in times or seconds < times[name]:
            times[name] = seconds
        ips = b.get("items_per_second")
        if ips is not None:
            items[name] = max(items.get(name, 0.0), float(ips))
    missing = [r for r in SERVICE_RUNS if r not in times]
    if missing:
        sys.stderr.write("bench_check: report is missing service runs %s\n"
                         % missing)
        sys.exit(2)
    return times, items


def run_service(args):
    report = run_benchmark(args.bench, args.min_time, SERVICE_FILTER,
                           repetitions=args.repetitions)
    times, items = service_runs(report)

    cold = times["BM_ServiceColdStart"]
    warm = times["BM_ServiceWarmStart"]
    sample = times["BM_TimelineSample"]
    ratio = warm / cold if cold else float("inf")
    # One timeline reading as a fraction of the default 1 s sampling
    # interval -- the daemon's idle observability cost (docs/SERVICE.md).
    sample_fraction = sample / 1.0

    result = {
        "benchmark": "BM_Service*Start",
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_over_cold": ratio,
        "warm_items_per_second": items.get("BM_ServiceWarmStart", 0.0),
        "cold_items_per_second": items.get("BM_ServiceColdStart", 0.0),
        "timeline_sample_seconds": sample,
        "timeline_sample_fraction": sample_fraction,
        "repetitions": args.repetitions,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    write_result(args.out, result)
    print("bench_check: cold %.3f ms, warm %.3f ms "
          "(warm/cold %.3fx, limit %.2fx), timeline sample %.1f us -> %s"
          % (cold * 1e3, warm * 1e3, ratio, args.warm_ratio, sample * 1e6,
             args.out))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    failed = False
    if ratio > args.warm_ratio:
        sys.stderr.write(
            "bench_check: snapshot warm start costs %.0f%% of a cold "
            "rebuild (limit %.0f%%)\n"
            % (100.0 * ratio, 100.0 * args.warm_ratio))
        failed = True
    if sample_fraction > args.timeline_budget:
        sys.stderr.write(
            "bench_check: one timeline sample costs %.2f%% of the 1 s "
            "sampling interval (limit %.2f%%)\n"
            % (100.0 * sample_fraction, 100.0 * args.timeline_budget))
        failed = True

    if compare_baseline(result, args.baseline,
                        ("warm_items_per_second",), args.tolerance):
        failed = True
    return 1 if failed else 0


def triage_runs(report):
    """Per-run min wall seconds, best items/second, and user counters."""
    times = {}
    items = {}
    counters = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if name not in TRIAGE_RUNS:
            continue
        real = b.get("real_time")
        if real is None:
            continue
        unit = b.get("time_unit", "ns")
        seconds = float(real) * {"ns": 1e-9, "us": 1e-6,
                                 "ms": 1e-3, "s": 1.0}[unit]
        if name not in times or seconds < times[name]:
            times[name] = seconds
        ips = b.get("items_per_second")
        if ips is not None:
            items[name] = max(items.get(name, 0.0), float(ips))
        if "triaged_pairs" in b:
            counters[name] = (float(b["triaged_pairs"]),
                              float(b.get("prover_bound", 0.0)))
    missing = [r for r in TRIAGE_RUNS if r not in times]
    if missing:
        sys.stderr.write("bench_check: report is missing triage runs %s\n"
                         % missing)
        sys.exit(2)
    return times, items, counters


def run_triage(args):
    report = run_benchmark(args.bench, args.min_time, TRIAGE_FILTER,
                           repetitions=args.repetitions)
    times, items, counters = triage_runs(report)

    triaged, bound = counters.get("BM_BatchTriageWarm/1", (0.0, 0.0))
    kill_rate = triaged / bound if bound else 0.0
    miss_on = times["BM_BatchTriageMiss/1"]
    miss_off = times["BM_BatchTriageMiss/0"]
    ratio_miss = miss_on / miss_off if miss_off else float("inf")

    result = {
        "benchmark": "BM_BatchTriage*",
        "triaged_pairs": triaged,
        "prover_bound_pairs": bound,
        "kill_rate": kill_rate,
        "warm_on_items_per_second": items.get("BM_BatchTriageWarm/1", 0.0),
        "warm_off_items_per_second": items.get("BM_BatchTriageWarm/0", 0.0),
        "miss_on_seconds": miss_on,
        "miss_off_seconds": miss_off,
        "miss_over_plain": ratio_miss,
        "repetitions": args.repetitions,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    write_result(args.out, result)
    print("bench_check: kill rate %.0f%% (%d of %d prover-bound pairs), "
          "miss tax %.3fx -> %s"
          % (100.0 * kill_rate, int(triaged), int(bound), ratio_miss,
             args.out))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    failed = False
    if kill_rate < args.kill_rate:
        sys.stderr.write(
            "bench_check: triage kill rate %.0f%% is below the %.0f%% "
            "floor on the triage workload\n"
            % (100.0 * kill_rate, 100.0 * args.kill_rate))
        failed = True
    if ratio_miss > 1.0 + args.overhead_miss:
        sys.stderr.write(
            "bench_check: triage-miss cascade costs %.1f%% over the "
            "cascade-off run (limit %.0f%%)\n"
            % (100.0 * (ratio_miss - 1.0), 100.0 * args.overhead_miss))
        failed = True

    if compare_baseline(result, args.baseline,
                        ("warm_on_items_per_second",), args.tolerance):
        failed = True
    return 1 if failed else 0


def reach_runs(report):
    """Per-run min wall seconds, best items/second, and user counters."""
    times = {}
    items = {}
    counters = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if name not in REACH_RUNS:
            continue
        real = b.get("real_time")
        if real is None:
            continue
        unit = b.get("time_unit", "ns")
        seconds = float(real) * {"ns": 1e-9, "us": 1e-6,
                                 "ms": 1e-3, "s": 1.0}[unit]
        if name not in times or seconds < times[name]:
            times[name] = seconds
        ips = b.get("items_per_second")
        if ips is not None:
            items[name] = max(items.get(name, 0.0), float(ips))
        if "reach_answered" in b:
            counters[name] = (float(b["reach_answered"]),
                              float(b.get("prover_bound", 0.0)))
    missing = [r for r in REACH_RUNS if r not in times]
    if missing:
        sys.stderr.write("bench_check: report is missing reach runs %s\n"
                         % missing)
        sys.exit(2)
    return times, items, counters


def run_reach(args):
    report = run_benchmark(args.bench, args.min_time, REACH_FILTER,
                           repetitions=args.repetitions)
    times, items, counters = reach_runs(report)

    answered, bound = counters.get("BM_BatchReachWarm/1", (0.0, 0.0))
    answer_rate = answered / bound if bound else 0.0

    result = {
        "benchmark": "BM_BatchReach*",
        "reach_answered_pairs": answered,
        "prover_bound_pairs": bound,
        "answer_rate": answer_rate,
        "warm_on_items_per_second": items.get("BM_BatchReachWarm/1", 0.0),
        "warm_off_items_per_second": items.get("BM_BatchReachWarm/0", 0.0),
        "cold_jobs1_seconds": times["BM_BatchReachCold/1"],
        "cold_jobs2_seconds": times["BM_BatchReachCold/2"],
        "cold_jobs4_seconds": times["BM_BatchReachCold/4"],
        "repetitions": args.repetitions,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    write_result(args.out, result)
    print("bench_check: reach answer rate %.0f%% (%d of %d pairs), "
          "cold 1/2/4 jobs %.3f/%.3f/%.3f s -> %s"
          % (100.0 * answer_rate, int(answered), int(bound),
             times["BM_BatchReachCold/1"], times["BM_BatchReachCold/2"],
             times["BM_BatchReachCold/4"], args.out))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    failed = False
    if answer_rate < args.answer_rate:
        sys.stderr.write(
            "bench_check: reach answer rate %.0f%% is below the %.0f%% "
            "floor on the E11 workload\n"
            % (100.0 * answer_rate, 100.0 * args.answer_rate))
        failed = True

    if compare_baseline(result, args.baseline,
                        ("warm_on_items_per_second",), args.tolerance):
        failed = True
    return 1 if failed else 0


def engine_runs(report):
    """Extracts times, items/s, and peak RSS for the engine runs."""
    times = {}
    items = {}
    rss_kb = 0.0
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        if name not in ENGINE_RUNS:
            continue
        real = b.get("real_time")
        if real is None:
            continue
        unit = b.get("time_unit", "ns")
        seconds = float(real) * {"ns": 1e-9, "us": 1e-6,
                                 "ms": 1e-3, "s": 1.0}[unit]
        if name not in times or seconds < times[name]:
            times[name] = seconds
        ips = b.get("items_per_second")
        if ips is not None:
            items[name] = max(items.get(name, 0.0), float(ips))
        if "peak_rss_kb" in b:
            rss_kb = max(rss_kb, float(b["peak_rss_kb"]))
    missing = [r for r in ENGINE_RUNS if r not in times]
    if missing:
        sys.stderr.write("bench_check: report is missing engine runs %s\n"
                         % missing)
        sys.exit(2)
    return times, items, rss_kb


def run_engine(args):
    report = run_benchmark(args.bench, args.min_time, ENGINE_FILTER,
                           repetitions=args.repetitions)
    times, items, rss_kb = engine_runs(report)

    warm_on = items.get("BM_EngineWarm/1", 0.0)
    warm_off = items.get("BM_EngineWarm/0", 0.0)
    cold_on = items.get("BM_EngineCold/1", 0.0)
    cold_off = items.get("BM_EngineCold/0", 0.0)
    cold_speedup = cold_on / cold_off if cold_off else 0.0

    result = {
        "benchmark": "BM_Engine*",
        "warm_items_per_second": warm_on,
        "warm_classic_items_per_second": warm_off,
        "cold_items_per_second": cold_on,
        "cold_classic_items_per_second": cold_off,
        "cold_speedup": cold_speedup,
        "cold_seconds": times["BM_EngineCold/1"],
        "peak_rss_kb": rss_kb,
        "repetitions": args.repetitions,
        "host": report.get("context", {}).get("host_name", "unknown"),
        "num_cpus": report.get("context", {}).get("num_cpus"),
    }
    write_result(args.out, result)
    print("bench_check: engine warm %.0f q/s (classic kernel %.0f), "
          "cold speedup %.2fx, peak RSS %.0f KiB -> %s"
          % (warm_on, warm_off, cold_speedup, rss_kb, args.out))

    if args.record_only:
        print("bench_check: --record-only, comparison skipped")
        return 0

    failed = False

    # Absolute warm gate against the langops trajectory: the raw-speed
    # pass has to clear --warm-factor times the overhauled-pipeline
    # throughput recorded by the E9 baseline on this class of host.
    langops_path = None
    if args.baseline:
        langops_path = os.path.join(os.path.dirname(args.baseline),
                                    ENGINE_LANGOPS_BASELINE)
    if langops_path and os.path.exists(langops_path):
        with open(langops_path) as f:
            langops = json.load(f)
        ref = float(langops.get("overhauled_items_per_second", 0.0))
        floor = ref * args.warm_factor
        if ref > 0 and warm_on < floor:
            sys.stderr.write(
                "bench_check: engine warm throughput %.0f q/s is below "
                "%.2fx the langops baseline (%.0f q/s -> floor %.0f)\n"
                % (warm_on, args.warm_factor, ref, floor))
            failed = True
        elif ref > 0:
            print("bench_check: warm factor ok (%.2fx the langops "
                  "baseline, floor %.2fx)"
                  % (warm_on / ref, args.warm_factor))
    else:
        print("bench_check: no %s beside the engine baseline, warm "
              "factor gate skipped" % ENGINE_LANGOPS_BASELINE)

    if cold_speedup < args.cold_speedup:
        sys.stderr.write(
            "bench_check: cold end-to-end speedup %.2fx is below the "
            "%.2fx floor (bit-parallel %.0f vs classic %.0f q/s)\n"
            % (cold_speedup, args.cold_speedup, cold_on, cold_off))
        failed = True

    if compare_baseline(result, args.baseline,
                        ("warm_items_per_second", "cold_items_per_second"),
                        args.tolerance):
        failed = True

    # Peak RSS is lower-is-better, so it gets its own comparison.
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as f:
            base = json.load(f)
        ref_rss = float(base.get("peak_rss_kb", 0.0))
        if ref_rss > 0 and rss_kb > ref_rss * (1.0 + args.tolerance):
            sys.stderr.write(
                "bench_check: peak RSS regressed: %.0f -> %.0f KiB "
                "(+%.0f%%, tolerance %.0f%%)\n"
                % (ref_rss, rss_kb, 100.0 * (rss_kb / ref_rss - 1.0),
                   100.0 * args.tolerance))
            failed = True
        elif ref_rss > 0:
            print("bench_check: peak_rss_kb ok (baseline %.0f, now %.0f "
                  "KiB)" % (ref_rss, rss_kb))
    return 1 if failed else 0


def append_history(args, rc):
    """Appends one line for this gated run to the --history JSONL file,
    re-reading the result the mode runner just wrote to --out. The file
    is append-only on purpose: each line is a dated, host-stamped record
    of a gate that actually ran, so trends survive baseline reseeds."""
    try:
        with open(args.out) as f:
            result = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write("bench_check: cannot re-read %s for --history: "
                         "%s\n" % (args.out, e))
        return
    entry = {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": args.mode,
        "status": "ok" if rc == 0 else "regressed",
        "result": result,
    }
    with open(args.history, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print("bench_check: appended %s run to %s" % (args.mode, args.history))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode",
                    choices=("langops", "profile", "triage", "service",
                             "reach", "engine"),
                    default="langops",
                    help="langops gates language-engine throughput; "
                    "profile gates timed-tracing overhead; triage gates "
                    "the static cascade's kill rate and miss tax; service "
                    "gates the snapshot warm-start win; reach gates the "
                    "reachability pre-pass answer rate; engine gates the "
                    "raw-speed pass (arena + bit-parallel kernels)")
    ap.add_argument("--bench", required=True,
                    help="path to the benchmark binary")
    ap.add_argument("--out", required=True,
                    help="where to write the result JSON")
    ap.add_argument("--baseline",
                    help="checked-in baseline JSON (created if absent)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional throughput drop vs baseline "
                    "(default .25)")
    ap.add_argument("--min-time", default="0.05",
                    help="benchmark_min_time per run, seconds")
    ap.add_argument("--repetitions", type=int, default=7,
                    help="repetitions for overhead-ratio modes (min is "
                    "kept; paired arms run back to back, so enough reps "
                    "are needed for both mins to reach the true floor)")
    ap.add_argument("--overhead-profiled", type=float, default=0.10,
                    help="allowed profiled-over-traced overhead "
                    "(default .10)")
    ap.add_argument("--overhead-disabled", type=float, default=0.05,
                    help="allowed timed-off-over-plain overhead "
                    "(default .05)")
    ap.add_argument("--overhead-chrome", type=float, default=0.10,
                    help="allowed traced+chrome-export-over-plain "
                    "overhead (default .10)")
    ap.add_argument("--timeline-budget", type=float, default=0.01,
                    help="service mode: maximum cost of one timeline "
                    "sample as a fraction of the default 1 s sampling "
                    "interval (default .01)")
    ap.add_argument("--history",
                    help="JSONL file to append this gated run's result "
                    "to (one line per run: mode, status, result); "
                    "skipped under --record-only since sanitizer "
                    "timings say nothing about the engines")
    ap.add_argument("--kill-rate", type=float, default=0.40,
                    help="triage mode: minimum fraction of prover-bound "
                    "pairs the cascade must resolve (default .40)")
    ap.add_argument("--overhead-miss", type=float, default=0.05,
                    help="triage mode: allowed cascade tax on the "
                    "all-escalate workload (default .05)")
    ap.add_argument("--answer-rate", type=float, default=0.30,
                    help="reach mode: minimum fraction of prover-bound "
                    "pairs the pre-pass must answer (default .30)")
    ap.add_argument("--warm-ratio", type=float, default=0.60,
                    help="service mode: maximum warm-start cost as a "
                    "fraction of the cold rebuild (default .60)")
    ap.add_argument("--warm-factor", type=float, default=1.30,
                    help="engine mode: minimum warm throughput as a "
                    "multiple of the langops baseline's overhauled "
                    "number (default 1.30)")
    ap.add_argument("--cold-speedup", type=float, default=1.15,
                    help="engine mode: minimum cold end-to-end speedup "
                    "of the bit-parallel kernel over the classic one "
                    "(default 1.15)")
    ap.add_argument("--record-only", action="store_true",
                    help="write results, skip all comparisons")
    args = ap.parse_args()

    runners = {
        "profile": run_profile,
        "triage": run_triage,
        "service": run_service,
        "reach": run_reach,
        "engine": run_engine,
        "langops": run_langops,
    }
    rc = runners[args.mode](args)
    if args.history and not args.record_only and rc in (0, 1):
        append_history(args, rc)
    return rc


if __name__ == "__main__":
    sys.exit(main())
