#!/usr/bin/env python3
"""Triage parity check: `aptc deps --triage=on` must be verdict-invisible.

Runs `aptc deps <sample>` twice over every checked-in `.apt` sample --
once with `--triage=off`, once with `--triage=on` -- and requires the
stdout byte streams and exit codes to match exactly, at --jobs 1 and
--jobs 4. The triage cascade only resolves pairs whose verdict is
already forced (docs/TRIAGE.md), so any divergence here is a soundness
or formatting bug, not a tuning matter.

Exit status: 0 when every sample agrees, 1 otherwise. No third-party
dependencies.

Usage: tools/triage_parity_check.py <aptc-binary> <samples-dir>
"""

import glob
import os
import subprocess
import sys


def run_deps(aptc, sample, jobs, triage):
    cmd = [aptc, "deps", sample, "--jobs", str(jobs), f"--triage={triage}"]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, timeout=300)
    return proc.returncode, proc.stdout


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    aptc, samples_dir = sys.argv[1], sys.argv[2]
    samples = sorted(glob.glob(os.path.join(samples_dir, "*.apt")))
    if not samples:
        print(f"error: no .apt samples under {samples_dir}", file=sys.stderr)
        return 1

    failures = 0
    checked = 0
    for sample in samples:
        for jobs in (1, 4):
            off_code, off_out = run_deps(aptc, sample, jobs, "off")
            on_code, on_out = run_deps(aptc, sample, jobs, "on")
            checked += 1
            name = os.path.basename(sample)
            if off_code != on_code:
                print(f"FAIL {name} --jobs {jobs}: exit {off_code} (off) "
                      f"vs {on_code} (on)")
                failures += 1
            elif off_out != on_out:
                print(f"FAIL {name} --jobs {jobs}: verdict streams differ")
                for line_off, line_on in zip(off_out.splitlines(),
                                             on_out.splitlines()):
                    if line_off != line_on:
                        print(f"  off: {line_off.decode(errors='replace')}")
                        print(f"  on:  {line_on.decode(errors='replace')}")
                        break
                failures += 1
            else:
                print(f"ok   {name} --jobs {jobs}: {off_code} exit, "
                      f"{len(off_out)} bytes identical")
    print(f"triage parity: {checked - failures}/{checked} runs identical")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
