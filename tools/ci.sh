#!/usr/bin/env bash
# CI driver for the APT repo: configure + build + ctest, one build tree
# per leg under ./build* in the repo root.
#
# Legs (pass any subset as arguments; default is "default notrace"):
#
#   default   build/          plain build, full ctest suite
#   notrace   build-notrace/  -DAPT_TRACE=OFF: trace/span sites compile
#                             out; proves the observability layer is
#                             optional and that every test guards on
#                             APT_TRACE_ENABLED correctly
#   asan      build-asan/     -DAPT_SANITIZE=address (bench gates and
#                             coverage-sensitive checks run record-only)
#   tsan      build-tsan/     -DAPT_SANITIZE=thread (exercises the
#                             trace-ring flush hammer and the parallel
#                             batch engine under TSan)
#   coverage  build-cov/      -DAPT_COVERAGE=ON: runs only the coverage
#                             gates -- coverage_gate_reach (80% floor
#                             over src/reach and src/graph) and
#                             coverage_gate_engine (85% floor over
#                             src/regex and src/support); each gate
#                             executes its unit suites itself
#   service   build/ + build-asan/: builds both trees and runs only the
#                             service-stack ctests in each -- the
#                             aptc --connect sample-suite parity check
#                             against a live daemon, the wire-protocol
#                             schema check, the snapshot round-trip unit
#                             tests, and the warm-start bench gate. The
#                             asan pass catches lifetime bugs in the
#                             daemon's resident-state paths that a
#                             one-shot run never holds long enough to hit.
#
# Every leg except `coverage` runs the full ctest suite of its tree.
# Python-based checks (docs_check, metrics_schema_check, bench_check,
# reach_parity_check) and the reach suites (reach_test, reach_fuzz_test,
# the three-way differential leg) are ctests, so the default, asan, and
# tsan legs pick them up automatically -- the sanitizer trees at reduced
# randomized-case counts (tests/CMakeLists.txt). The same mechanism
# promotes determinism_test (byte-identical verdicts across --jobs and
# --arena) into the default and asan legs, and engine_perf_test's
# zero-allocation warm-path contract into the default leg (under
# sanitizers its allocation guard compiles out and the guarded
# assertions skip).
#
# Usage: tools/ci.sh [leg ...]

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_service_leg() {
  local spec dir flags
  for spec in "build:" "build-asan:-DAPT_SANITIZE=address"; do
    dir="${spec%%:*}"
    flags="${spec#*:}"
    echo "== ci.sh: leg 'service' -> $dir $flags"
    # shellcheck disable=SC2086  # flags is intentionally word-split
    cmake -B "$ROOT/$dir" -S "$ROOT" $flags
    cmake --build "$ROOT/$dir" -j "$JOBS"
    # service_parity_check drives a live aptd with the one-shot sample
    # suite through aptc --connect; keep the daemon tests serialized so
    # two daemons never race on socket paths or /tmp snapshots.
    # chrome_trace_check rides along: it validates the daemon-routed
    # --trace-chrome export against the one-shot writer.
    ctest --test-dir "$ROOT/$dir" --output-on-failure \
      -R '[Ss]ervice|chrome_trace'
  done
}

run_coverage_leg() {
  local dir="build-cov"
  echo "== ci.sh: leg 'coverage' -> $dir -DAPT_COVERAGE=ON"
  cmake -B "$ROOT/$dir" -S "$ROOT" -DAPT_COVERAGE=ON
  cmake --build "$ROOT/$dir" -j "$JOBS"
  ctest --test-dir "$ROOT/$dir" --output-on-failure \
    -R 'coverage_gate_(reach|engine)'
}

run_leg() {
  local leg="$1" dir flags
  case "$leg" in
    default) dir="build";         flags="" ;;
    notrace) dir="build-notrace"; flags="-DAPT_TRACE=OFF" ;;
    asan)    dir="build-asan";    flags="-DAPT_SANITIZE=address" ;;
    tsan)    dir="build-tsan";    flags="-DAPT_SANITIZE=thread" ;;
    service) run_service_leg; return ;;
    coverage) run_coverage_leg; return ;;
    *) echo "ci.sh: unknown leg '$leg'" \
            "(default|notrace|asan|tsan|service|coverage)" >&2
       exit 2 ;;
  esac
  echo "== ci.sh: leg '$leg' -> $dir $flags"
  # shellcheck disable=SC2086  # flags is intentionally word-split
  cmake -B "$ROOT/$dir" -S "$ROOT" $flags
  cmake --build "$ROOT/$dir" -j "$JOBS"
  ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS"
}

legs=("$@")
if [ "${#legs[@]}" -eq 0 ]; then
  legs=(default notrace)
fi
for leg in "${legs[@]}"; do
  run_leg "$leg"
done
echo "== ci.sh: all legs passed: ${legs[*]}"
