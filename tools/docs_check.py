#!/usr/bin/env python3
"""Docs reference checker: fail on dangling references in the documentation.

Scans README.md and docs/*.md for

  * repository file paths (src/..., tools/..., docs/..., tests/...,
    bench/..., examples/..., and root-level *.md files) and verifies each
    exists, expanding `Prover.{h,cpp}`-style brace lists and allowing
    extensionless engine references like `src/regex/LangOps`;
  * `--flag` tokens, which must be spelled in the CLI sources (the
    subcommand layer src/service/Commands.cpp plus the tools/aptc.cpp and
    tools/aptd.cpp entry points and src/service/Client.cpp), so a
    documented flag cannot silently outlive the CLI — except for a small
    allowlist of flags belonging to other tools (ctest, cmake);
  * `aptc <subcommand>` invocations, which must be subcommands the
    dispatch table (kSubcommands in src/service/Commands.cpp) actually
    recognizes.

Coverage checks (the reverse direction — reality must be documented):

  * every subdirectory of src/ must be mentioned in at least one doc;
  * every aptc/aptd flag spelled in README.md must appear in at least
    one file under docs/, so the README never advertises a flag the
    reference documentation ignores.

Exit status: 0 when every reference resolves, 1 otherwise (each dangling
reference is reported with file and line). No third-party dependencies.

Usage: tools/docs_check.py [repo_root]
"""

import glob
import os
import re
import sys

# Flags that legitimately appear in docs but belong to other tools.
FOREIGN_FLAGS = {
    "--output-on-failure",  # ctest
    "--benchmark_min_time",  # google-benchmark
    "--build",  # cmake / tools/coverage_report.py
    "--test-dir",  # ctest
    "--filter",  # tools/coverage_report.py
    "--min-percent",  # tools/coverage_report.py
    "--record-only",  # tools/bench_check.py
    "--baseline",  # tools/bench_check.py
    "--mode",  # tools/bench_check.py
    "--history",  # tools/bench_check.py
    "--overhead-chrome",  # tools/bench_check.py
    "--timeline-budget",  # tools/bench_check.py
}

# Where the CLI surface is defined: flags may live in any of these.
CLI_SOURCES = [
    os.path.join("src", "service", "Commands.cpp"),
    os.path.join("src", "service", "Client.cpp"),
    os.path.join("tools", "aptc.cpp"),
    os.path.join("tools", "aptd.cpp"),
]

PATH_RE = re.compile(
    r"\b((?:src|tools|docs|tests|bench|examples)/[A-Za-z0-9_./{},*-]+"
    r"|[A-Z][A-Z_]+\.md)")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")
APTC_CMD_RE = re.compile(r"\baptc\s+([a-z]+)\b")


def expand_braces(token):
    """`a/b.{h,cpp}` -> [`a/b.h`, `a/b.cpp`]; plain tokens pass through."""
    m = re.match(r"^(.*)\{([^{}]*)\}(.*)$", token)
    if not m:
        return [token]
    out = []
    for alt in m.group(2).split(","):
        out.extend(expand_braces(m.group(1) + alt.strip() + m.group(3)))
    return out


def path_ok(root, token):
    if "*" in token:  # wildcard examples like build/bench/*
        return True
    full = os.path.join(root, token)
    if os.path.exists(full):
        return True
    # Extensionless references ("src/regex/LangOps") name a module file.
    if not os.path.splitext(token)[1]:
        return bool(glob.glob(full + ".*"))
    return False


def doc_files(root):
    files = [os.path.join(root, "README.md")]
    files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    return [f for f in files if os.path.exists(f)]


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    cli_src = ""
    for rel in CLI_SOURCES:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            cli_src += f.read()
    known_flags = set(re.findall(r'"(--[a-z][a-z0-9-]*)[="]', cli_src))
    known_flags |= set(re.findall(r'"(--[a-z][a-z0-9-]*)"', cli_src))
    table = re.search(r"kSubcommands\[\d+\]\s*=\s*\{([^}]*)\}", cli_src)
    known_subcommands = set(re.findall(r'"([a-z]+)"', table.group(1))
                            ) if table else set()

    errors = []
    readme_flags = {}  # flag -> "README.md:lineno" of first mention
    docs_text = ""
    for doc in doc_files(root):
        rel = os.path.relpath(doc, root)
        with open(doc, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if rel != "README.md":
                    docs_text += line
                for token in PATH_RE.findall(line):
                    token = token.rstrip(".,;:")
                    for path in expand_braces(token):
                        if not path_ok(root, path):
                            errors.append("%s:%d: dangling path '%s'" %
                                          (rel, lineno, path))
                for flag in FLAG_RE.findall(line):
                    if flag in FOREIGN_FLAGS:
                        continue
                    if flag not in known_flags:
                        errors.append(
                            "%s:%d: flag '%s' not found in the CLI sources" %
                            (rel, lineno, flag))
                    elif rel == "README.md":
                        readme_flags.setdefault(flag,
                                                "%s:%d" % (rel, lineno))
                for cmd in APTC_CMD_RE.findall(line):
                    if cmd not in known_subcommands:
                        errors.append(
                            "%s:%d: 'aptc %s' is not a CLI subcommand" %
                            (rel, lineno, cmd))

    # Reverse direction: every aptc/aptd flag the README advertises must
    # be covered by the reference docs under docs/.
    for flag, where in sorted(readme_flags.items()):
        if flag not in docs_text:
            errors.append("%s: flag '%s' appears in README.md but in no "
                          "file under docs/" % (where, flag))

    # Every src/ module must be documented somewhere.
    all_docs_text = docs_text
    with open(os.path.join(root, "README.md"), encoding="utf-8") as f:
        all_docs_text += f.read()
    for entry in sorted(os.listdir(os.path.join(root, "src"))):
        if not os.path.isdir(os.path.join(root, "src", entry)):
            continue
        if ("src/" + entry) not in all_docs_text:
            errors.append("src/%s: module is mentioned in no doc "
                          "(README.md or docs/*.md)" % entry)

    if errors:
        for e in errors:
            print(e)
        print("docs_check: %d dangling reference(s)" % len(errors))
        return 1
    print("docs_check: all references resolve (%d docs scanned, "
          "%d src modules covered)" %
          (len(doc_files(root)),
           len([e for e in os.listdir(os.path.join(root, "src"))
                if os.path.isdir(os.path.join(root, "src", e))])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
