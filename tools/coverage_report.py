#!/usr/bin/env python3
"""Aggregate gcov line coverage for an APT_COVERAGE=ON build tree.

Workflow (README "Developer workflow" has the copy-paste version):

    cmake -B build-cov -S . -DAPT_COVERAGE=ON
    cmake --build build-cov -j
    ctest --test-dir build-cov -j
    python3 tools/coverage_report.py --build build-cov [--filter src/regex]

Finds every .gcda the test run produced, asks gcov for JSON
(--json-format), and merges the per-source line counts into one table:
lines instrumented, lines executed, percent, per file and in total.
--filter limits the table to sources whose repo-relative path contains
the given substring (repeatable); --min-percent N exits non-zero when
total coverage of the filtered set is below N, for use as a CI gate.

Only the repo's own sources are counted: system headers and third-party
code are dropped. Requires gcov matching the compiler that produced the
.gcda files (plain `gcov` for the default gcc toolchain).

As a ctest gate (tools/CMakeLists.txt registers coverage_gate_reach in
APT_COVERAGE=ON trees), --run executes the named test binaries first so
the gate owns its own .gcda files instead of depending on test order,
and --record-only reports the table without enforcing --min-percent
(used when sanitizers skew line accounting).
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for f in files:
            if f.endswith(".gcda"):
                out.append(os.path.join(root, f))
    return out


def run_gcov(gcda_paths, build_dir):
    """Runs gcov -i (JSON intermediate) on the .gcda set; yields reports.

    gcov writes one .gcov.json.gz per input next to the cwd; using
    --stdout keeps everything in-process instead.
    """
    for path in gcda_paths:
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", path],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            cwd=build_dir, text=True)
        if proc.returncode != 0 or not proc.stdout:
            continue
        # --stdout emits one JSON document per .gcno, newline-separated.
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build-cov",
                    help="APT_COVERAGE=ON build tree (default build-cov)")
    ap.add_argument("--filter", action="append", default=[],
                    help="only count sources whose path contains this "
                         "substring (repeatable)")
    ap.add_argument("--min-percent", type=float,
                    help="exit 1 if total line coverage is below this")
    ap.add_argument("--record-only", action="store_true",
                    help="report the table but never fail the "
                         "--min-percent floor (sanitizer legs)")
    ap.add_argument("--run", action="append", default=[], metavar="BIN",
                    help="run this test binary (in the build tree) before "
                         "collecting, so the gate produces its own .gcda "
                         "files (repeatable)")
    ap.add_argument("--repo", default=os.path.dirname(
                        os.path.dirname(os.path.abspath(__file__))),
                    help="repository root (default: this script's parent)")
    args = ap.parse_args()

    build_dir = os.path.abspath(args.build)
    if not os.path.isdir(build_dir):
        sys.stderr.write("coverage_report: no build tree at %s "
                         "(configure with -DAPT_COVERAGE=ON first)\n"
                         % build_dir)
        return 2
    for bin_path in args.run:
        proc = subprocess.run([bin_path], stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL, cwd=build_dir)
        if proc.returncode != 0:
            sys.stderr.write("coverage_report: %s exited %d\n"
                             % (bin_path, proc.returncode))
            return 1
    gcda = find_gcda(build_dir)
    if not gcda:
        sys.stderr.write("coverage_report: no .gcda files under %s -- "
                         "run ctest in the coverage tree first\n"
                         % build_dir)
        return 2

    repo = os.path.abspath(args.repo) + os.sep
    # file -> line number -> max execution count across all test binaries.
    lines = collections.defaultdict(dict)
    for report in run_gcov(gcda, build_dir):
        for f in report.get("files", []):
            src = os.path.abspath(os.path.join(build_dir, f.get("file", "")))
            if not src.startswith(repo):
                continue
            rel = src[len(repo):]
            if args.filter and not any(s in rel for s in args.filter):
                continue
            table = lines[rel]
            for ln in f.get("lines", []):
                num = ln.get("line_number")
                count = ln.get("count", 0)
                if num is None:
                    continue
                table[num] = max(table.get(num, 0), count)

    if not lines:
        sys.stderr.write("coverage_report: nothing matched"
                         + (" filters %s" % args.filter if args.filter
                            else "") + "\n")
        return 2

    total_inst = total_hit = 0
    width = max(len(r) for r in lines)
    for rel in sorted(lines):
        table = lines[rel]
        inst = len(table)
        hit = sum(1 for c in table.values() if c > 0)
        total_inst += inst
        total_hit += hit
        print("%-*s  %5d/%5d  %6.1f%%"
              % (width, rel, hit, inst, 100.0 * hit / inst if inst else 0.0))
    pct = 100.0 * total_hit / total_inst if total_inst else 0.0
    print("%-*s  %5d/%5d  %6.1f%%" % (width, "TOTAL", total_hit,
                                      total_inst, pct))

    if args.min_percent is not None and pct < args.min_percent:
        sys.stderr.write("coverage_report: %.1f%% is below the %.1f%% "
                         "floor%s\n" % (pct, args.min_percent,
                                        " (record-only)" if args.record_only
                                        else ""))
        return 0 if args.record_only else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
