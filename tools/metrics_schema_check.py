#!/usr/bin/env python3
"""Validates live `aptc --metrics-json` output against the checked-in
schema (docs/metrics_schema.json), so the exported shape cannot drift
from its documentation.

Runs aptc three times (the batch `deps` path, the single-prover `prove`
path, and a profiled `deps --profile` run), validates the metrics files
with a small built-in JSON-Schema subset (type, properties,
patternProperties, additionalProperties, required, items, minimum, enum,
pattern, $ref -- all the schemas use), checks that the core metric names
are present, that histogram p50/p90/p99 summaries are ordered and
bounded by max, sanity-checks the JSONL trace written alongside (every
line parses; header first, summary last), validates the profile JSON
against docs/profile_schema.json and the folded-stack file's line
format.

Exit status: 0 on success, 1 with per-error report lines otherwise.
No third-party dependencies.

Usage: tools/metrics_schema_check.py <aptc-binary> <repo-root> <scratch-dir>
"""

import json
import os
import re
import subprocess
import sys


def validate(value, schema, path, errors, root=None):
    """Minimal JSON-Schema subset validator; appends "path: message"."""
    if root is None:
        root = schema
    if "$ref" in schema:
        target = root
        for part in schema["$ref"].lstrip("#/").split("/"):
            target = target[part]
        validate(value, target, path, errors, root)
        return
    types = schema.get("type")
    if types is not None:
        if not isinstance(types, list):
            types = [types]
        checks = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            # bool is an int subclass in Python; exclude it explicitly.
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "null": lambda v: v is None,
        }
        if not any(checks[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")

    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match "
                          f"{schema['pattern']!r}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member '{key}'")
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties", True)
        for key, member in value.items():
            child = f"{path}.{key}"
            if key in props:
                validate(member, props[key], child, errors, root)
                continue
            matched = False
            for pattern, sub in patterns.items():
                if re.search(pattern, key):
                    validate(member, sub, child, errors, root)
                    matched = True
                    break
            if matched:
                continue
            if additional is False:
                errors.append(f"{child}: unexpected member")
            elif isinstance(additional, dict):
                validate(member, additional, child, errors, root)

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{index}]", errors, root)


# Names the engine publishes unconditionally on every batch run; a rename
# must update docs/OBSERVABILITY.md and this list together.
CORE_COUNTERS = [
    "apt.batch.runs",
    "apt.batch.queries",
    "apt.batch.unique_queries",
    "apt.prover.goals_explored",
    "apt.lang.queries",
    "apt.triage.pairs",
]
CORE_GAUGES = ["apt.batch.jobs"]
CORE_HISTOGRAMS = [
    "apt.batch.query_wall_us",
    "apt.batch.run_wall_ms",
    "apt.prof.prepare_us",
    "apt.prof.prove_us",
    "apt.prof.broadcast_us",
]
# Published by writeProfileFiles on every --profile run.
PROFILE_COUNTERS = [
    "apt.prof.total_ns",
    "apt.prof.prover_ns",
    "apt.prof.lang_ns",
    "apt.prof.cache_ns",
    "apt.prof.triage_ns",
    "apt.prof.timed_events",
    "apt.prof.unmatched_events",
]


def check_quantiles(metrics, name, errors):
    """Each exported histogram summary must satisfy p50<=p90<=p99<=max."""
    for hist_name, hist in metrics.get("histograms", {}).items():
        if not all(key in hist for key in ("p50", "p90", "p99", "max")):
            continue  # the schema validation already reported this
        p50, p90, p99, top = hist["p50"], hist["p90"], hist["p99"], hist["max"]
        if not p50 <= p90 <= p99 <= top:
            errors.append(f"{name}: {hist_name}: quantiles out of order: "
                          f"p50={p50} p90={p90} p99={p99} max={top}")


def check_profile(profile_path, folded_path, profile_schema, errors):
    """Validates a --profile JSON file and its --profile-folded sibling."""
    with open(profile_path, encoding="utf-8") as f:
        profile = json.load(f)
    validate(profile, profile_schema, "profile", errors)

    if profile.get("dropped_events", 0) != 0:
        errors.append(f"profile: {profile['dropped_events']} dropped events")
    for scope in ("queries", "goals"):
        stats = profile.get(scope, {})
        if not all(key in stats for key in
                   ("p50_ns", "p90_ns", "p99_ns", "max_ns")):
            continue
        if not (stats["p50_ns"] <= stats["p90_ns"] <= stats["p99_ns"]
                <= stats["max_ns"]):
            errors.append(f"profile: {scope} percentiles out of order")

    # On a build with tracing compiled in, a sample run must attribute
    # nonzero time to at least the query frame; on an APT_TRACE=OFF build
    # the document must still validate, just with empty aggregates.
    if profile.get("trace_compiled_in"):
        rules = profile.get("rules", {})
        if not rules:
            errors.append("profile: no rules despite trace_compiled_in")
        if profile.get("total_ns", 0) == 0:
            errors.append("profile: total_ns is 0 despite trace_compiled_in")
        for rule, row in rules.items():
            if row.get("total_ns", 0) == 0 and row.get("self_ns", 0) == 0:
                errors.append(f"profile: rule '{rule}' has zero time")
    elif profile.get("rules"):
        errors.append("profile: rules present without trace support")

    with open(folded_path, encoding="utf-8") as f:
        folded = f.read().splitlines()
    if profile.get("trace_compiled_in") and not folded:
        errors.append(f"{folded_path}: empty folded-stack file")
    for number, line in enumerate(folded, 1):
        if not re.fullmatch(r"[a-z0-9_]+(;[a-z0-9_]+)* \d+", line):
            errors.append(f"{folded_path}:{number}: bad folded line "
                          f"{line!r}")


def check_trace(trace_path, errors):
    with open(trace_path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line]
    if not lines:
        errors.append(f"{trace_path}: empty trace")
        return
    kinds = []
    for number, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{trace_path}:{number}: bad JSON: {e}")
            return
        kinds.append(record.get("type"))
    if kinds[0] != "header":
        errors.append(f"{trace_path}: first record is '{kinds[0]}', "
                      "expected 'header'")
    if kinds[-1] != "summary":
        errors.append(f"{trace_path}: last record is '{kinds[-1]}', "
                      "expected 'summary'")


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    aptc, root, scratch = sys.argv[1:4]
    os.makedirs(scratch, exist_ok=True)
    with open(os.path.join(root, "docs", "metrics_schema.json"),
              encoding="utf-8") as f:
        schema = json.load(f)
    with open(os.path.join(root, "docs", "profile_schema.json"),
              encoding="utf-8") as f:
        profile_schema = json.load(f)

    errors = []
    runs = [
        ("deps", [aptc, "deps",
                  os.path.join(root, "tools", "samples", "worklist.apt"),
                  "--jobs", "2"]),
        ("prove", [aptc, "prove",
                   os.path.join(root, "tools", "samples",
                                "leaf_linked_tree.axioms"),
                   "L.L.N", "L.R.N"]),
    ]
    for name, argv in runs:
        metrics_path = os.path.join(scratch, f"{name}_metrics.json")
        trace_path = os.path.join(scratch, f"{name}_trace.jsonl")
        argv += [f"--metrics-json={metrics_path}", f"--trace={trace_path}"]
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(f"{name}: aptc exited {proc.returncode}: "
                          f"{proc.stderr.strip()}")
            continue
        with open(metrics_path, encoding="utf-8") as f:
            metrics = json.load(f)
        validate(metrics, schema, name, errors)
        check_quantiles(metrics, name, errors)
        check_trace(trace_path, errors)
        if name == "deps":
            for metric in CORE_COUNTERS:
                if metric not in metrics.get("counters", {}):
                    errors.append(f"{name}: missing counter '{metric}'")
            for metric in CORE_GAUGES:
                if metric not in metrics.get("gauges", {}):
                    errors.append(f"{name}: missing gauge '{metric}'")
            for metric in CORE_HISTOGRAMS:
                if metric not in metrics.get("histograms", {}):
                    errors.append(f"{name}: missing histogram '{metric}'")

    # Profiled batch run: the timed-span surface end to end.
    profile_path = os.path.join(scratch, "profile.json")
    folded_path = os.path.join(scratch, "profile.folded")
    metrics_path = os.path.join(scratch, "profile_metrics.json")
    proc = subprocess.run(
        [aptc, "deps", os.path.join(root, "tools", "samples",
                                    "worklist.apt"),
         "--jobs", "2", f"--profile={profile_path}",
         f"--profile-folded={folded_path}",
         f"--metrics-json={metrics_path}"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        errors.append(f"profile: aptc exited {proc.returncode}: "
                      f"{proc.stderr.strip()}")
    else:
        check_profile(profile_path, folded_path, profile_schema, errors)
        with open(metrics_path, encoding="utf-8") as f:
            metrics = json.load(f)
        validate(metrics, schema, "profile", errors)
        for metric in PROFILE_COUNTERS:
            if metric not in metrics.get("counters", {}):
                errors.append(f"profile: missing counter '{metric}'")

    for error in errors:
        print(f"metrics_schema_check: {error}")
    if errors:
        sys.exit(1)
    print("metrics_schema_check: OK")


if __name__ == "__main__":
    main()
