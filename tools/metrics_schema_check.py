#!/usr/bin/env python3
"""Validates live `aptc --metrics-json` output against the checked-in
schema (docs/metrics_schema.json), so the exported shape cannot drift
from its documentation.

Runs aptc twice (the batch `deps` path and the single-prover `prove`
path), validates both metrics files with a small built-in JSON-Schema
subset (type, properties, patternProperties, additionalProperties,
required, items, minimum -- all the schema uses), checks that the core
metric names are present, and sanity-checks the JSONL trace written
alongside (every line parses; header first, summary last).

Exit status: 0 on success, 1 with per-error report lines otherwise.
No third-party dependencies.

Usage: tools/metrics_schema_check.py <aptc-binary> <repo-root> <scratch-dir>
"""

import json
import os
import re
import subprocess
import sys


def validate(value, schema, path, errors):
    """Minimal JSON-Schema subset validator; appends "path: message"."""
    types = schema.get("type")
    if types is not None:
        if not isinstance(types, list):
            types = [types]
        checks = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            # bool is an int subclass in Python; exclude it explicitly.
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "null": lambda v: v is None,
        }
        if not any(checks[t](value) for t in types):
            errors.append(f"{path}: expected {'/'.join(types)}, "
                          f"got {type(value).__name__}")
            return

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member '{key}'")
        props = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties", True)
        for key, member in value.items():
            child = f"{path}.{key}"
            if key in props:
                validate(member, props[key], child, errors)
                continue
            matched = False
            for pattern, sub in patterns.items():
                if re.search(pattern, key):
                    validate(member, sub, child, errors)
                    matched = True
                    break
            if matched:
                continue
            if additional is False:
                errors.append(f"{child}: unexpected member")
            elif isinstance(additional, dict):
                validate(member, additional, child, errors)

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{index}]", errors)


# Names the engine publishes unconditionally on every batch run; a rename
# must update docs/OBSERVABILITY.md and this list together.
CORE_COUNTERS = [
    "apt.batch.runs",
    "apt.batch.queries",
    "apt.batch.unique_queries",
    "apt.prover.goals_explored",
    "apt.lang.queries",
]
CORE_GAUGES = ["apt.batch.jobs"]
CORE_HISTOGRAMS = ["apt.batch.query_wall_us", "apt.batch.run_wall_ms"]


def check_trace(trace_path, errors):
    with open(trace_path, encoding="utf-8") as f:
        lines = [line for line in f.read().splitlines() if line]
    if not lines:
        errors.append(f"{trace_path}: empty trace")
        return
    kinds = []
    for number, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{trace_path}:{number}: bad JSON: {e}")
            return
        kinds.append(record.get("type"))
    if kinds[0] != "header":
        errors.append(f"{trace_path}: first record is '{kinds[0]}', "
                      "expected 'header'")
    if kinds[-1] != "summary":
        errors.append(f"{trace_path}: last record is '{kinds[-1]}', "
                      "expected 'summary'")


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    aptc, root, scratch = sys.argv[1:4]
    os.makedirs(scratch, exist_ok=True)
    with open(os.path.join(root, "docs", "metrics_schema.json"),
              encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    runs = [
        ("deps", [aptc, "deps",
                  os.path.join(root, "tools", "samples", "worklist.apt"),
                  "--jobs", "2"]),
        ("prove", [aptc, "prove",
                   os.path.join(root, "tools", "samples",
                                "leaf_linked_tree.axioms"),
                   "L.L.N", "L.R.N"]),
    ]
    for name, argv in runs:
        metrics_path = os.path.join(scratch, f"{name}_metrics.json")
        trace_path = os.path.join(scratch, f"{name}_trace.jsonl")
        argv += [f"--metrics-json={metrics_path}", f"--trace={trace_path}"]
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append(f"{name}: aptc exited {proc.returncode}: "
                          f"{proc.stderr.strip()}")
            continue
        with open(metrics_path, encoding="utf-8") as f:
            metrics = json.load(f)
        validate(metrics, schema, name, errors)
        check_trace(trace_path, errors)
        if name == "deps":
            for metric in CORE_COUNTERS:
                if metric not in metrics.get("counters", {}):
                    errors.append(f"{name}: missing counter '{metric}'")
            for metric in CORE_GAUGES:
                if metric not in metrics.get("gauges", {}):
                    errors.append(f"{name}: missing gauge '{metric}'")
            for metric in CORE_HISTOGRAMS:
                if metric not in metrics.get("histograms", {}):
                    errors.append(f"{name}: missing histogram '{metric}'")

    for error in errors:
        print(f"metrics_schema_check: {error}")
    if errors:
        sys.exit(1)
    print("metrics_schema_check: OK")


if __name__ == "__main__":
    main()
