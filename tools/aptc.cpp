//===- tools/aptc.cpp - APT command-line driver ---------------------------===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
// A small driver exposing the library from the shell:
//
//   aptc prove <axioms-file> <pathP> <pathQ>
//       Prove `forall x: x.P <> x.Q` from the axioms (one per line,
//       optional `NAME:` prefixes, '#' comments); prints the proof.
//
//   aptc deps <program-file> [<labelS> <labelT>] [--invariant-writes]
//             [--triage on|off] [--jobs N] [--stats]
//       Parse a mini-language program, run the access-path analysis and
//       answer dependence queries. With two labels, the single query
//       between those statements (with its proof). Without labels, the
//       batch engine answers every labeled statement pair of every
//       function, deduplicated and fanned out over N worker threads
//       (default: hardware concurrency; --jobs 1 is fully sequential and
//       produces the same verdicts in the same order). --stats prints
//       engine instrumentation to stderr.
//
//   aptc loops <program-file> [--invariant-writes]
//       Classify every loop of every function as parallelizable or not.
//
//   aptc dump <program-file> [--invariant-writes]
//       Print the full analysis: per-statement access path matrices,
//       labeled references, loop summaries and handle provenance.
//
//   aptc lint <axioms-or-program-file> [--no-models]
//       Statically verify an axiom file or a program: contradictory,
//       vacuous, redundant and unsatisfiable axioms, unknown fields,
//       opaque calls, unsummarizable loops, shape conflicts. Exits
//       non-zero iff an error-severity finding was reported. The same
//       checks run warn-only at the front of `prove` and `deps`.
//
// Exit code: 0 = No/parallelizable/lint-clean, 1 = Maybe/blocked/lint
// errors, 2 = usage or input error.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepQueries.h"
#include "analysis/Profile.h"
#include "analysis/QueryEngine.h"
#include "analysis/TraceExport.h"
#include "core/ProofChecker.h"
#include "core/Prover.h"
#include "ir/Parser.h"
#include "lint/AxiomFile.h"
#include "lint/Lint.h"
#include "regex/RegexParser.h"
#include "support/Metrics.h"
#include "support/Strings.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace apt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aptc prove <axioms-file> <pathP> <pathQ> "
               "[--triage on|off] [--trace FILE] [--metrics-json FILE]\n"
               "                 [--profile FILE] [--profile-folded FILE]\n"
               "       aptc deps <program> [<labelS> <labelT>] "
               "[--invariant-writes] [--triage on|off] [--jobs N] "
               "[--stats]\n"
               "                 [--trace FILE] [--metrics-json FILE] "
               "[--profile FILE] [--profile-folded FILE]\n"
               "       aptc loops <program> [--invariant-writes]\n"
               "       aptc dump <program> [--invariant-writes]\n"
               "       aptc lint <axioms-or-program> [--no-models]\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Parses an axioms file through the shared lint loader (which handles
/// comments, "NAME:" prefixes and the `fields:` directive); parse errors
/// are printed as structured diagnostics.
bool readAxioms(const char *Path, FieldTable &Fields,
                AxiomFileContents &Out) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  DiagnosticEngine Diags;
  Out = parseAxiomFile(Text, Path, Fields, Diags);
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.render().c_str());
  return Out.Ok;
}

/// Runs a lint pass whose findings must not change the command's
/// behavior: everything is reported to stderr and forgotten (the
/// "warn-only at the front of prove/deps" mode).
void warnOnlyLint(const DiagnosticEngine &Diags) {
  if (Diags.empty())
    return;
  std::fprintf(stderr, "%s(lint: %s; use `aptc lint` to gate on these)\n",
               Diags.render().c_str(), Diags.summary().c_str());
}

/// The observability surface shared by `prove` and `deps`: --trace=FILE
/// writes a JSONL trace (docs/OBSERVABILITY.md), --metrics-json=FILE the
/// global metrics registry, --profile=FILE a time-attribution profile
/// (docs/profile_schema.json) and --profile-folded=FILE the same data as
/// collapsed flamegraph stacks. All accept `--flag FILE` and
/// `--flag=FILE`; the profile flags switch tracing into timed mode.
struct ObsFlags {
  std::string TraceFile;
  std::string MetricsFile;
  std::string ProfileFile;
  std::string ProfileFoldedFile;

  /// Timed spans wanted (turns on trace timed mode for the run).
  bool profiling() const {
    return !ProfileFile.empty() || !ProfileFoldedFile.empty();
  }
  /// Any surface that needs the event collector installed.
  bool tracing() const { return !TraceFile.empty() || profiling(); }
};

/// Strips observability flags out of Argv. Returns false on a flag that
/// is missing its value.
bool parseObsFlags(int &Argc, char **Argv, ObsFlags &Flags) {
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  // Returns the number of argv slots consumed (0 = no match), or -1 when
  // the value is missing.
  auto MatchValueFlag = [&](int I, const char *Name, std::string &Out) {
    size_t Len = std::strlen(Name);
    if (std::strncmp(Argv[I], Name, Len) != 0)
      return 0;
    if (Argv[I][Len] == '=') {
      Out = Argv[I] + Len + 1;
      return 1;
    }
    if (Argv[I][Len] != '\0')
      return 0;
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s requires a file path\n", Name);
      return -1;
    }
    Out = Argv[I + 1];
    return 2;
  };
  for (int I = 0; I < Argc;) {
    int N = MatchValueFlag(I, "--trace", Flags.TraceFile);
    if (N == 0)
      N = MatchValueFlag(I, "--metrics-json", Flags.MetricsFile);
    if (N == 0)
      N = MatchValueFlag(I, "--profile-folded", Flags.ProfileFoldedFile);
    if (N == 0)
      N = MatchValueFlag(I, "--profile", Flags.ProfileFile);
    if (N < 0)
      return false;
    if (N > 0)
      Remove(I, N);
    else
      ++I;
  }
  return true;
}

/// Strips a `--triage on|off` / `--triage=on|off` flag out of Argv
/// (shared by `prove` and the program subcommands; docs/TRIAGE.md).
/// Leaves \p TriageOn untouched when the flag is absent -- callers seed
/// it with the default (on). Returns false on a malformed value.
bool parseTriageFlag(int &Argc, char **Argv, bool &TriageOn) {
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  for (int I = 0; I < Argc;) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--triage", 8) != 0 ||
        (Arg[8] != '\0' && Arg[8] != '=')) {
      ++I;
      continue;
    }
    const char *Value;
    int N;
    if (Arg[8] == '=') {
      Value = Arg + 9;
      N = 1;
    } else {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --triage requires on|off\n");
        return false;
      }
      Value = Argv[I + 1];
      N = 2;
    }
    if (std::strcmp(Value, "on") == 0) {
      TriageOn = true;
    } else if (std::strcmp(Value, "off") == 0) {
      TriageOn = false;
    } else {
      std::fprintf(stderr, "error: bad --triage value '%s' (want on|off)\n",
                   Value);
      return false;
    }
    Remove(I, N);
  }
  return true;
}

/// RAII scope for a traced command: installs a collector and enables
/// recording (in timed mode when \p Timed, which also calibrates the
/// fast clock up front); finish() stops recording and flushes this
/// thread's ring (worker rings flush when their pool joins) so the
/// collector holds every event before a writer drains it.
class TraceScope {
public:
  explicit TraceScope(bool Active, bool Timed = false) : Active(Active) {
    if (!Active)
      return;
    trace::setCollector(&Events);
    trace::setTimingEnabled(Timed);
    trace::setEnabled(true);
  }
  ~TraceScope() {
    if (!Active)
      return;
    finish();
    trace::setCollector(nullptr);
  }

  trace::Collector *finish() {
    trace::setEnabled(false);
    trace::setTimingEnabled(false);
    trace::flushThisThread();
    return &Events;
  }

private:
  trace::Collector Events;
  bool Active;
};

/// Aggregates the collected timed events and writes --profile /
/// --profile-folded files (no-op when neither was requested). Publishes
/// the aggregate as apt.prof.* metrics, so call before writeMetricsFile.
/// \p Mode mirrors the trace header ("prove", "pair", "batch").
bool writeProfileFiles(const ObsFlags &Obs, const trace::Collector *Events,
                       const char *Mode) {
  if (!Obs.profiling() || !Events)
    return true;
  // Snapshot, not drain: the trace writer may still need the events.
  Profile P = Profile::fromCollector(*Events);
  P.publishMetrics();
  if (!Obs.ProfileFile.empty()) {
    std::ofstream Out(Obs.ProfileFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Obs.ProfileFile.c_str());
      return false;
    }
    Out << P.toJson(Mode).dumpPretty() << '\n';
  }
  if (!Obs.ProfileFoldedFile.empty()) {
    std::ofstream Out(Obs.ProfileFoldedFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Obs.ProfileFoldedFile.c_str());
      return false;
    }
    Out << P.toFolded();
  }
  return true;
}

/// Writes the global metrics registry as pretty JSON. Returns false (and
/// complains) when the file cannot be opened.
bool writeMetricsFile(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  Out << metrics::Registry::global().toJsonString() << '\n';
  return true;
}

/// Publishes one prover's counters into the global registry, for the
/// single-prover commands (`prove`, labeled `deps`) that bypass the
/// batch engine's own publication.
void publishProverMetrics(const Prover &P) {
  metrics::Registry &R = metrics::Registry::global();
  const ProverStats &S = P.stats();
  R.counter("apt.prover.goals_explored").add(S.GoalsExplored);
  R.counter("apt.prover.goal_cache_hits").add(S.GoalCacheHits);
  R.counter("apt.prover.shared_goal_hits").add(S.SharedGoalHits);
  R.counter("apt.prover.hypothesis_hits").add(S.HypothesisHits);
  R.counter("apt.prover.alt_splits").add(S.AltSplits);
  R.counter("apt.prover.inductions").add(S.Inductions);
  R.counter("apt.prover.budget_exhausted").add(S.BudgetExhausted);
}

int cmdProve(int Argc, char **Argv) {
  ObsFlags Obs;
  if (!parseObsFlags(Argc, Argv, Obs))
    return 2;
  bool Triage = true;
  if (!parseTriageFlag(Argc, Argv, Triage))
    return 2;
  if (Argc != 3)
    return usage();
  FieldTable Fields;
  AxiomFileContents Contents;
  if (!readAxioms(Argv[0], Fields, Contents))
    return 2;
  const AxiomSet &Axioms = Contents.Axioms;
  {
    DiagnosticEngine LintDiags;
    AxiomLintInput In;
    In.Axioms = &Axioms;
    In.File = Argv[0];
    In.Alphabet = Contents.DeclaredFields;
    lintAxiomSet(In, Fields, LintDiags);
    warnOnlyLint(LintDiags);
  }
  RegexParseResult P = parseRegex(Argv[1], Fields);
  RegexParseResult Q = parseRegex(Argv[2], Fields);
  if (!P || !Q) {
    std::fprintf(stderr, "error: bad path: %s\n",
                 (!P ? P.Error : Q.Error).c_str());
    return 2;
  }

  std::printf("axioms:\n%s\n", Axioms.toString(Fields).c_str());
  TraceScope Scope(Obs.tracing(), Obs.profiling());
  Prover Prover(Fields);
  int Exit;
  // Triage screen (docs/TRIAGE.md): when the two top-level languages
  // overlap outright, no proof of disjointness can exist -- the prover's
  // own PruneIntersectingLanguages gate refutes such goals immediately --
  // so skip the proof search and go straight to the NO PROOF report.
  bool Proved;
  if (Triage) {
    LangQuery Screen;
    Proved = Screen.disjoint(P.Value, Q.Value) &&
             Prover.proveDisjoint(Axioms, P.Value, Q.Value);
  } else {
    Proved = Prover.proveDisjoint(Axioms, P.Value, Q.Value);
  }
  if (Proved) {
    std::printf("PROVED: forall x: x.%s <> x.%s\n\n%s",
                P.Value->toString(Fields).c_str(),
                Q.Value->toString(Fields).c_str(),
                Prover.proofText().c_str());
    LangQuery CheckerLang;
    ProofCheckResult Checked =
        checkProof(*Prover.proof(), Axioms, CheckerLang);
    if (!Checked.Ok) {
      std::fprintf(stderr, "INTERNAL: proof failed re-verification: %s\n",
                   Checked.Error.c_str());
      return 2;
    }
    std::printf("\n(proof independently re-verified)\n");
    Exit = 0;
  } else {
    std::printf("NO PROOF (verdict: Maybe): forall x: x.%s <> x.%s\n",
                P.Value->toString(Fields).c_str(),
                Q.Value->toString(Fields).c_str());
    // When the two languages overlap outright, the on-the-fly product
    // yields a shortest shared word: the concrete path both expressions
    // can denote. Print it — it is the counterexample a user needs.
    LangQuery WitnessLang;
    if (!WitnessLang.disjoint(P.Value, Q.Value) &&
        WitnessLang.lastWitness()) {
      std::string Path = "x";
      for (FieldId F : *WitnessLang.lastWitness()) {
        Path += ".";
        Path += Fields.name(F);
      }
      std::printf("languages overlap: both expressions can denote %s\n",
                  Path.c_str());
    }
    Exit = 1;
  }
  trace::Collector *Events = Obs.tracing() ? Scope.finish() : nullptr;
  if (!writeProfileFiles(Obs, Events, "prove"))
    return 2;
  if (!Obs.TraceFile.empty()) {
    std::ofstream Out(Obs.TraceFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Obs.TraceFile.c_str());
      return 2;
    }
    writeProveTrace(Out, Axioms, P.Value, Q.Value, Fields,
                    Prover.options(), Events);
  }
  publishProverMetrics(Prover);
  if (!Obs.MetricsFile.empty() && !writeMetricsFile(Obs.MetricsFile))
    return 2;
  return Exit;
}

/// Flags shared by the program-consuming subcommands. `deps` uses all of
/// them; `loops` and `dump` only honor --invariant-writes.
struct ProgramFlags {
  AnalyzerOptions Analyzer;
  unsigned Jobs = 0; ///< 0 = hardware concurrency.
  bool Stats = false;
  ObsFlags Obs;
};

bool parseFlags(int &Argc, char **Argv, ProgramFlags &Flags) {
  if (!parseObsFlags(Argc, Argv, Flags.Obs))
    return false;
  if (!parseTriageFlag(Argc, Argv, Flags.Analyzer.Triage))
    return false;
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  for (int I = 0; I < Argc;) {
    if (std::strcmp(Argv[I], "--invariant-writes") == 0) {
      Flags.Analyzer.InvariantPreservingWrites = true;
      Remove(I, 1);
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Flags.Stats = true;
      Remove(I, 1);
    } else if (std::strcmp(Argv[I], "--jobs") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --jobs requires a thread count\n");
        return false;
      }
      char *End = nullptr;
      long N = std::strtol(Argv[I + 1], &End, 10);
      if (End == Argv[I + 1] || *End != '\0' || N < 1) {
        std::fprintf(stderr, "error: bad --jobs value '%s'\n", Argv[I + 1]);
        return false;
      }
      Flags.Jobs = static_cast<unsigned>(N);
      Remove(I, 2);
    } else {
      ++I;
    }
  }
  return true;
}

/// Batch mode: every labeled statement pair of every function, answered
/// by the parallel engine. Verdict lines go to stdout (identical for
/// every --jobs value); --stats instrumentation goes to stderr so the
/// verdict stream stays byte-comparable across runs.
int cmdDepsBatch(const Program &Prog, FieldTable &Fields,
                 const ProgramFlags &Flags) {
  BatchOptions Opts;
  Opts.Analyzer = Flags.Analyzer;
  Opts.Jobs = Flags.Jobs;
  BatchQueryEngine Engine(Prog, Fields, Opts);
  TraceScope Scope(Flags.Obs.tracing(), Flags.Obs.profiling());
  std::vector<BatchResult> Results = Engine.runAll();
  bool AllNo = true;
  for (const BatchResult &R : Results) {
    std::printf("fn %s: deptest(%s, %s) = %s (%s: %s)\n",
                R.Query.Func.c_str(), R.Query.LabelS.c_str(),
                R.Query.LabelT.c_str(), depVerdictName(R.Result.Verdict),
                depKindName(R.Result.Kind), R.Result.Reason.c_str());
    AllNo &= R.Result.Verdict == DepVerdict::No;
  }
  if (Flags.Stats) {
    // One buffered write, after flushing the verdict stream: with stdout
    // and stderr merged (2>&1), per-line writes from the two streams can
    // interleave mid-block under high --jobs; a single fwrite of the
    // whole block cannot.
    std::string Block = Engine.stats().toString();
    std::fflush(stdout);
    std::fwrite(Block.data(), 1, Block.size(), stderr);
  }
  trace::Collector *Events = Flags.Obs.tracing() ? Scope.finish() : nullptr;
  if (!writeProfileFiles(Flags.Obs, Events, "batch"))
    return 2;
  if (!Flags.Obs.TraceFile.empty()) {
    std::ofstream Out(Flags.Obs.TraceFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Flags.Obs.TraceFile.c_str());
      return 2;
    }
    writeBatchTrace(Out, Engine, Results, Fields, Events);
  }
  if (!Flags.Obs.MetricsFile.empty() &&
      !writeMetricsFile(Flags.Obs.MetricsFile))
    return 2;
  return AllNo ? 0 : 1;
}

int cmdDeps(int Argc, char **Argv) {
  ProgramFlags Flags;
  if (!parseFlags(Argc, Argv, Flags))
    return 2;
  if (Argc != 1 && Argc != 3)
    return usage();
  FieldTable Fields;
  std::string Source;
  if (!readFile(Argv[0], Source))
    return 2;
  ProgramParseResult Prog = parseProgram(Source, Fields);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Argv[0], Prog.Error.c_str());
    return 2;
  }
  {
    DiagnosticEngine LintDiags;
    lintProgram(Prog.Value, Argv[0], Fields, LintDiags);
    warnOnlyLint(LintDiags);
  }

  if (Argc == 1)
    return cmdDepsBatch(Prog.Value, Fields, Flags);

  for (const Function &F : Prog.Value.Functions) {
    if (!findLabeled(F.Body, Argv[1]) || !findLabeled(F.Body, Argv[2]))
      continue;
    DepQueryEngine Engine(Prog.Value, F, Fields, Flags.Analyzer);
    TraceScope Scope(Flags.Obs.tracing(), Flags.Obs.profiling());
    Prover P(Fields);
    DepTestResult R = Engine.testStatementPair(Argv[1], Argv[2], P);
    std::printf("fn %s: deptest(%s, %s) = %s (%s: %s)\n", F.Name.c_str(),
                Argv[1], Argv[2], depVerdictName(R.Verdict),
                depKindName(R.Kind), R.Reason.c_str());
    if (!R.ProofText.empty())
      std::printf("%s", R.ProofText.c_str());
    if (Flags.Stats) {
      const ProverStats &S = P.stats();
      std::fflush(stdout);
      std::fprintf(stderr,
                   "prover stats: %llu goals, %llu cache hits, "
                   "%llu inductions, %llu alt splits\n",
                   static_cast<unsigned long long>(S.GoalsExplored),
                   static_cast<unsigned long long>(S.GoalCacheHits),
                   static_cast<unsigned long long>(S.Inductions),
                   static_cast<unsigned long long>(S.AltSplits));
    }
    trace::Collector *Events =
        Flags.Obs.tracing() ? Scope.finish() : nullptr;
    if (!writeProfileFiles(Flags.Obs, Events, "pair"))
      return 2;
    if (!Flags.Obs.TraceFile.empty()) {
      std::ofstream Out(Flags.Obs.TraceFile);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     Flags.Obs.TraceFile.c_str());
        return 2;
      }
      PreparedQuery Prep = Engine.prepareStatementPair(Argv[1], Argv[2]);
      writePairTrace(Out, Prep.Axioms, Prep.S, Prep.T, R, Fields,
                     P.options(), Events);
    }
    publishProverMetrics(P);
    if (!Flags.Obs.MetricsFile.empty() &&
        !writeMetricsFile(Flags.Obs.MetricsFile))
      return 2;
    return R.Verdict == DepVerdict::No ? 0 : 1;
  }
  std::fprintf(stderr,
               "error: no function contains both labels '%s' and '%s'\n",
               Argv[1], Argv[2]);
  return 2;
}

int cmdLoops(int Argc, char **Argv) {
  ProgramFlags Flags;
  if (!parseFlags(Argc, Argv, Flags))
    return 2;
  AnalyzerOptions Opts = Flags.Analyzer;
  if (Argc != 1)
    return usage();
  FieldTable Fields;
  std::string Source;
  if (!readFile(Argv[0], Source))
    return 2;
  ProgramParseResult Prog = parseProgram(Source, Fields);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Argv[0], Prog.Error.c_str());
    return 2;
  }

  bool AllParallel = true;
  for (const Function &F : Prog.Value.Functions) {
    DepQueryEngine Engine(Prog.Value, F, Fields, Opts);
    Prover P(Fields);
    for (int LoopId : Engine.loopIds()) {
      LoopParallelism LP = Engine.analyzeLoopParallelism(LoopId, P);
      std::printf("fn %-20s loop#%-3d %s\n", F.Name.c_str(), LoopId,
                  LP.Parallelizable ? "PARALLELIZABLE" : "sequential");
      AllParallel &= LP.Parallelizable;
    }
  }
  return AllParallel ? 0 : 1;
}

/// `aptc lint <file>`: program mode for `.apt` files (or anything
/// declaring a `fn`), axiom-file mode otherwise. Exit 0 = no errors
/// (warnings allowed), 1 = error findings, 2 = unreadable input.
int cmdLint(int Argc, char **Argv) {
  LintOptions Opts;
  for (int I = 0; I < Argc;) {
    if (std::strcmp(Argv[I], "--no-models") == 0) {
      Opts.CheckModels = false;
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
    } else {
      ++I;
    }
  }
  if (Argc != 1)
    return usage();
  const char *Path = Argv[0];
  std::string Text;
  if (!readFile(Path, Text))
    return 2;

  FieldTable Fields;
  DiagnosticEngine Diags;
  std::string_view PathView(Path);
  bool IsProgram =
      PathView.size() >= 4 &&
      PathView.substr(PathView.size() - 4) == ".apt";
  if (!IsProgram && Text.find("fn ") != std::string::npos)
    IsProgram = true;

  if (IsProgram) {
    ProgramParseResult Prog = parseProgram(Text, Fields);
    if (!Prog) {
      // Parser errors arrive as "line N: message"; re-home them in the
      // structured diagnostics stream.
      int Line = 0;
      std::string Message = Prog.Error;
      if (Message.substr(0, 5) == "line ") {
        size_t Colon = Message.find(':');
        if (Colon != std::string::npos) {
          Line = std::atoi(Message.c_str() + 5);
          Message = std::string(trim(Message.substr(Colon + 1)));
        }
      }
      Diags.error("APT-E007", SourceLoc(Path, Line), Message);
    } else {
      lintProgram(Prog.Value, Path, Fields, Diags, Opts);
    }
  } else {
    AxiomFileContents Contents = parseAxiomFile(Text, Path, Fields, Diags);
    AxiomLintInput In;
    In.Axioms = &Contents.Axioms;
    In.File = Path;
    In.Alphabet = Contents.DeclaredFields;
    lintAxiomSet(In, Fields, Diags, Opts);
  }

  std::printf("%s", Diags.render().c_str());
  std::printf("lint: %s: %s\n", Path, Diags.summary().c_str());
  return Diags.hasErrors() ? 1 : 0;
}

int cmdDump(int Argc, char **Argv) {
  ProgramFlags Flags;
  if (!parseFlags(Argc, Argv, Flags))
    return 2;
  AnalyzerOptions Opts = Flags.Analyzer;
  if (Argc != 1)
    return usage();
  FieldTable Fields;
  std::string Source;
  if (!readFile(Argv[0], Source))
    return 2;
  ProgramParseResult Prog = parseProgram(Source, Fields);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Argv[0], Prog.Error.c_str());
    return 2;
  }
  for (const Function &F : Prog.Value.Functions) {
    AnalysisResult R = analyzeFunction(Prog.Value, F, Fields, Opts);
    std::printf("%s\n", dumpAnalysis(R, F, Fields).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "prove") == 0)
    return cmdProve(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "deps") == 0)
    return cmdDeps(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "loops") == 0)
    return cmdLoops(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "dump") == 0)
    return cmdDump(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "lint") == 0)
    return cmdLint(Argc - 2, Argv + 2);
  return usage();
}
