//===- tools/aptc.cpp - APT command-line driver ---------------------------===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
//
// Thin entry point: the subcommand implementations (prove, deps, loops,
// dump, lint) live in src/service/Commands.cpp, shared verbatim with the
// aptd daemon. This file only decides the mode:
//
//   aptc <subcommand> ...                    one-shot: run against a
//                                            fresh, discarded ServiceState
//   aptc <subcommand> ... --connect SOCKET   route through a running aptd
//                                            (see docs/SERVICE.md)
//
// `--connect SOCKET` (or `--connect=SOCKET`) may appear anywhere in the
// argument list; it is stripped before the remaining argv is forwarded,
// so the daemon sees exactly the one-shot argument vector — which is
// what keeps daemon-routed output byte-identical to one-shot output
// (asserted by tools/service_parity_check.py).
//
// Exit code: 0 = No/parallelizable/lint-clean, 1 = Maybe/blocked/lint
// errors, 2 = usage or input error.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Commands.h"
#include "service/ServiceState.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

int main(int argc, char **argv) {
  std::vector<std::string> Args;
  std::string Socket;
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strncmp(A, "--connect=", 10) == 0) {
      Socket = A + 10;
      continue;
    }
    if (std::strcmp(A, "--connect") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --connect requires a socket path\n");
        return 2;
      }
      Socket = argv[++I];
      continue;
    }
    Args.emplace_back(A);
  }

  if (!Socket.empty())
    return apt::svc::runViaDaemon(Socket, Args);

  apt::svc::ServiceState State;
  return apt::svc::runServiceCommand(State, Args, apt::svc::stdioCommandIo());
}
