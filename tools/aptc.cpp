//===- tools/aptc.cpp - APT command-line driver ---------------------------===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
//
// Thin entry point: the subcommand implementations (prove, deps, loops,
// dump, lint) live in src/service/Commands.cpp, shared verbatim with the
// aptd daemon. This file only decides the mode:
//
//   aptc <subcommand> ...                    one-shot: run against a
//                                            fresh, discarded ServiceState
//   aptc <subcommand> ... --connect SOCKET   route through a running aptd
//                                            (see docs/SERVICE.md)
//
// `--connect SOCKET` (or `--connect=SOCKET`) may appear anywhere in the
// argument list; it is stripped before the remaining argv is forwarded,
// so the daemon sees exactly the one-shot argument vector — which is
// what keeps daemon-routed output byte-identical to one-shot output
// (asserted by tools/service_parity_check.py).
//
// Exit code: 0 = No/parallelizable/lint-clean, 1 = Maybe/blocked/lint
// errors, 2 = usage or input error.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Commands.h"
#include "service/ServiceState.h"
#include "support/Version.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", apt::version::versionLine("aptc").c_str());
    return 0;
  }
  std::vector<std::string> Args;
  std::string Socket;
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strncmp(A, "--connect=", 10) == 0) {
      Socket = A + 10;
      continue;
    }
    if (std::strcmp(A, "--connect") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --connect requires a socket path\n");
        return 2;
      }
      Socket = argv[++I];
      continue;
    }
    Args.emplace_back(A);
  }

  // `top` is daemon-only and interactive: it polls the status/timeline
  // ops itself rather than wrapping argv in a `run` request, so route it
  // before the generic daemon path. Without --connect it falls through
  // to runServiceCommand, which explains the requirement.
  if (!Socket.empty() && !Args.empty() && Args[0] == "top")
    return apt::svc::runTopCommand(
        Socket, std::vector<std::string>(Args.begin() + 1, Args.end()));

  if (!Socket.empty())
    return apt::svc::runViaDaemon(Socket, Args);

  apt::svc::ServiceState State;
  return apt::svc::runServiceCommand(State, Args, apt::svc::stdioCommandIo());
}
