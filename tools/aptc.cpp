//===- tools/aptc.cpp - APT command-line driver ---------------------------===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
// A small driver exposing the library from the shell:
//
//   aptc prove <axioms-file> <pathP> <pathQ>
//       Prove `forall x: x.P <> x.Q` from the axioms (one per line,
//       optional `NAME:` prefixes, '#' comments); prints the proof.
//
//   aptc deps <program-file> <labelS> <labelT> [--invariant-writes]
//       Parse a mini-language program, run the access-path analysis and
//       answer the dependence query between two labeled statements.
//
//   aptc loops <program-file> [--invariant-writes]
//       Classify every loop of every function as parallelizable or not.
//
//   aptc dump <program-file> [--invariant-writes]
//       Print the full analysis: per-statement access path matrices,
//       labeled references, loop summaries and handle provenance.
//
// Exit code: 0 = No/parallelizable, 1 = Maybe/blocked, 2 = usage or
// input error.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepQueries.h"
#include "core/ProofChecker.h"
#include "core/Prover.h"
#include "ir/Parser.h"
#include "regex/RegexParser.h"
#include "support/Strings.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace apt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aptc prove <axioms-file> <pathP> <pathQ>\n"
               "       aptc deps <program> <labelS> <labelT> "
               "[--invariant-writes]\n"
               "       aptc loops <program> [--invariant-writes]\n"
               "       aptc dump <program> [--invariant-writes]\n");
  return 2;
}

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Parses an axioms file: one axiom per line, blank lines and lines
/// starting with '#' skipped, optional "NAME:" prefix.
bool readAxioms(const char *Path, FieldTable &Fields, AxiomSet &Out) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  int LineNo = 0, AutoName = 0;
  std::stringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed.front() == '#')
      continue;
    std::string Name = "A" + std::to_string(++AutoName);
    size_t Colon = Trimmed.find(':');
    if (Colon != std::string::npos) {
      std::string_view Head = trim(Trimmed.substr(0, Colon));
      bool IsName = !Head.empty() && Head != "forall";
      for (char C : Head)
        if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
          IsName = false;
      if (IsName) {
        Name = std::string(Head);
        Trimmed = trim(Trimmed.substr(Colon + 1));
      }
    }
    AxiomParseResult A = parseAxiom(Trimmed, Fields, Name);
    if (!A) {
      std::fprintf(stderr, "%s:%d: %s\n", Path, LineNo, A.Error.c_str());
      return false;
    }
    Out.add(A.Value);
  }
  return true;
}

int cmdProve(int Argc, char **Argv) {
  if (Argc != 3)
    return usage();
  FieldTable Fields;
  AxiomSet Axioms;
  if (!readAxioms(Argv[0], Fields, Axioms))
    return 2;
  RegexParseResult P = parseRegex(Argv[1], Fields);
  RegexParseResult Q = parseRegex(Argv[2], Fields);
  if (!P || !Q) {
    std::fprintf(stderr, "error: bad path: %s\n",
                 (!P ? P.Error : Q.Error).c_str());
    return 2;
  }

  std::printf("axioms:\n%s\n", Axioms.toString(Fields).c_str());
  Prover Prover(Fields);
  if (Prover.proveDisjoint(Axioms, P.Value, Q.Value)) {
    std::printf("PROVED: forall x: x.%s <> x.%s\n\n%s",
                P.Value->toString(Fields).c_str(),
                Q.Value->toString(Fields).c_str(),
                Prover.proofText().c_str());
    LangQuery CheckerLang;
    ProofCheckResult Checked =
        checkProof(*Prover.proof(), Axioms, CheckerLang);
    if (!Checked.Ok) {
      std::fprintf(stderr, "INTERNAL: proof failed re-verification: %s\n",
                   Checked.Error.c_str());
      return 2;
    }
    std::printf("\n(proof independently re-verified)\n");
    return 0;
  }
  std::printf("NO PROOF (verdict: Maybe): forall x: x.%s <> x.%s\n",
              P.Value->toString(Fields).c_str(),
              Q.Value->toString(Fields).c_str());
  return 1;
}

bool parseFlags(int &Argc, char **Argv, AnalyzerOptions &Opts) {
  for (int I = 0; I < Argc;) {
    if (std::strcmp(Argv[I], "--invariant-writes") == 0) {
      Opts.InvariantPreservingWrites = true;
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
    } else {
      ++I;
    }
  }
  return true;
}

int cmdDeps(int Argc, char **Argv) {
  AnalyzerOptions Opts;
  parseFlags(Argc, Argv, Opts);
  if (Argc != 3)
    return usage();
  FieldTable Fields;
  std::string Source;
  if (!readFile(Argv[0], Source))
    return 2;
  ProgramParseResult Prog = parseProgram(Source, Fields);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Argv[0], Prog.Error.c_str());
    return 2;
  }

  for (const Function &F : Prog.Value.Functions) {
    if (!findLabeled(F.Body, Argv[1]) || !findLabeled(F.Body, Argv[2]))
      continue;
    DepQueryEngine Engine(Prog.Value, F, Fields, Opts);
    Prover P(Fields);
    DepTestResult R = Engine.testStatementPair(Argv[1], Argv[2], P);
    std::printf("fn %s: deptest(%s, %s) = %s (%s: %s)\n", F.Name.c_str(),
                Argv[1], Argv[2], depVerdictName(R.Verdict),
                depKindName(R.Kind), R.Reason.c_str());
    if (!R.ProofText.empty())
      std::printf("%s", R.ProofText.c_str());
    return R.Verdict == DepVerdict::No ? 0 : 1;
  }
  std::fprintf(stderr,
               "error: no function contains both labels '%s' and '%s'\n",
               Argv[1], Argv[2]);
  return 2;
}

int cmdLoops(int Argc, char **Argv) {
  AnalyzerOptions Opts;
  parseFlags(Argc, Argv, Opts);
  if (Argc != 1)
    return usage();
  FieldTable Fields;
  std::string Source;
  if (!readFile(Argv[0], Source))
    return 2;
  ProgramParseResult Prog = parseProgram(Source, Fields);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Argv[0], Prog.Error.c_str());
    return 2;
  }

  bool AllParallel = true;
  for (const Function &F : Prog.Value.Functions) {
    DepQueryEngine Engine(Prog.Value, F, Fields, Opts);
    Prover P(Fields);
    for (int LoopId : Engine.loopIds()) {
      LoopParallelism LP = Engine.analyzeLoopParallelism(LoopId, P);
      std::printf("fn %-20s loop#%-3d %s\n", F.Name.c_str(), LoopId,
                  LP.Parallelizable ? "PARALLELIZABLE" : "sequential");
      AllParallel &= LP.Parallelizable;
    }
  }
  return AllParallel ? 0 : 1;
}

int cmdDump(int Argc, char **Argv) {
  AnalyzerOptions Opts;
  parseFlags(Argc, Argv, Opts);
  if (Argc != 1)
    return usage();
  FieldTable Fields;
  std::string Source;
  if (!readFile(Argv[0], Source))
    return 2;
  ProgramParseResult Prog = parseProgram(Source, Fields);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Argv[0], Prog.Error.c_str());
    return 2;
  }
  for (const Function &F : Prog.Value.Functions) {
    AnalysisResult R = analyzeFunction(Prog.Value, F, Fields, Opts);
    std::printf("%s\n", dumpAnalysis(R, F, Fields).c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "prove") == 0)
    return cmdProve(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "deps") == 0)
    return cmdDeps(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "loops") == 0)
    return cmdLoops(Argc - 2, Argv + 2);
  if (std::strcmp(Argv[1], "dump") == 0)
    return cmdDump(Argc - 2, Argv + 2);
  return usage();
}
