//===- tools/aptd.cpp - APT analysis daemon -------------------------------===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
//
// Long-running analysis service. Loads axiom files and programs once and
// keeps the interned DFA store, goal/language caches, and parsed IR
// resident between requests; `aptc <subcommand> ... --connect SOCKET`
// routes the existing CLI verbs through it with byte-identical output.
// Protocol reference: docs/SERVICE.md.
//
//   aptd --socket PATH            Unix-domain socket to listen on (required)
//        --snapshot-load PATH     warm-start from a saved cache snapshot
//        --snapshot-save PATH     write a snapshot on clean shutdown
//        --slow-ms N              log requests slower than N ms (0 = off)
//        --timeline-ms N          metric sampling interval for the
//                                 status/timeline ops (default 1000, 0 = off)
//        --version                print version/build line and exit
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "service/ServiceState.h"
#include "support/Version.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aptd --socket PATH [--snapshot-load PATH] "
               "[--snapshot-save PATH] [--slow-ms N] [--timeline-ms N]\n");
  return 2;
}

/// Accepts both `--flag VALUE` and `--flag=VALUE`; advances \p I past a
/// consumed separate value.
bool flagValue(int argc, char **argv, int &I, const char *Name,
               std::string &Out) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(argv[I], Name, Len) != 0)
    return false;
  if (argv[I][Len] == '=') {
    Out = argv[I] + Len + 1;
    return true;
  }
  if (argv[I][Len] == '\0' && I + 1 < argc) {
    Out = argv[++I];
    return true;
  }
  return false;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", apt::version::versionLine("aptd").c_str());
    return 0;
  }
  apt::svc::ServerOptions Opts;
  std::string SlowMs, TimelineMs;
  for (int I = 1; I < argc; ++I) {
    if (flagValue(argc, argv, I, "--socket", Opts.SocketPath) ||
        flagValue(argc, argv, I, "--snapshot-load", Opts.SnapshotLoad) ||
        flagValue(argc, argv, I, "--snapshot-save", Opts.SnapshotSave))
      continue;
    if (flagValue(argc, argv, I, "--slow-ms", SlowMs)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(SlowMs.c_str(), &End, 10);
      if (End == SlowMs.c_str() || *End != '\0') {
        std::fprintf(stderr, "error: --slow-ms expects a number, got '%s'\n",
                     SlowMs.c_str());
        return 2;
      }
      Opts.SlowMs = V;
      continue;
    }
    if (flagValue(argc, argv, I, "--timeline-ms", TimelineMs)) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(TimelineMs.c_str(), &End, 10);
      if (End == TimelineMs.c_str() || *End != '\0') {
        std::fprintf(stderr,
                     "error: --timeline-ms expects a number, got '%s'\n",
                     TimelineMs.c_str());
        return 2;
      }
      Opts.TimelineMs = V;
      continue;
    }
    std::fprintf(stderr, "error: unknown argument '%s'\n", argv[I]);
    return usage();
  }
  if (Opts.SocketPath.empty())
    return usage();

  apt::svc::ServiceState State;
  return apt::svc::runServer(State, Opts);
}
