#!/usr/bin/env python3
"""Reach-engine parity and cross-check gate.

Two contracts over the checked-in samples (docs/REACHABILITY.md):

1. Pre-pass parity: `aptc deps <sample> --reach-prepass on` must produce
   byte-identical stdout and the same exit code as `--reach-prepass off`,
   at --jobs 1 and --jobs 4. The pre-pass only answers pairs whose
   DepTestResult is predictable to the byte, so any divergence is a
   soundness or formatting bug.

2. Cross-check gate: `--engine both` must report zero APT-vs-reach
   conflicts -- on `deps` over every .apt sample and on `prove` over a
   built-in pair list per .axioms sample (the same pairs the CLI smoke
   tests use). A conflict exits 3: a disjointness proof coexisting with
   an overlap witness, i.e. one engine is unsound. The asymmetric
   "reach-only-independent" disagreement is allowed and not a failure.

Exit status: 0 when every run agrees, 1 otherwise. No third-party
dependencies.

Usage: tools/reach_parity_check.py <aptc-binary> <samples-dir>
"""

import glob
import os
import subprocess
import sys

# Pairs to cross-check per axioms sample: provable, unprovable, and
# identical-path shapes so both verdict directions are exercised.
PROVE_PAIRS = {
    "leaf_linked_tree.axioms": [
        ("L.L.N", "L.R.N"),
        ("L.L.N.N", "L.R.N"),
        ("N", "N"),
    ],
    "sparse_matrix.axioms": [
        ("ncolE+", "nrowE+.ncolE+"),
        ("nrowE*", "nrowE*"),
    ],
}


def run(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, timeout=300)
    return proc.returncode, proc.stdout


def check_prepass_parity(aptc, samples):
    failures = 0
    for sample in samples:
        name = os.path.basename(sample)
        for jobs in (1, 4):
            runs = {}
            for mode in ("off", "on"):
                runs[mode] = run([aptc, "deps", sample, "--jobs", str(jobs),
                                  f"--reach-prepass={mode}"])
            (off_code, off_out), (on_code, on_out) = runs["off"], runs["on"]
            if off_code != on_code:
                print(f"FAIL {name} --jobs {jobs}: exit {off_code} (off) "
                      f"vs {on_code} (on)")
                failures += 1
            elif off_out != on_out:
                print(f"FAIL {name} --jobs {jobs}: verdict streams differ")
                for line_off, line_on in zip(off_out.splitlines(),
                                             on_out.splitlines()):
                    if line_off != line_on:
                        print(f"  off: {line_off.decode(errors='replace')}")
                        print(f"  on:  {line_on.decode(errors='replace')}")
                        break
                failures += 1
            else:
                print(f"ok   {name} --jobs {jobs}: {off_code} exit, "
                      f"{len(off_out)} bytes identical")
    return failures


def check_cross_engine(aptc, samples_dir, apt_samples):
    failures = 0
    for sample in apt_samples:
        name = os.path.basename(sample)
        code, out = run([aptc, "deps", sample, "--engine", "both"])
        if code == 3 or b" 0 conflicts" not in out:
            print(f"FAIL deps {name} --engine both: exit {code}")
            sys.stdout.buffer.write(out)
            failures += 1
        else:
            print(f"ok   deps {name} --engine both: 0 conflicts")
    for name, pairs in sorted(PROVE_PAIRS.items()):
        axioms = os.path.join(samples_dir, name)
        if not os.path.exists(axioms):
            print(f"FAIL missing sample {name}")
            failures += 1
            continue
        for p, q in pairs:
            code, out = run([aptc, "prove", axioms, p, q, "--engine", "both"])
            if code == 3 or b"CONFLICT" in out:
                print(f"FAIL prove {name} '{p}' '{q}': exit {code}")
                sys.stdout.buffer.write(out)
                failures += 1
            else:
                print(f"ok   prove {name} '{p}' '{q}': no conflict")
    return failures


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    aptc, samples_dir = sys.argv[1], sys.argv[2]
    apt_samples = sorted(glob.glob(os.path.join(samples_dir, "*.apt")))
    if not apt_samples:
        print(f"error: no .apt samples under {samples_dir}", file=sys.stderr)
        return 1

    failures = check_prepass_parity(aptc, apt_samples)
    failures += check_cross_engine(aptc, samples_dir, apt_samples)
    print(f"reach parity: {'FAIL' if failures else 'ok'} "
          f"({failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
