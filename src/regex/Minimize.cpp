//===- regex/Minimize.cpp -------------------------------------------------===//
//
// Part of the APT project; see Minimize.h for an overview. This file also
// hosts Dfa::minimized(), so both automaton flavors share one Hopcroft
// core.
//
//===----------------------------------------------------------------------===//

#include "regex/Minimize.h"

#include "regex/Dfa.h"
#include "support/Arena.h"

#include <cassert>
#include <cstring>
#include <deque>
#include <utility>

using namespace apt;

namespace {

/// Hopcroft's algorithm over a complete automaton given as raw tables:
/// \p Transitions is row-major [state][sym]. Fills \p BlockOf with a
/// dense renumbering of the Myhill-Nerode classes and returns the class
/// count. States are assumed reachable (subset construction and products
/// only ever produce reachable states), so the result is the true
/// minimum.
///
/// This is the smaller-half variant: when a block splits, the pending
/// work for the old block id keeps covering its shrunken range, the new
/// id is enqueued if the old one was pending, and otherwise only the
/// smaller half is enqueued — giving the O(n·k·log n) bound, unlike the
/// enqueue-everything refinement this replaces (see git history of
/// Dfa.cpp).
size_t hopcroft(size_t NumStates, size_t NumSyms,
                const uint32_t *Transitions,
                const std::vector<bool> &Accepting,
                std::vector<uint32_t> &BlockOf) {
  const uint32_t N = static_cast<uint32_t>(NumStates);
  BlockOf.assign(N, 0);
  if (N == 0)
    return 0;

  // All refinement scratch is transient: it lives in the calling thread's
  // arena and is released when minimization returns.
  Arena &A = Arena::threadScratch();
  ArenaScope Scope(A);

  // Refinable partition: Elems holds the states grouped by block,
  // Loc[s] is s's position in Elems, blocks are [Start[b], End[b]).
  std::vector<uint32_t> Elems(N), Loc(N);
  std::vector<uint32_t> Start, End;

  {
    uint32_t NumAcc = 0;
    for (uint32_t S = 0; S < N; ++S)
      NumAcc += Accepting[S];
    uint32_t RejAt = 0, AccAt = N - NumAcc;
    const bool TwoBlocks = NumAcc != 0 && NumAcc != N;
    for (uint32_t S = 0; S < N; ++S) {
      uint32_t &At = (TwoBlocks && Accepting[S]) ? AccAt : RejAt;
      Elems[At] = S;
      Loc[S] = At;
      BlockOf[S] = (TwoBlocks && Accepting[S]) ? 1 : 0;
      ++At;
    }
    Start = {0};
    End = {TwoBlocks ? N - NumAcc : N};
    if (TwoBlocks) {
      Start.push_back(N - NumAcc);
      End.push_back(N);
    }
  }
  size_t NumBlocks = Start.size();

  // Inverse transitions in CSR form: the sym-predecessors of t are
  // PreFlat[PreOff[t * NumSyms + sym] .. PreOff[... + 1]). One flat array
  // instead of NumStates * NumSyms heap vectors; every slot is filled
  // exactly once because the automaton is complete.
  const size_t Rows = NumStates * NumSyms;
  uint32_t *PreOff = A.allocateArray<uint32_t>(Rows + 1);
  std::memset(PreOff, 0, (Rows + 1) * sizeof(uint32_t));
  for (size_t I = 0; I < Rows; ++I)
    ++PreOff[size_t(Transitions[I]) * NumSyms + (I % NumSyms) + 1];
  for (size_t I = 0; I < Rows; ++I)
    PreOff[I + 1] += PreOff[I];
  uint32_t *PreFlat = A.allocateArray<uint32_t>(Rows);
  uint32_t *Cursor = A.allocateArray<uint32_t>(Rows);
  std::memcpy(Cursor, PreOff, Rows * sizeof(uint32_t));
  for (uint32_t S = 0; S < N; ++S)
    for (size_t Sym = 0; Sym < NumSyms; ++Sym)
      PreFlat[Cursor[size_t(Transitions[S * NumSyms + Sym]) * NumSyms +
                     Sym]++] = S;

  std::deque<std::pair<uint32_t, uint32_t>> Work; // (block, sym)
  std::vector<char> InWork(NumBlocks * NumSyms, 0);
  auto Push = [&](uint32_t B, uint32_t Sym) {
    if (!InWork[B * NumSyms + Sym]) {
      InWork[B * NumSyms + Sym] = 1;
      Work.emplace_back(B, Sym);
    }
  };
  if (NumBlocks == 2) {
    uint32_t Smaller = (End[0] - Start[0]) <= (End[1] - Start[1]) ? 0 : 1;
    for (uint32_t Sym = 0; Sym < NumSyms; ++Sym)
      Push(Smaller, Sym);
  }

  std::vector<uint32_t> MarkedCount(NumBlocks, 0);
  std::vector<uint32_t> Touched;
  // Reused splitter snapshot: block ranges never exceed N states, so one
  // N-slot buffer serves every iteration (this replaces a per-splitter
  // heap vector).
  uint32_t *SplitterStates = A.allocateArray<uint32_t>(N);
  while (!Work.empty()) {
    auto [Splitter, Sym] = Work.front();
    Work.pop_front();
    InWork[Splitter * NumSyms + Sym] = 0;

    // Mark every state whose Sym-successor lies in the splitter block,
    // compacting marks to the front of each block's range as we go. The
    // splitter's states are snapshotted first: marking swaps elements
    // around inside block ranges, including the splitter's own.
    Touched.clear();
    const uint32_t SplitterLen = End[Splitter] - Start[Splitter];
    std::memcpy(SplitterStates, Elems.data() + Start[Splitter],
                SplitterLen * sizeof(uint32_t));
    for (uint32_t TI = 0; TI < SplitterLen; ++TI) {
      uint32_t T = SplitterStates[TI];
      for (uint32_t PI = PreOff[size_t(T) * NumSyms + Sym],
                    PE = PreOff[size_t(T) * NumSyms + Sym + 1];
           PI != PE; ++PI) {
        uint32_t S = PreFlat[PI];
        uint32_t B = BlockOf[S];
        uint32_t P = Loc[S], Dest = Start[B] + MarkedCount[B];
        if (P < Dest)
          continue; // already marked
        if (MarkedCount[B]++ == 0)
          Touched.push_back(B);
        std::swap(Elems[P], Elems[Dest]);
        Loc[Elems[P]] = P;
        Loc[Elems[Dest]] = Dest;
      }
    }

    for (uint32_t B : Touched) {
      uint32_t Marked = MarkedCount[B];
      MarkedCount[B] = 0;
      if (Marked == End[B] - Start[B])
        continue; // every state moved: no split

      // The marked prefix becomes a new block; the old id keeps the rest
      // (any work still queued under it stays valid for that remainder).
      uint32_t NewB = static_cast<uint32_t>(NumBlocks++);
      Start.push_back(Start[B]);
      End.push_back(Start[B] + Marked);
      Start[B] += Marked;
      for (uint32_t I = Start[NewB]; I < End[NewB]; ++I)
        BlockOf[Elems[I]] = NewB;
      MarkedCount.push_back(0);
      InWork.resize(NumBlocks * NumSyms, 0);

      uint32_t SmallB =
          (End[NewB] - Start[NewB]) <= (End[B] - Start[B]) ? NewB : B;
      for (uint32_t Sym2 = 0; Sym2 < NumSyms; ++Sym2) {
        if (InWork[B * NumSyms + Sym2])
          Push(NewB, Sym2); // both halves still pending
        else
          Push(SmallB, Sym2);
      }
    }
  }
  return NumBlocks;
}

} // namespace

ClassDfa apt::minimizeClassDfa(const ClassDfa &D) {
  const size_t NumClasses = D.numClasses();
  const uint32_t *Trans = D.transitionsData();

  std::vector<uint32_t> BlockOf;
  size_t NumBlocks =
      hopcroft(D.numStates(), NumClasses, Trans, D.acceptingStates(),
               BlockOf);

  std::vector<uint32_t> OutTrans(NumBlocks * NumClasses);
  std::vector<bool> OutAcc(NumBlocks, false);
  std::vector<char> Filled(NumBlocks, 0);
  for (uint32_t S = 0; S < D.numStates(); ++S) {
    uint32_t B = BlockOf[S];
    if (Filled[B])
      continue;
    Filled[B] = 1;
    OutAcc[B] = D.isAccepting(S);
    for (uint32_t C = 0; C < NumClasses; ++C)
      OutTrans[B * NumClasses + C] = BlockOf[Trans[S * NumClasses + C]];
  }

  uint32_t Sink = BlockOf[D.sink()];
  assert(!OutAcc[Sink] && "dead states must stay dead after merging");
  return ClassDfa(D.partition(), std::move(OutTrans), std::move(OutAcc),
                  BlockOf[D.start()], Sink);
}

MinDfaStore::Entry
MinDfaStore::getOrBuild(const std::string &Fingerprint,
                        const std::function<ClassDfa()> &Build) {
  if (std::shared_ptr<const ClassDfa> D = Cache.lookup(Fingerprint))
    return {std::move(D), true};
  // Build outside the shard lock; a concurrent builder of the same key is
  // harmless (first writer wins below, both automata are minimal for the
  // same language).
  auto Built = std::make_shared<const ClassDfa>(Build());
  return {Cache.intern(Fingerprint, std::move(Built)), false};
}

MinDfaStore &MinDfaStore::global() {
  static MinDfaStore Store(32);
  return Store;
}

static thread_local MinDfaStore *ThreadDefaultStore = nullptr;

MinDfaStore *MinDfaStore::threadDefault() {
  return ThreadDefaultStore ? ThreadDefaultStore : &global();
}

MinDfaStore *MinDfaStore::setThreadDefault(MinDfaStore *S) {
  MinDfaStore *Prev = ThreadDefaultStore;
  ThreadDefaultStore = S;
  return Prev;
}

// Defined here rather than in Dfa.cpp so the classic automaton shares the
// same Hopcroft core (this replaced an enqueue-everything refinement that
// lived in Dfa.cpp).
Dfa Dfa::minimized() const {
  const size_t NumSyms = Alphabet.size();
  if (numStates() == 0)
    return *this;

  std::vector<uint32_t> BlockOf;
  size_t NumBlocks =
      hopcroft(numStates(), NumSyms, Transitions.data(), Accepting, BlockOf);

  Dfa Out;
  Out.Alphabet = Alphabet;
  Out.Accepting.assign(NumBlocks, false);
  Out.Transitions.assign(NumBlocks * NumSyms, 0);
  std::vector<char> Filled(NumBlocks, 0);
  for (uint32_t S = 0; S < numStates(); ++S) {
    uint32_t B = BlockOf[S];
    if (Filled[B])
      continue;
    Filled[B] = 1;
    Out.Accepting[B] = Accepting[S];
    for (size_t Sym = 0; Sym < NumSyms; ++Sym)
      Out.Transitions[B * NumSyms + Sym] = BlockOf[step(S, Sym)];
  }
  Out.Start = BlockOf[Start];
  return Out;
}
