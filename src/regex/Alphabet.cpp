//===- regex/Alphabet.cpp -------------------------------------------------===//
//
// Part of the APT project; see Alphabet.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/Alphabet.h"

#include "regex/Subset.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace apt;

uint32_t AlphabetPartition::classOf(FieldId F) const {
  auto It = std::lower_bound(Fields.begin(), Fields.end(), F);
  if (It == Fields.end() || *It != F)
    return OtherClass;
  return ClassOfField[It - Fields.begin()];
}

AlphabetPartition AlphabetPartition::build(const Nfa &N, bool Compress) {
  // The edge set of each field: sorted (from, to) pairs. Two fields with
  // equal edge sets label exactly the same moves, so no word through the
  // automaton — and hence no word of the language — distinguishes them.
  std::map<FieldId, std::vector<std::pair<uint32_t, uint32_t>>> Edges;
  for (uint32_t S = 0; S < N.States.size(); ++S)
    for (const auto &[Label, Target] : N.States[S].Transitions)
      Edges[Label].emplace_back(S, Target);
  for (auto &[F, E] : Edges) {
    std::sort(E.begin(), E.end());
    E.erase(std::unique(E.begin(), E.end()), E.end());
  }

  AlphabetPartition P;
  P.Fields.reserve(Edges.size());
  P.ClassOfField.reserve(Edges.size());
  if (Compress) {
    // Deterministic class numbering: first-seen signature in field order.
    std::map<std::vector<std::pair<uint32_t, uint32_t>>, uint32_t> ClassIds;
    for (const auto &[F, E] : Edges) {
      auto [It, Inserted] =
          ClassIds.emplace(E, static_cast<uint32_t>(ClassIds.size()));
      P.Fields.push_back(F);
      P.ClassOfField.push_back(It->second);
      if (Inserted)
        P.ClassRep.push_back(F);
    }
  } else {
    for (const auto &[F, E] : Edges) {
      P.ClassOfField.push_back(static_cast<uint32_t>(P.Fields.size()));
      P.Fields.push_back(F);
      P.ClassRep.push_back(F);
    }
  }
  P.OtherClass = static_cast<uint32_t>(P.ClassRep.size());
  P.ClassRep.push_back(kNoRepField);
  P.NumClasses = P.OtherClass + 1;
  return P;
}

ClassDfa ClassDfa::build(const Regex &R, bool Compress, bool BitParallel) {
  Nfa N = Nfa::build(R);
  ClassDfa Out;
  Out.Part = AlphabetPartition::build(N, Compress);
  const size_t NumClasses = Out.Part.NumClasses;

  if (BitParallel) {
    // The ClassRep vector doubles as the kernel's column list: the other
    // class's kNoRepField slot is exactly the kernel's "no edges" marker,
    // so the empty subset (the sink) is always reached and interned.
    SubsetResult Res =
        subsetConstruct(N, Out.Part.ClassRep.data(), NumClasses);
    Out.Transitions = std::move(Res.Transitions);
    Out.Accepting = std::move(Res.Accepting);
    Out.Start = Res.Start;
    Out.Sink = Res.EmptySet;
    assert(Out.Sink != UINT32_MAX && !Out.Accepting[Out.Sink] &&
           "the other class always reaches the empty subset");
    return Out;
  }

  // Subset construction, identical in shape to Dfa::fromNfa but stepping
  // once per class: all fields of a class share their NFA edge set, so the
  // class representative's moves are the class's moves.
  std::map<std::vector<uint32_t>, uint32_t> StateIds;
  std::deque<std::vector<uint32_t>> Worklist;

  auto InternState = [&](std::vector<uint32_t> Set) -> uint32_t {
    auto It = StateIds.find(Set);
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(StateIds.size());
    StateIds.emplace(Set, Id);
    bool Accepts = std::binary_search(Set.begin(), Set.end(), N.Accept);
    Out.Accepting.push_back(Accepts);
    Out.Transitions.resize(Out.Accepting.size() * NumClasses, 0);
    Worklist.push_back(std::move(Set));
    return Id;
  };

  std::vector<uint32_t> StartSet{N.Start};
  N.epsilonClosure(StartSet);
  Out.Start = InternState(std::move(StartSet));

  while (!Worklist.empty()) {
    std::vector<uint32_t> Set = std::move(Worklist.front());
    Worklist.pop_front();
    uint32_t Id = StateIds.at(Set);
    for (uint32_t Cls = 0; Cls < NumClasses; ++Cls) {
      std::vector<uint32_t> Next;
      if (Cls != Out.Part.OtherClass) {
        FieldId Rep = Out.Part.ClassRep[Cls];
        for (uint32_t S : Set)
          for (const auto &[Label, Target] : N.States[S].Transitions)
            if (Label == Rep)
              Next.push_back(Target);
        std::sort(Next.begin(), Next.end());
        Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
        N.epsilonClosure(Next);
      }
      // The other class has no edges anywhere: it falls into the empty
      // subset, which is the sink. Interning it here (from the start
      // state's row onward) guarantees every ClassDfa has one.
      uint32_t NextId = InternState(std::move(Next));
      Out.Transitions[Id * NumClasses + Cls] = NextId;
    }
  }

  Out.Sink = StateIds.at({});
  assert(!Out.Accepting[Out.Sink] && "the empty subset cannot accept");
  return Out;
}

bool ClassDfa::accepts(const Word &W) const {
  uint32_t S = Start;
  for (FieldId F : W)
    S = step(S, Part.classOf(F));
  return Accepting[S];
}

bool ClassDfa::languageEmpty() const {
  return std::find(Accepting.begin(), Accepting.end(), true) ==
         Accepting.end();
}
