//===- regex/Simplify.cpp -------------------------------------------------===//
//
// Part of the APT project; see Simplify.h for the rewrite inventory.
//
//===----------------------------------------------------------------------===//

#include "regex/Simplify.h"

#include <cassert>
#include <vector>

using namespace apt;

namespace {

RegexRef simplifyOnce(const RegexRef &R, LangQuery &Q);

RegexRef simplifyAlt(const RegexRef &R, LangQuery &Q) {
  // Simplify branches, then drop subsumed ones.
  std::vector<RegexRef> Branches;
  Branches.reserve(R->children().size());
  bool ChildChanged = false;
  for (const RegexRef &C : R->children()) {
    Branches.push_back(simplifyOnce(C, Q));
    ChildChanged |= Branches.back() != C;
  }

  std::vector<RegexRef> Kept;
  for (size_t I = 0; I < Branches.size(); ++I) {
    bool Subsumed = false;
    for (size_t J = 0; J < Branches.size() && !Subsumed; ++J) {
      if (I == J)
        continue;
      if (!Q.subsetOf(Branches[I], Branches[J]))
        continue;
      // L(I) within L(J): drop I -- unless they are mutually equal, in
      // which case keep only the first.
      if (Q.subsetOf(Branches[J], Branches[I]) && I < J)
        continue;
      Subsumed = true;
    }
    if (!Subsumed)
      Kept.push_back(Branches[I]);
  }
  // Nothing rewritten: hand back the original node so callers (and the
  // fixpoint loop) see pointer equality instead of a rebuilt AST.
  if (!ChildChanged && Kept.size() == Branches.size())
    return R;
  return Regex::alt(std::move(Kept));
}

RegexRef simplifyConcat(const RegexRef &R, LangQuery &Q) {
  std::vector<RegexRef> Parts;
  Parts.reserve(R->children().size());
  bool AnyChange = false;
  for (const RegexRef &C : R->children()) {
    Parts.push_back(simplifyOnce(C, Q));
    AnyChange |= Parts.back() != C;
  }

  // Absorb nullable neighbors into adjacent stars, and fuse x.x* / x*.x
  // into x+.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I + 1 < Parts.size(); ++I) {
      const RegexRef &A = Parts[I], &B = Parts[I + 1];
      bool AStar = A->kind() == RegexKind::Star;
      bool BStar = B->kind() == RegexKind::Star;
      if (BStar && A->nullable() && Q.subsetOf(A, B)) {
        Parts.erase(Parts.begin() + I); // A absorbed by B = X*.
        Changed = true;
        break;
      }
      if (AStar && B->nullable() && Q.subsetOf(B, A)) {
        Parts.erase(Parts.begin() + I + 1);
        Changed = true;
        break;
      }
      if (BStar && structurallyEqual(A, B->child())) {
        Parts[I] = Regex::plus(B->child()); // x.x* -> x+.
        Parts.erase(Parts.begin() + I + 1);
        Changed = true;
        break;
      }
      if (AStar && structurallyEqual(B, A->child())) {
        Parts[I] = Regex::plus(A->child()); // x*.x -> x+.
        Parts.erase(Parts.begin() + I + 1);
        Changed = true;
        break;
      }
    }
    AnyChange |= Changed;
  }
  if (!AnyChange)
    return R;
  return Regex::concat(std::move(Parts));
}

RegexRef simplifyStarLike(const RegexRef &R, LangQuery &Q) {
  RegexRef Child = simplifyOnce(R->child(), Q);
  bool IsStar = R->kind() == RegexKind::Star;
  // Inside a star, an epsilon alternative is redundant; a nullable child
  // makes plus equivalent to star.
  if (Child->kind() == RegexKind::Alt) {
    std::vector<RegexRef> Branches;
    bool DroppedEps = false;
    for (const RegexRef &B : Child->children()) {
      if (B->isEpsilon()) {
        DroppedEps = true;
        continue;
      }
      Branches.push_back(B);
    }
    if (DroppedEps) {
      Child = Regex::alt(std::move(Branches));
      return Regex::star(Child); // (A|eps)* == A*; likewise for plus.
    }
  }
  if (!IsStar && Child->nullable())
    return Regex::star(Child); // plus of a nullable == star.
  if (Child == R->child())
    return R; // Unchanged child: keep the original node.
  return IsStar ? Regex::star(Child) : Regex::plus(Child);
}

RegexRef simplifyOnce(const RegexRef &R, LangQuery &Q) {
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Symbol:
    return R;
  case RegexKind::Alt:
    return simplifyAlt(R, Q);
  case RegexKind::Concat:
    return simplifyConcat(R, Q);
  case RegexKind::Star:
  case RegexKind::Plus:
    return simplifyStarLike(R, Q);
  }
  assert(false && "unknown regex kind");
  return R;
}

} // namespace

RegexRef apt::simplifyRegex(const RegexRef &R, LangQuery &Q) {
  RegexRef Cur = R;
  // Iterate to fixpoint; each round strictly shrinks the key or stops.
  // Already-simplified input short-circuits on pointer equality: every
  // rewrite hands back the original node when nothing fired, so a warm
  // call costs one traversal and zero AST rebuilds.
  for (int Round = 0; Round < 8; ++Round) {
    RegexRef Next = simplifyOnce(Cur, Q);
    if (Next == Cur)
      break;
    if (Next->key() == Cur->key())
      break;
    if (Next->key().size() > Cur->key().size())
      break; // Never grow.
    Cur = Next;
  }
  return Cur;
}
