//===- regex/LangOps.cpp --------------------------------------------------===//
//
// Part of the APT project; see LangOps.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/LangOps.h"

#include "regex/Alphabet.h"
#include "regex/Derivative.h"
#include "regex/Dfa.h"
#include "regex/Minimize.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>
#include <unordered_map>

using namespace apt;

LangQuery::LangQuery(LangEngine Engine, bool EnableCache)
    : LangQuery(LangOptions{Engine, EnableCache, /*OnTheFlyProduct=*/true,
                            /*MinimizeDfas=*/true,
                            /*CompressAlphabet=*/true}) {}

LangQuery::LangQuery(const LangOptions &Opts)
    : Opts(Opts), DfaStore(MinDfaStore::threadDefault()) {}

static std::vector<FieldId> unionAlphabet(const RegexRef &A,
                                          const RegexRef &B) {
  std::set<FieldId> Syms;
  A->collectSymbols(Syms);
  B->collectSymbols(Syms);
  return std::vector<FieldId>(Syms.begin(), Syms.end());
}

//===----------------------------------------------------------------------===//
// Operand automata: compiled per regex (not per query), interned in the
// store so every recurrence — across queries, batch workers, induction
// subgoals — is a hash lookup.
//===----------------------------------------------------------------------===//

std::shared_ptr<const ClassDfa> LangQuery::operandDfa(const RegexRef &R) {
  auto Build = [&]() -> ClassDfa {
    ClassDfa D = ClassDfa::build(*R, Opts.CompressAlphabet, Opts.BitParallel);
    ++Counters.DfaBuilt;
    Counters.DfaStatesBuilt += D.numStates();
    if (Opts.MinimizeDfas)
      D = minimizeClassDfa(D);
    Counters.DfaMinStates += D.numStates();
    return D;
  };
  if (!DfaStore)
    return std::make_shared<const ClassDfa>(Build());
  // The fingerprint has to separate pipeline variants: an unminimized or
  // uncompressed automaton is a different object for the same language.
  std::string Fingerprint = R->key();
  Fingerprint += '\x1f';
  Fingerprint += Opts.CompressAlphabet ? 'c' : 'u';
  Fingerprint += Opts.MinimizeDfas ? 'm' : 'r';
  MinDfaStore::Entry E = DfaStore->getOrBuild(Fingerprint, Build);
  if (E.WasHit)
    ++Counters.DfaStoreHits;
  return std::move(E.Dfa);
}

//===----------------------------------------------------------------------===//
// On-the-fly product emptiness. The two operands generally carry
// different partitions, so each product search first builds the *pair
// alphabet*: union symbols grouped by their (class-in-A, class-in-B)
// pair. The pair graph is then explored breadth-first, interning pair
// states lazily and stopping at the first witness, whose word is
// reconstructed from class representatives (shortest first, so witnesses
// are minimal-length and deterministic).
//===----------------------------------------------------------------------===//

namespace {

struct PairAlphabet {
  std::vector<std::pair<uint32_t, uint32_t>> Classes; ///< (class A, class B)
  std::vector<FieldId> Reps; ///< Spelling for witness words; parallel.
  size_t UnionSymbols = 0;
};

/// Per-thread scratch for the pair search. Worker threads of the batch
/// engine answer thousands of products; keeping the buffers thread-local
/// means a warm product reuses the last one's capacity instead of
/// reallocating, and the flat id table below is cleared by epoch stamp
/// (one increment) rather than by refill.
struct ProductScratch {
  PairAlphabet PA;
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  std::vector<int32_t> Parent, ParentSym;
  /// Flat (SA * NumB + SB) -> pair id table, valid where StampOf matches
  /// Epoch. Used when the full pair space fits the threshold below;
  /// larger products fall back to the hash map.
  std::vector<uint32_t> IdOf;
  std::vector<uint32_t> StampOf;
  uint32_t Epoch = 0;
  std::unordered_map<uint64_t, uint32_t> Ids;

  /// Pair spaces up to this many entries use the flat table (4 MiB of
  /// stamps+ids at the limit); beyond it the table would cost more to
  /// mint than the hash map saves.
  static constexpr size_t kFlatLimit = size_t(1) << 19;
};

thread_local ProductScratch ProdScratch;

void pairAlphabet(const ClassDfa &A, const ClassDfa &B, PairAlphabet &Out) {
  const AlphabetPartition &PA = A.partition(), &PB = B.partition();
  Out.Classes.clear();
  Out.Reps.clear();
  // Walk the two sorted symbol lists merged. Symbols outside both
  // alphabets are irrelevant: no word of either language can use them,
  // so they never appear on a witness and need no pair class. Pair-class
  // dedup is a linear scan: class counts are tiny (alphabet compression
  // collapses most of them), so scanning beats hashing here.
  Out.UnionSymbols = 0;
  size_t IA = 0, IB = 0;
  const size_t NA = PA.Fields.size(), NB = PB.Fields.size();
  while (IA < NA || IB < NB) {
    FieldId F;
    if (IB >= NB || (IA < NA && PA.Fields[IA] <= PB.Fields[IB]))
      F = PA.Fields[IA];
    else
      F = PB.Fields[IB];
    if (IA < NA && PA.Fields[IA] == F)
      ++IA;
    if (IB < NB && PB.Fields[IB] == F)
      ++IB;
    ++Out.UnionSymbols;
    uint32_t CA = PA.classOf(F), CB = PB.classOf(F);
    bool Seen = false;
    for (const auto &[SeenA, SeenB] : Out.Classes)
      if (SeenA == CA && SeenB == CB) {
        Seen = true;
        break;
      }
    if (!Seen) {
      Out.Classes.emplace_back(CA, CB);
      Out.Reps.push_back(F);
    }
  }
}

/// Searches the reachable pair graph of (A, B) for a state satisfying
/// the acceptance predicate: A accepting and B *not* accepting when
/// \p NegateB (subset counterexample), both accepting otherwise
/// (disjointness witness). Returns the shortest such witness word, or
/// nullopt when none exists. \p C accrues the exploration counters.
std::optional<Word> productWitness(const ClassDfa &A, const ClassDfa &B,
                                   bool NegateB, LangQuery::Stats &C) {
  ProductScratch &Scr = ProdScratch;
  PairAlphabet &PA = Scr.PA;
  pairAlphabet(A, B, PA);
  C.AlphabetSymbols += PA.UnionSymbols;
  C.AlphabetClasses += PA.Classes.size();
  const size_t NumPairSyms = PA.Classes.size();

  // Dense pair states, interned on first visit. Parent links reconstruct
  // the witness; BFS order makes it shortest. All containers are the
  // thread's reused scratch.
  auto &Pairs = Scr.Pairs;
  auto &Parent = Scr.Parent;
  auto &ParentSym = Scr.ParentSym;
  Pairs.clear();
  Parent.clear();
  ParentSym.clear();

  const size_t NumB = B.numStates();
  const size_t PairSpace = A.numStates() * NumB;
  const bool Flat = PairSpace <= ProductScratch::kFlatLimit;
  if (Flat) {
    if (Scr.IdOf.size() < PairSpace) {
      Scr.IdOf.resize(PairSpace);
      Scr.StampOf.assign(PairSpace, 0);
      // A fresh table starts with stamp 0 everywhere; Epoch stays ahead.
    }
    if (++Scr.Epoch == 0) {
      // Stamp wraparound: invalidate everything the hard way, once per
      // 2^32 products.
      std::fill(Scr.StampOf.begin(), Scr.StampOf.end(), 0u);
      Scr.Epoch = 1;
    }
  } else {
    Scr.Ids.clear();
  }

  auto Intern = [&](uint32_t SA, uint32_t SB) -> int32_t {
    // Once A is dead no extension can satisfy either predicate; in the
    // intersection search the same holds for B. Pruning here keeps the
    // search inside the live part of the pair graph.
    if (SA == A.sink())
      return -1;
    if (!NegateB && SB == B.sink())
      return -1;
    uint32_t Id;
    bool Inserted;
    if (Flat) {
      size_t Slot = size_t(SA) * NumB + SB;
      Inserted = Scr.StampOf[Slot] != Scr.Epoch;
      if (Inserted) {
        Scr.StampOf[Slot] = Scr.Epoch;
        Scr.IdOf[Slot] = static_cast<uint32_t>(Pairs.size());
      }
      Id = Scr.IdOf[Slot];
    } else {
      uint64_t Key = (static_cast<uint64_t>(SA) << 32) | SB;
      auto [It, DidInsert] =
          Scr.Ids.emplace(Key, static_cast<uint32_t>(Pairs.size()));
      Inserted = DidInsert;
      Id = It->second;
    }
    if (Inserted) {
      Pairs.emplace_back(SA, SB);
      Parent.push_back(-1);
      ParentSym.push_back(-1);
      ++C.ProductStatesExplored;
    }
    return static_cast<int32_t>(Id);
  };

  auto IsWitness = [&](uint32_t SA, uint32_t SB) {
    return A.isAccepting(SA) &&
           (NegateB ? !B.isAccepting(SB) : B.isAccepting(SB));
  };
  auto WordTo = [&](uint32_t Id) {
    Word W;
    for (int32_t Cur = static_cast<int32_t>(Id); Parent[Cur] >= 0;
         Cur = Parent[Cur])
      W.push_back(PA.Reps[ParentSym[Cur]]);
    std::reverse(W.begin(), W.end());
    return W;
  };

  if (Intern(A.start(), B.start()) < 0)
    return std::nullopt;
  if (IsWitness(A.start(), B.start()))
    return Word{};
  for (uint32_t Head = 0; Head < Pairs.size(); ++Head) {
    auto [SA, SB] = Pairs[Head];
    for (size_t Sym = 0; Sym < NumPairSyms; ++Sym) {
      uint32_t NA = A.step(SA, PA.Classes[Sym].first);
      uint32_t NB = B.step(SB, PA.Classes[Sym].second);
      size_t Before = Pairs.size();
      int32_t Id = Intern(NA, NB);
      if (Id < 0 || static_cast<size_t>(Id) < Before)
        continue; // pruned or already visited
      Parent[Id] = static_cast<int32_t>(Head);
      ParentSym[Id] = static_cast<int32_t>(Sym);
      if (IsWitness(NA, NB))
        return WordTo(static_cast<uint32_t>(Id));
    }
  }
  return std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Query entry points.
//===----------------------------------------------------------------------===//

bool LangQuery::subsetOf(const RegexRef &A, const RegexRef &B) {
  ++Counters.SubsetQueries;
  Witness.reset();
  if (A->isEmpty())
    return true;
  if (structurallyEqual(A, B))
    return true;
  if (!Opts.EnableCache)
    return subsetOfUncached(A, B);
  // The leading tag keeps subset and disjoint keys distinct inside the
  // shared cross-thread cache, where both kinds share one key space. The
  // key is assembled in the reused member buffer: a warm (cache-hit)
  // query must not touch the heap.
  std::string &Key = KeyBuf;
  Key.assign("S\x1f");
  Key += A->key();
  Key += '\x1f';
  Key += B->key();
  auto It = SubsetCache.find(Key);
  if (It != SubsetCache.end()) {
    ++Counters.CacheHits;
    APT_TRACE_EVENT(trace::EventKind::LangSubset,
                    std::hash<std::string>{}(Key), 0,
                    static_cast<uint8_t>((It->second ? trace::LangResult : 0) |
                                         trace::LangCached));
    return It->second;
  }
  if (SharedCache) {
    if (std::optional<bool> Hit = SharedCache->lookup(Key)) {
      ++Counters.CacheHits;
      ++Counters.SharedCacheHits;
      APT_TRACE_EVENT(trace::EventKind::LangSubset,
                      std::hash<std::string>{}(Key), 0,
                      static_cast<uint8_t>((*Hit ? trace::LangResult : 0) |
                                           trace::LangShared));
      SubsetCache.emplace(Key, *Hit);
      return *Hit;
    }
  }
  bool Result = subsetOfUncached(A, B);
  APT_TRACE_EVENT(trace::EventKind::LangSubset,
                  std::hash<std::string>{}(Key), 0,
                  static_cast<uint8_t>(Result ? trace::LangResult : 0));
  if (Witness)
    APT_TRACE_EVENT(trace::EventKind::LangWitness,
                    std::hash<std::string>{}(Key), 0, 0, Witness->size());
  if (SharedCache)
    SharedCache->insert(Key, Result);
  SubsetCache.emplace(Key, Result);
  return Result;
}

bool LangQuery::subsetOfUncached(const RegexRef &A, const RegexRef &B) {
  // Timed mode bills actual language computation here; cache hits stay
  // outside the span, so LangOps profile time is true decision cost.
  APT_TRACE_SPAN(Span, trace::SpanKind::LangSubset);
  if (Opts.Engine == LangEngine::Derivative)
    return derivSubsetOf(A, B);
  if (Opts.OnTheFlyProduct) {
    // L(A) ⊆ L(B) iff no word reaches an (accepting, non-accepting)
    // pair. The lazy search visits only reachable pairs and stops at the
    // first counterexample.
    std::shared_ptr<const ClassDfa> DA = operandDfa(A);
    std::shared_ptr<const ClassDfa> DB = operandDfa(B);
    Witness = productWitness(*DA, *DB, /*NegateB=*/true, Counters);
    return !Witness;
  }
  // Classic pipeline: L(A) subset of L(B) iff L(A) & complement(L(B)) is
  // empty, taken over the materialized union alphabet (words using
  // symbols outside it cannot be in L(A)).
  std::vector<FieldId> Alphabet = unionAlphabet(A, B);
  Dfa DA = Dfa::fromRegex(*A, Alphabet, Opts.BitParallel);
  Dfa DB = Dfa::fromRegex(*B, Alphabet, Opts.BitParallel);
  Counters.DfaBuilt += 2;
  Counters.DfaStatesBuilt += DA.numStates() + DB.numStates();
  return Dfa::product(DA, DB.complemented(), /*RequireBoth=*/true)
      .languageEmpty();
}

bool LangQuery::disjoint(const RegexRef &A, const RegexRef &B) {
  ++Counters.DisjointQueries;
  Witness.reset();
  if (A->isEmpty() || B->isEmpty())
    return true;
  if (structurallyEqual(A, B))
    return false; // Both non-empty and identical: they share every word.
  if (!Opts.EnableCache)
    return disjointUncached(A, B);
  // Disjointness is symmetric; canonicalize the key order. Assembled in
  // the reused member buffer like the subset key.
  const std::string &KA = A->key(), &KB = B->key();
  const std::string &Lo = KA <= KB ? KA : KB;
  const std::string &Hi = KA <= KB ? KB : KA;
  std::string &Key = KeyBuf;
  Key.assign("D\x1f");
  Key += Lo;
  Key += '\x1f';
  Key += Hi;
  auto It = DisjointCache.find(Key);
  if (It != DisjointCache.end()) {
    ++Counters.CacheHits;
    APT_TRACE_EVENT(trace::EventKind::LangDisjoint,
                    std::hash<std::string>{}(Key), 0,
                    static_cast<uint8_t>((It->second ? trace::LangResult : 0) |
                                         trace::LangCached));
    return It->second;
  }
  if (SharedCache) {
    if (std::optional<bool> Hit = SharedCache->lookup(Key)) {
      ++Counters.CacheHits;
      ++Counters.SharedCacheHits;
      APT_TRACE_EVENT(trace::EventKind::LangDisjoint,
                      std::hash<std::string>{}(Key), 0,
                      static_cast<uint8_t>((*Hit ? trace::LangResult : 0) |
                                           trace::LangShared));
      DisjointCache.emplace(Key, *Hit);
      return *Hit;
    }
  }
  bool Result = disjointUncached(A, B);
  APT_TRACE_EVENT(trace::EventKind::LangDisjoint,
                  std::hash<std::string>{}(Key), 0,
                  static_cast<uint8_t>(Result ? trace::LangResult : 0));
  if (Witness)
    APT_TRACE_EVENT(trace::EventKind::LangWitness,
                    std::hash<std::string>{}(Key), 0, 1, Witness->size());
  if (SharedCache)
    SharedCache->insert(Key, Result);
  DisjointCache.emplace(Key, Result);
  return Result;
}

bool LangQuery::disjointUncached(const RegexRef &A, const RegexRef &B) {
  APT_TRACE_SPAN(Span, trace::SpanKind::LangDisjoint);
  if (Opts.Engine == LangEngine::Derivative)
    return derivDisjoint(A, B);
  if (Opts.OnTheFlyProduct) {
    std::shared_ptr<const ClassDfa> DA = operandDfa(A);
    std::shared_ptr<const ClassDfa> DB = operandDfa(B);
    Witness = productWitness(*DA, *DB, /*NegateB=*/false, Counters);
    return !Witness;
  }
  std::vector<FieldId> Alphabet = unionAlphabet(A, B);
  Dfa DA = Dfa::fromRegex(*A, Alphabet, Opts.BitParallel);
  Dfa DB = Dfa::fromRegex(*B, Alphabet, Opts.BitParallel);
  Counters.DfaBuilt += 2;
  Counters.DfaStatesBuilt += DA.numStates() + DB.numStates();
  return Dfa::product(DA, DB, /*RequireBoth=*/true).languageEmpty();
}

bool LangQuery::equivalent(const RegexRef &A, const RegexRef &B) {
  if (structurallyEqual(A, B))
    return true;
  return subsetOf(A, B) && subsetOf(B, A);
}

bool LangQuery::matches(const RegexRef &R, const Word &W) {
  return derivMatches(R, W);
}
