//===- regex/LangOps.cpp --------------------------------------------------===//
//
// Part of the APT project; see LangOps.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/LangOps.h"

#include "regex/Derivative.h"
#include "regex/Dfa.h"
#include "support/Trace.h"

#include <functional>
#include <set>

using namespace apt;

static std::vector<FieldId> unionAlphabet(const RegexRef &A,
                                          const RegexRef &B) {
  std::set<FieldId> Syms;
  A->collectSymbols(Syms);
  B->collectSymbols(Syms);
  return std::vector<FieldId>(Syms.begin(), Syms.end());
}

bool LangQuery::subsetOf(const RegexRef &A, const RegexRef &B) {
  ++Counters.SubsetQueries;
  if (A->isEmpty())
    return true;
  if (structurallyEqual(A, B))
    return true;
  if (!EnableCache)
    return subsetOfUncached(A, B);
  // The leading tag keeps subset and disjoint keys distinct inside the
  // shared cross-thread cache, where both kinds share one key space.
  std::string Key = "S\x1f" + A->key() + "\x1f" + B->key();
  auto It = SubsetCache.find(Key);
  if (It != SubsetCache.end()) {
    ++Counters.CacheHits;
    APT_TRACE_EVENT(trace::EventKind::LangSubset,
                    std::hash<std::string>{}(Key), 0,
                    static_cast<uint8_t>((It->second ? trace::LangResult : 0) |
                                         trace::LangCached));
    return It->second;
  }
  if (SharedCache) {
    if (std::optional<bool> Hit = SharedCache->lookup(Key)) {
      ++Counters.CacheHits;
      ++Counters.SharedCacheHits;
      APT_TRACE_EVENT(trace::EventKind::LangSubset,
                      std::hash<std::string>{}(Key), 0,
                      static_cast<uint8_t>((*Hit ? trace::LangResult : 0) |
                                           trace::LangShared));
      SubsetCache.emplace(std::move(Key), *Hit);
      return *Hit;
    }
  }
  bool Result = subsetOfUncached(A, B);
  APT_TRACE_EVENT(trace::EventKind::LangSubset,
                  std::hash<std::string>{}(Key), 0,
                  static_cast<uint8_t>(Result ? trace::LangResult : 0));
  if (SharedCache)
    SharedCache->insert(Key, Result);
  SubsetCache.emplace(std::move(Key), Result);
  return Result;
}

bool LangQuery::subsetOfUncached(const RegexRef &A, const RegexRef &B) {
  if (Engine == LangEngine::Derivative)
    return derivSubsetOf(A, B);
  // L(A) subset of L(B)  iff  L(A) & complement(L(B)) is empty, taken over
  // the union alphabet (words using symbols outside it cannot be in L(A)).
  std::vector<FieldId> Alphabet = unionAlphabet(A, B);
  Dfa DA = Dfa::fromRegex(*A, Alphabet);
  Dfa DB = Dfa::fromRegex(*B, Alphabet);
  Counters.DfaBuilt += 2;
  Counters.DfaStatesBuilt += DA.numStates() + DB.numStates();
  return Dfa::product(DA, DB.complemented(), /*RequireBoth=*/true)
      .languageEmpty();
}

bool LangQuery::disjoint(const RegexRef &A, const RegexRef &B) {
  ++Counters.DisjointQueries;
  if (A->isEmpty() || B->isEmpty())
    return true;
  if (structurallyEqual(A, B))
    return false; // Both non-empty and identical: they share every word.
  if (!EnableCache)
    return disjointUncached(A, B);
  // Disjointness is symmetric; canonicalize the key order.
  std::string Key = A->key() <= B->key()
                        ? "D\x1f" + A->key() + "\x1f" + B->key()
                        : "D\x1f" + B->key() + "\x1f" + A->key();
  auto It = DisjointCache.find(Key);
  if (It != DisjointCache.end()) {
    ++Counters.CacheHits;
    APT_TRACE_EVENT(trace::EventKind::LangDisjoint,
                    std::hash<std::string>{}(Key), 0,
                    static_cast<uint8_t>((It->second ? trace::LangResult : 0) |
                                         trace::LangCached));
    return It->second;
  }
  if (SharedCache) {
    if (std::optional<bool> Hit = SharedCache->lookup(Key)) {
      ++Counters.CacheHits;
      ++Counters.SharedCacheHits;
      APT_TRACE_EVENT(trace::EventKind::LangDisjoint,
                      std::hash<std::string>{}(Key), 0,
                      static_cast<uint8_t>((*Hit ? trace::LangResult : 0) |
                                           trace::LangShared));
      DisjointCache.emplace(std::move(Key), *Hit);
      return *Hit;
    }
  }
  bool Result = disjointUncached(A, B);
  APT_TRACE_EVENT(trace::EventKind::LangDisjoint,
                  std::hash<std::string>{}(Key), 0,
                  static_cast<uint8_t>(Result ? trace::LangResult : 0));
  if (SharedCache)
    SharedCache->insert(Key, Result);
  DisjointCache.emplace(std::move(Key), Result);
  return Result;
}

bool LangQuery::disjointUncached(const RegexRef &A, const RegexRef &B) {
  if (Engine == LangEngine::Derivative)
    return derivDisjoint(A, B);
  std::vector<FieldId> Alphabet = unionAlphabet(A, B);
  Dfa DA = Dfa::fromRegex(*A, Alphabet);
  Dfa DB = Dfa::fromRegex(*B, Alphabet);
  Counters.DfaBuilt += 2;
  Counters.DfaStatesBuilt += DA.numStates() + DB.numStates();
  return Dfa::product(DA, DB, /*RequireBoth=*/true).languageEmpty();
}

bool LangQuery::equivalent(const RegexRef &A, const RegexRef &B) {
  if (structurallyEqual(A, B))
    return true;
  return subsetOf(A, B) && subsetOf(B, A);
}

bool LangQuery::matches(const RegexRef &R, const Word &W) {
  return derivMatches(R, W);
}
