//===- regex/Regex.h - Regular expressions over field names -----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regular expressions whose alphabet is the set of pointer-field names of a
/// data structure. Access paths (paper §3.1) and the regular expressions
/// inside aliasing axioms are both built from this AST.
///
/// Nodes are immutable and shared; the smart constructors perform light
/// ACI-style normalization (flattening, identity/annihilator elimination,
/// duplicate-branch removal, canonical ordering of alternations) so that
/// structurally equal languages usually have equal canonical keys. Full
/// language equivalence is decided by the automata in Dfa.h / Derivative.h.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_REGEX_H
#define APT_REGEX_REGEX_H

#include "support/FieldTable.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace apt {

/// Discriminator for regular-expression AST nodes.
enum class RegexKind {
  Empty,   ///< The empty language (no paths at all).
  Epsilon, ///< The empty word: stay at the current vertex.
  Symbol,  ///< A single pointer-field traversal.
  Concat,  ///< Sequential composition of >= 2 subexpressions.
  Alt,     ///< Alternation (set union) of >= 2 subexpressions.
  Star,    ///< Kleene star: zero or more repetitions.
  Plus,    ///< Kleene plus: one or more repetitions.
};

class Regex;

/// Shared immutable handle to a regular-expression node.
using RegexRef = std::shared_ptr<const Regex>;

/// An immutable regular expression over pointer-field names.
///
/// Construct only via the static factory functions, which normalize as they
/// build. Two RegexRefs with the same key() are structurally identical (and
/// therefore denote the same language; the converse does not hold).
class Regex {
public:
  RegexKind kind() const { return Kind; }

  /// Field of a Symbol node. Only valid when kind() == RegexKind::Symbol.
  FieldId symbol() const;

  /// Children of a Concat/Alt (>= 2) or Star/Plus (exactly 1) node.
  const std::vector<RegexRef> &children() const { return Children; }

  /// Child of a Star or Plus node.
  const RegexRef &child() const;

  /// True if the empty word belongs to this expression's language.
  bool nullable() const { return Nullable; }

  /// True if this is the Empty node (language {}).
  bool isEmpty() const { return Kind == RegexKind::Empty; }

  /// True if this is the Epsilon node (language {eps}).
  bool isEpsilon() const { return Kind == RegexKind::Epsilon; }

  /// Canonical structural key; equal keys imply structural equality.
  const std::string &key() const { return Key; }

  /// Inserts every field mentioned by this expression into \p Out.
  void collectSymbols(std::set<FieldId> &Out) const;

  /// Renders the expression with human-readable field names, using the
  /// paper's notation: juxtaposed-with-dots concatenation, '|', '*', '+',
  /// and "eps" / "never" for the constants. The output re-parses to a
  /// structurally identical expression.
  std::string toString(const FieldTable &Fields) const;

  /// \name Factory functions (the only way to create nodes).
  /// @{
  static RegexRef empty();
  static RegexRef epsilon();
  static RegexRef symbol(FieldId Field);

  /// Concatenation; drops epsilons, collapses to empty() if any part is
  /// empty, flattens nested concats, and unwraps singleton results.
  static RegexRef concat(std::vector<RegexRef> Parts);
  static RegexRef concat(RegexRef A, RegexRef B);

  /// Alternation; drops empty() branches, flattens nested alts, removes
  /// duplicate branches, orders branches canonically, and unwraps singleton
  /// results.
  static RegexRef alt(std::vector<RegexRef> Parts);
  static RegexRef alt(RegexRef A, RegexRef B);

  /// Kleene star; star(empty) == star(eps) == eps, star(star(x)) == star(x),
  /// star(plus(x)) == star(x).
  static RegexRef star(RegexRef Inner);

  /// Kleene plus; plus(empty) == empty, plus(eps) == eps,
  /// plus(star(x)) == star(x), plus(plus(x)) == plus(x).
  static RegexRef plus(RegexRef Inner);

  /// Zero-or-one: sugar for alt(Inner, eps).
  static RegexRef optional(RegexRef Inner);

  /// The single-word language {W}.
  static RegexRef word(const Word &W);
  /// @}

  /// If this expression's language is exactly one word, returns that word.
  /// Decided structurally (sound and complete thanks to normalization of
  /// Star-of-epsilon etc. — a Star/Plus survivor always has a non-epsilon
  /// child and so never denotes a singleton).
  std::optional<Word> singletonWord() const;

  /// Length of the shortest word in the language, or std::nullopt for the
  /// empty language.
  std::optional<size_t> shortestWordLength() const;

private:
  Regex(RegexKind Kind, FieldId Sym, std::vector<RegexRef> Children);

  static RegexRef make(RegexKind Kind, FieldId Sym,
                       std::vector<RegexRef> Children);

  RegexKind Kind;
  FieldId Sym = 0;
  std::vector<RegexRef> Children;
  bool Nullable = false;
  std::string Key;
};

/// Ordering of RegexRefs by canonical key (for deterministic containers).
struct RegexKeyLess {
  bool operator()(const RegexRef &A, const RegexRef &B) const {
    return A->key() < B->key();
  }
};

/// True if \p A and \p B are structurally identical.
inline bool structurallyEqual(const RegexRef &A, const RegexRef &B) {
  return A->key() == B->key();
}

} // namespace apt

#endif // APT_REGEX_REGEX_H
