//===- regex/LangOps.h - Cached language-query facade -----------*- C++ -*-===//
//
// Part of the APT project; see Dfa.h and Derivative.h for the engines.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LangQuery is the single entry point the dependence tester uses for
/// regular-language questions (subset, disjointness, equivalence,
/// membership). It:
///
///  * compiles each operand once into a minimal, alphabet-compressed
///    class automaton (Alphabet.h / Minimize.h) interned in a process-
///    wide store, and decides subset/disjointness by exploring the pair
///    product on the fly, stopping at the first witness word,
///  * memoizes query results keyed on canonical regex keys (the paper's
///    §4.2 assumes "results of intermediate proofs are cached"; the same
///    applies one level down to the language queries), and
///  * can be switched between the DFA engine and the Brzozowski-derivative
///    engine — and between the overhauled and the classic materialized
///    pipeline — for ablation benchmarks and differential testing.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_LANGOPS_H
#define APT_REGEX_LANGOPS_H

#include "regex/Regex.h"
#include "support/ShardedCache.h"

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace apt {

class ClassDfa;
class MinDfaStore;

/// Which decision procedure answers language queries.
enum class LangEngine {
  Dfa,        ///< Thompson NFA -> subset-construction DFA -> product.
  Derivative, ///< Brzozowski-derivative pair exploration.
};

/// Pipeline configuration. The defaults are the fast path; the flags
/// exist so benchmarks can ablate each stage and the differential fuzzer
/// can pit the variants against each other.
struct LangOptions {
  LangEngine Engine = LangEngine::Dfa;
  /// Memoize query results (per-instance maps, plus the shared cache
  /// when one is attached).
  bool EnableCache = true;
  /// Decide subset/disjointness by lazy pair-graph search with early
  /// exit. When false, the classic pipeline runs instead: materialized
  /// union-alphabet DFAs, complementation, full product, emptiness.
  bool OnTheFlyProduct = true;
  /// Hopcroft-minimize operand automata before interning them.
  bool MinimizeDfas = true;
  /// Merge indistinguishable symbols into alphabet classes; when false,
  /// class automata carry one class per symbol (the other class exists
  /// either way).
  bool CompressAlphabet = true;
  /// Build operand automata with the bit-parallel subset kernel
  /// (Subset.h). When false, the classic sorted-vector construction runs
  /// instead; both produce identical automata, so this flag exists only
  /// for the differential fuzzer and construction-cost ablations.
  bool BitParallel = true;
};

/// Cached facade over the regular-language decision procedures.
class LangQuery {
public:
  /// Aggregate counters, exposed for benchmarks and tests. All fields
  /// are monotone over the instance's lifetime.
  struct Stats {
    uint64_t SubsetQueries = 0;
    uint64_t DisjointQueries = 0;
    uint64_t CacheHits = 0;
    uint64_t SharedCacheHits = 0; ///< Answered by another thread's work.
    uint64_t DfaBuilt = 0;        ///< Automata compiled by this instance.
    uint64_t DfaStatesBuilt = 0;  ///< States before minimization.
    uint64_t DfaMinStates = 0;    ///< States after minimization.
    uint64_t DfaStoreHits = 0;    ///< Automata served by the interned store.
    uint64_t AlphabetSymbols = 0; ///< Union-alphabet symbols per product.
    uint64_t AlphabetClasses = 0; ///< Pair classes actually explored.
    uint64_t ProductStatesExplored = 0; ///< Pair states visited lazily.
  };

  explicit LangQuery(LangEngine Engine = LangEngine::Dfa,
                     bool EnableCache = true);
  explicit LangQuery(const LangOptions &Opts);

  /// True if L(A) is a subset of L(B).
  bool subsetOf(const RegexRef &A, const RegexRef &B);

  /// True if L(A) and L(B) share no word.
  bool disjoint(const RegexRef &A, const RegexRef &B);

  /// True if L(A) == L(B).
  bool equivalent(const RegexRef &A, const RegexRef &B);

  /// True if L(R) is empty (structural with normalized regexes).
  bool languageEmpty(const RegexRef &R) const { return R->isEmpty(); }

  /// True if W is a member of L(R).
  bool matches(const RegexRef &R, const Word &W);

  const Stats &stats() const { return Counters; }
  LangEngine engine() const { return Opts.Engine; }
  const LangOptions &options() const { return Opts; }

  /// The witness word of the most recent negative verdict, when the
  /// on-the-fly product produced one: a word of L(A) \ L(B) after
  /// `subsetOf(A, B) == false`, a word of L(A) ∩ L(B) after
  /// `disjoint(A, B) == false`. Empty after positive verdicts, cache
  /// hits (only the boolean is memoized), structural fast paths, and
  /// queries run through the derivative or classic pipelines.
  const std::optional<Word> &lastWitness() const { return Witness; }

  /// Attaches a cross-thread result cache (see ShardedCache.h). Lookups
  /// consult the per-instance maps first, then \p Shared; computed
  /// answers are published to both. The caller keeps ownership and must
  /// only share one cache between LangQuery instances running the same
  /// engine (keys do not encode the engine; the two engines agree on
  /// answers, but mixing them would blur the ablation counters).
  /// Pass nullptr to detach.
  void attachSharedCache(ShardedBoolCache *Shared) { SharedCache = Shared; }

  /// Redirects operand-automaton interning to \p Store (tests and
  /// benchmarks use private stores for isolation and cold-path timing).
  /// By default every instance shares MinDfaStore::global(); pass
  /// nullptr to disable interning and rebuild per query.
  void attachDfaStore(MinDfaStore *Store) { DfaStore = Store; }

private:
  bool subsetOfUncached(const RegexRef &A, const RegexRef &B);
  bool disjointUncached(const RegexRef &A, const RegexRef &B);
  std::shared_ptr<const ClassDfa> operandDfa(const RegexRef &R);

  LangOptions Opts;
  Stats Counters;
  std::optional<Word> Witness;
  /// Reused cache-key buffer: warm lookups append into retained capacity
  /// instead of building a fresh string per query (the zero-transient-
  /// allocation contract of tests/engine_perf_test.cpp).
  std::string KeyBuf;
  std::unordered_map<std::string, bool> SubsetCache;
  std::unordered_map<std::string, bool> DisjointCache;
  ShardedBoolCache *SharedCache = nullptr;
  MinDfaStore *DfaStore = nullptr;
};

} // namespace apt

#endif // APT_REGEX_LANGOPS_H
