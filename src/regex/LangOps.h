//===- regex/LangOps.h - Cached language-query facade -----------*- C++ -*-===//
//
// Part of the APT project; see Dfa.h and Derivative.h for the engines.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LangQuery is the single entry point the dependence tester uses for
/// regular-language questions (subset, disjointness, equivalence,
/// membership). It:
///
///  * chooses a per-query union alphabet so that complements are taken
///    over exactly the fields both expressions can mention,
///  * memoizes query results keyed on canonical regex keys (the paper's
///    §4.2 assumes "results of intermediate proofs are cached"; the same
///    applies one level down to the language queries), and
///  * can be switched between the DFA engine and the Brzozowski-derivative
///    engine for the ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_LANGOPS_H
#define APT_REGEX_LANGOPS_H

#include "regex/Regex.h"
#include "support/ShardedCache.h"

#include <cstdint>
#include <unordered_map>

namespace apt {

/// Which decision procedure answers language queries.
enum class LangEngine {
  Dfa,        ///< Thompson NFA -> subset-construction DFA -> product.
  Derivative, ///< Brzozowski-derivative pair exploration.
};

/// Cached facade over the regular-language decision procedures.
class LangQuery {
public:
  /// Aggregate counters, exposed for benchmarks and tests.
  struct Stats {
    uint64_t SubsetQueries = 0;
    uint64_t DisjointQueries = 0;
    uint64_t CacheHits = 0;
    uint64_t SharedCacheHits = 0; ///< Answered by another thread's work.
    uint64_t DfaBuilt = 0;
    uint64_t DfaStatesBuilt = 0;
  };

  explicit LangQuery(LangEngine Engine = LangEngine::Dfa,
                     bool EnableCache = true)
      : Engine(Engine), EnableCache(EnableCache) {}

  /// True if L(A) is a subset of L(B).
  bool subsetOf(const RegexRef &A, const RegexRef &B);

  /// True if L(A) and L(B) share no word.
  bool disjoint(const RegexRef &A, const RegexRef &B);

  /// True if L(A) == L(B).
  bool equivalent(const RegexRef &A, const RegexRef &B);

  /// True if L(R) is empty (structural with normalized regexes).
  bool languageEmpty(const RegexRef &R) const { return R->isEmpty(); }

  /// True if W is a member of L(R).
  bool matches(const RegexRef &R, const Word &W);

  const Stats &stats() const { return Counters; }
  LangEngine engine() const { return Engine; }

  /// Attaches a cross-thread result cache (see ShardedCache.h). Lookups
  /// consult the per-instance maps first, then \p Shared; computed
  /// answers are published to both. The caller keeps ownership and must
  /// only share one cache between LangQuery instances running the same
  /// engine (keys do not encode the engine; the two engines agree on
  /// answers, but mixing them would blur the ablation counters).
  /// Pass nullptr to detach.
  void attachSharedCache(ShardedBoolCache *Shared) { SharedCache = Shared; }

private:
  bool subsetOfUncached(const RegexRef &A, const RegexRef &B);
  bool disjointUncached(const RegexRef &A, const RegexRef &B);

  LangEngine Engine;
  bool EnableCache;
  Stats Counters;
  std::unordered_map<std::string, bool> SubsetCache;
  std::unordered_map<std::string, bool> DisjointCache;
  ShardedBoolCache *SharedCache = nullptr;
};

} // namespace apt

#endif // APT_REGEX_LANGOPS_H
