//===- regex/Dfa.cpp ------------------------------------------------------===//
//
// Part of the APT project; see Dfa.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/Dfa.h"

#include "regex/Subset.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <numeric>

using namespace apt;

int Dfa::alphabetIndex(FieldId F) const {
  auto It = std::lower_bound(Alphabet.begin(), Alphabet.end(), F);
  if (It == Alphabet.end() || *It != F)
    return -1;
  return static_cast<int>(It - Alphabet.begin());
}

Dfa Dfa::fromRegex(const Regex &R, const std::vector<FieldId> &Alphabet,
                   bool BitParallel) {
  return fromNfa(Nfa::build(R), Alphabet, BitParallel);
}

Dfa Dfa::fromNfa(const Nfa &N, const std::vector<FieldId> &Alphabet,
                 bool BitParallel) {
  assert(std::is_sorted(Alphabet.begin(), Alphabet.end()) &&
         "alphabet must be sorted");
  if (BitParallel) {
    SubsetResult R = subsetConstruct(N, Alphabet.data(), Alphabet.size());
    Dfa Out;
    Out.Alphabet = Alphabet;
    Out.Transitions = std::move(R.Transitions);
    Out.Accepting = std::move(R.Accepting);
    Out.Start = R.Start;
    return Out;
  }
  Dfa Out;
  Out.Alphabet = Alphabet;
  const size_t NumSyms = Alphabet.size();

  // Subset construction. State sets are sorted vectors used as map keys.
  std::map<std::vector<uint32_t>, uint32_t> StateIds;
  std::deque<std::vector<uint32_t>> Worklist;

  auto InternState = [&](std::vector<uint32_t> Set) -> uint32_t {
    auto It = StateIds.find(Set);
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(StateIds.size());
    StateIds.emplace(Set, Id);
    bool Accepts = std::binary_search(Set.begin(), Set.end(), N.Accept);
    Out.Accepting.push_back(Accepts);
    Out.Transitions.resize(Out.Accepting.size() * NumSyms, 0);
    Worklist.push_back(std::move(Set));
    return Id;
  };

  std::vector<uint32_t> StartSet{N.Start};
  N.epsilonClosure(StartSet);
  Out.Start = InternState(std::move(StartSet));

  // The empty set acts as the sink; it is interned lazily like any other
  // subset (it naturally has self-loops on every symbol).
  while (!Worklist.empty()) {
    std::vector<uint32_t> Set = std::move(Worklist.front());
    Worklist.pop_front();
    uint32_t Id = StateIds.at(Set);
    for (size_t SymIdx = 0; SymIdx < NumSyms; ++SymIdx) {
      FieldId Sym = Alphabet[SymIdx];
      std::vector<uint32_t> Next;
      for (uint32_t S : Set)
        for (const auto &[Label, Target] : N.States[S].Transitions)
          if (Label == Sym)
            Next.push_back(Target);
      std::sort(Next.begin(), Next.end());
      Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
      N.epsilonClosure(Next);
      uint32_t NextId = InternState(std::move(Next));
      Out.Transitions[Id * NumSyms + SymIdx] = NextId;
    }
  }

  // Interning while iterating grew Transitions; rows for states interned
  // last may still be unfilled only if they never left the worklist, which
  // cannot happen (the loop drains it). Sanity-check in debug builds.
  assert(Out.Transitions.size() == Out.Accepting.size() * NumSyms);
  return Out;
}

Dfa Dfa::product(const Dfa &A, const Dfa &B, bool RequireBoth) {
  assert(A.Alphabet == B.Alphabet && "product requires a shared alphabet");
  Dfa Out;
  Out.Alphabet = A.Alphabet;
  const size_t NumSyms = Out.Alphabet.size();
  const size_t BStates = B.numStates();

  // Reachable-pairs construction keeps the product small in practice.
  std::vector<uint32_t> PairId(A.numStates() * BStates, UINT32_MAX);
  std::deque<std::pair<uint32_t, uint32_t>> Worklist;

  auto Intern = [&](uint32_t SA, uint32_t SB) -> uint32_t {
    uint32_t &Slot = PairId[SA * BStates + SB];
    if (Slot != UINT32_MAX)
      return Slot;
    Slot = static_cast<uint32_t>(Out.Accepting.size());
    bool AccA = A.isAccepting(SA), AccB = B.isAccepting(SB);
    Out.Accepting.push_back(RequireBoth ? (AccA && AccB) : (AccA || AccB));
    Out.Transitions.resize(Out.Accepting.size() * NumSyms, 0);
    Worklist.emplace_back(SA, SB);
    return Slot;
  };

  Out.Start = Intern(A.start(), B.start());
  while (!Worklist.empty()) {
    auto [SA, SB] = Worklist.front();
    Worklist.pop_front();
    uint32_t Id = PairId[SA * BStates + SB];
    for (size_t SymIdx = 0; SymIdx < NumSyms; ++SymIdx) {
      uint32_t Next = Intern(A.step(SA, SymIdx), B.step(SB, SymIdx));
      Out.Transitions[Id * NumSyms + SymIdx] = Next;
    }
  }
  return Out;
}

Dfa Dfa::complemented() const {
  Dfa Out(*this);
  for (size_t I = 0; I < Out.Accepting.size(); ++I)
    Out.Accepting[I] = !Out.Accepting[I];
  return Out;
}

bool Dfa::languageEmpty() const {
  std::vector<bool> Seen(numStates(), false);
  std::deque<uint32_t> Worklist{Start};
  Seen[Start] = true;
  const size_t NumSyms = Alphabet.size();
  while (!Worklist.empty()) {
    uint32_t S = Worklist.front();
    Worklist.pop_front();
    if (Accepting[S])
      return false;
    for (size_t SymIdx = 0; SymIdx < NumSyms; ++SymIdx) {
      uint32_t T = step(S, SymIdx);
      if (!Seen[T]) {
        Seen[T] = true;
        Worklist.push_back(T);
      }
    }
  }
  return true;
}

bool Dfa::accepts(const Word &W) const {
  uint32_t S = Start;
  for (FieldId F : W) {
    int SymIdx = alphabetIndex(F);
    if (SymIdx < 0)
      return false;
    S = step(S, static_cast<size_t>(SymIdx));
  }
  return Accepting[S];
}

std::optional<Word> Dfa::shortestAcceptedWord() const {
  // BFS recording the (symbol, predecessor) that first reached each state.
  std::vector<int> PredState(numStates(), -1);
  std::vector<int> PredSym(numStates(), -1);
  std::vector<bool> Seen(numStates(), false);
  std::deque<uint32_t> Worklist{Start};
  Seen[Start] = true;
  const size_t NumSyms = Alphabet.size();
  while (!Worklist.empty()) {
    uint32_t S = Worklist.front();
    Worklist.pop_front();
    if (Accepting[S]) {
      Word Out;
      uint32_t Cur = S;
      while (PredState[Cur] >= 0) {
        Out.push_back(Alphabet[PredSym[Cur]]);
        Cur = static_cast<uint32_t>(PredState[Cur]);
      }
      std::reverse(Out.begin(), Out.end());
      return Out;
    }
    for (size_t SymIdx = 0; SymIdx < NumSyms; ++SymIdx) {
      uint32_t T = step(S, SymIdx);
      if (!Seen[T]) {
        Seen[T] = true;
        PredState[T] = static_cast<int>(S);
        PredSym[T] = static_cast<int>(SymIdx);
        Worklist.push_back(T);
      }
    }
  }
  return std::nullopt;
}
