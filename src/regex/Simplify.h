//===- regex/Simplify.h - Semantic regex simplification ---------*- C++ -*-===//
//
// Part of the APT project; see Regex.h for the AST and LangOps.h for the
// language queries used to justify rewrites.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Language-preserving simplification beyond the smart constructors'
/// structural normalization. Loop summaries and rebased access paths
/// accumulate shapes like `(L|eps).L*` or `a*.a*`; shrinking them keeps
/// prover goals small (fewer suffix splits, smaller DFAs).
///
/// Every rewrite is justified by a decidable language query, so
/// simplification is exactly language-preserving; a property test checks
/// equivalence on randomized expressions.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_SIMPLIFY_H
#define APT_REGEX_SIMPLIFY_H

#include "regex/LangOps.h"
#include "regex/Regex.h"

namespace apt {

/// Returns a regex denoting the same language as \p R, no larger than
/// \p R (by structural key length). Applies, bottom-up and to fixpoint:
///
///  * alternation-branch subsumption: drop B from A|B when L(B) ⊆ L(A);
///  * star-adjacent absorption in concatenations: drop a nullable part C
///    adjacent to X* when L(C) ⊆ L(X*) (covers a*.a* and (a|eps).a*);
///  * nullable-star flattening: (A|eps)* -> A*, (A+)* -> A* and friends;
///  * x.x* / x*.x to x+.
RegexRef simplifyRegex(const RegexRef &R, LangQuery &Q);

} // namespace apt

#endif // APT_REGEX_SIMPLIFY_H
