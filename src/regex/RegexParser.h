//===- regex/RegexParser.h - Textual regex syntax ---------------*- C++ -*-===//
//
// Part of the APT project; see Regex.h for the AST this parses into.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual regular-expression syntax used by axioms and
/// access paths. The grammar mirrors the paper's notation:
///
/// \code
///   regex   := alt
///   alt     := cat ('|' cat)*
///   cat     := postfix (('.')? postfix)*        -- '.' optional
///   postfix := atom ('*' | '+' | '?')*
///   atom    := FIELD | 'eps' | 'never' | '(' regex ')'
/// \endcode
///
/// FIELD is an identifier ([A-Za-z_][A-Za-z0-9_]*); `eps` is the empty word
/// and `never` the empty language. Whitespace separates juxtaposed fields,
/// so both `L.L.N` and `L L N` parse as the path LLN from the paper.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_REGEXPARSER_H
#define APT_REGEX_REGEXPARSER_H

#include "regex/Regex.h"

#include <string>
#include <string_view>
#include <variant>

namespace apt {

/// Outcome of a parse: either a regex or a diagnostic.
struct RegexParseResult {
  RegexRef Value;      ///< Non-null on success.
  std::string Error;   ///< Non-empty on failure (starts lowercase).
  size_t ErrorOffset = 0;

  explicit operator bool() const { return Value != nullptr; }
};

/// Parses \p Text, interning any field names it mentions into \p Fields.
RegexParseResult parseRegex(std::string_view Text, FieldTable &Fields);

/// Parses \p Text treating every alphanumeric character as its own
/// single-letter field, matching the paper's compact notation (e.g. "LLN"
/// is the three-field path L.L.N). Operators |, *, +, ?, parentheses and
/// 'ε'-as-'e'? are NOT special-cased here beyond |, *, +, ( and ).
RegexParseResult parseCompactRegex(std::string_view Text, FieldTable &Fields);

} // namespace apt

#endif // APT_REGEX_REGEXPARSER_H
