//===- regex/Subset.cpp - Bit-parallel subset construction ----------------===//
//
// Part of the APT project; see Subset.h for the design contract.
//
//===----------------------------------------------------------------------===//

#include "regex/Subset.h"

#include "support/Arena.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace apt;

namespace {

inline void setBit(uint64_t *Words, uint32_t I) {
  Words[I >> 6] |= uint64_t(1) << (I & 63);
}

inline bool testBit(const uint64_t *Words, uint32_t I) {
  return (Words[I >> 6] >> (I & 63)) & 1;
}

inline void orInto(uint64_t *Dst, const uint64_t *Src, size_t W) {
  for (size_t I = 0; I < W; ++I)
    Dst[I] |= Src[I];
}

inline uint64_t hashWords(const uint64_t *Words, size_t W) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < W; ++I) {
    H ^= Words[I];
    H *= 0x100000001b3ULL;
    H ^= H >> 29;
  }
  return H;
}

} // namespace

SubsetResult apt::subsetConstruct(const Nfa &N, const FieldId *Syms,
                                  size_t K) {
  const size_t NumN = N.States.size();
  const size_t W = (NumN + 63) / 64;
  assert(NumN > 0 && "Thompson NFAs always have a start and accept state");

  SubsetResult Out;
  Arena &A = Arena::threadScratch();
  ArenaScope Scope(A);

  // Per-state epsilon closures, each a W-word bitset. Direct DFS per
  // state: epsilon fan-out in Thompson NFAs is at most two, so this is
  // linear-ish in practice and exact in all cases (including cycles).
  uint64_t *Closure = A.allocateArray<uint64_t>(NumN * W);
  std::memset(Closure, 0, NumN * W * sizeof(uint64_t));
  {
    uint32_t *Stack = A.allocateArray<uint32_t>(NumN);
    for (uint32_t S = 0; S < NumN; ++S) {
      uint64_t *Row = Closure + size_t(S) * W;
      size_t Top = 0;
      setBit(Row, S);
      Stack[Top++] = S;
      while (Top) {
        uint32_t T = Stack[--Top];
        for (uint32_t U : N.States[T].EpsilonMoves)
          if (!testBit(Row, U)) {
            setBit(Row, U);
            Stack[Top++] = U;
          }
      }
    }
  }

  // MoveClosed[k][s] = closure(move({s}, Syms[k])): union of the target
  // closures of s's edges in column k. Next(Set, k) is then the union of
  // MoveClosed[k][s] over the set bits s — the whole classic inner loop
  // (collect, sort, unique, closure) collapses into OR passes. Columns
  // with no field (the "other" class) simply stay all-zero.
  uint64_t *MoveClosed = A.allocateArray<uint64_t>(K * NumN * W);
  std::memset(MoveClosed, 0, K * NumN * W * sizeof(uint64_t));
  {
    // field -> column, sorted for binary search. At most one column per
    // field: alphabets are unique and class representatives distinct.
    using ColEntry = std::pair<FieldId, uint32_t>;
    ColEntry *Cols = A.allocateArray<ColEntry>(K ? K : 1);
    size_t NumCols = 0;
    for (size_t K2 = 0; K2 < K; ++K2)
      if (Syms[K2] != ~FieldId(0))
        Cols[NumCols++] = {Syms[K2], static_cast<uint32_t>(K2)};
    std::sort(Cols, Cols + NumCols);
    for (uint32_t S = 0; S < NumN; ++S)
      for (const auto &[Label, Target] : N.States[S].Transitions) {
        const ColEntry *It = std::lower_bound(
            Cols, Cols + NumCols, ColEntry{Label, 0},
            [](const ColEntry &X, const ColEntry &Y) {
              return X.first < Y.first;
            });
        if (It == Cols + NumCols || It->first != Label)
          continue;
        orInto(MoveClosed + (size_t(It->second) * NumN + S) * W,
               Closure + size_t(Target) * W, W);
      }
  }

  // Interned subset pool: W words per set, open-addressed table of ids.
  // Ids are assigned in discovery order, which (processing rows 0,1,2,...
  // and columns in order) is exactly the classic BFS order.
  std::vector<uint64_t, ArenaAllocator<uint64_t>> Pool{
      ArenaAllocator<uint64_t>(A)};
  std::vector<uint32_t, ArenaAllocator<uint32_t>> Table{
      ArenaAllocator<uint32_t>(A)};
  size_t TableSize = 64;
  Table.assign(TableSize, UINT32_MAX);
  uint32_t NumSets = 0;

  auto Rehash = [&]() {
    TableSize *= 2;
    Table.assign(TableSize, UINT32_MAX);
    for (uint32_t Id = 0; Id < NumSets; ++Id) {
      size_t I = hashWords(&Pool[size_t(Id) * W], W) & (TableSize - 1);
      while (Table[I] != UINT32_MAX)
        I = (I + 1) & (TableSize - 1);
      Table[I] = Id;
    }
  };

  auto Intern = [&](const uint64_t *Words) -> uint32_t {
    size_t I = hashWords(Words, W) & (TableSize - 1);
    while (true) {
      uint32_t Id = Table[I];
      if (Id == UINT32_MAX)
        break;
      if (std::memcmp(&Pool[size_t(Id) * W], Words,
                      W * sizeof(uint64_t)) == 0)
        return Id;
      I = (I + 1) & (TableSize - 1);
    }
    uint32_t Id = NumSets++;
    Table[I] = Id;
    Pool.insert(Pool.end(), Words, Words + W);
    Out.Accepting.push_back(testBit(Words, N.Accept));
    Out.Transitions.resize(size_t(NumSets) * K, 0);
    if (Out.EmptySet == UINT32_MAX &&
        std::all_of(Words, Words + W, [](uint64_t V) { return V == 0; }))
      Out.EmptySet = Id;
    if (NumSets * 2 >= TableSize)
      Rehash();
    return Id;
  };

  Out.Start = Intern(Closure + size_t(N.Start) * W);

  uint64_t *CurW = A.allocateArray<uint64_t>(W);
  uint64_t *NextW = A.allocateArray<uint64_t>(W);
  for (uint32_t Id = 0; Id < NumSets; ++Id) {
    // Copy the row out of the pool: interning below may reallocate it.
    std::memcpy(CurW, &Pool[size_t(Id) * W], W * sizeof(uint64_t));
    for (size_t Col = 0; Col < K; ++Col) {
      std::memset(NextW, 0, W * sizeof(uint64_t));
      for (size_t WordIdx = 0; WordIdx < W; ++WordIdx) {
        uint64_t Word = CurW[WordIdx];
        while (Word) {
          uint32_t S = static_cast<uint32_t>(WordIdx * 64) +
                       static_cast<uint32_t>(__builtin_ctzll(Word));
          Word &= Word - 1;
          orInto(NextW, MoveClosed + (Col * NumN + S) * W, W);
        }
      }
      Out.Transitions[size_t(Id) * K + Col] = Intern(NextW);
    }
  }

  assert(Out.Transitions.size() == Out.Accepting.size() * K);
  return Out;
}
