//===- regex/Dfa.h - Complete DFAs and language algebra ---------*- C++ -*-===//
//
// Part of the APT project; see Regex.h / Nfa.h for the pipeline feeding
// this module.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic finite automata over an explicit field alphabet. DFAs here
/// are always *complete* (every state has a transition on every alphabet
/// symbol, with a non-accepting sink absorbing dead paths), which makes
/// complementation a simple flip of the accepting set and lets subset tests
/// run as `L(A) ∩ complement(L(B)) = ∅`, exactly the HU79 recipe the paper
/// cites in §4.1.
///
/// The alphabet is an explicit, sorted list of FieldIds. Language operations
/// (product, containment) require both operands to share the alphabet; the
/// LangQuery facade in LangOps.h takes care of choosing the union alphabet
/// per query.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_DFA_H
#define APT_REGEX_DFA_H

#include "regex/Nfa.h"
#include "regex/Regex.h"

#include <cstdint>
#include <vector>

namespace apt {

/// A complete deterministic finite automaton over a fixed field alphabet.
class Dfa {
public:
  /// Builds the complete DFA for \p R over \p Alphabet (sorted, unique).
  /// Every symbol of \p R must be in \p Alphabet.
  static Dfa fromRegex(const Regex &R, const std::vector<FieldId> &Alphabet,
                       bool BitParallel = true);

  /// Subset construction from \p N over \p Alphabet. \p BitParallel
  /// selects the word-parallel kernel (Subset.h); false runs the classic
  /// sorted-vector construction kept as the differential-test reference.
  /// Both produce the identical automaton (same state numbering).
  static Dfa fromNfa(const Nfa &N, const std::vector<FieldId> &Alphabet,
                     bool BitParallel = true);

  /// Product automaton over the (shared) alphabet. Accepting states are the
  /// pairs where both (\p RequireBoth) or either operand accepts.
  static Dfa product(const Dfa &A, const Dfa &B, bool RequireBoth);

  /// The complement automaton (same alphabet, accepting set flipped).
  Dfa complemented() const;

  /// Hopcroft partition-refinement minimization (defined in Minimize.cpp,
  /// which shares its worklist core with the class automata of
  /// Alphabet.h).
  Dfa minimized() const;

  /// True if no accepting state is reachable from the start state.
  bool languageEmpty() const;

  /// True if the automaton accepts \p W. Symbols outside the alphabet make
  /// the word rejected.
  bool accepts(const Word &W) const;

  /// Shortest accepted word, or std::nullopt for the empty language. Used
  /// by tests and for producing witnesses in diagnostics.
  std::optional<Word> shortestAcceptedWord() const;

  size_t numStates() const { return Accepting.size(); }
  uint32_t start() const { return Start; }
  bool isAccepting(uint32_t State) const { return Accepting[State]; }
  const std::vector<FieldId> &alphabet() const { return Alphabet; }

  /// Index of \p F in the alphabet, or -1 if absent.
  int alphabetIndex(FieldId F) const;

  /// Successor of \p State on the symbol with alphabet index \p SymIdx.
  uint32_t step(uint32_t State, size_t SymIdx) const {
    return Transitions[State * Alphabet.size() + SymIdx];
  }

private:
  Dfa() = default;

  std::vector<FieldId> Alphabet;     ///< Sorted, unique.
  std::vector<uint32_t> Transitions; ///< Row-major [state][symIdx].
  std::vector<bool> Accepting;
  uint32_t Start = 0;
};

} // namespace apt

#endif // APT_REGEX_DFA_H
