//===- regex/Subset.h - Bit-parallel subset construction --------*- C++ -*-===//
//
// Part of the APT project; see Dfa.h / Alphabet.h for the two automaton
// flavors built on this kernel.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared bit-parallel core of subset construction. NFA state sets are
/// bitsets of 64-state `uint64_t` words instead of sorted vectors, so the
/// two expensive inner operations become word-parallel:
///
///  * epsilon-closed moves are precomputed per (symbol, NFA state) as
///    bitset unions, making each DFA transition one OR pass over the set
///    bits of the current subset (no per-move sort/unique/closure), and
///  * subset interning is an open-addressed hash over the raw words
///    (no ordered map of vectors).
///
/// The construction visits subsets in the same BFS order and the same
/// symbol order as the classic set-based code (Dfa::fromNfa /
/// ClassDfa::build with BitParallel=false), so the resulting automata are
/// *identical* — same state numbering, same tables — which the differential
/// tests in tests/automata_test.cpp rely on. All scratch lives in the
/// calling thread's arena (support/Arena.h) and is released on return.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_SUBSET_H
#define APT_REGEX_SUBSET_H

#include "regex/Nfa.h"

#include <cstdint>
#include <vector>

namespace apt {

/// Output of the kernel: a complete DFA over K symbol columns.
struct SubsetResult {
  std::vector<uint32_t> Transitions; ///< Row-major [state][column].
  std::vector<bool> Accepting;
  uint32_t Start = 0;
  /// Id of the empty subset (the absorbing sink), or UINT32_MAX when no
  /// dead path was ever reached.
  uint32_t EmptySet = UINT32_MAX;
};

/// Bit-parallel subset construction of the complete DFA for \p N over
/// \p K symbol columns. Column k steps on the NFA edges labeled
/// \p Syms[k]; a column whose entry is `~FieldId(0)` has no edges by
/// definition (the class automata's "other" class) and steps straight
/// into the empty subset.
SubsetResult subsetConstruct(const Nfa &N, const FieldId *Syms, size_t K);

} // namespace apt

#endif // APT_REGEX_SUBSET_H
