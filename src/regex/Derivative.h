//===- regex/Derivative.h - Brzozowski-derivative engine --------*- C++ -*-===//
//
// Part of the APT project; see Dfa.h for the primary (automaton) engine.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second decision procedure for the regular-language queries the prover
/// needs, based on Brzozowski derivatives instead of explicit automata.
/// The smart constructors in Regex.h normalize modulo ACI of alternation,
/// which bounds the number of distinct derivatives and guarantees the
/// pair-exploration below terminates.
///
/// This engine exists for two reasons: it cross-checks the DFA engine in
/// property tests, and it is the subject of the engine-ablation benchmark
/// (bench/ablation_engines).
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_DERIVATIVE_H
#define APT_REGEX_DERIVATIVE_H

#include "regex/Regex.h"

namespace apt {

/// The Brzozowski derivative of \p R with respect to field \p F:
/// a regex whose language is { w | F.w in L(R) }.
RegexRef derivative(const RegexRef &R, FieldId F);

/// Derivative of \p R with respect to a whole word.
RegexRef derivativeWord(const RegexRef &R, const Word &W);

/// True if W is in L(R), by walking derivatives.
bool derivMatches(const RegexRef &R, const Word &W);

/// True if L(A) is a subset of L(B), by joint derivative-pair exploration.
bool derivSubsetOf(const RegexRef &A, const RegexRef &B);

/// True if L(A) and L(B) have no common word.
bool derivDisjoint(const RegexRef &A, const RegexRef &B);

/// True if L(R) is the empty language. With normalized construction this
/// is a constant-time structural check.
inline bool derivLanguageEmpty(const RegexRef &R) { return R->isEmpty(); }

} // namespace apt

#endif // APT_REGEX_DERIVATIVE_H
