//===- regex/Minimize.h - Hopcroft minimization + interned DFAs -*- C++ -*-===//
//
// Part of the APT project; see Alphabet.h for the class automata
// minimized here and LangOps.h for the facade that consumes them.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hopcroft partition-refinement minimization (smaller-half worklist, the
/// O(n·k·log n) variant) for both automaton flavors, plus the process-wide
/// interned store of minimal class automata.
///
/// The store is the piece that turns minimization from a per-query cost
/// into a one-time cost: a ClassDfa is alphabet-independent (Alphabet.h),
/// so its minimal form depends only on the regex it was compiled from.
/// Keying the store on the regex's canonical structural key means the
/// same expression — recurring across queries, batch workers, and the
/// suffix/induction subgoals the prover spawns — compiles and minimizes
/// its automaton exactly once per process. Minimal automata are immutable
/// and handed out as shared_ptr, so the store is safe to share across
/// the batch engine's threads (it extends the ShardedCache substrate and
/// inherits its first-writer-wins contract).
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_MINIMIZE_H
#define APT_REGEX_MINIMIZE_H

#include "regex/Alphabet.h"
#include "support/ShardedCache.h"

#include <functional>
#include <memory>
#include <string>

namespace apt {

/// Hopcroft minimization of a class automaton. The result accepts the
/// same language, has the fewest states of any complete DFA over the
/// same partition, and keeps a valid sink (dead states all merge into
/// one block). Minimizing a minimal automaton is the identity up to
/// state renumbering.
ClassDfa minimizeClassDfa(const ClassDfa &D);

/// Process-wide interned store of (minimal) class automata, keyed by
/// regex fingerprint. Thread-safe; see the file comment.
class MinDfaStore {
public:
  explicit MinDfaStore(size_t RequestedShards = 16) : Cache(RequestedShards) {}

  struct Entry {
    std::shared_ptr<const ClassDfa> Dfa;
    bool WasHit = false; ///< Served from the store without building.
  };

  /// Returns the automaton interned under \p Fingerprint, building it
  /// with \p Build on a miss. Racing builders are resolved first-writer-
  /// wins; the loser's automaton is dropped (both are minimal automata
  /// of the same language, so either is correct).
  Entry getOrBuild(const std::string &Fingerprint,
                   const std::function<ClassDfa()> &Build);

  ShardedInternCache<ClassDfa>::Stats stats() const { return Cache.stats(); }
  size_t size() const { return Cache.size(); }
  void publishMetrics(const std::string &Prefix) const {
    Cache.publishMetrics(Prefix);
  }

  /// Visits every (fingerprint, automaton) entry. Cold path: snapshot
  /// serialization (src/service/Snapshot.h) and tests.
  template <typename Fn> void forEach(Fn &&F) const { Cache.forEach(F); }

  /// Interns an already-built automaton (first writer wins). Used by
  /// snapshot restore; query paths should go through getOrBuild.
  std::shared_ptr<const ClassDfa> intern(const std::string &Fingerprint,
                                         ClassDfa Dfa) {
    return Cache.intern(Fingerprint,
                        std::make_shared<const ClassDfa>(std::move(Dfa)));
  }

  /// The one store shared by every LangQuery unless a test or benchmark
  /// attaches its own (LangQuery::attachDfaStore).
  static MinDfaStore &global();

  /// The store newly constructed LangQuerys bind to on this thread:
  /// global() unless overridden. Regex fingerprints embed interned
  /// FieldIds, so automata are only shareable between queries that agree
  /// on the FieldTable; the service layer gives each loaded file its own
  /// store and installs it here for the duration of a request, which
  /// routes every internally constructed LangQuery (the Prover's, lint's,
  /// trace export's) to the session store without threading a parameter
  /// through every constructor.
  static MinDfaStore *threadDefault();

  /// Installs \p S as this thread's default store (nullptr restores
  /// global()) and returns the previous override.
  static MinDfaStore *setThreadDefault(MinDfaStore *S);

private:
  ShardedInternCache<ClassDfa> Cache;
};

} // namespace apt

#endif // APT_REGEX_MINIMIZE_H
