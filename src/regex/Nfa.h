//===- regex/Nfa.h - Thompson NFA construction ------------------*- C++ -*-===//
//
// Part of the APT project; see Regex.h for the expressions compiled here.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nondeterministic finite automata built from regular expressions via
/// Thompson's construction (Hopcroft & Ullman 1979, the reference the paper
/// cites for its subset tests). The NFA is an intermediate step on the way
/// to the complete DFAs in Dfa.h.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_NFA_H
#define APT_REGEX_NFA_H

#include "regex/Regex.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace apt {

/// An epsilon-NFA with a single start and single accept state, as produced
/// by Thompson's construction.
struct Nfa {
  /// One NFA state: labeled transitions plus epsilon moves.
  struct State {
    std::vector<std::pair<FieldId, uint32_t>> Transitions;
    std::vector<uint32_t> EpsilonMoves;
  };

  std::vector<State> States;
  uint32_t Start = 0;
  uint32_t Accept = 0;

  size_t size() const { return States.size(); }

  /// Computes the epsilon-closure of \p Seed in-place: on return \p Seed is
  /// the sorted, deduplicated closure.
  void epsilonClosure(std::vector<uint32_t> &Seed) const;

  /// Builds the Thompson NFA for \p R.
  static Nfa build(const Regex &R);
};

} // namespace apt

#endif // APT_REGEX_NFA_H
