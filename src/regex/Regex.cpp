//===- regex/Regex.cpp ----------------------------------------------------===//
//
// Part of the APT project; see Regex.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"

#include <algorithm>
#include <cassert>

using namespace apt;

//===----------------------------------------------------------------------===//
// Construction and normalization
//===----------------------------------------------------------------------===//

static bool computeNullable(RegexKind Kind,
                            const std::vector<RegexRef> &Children) {
  switch (Kind) {
  case RegexKind::Empty:
    return false;
  case RegexKind::Epsilon:
    return true;
  case RegexKind::Symbol:
    return false;
  case RegexKind::Concat:
    return std::all_of(Children.begin(), Children.end(),
                       [](const RegexRef &C) { return C->nullable(); });
  case RegexKind::Alt:
    return std::any_of(Children.begin(), Children.end(),
                       [](const RegexRef &C) { return C->nullable(); });
  case RegexKind::Star:
    return true;
  case RegexKind::Plus:
    return Children.front()->nullable();
  }
  assert(false && "unknown regex kind");
  return false;
}

static std::string computeKey(RegexKind Kind, FieldId Sym,
                              const std::vector<RegexRef> &Children) {
  switch (Kind) {
  case RegexKind::Empty:
    return "0";
  case RegexKind::Epsilon:
    return "e";
  case RegexKind::Symbol:
    return "s" + std::to_string(Sym);
  case RegexKind::Concat:
  case RegexKind::Alt:
  case RegexKind::Star:
  case RegexKind::Plus: {
    std::string Out;
    Out += Kind == RegexKind::Concat  ? "(."
           : Kind == RegexKind::Alt   ? "(|"
           : Kind == RegexKind::Star  ? "(*"
                                      : "(+";
    for (const RegexRef &C : Children) {
      Out += ' ';
      Out += C->key();
    }
    Out += ')';
    return Out;
  }
  }
  assert(false && "unknown regex kind");
  return "";
}

Regex::Regex(RegexKind Kind, FieldId Sym, std::vector<RegexRef> Children)
    : Kind(Kind), Sym(Sym), Children(std::move(Children)) {
  Nullable = computeNullable(Kind, this->Children);
  Key = computeKey(Kind, Sym, this->Children);
}

RegexRef Regex::make(RegexKind Kind, FieldId Sym,
                     std::vector<RegexRef> Children) {
  return RegexRef(new Regex(Kind, Sym, std::move(Children)));
}

FieldId Regex::symbol() const {
  assert(Kind == RegexKind::Symbol && "not a symbol node");
  return Sym;
}

const RegexRef &Regex::child() const {
  assert((Kind == RegexKind::Star || Kind == RegexKind::Plus) &&
         "not a star/plus node");
  return Children.front();
}

RegexRef Regex::empty() {
  static const RegexRef Instance = make(RegexKind::Empty, 0, {});
  return Instance;
}

RegexRef Regex::epsilon() {
  static const RegexRef Instance = make(RegexKind::Epsilon, 0, {});
  return Instance;
}

RegexRef Regex::symbol(FieldId Field) {
  return make(RegexKind::Symbol, Field, {});
}

RegexRef Regex::concat(std::vector<RegexRef> Parts) {
  std::vector<RegexRef> Flat;
  for (RegexRef &P : Parts) {
    assert(P && "null regex part");
    if (P->isEmpty())
      return empty();
    if (P->isEpsilon())
      continue;
    if (P->kind() == RegexKind::Concat) {
      for (const RegexRef &C : P->children())
        Flat.push_back(C);
      continue;
    }
    Flat.push_back(std::move(P));
  }
  if (Flat.empty())
    return epsilon();
  if (Flat.size() == 1)
    return Flat.front();
  return make(RegexKind::Concat, 0, std::move(Flat));
}

RegexRef Regex::concat(RegexRef A, RegexRef B) {
  std::vector<RegexRef> Parts;
  Parts.push_back(std::move(A));
  Parts.push_back(std::move(B));
  return concat(std::move(Parts));
}

RegexRef Regex::alt(std::vector<RegexRef> Parts) {
  std::vector<RegexRef> Flat;
  for (RegexRef &P : Parts) {
    assert(P && "null regex part");
    if (P->isEmpty())
      continue;
    if (P->kind() == RegexKind::Alt) {
      for (const RegexRef &C : P->children())
        Flat.push_back(C);
      continue;
    }
    Flat.push_back(std::move(P));
  }
  if (Flat.empty())
    return empty();
  std::sort(Flat.begin(), Flat.end(), RegexKeyLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end(),
                         [](const RegexRef &A, const RegexRef &B) {
                           return A->key() == B->key();
                         }),
             Flat.end());
  if (Flat.size() == 1)
    return Flat.front();
  return make(RegexKind::Alt, 0, std::move(Flat));
}

RegexRef Regex::alt(RegexRef A, RegexRef B) {
  std::vector<RegexRef> Parts;
  Parts.push_back(std::move(A));
  Parts.push_back(std::move(B));
  return alt(std::move(Parts));
}

RegexRef Regex::star(RegexRef Inner) {
  assert(Inner && "null regex");
  if (Inner->isEmpty() || Inner->isEpsilon())
    return epsilon();
  if (Inner->kind() == RegexKind::Star)
    return Inner;
  if (Inner->kind() == RegexKind::Plus)
    return star(Inner->child());
  return make(RegexKind::Star, 0, {std::move(Inner)});
}

RegexRef Regex::plus(RegexRef Inner) {
  assert(Inner && "null regex");
  if (Inner->isEmpty())
    return empty();
  if (Inner->isEpsilon())
    return epsilon();
  if (Inner->kind() == RegexKind::Star || Inner->kind() == RegexKind::Plus)
    return Inner;
  return make(RegexKind::Plus, 0, {std::move(Inner)});
}

RegexRef Regex::optional(RegexRef Inner) {
  return alt(std::move(Inner), epsilon());
}

RegexRef Regex::word(const Word &W) {
  std::vector<RegexRef> Parts;
  Parts.reserve(W.size());
  for (FieldId F : W)
    Parts.push_back(symbol(F));
  return concat(std::move(Parts));
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

void Regex::collectSymbols(std::set<FieldId> &Out) const {
  if (Kind == RegexKind::Symbol) {
    Out.insert(Sym);
    return;
  }
  for (const RegexRef &C : Children)
    C->collectSymbols(Out);
}

std::optional<Word> Regex::singletonWord() const {
  switch (Kind) {
  case RegexKind::Empty:
    return std::nullopt;
  case RegexKind::Epsilon:
    return Word{};
  case RegexKind::Symbol:
    return Word{Sym};
  case RegexKind::Concat: {
    Word Out;
    for (const RegexRef &C : Children) {
      std::optional<Word> Part = C->singletonWord();
      if (!Part)
        return std::nullopt;
      Out.insert(Out.end(), Part->begin(), Part->end());
    }
    return Out;
  }
  case RegexKind::Alt: {
    // Normalization removed duplicates, so >= 2 distinct branches remain.
    // Distinct normalized branches can still denote equal singleton
    // languages only if they are structurally different ways to write the
    // same word; compare the branch words directly.
    std::optional<Word> First = Children.front()->singletonWord();
    if (!First)
      return std::nullopt;
    for (size_t I = 1; I < Children.size(); ++I) {
      std::optional<Word> Other = Children[I]->singletonWord();
      if (!Other || *Other != *First)
        return std::nullopt;
    }
    return First;
  }
  case RegexKind::Star:
  case RegexKind::Plus:
    // Normalization guarantees the child is neither empty nor epsilon, so
    // the language contains words of at least two different lengths.
    return std::nullopt;
  }
  assert(false && "unknown regex kind");
  return std::nullopt;
}

std::optional<size_t> Regex::shortestWordLength() const {
  switch (Kind) {
  case RegexKind::Empty:
    return std::nullopt;
  case RegexKind::Epsilon:
    return 0;
  case RegexKind::Symbol:
    return 1;
  case RegexKind::Concat: {
    size_t Total = 0;
    for (const RegexRef &C : Children) {
      std::optional<size_t> Part = C->shortestWordLength();
      if (!Part)
        return std::nullopt;
      Total += *Part;
    }
    return Total;
  }
  case RegexKind::Alt: {
    std::optional<size_t> Best;
    for (const RegexRef &C : Children) {
      std::optional<size_t> Part = C->shortestWordLength();
      if (Part && (!Best || *Part < *Best))
        Best = Part;
    }
    return Best;
  }
  case RegexKind::Star:
    return 0;
  case RegexKind::Plus:
    return child()->shortestWordLength();
  }
  assert(false && "unknown regex kind");
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {
/// Binding strength used to decide where parentheses are needed.
enum class Prec { Alt = 0, Concat = 1, Postfix = 2 };
} // namespace

static void print(const Regex &R, const FieldTable &Fields, Prec Ctx,
                  std::string &Out) {
  switch (R.kind()) {
  case RegexKind::Empty:
    Out += "never";
    return;
  case RegexKind::Epsilon:
    Out += "eps";
    return;
  case RegexKind::Symbol:
    Out += Fields.name(R.symbol());
    return;
  case RegexKind::Concat: {
    bool Paren = Ctx > Prec::Concat;
    if (Paren)
      Out += '(';
    for (size_t I = 0; I < R.children().size(); ++I) {
      if (I > 0)
        Out += '.';
      print(*R.children()[I], Fields, Prec::Concat, Out);
    }
    if (Paren)
      Out += ')';
    return;
  }
  case RegexKind::Alt: {
    bool Paren = Ctx > Prec::Alt;
    if (Paren)
      Out += '(';
    for (size_t I = 0; I < R.children().size(); ++I) {
      if (I > 0)
        Out += '|';
      print(*R.children()[I], Fields, Prec::Alt, Out);
    }
    if (Paren)
      Out += ')';
    return;
  }
  case RegexKind::Star:
  case RegexKind::Plus:
    print(*R.child(), Fields, Prec::Postfix, Out);
    Out += R.kind() == RegexKind::Star ? '*' : '+';
    return;
  }
}

std::string Regex::toString(const FieldTable &Fields) const {
  std::string Out;
  print(*this, Fields, Prec::Alt, Out);
  return Out;
}
