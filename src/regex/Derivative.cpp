//===- regex/Derivative.cpp -----------------------------------------------===//
//
// Part of the APT project; see Derivative.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/Derivative.h"

#include <cassert>
#include <deque>
#include <set>
#include <unordered_set>

using namespace apt;

RegexRef apt::derivative(const RegexRef &R, FieldId F) {
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    return Regex::empty();
  case RegexKind::Symbol:
    return R->symbol() == F ? Regex::epsilon() : Regex::empty();
  case RegexKind::Concat: {
    // d(r1 r2 ... rn) = d(r1) r2..rn  |  [r1 nullable] d(r2 ... rn).
    const std::vector<RegexRef> &Cs = R->children();
    std::vector<RegexRef> Tail(Cs.begin() + 1, Cs.end());
    RegexRef TailRe = Regex::concat(Tail);
    RegexRef First = Regex::concat(derivative(Cs.front(), F), TailRe);
    if (!Cs.front()->nullable())
      return First;
    return Regex::alt(std::move(First), derivative(TailRe, F));
  }
  case RegexKind::Alt: {
    std::vector<RegexRef> Parts;
    Parts.reserve(R->children().size());
    for (const RegexRef &C : R->children())
      Parts.push_back(derivative(C, F));
    return Regex::alt(std::move(Parts));
  }
  case RegexKind::Star:
    return Regex::concat(derivative(R->child(), F), R);
  case RegexKind::Plus:
    return Regex::concat(derivative(R->child(), F),
                         Regex::star(R->child()));
  }
  assert(false && "unknown regex kind");
  return Regex::empty();
}

RegexRef apt::derivativeWord(const RegexRef &R, const Word &W) {
  RegexRef Cur = R;
  for (FieldId F : W) {
    Cur = derivative(Cur, F);
    if (Cur->isEmpty())
      break;
  }
  return Cur;
}

bool apt::derivMatches(const RegexRef &R, const Word &W) {
  return derivativeWord(R, W)->nullable();
}

namespace {

/// Union of the symbols of two regexes, sorted.
std::vector<FieldId> unionAlphabet(const RegexRef &A, const RegexRef &B) {
  std::set<FieldId> Syms;
  A->collectSymbols(Syms);
  B->collectSymbols(Syms);
  return std::vector<FieldId>(Syms.begin(), Syms.end());
}

} // namespace

bool apt::derivSubsetOf(const RegexRef &A, const RegexRef &B) {
  std::vector<FieldId> Alphabet = unionAlphabet(A, B);
  std::unordered_set<std::string> Seen;
  std::deque<std::pair<RegexRef, RegexRef>> Worklist;

  auto Push = [&](RegexRef DA, RegexRef DB) {
    if (DA->isEmpty())
      return; // L(DA) empty: trivially contained from here on.
    std::string Key = DA->key() + "\x1f" + DB->key();
    if (Seen.insert(std::move(Key)).second)
      Worklist.emplace_back(std::move(DA), std::move(DB));
  };

  Push(A, B);
  while (!Worklist.empty()) {
    auto [DA, DB] = Worklist.front();
    Worklist.pop_front();
    if (DA->nullable() && !DB->nullable())
      return false;
    for (FieldId F : Alphabet)
      Push(derivative(DA, F), derivative(DB, F));
  }
  return true;
}

bool apt::derivDisjoint(const RegexRef &A, const RegexRef &B) {
  std::vector<FieldId> Alphabet = unionAlphabet(A, B);
  std::unordered_set<std::string> Seen;
  std::deque<std::pair<RegexRef, RegexRef>> Worklist;

  auto Push = [&](RegexRef DA, RegexRef DB) {
    if (DA->isEmpty() || DB->isEmpty())
      return; // No common word can start from an empty side.
    std::string Key = DA->key() + "\x1f" + DB->key();
    if (Seen.insert(std::move(Key)).second)
      Worklist.emplace_back(std::move(DA), std::move(DB));
  };

  Push(A, B);
  while (!Worklist.empty()) {
    auto [DA, DB] = Worklist.front();
    Worklist.pop_front();
    if (DA->nullable() && DB->nullable())
      return false;
    for (FieldId F : Alphabet)
      Push(derivative(DA, F), derivative(DB, F));
  }
  return true;
}
