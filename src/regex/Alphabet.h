//===- regex/Alphabet.h - Alphabet classes and class automata ---*- C++ -*-===//
//
// Part of the APT project; see Dfa.h for the classic per-symbol pipeline
// this module compresses.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alphabet equivalence-class compression for the language engine.
///
/// The classic pipeline (Dfa.h) runs subset construction and products over
/// the raw per-query union alphabet, so an axiom like
/// `(rows|nrowH|relem|ncolE|nrowE)+` pays for five symbol columns that its
/// automaton never tells apart. An AlphabetPartition groups the symbols of
/// one expression into *equivalence classes* — two fields land in the same
/// class exactly when they label the same set of NFA edges, so no word can
/// distinguish them — plus one dedicated *other* class standing for every
/// field the expression does not mention at all.
///
/// A ClassDfa is a complete DFA whose transition table is indexed by class
/// rather than by symbol. Because the other class absorbs the rest of the
/// field universe, a ClassDfa is alphabet-independent: it answers
/// membership for arbitrary words, and the same automaton is reusable for
/// every query its regex appears in — which is what makes the interned
/// store in Minimize.h possible. The per-query pairing of two class
/// alphabets lives in LangOps.cpp (on-the-fly product emptiness).
///
//===----------------------------------------------------------------------===//

#ifndef APT_REGEX_ALPHABET_H
#define APT_REGEX_ALPHABET_H

#include "regex/Nfa.h"
#include "regex/Regex.h"

#include <cstdint>
#include <vector>

namespace apt {

/// A partition of the field universe as seen by one expression: its own
/// symbols, grouped into indistinguishability classes, plus the implicit
/// "other" class covering every field it never mentions.
struct AlphabetPartition {
  /// The expression's own symbols; sorted, unique.
  std::vector<FieldId> Fields;
  /// Class of Fields[i]; parallel to Fields. Class ids are dense,
  /// 0 .. NumClasses-1, with OtherClass last.
  std::vector<uint32_t> ClassOfField;
  /// A representative field per class, used to spell out witness words.
  /// The other class has no member field; its slot holds kNoRepField.
  std::vector<FieldId> ClassRep;
  /// Total class count, including the other class.
  uint32_t NumClasses = 1;
  /// The class of every field not in Fields. Always present, always last.
  uint32_t OtherClass = 0;

  static constexpr FieldId kNoRepField = ~FieldId(0);

  /// Class of \p F: binary search over Fields, misses map to OtherClass.
  uint32_t classOf(FieldId F) const;

  /// Partition of \p N's labels. With \p Compress, fields sharing the
  /// exact same NFA edge set collapse into one class; without it every
  /// field keeps its own class (the other class exists either way).
  static AlphabetPartition build(const Nfa &N, bool Compress);
};

/// A complete DFA whose transitions are indexed by alphabet class. Always
/// has a non-accepting absorbing sink reachable via the other class, so it
/// decides membership for words over the whole field universe, not just
/// over its own symbols.
class ClassDfa {
public:
  /// Compiles \p R via its Thompson NFA, running subset construction over
  /// classes instead of raw symbols. \p BitParallel selects the
  /// word-parallel kernel (Subset.h); false runs the classic sorted-vector
  /// construction kept as the differential-test reference. Both produce
  /// the identical automaton (same state numbering).
  static ClassDfa build(const Regex &R, bool Compress,
                        bool BitParallel = true);

  const AlphabetPartition &partition() const { return Part; }
  size_t numStates() const { return Accepting.size(); }
  size_t numClasses() const { return Part.NumClasses; }
  uint32_t start() const { return Start; }
  /// The dead state (non-accepting, absorbing). Every ClassDfa has one:
  /// the other class leads there from everywhere.
  uint32_t sink() const { return Sink; }
  bool isAccepting(uint32_t State) const { return Accepting[State]; }

  uint32_t step(uint32_t State, uint32_t Class) const {
    return Transitions[State * Part.NumClasses + Class];
  }

  /// Raw row-major [state][class] transition table; lets minimization
  /// feed Hopcroft without copying the table entry by entry.
  const uint32_t *transitionsData() const { return Transitions.data(); }
  const std::vector<bool> &acceptingStates() const { return Accepting; }

  /// True if the automaton accepts \p W; fields outside the partition run
  /// through the other class (and therefore into the sink).
  bool accepts(const Word &W) const;

  /// True if no accepting state exists (states are reachable by
  /// construction, so this is a scan, not a search).
  bool languageEmpty() const;

  /// Construction from raw parts, used by minimization.
  ClassDfa(AlphabetPartition P, std::vector<uint32_t> Transitions,
           std::vector<bool> Accepting, uint32_t Start, uint32_t Sink)
      : Part(std::move(P)), Transitions(std::move(Transitions)),
        Accepting(std::move(Accepting)), Start(Start), Sink(Sink) {}

private:
  ClassDfa() = default;

  AlphabetPartition Part;
  std::vector<uint32_t> Transitions; ///< Row-major [state][class].
  std::vector<bool> Accepting;
  uint32_t Start = 0;
  uint32_t Sink = 0;
};

} // namespace apt

#endif // APT_REGEX_ALPHABET_H
