//===- regex/RegexParser.cpp ----------------------------------------------===//
//
// Part of the APT project; see RegexParser.h for the grammar.
//
//===----------------------------------------------------------------------===//

#include "regex/RegexParser.h"

#include <cctype>

using namespace apt;

namespace {

/// Recursive-descent parser over a flat character buffer.
///
/// In compact mode every alphanumeric character is a one-letter field; in
/// normal mode identifiers are maximal [A-Za-z_][A-Za-z0-9_]* runs with the
/// reserved words `eps` and `never`.
class Parser {
public:
  Parser(std::string_view Text, FieldTable &Fields, bool Compact)
      : Text(Text), Fields(Fields), Compact(Compact) {}

  RegexParseResult run() {
    RegexRef R = parseAlt();
    if (!R)
      return fail();
    skipSpace();
    if (Pos != Text.size())
      return error("unexpected character '" + std::string(1, Text[Pos]) +
                   "'");
    RegexParseResult Out;
    Out.Value = std::move(R);
    return Out;
  }

private:
  std::string_view Text;
  FieldTable &Fields;
  bool Compact;
  size_t Pos = 0;
  std::string Err;
  size_t ErrPos = 0;

  RegexParseResult fail() {
    RegexParseResult Out;
    Out.Error = Err.empty() ? "parse error" : Err;
    Out.ErrorOffset = ErrPos;
    return Out;
  }

  RegexParseResult error(std::string Message) {
    Err = std::move(Message);
    ErrPos = Pos;
    return fail();
  }

  RegexRef setError(std::string Message) {
    if (Err.empty()) {
      Err = std::move(Message);
      ErrPos = Pos;
    }
    return nullptr;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool peekIs(char C) {
    skipSpace();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool consume(char C) {
    if (!peekIs(C))
      return false;
    ++Pos;
    return true;
  }

  /// True if an atom can start at the current position (used to detect
  /// juxtaposition-style concatenation).
  bool atAtomStart() {
    skipSpace();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    return C == '(' || std::isalpha(static_cast<unsigned char>(C)) ||
           C == '_';
  }

  RegexRef parseAlt() {
    RegexRef Lhs = parseCat();
    if (!Lhs)
      return nullptr;
    std::vector<RegexRef> Parts{Lhs};
    while (consume('|')) {
      RegexRef Rhs = parseCat();
      if (!Rhs)
        return nullptr;
      Parts.push_back(std::move(Rhs));
    }
    return Regex::alt(std::move(Parts));
  }

  RegexRef parseCat() {
    RegexRef First = parsePostfix();
    if (!First)
      return nullptr;
    std::vector<RegexRef> Parts{First};
    for (;;) {
      bool Dot = consume('.');
      if (!Dot && !atAtomStart())
        break;
      RegexRef Next = parsePostfix();
      if (!Next)
        return nullptr;
      Parts.push_back(std::move(Next));
    }
    return Regex::concat(std::move(Parts));
  }

  RegexRef parsePostfix() {
    RegexRef R = parseAtom();
    if (!R)
      return nullptr;
    for (;;) {
      if (consume('*')) {
        R = Regex::star(std::move(R));
        continue;
      }
      if (consume('+')) {
        R = Regex::plus(std::move(R));
        continue;
      }
      if (consume('?')) {
        R = Regex::optional(std::move(R));
        continue;
      }
      return R;
    }
  }

  RegexRef parseAtom() {
    skipSpace();
    if (Pos >= Text.size())
      return setError("expected a field name, 'eps', 'never' or '('");
    if (consume('(')) {
      RegexRef Inner = parseAlt();
      if (!Inner)
        return nullptr;
      if (!consume(')'))
        return setError("expected ')'");
      return Inner;
    }
    char C = Text[Pos];
    if (!std::isalpha(static_cast<unsigned char>(C)) && C != '_')
      return setError("expected a field name, 'eps', 'never' or '('");
    if (Compact) {
      ++Pos;
      return Regex::symbol(Fields.intern(std::string_view(&C, 1)));
    }
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    std::string_view Name = Text.substr(Start, Pos - Start);
    if (Name == "eps")
      return Regex::epsilon();
    if (Name == "never")
      return Regex::empty();
    return Regex::symbol(Fields.intern(Name));
  }
};

} // namespace

RegexParseResult apt::parseRegex(std::string_view Text, FieldTable &Fields) {
  return Parser(Text, Fields, /*Compact=*/false).run();
}

RegexParseResult apt::parseCompactRegex(std::string_view Text,
                                        FieldTable &Fields) {
  return Parser(Text, Fields, /*Compact=*/true).run();
}
