//===- regex/Nfa.cpp ------------------------------------------------------===//
//
// Part of the APT project; see Nfa.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "regex/Nfa.h"

#include <algorithm>
#include <cassert>

using namespace apt;

namespace {

/// Incremental Thompson builder; returns (entry, exit) state pairs.
class Builder {
public:
  explicit Builder(Nfa &Out) : Out(Out) {}

  std::pair<uint32_t, uint32_t> build(const Regex &R) {
    switch (R.kind()) {
    case RegexKind::Empty: {
      // Two states with no connection: nothing is accepted.
      uint32_t In = newState(), OutSt = newState();
      return {In, OutSt};
    }
    case RegexKind::Epsilon: {
      uint32_t In = newState(), OutSt = newState();
      addEps(In, OutSt);
      return {In, OutSt};
    }
    case RegexKind::Symbol: {
      uint32_t In = newState(), OutSt = newState();
      Out.States[In].Transitions.emplace_back(R.symbol(), OutSt);
      return {In, OutSt};
    }
    case RegexKind::Concat: {
      std::pair<uint32_t, uint32_t> Acc = build(*R.children().front());
      for (size_t I = 1; I < R.children().size(); ++I) {
        std::pair<uint32_t, uint32_t> Next = build(*R.children()[I]);
        addEps(Acc.second, Next.first);
        Acc.second = Next.second;
      }
      return Acc;
    }
    case RegexKind::Alt: {
      uint32_t In = newState(), OutSt = newState();
      for (const RegexRef &C : R.children()) {
        std::pair<uint32_t, uint32_t> Sub = build(*C);
        addEps(In, Sub.first);
        addEps(Sub.second, OutSt);
      }
      return {In, OutSt};
    }
    case RegexKind::Star: {
      uint32_t In = newState(), OutSt = newState();
      std::pair<uint32_t, uint32_t> Sub = build(*R.child());
      addEps(In, Sub.first);
      addEps(Sub.second, OutSt);
      addEps(In, OutSt);
      addEps(Sub.second, Sub.first);
      return {In, OutSt};
    }
    case RegexKind::Plus: {
      uint32_t In = newState(), OutSt = newState();
      std::pair<uint32_t, uint32_t> Sub = build(*R.child());
      addEps(In, Sub.first);
      addEps(Sub.second, OutSt);
      addEps(Sub.second, Sub.first);
      return {In, OutSt};
    }
    }
    assert(false && "unknown regex kind");
    return {0, 0};
  }

private:
  Nfa &Out;

  uint32_t newState() {
    Out.States.emplace_back();
    return static_cast<uint32_t>(Out.States.size() - 1);
  }

  void addEps(uint32_t From, uint32_t To) {
    Out.States[From].EpsilonMoves.push_back(To);
  }
};

} // namespace

Nfa Nfa::build(const Regex &R) {
  Nfa Out;
  Builder B(Out);
  std::pair<uint32_t, uint32_t> Ends = B.build(R);
  Out.Start = Ends.first;
  Out.Accept = Ends.second;
  return Out;
}

void Nfa::epsilonClosure(std::vector<uint32_t> &Seed) const {
  std::vector<uint32_t> Stack(Seed);
  std::vector<bool> Seen(States.size(), false);
  for (uint32_t S : Seed)
    Seen[S] = true;
  while (!Stack.empty()) {
    uint32_t S = Stack.back();
    Stack.pop_back();
    for (uint32_t T : States[S].EpsilonMoves) {
      if (Seen[T])
        continue;
      Seen[T] = true;
      Seed.push_back(T);
      Stack.push_back(T);
    }
  }
  std::sort(Seed.begin(), Seed.end());
  Seed.erase(std::unique(Seed.begin(), Seed.end()), Seed.end());
}
