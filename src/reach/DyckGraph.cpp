//===- reach/DyckGraph.cpp - Dyck-reachability saturation -----------------===//
//
// Part of the APT project; see DyckGraph.h for the relation computed here.
//
//===----------------------------------------------------------------------===//

#include "reach/DyckGraph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

namespace apt {

DyckGraph::NodeId DyckGraph::find(NodeId N) const {
  // Iterative find with path halving.
  while (Parent[N] != N) {
    Parent[N] = Parent[Parent[N]];
    N = Parent[N];
  }
  return N;
}

void DyckGraph::unite(NodeId A, NodeId B,
                      std::vector<std::pair<NodeId, NodeId>> &WL) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  if (Rank[A] < Rank[B])
    std::swap(A, B);
  if (Rank[A] == Rank[B])
    ++Rank[A];
  Parent[B] = A;
  ++Merges;
  // Merge B's canonical parents into A's: a field present on both sides
  // yields a congruence pair (two parents of one class via one field).
  auto &Into = ParentVia[A];
  for (const auto &[F, P] : ParentVia[B]) {
    auto It = std::lower_bound(
        Into.begin(), Into.end(), std::make_pair(F, NodeId(0)),
        [](const auto &L, const auto &R) { return L.first < R.first; });
    if (It != Into.end() && It->first == F)
      WL.emplace_back(It->second, P);
    else
      Into.insert(It, {F, P});
  }
  ParentVia[B].clear();
  ParentVia[B].shrink_to_fit();
}

DyckGraph::DyckGraph(const HeapGraph &G) {
  const size_t N = G.numNodes();
  Parent.resize(N);
  Rank.assign(N, 0);
  ParentVia.assign(N, {});
  for (NodeId I = 0; I < N; ++I)
    Parent[I] = I;

  // Seed: register every edge u.f = x as "u is a parent of class(x) via f".
  // Registering a second parent via the same field fires the match rule.
  std::vector<std::pair<NodeId, NodeId>> WL;
  for (NodeId U = 0; U < N; ++U) {
    for (const auto &[F, X] : G.out(U)) {
      NodeId R = find(X);
      auto &Slots = ParentVia[R];
      auto It = std::lower_bound(
          Slots.begin(), Slots.end(), std::make_pair(F, NodeId(0)),
          [](const auto &L, const auto &Rt) { return L.first < Rt.first; });
      if (It != Slots.end() && It->first == F)
        WL.emplace_back(It->second, U);
      else
        Slots.insert(It, {F, U});
    }
  }

  // Saturate: each pending pair is two parents of one class via one field.
  while (!WL.empty()) {
    auto [A, B] = WL.back();
    WL.pop_back();
    unite(A, B, WL);
  }
}

DyckGraph::NodeId DyckGraph::classOf(NodeId N) const { return find(N); }

bool DyckGraph::mayShare(NodeId U, NodeId V) const {
  return find(U) == find(V);
}

size_t DyckGraph::numClasses() const {
  size_t Count = 0;
  for (NodeId I = 0; I < Parent.size(); ++I)
    if (find(I) == I)
      ++Count;
  return Count;
}

std::optional<Word> DyckGraph::commonDescendantWitness(const HeapGraph &G,
                                                       NodeId U, NodeId V) {
  // Product BFS over node pairs: from (U, V), step both sides along the
  // same field; any diagonal (n, n) yields the (shortest) witness word.
  // The parent map reconstructs the word.
  struct Step {
    NodeId FromU, FromV;
    FieldId Via;
  };
  auto Key = [](NodeId A, NodeId B) {
    return (uint64_t(A) << 32) | uint64_t(B);
  };
  std::unordered_map<uint64_t, Step> Seen;
  std::deque<std::pair<NodeId, NodeId>> Queue;
  Seen.emplace(Key(U, V), Step{U, V, 0});
  Queue.emplace_back(U, V);
  while (!Queue.empty()) {
    auto [A, B] = Queue.front();
    Queue.pop_front();
    if (A == B) {
      Word W;
      NodeId CA = A, CB = B;
      while (!(CA == U && CB == V)) {
        const Step &S = Seen.at(Key(CA, CB));
        W.push_back(S.Via);
        CA = S.FromU;
        CB = S.FromV;
      }
      std::reverse(W.begin(), W.end());
      return W;
    }
    const auto &OutA = G.out(A);
    const auto &OutB = G.out(B);
    // Both maps are sorted by field; intersect them.
    auto IA = OutA.begin();
    auto IB = OutB.begin();
    while (IA != OutA.end() && IB != OutB.end()) {
      if (IA->first < IB->first) {
        ++IA;
      } else if (IB->first < IA->first) {
        ++IB;
      } else {
        uint64_t K = Key(IA->second, IB->second);
        if (Seen.emplace(K, Step{A, B, IA->first}).second)
          Queue.emplace_back(IA->second, IB->second);
        ++IA;
        ++IB;
      }
    }
  }
  return std::nullopt;
}

} // namespace apt
