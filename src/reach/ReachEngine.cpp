//===- reach/ReachEngine.cpp - Model-based reachability engine ------------===//
//
// Part of the APT project; see ReachEngine.h for the contract.
//
//===----------------------------------------------------------------------===//

#include "reach/ReachEngine.h"

#include "core/Prover.h"
#include "graph/AxiomChecker.h"
#include "graph/GraphBuilders.h"
#include "regex/Dfa.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <random>
#include <set>
#include <unordered_map>

using namespace apt;

const char *apt::reachVerdictName(ReachVerdict V) {
  switch (V) {
  case ReachVerdict::Independent:
    return "independent";
  case ReachVerdict::Overlap:
    return "overlap";
  }
  return "";
}

ReachEngine::ReachEngine(const FieldTable &Fields, ReachOptions Opts)
    : Fields(Fields), Opts(Opts) {}

std::vector<FieldId>
ReachEngine::queryAlphabet(const AxiomSet &Axioms, const RegexRef &P,
                           const RegexRef &Q) const {
  std::set<FieldId> Syms;
  for (const Axiom &A : Axioms.axioms()) {
    A.Lhs->collectSymbols(Syms);
    A.Rhs->collectSymbols(Syms);
  }
  P->collectSymbols(Syms);
  Q->collectSymbols(Syms);
  return {Syms.begin(), Syms.end()};
}

ReachEngine::Pool &ReachEngine::poolFor(const AxiomSet &Axioms,
                                        const std::vector<FieldId> &Alphabet) {
  std::string Key = std::to_string(Prover::axiomSetFingerprint(Axioms));
  for (FieldId F : Alphabet) {
    Key += '.';
    Key += std::to_string(F);
  }
  auto It = Pools.find(Key);
  if (It != Pools.end())
    return It->second;

  Pool P;
  P.Alphabet = Alphabet;
  auto Keep = [&](const HeapGraph &G) {
    if (!checkAxioms(G, Axioms, Fields))
      P.Models.push_back(Model{G, nullptr});
    return true;
  };
  // Exhaustive sweep of the tiny models, bounded by (N+1)^(N*|A|) growth.
  const size_t A = Alphabet.size();
  for (size_t N = 1; N <= 2; ++N) {
    double Configs = 1.0;
    for (size_t I = 0; I < N * A; ++I)
      Configs *= double(N + 1);
    if (Configs <= double(Opts.ExhaustiveBudget))
      enumerateHeapGraphs(Alphabet, N, Keep);
  }
  // Deterministic pseudo-random larger models, axiom-filtered.
  std::mt19937 Rng(Opts.Seed ^ uint32_t(Prover::axiomSetFingerprint(Axioms)));
  size_t KeptRandom = 0;
  for (size_t Try = 0; Try < Opts.RandomModels * 16 && !Alphabet.empty() &&
                       KeptRandom < Opts.RandomModels;
       ++Try) {
    HeapGraph G;
    for (size_t I = 0; I < Opts.RandomNodes; ++I)
      G.addNode();
    for (HeapGraph::NodeId N = 0; N < G.numNodes(); ++N)
      for (FieldId F : Alphabet)
        if (Rng() % 2)
          G.setField(N, F, Rng() % uint32_t(G.numNodes()));
    if (!checkAxioms(G, Axioms, Fields)) {
      P.Models.push_back(Model{std::move(G), nullptr});
      ++KeptRandom;
    }
  }
  ++Stats.Pools;
  Stats.ModelsBuilt += P.Models.size();
  return Pools.emplace(std::move(Key), std::move(P)).first->second;
}

std::vector<Word>
ReachEngine::sampleWords(const RegexRef &R,
                         const std::vector<FieldId> &Alphabet) const {
  std::vector<Word> Out;
  if (R->isEmpty())
    return Out;
  Dfa D = Dfa::fromRegex(*R, Alphabet);
  // Shortest-first BFS over DFA states; each state may be re-entered a few
  // times so that pumped variants of looping languages are sampled too.
  std::vector<uint8_t> Entered(D.numStates(), 0);
  std::deque<std::pair<uint32_t, Word>> Queue;
  Queue.emplace_back(D.start(), Word{});
  Entered[D.start()] = 1;
  while (!Queue.empty() && Out.size() < Opts.WordsPerLanguage) {
    auto [State, W] = Queue.front();
    Queue.pop_front();
    if (D.isAccepting(State))
      Out.push_back(W);
    if (W.size() >= Opts.MaxWordLength)
      continue;
    for (size_t SI = 0; SI < Alphabet.size(); ++SI) {
      uint32_t Next = D.step(State, SI);
      if (Entered[Next] >= 3)
        continue;
      ++Entered[Next];
      Word W2 = W;
      W2.push_back(Alphabet[SI]);
      Queue.emplace_back(Next, std::move(W2));
    }
  }
  return Out;
}

HeapGraph ReachEngine::realizeWordPair(const Word &P, const Word &Q,
                                       bool IdentifyEnds,
                                       HeapGraph::NodeId &AnchorOut) {
  // Positions 0..|P| belong to P's chain, |P|+1..|P|+1+|Q| to Q's. Unify
  // the two position-0 anchors (and, for converging candidates, the two
  // endpoints), then close under the functional-field congruence: equal
  // classes stepping the same field have equal targets. The quotient is
  // always a well-formed heap graph realizing both words.
  const size_t NP = P.size(), NQ = Q.size();
  const size_t NumPos = NP + NQ + 2;
  std::vector<size_t> UF(NumPos);
  for (size_t I = 0; I < NumPos; ++I)
    UF[I] = I;
  std::function<size_t(size_t)> Find = [&](size_t X) {
    while (UF[X] != X) {
      UF[X] = UF[UF[X]];
      X = UF[X];
    }
    return X;
  };
  auto Union = [&](size_t X, size_t Y) { UF[Find(X)] = Find(Y); };
  auto PosP = [](size_t I) { return I; };
  auto PosQ = [NP](size_t J) { return NP + 1 + J; };

  Union(PosP(0), PosQ(0));
  if (IdentifyEnds)
    Union(PosP(NP), PosQ(NQ));

  struct Edge {
    size_t From, To;
    FieldId F;
  };
  std::vector<Edge> Edges;
  for (size_t I = 0; I < NP; ++I)
    Edges.push_back({PosP(I), PosP(I + 1), P[I]});
  for (size_t J = 0; J < NQ; ++J)
    Edges.push_back({PosQ(J), PosQ(J + 1), Q[J]});

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Edges.size(); ++I)
      for (size_t J = I + 1; J < Edges.size(); ++J)
        if (Edges[I].F == Edges[J].F &&
            Find(Edges[I].From) == Find(Edges[J].From) &&
            Find(Edges[I].To) != Find(Edges[J].To)) {
          Union(Edges[I].To, Edges[J].To);
          Changed = true;
        }
  }

  HeapGraph G;
  std::unordered_map<size_t, HeapGraph::NodeId> ClassNode;
  auto NodeOf = [&](size_t Pos) {
    size_t Root = Find(Pos);
    auto It = ClassNode.find(Root);
    if (It != ClassNode.end())
      return It->second;
    HeapGraph::NodeId N = G.addNode();
    ClassNode.emplace(Root, N);
    return N;
  };
  AnchorOut = NodeOf(PosP(0));
  for (const Edge &E : Edges)
    G.setField(NodeOf(E.From), E.F, NodeOf(E.To));
  return G;
}

bool ReachEngine::overlapInModel(const Model &M, const RegexRef &P,
                                 const RegexRef &Q,
                                 const std::vector<FieldId> &Alphabet,
                                 ReachWitness &Witness) const {
  if (M.G.numNodes() == 0 || M.G.numNodes() > 64)
    return false;
  Dfa DP = Dfa::fromRegex(*P, Alphabet);
  Dfa DQ = Dfa::fromRegex(*Q, Alphabet);

  // Per-anchor product BFS of graph x DFA with parent pointers, so a hit
  // reconstructs the witness word. EvalMask is the exact evaluation; the
  // Dyck class mask is the whole-graph summary filter in front of it (a
  // shared vertex forces intersecting class masks, never the converse).
  struct Parent {
    uint32_t PrevNode, PrevState;
    FieldId Via;
    bool HasPrev;
  };
  auto Eval = [&](const Dfa &D, HeapGraph::NodeId Anchor, uint64_t &EvalMask,
                  uint64_t &ClassMask,
                  std::unordered_map<uint64_t, Parent> &Parents,
                  std::unordered_map<uint32_t, uint32_t> &AcceptState) {
    auto Key = [](uint32_t Node, uint32_t State) {
      return (uint64_t(Node) << 32) | uint64_t(State);
    };
    EvalMask = 0;
    ClassMask = 0;
    std::deque<std::pair<uint32_t, uint32_t>> Queue;
    Parents.emplace(Key(Anchor, D.start()), Parent{0, 0, 0, false});
    Queue.emplace_back(Anchor, D.start());
    while (!Queue.empty()) {
      auto [Node, State] = Queue.front();
      Queue.pop_front();
      if (D.isAccepting(State)) {
        if (!(EvalMask & (uint64_t(1) << Node))) {
          EvalMask |= uint64_t(1) << Node;
          ClassMask |= uint64_t(1) << M.Dyck->classOf(Node);
          AcceptState.emplace(Node, State);
        }
      }
      for (const auto &[F, Next] : M.G.out(Node)) {
        int SI = D.alphabetIndex(F);
        if (SI < 0)
          continue;
        uint32_t NS = D.step(State, size_t(SI));
        if (Parents
                .emplace(Key(Next, NS), Parent{Node, State, F, true})
                .second)
          Queue.emplace_back(Next, NS);
      }
    }
  };
  auto WordTo = [&](uint32_t Node, uint32_t State,
                    std::unordered_map<uint64_t, Parent> &Parents) {
    Word W;
    uint32_t N = Node, S = State;
    for (;;) {
      const Parent &Pa = Parents.at((uint64_t(N) << 32) | uint64_t(S));
      if (!Pa.HasPrev)
        break;
      W.push_back(Pa.Via);
      N = Pa.PrevNode;
      S = Pa.PrevState;
    }
    std::reverse(W.begin(), W.end());
    return W;
  };

  for (HeapGraph::NodeId Anchor = 0; Anchor < M.G.numNodes(); ++Anchor) {
    uint64_t MaskP, MaskQ, ClassP, ClassQ;
    std::unordered_map<uint64_t, Parent> ParP, ParQ;
    std::unordered_map<uint32_t, uint32_t> AccP, AccQ;
    Eval(DP, Anchor, MaskP, ClassP, ParP, AccP);
    if (!MaskP)
      continue;
    Eval(DQ, Anchor, MaskQ, ClassQ, ParQ, AccQ);
    if (!(ClassP & ClassQ))
      continue; // Dyck summary refutes sharing at this anchor.
    uint64_t Shared = MaskP & MaskQ;
    if (!Shared)
      continue;
    uint32_t V = uint32_t(__builtin_ctzll(Shared));
    Witness.Model = M.G;
    Witness.Anchor = Anchor;
    Witness.Vertex = V;
    Witness.PathS = WordTo(V, AccP.at(V), ParP);
    Witness.PathT = WordTo(V, AccQ.at(V), ParQ);
    return true;
  }
  return false;
}

ReachAnswer ReachEngine::answer(const AxiomSet &Axioms, const RegexRef &P,
                                const RegexRef &Q) {
  ++Stats.Answers;
  ReachAnswer Ans;
  std::vector<FieldId> Alphabet = queryAlphabet(Axioms, P, Q);
  Pool &ThePool = poolFor(Axioms, Alphabet);

  auto WP = P->singletonWord();
  auto WQ = Q->singletonWord();
  if (!WP || !WQ) {
    // proveEqualPaths only ever succeeds on two singleton-word languages.
    Ans.NotAlwaysEqual = true;
  } else if (*WP != *WQ) {
    // Diverging countermodel: realize both words without identifying the
    // endpoints; if the quotient satisfies the axioms and the endpoints
    // stayed apart, the words provably do not always denote one vertex.
    HeapGraph::NodeId Anchor = 0;
    HeapGraph G = realizeWordPair(*WP, *WQ, /*IdentifyEnds=*/false, Anchor);
    ++Ans.ModelsChecked;
    if (!checkAxioms(G, Axioms, Fields)) {
      auto EndP = G.walk(Anchor, *WP);
      auto EndQ = G.walk(Anchor, *WQ);
      if (EndP && EndQ && *EndP != *EndQ)
        Ans.NotAlwaysEqual = true;
    }
  }

  // Overlap scan, pool first: the exhaustive tiny models plus the random
  // ones, each evaluated exactly (with the Dyck summary pre-filter).
  for (Model &M : ThePool.Models) {
    if (!M.Dyck)
      M.Dyck = std::make_unique<DyckGraph>(M.G);
    ++Ans.ModelsChecked;
    ReachWitness W;
    if (overlapInModel(M, P, Q, Alphabet, W)) {
      Ans.Verdict = ReachVerdict::Overlap;
      Ans.Witness = std::move(W);
      if (!Ans.NotAlwaysEqual && WP && WQ && *WP != *WQ) {
        // A pool model may also refute equality; reuse this one if so.
        auto EndP = Ans.Witness->Model.walk(Ans.Witness->Anchor, *WP);
        auto EndQ = Ans.Witness->Model.walk(Ans.Witness->Anchor, *WQ);
        if (EndP && EndQ && *EndP != *EndQ)
          Ans.NotAlwaysEqual = true;
      }
      ++Stats.Overlaps;
      return Ans;
    }
  }

  // Targeted synthesis: converge a sampled word of L(P) with one of L(Q)
  // at a shared endpoint and keep the quotient when the axioms certify it.
  std::vector<Word> WordsP = sampleWords(P, Alphabet);
  std::vector<Word> WordsQ = sampleWords(Q, Alphabet);
  for (const Word &A : WordsP) {
    for (const Word &B : WordsQ) {
      HeapGraph::NodeId Anchor = 0;
      HeapGraph G = realizeWordPair(A, B, /*IdentifyEnds=*/true, Anchor);
      ++Ans.ModelsChecked;
      if (checkAxioms(G, Axioms, Fields))
        continue;
      auto V = G.walk(Anchor, A);
      if (!V || G.walk(Anchor, B) != V)
        continue; // Quotient collapsed differently; not a witness.
      ReachWitness W;
      W.Model = std::move(G);
      W.Anchor = Anchor;
      W.PathS = A;
      W.PathT = B;
      W.Vertex = *V;
      Ans.Verdict = ReachVerdict::Overlap;
      Ans.Witness = std::move(W);
      ++Stats.Overlaps;
      return Ans;
    }
  }
  return Ans;
}

std::optional<DepTestResult> ReachEngine::prepass(const AxiomSet &Axioms,
                                                  const MemRef &S,
                                                  const MemRef &T) {
  // Mirror dependenceTest's screening cascade exactly; any screen that
  // would fire there produces its verdict on the prover path anyway, so
  // the pre-pass only claims pairs that reach the proof obligations.
  DepKind Kind = DepKind::None;
  if (S.IsWrite && T.IsWrite)
    Kind = DepKind::Output;
  else if (S.IsWrite)
    Kind = DepKind::Flow;
  else if (T.IsWrite)
    Kind = DepKind::Anti;
  if (Kind == DepKind::None || S.TypeName != T.TypeName ||
      S.Field != T.Field || S.Path.Handle != T.Path.Handle) {
    ++Stats.PrepassMiss;
    return std::nullopt;
  }

  auto WP = S.Path.Path->singletonWord();
  auto WQ = T.Path.Path->singletonWord();
  if (WP && WQ && *WP == *WQ) {
    // proveEqualPaths answers identical singleton words unconditionally.
    ++Stats.PrepassYes;
    DepTestResult R;
    R.Verdict = DepVerdict::Yes;
    R.Kind = Kind;
    R.Reason = "paths provably denote the same vertex";
    return R;
  }

  ReachAnswer A = answer(Axioms, S.Path.Path, T.Path.Path);
  if (A.Verdict == ReachVerdict::Overlap && A.NotAlwaysEqual) {
    // A satisfying model overlaps the paths (so a sound proveDisj must
    // fail) and equality is refuted (so proveEqualPaths must fail): the
    // prover's answer is the fall-through Maybe, byte for byte.
    ++Stats.PrepassMaybe;
    DepTestResult R;
    R.Verdict = DepVerdict::Maybe;
    R.Kind = Kind;
    R.Reason = "no proof of independence found";
    return R;
  }
  ++Stats.PrepassMiss;
  return std::nullopt;
}
