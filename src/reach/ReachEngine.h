//===- reach/ReachEngine.h - Model-based reachability engine ----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third dependence engine: instead of proving per-pair theorems from
/// axioms (the derivative prover) it decides sharing questions over
/// *concrete heap models* that satisfy the axiom set, using whole-graph
/// Dyck-reachability summaries (DyckGraph) plus exact DFA-product
/// evaluation with witness reconstruction.
///
/// Per axiom-set fingerprint the engine materializes a pool of satisfying
/// bounded models once — an exhaustive sweep of all one- and two-node
/// graphs over the alphabet (when the sweep fits a budget) plus
/// deterministic pseudo-random larger graphs — and per query synthesizes
/// *targeted* models: the congruence-closed realization of a candidate
/// word pair, converging (for overlap witnesses) or diverging (for
/// equality countermodels). Every model is certified by AxiomChecker
/// before it is consulted, so a positive answer always carries a
/// replayable witness: a satisfying model, an anchor, and two words the
/// caller can re-walk with HeapGraph::walk and re-accept with Dfa.
///
/// Verdicts are asymmetric by design:
///
///  * Overlap    — witnessed: some satisfying model and anchor realize the
///                 two path languages at a common vertex. Sound against the
///                 prover: a sound proveDisj can never prove such a pair
///                 disjoint (the model refutes the proof).
///  * Independent — bounded claim: *no consulted satisfying model*
///                 overlaps. Not a proof — the prover may still only say
///                 Maybe, and an APT Maybe against a reach Independent is
///                 the allowed (counted) disagreement direction.
///
/// The batch pre-pass (`AnalyzerOptions::ReachPrepass`) resolves the
/// byte-parity fragment of `dependenceTest` wholesale: identical-singleton
/// Yes verdicts and overlap-witnessed Maybe verdicts whose result records
/// are predictable to the byte. Everything else escalates to the prover
/// untouched, which is what makes `--reach-prepass on|off` verdict-parity
/// byte-exact (ctest-gated) — and makes the parity gate double as a
/// soundness cross-check of the prover itself.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REACH_REACHENGINE_H
#define APT_REACH_REACHENGINE_H

#include "core/DepTest.h"
#include "graph/HeapGraph.h"
#include "reach/DyckGraph.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace apt {

/// Tuning knobs for the model pool and the per-query synthesis.
struct ReachOptions {
  /// Enumerate all <=2-node graphs over the alphabet only when the sweep
  /// visits at most this many candidate graphs ((N+1)^(N*|A|) growth).
  size_t ExhaustiveBudget = 8192;
  /// Deterministic pseudo-random larger models kept per pool (after
  /// filtering through the axiom checker).
  size_t RandomModels = 8;
  /// Node count of the random models.
  size_t RandomNodes = 5;
  /// Candidate words enumerated per path language for targeted synthesis.
  size_t WordsPerLanguage = 6;
  /// Length cap for enumerated candidate words.
  size_t MaxWordLength = 10;
  /// Seed for the deterministic random-model generator.
  uint32_t Seed = 0x9E3779B9u;
};

/// A replayable overlap witness: in satisfying model Model, both PathS (a
/// word of S's language) and PathT (of T's) walk from Anchor to Vertex.
struct ReachWitness {
  HeapGraph Model;
  HeapGraph::NodeId Anchor = 0;
  Word PathS, PathT;
  HeapGraph::NodeId Vertex = 0;
};

/// The engine's two answers; see the file comment for their asymmetry.
enum class ReachVerdict {
  Independent, ///< Disjoint in every consulted satisfying model (bounded).
  Overlap,     ///< Witnessed overlap in a satisfying model.
};

const char *reachVerdictName(ReachVerdict V);

/// Full answer for one path-language pair.
struct ReachAnswer {
  ReachVerdict Verdict = ReachVerdict::Independent;
  std::optional<ReachWitness> Witness; ///< Set iff Verdict == Overlap.
  /// True when the engine can certify proveEqualPaths must fail: the
  /// languages are not both singleton words, or a satisfying countermodel
  /// walks the two words to *different* defined vertices.
  bool NotAlwaysEqual = false;
  /// Models consulted (pool + synthesized) while answering.
  size_t ModelsChecked = 0;
};

/// Running statistics, cumulative over the engine's lifetime.
struct ReachStats {
  uint64_t Pools = 0;        ///< Model pools materialized (per fingerprint).
  uint64_t ModelsBuilt = 0;  ///< Satisfying models kept across all pools.
  uint64_t Answers = 0;      ///< answer() calls.
  uint64_t Overlaps = 0;     ///< ... that returned Overlap.
  uint64_t PrepassYes = 0;   ///< prepass() identical-singleton Yes claims.
  uint64_t PrepassMaybe = 0; ///< prepass() overlap-witnessed Maybe claims.
  uint64_t PrepassMiss = 0;  ///< prepass() escalations.
};

/// The reachability engine. Not thread-safe; the batch engine consults it
/// from its sequential prepare phase only, which also keeps the pre-pass
/// jobs-invariant by construction.
class ReachEngine {
public:
  explicit ReachEngine(const FieldTable &Fields, ReachOptions Opts = {});

  /// Decides the sharing question for two path languages anchored at a
  /// common (universally quantified) vertex under \p Axioms.
  ReachAnswer answer(const AxiomSet &Axioms, const RegexRef &P,
                     const RegexRef &Q);

  /// The batch pre-pass fragment: returns the exact DepTestResult that
  /// `dependenceTest(Axioms, S, T, Prover)` would produce, byte for byte,
  /// when the pair falls in the engine's decidable fragment; std::nullopt
  /// escalates the pair to the prover unchanged.
  std::optional<DepTestResult> prepass(const AxiomSet &Axioms, const MemRef &S,
                                       const MemRef &T);

  /// Dyck-reachability summary of an arbitrary concrete graph (used by the
  /// `aptc reach` subcommand); thin veneer over DyckGraph so callers need
  /// only this header.
  static DyckGraph summarize(const HeapGraph &G) { return DyckGraph(G); }

  const ReachStats &stats() const { return Stats; }
  const FieldTable &fields() const { return Fields; }

private:
  struct Model {
    HeapGraph G;
    std::unique_ptr<DyckGraph> Dyck; ///< Built lazily per model.
  };
  struct Pool {
    std::vector<FieldId> Alphabet;
    std::vector<Model> Models;
  };

  Pool &poolFor(const AxiomSet &Axioms, const std::vector<FieldId> &Alphabet);
  /// All fields mentioned by the axioms and both query paths, sorted.
  std::vector<FieldId> queryAlphabet(const AxiomSet &Axioms, const RegexRef &P,
                                     const RegexRef &Q) const;
  /// Up to Opts.WordsPerLanguage shortest words of L(R), via BFS over the
  /// language DFA.
  std::vector<Word> sampleWords(const RegexRef &R,
                                const std::vector<FieldId> &Alphabet) const;
  /// Congruence-closed realization of two words from a shared anchor.
  /// When \p IdentifyEnds, the two endpoints are unified (a converging
  /// overlap candidate); otherwise they start in distinct classes (a
  /// diverging equality countermodel candidate). Always constructible.
  static HeapGraph realizeWordPair(const Word &P, const Word &Q,
                                   bool IdentifyEnds,
                                   HeapGraph::NodeId &AnchorOut);
  /// Searches one satisfying model for an anchor overlapping P and Q;
  /// fills Witness (with words reconstructed from the product BFS) on hit.
  bool overlapInModel(const Model &M, const RegexRef &P, const RegexRef &Q,
                      const std::vector<FieldId> &Alphabet,
                      ReachWitness &Witness) const;

  const FieldTable &Fields;
  ReachOptions Opts;
  ReachStats Stats;
  std::map<std::string, Pool> Pools; ///< Keyed by fingerprint + alphabet.
};

} // namespace apt

#endif // APT_REACH_REACHENGINE_H
