//===- reach/DyckGraph.h - Dyck-reachability over heap graphs ---*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-graph Dyck (matched-parenthesis) reachability over a concrete
/// HeapGraph, after Chatterjee/Choudhary/Pavlogiannis, "Optimal Dyck
/// Reachability for Data-Dependence and Alias Analysis" (POPL 2018).
///
/// Each pointer field f contributes an open-parenthesis edge u -(f-> x for
/// the store u.f = x and, in the bidirected view, the matching close edge
/// x -)f-> u. Two nodes u, v are *Dyck-related*, written D(u, v), when some
/// walk from u to v spells a balanced string over these parentheses. On a
/// bidirected graph D is the least equivalence relation closed under the
/// per-field match rule
///
///     u.f = x  and  v.f = y  and  D(x, y)   ==>   D(u, v)
///
/// i.e. parents of Dyck-related children via the same field are themselves
/// Dyck-related. The saturation below computes D for *all* node pairs in
/// one pass (near-linear time: union-find plus one canonical parent per
/// (class, field) — congruence closure run upward), which is what makes the
/// engine a batcher: a whole statement-pair matrix is answered by one
/// traversal instead of one prover call per pair.
///
/// Soundness scope (see docs/REACHABILITY.md for the proofs):
///
///  * Let R(u, v) hold when some single word w has walk(u, w) == walk(v, w)
///    (a common descendant reached by the *same* field word — the relation
///    dependence cares about when two access paths hang off u and v). Then
///    R is a subset of D: the saturation never misses a same-word merge, so
///    "not Dyck-related" soundly refutes sharing.
///  * D is strictly coarser than the transitive closure of R: chained
///    children can merge parents that share no single witness word. A
///    positive D verdict is therefore a *may*-share summary, not a witness;
///    exact per-pair answers come from the model-based evaluation layer in
///    ReachEngine, which uses D classes as its summary filter.
///
//===----------------------------------------------------------------------===//

#ifndef APT_REACH_DYCKGRAPH_H
#define APT_REACH_DYCKGRAPH_H

#include "graph/HeapGraph.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace apt {

/// Saturated Dyck-reachability summary of one HeapGraph.
///
/// Construction runs the whole-graph worklist saturation; afterwards every
/// query is O(alpha) (a union-find find). The graph must outlive nothing —
/// the summary copies what it needs and holds no reference to it.
class DyckGraph {
public:
  using NodeId = HeapGraph::NodeId;

  explicit DyckGraph(const HeapGraph &G);

  /// Representative of \p N's Dyck equivalence class.
  NodeId classOf(NodeId N) const;

  /// True when D(U, V): a balanced-parenthesis walk connects U and V, so
  /// the two nodes may reach a common vertex through matched field paths.
  /// False soundly refutes same-word sharing (R(U, V) implies mayShare).
  bool mayShare(NodeId U, NodeId V) const;

  size_t numNodes() const { return Parent.size(); }

  /// Number of Dyck equivalence classes after saturation.
  size_t numClasses() const;

  /// Number of union operations the saturation performed (statistics).
  uint64_t mergeSteps() const { return Merges; }

  /// On-demand single-source mode: decides R(U, V) exactly for one pair by
  /// a product BFS over node pairs of \p G, without consulting (or needing)
  /// the whole-graph saturation. Returns the witness word w with
  /// walk(U, w) == walk(V, w) != null, shortest first, or std::nullopt when
  /// no common same-word descendant exists. The caller replays the witness
  /// with HeapGraph::walk.
  static std::optional<Word> commonDescendantWitness(const HeapGraph &G,
                                                     NodeId U, NodeId V);

private:
  NodeId find(NodeId N) const;
  void unite(NodeId A, NodeId B, std::vector<std::pair<NodeId, NodeId>> &WL);

  // Union-find over nodes; Parent is mutable only during construction (find
  // performs path halving via a const_cast-free iterative walk).
  mutable std::vector<NodeId> Parent;
  std::vector<uint32_t> Rank;
  // Per-class canonical parent via each field: ParentVia[root] holds sorted
  // (field, parent) pairs; any second parent of the class via the same
  // field is merged into the canonical one (the congruence).
  std::vector<std::vector<std::pair<FieldId, NodeId>>> ParentVia;
  uint64_t Merges = 0;
};

} // namespace apt

#endif // APT_REACH_DYCKGRAPH_H
