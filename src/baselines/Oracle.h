//===- baselines/Oracle.h - Dependence-test baselines -----------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A common interface for the dependence tests the paper positions APT
/// against (§2), answering the core question: may the access paths x.P
/// and x.Q (same handle, same structure type, same field) denote the same
/// vertex?
///
///  * TypeBasedOracle    -- declaration-level screening only (always
///                          Maybe for same-type/field queries).
///  * KLimitedOracle     -- store-based k-limited naming (Jones-Muchnick
///                          style, §2.3): exact locations for words
///                          shorter than k, a single summary node beyond.
///  * LarusOracle        -- path-expression intersection (Larus-Hilfinger,
///                          §2.4): precise when the axioms certify the
///                          whole structure is a tree, otherwise paths are
///                          first mapped to conservative group-closure
///                          expressions (the paper's (L|R)+N+ example).
///  * AptOracle          -- the paper's contribution, wrapping Prover.
///
/// The accuracy experiment (bench/table_accuracy) runs all four over a
/// shared query suite with ground truth from concrete heap graphs.
///
//===----------------------------------------------------------------------===//

#ifndef APT_BASELINES_ORACLE_H
#define APT_BASELINES_ORACLE_H

#include "core/DepTest.h"
#include "core/Prelude.h"
#include "core/Prover.h"

#include <memory>
#include <string>

namespace apt {

/// Interface shared by APT and the baselines.
class DependenceOracle {
public:
  virtual ~DependenceOracle() = default;

  /// Short display name, e.g. "k-limited(2)".
  virtual std::string name() const = 0;

  /// May x.P and x.Q denote the same vertex of \p Info's structure?
  virtual DepVerdict mayAlias(const StructureInfo &Info, const RegexRef &P,
                              const RegexRef &Q) = 0;

  /// Loop-carried form: iteration i accesses x.Inc^i.Access; may two
  /// *different* iterations touch the same vertex? Handle-relative tests
  /// (APT, path intersection) anchor x at iteration i's position and
  /// compare Access against Inc+.Access; store-based tests override this
  /// (they cannot anchor relative to an iteration).
  virtual DepVerdict mayAliasLoopCarried(const StructureInfo &Info,
                                         const RegexRef &Access,
                                         const RegexRef &Inc) {
    return mayAlias(Info, Access,
                    Regex::concat(Regex::plus(Inc), Access));
  }
};

/// Screens only on declarations; always Maybe for same-type/field pairs
/// (identical singleton paths are still Yes).
class TypeBasedOracle : public DependenceOracle {
public:
  std::string name() const override { return "type-based"; }
  DepVerdict mayAlias(const StructureInfo &Info, const RegexRef &P,
                      const RegexRef &Q) override;
};

class HeapGraph;

/// Store-based k-limited naming (idealized): the analysis is granted a
/// perfect shape graph of the concrete heap, truncated at depth k -- heap
/// nodes within distance < k of the handle keep their identity, and
/// every deeper node collapses into a single summary node. This is the
/// most generous reading of a k-limited analysis; it still fails exactly
/// where §2.3 says: anything past the horizon, and unbounded loops.
///
/// A representative concrete structure must be installed with setModel
/// before queries (the accuracy experiments use the same model as the
/// ground-truth oracle).
class KLimitedOracle : public DependenceOracle {
public:
  explicit KLimitedOracle(size_t K) : K(K) {}
  std::string name() const override {
    return "k-limited(" + std::to_string(K) + ")";
  }

  /// Installs the concrete heap whose k-truncated shape graph names
  /// memory; \p Handle is the vertex paths are anchored at.
  void setModel(const HeapGraph *G, uint32_t Handle);

  DepVerdict mayAlias(const StructureInfo &Info, const RegexRef &P,
                      const RegexRef &Q) override;

  /// Store-based naming cannot anchor at "iteration i": it names the
  /// locations Inc^i.Access for every i, so any two iterations past the
  /// k horizon share the summary node -- "at best the dependence test
  /// will prove that only the first k iterations are independent" (§2.3).
  DepVerdict mayAliasLoopCarried(const StructureInfo &Info,
                                 const RegexRef &Access,
                                 const RegexRef &Inc) override;

private:
  size_t K;
  const HeapGraph *Model = nullptr;
  uint32_t Handle = 0;
};

/// Path-expression intersection in the style of Larus & Hilfinger:
/// precise (plain language intersection) when the axioms certify the
/// structure is globally a tree; otherwise paths are widened to
/// field-group closure expressions before intersecting.
class LarusOracle : public DependenceOracle {
public:
  std::string name() const override { return "path-intersection"; }
  DepVerdict mayAlias(const StructureInfo &Info, const RegexRef &P,
                      const RegexRef &Q) override;

  /// True if \p Info's axioms certify that every field of the structure
  /// participates in a global tree shape: pairwise same-origin
  /// distinctness, distinct-origin injectivity and acyclicity.
  static bool axiomsCertifyTree(const StructureInfo &Info);

  /// The conservative mapping: each component's fields are widened to
  /// their group's alternation, and adjacent same-group components
  /// collapse into one Kleene-plus (e.g. L.L.N -> (L|R)+.N+).
  static RegexRef conservativeMap(const StructureInfo &Info,
                                  const RegexRef &Path);
};

/// The paper's test, wrapping a Prover instance.
class AptOracle : public DependenceOracle {
public:
  explicit AptOracle(const FieldTable &Fields, ProverOptions Opts = {})
      : P(Fields, Opts) {}
  std::string name() const override { return "APT"; }
  DepVerdict mayAlias(const StructureInfo &Info, const RegexRef &P_,
                      const RegexRef &Q) override;
  Prover &prover() { return P; }

private:
  Prover P;
};

} // namespace apt

#endif // APT_BASELINES_ORACLE_H
