//===- baselines/Oracle.cpp -----------------------------------------------===//
//
// Part of the APT project; see Oracle.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "baselines/Oracle.h"

#include "graph/HeapGraph.h"
#include "regex/Dfa.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace apt;

/// Yes-screen shared by all oracles: identical singleton paths always
/// denote the same vertex.
static bool definitelySameVertex(const RegexRef &P, const RegexRef &Q) {
  std::optional<Word> WP = P->singletonWord();
  std::optional<Word> WQ = Q->singletonWord();
  return WP && WQ && *WP == *WQ;
}

//===----------------------------------------------------------------------===//
// TypeBasedOracle
//===----------------------------------------------------------------------===//

DepVerdict TypeBasedOracle::mayAlias(const StructureInfo &, const RegexRef &P,
                                     const RegexRef &Q) {
  // The oracle interface poses same-type, same-field queries, which this
  // test cannot screen out; its wins all happen at the declaration level
  // before paths are even consulted.
  if (definitelySameVertex(P, Q))
    return DepVerdict::Yes;
  return DepVerdict::Maybe;
}

//===----------------------------------------------------------------------===//
// KLimitedOracle
//===----------------------------------------------------------------------===//

void KLimitedOracle::setModel(const HeapGraph *G, uint32_t Handle_) {
  Model = G;
  Handle = Handle_;
}

namespace {

/// Abstract locations under k-limited naming on a concrete model: the
/// node ids within distance < k of the handle, plus the one summary node
/// standing for everything deeper.
struct KAbstraction {
  std::set<uint32_t> Exact;
  bool Summary = false;
};

/// BFS distances from \p Handle over all fields; UINT32_MAX = unreachable.
std::vector<uint32_t> distancesFrom(const HeapGraph &G, uint32_t Handle) {
  std::vector<uint32_t> Dist(G.numNodes(), UINT32_MAX);
  std::deque<uint32_t> Work{Handle};
  Dist[Handle] = 0;
  while (!Work.empty()) {
    uint32_t N = Work.front();
    Work.pop_front();
    for (const auto &[F, T] : G.out(N))
      if (Dist[T] == UINT32_MAX) {
        Dist[T] = Dist[N] + 1;
        Work.push_back(T);
      }
  }
  return Dist;
}

KAbstraction kAbstract(const HeapGraph &G, uint32_t Handle,
                       const std::vector<uint32_t> &Dist, size_t K,
                       const RegexRef &R) {
  KAbstraction Out;
  for (uint32_t N : G.evalRegex(Handle, R)) {
    if (Dist[N] < K)
      Out.Exact.insert(N);
    else
      Out.Summary = true;
  }
  return Out;
}

} // namespace

DepVerdict KLimitedOracle::mayAlias(const StructureInfo &, const RegexRef &P,
                                    const RegexRef &Q) {
  if (definitelySameVertex(P, Q))
    return DepVerdict::Yes;
  assert(Model && "KLimitedOracle needs a concrete model (setModel)");
  std::vector<uint32_t> Dist = distancesFrom(*Model, Handle);
  KAbstraction AP = kAbstract(*Model, Handle, Dist, K, P);
  KAbstraction AQ = kAbstract(*Model, Handle, Dist, K, Q);
  // Overlap iff an exact node is shared, or both touch the summary node
  // (all locations deeper than k have the same name).
  std::vector<uint32_t> Inter;
  std::set_intersection(AP.Exact.begin(), AP.Exact.end(), AQ.Exact.begin(),
                        AQ.Exact.end(), std::back_inserter(Inter));
  if (Inter.empty() && !(AP.Summary && AQ.Summary))
    return DepVerdict::No;
  return DepVerdict::Maybe;
}

DepVerdict KLimitedOracle::mayAliasLoopCarried(const StructureInfo &,
                                               const RegexRef &Access,
                                               const RegexRef &Inc) {
  // Iteration i touches the locations Inc^i.Access. Words of length >= K
  // all map to the summary node, so if two different iterations can both
  // produce a word at all beyond the horizon, they collide there. Since
  // |Inc^i.Access| >= i, every iteration i >= K is entirely summary;
  // with an unbounded iteration space, two such iterations always exist
  // unless the language is empty.
  if (Inc->isEmpty() || Access->isEmpty())
    return DepVerdict::No; // No accesses happen at all.
  // The iteration space is unbounded, so iterations K and K+1 both lie
  // entirely beyond the horizon and collide on the summary node; only
  // the first K iterations can ever be told apart. The per-iteration
  // abstraction is still exposed via mayAlias for bounded comparisons
  // (e.g. iteration 0 vs iteration 1).
  return DepVerdict::Maybe;
}

//===----------------------------------------------------------------------===//
// LarusOracle
//===----------------------------------------------------------------------===//

bool LarusOracle::axiomsCertifyTree(const StructureInfo &Info) {
  if (Info.PointerFields.empty())
    return false;
  LangQuery Lang;

  // Build the single-step alternation over all fields.
  std::vector<RegexRef> Parts;
  for (FieldId F : Info.PointerFields)
    Parts.push_back(Regex::symbol(F));
  RegexRef AnyField = Regex::alt(Parts);

  // (1) Acyclicity: some same-origin axiom separates (F..)+ from eps.
  bool Acyclic = false;
  for (const Axiom &A : Info.Axioms.axioms()) {
    if (A.Form != AxiomForm::SameOriginDisjoint)
      continue;
    if ((A.Rhs->isEpsilon() && Lang.subsetOf(Regex::plus(AnyField), A.Lhs)) ||
        (A.Lhs->isEpsilon() && Lang.subsetOf(Regex::plus(AnyField), A.Rhs)))
      Acyclic = true;
  }
  if (!Acyclic)
    return false;

  // (2) Injectivity: a distinct-origin axiom covering every single step.
  bool Injective = false;
  for (const Axiom &A : Info.Axioms.axioms()) {
    if (A.Form != AxiomForm::DiffOriginDisjoint)
      continue;
    if (Lang.subsetOf(AnyField, A.Lhs) && Lang.subsetOf(AnyField, A.Rhs))
      Injective = true;
  }
  if (!Injective)
    return false;

  // (3) Pairwise same-origin distinctness of all fields.
  for (size_t I = 0; I < Info.PointerFields.size(); ++I) {
    for (size_t J = I + 1; J < Info.PointerFields.size(); ++J) {
      RegexRef FI = Regex::symbol(Info.PointerFields[I]);
      RegexRef FJ = Regex::symbol(Info.PointerFields[J]);
      bool Separated = false;
      for (const Axiom &A : Info.Axioms.axioms()) {
        if (A.Form != AxiomForm::SameOriginDisjoint)
          continue;
        if ((Lang.subsetOf(FI, A.Lhs) && Lang.subsetOf(FJ, A.Rhs)) ||
            (Lang.subsetOf(FI, A.Rhs) && Lang.subsetOf(FJ, A.Lhs)))
          Separated = true;
      }
      if (!Separated)
        return false;
    }
  }
  return true;
}

/// True if some axiom certifies acyclicity over all of \p Info's fields.
static bool axiomsCertifyAcyclic(const StructureInfo &Info) {
  LangQuery Lang;
  std::vector<RegexRef> Parts;
  for (FieldId F : Info.PointerFields)
    Parts.push_back(Regex::symbol(F));
  RegexRef AnyPlus = Regex::plus(Regex::alt(Parts));
  for (const Axiom &A : Info.Axioms.axioms()) {
    if (A.Form != AxiomForm::SameOriginDisjoint)
      continue;
    if ((A.Rhs->isEpsilon() && Lang.subsetOf(AnyPlus, A.Lhs)) ||
        (A.Lhs->isEpsilon() && Lang.subsetOf(AnyPlus, A.Rhs)))
      return true;
  }
  return false;
}

RegexRef LarusOracle::conservativeMap(const StructureInfo &Info,
                                      const RegexRef &Path) {
  // Fields targeting the same node population may be confluent; group
  // them and widen each group run into (group)+. Fields without a
  // declared target share one anonymous population.
  std::map<FieldId, std::string> Group;
  for (FieldId F : Info.PointerFields) {
    auto It = Info.FieldTarget.find(F);
    Group[F] = It == Info.FieldTarget.end() ? "?" : It->second;
  }
  std::map<std::string, RegexRef> GroupAlt;
  for (FieldId F : Info.PointerFields) {
    RegexRef Sym = Regex::symbol(F);
    auto [It, New] = GroupAlt.try_emplace(Group[F], Sym);
    if (!New)
      It->second = Regex::alt(It->second, Sym);
  }

  // Map the component sequence to a group sequence, collapsing runs.
  std::vector<RegexRef> Mapped;
  std::string LastGroup;
  for (const RegexRef &C : pathComponents(Path)) {
    std::set<FieldId> Syms;
    C->collectSymbols(Syms);
    // Group of this component: the union of its fields' groups; mixed
    // components widen to the union alternation of all involved groups.
    std::set<std::string> Groups;
    for (FieldId F : Syms)
      Groups.insert(Group.count(F) ? Group[F] : "?");
    std::string GroupKey;
    std::vector<RegexRef> Alts;
    for (const std::string &G : Groups) {
      GroupKey += G + "|";
      Alts.push_back(GroupAlt.at(G));
    }
    if (Alts.empty())
      continue; // Pure-epsilon component.
    RegexRef Widened = Regex::plus(Regex::alt(Alts));
    if (GroupKey == LastGroup)
      continue; // Run of the same group: already covered by the plus.
    LastGroup = GroupKey;
    Mapped.push_back(Widened);
  }
  return Regex::concat(Mapped);
}

DepVerdict LarusOracle::mayAlias(const StructureInfo &Info, const RegexRef &P,
                                 const RegexRef &Q) {
  if (definitelySameVertex(P, Q))
    return DepVerdict::Yes;
  LangQuery Lang;
  if (axiomsCertifyTree(Info)) {
    // Trees: label words determine vertices, so plain language
    // intersection is precise.
    return Lang.disjoint(P, Q) ? DepVerdict::No : DepVerdict::Maybe;
  }
  if (!axiomsCertifyAcyclic(Info)) {
    // Cycles make even epsilon vs. (f)+ aliasable; path expressions give
    // no separation.
    return DepVerdict::Maybe;
  }
  RegexRef MP = conservativeMap(Info, P);
  RegexRef MQ = conservativeMap(Info, Q);
  return Lang.disjoint(MP, MQ) ? DepVerdict::No : DepVerdict::Maybe;
}

//===----------------------------------------------------------------------===//
// AptOracle
//===----------------------------------------------------------------------===//

DepVerdict AptOracle::mayAlias(const StructureInfo &Info, const RegexRef &P_,
                               const RegexRef &Q) {
  if (P.proveEqualPaths(Info.Axioms, P_, Q))
    return DepVerdict::Yes;
  if (P.proveDisjoint(Info.Axioms, P_, Q))
    return DepVerdict::No;
  return DepVerdict::Maybe;
}
