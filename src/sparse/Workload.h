//===- sparse/Workload.h - Synthetic sparse workloads -----------*- C++ -*-===//
//
// Part of the APT project; see Kernels.h for the kernels these feed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workload generators for the Figure 7 experiment. The paper factors a
/// 1000 x 1000 sparse matrix with N = 10,000 nonzeros from a circuit
/// simulation; lacking the authors' netlists, we generate
///
///  * random structurally-symmetric, diagonally dominant matrices with a
///    target nonzero count (the shape typical of modified-nodal-analysis
///    circuit matrices), and
///  * resistor-grid matrices (the classic regular circuit benchmark).
///
/// Diagonal dominance keeps Markowitz-pivoted elimination numerically
/// well behaved, so verification against the dense solver is meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SPARSE_WORKLOAD_H
#define APT_SPARSE_WORKLOAD_H

#include "sparse/SparseMatrix.h"

#include <cstdint>
#include <vector>

namespace apt {

/// Random circuit-style triplets: full diagonal plus symmetric random
/// off-diagonal pairs until ~TargetNnz entries, diagonally dominant.
std::vector<SparseMatrix::Triplet>
randomCircuitTriplets(unsigned N, size_t TargetNnz, uint32_t Seed);

/// Nodal-analysis matrix of a Rows x Cols resistor grid with unit
/// conductances and a grounding leak on every node (size Rows*Cols).
/// With \p EightNeighbors, diagonal neighbors are also coupled, giving
/// ~9 nonzeros per row -- the density of the paper's 1000x1000 / 10,000
/// nonzero circuit matrix while keeping circuit-like locality (random
/// patterns of that size fill catastrophically under elimination).
std::vector<SparseMatrix::Triplet>
resistorGridTriplets(unsigned Rows, unsigned Cols,
                     bool EightNeighbors = false);

/// A deterministic right-hand side with entries in [-1, 1].
std::vector<double> randomVector(unsigned N, uint32_t Seed);

/// A deterministic row-scaling vector with entries in [0.5, 1.5].
std::vector<double> randomScaling(unsigned N, uint32_t Seed);

} // namespace apt

#endif // APT_SPARSE_WORKLOAD_H
