//===- sparse/Kernels.h - Scale / factor / solve (paper §5) -----*- C++ -*-===//
//
// Part of the APT project; see SparseMatrix.h for the data structure.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three fundamental sparse-matrix operations of §5: scaling and
/// solving (linear in the structure size) and LU factorization
/// (quadratic), the latter via Gaussian elimination with Markowitz pivot
/// selection and fill-in insertion, following the paper's five-step
/// `factor` pseudocode:
///
///   for each successive pivot step:
///     1. compute the fill-in heuristic for each submatrix element
///     2. search the submatrix for the best pivot
///     3. adjust M to bring the pivot into position    (sequential)
///     4. add fill-ins to the submatrix
///     5. perform the elimination on each submatrix row
///
/// Every kernel reports its work through an ExecutionModel and honors a
/// ParallelPolicy describing which steps the dependence analysis managed
/// to parallelize:
///
///  * Sequential -- everything on one PE.
///  * Partial    -- only structurally read-only steps (1, 2, 5, plus
///                  scale and solve) run in parallel; fill-in insertion
///                  is a structural modification the simplistic analysis
///                  cannot handle (§3.4 / Figure 7 "partial").
///  * Full       -- steps 1, 2, 4 and 5 run in parallel; only the
///                  inherently sequential pivot adjustment (step 3)
///                  remains serial (Figure 7 "full").
///
/// A ThreadPool may be supplied to execute the value-update phases with
/// real threads (verified against the sequential results in tests); the
/// Figure 7 speedups themselves come from the PeSimulator.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SPARSE_KERNELS_H
#define APT_SPARSE_KERNELS_H

#include "parallel/ExecutionModel.h"
#include "sparse/SparseMatrix.h"

#include <cstdint>
#include <vector>

namespace apt {

class ThreadPool;

/// Which loops the dependence analysis parallelized (see file comment).
enum class ParallelPolicy { Sequential, Partial, Full };

const char *parallelPolicyName(ParallelPolicy P);

/// Options shared by the kernels.
struct KernelOptions {
  ParallelPolicy Policy = ParallelPolicy::Sequential;
  ExecutionModel *Model = nullptr; ///< Optional cost accounting.
  ThreadPool *Pool = nullptr;      ///< Optional real-thread execution.
  double PivotEpsilon = 1e-12;     ///< Minimum acceptable |pivot|.
  bool MarkowitzPivoting = true;   ///< False: first acceptable element.
};

/// Result of a factorization: the pivot sequence plus statistics.
struct FactorResult {
  /// Step k eliminated row PivRow[k] and column PivCol[k].
  std::vector<unsigned> PivRow, PivCol;
  /// RowOrder[r] = step at which row r was pivotal (likewise columns).
  std::vector<unsigned> RowOrder, ColOrder;
  bool Singular = false;
  size_t Fillins = 0;
  /// Work per phase, in element operations.
  uint64_t HeuristicOps = 0, SearchOps = 0, AdjustOps = 0, FillinOps = 0,
           ElimOps = 0;

  uint64_t totalOps() const {
    return HeuristicOps + SearchOps + AdjustOps + FillinOps + ElimOps;
  }
};

/// Scales row i by Factors[i] (Factors.size() == M.size()).
void scaleRows(SparseMatrix &M, const std::vector<double> &Factors,
               const KernelOptions &Opts = {});

/// LU-factorizes \p M in place: after the call, element (i, PivCol[k])
/// for rows eliminated later than step k holds the L multiplier, and the
/// pivot row holds the U row.
FactorResult factor(SparseMatrix &M, const KernelOptions &Opts = {});

/// Solves A x = b given the in-place LU factorization of A.
std::vector<double> luSolve(const SparseMatrix &LU, const FactorResult &F,
                            std::vector<double> B,
                            const KernelOptions &Opts = {});

/// Convenience: scale + factor + solve, as timed by Figure 7's second
/// row group. Returns the solution (empty on singularity).
std::vector<double> scaleFactorSolve(SparseMatrix &M,
                                     const std::vector<double> &RowScale,
                                     const std::vector<double> &B,
                                     const KernelOptions &Opts = {});

} // namespace apt

#endif // APT_SPARSE_KERNELS_H
