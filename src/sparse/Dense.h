//===- sparse/Dense.h - Dense reference solver ------------------*- C++ -*-===//
//
// Part of the APT project; used to verify the sparse kernels on small
// systems.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain dense Gaussian-elimination solver with partial pivoting. The
/// sparse factor/solve pipeline is validated against it in the test
/// suite (same solutions up to rounding).
///
//===----------------------------------------------------------------------===//

#ifndef APT_SPARSE_DENSE_H
#define APT_SPARSE_DENSE_H

#include "sparse/SparseMatrix.h"

#include <optional>
#include <vector>

namespace apt {

/// Solves A x = b densely (A given row-major, size N*N). Returns
/// std::nullopt for (numerically) singular systems.
std::optional<std::vector<double>>
denseSolve(std::vector<double> A, unsigned N, std::vector<double> B);

/// Dense solve of a sparse matrix (converts, then denseSolve).
std::optional<std::vector<double>> denseSolve(const SparseMatrix &M,
                                              std::vector<double> B);

/// Maximum absolute componentwise difference.
double maxAbsDiff(const std::vector<double> &A, const std::vector<double> &B);

/// Residual max-norm |A x - b| of a proposed solution against the
/// original (pre-factorization) triplets.
double residualNorm(const std::vector<SparseMatrix::Triplet> &A, unsigned N,
                    const std::vector<double> &X,
                    const std::vector<double> &B);

} // namespace apt

#endif // APT_SPARSE_DENSE_H
