//===- sparse/Dense.cpp ---------------------------------------------------===//
//
// Part of the APT project; see Dense.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "sparse/Dense.h"

#include <cassert>
#include <cmath>

using namespace apt;

std::optional<std::vector<double>>
apt::denseSolve(std::vector<double> A, unsigned N, std::vector<double> B) {
  assert(A.size() == static_cast<size_t>(N) * N && B.size() == N);
  std::vector<unsigned> Perm(N);
  for (unsigned I = 0; I < N; ++I)
    Perm[I] = I;

  auto At = [&](unsigned R, unsigned C) -> double & {
    return A[static_cast<size_t>(Perm[R]) * N + C];
  };

  // Perm maps logical row -> physical row; B stays physically indexed,
  // so row exchanges never move B entries.
  for (unsigned K = 0; K < N; ++K) {
    unsigned Best = K;
    for (unsigned R = K + 1; R < N; ++R)
      if (std::fabs(At(R, K)) > std::fabs(At(Best, K)))
        Best = R;
    if (std::fabs(At(Best, K)) < 1e-300)
      return std::nullopt;
    std::swap(Perm[K], Perm[Best]);

    for (unsigned R = K + 1; R < N; ++R) {
      double M = At(R, K) / At(K, K);
      if (M == 0.0)
        continue;
      At(R, K) = 0.0;
      for (unsigned C = K + 1; C < N; ++C)
        At(R, C) -= M * At(K, C);
      B[Perm[R]] -= M * B[Perm[K]];
    }
  }

  std::vector<double> X(N, 0.0);
  for (unsigned K = N; K-- > 0;) {
    double Acc = B[Perm[K]];
    for (unsigned C = K + 1; C < N; ++C)
      Acc -= At(K, C) * X[C];
    X[K] = Acc / At(K, K);
  }
  return X;
}

std::optional<std::vector<double>> apt::denseSolve(const SparseMatrix &M,
                                                   std::vector<double> B) {
  return denseSolve(M.toDense(), M.size(), std::move(B));
}

double apt::maxAbsDiff(const std::vector<double> &A,
                       const std::vector<double> &B) {
  assert(A.size() == B.size());
  double Out = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    Out = std::max(Out, std::fabs(A[I] - B[I]));
  return Out;
}

double apt::residualNorm(const std::vector<SparseMatrix::Triplet> &A,
                         [[maybe_unused]] unsigned N,
                         const std::vector<double> &X,
                         const std::vector<double> &B) {
  assert(X.size() == N && B.size() == N);
  std::vector<double> R(B);
  for (const SparseMatrix::Triplet &T : A)
    R[T.Row] -= T.Value * X[T.Col];
  double Out = 0.0;
  for (double V : R)
    Out = std::max(Out, std::fabs(V));
  return Out;
}
