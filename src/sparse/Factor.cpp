//===- sparse/Factor.cpp - LU factorization with Markowitz pivoting -------===//
//
// Part of the APT project; see Kernels.h for the phase structure and
// parallelization policies.
//
//===----------------------------------------------------------------------===//

#include "sparse/Kernels.h"

#include "parallel/ThreadPool.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace apt;

const char *apt::parallelPolicyName(ParallelPolicy P) {
  switch (P) {
  case ParallelPolicy::Sequential:
    return "sequential";
  case ParallelPolicy::Partial:
    return "partial";
  case ParallelPolicy::Full:
    return "full";
  }
  assert(false && "unknown policy");
  return "";
}

namespace {

/// Reports one phase's task costs to the execution model, as a parallel
/// phase when the policy managed to parallelize it.
void emitPhase(const KernelOptions &Opts, bool Parallelized,
               const std::vector<uint64_t> &Tasks, uint64_t &Tally) {
  uint64_t Sum = 0;
  for (uint64_t T : Tasks)
    Sum += T;
  Tally += Sum;
  if (!Opts.Model)
    return;
  if (Parallelized && Opts.Policy != ParallelPolicy::Sequential)
    Opts.Model->parallel(Tasks);
  else
    Opts.Model->sequential(Sum);
}

void emitSequential(const KernelOptions &Opts, uint64_t Cost,
                    uint64_t &Tally) {
  Tally += Cost;
  if (Opts.Model)
    Opts.Model->sequential(Cost);
}

/// Per-row pivot candidate from the heuristic pass.
struct Candidate {
  SparseMatrix::Element *Elem = nullptr;
  uint64_t Product = std::numeric_limits<uint64_t>::max();
  double Magnitude = 0.0;
};

} // namespace

FactorResult apt::factor(SparseMatrix &M, const KernelOptions &Opts) {
  const unsigned N = M.size();
  FactorResult Out;
  Out.RowOrder.assign(N, N);
  Out.ColOrder.assign(N, N);

  std::vector<char> RowDone(N, 0), ColDone(N, 0);
  std::vector<unsigned> RowCount(N, 0), ColCount(N, 0);
  for (unsigned R = 0; R < N; ++R)
    for (SparseMatrix::Element *E = M.rowBegin(R); E; E = E->NColE) {
      ++RowCount[R];
      ++ColCount[E->Col];
    }

  std::vector<Candidate> BestInRow(N);
  std::vector<uint64_t> TaskCosts;
  std::vector<SparseMatrix::Element *> ColPivotElems;

  for (unsigned Step = 0; Step < N; ++Step) {
    // -- Phase 1: compute the fill-in heuristic for each submatrix
    //    element (per active row, keeping the row's best candidate).
    TaskCosts.clear();
    std::vector<unsigned> ActiveRows;
    for (unsigned R = 0; R < N; ++R) {
      if (RowDone[R])
        continue;
      ActiveRows.push_back(R);
      Candidate Best;
      uint64_t Cost = 0;
      for (SparseMatrix::Element *E = M.rowBegin(R); E; E = E->NColE) {
        ++Cost;
        if (ColDone[E->Col])
          continue;
        double Mag = std::fabs(E->Value);
        if (Mag < Opts.PivotEpsilon)
          continue;
        uint64_t Product =
            static_cast<uint64_t>(RowCount[R] - 1) * (ColCount[E->Col] - 1);
        bool Better = !Opts.MarkowitzPivoting
                          ? (!Best.Elem)
                          : (Product < Best.Product ||
                             (Product == Best.Product &&
                              Mag > Best.Magnitude));
        if (!Best.Elem || Better) {
          Best.Elem = E;
          Best.Product = Product;
          Best.Magnitude = Mag;
        }
      }
      BestInRow[R] = Best;
      TaskCosts.push_back(Cost);
    }
    emitPhase(Opts, /*Parallelized=*/true, TaskCosts, Out.HeuristicOps);

    // -- Phase 2: search the submatrix for the best pivot (reduction
    //    over the per-row candidates).
    TaskCosts.assign(ActiveRows.size(), 1);
    Candidate Pivot;
    for (unsigned R : ActiveRows) {
      const Candidate &C = BestInRow[R];
      if (!C.Elem)
        continue;
      if (!Pivot.Elem ||
          (Opts.MarkowitzPivoting &&
           (C.Product < Pivot.Product ||
            (C.Product == Pivot.Product && C.Magnitude > Pivot.Magnitude))))
        Pivot = C;
    }
    emitPhase(Opts, /*Parallelized=*/true, TaskCosts, Out.SearchOps);

    if (!Pivot.Elem) {
      Out.Singular = true;
      return Out;
    }
    const unsigned PR = Pivot.Elem->Row, PC = Pivot.Elem->Col;
    const double PivotVal = Pivot.Elem->Value;
    Out.PivRow.push_back(PR);
    Out.PivCol.push_back(PC);
    Out.RowOrder[PR] = Step;
    Out.ColOrder[PC] = Step;

    // -- Phase 3: adjust M to bring the pivot into pivot position.
    //    Logically exchanging rows/columns costs a walk over the pivot
    //    row and column; it serializes every configuration (§5: "one of
    //    the factorization steps ... is inherently sequential").
    //    While walking the column, collect the rows to eliminate.
    ColPivotElems.clear();
    {
      uint64_t Cost = RowCount[PR] + 4;
      for (SparseMatrix::Element *E = M.colBegin(PC); E; E = E->NRowE) {
        ++Cost;
        if (!RowDone[E->Row] && E->Row != PR &&
            std::fabs(E->Value) != 0.0)
          ColPivotElems.push_back(E);
      }
      emitSequential(Opts, Cost, Out.AdjustOps);
    }

    // -- Phase 4: add fill-ins (structural modification; parallel only
    //    under the Full policy, and always executed serially with real
    //    threads because insertion links both a row and a column list).
    TaskCosts.clear();
    size_t NnzBefore = M.nonzeros();
    for (SparseMatrix::Element *A : ColPivotElems) {
      const unsigned I = A->Row;
      size_t Steps = 0;
      // Merged walk: advance a cursor along row I while scanning the
      // pivot row, inserting missing targets in place.
      SparseMatrix::Element *Prev = nullptr;
      SparseMatrix::Element *T = M.rowBegin(I);
      for (SparseMatrix::Element *U = M.rowBegin(PR); U; U = U->NColE) {
        ++Steps;
        if (ColDone[U->Col] || U->Col == PC)
          continue;
        while (T && T->Col < U->Col) {
          Prev = T;
          T = T->NColE;
          ++Steps;
        }
        if (!T || T->Col > U->Col) {
          size_t Before = M.nonzeros();
          SparseMatrix::Element &Fresh =
              M.atWithRowHint(Prev, I, U->Col, &Steps);
          assert(M.nonzeros() == Before + 1 && "hint found a duplicate");
          (void)Before;
          ++RowCount[I];
          ++ColCount[U->Col];
          Prev = &Fresh;
          T = Fresh.NColE;
        }
      }
      TaskCosts.push_back(Steps);
    }
    Out.Fillins += M.nonzeros() - NnzBefore;
    emitPhase(Opts, /*Parallelized=*/Opts.Policy == ParallelPolicy::Full,
              TaskCosts, Out.FillinOps);

    // -- Phase 5: eliminate each submatrix row (pure value updates on
    //    disjoint rows: the loop Theorem T legitimizes). Real threads
    //    may execute it when a pool is supplied.
    TaskCosts.assign(ColPivotElems.size(), 0);
    auto EliminateRow = [&](size_t Idx) {
      SparseMatrix::Element *A = ColPivotElems[Idx];
      const unsigned I = A->Row;
      uint64_t Cost = 2;
      const double Mult = A->Value / PivotVal;
      A->Value = Mult; // A now stores the L multiplier.
      // Merged walk along the pivot row and row I (both column-sorted;
      // phase 4 guaranteed every target exists).
      SparseMatrix::Element *T = M.rowBegin(I);
      for (SparseMatrix::Element *U = M.rowBegin(PR); U; U = U->NColE) {
        ++Cost;
        if (ColDone[U->Col] || U->Col == PC)
          continue;
        while (T && T->Col < U->Col) {
          T = T->NColE;
          ++Cost;
        }
        assert(T && T->Col == U->Col && "fill-in phase missed a target");
        T->Value -= Mult * U->Value;
        ++Cost;
      }
      TaskCosts[Idx] = Cost;
    };
    bool UseThreads = Opts.Pool && Opts.Policy != ParallelPolicy::Sequential;
    if (UseThreads)
      Opts.Pool->parallelFor(ColPivotElems.size(), EliminateRow);
    else
      for (size_t Idx = 0; Idx < ColPivotElems.size(); ++Idx)
        EliminateRow(Idx);
    emitPhase(Opts, /*Parallelized=*/true, TaskCosts, Out.ElimOps);

    // Retire the pivot row and column from the active submatrix.
    {
      uint64_t Cost = 0;
      RowDone[PR] = 1;
      ColDone[PC] = 1;
      for (SparseMatrix::Element *E = M.rowBegin(PR); E; E = E->NColE) {
        ++Cost;
        if (!ColDone[E->Col])
          --ColCount[E->Col];
      }
      for (SparseMatrix::Element *E = M.colBegin(PC); E; E = E->NRowE) {
        ++Cost;
        if (!RowDone[E->Row])
          --RowCount[E->Row];
      }
      emitSequential(Opts, Cost, Out.AdjustOps);
    }
  }
  return Out;
}

void apt::scaleRows(SparseMatrix &M, const std::vector<double> &Factors,
                    const KernelOptions &Opts) {
  assert(Factors.size() == M.size() && "one factor per row");
  std::vector<uint64_t> Tasks(M.size(), 0);
  auto ScaleRow = [&](size_t R) {
    uint64_t Cost = 0;
    for (SparseMatrix::Element *E = M.rowBegin(static_cast<unsigned>(R)); E;
         E = E->NColE) {
      E->Value *= Factors[R];
      ++Cost;
    }
    Tasks[R] = Cost;
  };
  if (Opts.Pool && Opts.Policy != ParallelPolicy::Sequential)
    Opts.Pool->parallelFor(M.size(), ScaleRow);
  else
    for (size_t R = 0; R < M.size(); ++R)
      ScaleRow(R);
  uint64_t Tally = 0;
  emitPhase(Opts, /*Parallelized=*/true, Tasks, Tally);
}

std::vector<double> apt::luSolve(const SparseMatrix &LU,
                                 const FactorResult &F,
                                 std::vector<double> B,
                                 const KernelOptions &Opts) {
  const unsigned N = LU.size();
  assert(B.size() == N && "right-hand side size mismatch");
  assert(F.PivRow.size() == N && !F.Singular && "factorization incomplete");
  uint64_t Tally = 0;
  std::vector<uint64_t> Tasks;

  // Forward substitution: apply the stored L multipliers in pivot order.
  for (unsigned K = 0; K < N; ++K) {
    const unsigned PR = F.PivRow[K], PC = F.PivCol[K];
    Tasks.clear();
    for (const SparseMatrix::Element *E = LU.colBegin(PC); E;
         E = E->NRowE) {
      if (F.RowOrder[E->Row] > K) {
        B[E->Row] -= E->Value * B[PR];
        Tasks.push_back(2);
      }
    }
    emitPhase(Opts, /*Parallelized=*/true, Tasks, Tally);
  }

  // Back substitution in reverse pivot order.
  std::vector<double> X(N, 0.0);
  for (unsigned K = N; K-- > 0;) {
    const unsigned PR = F.PivRow[K], PC = F.PivCol[K];
    double Acc = B[PR];
    double Diag = 0.0;
    Tasks.clear();
    for (const SparseMatrix::Element *E = LU.rowBegin(PR); E;
         E = E->NColE) {
      if (E->Col == PC) {
        Diag = E->Value;
      } else if (F.ColOrder[E->Col] > K) {
        Acc -= E->Value * X[E->Col];
      }
      Tasks.push_back(2);
    }
    assert(Diag != 0.0 && "pivot vanished after elimination");
    X[PC] = Acc / Diag;
    emitPhase(Opts, /*Parallelized=*/true, Tasks, Tally);
  }
  return X;
}

std::vector<double> apt::scaleFactorSolve(SparseMatrix &M,
                                          const std::vector<double> &RowScale,
                                          const std::vector<double> &B,
                                          const KernelOptions &Opts) {
  scaleRows(M, RowScale, Opts);
  FactorResult F = factor(M, Opts);
  if (F.Singular)
    return {};
  // The right-hand side must be scaled consistently with the rows.
  std::vector<double> Scaled(B);
  for (size_t I = 0; I < Scaled.size(); ++I)
    Scaled[I] *= RowScale[I];
  return luSolve(M, F, std::move(Scaled), Opts);
}
