//===- sparse/SparseMatrix.h - Orthogonal-list sparse matrix ----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sparse-matrix data structure of the paper's evaluation (§5,
/// Figure 6): elements live on two orthogonal singly-linked lists, one
/// along their row (`ncolE`, increasing column) and one along their
/// column (`nrowE`, increasing row), with per-row and per-column header
/// lists hanging off a root -- the classic circuit-simulation layout
/// (Kundert). The pointer-field names intentionally match the Appendix A
/// axioms.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SPARSE_SPARSEMATRIX_H
#define APT_SPARSE_SPARSEMATRIX_H

#include <cstddef>
#include <deque>
#include <vector>

namespace apt {

/// An N x N sparse matrix over orthogonal element lists.
class SparseMatrix {
public:
  /// One stored (possibly zero after fill-in) element.
  struct Element {
    unsigned Row = 0;
    unsigned Col = 0;
    double Value = 0.0;
    Element *NColE = nullptr; ///< Next element in this row (higher col).
    Element *NRowE = nullptr; ///< Next element in this column (higher row).
  };

  /// A (row, col, value) input/output record.
  struct Triplet {
    unsigned Row = 0;
    unsigned Col = 0;
    double Value = 0.0;
  };

  explicit SparseMatrix(unsigned N);

  SparseMatrix(SparseMatrix &&) = default;
  SparseMatrix &operator=(SparseMatrix &&) = default;
  SparseMatrix(const SparseMatrix &) = delete;
  SparseMatrix &operator=(const SparseMatrix &) = delete;

  unsigned size() const { return N; }
  size_t nonzeros() const { return NumElements; }

  /// First element of row \p R (the header's `relem`), or nullptr.
  Element *rowBegin(unsigned R) { return RowHead[R]; }
  const Element *rowBegin(unsigned R) const { return RowHead[R]; }

  /// First element of column \p C (the header's `celem`), or nullptr.
  Element *colBegin(unsigned C) { return ColHead[C]; }
  const Element *colBegin(unsigned C) const { return ColHead[C]; }

  /// The element at (R, C), or nullptr if not stored.
  Element *find(unsigned R, unsigned C);
  const Element *find(unsigned R, unsigned C) const;

  /// Value at (R, C); absent elements read as 0.
  double get(unsigned R, unsigned C) const;

  /// The element at (R, C), inserted (with value 0) if absent.
  /// \p LinkSteps, when non-null, accumulates the number of pointer hops
  /// performed (used for execution-cost accounting).
  Element &at(unsigned R, unsigned C, size_t *LinkSteps = nullptr);

  /// Insert/find for callers already walking row \p R: \p RowPrev must be
  /// the row-R element with the largest column < \p C (nullptr when C
  /// precedes the whole row). Avoids re-scanning the row from its head;
  /// the column list is still scanned for the insertion point, as in any
  /// orthogonally linked implementation.
  Element &atWithRowHint(Element *RowPrev, unsigned R, unsigned C,
                         size_t *LinkSteps = nullptr);

  /// Sets (R, C) to \p V, inserting if needed.
  void set(unsigned R, unsigned C, double V) { at(R, C).Value = V; }

  /// Verifies the orthogonal-list invariants: row lists sorted by column
  /// and column lists sorted by row, mutually consistent, with matching
  /// element counts. Used by tests and after factorization.
  bool structureValid() const;

  /// Dense row-major copy (N*N doubles); for small-matrix verification.
  std::vector<double> toDense() const;

  std::vector<Triplet> toTriplets() const;
  static SparseMatrix fromTriplets(unsigned N,
                                   const std::vector<Triplet> &Ts);

private:
  unsigned N;
  std::deque<Element> Pool; ///< Stable storage for all elements.
  std::vector<Element *> RowHead;
  std::vector<Element *> ColHead;
  size_t NumElements = 0;
};

} // namespace apt

#endif // APT_SPARSE_SPARSEMATRIX_H
