//===- sparse/Workload.cpp ------------------------------------------------===//
//
// Part of the APT project; see Workload.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "sparse/Workload.h"

#include <cassert>
#include <cmath>
#include <random>
#include <set>

using namespace apt;

std::vector<SparseMatrix::Triplet>
apt::randomCircuitTriplets(unsigned N, size_t TargetNnz, uint32_t Seed) {
  assert(TargetNnz >= N && "need at least the diagonal");
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<unsigned> Node(0, N - 1);
  std::uniform_real_distribution<double> Mag(0.1, 1.0);

  // Symmetric off-diagonal pattern.
  std::set<std::pair<unsigned, unsigned>> Off;
  size_t WantedOff = (TargetNnz - N) / 2;
  size_t Guard = 0;
  while (Off.size() < WantedOff && ++Guard < TargetNnz * 20) {
    unsigned R = Node(Rng), C = Node(Rng);
    if (R == C)
      continue;
    Off.insert({std::min(R, C), std::max(R, C)});
  }

  std::vector<SparseMatrix::Triplet> Out;
  Out.reserve(N + Off.size() * 2);
  std::vector<double> RowSum(N, 0.0);
  for (const auto &[R, C] : Off) {
    double V = -Mag(Rng);
    Out.push_back({R, C, V});
    Out.push_back({C, R, V});
    RowSum[R] += std::fabs(V);
    RowSum[C] += std::fabs(V);
  }
  // Diagonal dominance: diag = row sum of |offdiag| + margin.
  for (unsigned I = 0; I < N; ++I)
    Out.push_back({I, I, RowSum[I] + 1.0 + Mag(Rng)});
  return Out;
}

std::vector<SparseMatrix::Triplet>
apt::resistorGridTriplets(unsigned Rows, unsigned Cols,
                          bool EightNeighbors) {
  auto Id = [Cols](unsigned R, unsigned C) { return R * Cols + C; };
  std::vector<SparseMatrix::Triplet> Out;
  for (unsigned R = 0; R < Rows; ++R) {
    for (unsigned C = 0; C < Cols; ++C) {
      unsigned Me = Id(R, C);
      double Degree = 0.0;
      auto Couple = [&](unsigned OtherR, unsigned OtherC, double G) {
        Out.push_back({Me, Id(OtherR, OtherC), -G});
        Degree += G;
      };
      if (R > 0)
        Couple(R - 1, C, 1.0);
      if (R + 1 < Rows)
        Couple(R + 1, C, 1.0);
      if (C > 0)
        Couple(R, C - 1, 1.0);
      if (C + 1 < Cols)
        Couple(R, C + 1, 1.0);
      if (EightNeighbors) {
        if (R > 0 && C > 0)
          Couple(R - 1, C - 1, 0.5);
        if (R > 0 && C + 1 < Cols)
          Couple(R - 1, C + 1, 0.5);
        if (R + 1 < Rows && C > 0)
          Couple(R + 1, C - 1, 0.5);
        if (R + 1 < Rows && C + 1 < Cols)
          Couple(R + 1, C + 1, 0.5);
      }
      // Grounding leak keeps the system nonsingular.
      Out.push_back({Me, Me, Degree + 0.05});
    }
  }
  return Out;
}

std::vector<double> apt::randomVector(unsigned N, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> Val(-1.0, 1.0);
  std::vector<double> Out(N);
  for (double &V : Out)
    V = Val(Rng);
  return Out;
}

std::vector<double> apt::randomScaling(unsigned N, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> Val(0.5, 1.5);
  std::vector<double> Out(N);
  for (double &V : Out)
    V = Val(Rng);
  return Out;
}
