//===- sparse/SparseMatrix.cpp --------------------------------------------===//
//
// Part of the APT project; see SparseMatrix.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "sparse/SparseMatrix.h"

#include <algorithm>
#include <cassert>

using namespace apt;

SparseMatrix::SparseMatrix(unsigned N)
    : N(N), RowHead(N, nullptr), ColHead(N, nullptr) {}

SparseMatrix::Element *SparseMatrix::find(unsigned R, unsigned C) {
  assert(R < N && C < N && "index out of range");
  for (Element *E = RowHead[R]; E && E->Col <= C; E = E->NColE)
    if (E->Col == C)
      return E;
  return nullptr;
}

const SparseMatrix::Element *SparseMatrix::find(unsigned R,
                                                unsigned C) const {
  return const_cast<SparseMatrix *>(this)->find(R, C);
}

double SparseMatrix::get(unsigned R, unsigned C) const {
  const Element *E = find(R, C);
  return E ? E->Value : 0.0;
}

SparseMatrix::Element &SparseMatrix::at(unsigned R, unsigned C,
                                        size_t *LinkSteps) {
  assert(R < N && C < N && "index out of range");
  size_t Steps = 0;

  // Find the row predecessor (last element with a smaller column).
  Element *RowPrev = nullptr;
  Element *E = RowHead[R];
  while (E && E->Col < C) {
    RowPrev = E;
    E = E->NColE;
    ++Steps;
  }
  if (LinkSteps)
    *LinkSteps += Steps;
  return atWithRowHint(RowPrev, R, C, LinkSteps);
}

SparseMatrix::Element &SparseMatrix::atWithRowHint(Element *RowPrev,
                                                   unsigned R, unsigned C,
                                                   size_t *LinkSteps) {
  assert(R < N && C < N && "index out of range");
  assert((!RowPrev || (RowPrev->Row == R && RowPrev->Col < C)) &&
         "bad row hint");
  size_t Steps = 0;

  Element *E = RowPrev ? RowPrev->NColE : RowHead[R];
  assert((!E || E->Col >= C) && "row hint is not the predecessor");
  if (E && E->Col == C) {
    if (LinkSteps)
      *LinkSteps += 1;
    return *E;
  }

  // Find the column predecessor.
  Element *ColPrev = nullptr;
  Element *F = ColHead[C];
  while (F && F->Row < R) {
    ColPrev = F;
    F = F->NRowE;
    ++Steps;
  }

  Pool.push_back(Element{R, C, 0.0, nullptr, nullptr});
  Element &Fresh = Pool.back();
  ++NumElements;

  Fresh.NColE = RowPrev ? RowPrev->NColE : RowHead[R];
  (RowPrev ? RowPrev->NColE : RowHead[R]) = &Fresh;
  Fresh.NRowE = ColPrev ? ColPrev->NRowE : ColHead[C];
  (ColPrev ? ColPrev->NRowE : ColHead[C]) = &Fresh;

  if (LinkSteps)
    *LinkSteps += Steps + 4; // The four pointer writes above.
  return Fresh;
}

bool SparseMatrix::structureValid() const {
  size_t ViaRows = 0, ViaCols = 0;
  for (unsigned R = 0; R < N; ++R) {
    unsigned LastCol = 0;
    bool First = true;
    for (const Element *E = RowHead[R]; E; E = E->NColE) {
      if (E->Row != R)
        return false;
      if (!First && E->Col <= LastCol)
        return false;
      LastCol = E->Col;
      First = false;
      ++ViaRows;
    }
  }
  for (unsigned C = 0; C < N; ++C) {
    unsigned LastRow = 0;
    bool First = true;
    for (const Element *E = ColHead[C]; E; E = E->NRowE) {
      if (E->Col != C)
        return false;
      if (!First && E->Row <= LastRow)
        return false;
      LastRow = E->Row;
      First = false;
      ++ViaCols;
    }
  }
  return ViaRows == NumElements && ViaCols == NumElements;
}

std::vector<double> SparseMatrix::toDense() const {
  std::vector<double> Out(static_cast<size_t>(N) * N, 0.0);
  for (unsigned R = 0; R < N; ++R)
    for (const Element *E = RowHead[R]; E; E = E->NColE)
      Out[static_cast<size_t>(R) * N + E->Col] = E->Value;
  return Out;
}

std::vector<SparseMatrix::Triplet> SparseMatrix::toTriplets() const {
  std::vector<Triplet> Out;
  Out.reserve(NumElements);
  for (unsigned R = 0; R < N; ++R)
    for (const Element *E = RowHead[R]; E; E = E->NColE)
      Out.push_back(Triplet{E->Row, E->Col, E->Value});
  return Out;
}

SparseMatrix SparseMatrix::fromTriplets(unsigned N,
                                        const std::vector<Triplet> &Ts) {
  SparseMatrix M(N);
  for (const Triplet &T : Ts)
    M.at(T.Row, T.Col).Value += T.Value;
  return M;
}
