//===- parallel/ThreadPool.h - Real-thread execution ------------*- C++ -*-===//
//
// Part of the APT project; see ExecutionModel.h for the simulated
// counterpart used by the Figure 7 benchmark.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a parallel-for helper. The sparse
/// kernels use it to execute the value-update phases that APT proved
/// independent with real threads; tests verify bit-identical results
/// against the sequential code. (On this one-core container it brings no
/// wall-clock speedup -- speedups are measured with the PeSimulator.)
///
//===----------------------------------------------------------------------===//

#ifndef APT_PARALLEL_THREADPOOL_H
#define APT_PARALLEL_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace apt {

/// Fixed-size worker pool.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs Body(I) for every I in [0, Count), distributing chunks over the
  /// workers; blocks until all iterations finish. Body must not throw.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable WakeMaster;
  std::queue<std::function<void()>> Tasks;
  size_t Outstanding = 0;
  bool ShuttingDown = false;
};

} // namespace apt

#endif // APT_PARALLEL_THREADPOOL_H
