//===- parallel/ThreadPool.h - Real-thread execution ------------*- C++ -*-===//
//
// Part of the APT project; see ExecutionModel.h for the simulated
// counterpart used by the Figure 7 benchmark.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a parallel-for helper. The sparse
/// kernels use it to execute the value-update phases that APT proved
/// independent with real threads; tests verify bit-identical results
/// against the sequential code. (On this one-core container it brings no
/// wall-clock speedup -- speedups are measured with the PeSimulator.)
///
//===----------------------------------------------------------------------===//

#ifndef APT_PARALLEL_THREADPOOL_H
#define APT_PARALLEL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace apt {

/// Fixed-size worker pool.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs Body(I) for every I in [0, Count), distributing chunks over the
  /// workers; blocks until all iterations finish. Body must not throw.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

  /// Self-scheduling variant for irregular work: indices are claimed one
  /// at a time from a shared atomic counter, so a worker that finishes a
  /// cheap item immediately steals the next unclaimed one instead of
  /// idling behind a static chunk boundary. Body receives
  /// (Slot, Index): Slot in [0, min(Count, size())) identifies the
  /// claiming task and is stable for its lifetime -- callers use it to
  /// index per-worker state (e.g. one Prover per slot) without locking.
  /// Blocks until all indices finish; Body must not throw. Iteration
  /// order is unspecified; sort the work items largest-first beforehand
  /// to minimize the tail (LPT scheduling, as ExecutionModel.h does for
  /// simulated PEs).
  void parallelForDynamic(size_t Count,
                          const std::function<void(size_t, size_t)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable WakeMaster;
  std::queue<std::function<void()>> Tasks;
  size_t Outstanding = 0;
  bool ShuttingDown = false;
};

} // namespace apt

#endif // APT_PARALLEL_THREADPOOL_H
