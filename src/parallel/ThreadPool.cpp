//===- parallel/ThreadPool.cpp --------------------------------------------===//
//
// Part of the APT project; see ThreadPool.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace apt;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock,
                       [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty()) {
        if (ShuttingDown)
          return;
        continue;
      }
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(Outstanding > 0 && "task completion imbalance");
      --Outstanding;
      if (Outstanding == 0)
        WakeMaster.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  const size_t NumChunks = std::min<size_t>(Count, Workers.size());
  const size_t ChunkSize = (Count + NumChunks - 1) / NumChunks;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t C = 0; C < NumChunks; ++C) {
      size_t Begin = C * ChunkSize;
      size_t End = std::min(Count, Begin + ChunkSize);
      if (Begin >= End)
        break;
      ++Outstanding;
      Tasks.push([Begin, End, &Body] {
        for (size_t I = Begin; I < End; ++I)
          Body(I);
      });
    }
  }
  WakeWorkers.notify_all();
  std::unique_lock<std::mutex> Lock(Mutex);
  WakeMaster.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::parallelForDynamic(
    size_t Count, const std::function<void(size_t, size_t)> &Body) {
  if (Count == 0)
    return;
  // One long-lived task per worker slot; each loops claiming the next
  // unclaimed index. shared_ptr keeps the counter alive until the last
  // task drains it (the blocking wait below makes &Body safe to capture).
  auto Next = std::make_shared<std::atomic<size_t>>(0);
  const size_t NumSlots = std::min<size_t>(Count, Workers.size());
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t Slot = 0; Slot < NumSlots; ++Slot) {
      ++Outstanding;
      Tasks.push([Slot, Next, Count, &Body] {
        for (size_t I = Next->fetch_add(1); I < Count;
             I = Next->fetch_add(1))
          Body(Slot, I);
      });
    }
  }
  WakeWorkers.notify_all();
  std::unique_lock<std::mutex> Lock(Mutex);
  WakeMaster.wait(Lock, [this] { return Outstanding == 0; });
}
