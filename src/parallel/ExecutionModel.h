//===- parallel/ExecutionModel.h - Cost-accounted execution -----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 7 measures speedups of parallelized sparse-matrix
/// code on an 8-PE Sequent. This machine has one core, so wall-clock
/// thread speedups are unmeasurable; instead, the sparse kernels report
/// their work through this interface, and the PeSimulator replays it on P
/// virtual processing elements (list scheduling), yielding deterministic
/// simulated speedups. See DESIGN.md §4 for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef APT_PARALLEL_EXECUTIONMODEL_H
#define APT_PARALLEL_EXECUTIONMODEL_H

#include <cstdint>
#include <vector>

namespace apt {

/// Receives the work performed by an instrumented kernel. Costs are in
/// elementary element-operations (loads/stores/multiply-adds on matrix
/// elements), the natural unit for the factorization kernels.
class ExecutionModel {
public:
  virtual ~ExecutionModel() = default;

  /// A segment that must run on one PE (sequential semantics).
  virtual void sequential(uint64_t Cost) = 0;

  /// A phase of independent tasks that may run concurrently; \p Tasks
  /// holds one cost per task (e.g. one per matrix row).
  virtual void parallel(const std::vector<uint64_t> &Tasks) = 0;
};

/// Counts raw work without any notion of parallelism (used to obtain the
/// one-PE baseline time and for unit tests of the instrumentation).
class WorkCounter : public ExecutionModel {
public:
  void sequential(uint64_t Cost) override { Work += Cost; }
  void parallel(const std::vector<uint64_t> &Tasks) override {
    for (uint64_t T : Tasks)
      Work += T;
  }
  uint64_t work() const { return Work; }

private:
  uint64_t Work = 0;
};

/// Simulates execution on \p NumPes identical PEs. Sequential segments
/// occupy one PE while the others idle; parallel phases are greedily list
/// scheduled (each task goes to the least-loaded PE, longest task first),
/// with a barrier at the end of each phase -- the natural model for the
/// paper's manually applied loop-level transformations.
///
/// \p BarrierCost is the fork/join synchronization price of one parallel
/// phase, in the same element-operation units as task costs. It elapses
/// wall-clock time without contributing useful work (so it never inflates
/// the one-PE baseline, which runs the sequential policy and forks
/// nothing). Calibrated once per simulated machine; see EXPERIMENTS.md.
class PeSimulator : public ExecutionModel {
public:
  explicit PeSimulator(unsigned NumPes, uint64_t BarrierCost = 0)
      : NumPes(NumPes ? NumPes : 1), BarrierCost(BarrierCost) {}

  void sequential(uint64_t Cost) override {
    Elapsed += Cost;
    TotalWork += Cost;
  }

  void parallel(const std::vector<uint64_t> &Tasks) override;

  /// Simulated elapsed time so far.
  uint64_t elapsed() const { return Elapsed; }

  /// Total work executed (equals the one-PE time of the same run).
  uint64_t totalWork() const { return TotalWork; }

  unsigned numPes() const { return NumPes; }

private:
  unsigned NumPes;
  uint64_t BarrierCost;
  uint64_t Elapsed = 0;
  uint64_t TotalWork = 0;
};

} // namespace apt

#endif // APT_PARALLEL_EXECUTIONMODEL_H
