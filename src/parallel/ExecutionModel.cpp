//===- parallel/ExecutionModel.cpp ----------------------------------------===//
//
// Part of the APT project; see ExecutionModel.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "parallel/ExecutionModel.h"

#include <algorithm>
#include <queue>

using namespace apt;

void PeSimulator::parallel(const std::vector<uint64_t> &Tasks) {
  if (Tasks.empty())
    return;
  Elapsed += BarrierCost;
  // Longest-processing-time list scheduling onto NumPes machines.
  std::vector<uint64_t> Sorted(Tasks);
  std::sort(Sorted.begin(), Sorted.end(), std::greater<uint64_t>());
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      Loads;
  for (unsigned I = 0; I < NumPes; ++I)
    Loads.push(0);
  uint64_t Makespan = 0;
  for (uint64_t T : Sorted) {
    uint64_t L = Loads.top();
    Loads.pop();
    L += T;
    Makespan = std::max(Makespan, L);
    Loads.push(L);
    TotalWork += T;
  }
  Elapsed += Makespan;
}
