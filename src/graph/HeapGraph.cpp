//===- graph/HeapGraph.cpp ------------------------------------------------===//
//
// Part of the APT project; see HeapGraph.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "graph/HeapGraph.h"

#include "regex/Dfa.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

using namespace apt;

HeapGraph::NodeId HeapGraph::addNode(std::string Label) {
  Nodes.push_back(Node{{}, std::move(Label)});
  return static_cast<NodeId>(Nodes.size() - 1);
}

void HeapGraph::setField(NodeId From, FieldId F, NodeId To) {
  assert(From < Nodes.size() && To < Nodes.size() && "invalid node id");
  Nodes[From].Out[F] = To;
}

void HeapGraph::clearField(NodeId From, FieldId F) {
  assert(From < Nodes.size() && "invalid node id");
  Nodes[From].Out.erase(F);
}

std::optional<HeapGraph::NodeId> HeapGraph::field(NodeId From,
                                                  FieldId F) const {
  assert(From < Nodes.size() && "invalid node id");
  auto It = Nodes[From].Out.find(F);
  if (It == Nodes[From].Out.end())
    return std::nullopt;
  return It->second;
}

std::optional<HeapGraph::NodeId> HeapGraph::walk(NodeId From,
                                                 const Word &W) const {
  NodeId Cur = From;
  for (FieldId F : W) {
    std::optional<NodeId> Next = field(Cur, F);
    if (!Next)
      return std::nullopt;
    Cur = *Next;
  }
  return Cur;
}

std::vector<HeapGraph::NodeId>
HeapGraph::evalRegex(NodeId From, const RegexRef &RE) const {
  assert(From < Nodes.size() && "invalid node id");
  std::set<FieldId> Syms;
  RE->collectSymbols(Syms);
  std::vector<FieldId> Alphabet(Syms.begin(), Syms.end());
  Dfa D = Dfa::fromRegex(*RE, Alphabet);

  // Product BFS over (graph node, DFA state).
  std::set<std::pair<NodeId, uint32_t>> Seen;
  std::deque<std::pair<NodeId, uint32_t>> Worklist;
  std::set<NodeId> Hits;
  Worklist.emplace_back(From, D.start());
  Seen.insert({From, D.start()});
  while (!Worklist.empty()) {
    auto [N, S] = Worklist.front();
    Worklist.pop_front();
    if (D.isAccepting(S))
      Hits.insert(N);
    for (const auto &[F, Target] : Nodes[N].Out) {
      int SymIdx = D.alphabetIndex(F);
      if (SymIdx < 0)
        continue; // Field not mentioned by RE: no word uses it.
      uint32_t S2 = D.step(S, static_cast<size_t>(SymIdx));
      if (Seen.insert({Target, S2}).second)
        Worklist.emplace_back(Target, S2);
    }
  }
  return std::vector<NodeId>(Hits.begin(), Hits.end());
}

bool HeapGraph::pathsOverlap(NodeId From, const RegexRef &A,
                             const RegexRef &B) const {
  std::vector<NodeId> SA = evalRegex(From, A);
  std::vector<NodeId> SB = evalRegex(From, B);
  std::vector<NodeId> Inter;
  std::set_intersection(SA.begin(), SA.end(), SB.begin(), SB.end(),
                        std::back_inserter(Inter));
  return !Inter.empty();
}
