//===- graph/GraphBuilders.h - Canonical concrete structures ----*- C++ -*-===//
//
// Part of the APT project; see HeapGraph.h for the graph these construct.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for concrete instances of the structures the paper discusses.
/// Field names match core/Prelude.h so that the prelude axiom sets can be
/// model-checked directly against these graphs.
///
//===----------------------------------------------------------------------===//

#ifndef APT_GRAPH_GRAPHBUILDERS_H
#define APT_GRAPH_GRAPHBUILDERS_H

#include "graph/HeapGraph.h"
#include "support/FieldTable.h"

#include <functional>
#include <vector>

namespace apt {

/// A built structure: the graph plus the natural root/handle node.
struct BuiltStructure {
  HeapGraph Graph;
  HeapGraph::NodeId Root = 0;
};

/// Acyclic singly-linked list of \p Length nodes over `next`.
BuiltStructure buildLinkedList(FieldTable &Fields, size_t Length);

/// Circular singly-linked list of \p Length nodes over `next`.
BuiltStructure buildCircularList(FieldTable &Fields, size_t Length);

/// Circular doubly-linked list of \p Length nodes over `next`/`prev`.
BuiltStructure buildDoublyLinkedRing(FieldTable &Fields, size_t Length);

/// Complete binary tree of \p Depth levels below the root over `L`/`R`
/// (Depth 0 is a single node).
BuiltStructure buildBinaryTree(FieldTable &Fields, size_t Depth);

/// Complete leaf-linked binary tree (Figure 3): `L`/`R` tree of \p Depth
/// levels, leaves chained left-to-right by `N`.
BuiltStructure buildLeafLinkedTree(FieldTable &Fields, size_t Depth);

/// Orthogonal-list sparse matrix (Figure 6) with an element at every
/// coordinate in \p Coordinates (row, col pairs; duplicates ignored).
/// Uses fields rows/cols/nrowH/ncolH/relem/celem/nrowE/ncolE.
BuiltStructure
buildSparseMatrixGraph(FieldTable &Fields,
                       const std::vector<std::pair<unsigned, unsigned>>
                           &Coordinates);

/// Two-dimensional range tree: an x-side leaf-linked tree of \p Depth
/// levels where every node owns a `sub` leaf-linked y-tree of
/// \p SubDepth levels over yL/yR/yN.
BuiltStructure buildRangeTree2D(FieldTable &Fields, size_t Depth,
                                size_t SubDepth);

/// Barnes-Hut octree: a complete 8-ary cell tree of \p Depth levels over
/// c0..c7, each cell owning a `bodies` list of \p BodiesPerCell nodes
/// chained by `bnext`.
BuiltStructure buildOctree(FieldTable &Fields, size_t Depth,
                           size_t BodiesPerCell);

/// Enumerates every heap graph with exactly \p NumNodes nodes whose edges
/// carry labels drawn from \p Alphabet (each node independently points
/// each field at one of the nodes or at null), invoking \p Visit on each.
/// There are (NumNodes+1)^(NumNodes*|Alphabet|) such graphs; the caller
/// bounds the walk by returning false from \p Visit, which stops the
/// enumeration immediately. Returns true iff every graph was visited.
/// Used by the lint subsystem's bounded model check of axiom sets.
bool enumerateHeapGraphs(const std::vector<FieldId> &Alphabet,
                         size_t NumNodes,
                         const std::function<bool(const HeapGraph &)> &Visit);

} // namespace apt

#endif // APT_GRAPH_GRAPHBUILDERS_H
