//===- graph/HeapGraph.h - Concrete heap structures -------------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete model of a dynamic, pointer-based data structure: a directed
/// graph whose vertices are heap nodes and whose edges are labeled with
/// pointer-field names. Each node has at most one outgoing edge per field
/// (fields are functions), matching the paper's semantics of access paths.
///
/// The graph substrate serves three validation roles:
///  * model-checking aliasing axioms against concrete structures
///    (AxiomChecker.h),
///  * providing a ground-truth dependence oracle against which APT and the
///    baseline tests are compared (the accuracy experiment E4), and
///  * building the example structures of the paper (GraphBuilders.h).
///
//===----------------------------------------------------------------------===//

#ifndef APT_GRAPH_HEAPGRAPH_H
#define APT_GRAPH_HEAPGRAPH_H

#include "regex/Regex.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace apt {

/// A field-labeled directed graph with functional edges.
class HeapGraph {
public:
  using NodeId = uint32_t;

  /// Adds a node with an optional debugging label; returns its id.
  NodeId addNode(std::string Label = "");

  /// Sets `From.F = To`, replacing any previous target.
  void setField(NodeId From, FieldId F, NodeId To);

  /// Removes `From.F` (making the pointer null).
  void clearField(NodeId From, FieldId F);

  /// Target of `From.F`, or std::nullopt when the field is null/unset.
  std::optional<NodeId> field(NodeId From, FieldId F) const;

  /// Follows a whole word of fields; std::nullopt if any hop is null.
  std::optional<NodeId> walk(NodeId From, const Word &W) const;

  /// All nodes reachable from \p From along some existing path whose label
  /// word is in L(RE). Computed by a product BFS of the graph with the
  /// regex's DFA; exact because the graph is finite.
  std::vector<NodeId> evalRegex(NodeId From, const RegexRef &RE) const;

  /// True if evalRegex(From, A) and evalRegex(From, B) share a node.
  bool pathsOverlap(NodeId From, const RegexRef &A, const RegexRef &B) const;

  size_t numNodes() const { return Nodes.size(); }
  const std::string &label(NodeId N) const { return Nodes[N].Label; }

  /// The (field, target) pairs leaving \p N, sorted by field.
  const std::map<FieldId, NodeId> &out(NodeId N) const {
    return Nodes[N].Out;
  }

private:
  struct Node {
    std::map<FieldId, NodeId> Out;
    std::string Label;
  };
  std::vector<Node> Nodes;
};

} // namespace apt

#endif // APT_GRAPH_HEAPGRAPH_H
