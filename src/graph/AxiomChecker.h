//===- graph/AxiomChecker.h - Model-check axioms on graphs ------*- C++ -*-===//
//
// Part of the APT project; see Axiom.h for the axiom forms checked here.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies that a concrete heap graph satisfies a set of aliasing axioms.
/// The paper (§3.2) notes that programmer-supplied axioms could be
/// "automatically verified"; this module is that verifier for concrete
/// structures (it is also how the test suite guards the prelude axiom
/// sets and how the ground-truth experiments certify their models).
///
//===----------------------------------------------------------------------===//

#ifndef APT_GRAPH_AXIOMCHECKER_H
#define APT_GRAPH_AXIOMCHECKER_H

#include "core/Axiom.h"
#include "graph/HeapGraph.h"

#include <optional>
#include <string>

namespace apt {

/// A concrete violation of an axiom, for diagnostics.
struct AxiomViolation {
  std::string AxiomText;
  HeapGraph::NodeId P = 0; ///< Witness origin p.
  HeapGraph::NodeId Q = 0; ///< Witness origin q (== P for one-var forms).
  HeapGraph::NodeId V = 0; ///< The shared/differing vertex.
  std::string Message;
};

/// Checks one axiom against every node (pair) of \p G; returns the first
/// violation found, or std::nullopt if the axiom holds.
std::optional<AxiomViolation> checkAxiom(const HeapGraph &G, const Axiom &A,
                                         const FieldTable &Fields);

/// Checks every axiom in \p Axioms; returns the first violation.
std::optional<AxiomViolation> checkAxioms(const HeapGraph &G,
                                          const AxiomSet &Axioms,
                                          const FieldTable &Fields);

} // namespace apt

#endif // APT_GRAPH_AXIOMCHECKER_H
