//===- graph/GraphBuilders.cpp --------------------------------------------===//
//
// Part of the APT project; see GraphBuilders.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphBuilders.h"

#include <cassert>
#include <map>
#include <set>

using namespace apt;

BuiltStructure apt::buildLinkedList(FieldTable &Fields, size_t Length) {
  assert(Length > 0 && "a list needs at least one node");
  FieldId Next = Fields.intern("next");
  BuiltStructure Out;
  std::vector<HeapGraph::NodeId> Ns;
  for (size_t I = 0; I < Length; ++I)
    Ns.push_back(Out.Graph.addNode("n" + std::to_string(I)));
  for (size_t I = 0; I + 1 < Length; ++I)
    Out.Graph.setField(Ns[I], Next, Ns[I + 1]);
  Out.Root = Ns.front();
  return Out;
}

BuiltStructure apt::buildCircularList(FieldTable &Fields, size_t Length) {
  FieldId Next = Fields.intern("next");
  BuiltStructure Out = buildLinkedList(Fields, Length);
  Out.Graph.setField(static_cast<HeapGraph::NodeId>(Length - 1), Next,
                     Out.Root);
  return Out;
}

BuiltStructure apt::buildDoublyLinkedRing(FieldTable &Fields,
                                          size_t Length) {
  assert(Length > 0 && "a ring needs at least one node");
  FieldId Next = Fields.intern("next");
  FieldId Prev = Fields.intern("prev");
  BuiltStructure Out;
  std::vector<HeapGraph::NodeId> Ns;
  for (size_t I = 0; I < Length; ++I)
    Ns.push_back(Out.Graph.addNode("n" + std::to_string(I)));
  for (size_t I = 0; I < Length; ++I) {
    Out.Graph.setField(Ns[I], Next, Ns[(I + 1) % Length]);
    Out.Graph.setField(Ns[(I + 1) % Length], Prev, Ns[I]);
  }
  Out.Root = Ns.front();
  return Out;
}

namespace {

/// Recursive helper: builds a complete L/R subtree, appending leaves
/// left-to-right into \p Leaves.
HeapGraph::NodeId buildTreeRec(HeapGraph &G, FieldId L, FieldId R,
                               size_t Depth, std::string Prefix,
                               std::vector<HeapGraph::NodeId> *Leaves) {
  HeapGraph::NodeId N = G.addNode(Prefix.empty() ? "root" : Prefix);
  if (Depth == 0) {
    if (Leaves)
      Leaves->push_back(N);
    return N;
  }
  G.setField(N, L, buildTreeRec(G, L, R, Depth - 1, Prefix + "L", Leaves));
  G.setField(N, R, buildTreeRec(G, L, R, Depth - 1, Prefix + "R", Leaves));
  return N;
}

} // namespace

BuiltStructure apt::buildBinaryTree(FieldTable &Fields, size_t Depth) {
  FieldId L = Fields.intern("L"), R = Fields.intern("R");
  BuiltStructure Out;
  Out.Root = buildTreeRec(Out.Graph, L, R, Depth, "", nullptr);
  return Out;
}

BuiltStructure apt::buildLeafLinkedTree(FieldTable &Fields, size_t Depth) {
  FieldId L = Fields.intern("L"), R = Fields.intern("R");
  FieldId N = Fields.intern("N");
  BuiltStructure Out;
  std::vector<HeapGraph::NodeId> Leaves;
  Out.Root = buildTreeRec(Out.Graph, L, R, Depth, "", &Leaves);
  for (size_t I = 0; I + 1 < Leaves.size(); ++I)
    Out.Graph.setField(Leaves[I], N, Leaves[I + 1]);
  return Out;
}

BuiltStructure apt::buildSparseMatrixGraph(
    FieldTable &Fields,
    const std::vector<std::pair<unsigned, unsigned>> &Coordinates) {
  FieldId Rows = Fields.intern("rows"), Cols = Fields.intern("cols");
  FieldId NRowH = Fields.intern("nrowH"), NColH = Fields.intern("ncolH");
  FieldId RElem = Fields.intern("relem"), CElem = Fields.intern("celem");
  FieldId NRowE = Fields.intern("nrowE"), NColE = Fields.intern("ncolE");

  BuiltStructure Out;
  HeapGraph &G = Out.Graph;
  Out.Root = G.addNode("matrix");

  // Deduplicate and sort coordinates; collect the row/column indices that
  // actually occur.
  std::set<std::pair<unsigned, unsigned>> Coords(Coordinates.begin(),
                                                 Coordinates.end());
  std::set<unsigned> RowIdx, ColIdx;
  for (const auto &[Rw, Cl] : Coords) {
    RowIdx.insert(Rw);
    ColIdx.insert(Cl);
  }

  // Element nodes.
  std::map<std::pair<unsigned, unsigned>, HeapGraph::NodeId> Elem;
  for (const auto &RC : Coords)
    Elem[RC] = G.addNode("e" + std::to_string(RC.first) + "_" +
                         std::to_string(RC.second));

  // Row headers, chained by nrowH, each pointing at its first element via
  // relem; elements within a row chained by ncolE.
  HeapGraph::NodeId PrevHeader = Out.Root;
  FieldId PrevLink = Rows;
  for (unsigned Rw : RowIdx) {
    HeapGraph::NodeId H = G.addNode("rh" + std::to_string(Rw));
    G.setField(PrevHeader, PrevLink, H);
    PrevHeader = H;
    PrevLink = NRowH;
    HeapGraph::NodeId PrevElem = H;
    FieldId Link = RElem;
    for (const auto &RC : Coords) {
      if (RC.first != Rw)
        continue;
      G.setField(PrevElem, Link, Elem[RC]);
      PrevElem = Elem[RC];
      Link = NColE;
    }
  }

  // Column headers, chained by ncolH, pointing at their first element via
  // celem; elements within a column chained by nrowE.
  PrevHeader = Out.Root;
  PrevLink = Cols;
  for (unsigned Cl : ColIdx) {
    HeapGraph::NodeId H = G.addNode("ch" + std::to_string(Cl));
    G.setField(PrevHeader, PrevLink, H);
    PrevHeader = H;
    PrevLink = NColH;
    HeapGraph::NodeId PrevElem = H;
    FieldId Link = CElem;
    for (const auto &RC : Coords) {
      if (RC.second != Cl)
        continue;
      G.setField(PrevElem, Link, Elem[RC]);
      PrevElem = Elem[RC];
      Link = NRowE;
    }
  }
  return Out;
}

BuiltStructure apt::buildRangeTree2D(FieldTable &Fields, size_t Depth,
                                     size_t SubDepth) {
  FieldId L = Fields.intern("L"), R = Fields.intern("R");
  FieldId N = Fields.intern("N");
  FieldId Sub = Fields.intern("sub");
  FieldId YL = Fields.intern("yL"), YR = Fields.intern("yR");
  FieldId YN = Fields.intern("yN");

  BuiltStructure Out;
  std::vector<HeapGraph::NodeId> Leaves;
  Out.Root = buildTreeRec(Out.Graph, L, R, Depth, "", &Leaves);
  for (size_t I = 0; I + 1 < Leaves.size(); ++I)
    Out.Graph.setField(Leaves[I], N, Leaves[I + 1]);

  // Every x-node gets its own leaf-linked y-tree.
  size_t NumXNodes = Out.Graph.numNodes();
  for (HeapGraph::NodeId X = 0; X < NumXNodes; ++X) {
    std::vector<HeapGraph::NodeId> YLeaves;
    HeapGraph::NodeId YRoot = buildTreeRec(Out.Graph, YL, YR, SubDepth,
                                           "y" + std::to_string(X),
                                           &YLeaves);
    for (size_t I = 0; I + 1 < YLeaves.size(); ++I)
      Out.Graph.setField(YLeaves[I], YN, YLeaves[I + 1]);
    Out.Graph.setField(X, Sub, YRoot);
  }
  return Out;
}

BuiltStructure apt::buildOctree(FieldTable &Fields, size_t Depth,
                                size_t BodiesPerCell) {
  std::vector<FieldId> Children;
  for (int I = 0; I < 8; ++I)
    Children.push_back(Fields.intern("c" + std::to_string(I)));
  FieldId Bodies = Fields.intern("bodies");
  FieldId BNext = Fields.intern("bnext");

  BuiltStructure Out;
  HeapGraph &G = Out.Graph;

  // Build the cell tree breadth-first, attaching a body list per cell.
  struct Item {
    HeapGraph::NodeId Cell;
    size_t Level;
  };
  Out.Root = G.addNode("cell0");
  std::vector<Item> Worklist{{Out.Root, 0}};
  while (!Worklist.empty()) {
    Item It = Worklist.back();
    Worklist.pop_back();
    if (BodiesPerCell > 0) {
      HeapGraph::NodeId Prev = It.Cell;
      FieldId Link = Bodies;
      for (size_t B = 0; B < BodiesPerCell; ++B) {
        HeapGraph::NodeId Body = G.addNode("body");
        G.setField(Prev, Link, Body);
        Prev = Body;
        Link = BNext;
      }
    }
    if (It.Level >= Depth)
      continue;
    for (FieldId C : Children) {
      HeapGraph::NodeId Child = G.addNode("cell");
      G.setField(It.Cell, C, Child);
      Worklist.push_back({Child, It.Level + 1});
    }
  }
  return Out;
}

bool apt::enumerateHeapGraphs(
    const std::vector<FieldId> &Alphabet, size_t NumNodes,
    const std::function<bool(const HeapGraph &)> &Visit) {
  // One odometer digit per (node, field) pair: 0 = null, v >= 1 = node
  // v-1. Rebuilding the graph per combination keeps HeapGraph free of a
  // mutation API it does not otherwise need; the graphs are tiny.
  const size_t Slots = NumNodes * Alphabet.size();
  std::vector<unsigned> Digits(Slots, 0);
  for (;;) {
    HeapGraph G;
    for (size_t N = 0; N < NumNodes; ++N)
      G.addNode("n" + std::to_string(N));
    for (size_t S = 0; S < Slots; ++S)
      if (Digits[S] != 0)
        G.setField(static_cast<HeapGraph::NodeId>(S / Alphabet.size()),
                   Alphabet[S % Alphabet.size()],
                   static_cast<HeapGraph::NodeId>(Digits[S] - 1));
    if (!Visit(G))
      return false;
    size_t S = 0;
    while (S < Slots && Digits[S] == NumNodes) {
      Digits[S] = 0;
      ++S;
    }
    if (S == Slots)
      return true;
    ++Digits[S];
  }
}
