//===- graph/AxiomChecker.cpp ---------------------------------------------===//
//
// Part of the APT project; see AxiomChecker.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "graph/AxiomChecker.h"

#include <algorithm>

using namespace apt;

static std::optional<AxiomViolation>
violationAt(const HeapGraph &G, const Axiom &A, const FieldTable &Fields,
            HeapGraph::NodeId P, HeapGraph::NodeId Q) {
  std::vector<HeapGraph::NodeId> SetL = G.evalRegex(P, A.Lhs);
  std::vector<HeapGraph::NodeId> SetR = G.evalRegex(Q, A.Rhs);

  if (A.Form == AxiomForm::Equal) {
    if (SetL == SetR)
      return std::nullopt;
    AxiomViolation V;
    V.AxiomText = A.toString(Fields);
    V.P = P;
    V.Q = Q;
    V.V = SetL.size() > SetR.size()
              ? (SetL.empty() ? P : SetL.front())
              : (SetR.empty() ? Q : SetR.front());
    V.Message = "equality axiom violated: p." +
                A.Lhs->toString(Fields) + " and p." +
                A.Rhs->toString(Fields) + " differ at node " +
                std::to_string(P);
    return V;
  }

  std::vector<HeapGraph::NodeId> Inter;
  std::set_intersection(SetL.begin(), SetL.end(), SetR.begin(), SetR.end(),
                        std::back_inserter(Inter));
  if (Inter.empty())
    return std::nullopt;
  AxiomViolation V;
  V.AxiomText = A.toString(Fields);
  V.P = P;
  V.Q = Q;
  V.V = Inter.front();
  V.Message = "disjointness axiom violated: node " + std::to_string(V.V) +
              " (" + G.label(V.V) + ") reachable both ways";
  return V;
}

std::optional<AxiomViolation> apt::checkAxiom(const HeapGraph &G,
                                              const Axiom &A,
                                              const FieldTable &Fields) {
  const size_t N = G.numNodes();
  if (A.Form == AxiomForm::DiffOriginDisjoint) {
    for (HeapGraph::NodeId P = 0; P < N; ++P)
      for (HeapGraph::NodeId Q = 0; Q < N; ++Q) {
        if (P == Q)
          continue;
        if (std::optional<AxiomViolation> V =
                violationAt(G, A, Fields, P, Q))
          return V;
      }
    return std::nullopt;
  }
  for (HeapGraph::NodeId P = 0; P < N; ++P)
    if (std::optional<AxiomViolation> V = violationAt(G, A, Fields, P, P))
      return V;
  return std::nullopt;
}

std::optional<AxiomViolation> apt::checkAxioms(const HeapGraph &G,
                                               const AxiomSet &Axioms,
                                               const FieldTable &Fields) {
  for (const Axiom &A : Axioms.axioms())
    if (std::optional<AxiomViolation> V = checkAxiom(G, A, Fields))
      return V;
  return std::nullopt;
}
