//===- service/Client.h - aptc --connect client -----------------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin client behind `aptc <subcommand> ... --connect SOCKET`: wrap
/// the remaining argv in a `run` request, send it to a running aptd,
/// replay the response's stdout/stderr byte streams locally, and exit
/// with the daemon-reported code — so a daemon-routed invocation is
/// indistinguishable from a one-shot run (tools/service_parity_check.py
/// asserts exactly that).
///
//===----------------------------------------------------------------------===//

#ifndef APT_SERVICE_CLIENT_H
#define APT_SERVICE_CLIENT_H

#include <string>
#include <vector>

namespace apt::svc {

/// Routes \p Args (subcommand + arguments, --connect already stripped)
/// through the daemon at \p SocketPath. Returns the exit code the daemon
/// reports for the command; connection or protocol failures print an
/// explanatory line to stderr and return 2.
int runViaDaemon(const std::string &SocketPath,
                 const std::vector<std::string> &Args);

/// The `aptc top --connect SOCKET` live view: polls the daemon's
/// `status` and `timeline` ops and renders a refreshing table — uptime,
/// per-op latency, the session table, and counter deltas over the last
/// timeline tick. \p Args are the remaining flags: --interval-ms N
/// (refresh period, default 1000) and --iterations N (stop after N
/// refreshes; default 1 when stdout is not a tty, 0 = forever when it
/// is). Clears the screen between refreshes only on a tty, so piping
/// the output yields plain appended frames. Returns 0 after the last
/// refresh, 2 on connection/protocol failure or bad flags.
int runTopCommand(const std::string &SocketPath,
                  const std::vector<std::string> &Args);

} // namespace apt::svc

#endif // APT_SERVICE_CLIENT_H
