//===- service/Commands.cpp -----------------------------------------------===//
//
// Part of the APT project; see Commands.h for an overview.
//
// This is the former body of tools/aptc.cpp, lifted into a library so
// the daemon and the one-shot CLI share one implementation. Every output
// format string is preserved byte-for-byte — that is what makes
// daemon-mode output provably identical to one-shot output.
//
//===----------------------------------------------------------------------===//

#include "service/Commands.h"

#include "analysis/DepQueries.h"
#include "analysis/Profile.h"
#include "analysis/TraceExport.h"
#include "core/ProofChecker.h"
#include "core/Prover.h"
#include "lint/Lint.h"
#include "reach/ReachEngine.h"
#include "regex/RegexParser.h"
#include "support/Arena.h"
#include "support/ChromeTrace.h"
#include "support/Metrics.h"
#include "support/Strings.h"
#include "support/Trace.h"
#include "support/Version.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

using namespace apt;
using namespace apt::svc;

const char *const apt::svc::kSubcommands[7] = {"prove", "deps", "loops",
                                               "dump",  "lint", "reach",
                                               "top"};

CommandIo apt::svc::stdioCommandIo() {
  CommandIo Io;
  Io.Out = [](std::string_view S) { std::fwrite(S.data(), 1, S.size(), stdout); };
  Io.Err = [](std::string_view S) { std::fwrite(S.data(), 1, S.size(), stderr); };
  Io.FlushOut = [] { std::fflush(stdout); };
  return Io;
}

namespace {

void vformatTo(const std::function<void(std::string_view)> &Sink,
               const char *Fmt, va_list Ap) {
  va_list Copy;
  va_copy(Copy, Ap);
  char Small[2048];
  int N = std::vsnprintf(Small, sizeof(Small), Fmt, Copy);
  va_end(Copy);
  if (N < 0)
    return;
  if (static_cast<size_t>(N) < sizeof(Small)) {
    Sink(std::string_view(Small, static_cast<size_t>(N)));
    return;
  }
  std::string Big(static_cast<size_t>(N) + 1, '\0');
  std::vsnprintf(Big.data(), Big.size(), Fmt, Ap);
  Big.resize(static_cast<size_t>(N));
  Sink(Big);
}

__attribute__((format(printf, 2, 3))) void outf(const CommandIo &Io,
                                                const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  vformatTo(Io.Out, Fmt, Ap);
  va_end(Ap);
}

__attribute__((format(printf, 2, 3))) void errf(const CommandIo &Io,
                                                const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  vformatTo(Io.Err, Fmt, Ap);
  va_end(Ap);
}

/// Per-request context: the resident state, the sinks, and the metrics
/// baseline taken at request entry (what --metrics-json deltas against).
struct Ctx {
  ServiceState &State;
  const CommandIo &Io;
  metrics::RegistrySnapshot Baseline;
};

int usage(const CommandIo &Io) {
  errf(Io,
       "usage: aptc prove <axioms-file> <pathP> <pathQ> "
       "[--triage on|off] [--arena on|off] [--engine apt|reach|both]\n"
       "                 [--trace FILE] [--trace-chrome FILE] "
       "[--metrics-json FILE] [--profile FILE] [--profile-folded FILE]\n"
       "       aptc deps <program> [<labelS> <labelT>] "
       "[--invariant-writes] [--triage on|off] [--arena on|off]\n"
       "                 [--reach-prepass on|off] "
       "[--engine apt|reach|both] [--jobs N] [--stats]\n"
       "                 [--trace FILE] [--trace-chrome FILE] "
       "[--metrics-json FILE] [--profile FILE] [--profile-folded FILE]\n"
       "       aptc loops <program> [--invariant-writes]\n"
       "       aptc dump <program> [--invariant-writes]\n"
       "       aptc lint <axioms-or-program> [--no-models]\n"
       "       aptc reach <axioms-file> <pathP> <pathQ> "
       "[--metrics-json FILE]\n"
       "       aptc top --connect SOCKET [--interval-ms N] "
       "[--iterations N]   (live daemon status/timeline view)\n"
       "       aptc --version\n"
       "       aptc <subcommand> ... --connect SOCKET   "
       "(route through a running aptd; see docs/SERVICE.md)\n");
  return 2;
}

/// Runs a lint pass whose findings must not change the command's
/// behavior: everything is reported to stderr and forgotten (the
/// "warn-only at the front of prove/deps" mode).
void warnOnlyLint(const CommandIo &Io, const DiagnosticEngine &Diags) {
  if (Diags.empty())
    return;
  errf(Io, "%s(lint: %s; use `aptc lint` to gate on these)\n",
       Diags.render().c_str(), Diags.summary().c_str());
}

/// The observability surface shared by `prove` and `deps`: --trace=FILE
/// writes a JSONL trace (docs/OBSERVABILITY.md), --trace-chrome=FILE a
/// Chrome trace-event JSON timeline (support/ChromeTrace.h, opens in
/// chrome://tracing and Perfetto), --metrics-json=FILE the metrics
/// registry (as a delta since request entry), --profile=FILE a
/// time-attribution profile (docs/profile_schema.json) and
/// --profile-folded=FILE the same data as collapsed flamegraph stacks.
/// All accept `--flag FILE` and `--flag=FILE`; the profile and chrome
/// flags switch tracing into timed mode. Under the daemon the files are
/// written by the server process, to server-side paths.
struct ObsFlags {
  std::string TraceFile;
  std::string ChromeFile;
  std::string MetricsFile;
  std::string ProfileFile;
  std::string ProfileFoldedFile;

  bool profiling() const {
    return !ProfileFile.empty() || !ProfileFoldedFile.empty();
  }
  /// Timed spans wanted (turns on trace timed mode for the run): the
  /// profile aggregation and the chrome timeline both need timestamps.
  bool timed() const { return profiling() || !ChromeFile.empty(); }
  /// Any surface that needs the event collector installed.
  bool tracing() const {
    return !TraceFile.empty() || !ChromeFile.empty() || profiling();
  }
};

/// Strips observability flags out of Argv. Returns false on a flag that
/// is missing its value.
bool parseObsFlags(const CommandIo &Io, int &Argc, char **Argv,
                   ObsFlags &Flags) {
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  // Returns the number of argv slots consumed (0 = no match), or -1 when
  // the value is missing.
  auto MatchValueFlag = [&](int I, const char *Name, std::string &Out) {
    size_t Len = std::strlen(Name);
    if (std::strncmp(Argv[I], Name, Len) != 0)
      return 0;
    if (Argv[I][Len] == '=') {
      Out = Argv[I] + Len + 1;
      return 1;
    }
    if (Argv[I][Len] != '\0')
      return 0;
    if (I + 1 >= Argc) {
      errf(Io, "error: %s requires a file path\n", Name);
      return -1;
    }
    Out = Argv[I + 1];
    return 2;
  };
  for (int I = 0; I < Argc;) {
    // --trace-chrome before --trace: MatchValueFlag rejects the prefix
    // overlap itself (the next char must be '=' or NUL), the order just
    // keeps the error message for a value-less --trace-chrome right.
    int N = MatchValueFlag(I, "--trace-chrome", Flags.ChromeFile);
    if (N == 0)
      N = MatchValueFlag(I, "--trace", Flags.TraceFile);
    if (N == 0)
      N = MatchValueFlag(I, "--metrics-json", Flags.MetricsFile);
    if (N == 0)
      N = MatchValueFlag(I, "--profile-folded", Flags.ProfileFoldedFile);
    if (N == 0)
      N = MatchValueFlag(I, "--profile", Flags.ProfileFile);
    if (N < 0)
      return false;
    if (N > 0)
      Remove(I, N);
    else
      ++I;
  }
  return true;
}

/// Strips a `NAME on|off` / `NAME=on|off` flag out of Argv. Leaves
/// \p Value untouched when the flag is absent -- callers seed it with
/// their default. Returns false on a malformed value. Shared by
/// `--triage` (docs/TRIAGE.md) and `--reach-prepass`
/// (docs/REACHABILITY.md).
bool parseOnOffFlag(const CommandIo &Io, int &Argc, char **Argv,
                    const char *Name, bool &Value) {
  size_t Len = std::strlen(Name);
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  for (int I = 0; I < Argc;) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, Name, Len) != 0 ||
        (Arg[Len] != '\0' && Arg[Len] != '=')) {
      ++I;
      continue;
    }
    const char *V;
    int N;
    if (Arg[Len] == '=') {
      V = Arg + Len + 1;
      N = 1;
    } else {
      if (I + 1 >= Argc) {
        errf(Io, "error: %s requires on|off\n", Name);
        return false;
      }
      V = Argv[I + 1];
      N = 2;
    }
    if (std::strcmp(V, "on") == 0) {
      Value = true;
    } else if (std::strcmp(V, "off") == 0) {
      Value = false;
    } else {
      errf(Io, "error: bad %s value '%s' (want on|off)\n", Name, V);
      return false;
    }
    Remove(I, N);
  }
  return true;
}

bool parseTriageFlag(const CommandIo &Io, int &Argc, char **Argv,
                     bool &TriageOn) {
  return parseOnOffFlag(Io, Argc, Argv, "--triage", TriageOn);
}

/// Strips a `--arena on|off` flag and applies it process-wide
/// (support/Arena.h). The toggle selects the allocation strategy only --
/// verdicts and automata are bit-identical either way (enforced by
/// tests/determinism_test.cpp) -- so it deliberately does NOT key the
/// resident engine cache: an engine built under one setting is reused
/// under the other.
bool parseArenaFlag(const CommandIo &Io, int &Argc, char **Argv) {
  bool ArenaOn = Arena::enabledGlobal();
  if (!parseOnOffFlag(Io, Argc, Argv, "--arena", ArenaOn))
    return false;
  Arena::setEnabledGlobal(ArenaOn);
  return true;
}

/// Which dependence engine(s) `prove` and `deps` consult
/// (docs/REACHABILITY.md): the derivative prover (apt, the default), the
/// model-based reachability engine (reach), or both with a verdict
/// cross-check (both; any conflict exits 3).
enum class EngineSel { Apt, Reach, Both };

/// Strips a `--engine apt|reach|both` / `--engine=...` flag out of Argv.
bool parseEngineFlag(const CommandIo &Io, int &Argc, char **Argv,
                     EngineSel &Engine) {
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  for (int I = 0; I < Argc;) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--engine", 8) != 0 ||
        (Arg[8] != '\0' && Arg[8] != '=')) {
      ++I;
      continue;
    }
    const char *V;
    int N;
    if (Arg[8] == '=') {
      V = Arg + 9;
      N = 1;
    } else {
      if (I + 1 >= Argc) {
        errf(Io, "error: --engine requires apt|reach|both\n");
        return false;
      }
      V = Argv[I + 1];
      N = 2;
    }
    if (std::strcmp(V, "apt") == 0) {
      Engine = EngineSel::Apt;
    } else if (std::strcmp(V, "reach") == 0) {
      Engine = EngineSel::Reach;
    } else if (std::strcmp(V, "both") == 0) {
      Engine = EngineSel::Both;
    } else {
      errf(Io, "error: bad --engine value '%s' (want apt|reach|both)\n", V);
      return false;
    }
    Remove(I, N);
  }
  return true;
}

/// Renders a word in the `x.f.g` surface syntax access paths print in.
std::string wordPath(const FieldTable &Fields, const Word &W) {
  std::string S = "x";
  for (FieldId F : W) {
    S += ".";
    S += Fields.name(F);
  }
  return S;
}

/// Prints a replayable overlap witness: the satisfying model's size, the
/// anchor, and the two words that walk to a common vertex (the same data
/// the fuzz and differential suites re-walk with HeapGraph::walk).
void printReachWitness(const CommandIo &Io, const FieldTable &Fields,
                       const ReachWitness &W) {
  outf(Io,
       "witness: in a %u-node satisfying model, %s and %s both denote "
       "node %u (anchored at node %u)\n",
       static_cast<unsigned>(W.Model.numNodes()),
       wordPath(Fields, W.PathS).c_str(), wordPath(Fields, W.PathT).c_str(),
       static_cast<unsigned>(W.Vertex), static_cast<unsigned>(W.Anchor));
}

/// Shared verdict rendering for `aptc reach` and `prove --engine=reach`.
/// Returns the exit code (0 bounded independence, 1 witnessed overlap).
int printReachAnswer(const CommandIo &Io, const FieldTable &Fields,
                     const RegexRef &P, const RegexRef &Q,
                     const ReachAnswer &A) {
  if (A.Verdict == ReachVerdict::Overlap) {
    outf(Io, "REACH OVERLAP: x.%s and x.%s can denote a common vertex\n",
         P->toString(Fields).c_str(), Q->toString(Fields).c_str());
    if (A.Witness)
      printReachWitness(Io, Fields, *A.Witness);
    return 1;
  }
  outf(Io,
       "REACH INDEPENDENT (bounded): no overlap in %u satisfying models: "
       "forall x: x.%s <> x.%s\n",
       static_cast<unsigned>(A.ModelsChecked), P->toString(Fields).c_str(),
       Q->toString(Fields).c_str());
  return 0;
}

/// True when a batch verdict is a *prover-grounded* claim the reach
/// engine's model semantics can contradict. Triage verdicts (tiers 2/3
/// use allocation-site and points-to provenance an arbitrary
/// axiom-satisfying model knows nothing about) are deliberately outside
/// this predicate, so they never count as conflicts.
bool proverProvedNo(const DepTestResult &R) {
  return R.Verdict == DepVerdict::No && R.Reason.rfind("proved: ", 0) == 0;
}
bool proverProvedYes(const DepTestResult &R) {
  return R.Verdict == DepVerdict::Yes &&
         R.Reason == "paths provably denote the same vertex";
}

/// True when the prepared pair falls inside the reach engine's fragment:
/// a real path comparison (not a Direct miss) over the same type, field,
/// and anchor handle. Everything else the engine cannot decide.
bool reachComparable(const PreparedQuery &Prep) {
  return !Prep.Direct && Prep.S.TypeName == Prep.T.TypeName &&
         Prep.S.Field == Prep.T.Field &&
         Prep.S.Path.Handle == Prep.T.Path.Handle;
}

/// RAII scope for a traced command: installs a collector and enables
/// recording (in timed mode when \p Timed, which also calibrates the
/// fast clock up front); finish() stops recording and flushes this
/// thread's ring (worker rings flush when their pool joins) so the
/// collector holds every event before a writer drains it.
class TraceScope {
public:
  explicit TraceScope(bool Active, bool Timed = false) : Active(Active) {
    if (!Active)
      return;
    trace::setCollector(&Events);
    trace::setTimingEnabled(Timed);
    trace::setEnabled(true);
  }
  ~TraceScope() {
    if (!Active)
      return;
    finish();
    trace::setCollector(nullptr);
  }

  trace::Collector *finish() {
    trace::setEnabled(false);
    trace::setTimingEnabled(false);
    trace::flushThisThread();
    return &Events;
  }

private:
  trace::Collector Events;
  bool Active;
};

/// Aggregates the collected timed events and writes --profile /
/// --profile-folded files (no-op when neither was requested). Publishes
/// the aggregate as apt.prof.* metrics, so call before writeMetricsFile.
/// \p Mode mirrors the trace header ("prove", "pair", "batch"). The
/// document gains a "build" identity block and, for daemon-served runs,
/// the "request" id (both optional in docs/profile_schema.json).
bool writeProfileFiles(const CommandIo &Io, const ObsFlags &Obs,
                       const trace::Collector *Events, const char *Mode) {
  if (!Obs.profiling() || !Events)
    return true;
  // Snapshot, not drain: the trace writer may still need the events.
  Profile P = Profile::fromCollector(*Events);
  P.publishMetrics();
  if (!Obs.ProfileFile.empty()) {
    std::ofstream Out(Obs.ProfileFile);
    if (!Out) {
      errf(Io, "error: cannot write '%s'\n", Obs.ProfileFile.c_str());
      return false;
    }
    JsonValue Doc = P.toJson(Mode);
    Doc.asObject().emplace("build", version::buildJson());
    if (Io.RequestId)
      Doc.asObject().emplace("request", Io.RequestId);
    Out << Doc.dumpPretty() << '\n';
  }
  if (!Obs.ProfileFoldedFile.empty()) {
    std::ofstream Out(Obs.ProfileFoldedFile);
    if (!Out) {
      errf(Io, "error: cannot write '%s'\n", Obs.ProfileFoldedFile.c_str());
      return false;
    }
    Out << P.toFolded();
  }
  return true;
}

/// Writes the --trace-chrome timeline (no-op when not requested). Uses
/// Collector::snapshot(), so it must run before the JSONL trace writer
/// drains the collector. \p Mode labels the process track.
bool writeChromeFile(const CommandIo &Io, const ObsFlags &Obs,
                     const trace::Collector *Events, const char *Mode) {
  if (Obs.ChromeFile.empty() || !Events)
    return true;
  std::ofstream Out(Obs.ChromeFile);
  if (!Out) {
    errf(Io, "error: cannot write '%s'\n", Obs.ChromeFile.c_str());
    return false;
  }
  trace::ChromeTraceOptions CO;
  CO.ProcessName = std::string("aptc ") + Mode;
  CO.RequestId = Io.RequestId;
  trace::writeChromeTrace(Out, Events->snapshot(), CO);
  return true;
}

/// Writes the metrics registry as pretty JSON — the delta since the
/// request's entry baseline, so a daemon-routed request reports its own
/// numbers rather than process-lifetime totals. In a fresh one-shot
/// process the baseline is empty and the delta equals the totals. A
/// "meta" block carries the build identity and, for daemon-served runs,
/// the request id (optional in docs/metrics_schema.json).
bool writeMetricsFile(const Ctx &C, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out) {
    errf(C.Io, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  JsonValue Doc = metrics::Registry::global().toJsonSince(C.Baseline);
  JsonValue::Object Meta;
  Meta["build"] = version::buildJson();
  if (C.Io.RequestId)
    Meta["request"] = JsonValue(C.Io.RequestId);
  Doc.asObject().emplace("meta", JsonValue(std::move(Meta)));
  Out << Doc.dumpPretty() << '\n';
  return true;
}

/// Publishes one prover's counters into the global registry, for the
/// single-prover commands (`prove`, labeled `deps`) that bypass the
/// batch engine's own publication.
void publishProverMetrics(const Prover &P) {
  metrics::Registry &R = metrics::Registry::global();
  const ProverStats &S = P.stats();
  R.counter("apt.prover.goals_explored").add(S.GoalsExplored);
  R.counter("apt.prover.goal_cache_hits").add(S.GoalCacheHits);
  R.counter("apt.prover.shared_goal_hits").add(S.SharedGoalHits);
  R.counter("apt.prover.hypothesis_hits").add(S.HypothesisHits);
  R.counter("apt.prover.alt_splits").add(S.AltSplits);
  R.counter("apt.prover.inductions").add(S.Inductions);
  R.counter("apt.prover.budget_exhausted").add(S.BudgetExhausted);
}

/// Resident axiom-file load: parses once per file version, replays the
/// rendered parse diagnostics on every request (so warm stderr equals
/// cold stderr). Returns nullptr after reporting when the file is
/// unreadable or failed to parse (exit 2 either way).
Session *axiomSession(Ctx &C, const char *Path, bool &Ok) {
  Ok = false;
  Session *S = C.State.fileSession(Path, C.Io.Err);
  if (!S)
    return nullptr;
  if (!S->AxiomsParsed) {
    DiagnosticEngine Diags;
    S->Axioms = parseAxiomFile(S->Source, S->Path, S->Fields, Diags);
    S->AxiomDiags = Diags.empty() ? std::string() : Diags.render();
    S->AxiomFp = Prover::axiomSetFingerprint(S->Axioms.Axioms);
    S->AxiomsParsed = true;
  }
  if (!S->AxiomDiags.empty())
    errf(C.Io, "%s", S->AxiomDiags.c_str());
  Ok = S->Axioms.Ok;
  return S;
}

/// Resident program load; a failed parse is resident too (the error
/// replays until the file changes on disk).
Session *programSession(Ctx &C, const char *Path, bool &Ok) {
  Ok = false;
  Session *S = C.State.fileSession(Path, C.Io.Err);
  if (!S)
    return nullptr;
  if (!S->ProgramParsed) {
    S->Program = parseProgram(S->Source, S->Fields);
    S->ProgramParsed = true;
  }
  if (!S->Program) {
    errf(C.Io, "%s: %s\n", Path, S->Program.Error.c_str());
    return S;
  }
  Ok = true;
  return S;
}

int cmdProve(Ctx &C, int Argc, char **Argv) {
  const CommandIo &Io = C.Io;
  ObsFlags Obs;
  if (!parseObsFlags(Io, Argc, Argv, Obs))
    return 2;
  bool Triage = true;
  if (!parseTriageFlag(Io, Argc, Argv, Triage))
    return 2;
  if (!parseArenaFlag(Io, Argc, Argv))
    return 2;
  EngineSel Engine = EngineSel::Apt;
  if (!parseEngineFlag(Io, Argc, Argv, Engine))
    return 2;
  if (Argc != 3)
    return usage(Io);
  bool AxiomsOk = false;
  Session *S = axiomSession(C, Argv[0], AxiomsOk);
  if (!S || !AxiomsOk)
    return 2;
  // Everything below constructs LangQuerys (the prover's, the checker's,
  // the witness search's, lint's): bind them all to the session store.
  StoreScope Stores(&S->Store);
  FieldTable &Fields = S->Fields;
  const AxiomSet &Axioms = S->Axioms.Axioms;
  {
    DiagnosticEngine LintDiags;
    AxiomLintInput In;
    In.Axioms = &Axioms;
    In.File = Argv[0];
    In.Alphabet = S->Axioms.DeclaredFields;
    lintAxiomSet(In, Fields, LintDiags);
    warnOnlyLint(Io, LintDiags);
  }
  RegexParseResult P = parseRegex(Argv[1], Fields);
  RegexParseResult Q = parseRegex(Argv[2], Fields);
  if (!P || !Q) {
    errf(Io, "error: bad path: %s\n", (!P ? P.Error : Q.Error).c_str());
    return 2;
  }

  outf(Io, "axioms:\n%s\n", Axioms.toString(Fields).c_str());
  if (Engine == EngineSel::Reach) {
    // Reach-only mode: no proof search at all; the model-based engine's
    // bounded verdict is the whole answer. Trace/profile surfaces are
    // prover-shaped, so only --metrics-json applies here.
    ReachEngine RE(Fields);
    ReachAnswer A = RE.answer(Axioms, P.Value, Q.Value);
    int Exit = printReachAnswer(Io, Fields, P.Value, Q.Value, A);
    if (!Obs.MetricsFile.empty() && !writeMetricsFile(C, Obs.MetricsFile))
      return 2;
    return Exit;
  }
  TraceScope Scope(Obs.tracing(), Obs.timed());
  Prover Prover(Fields);
  int Exit;
  // Triage screen (docs/TRIAGE.md): when the two top-level languages
  // overlap outright, no proof of disjointness can exist -- the prover's
  // own PruneIntersectingLanguages gate refutes such goals immediately --
  // so skip the proof search and go straight to the NO PROOF report.
  bool Proved;
  if (Triage) {
    LangQuery Screen;
    Proved = Screen.disjoint(P.Value, Q.Value) &&
             Prover.proveDisjoint(Axioms, P.Value, Q.Value);
  } else {
    Proved = Prover.proveDisjoint(Axioms, P.Value, Q.Value);
  }
  if (Proved) {
    outf(Io, "PROVED: forall x: x.%s <> x.%s\n\n%s",
         P.Value->toString(Fields).c_str(), Q.Value->toString(Fields).c_str(),
         Prover.proofText().c_str());
    LangQuery CheckerLang;
    ProofCheckResult Checked = checkProof(*Prover.proof(), Axioms, CheckerLang);
    if (!Checked.Ok) {
      errf(Io, "INTERNAL: proof failed re-verification: %s\n",
           Checked.Error.c_str());
      return 2;
    }
    outf(Io, "\n(proof independently re-verified)\n");
    Exit = 0;
  } else {
    outf(Io, "NO PROOF (verdict: Maybe): forall x: x.%s <> x.%s\n",
         P.Value->toString(Fields).c_str(), Q.Value->toString(Fields).c_str());
    // When the two languages overlap outright, the on-the-fly product
    // yields a shortest shared word: the concrete path both expressions
    // can denote. Print it — it is the counterexample a user needs.
    LangQuery WitnessLang;
    if (!WitnessLang.disjoint(P.Value, Q.Value) && WitnessLang.lastWitness()) {
      std::string Path = "x";
      for (FieldId F : *WitnessLang.lastWitness()) {
        Path += ".";
        Path += Fields.name(F);
      }
      outf(Io, "languages overlap: both expressions can denote %s\n",
           Path.c_str());
    }
    Exit = 1;
  }
  if (Engine == EngineSel::Both) {
    // Cross-engine differential: a sound prover can never prove disjoint
    // a pair the reach engine overlaps in a satisfying model. The other
    // direction (no proof, but bounded independence) is the expected
    // asymmetry, reported but never a conflict.
    ReachEngine RE(Fields);
    ReachAnswer A = RE.answer(Axioms, P.Value, Q.Value);
    if (Proved && A.Verdict == ReachVerdict::Overlap) {
      outf(Io, "cross-check: CONFLICT: the prover proved disjointness but "
               "the reachability engine found an overlap witness\n");
      if (A.Witness)
        printReachWitness(Io, Fields, *A.Witness);
      Exit = 3;
    } else {
      outf(Io, "cross-check: apt=%s reach=%s (no conflict; %u models)\n",
           Proved ? "proved" : "maybe", reachVerdictName(A.Verdict),
           static_cast<unsigned>(A.ModelsChecked));
    }
  }
  trace::Collector *Events = Obs.tracing() ? Scope.finish() : nullptr;
  if (!writeProfileFiles(Io, Obs, Events, "prove"))
    return 2;
  if (!writeChromeFile(Io, Obs, Events, "prove"))
    return 2;
  if (!Obs.TraceFile.empty()) {
    std::ofstream Out(Obs.TraceFile);
    if (!Out) {
      errf(Io, "error: cannot write '%s'\n", Obs.TraceFile.c_str());
      return 2;
    }
    writeProveTrace(Out, Axioms, P.Value, Q.Value, Fields, Prover.options(),
                    Events, Io.RequestId);
  }
  publishProverMetrics(Prover);
  if (!Obs.MetricsFile.empty() && !writeMetricsFile(C, Obs.MetricsFile))
    return 2;
  return Exit;
}

/// Flags shared by the program-consuming subcommands. `deps` uses all of
/// them; `loops` and `dump` only honor --invariant-writes.
struct ProgramFlags {
  AnalyzerOptions Analyzer;
  EngineSel Engine = EngineSel::Apt;
  unsigned Jobs = 0; ///< 0 = hardware concurrency.
  bool Stats = false;
  ObsFlags Obs;
};

bool parseFlags(const CommandIo &Io, int &Argc, char **Argv,
                ProgramFlags &Flags) {
  if (!parseObsFlags(Io, Argc, Argv, Flags.Obs))
    return false;
  if (!parseTriageFlag(Io, Argc, Argv, Flags.Analyzer.Triage))
    return false;
  if (!parseOnOffFlag(Io, Argc, Argv, "--reach-prepass",
                      Flags.Analyzer.ReachPrepass))
    return false;
  if (!parseArenaFlag(Io, Argc, Argv))
    return false;
  if (!parseEngineFlag(Io, Argc, Argv, Flags.Engine))
    return false;
  auto Remove = [&](int I, int N) {
    for (int J = I; J + N < Argc; ++J)
      Argv[J] = Argv[J + N];
    Argc -= N;
  };
  for (int I = 0; I < Argc;) {
    if (std::strcmp(Argv[I], "--invariant-writes") == 0) {
      Flags.Analyzer.InvariantPreservingWrites = true;
      Remove(I, 1);
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Flags.Stats = true;
      Remove(I, 1);
    } else if (std::strcmp(Argv[I], "--jobs") == 0) {
      if (I + 1 >= Argc) {
        errf(Io, "error: --jobs requires a thread count\n");
        return false;
      }
      char *End = nullptr;
      long N = std::strtol(Argv[I + 1], &End, 10);
      if (End == Argv[I + 1] || *End != '\0' || N < 1) {
        errf(Io, "error: bad --jobs value '%s'\n", Argv[I + 1]);
        return false;
      }
      Flags.Jobs = static_cast<unsigned>(N);
      Remove(I, 2);
    } else {
      ++I;
    }
  }
  return true;
}

/// Batch mode: every labeled statement pair of every function, answered
/// by the parallel engine. Verdict lines go to stdout (identical for
/// every --jobs value); --stats instrumentation goes to stderr so the
/// verdict stream stays byte-comparable across runs.
///
/// The engine is resident: the first request with a given analyzer
/// configuration builds (and analyzes) it; later requests against the
/// same file version reuse it, warm. `--stats` reports the delta since
/// this request started — BatchStats::since(zero) is the identity, so a
/// fresh engine's first run prints the same block it always did.
int cmdDepsBatch(Ctx &C, Session &S, const ProgramFlags &Flags) {
  const CommandIo &Io = C.Io;
  auto Key = std::make_tuple(Flags.Analyzer.Triage,
                             Flags.Analyzer.InvariantPreservingWrites,
                             Flags.Analyzer.ReachPrepass);
  std::unique_ptr<BatchQueryEngine> &Slot = S.Engines[Key];
  if (!Slot) {
    BatchOptions Opts;
    Opts.Analyzer = Flags.Analyzer;
    Opts.Jobs = Flags.Jobs;
    Opts.ExternalGoalCache = &S.Goals;
    Opts.ExternalLangCache = &S.Lang;
    Slot = std::make_unique<BatchQueryEngine>(S.Program.Value, S.Fields, Opts);
  } else {
    Slot->setJobs(Flags.Jobs);
  }
  BatchQueryEngine &Engine = *Slot;
  if (Flags.Engine == EngineSel::Reach) {
    // Reach-only batch: per-pair bounded verdicts from the model-based
    // engine, no prover fan-out. Pairs outside the engine's fragment
    // (different types, fields, or anchor handles) print "unknown".
    ReachEngine RE(S.Fields);
    bool AnyOverlap = false;
    for (const BatchQuery &Q : Engine.plan()) {
      PreparedQuery Prep =
          Engine.engineFor(Q.Func)->prepareStatementPair(Q.LabelS, Q.LabelT);
      const char *V = "unknown";
      std::optional<ReachWitness> W;
      if (reachComparable(Prep)) {
        ReachAnswer A =
            RE.answer(Prep.Axioms, Prep.S.Path.Path, Prep.T.Path.Path);
        V = reachVerdictName(A.Verdict);
        if (A.Verdict == ReachVerdict::Overlap) {
          AnyOverlap = true;
          W = std::move(A.Witness);
        }
      }
      outf(Io, "fn %s: reach(%s, %s) = %s\n", Q.Func.c_str(),
           Q.LabelS.c_str(), Q.LabelT.c_str(), V);
      if (W)
        printReachWitness(Io, S.Fields, *W);
    }
    return AnyOverlap ? 1 : 0;
  }
  BatchStats StatsBase = Engine.stats();
  TraceScope Scope(Flags.Obs.tracing(), Flags.Obs.timed());
  std::vector<BatchResult> Results = Engine.runAll();
  bool AllNo = true;
  for (const BatchResult &R : Results) {
    outf(Io, "fn %s: deptest(%s, %s) = %s (%s: %s)\n", R.Query.Func.c_str(),
         R.Query.LabelS.c_str(), R.Query.LabelT.c_str(),
         depVerdictName(R.Result.Verdict), depKindName(R.Result.Kind),
         R.Result.Reason.c_str());
    AllNo &= R.Result.Verdict == DepVerdict::No;
  }
  int Exit = AllNo ? 0 : 1;
  if (Flags.Engine == EngineSel::Both) {
    // Three-way acceptance gate: every prover-grounded claim is replayed
    // against the reach engine. An APT Maybe the engine bounds as
    // independent is the allowed asymmetry (counted, never a conflict);
    // a proved claim the engine refutes with a witness is a conflict.
    ReachEngine RE(S.Fields);
    uint64_t Compared = 0, ReachIndep = 0, Conflicts = 0;
    for (const BatchResult &R : Results) {
      const DepQueryEngine *FE = Engine.engineFor(R.Query.Func);
      if (!FE)
        continue;
      PreparedQuery Prep =
          FE->prepareStatementPair(R.Query.LabelS, R.Query.LabelT);
      if (!reachComparable(Prep))
        continue;
      ++Compared;
      ReachAnswer A =
          RE.answer(Prep.Axioms, Prep.S.Path.Path, Prep.T.Path.Path);
      bool Conflict =
          (proverProvedNo(R.Result) && A.Verdict == ReachVerdict::Overlap) ||
          (proverProvedYes(R.Result) && A.NotAlwaysEqual);
      if (Conflict) {
        ++Conflicts;
        outf(Io,
             "cross-check CONFLICT: fn %s (%s, %s): apt says '%s' but the "
             "reachability engine disagrees\n",
             R.Query.Func.c_str(), R.Query.LabelS.c_str(),
             R.Query.LabelT.c_str(), R.Result.Reason.c_str());
        if (A.Witness)
          printReachWitness(Io, S.Fields, *A.Witness);
      } else if (R.Result.Verdict == DepVerdict::Maybe &&
                 A.Verdict == ReachVerdict::Independent) {
        ++ReachIndep;
      }
    }
    outf(Io,
         "cross-check: %u pairs, %u compared, %u reach-only-independent, "
         "%u conflicts\n",
         static_cast<unsigned>(Results.size()), static_cast<unsigned>(Compared),
         static_cast<unsigned>(ReachIndep), static_cast<unsigned>(Conflicts));
    if (Conflicts)
      Exit = 3;
  }
  if (Flags.Stats) {
    // One buffered write, after flushing the verdict stream: with stdout
    // and stderr merged (2>&1), per-line writes from the two streams can
    // interleave mid-block under high --jobs; a single write of the
    // whole block cannot.
    std::string Block = Engine.stats().since(StatsBase).toString();
    if (Io.FlushOut)
      Io.FlushOut();
    Io.Err(Block);
  }
  trace::Collector *Events = Flags.Obs.tracing() ? Scope.finish() : nullptr;
  if (!writeProfileFiles(Io, Flags.Obs, Events, "batch"))
    return 2;
  if (!writeChromeFile(Io, Flags.Obs, Events, "deps"))
    return 2;
  if (!Flags.Obs.TraceFile.empty()) {
    std::ofstream Out(Flags.Obs.TraceFile);
    if (!Out) {
      errf(Io, "error: cannot write '%s'\n", Flags.Obs.TraceFile.c_str());
      return 2;
    }
    writeBatchTrace(Out, Engine, Results, S.Fields, Events, Io.RequestId);
  }
  if (!Flags.Obs.MetricsFile.empty() &&
      !writeMetricsFile(C, Flags.Obs.MetricsFile))
    return 2;
  return Exit;
}

int cmdDeps(Ctx &C, int Argc, char **Argv) {
  const CommandIo &Io = C.Io;
  ProgramFlags Flags;
  if (!parseFlags(Io, Argc, Argv, Flags))
    return 2;
  if (Argc != 1 && Argc != 3)
    return usage(Io);
  bool ProgramOk = false;
  Session *S = programSession(C, Argv[0], ProgramOk);
  if (!S || !ProgramOk)
    return 2;
  StoreScope Stores(&S->Store);
  FieldTable &Fields = S->Fields;
  {
    DiagnosticEngine LintDiags;
    lintProgram(S->Program.Value, Argv[0], Fields, LintDiags);
    warnOnlyLint(Io, LintDiags);
  }

  if (Argc == 1)
    return cmdDepsBatch(C, *S, Flags);

  for (const Function &F : S->Program.Value.Functions) {
    if (!findLabeled(F.Body, Argv[1]) || !findLabeled(F.Body, Argv[2]))
      continue;
    DepQueryEngine Engine(S->Program.Value, F, Fields, Flags.Analyzer);
    if (Flags.Engine == EngineSel::Reach) {
      PreparedQuery Prep = Engine.prepareStatementPair(Argv[1], Argv[2]);
      const char *V = "unknown";
      std::optional<ReachWitness> W;
      if (reachComparable(Prep)) {
        ReachEngine RE(Fields);
        ReachAnswer A =
            RE.answer(Prep.Axioms, Prep.S.Path.Path, Prep.T.Path.Path);
        V = reachVerdictName(A.Verdict);
        if (A.Verdict == ReachVerdict::Overlap)
          W = std::move(A.Witness);
      }
      outf(Io, "fn %s: reach(%s, %s) = %s\n", F.Name.c_str(), Argv[1],
           Argv[2], V);
      if (W)
        printReachWitness(Io, Fields, *W);
      return W ? 1 : 0;
    }
    TraceScope Scope(Flags.Obs.tracing(), Flags.Obs.timed());
    Prover P(Fields);
    DepTestResult R = Engine.testStatementPair(Argv[1], Argv[2], P);
    outf(Io, "fn %s: deptest(%s, %s) = %s (%s: %s)\n", F.Name.c_str(),
         Argv[1], Argv[2], depVerdictName(R.Verdict), depKindName(R.Kind),
         R.Reason.c_str());
    if (!R.ProofText.empty())
      outf(Io, "%s", R.ProofText.c_str());
    int Exit = R.Verdict == DepVerdict::No ? 0 : 1;
    if (Flags.Engine == EngineSel::Both) {
      PreparedQuery Prep = Engine.prepareStatementPair(Argv[1], Argv[2]);
      if (reachComparable(Prep)) {
        ReachEngine RE(Fields);
        ReachAnswer A =
            RE.answer(Prep.Axioms, Prep.S.Path.Path, Prep.T.Path.Path);
        bool Conflict =
            (proverProvedNo(R) && A.Verdict == ReachVerdict::Overlap) ||
            (proverProvedYes(R) && A.NotAlwaysEqual);
        if (Conflict) {
          outf(Io,
               "cross-check CONFLICT: apt says '%s' but the reachability "
               "engine disagrees\n",
               R.Reason.c_str());
          if (A.Witness)
            printReachWitness(Io, Fields, *A.Witness);
          Exit = 3;
        } else {
          outf(Io, "cross-check: apt=%s reach=%s (no conflict; %u models)\n",
               depVerdictName(R.Verdict), reachVerdictName(A.Verdict),
               static_cast<unsigned>(A.ModelsChecked));
        }
      } else {
        outf(Io, "cross-check: not comparable (outside the reach fragment)\n");
      }
    }
    if (Flags.Stats) {
      const ProverStats &PS = P.stats();
      if (Io.FlushOut)
        Io.FlushOut();
      errf(Io,
           "prover stats: %llu goals, %llu cache hits, "
           "%llu inductions, %llu alt splits\n",
           static_cast<unsigned long long>(PS.GoalsExplored),
           static_cast<unsigned long long>(PS.GoalCacheHits),
           static_cast<unsigned long long>(PS.Inductions),
           static_cast<unsigned long long>(PS.AltSplits));
    }
    trace::Collector *Events = Flags.Obs.tracing() ? Scope.finish() : nullptr;
    if (!writeProfileFiles(Io, Flags.Obs, Events, "pair"))
      return 2;
    if (!writeChromeFile(Io, Flags.Obs, Events, "deps"))
      return 2;
    if (!Flags.Obs.TraceFile.empty()) {
      std::ofstream Out(Flags.Obs.TraceFile);
      if (!Out) {
        errf(Io, "error: cannot write '%s'\n", Flags.Obs.TraceFile.c_str());
        return 2;
      }
      PreparedQuery Prep = Engine.prepareStatementPair(Argv[1], Argv[2]);
      writePairTrace(Out, Prep.Axioms, Prep.S, Prep.T, R, Fields, P.options(),
                     Events, Io.RequestId);
    }
    publishProverMetrics(P);
    if (!Flags.Obs.MetricsFile.empty() &&
        !writeMetricsFile(C, Flags.Obs.MetricsFile))
      return 2;
    return Exit;
  }
  errf(Io, "error: no function contains both labels '%s' and '%s'\n", Argv[1],
       Argv[2]);
  return 2;
}

int cmdLoops(Ctx &C, int Argc, char **Argv) {
  const CommandIo &Io = C.Io;
  ProgramFlags Flags;
  if (!parseFlags(Io, Argc, Argv, Flags))
    return 2;
  AnalyzerOptions Opts = Flags.Analyzer;
  if (Argc != 1)
    return usage(Io);
  bool ProgramOk = false;
  Session *S = programSession(C, Argv[0], ProgramOk);
  if (!S || !ProgramOk)
    return 2;
  StoreScope Stores(&S->Store);
  FieldTable &Fields = S->Fields;

  bool AllParallel = true;
  for (const Function &F : S->Program.Value.Functions) {
    DepQueryEngine Engine(S->Program.Value, F, Fields, Opts);
    Prover P(Fields);
    for (int LoopId : Engine.loopIds()) {
      LoopParallelism LP = Engine.analyzeLoopParallelism(LoopId, P);
      outf(Io, "fn %-20s loop#%-3d %s\n", F.Name.c_str(), LoopId,
           LP.Parallelizable ? "PARALLELIZABLE" : "sequential");
      AllParallel &= LP.Parallelizable;
    }
  }
  return AllParallel ? 0 : 1;
}

/// `aptc lint <file>`: program mode for `.apt` files (or anything
/// declaring a `fn`), axiom-file mode otherwise. Exit 0 = no errors
/// (warnings allowed), 1 = error findings, 2 = unreadable input.
///
/// Lint runs hermetically — a private FieldTable and a private DFA
/// store, never the session's — so its diagnostics cannot depend on
/// what other requests interned first. (Regex keys embed FieldIds;
/// mixing tables in one store would be unsound. A fresh store also
/// reproduces one-shot behavior exactly.)
int cmdLint(Ctx &C, int Argc, char **Argv) {
  const CommandIo &Io = C.Io;
  LintOptions Opts;
  for (int I = 0; I < Argc;) {
    if (std::strcmp(Argv[I], "--no-models") == 0) {
      Opts.CheckModels = false;
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
    } else {
      ++I;
    }
  }
  if (Argc != 1)
    return usage(Io);
  const char *Path = Argv[0];
  std::ifstream In(Path);
  if (!In) {
    errf(Io, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());

  MinDfaStore LintStore(16);
  StoreScope Stores(&LintStore);
  FieldTable Fields;
  DiagnosticEngine Diags;
  std::string_view PathView(Path);
  bool IsProgram =
      PathView.size() >= 4 && PathView.substr(PathView.size() - 4) == ".apt";
  if (!IsProgram && Text.find("fn ") != std::string::npos)
    IsProgram = true;

  if (IsProgram) {
    ProgramParseResult Prog = parseProgram(Text, Fields);
    if (!Prog) {
      // Parser errors arrive as "line N: message"; re-home them in the
      // structured diagnostics stream.
      int Line = 0;
      std::string Message = Prog.Error;
      if (Message.substr(0, 5) == "line ") {
        size_t Colon = Message.find(':');
        if (Colon != std::string::npos) {
          Line = std::atoi(Message.c_str() + 5);
          Message = std::string(trim(Message.substr(Colon + 1)));
        }
      }
      Diags.error("APT-E007", SourceLoc(Path, Line), Message);
    } else {
      lintProgram(Prog.Value, Path, Fields, Diags, Opts);
    }
  } else {
    AxiomFileContents Contents = parseAxiomFile(Text, Path, Fields, Diags);
    AxiomLintInput LintIn;
    LintIn.Axioms = &Contents.Axioms;
    LintIn.File = Path;
    LintIn.Alphabet = Contents.DeclaredFields;
    lintAxiomSet(LintIn, Fields, Diags, Opts);
  }

  outf(Io, "%s", Diags.render().c_str());
  outf(Io, "lint: %s: %s\n", Path, Diags.summary().c_str());
  return Diags.hasErrors() ? 1 : 0;
}

/// `aptc reach <axioms-file> <pathP> <pathQ>`: the model-based
/// Dyck-reachability engine as a standalone verdict
/// (docs/REACHABILITY.md). Exit 0 = bounded independence across every
/// consulted satisfying model, 1 = witnessed overlap, 2 = input error.
int cmdReach(Ctx &C, int Argc, char **Argv) {
  const CommandIo &Io = C.Io;
  ObsFlags Obs;
  if (!parseObsFlags(Io, Argc, Argv, Obs))
    return 2;
  if (Argc != 3)
    return usage(Io);
  bool AxiomsOk = false;
  Session *S = axiomSession(C, Argv[0], AxiomsOk);
  if (!S || !AxiomsOk)
    return 2;
  StoreScope Stores(&S->Store);
  FieldTable &Fields = S->Fields;
  const AxiomSet &Axioms = S->Axioms.Axioms;
  RegexParseResult P = parseRegex(Argv[1], Fields);
  RegexParseResult Q = parseRegex(Argv[2], Fields);
  if (!P || !Q) {
    errf(Io, "error: bad path: %s\n", (!P ? P.Error : Q.Error).c_str());
    return 2;
  }
  outf(Io, "axioms:\n%s\n", Axioms.toString(Fields).c_str());
  ReachEngine RE(Fields);
  ReachAnswer A = RE.answer(Axioms, P.Value, Q.Value);
  int Exit = printReachAnswer(Io, Fields, P.Value, Q.Value, A);
  outf(Io, "models checked: %u%s\n", static_cast<unsigned>(A.ModelsChecked),
       A.NotAlwaysEqual ? " (always-equal refuted)" : "");
  if (!Obs.MetricsFile.empty() && !writeMetricsFile(C, Obs.MetricsFile))
    return 2;
  return Exit;
}

int cmdDump(Ctx &C, int Argc, char **Argv) {
  const CommandIo &Io = C.Io;
  ProgramFlags Flags;
  if (!parseFlags(Io, Argc, Argv, Flags))
    return 2;
  AnalyzerOptions Opts = Flags.Analyzer;
  if (Argc != 1)
    return usage(Io);
  bool ProgramOk = false;
  Session *S = programSession(C, Argv[0], ProgramOk);
  if (!S || !ProgramOk)
    return 2;
  StoreScope Stores(&S->Store);
  for (const Function &F : S->Program.Value.Functions) {
    AnalysisResult R = analyzeFunction(S->Program.Value, F, S->Fields, Opts);
    outf(Io, "%s\n", dumpAnalysis(R, F, S->Fields).c_str());
  }
  return 0;
}

} // namespace

int apt::svc::runServiceCommand(ServiceState &State,
                                const std::vector<std::string> &Args,
                                const CommandIo &Io) {
  if (Args.empty())
    return usage(Io);
  const std::string &Cmd = Args[0];

  // Mutable argv copy: the flag parsers strip recognized flags in place,
  // exactly as they did over main()'s argv.
  std::vector<std::string> Store(Args.begin() + 1, Args.end());
  std::vector<char *> Argv;
  Argv.reserve(Store.size());
  for (std::string &A : Store)
    Argv.push_back(A.data());
  int Argc = static_cast<int>(Argv.size());

  metrics::Registry &R = metrics::Registry::global();
  Ctx C{State, Io, R.snapshotAll()};
  auto Start = std::chrono::steady_clock::now();

  int Exit;
  if (Cmd == "prove")
    Exit = cmdProve(C, Argc, Argv.data());
  else if (Cmd == "deps")
    Exit = cmdDeps(C, Argc, Argv.data());
  else if (Cmd == "loops")
    Exit = cmdLoops(C, Argc, Argv.data());
  else if (Cmd == "dump")
    Exit = cmdDump(C, Argc, Argv.data());
  else if (Cmd == "lint")
    Exit = cmdLint(C, Argc, Argv.data());
  else if (Cmd == "reach")
    Exit = cmdReach(C, Argc, Argv.data());
  else if (Cmd == "top") {
    // The live view only makes sense against a daemon; aptc routes
    // `top --connect` to runTopCommand before this layer, so reaching
    // here means the flag was missing.
    errf(Io, "error: aptc top requires --connect SOCKET "
             "(it renders a live view of a running aptd)\n");
    return 2;
  } else
    return usage(Io);

  uint64_t WallUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  R.counter("apt.svc.requests").add(1);
  R.counter("apt.svc.cmd." + Cmd).add(1);
  R.histogram("apt.svc.request_wall_us").observe(WallUs);
  return Exit;
}
