//===- service/Snapshot.h - Warm-start cache snapshots ----------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned on-disk serialization of a ServiceState's cache contents,
/// so a cold daemon can warm-start (`aptd --snapshot-load`) with the
/// interned minimal-DFA store, prover goal cache, and language cache of
/// a previous run already populated.
///
/// Format: one strict-JSON document (src/support/Json.h — object keys
/// sort, so serialization is deterministic):
///
///   { "kind": "aptd-snapshot", "version": 1,
///     "sessions": [ { "path", "fingerprint",
///                     "fields": [names in intern order],
///                     "dfas":  [ {"key", "partition", "transitions",
///                                 "accepting", "start", "sink"} ],
///                     "goals": [ [hex-key, bool] ],
///                     "lang":  [ [hex-key, bool] ] } ] }
///
/// The field list is the linchpin: regex structural keys embed FieldIds,
/// so every cache key is only meaningful relative to the interning
/// order. Restore re-interns the names in order into a fresh session,
/// reproducing the exact ids — then every serialized key means what it
/// meant when saved. Parse artifacts (axioms, program, engines) are NOT
/// serialized; the first request against a restored session re-parses
/// the file and verifies its content fingerprint, falling back to a cold
/// session when the file changed. Cache keys are hex-encoded because
/// prover goal keys embed a \x1d fingerprint separator.
///
/// Version policy (docs/SERVICE.md): the version bumps whenever any key
/// or automaton encoding changes; a mismatched version is rejected
/// whole (SnapshotError::Version), never migrated — snapshots are a
/// cache, so the correct recovery is to run cold and re-save.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SERVICE_SNAPSHOT_H
#define APT_SERVICE_SNAPSHOT_H

#include "service/ServiceState.h"
#include "support/Json.h"

#include <cstddef>
#include <string>

namespace apt::svc {

/// Bump whenever the snapshot encoding (or anything a cache key embeds)
/// changes incompatibly.
constexpr int64_t kSnapshotVersion = 1;

enum class SnapshotError {
  None,    ///< Success.
  Io,      ///< Cannot read/write the file.
  Version, ///< Well-formed snapshot of an incompatible version.
  Corrupt, ///< Not valid JSON, or structurally invalid content.
};

/// Maps to the protocol error codes of docs/SERVICE.md (APTD-E004/5/6).
const char *snapshotErrorName(SnapshotError E);

struct SnapshotStats {
  size_t Sessions = 0;
  size_t DfaEntries = 0;
  size_t GoalEntries = 0;
  size_t LangEntries = 0;
};

/// Serializes every session of \p State (deterministic).
JsonValue snapshotToJson(const ServiceState &State);

/// Restores \p Doc into \p State, replacing any resident session that
/// shares a path with a serialized one. On failure nothing is partially
/// restored (sessions are validated before installation) and \p Error
/// carries a one-line description.
SnapshotError snapshotFromJson(const JsonValue &Doc, ServiceState &State,
                               SnapshotStats &Stats, std::string &Error);

/// snapshotToJson + write to \p Path. Returns false with \p Error set on
/// I/O failure.
bool saveSnapshot(const ServiceState &State, const std::string &Path,
                  SnapshotStats &Stats, std::string &Error);

/// Read + parse + snapshotFromJson.
SnapshotError loadSnapshot(ServiceState &State, const std::string &Path,
                           SnapshotStats &Stats, std::string &Error);

/// Serialization of one ClassDfa through its public raw-parts API
/// (regex/Alphabet.h). Exposed for the warm-start benchmark and tests.
JsonValue classDfaToJson(const ClassDfa &D);
bool classDfaFromJson(const JsonValue &V, ClassDfa &Out, std::string &Error);

/// Serialization of one MinDfaStore (an array of {key, dfa} entries,
/// sorted by key). Exposed for the warm-start benchmark
/// (bench/service_warmstart.cpp), which measures exactly this path.
JsonValue storeToJson(const MinDfaStore &Store);
SnapshotError storeFromJson(const JsonValue &V, MinDfaStore &Store,
                            size_t &Entries, std::string &Error);

} // namespace apt::svc

#endif // APT_SERVICE_SNAPSHOT_H
