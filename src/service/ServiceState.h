//===- service/ServiceState.h - Resident analysis sessions ------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's resident state: one Session per loaded input file, each
/// owning the caches that make repeat queries cheap — the interned
/// minimal-DFA store, the cross-thread goal/language caches, the parsed
/// axioms or program, and the batch engines built from them.
///
/// Why per-file rather than process-wide: regex structural keys embed
/// interned FieldIds (Regex.h), so a DFA keyed under one FieldTable is
/// meaningless — or worse, wrong — under another. Each session therefore
/// owns its own FieldTable and its own MinDfaStore, and the command
/// layer installs that store as the thread default
/// (MinDfaStore::setThreadDefault) for the duration of a request so
/// every internally constructed LangQuery binds to it. A one-shot `aptc`
/// run is just a ServiceState that lives for one command: a fresh
/// session's empty caches behave exactly like the globals a fresh
/// process starts with, which is what keeps daemon and one-shot output
/// byte-identical (tools/service_parity_check.py).
///
/// Invalidation is content-keyed: every request re-reads the file and
/// compares its FNV-1a fingerprint to the resident one. A match reuses
/// everything; a mismatch drops the parse artifacts and prepared
/// engines, evicts goal-cache entries minted under the superseded
/// axiom-set fingerprint, and keeps the FieldTable (append-only, so
/// surviving ids stay valid), the DFA store, and the language cache —
/// their entries are keyed by regex structure and survive edits.
/// docs/SERVICE.md spells out the full lifecycle.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SERVICE_SERVICESTATE_H
#define APT_SERVICE_SERVICESTATE_H

#include "analysis/QueryEngine.h"
#include "ir/Parser.h"
#include "lint/AxiomFile.h"
#include "regex/Minimize.h"
#include "support/FieldTable.h"
#include "support/ShardedCache.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

namespace apt::svc {

/// FNV-1a 64-bit content hash, rendered as 16 hex digits. Stable across
/// processes, so snapshot fingerprints remain comparable after restart.
std::string contentFingerprint(std::string_view Bytes);

/// Resident state for one loaded input file (axiom file or program).
/// Everything here is request-thread-owned; the only concurrency is the
/// batch engine's worker pool, which the sharded caches already handle.
class Session {
public:
  explicit Session(std::string PathIn) : Path(std::move(PathIn)) {}

  std::string Path;
  std::string Fingerprint; ///< contentFingerprint of Source.
  std::string Source;      ///< File bytes as last loaded.

  /// Append-only across requests: re-parsing identical content interns
  /// identical names to identical ids, which is what keeps regex keys —
  /// and with them every cache below — stable for the session lifetime.
  FieldTable Fields;

  MinDfaStore Store{32};     ///< Interned minimal class DFAs.
  ShardedBoolCache Goals{32}; ///< Cross-request prover goal verdicts.
  ShardedBoolCache Lang{64};  ///< Cross-request language-query answers.

  /// Axiom-file residency (`prove`). AxiomDiags holds the rendered parse
  /// diagnostics so warm requests replay the same stderr bytes a cold
  /// parse would print.
  bool AxiomsParsed = false;
  AxiomFileContents Axioms;
  std::string AxiomDiags;
  size_t AxiomFp = 0; ///< Prover::axiomSetFingerprint of Axioms.Axioms.

  /// Program residency (`deps`/`loops`/`dump`). A failed parse is
  /// resident too: the error replays until the file changes.
  bool ProgramParsed = false;
  ProgramParseResult Program;

  /// Resident batch engines, keyed by the analyzer options that shape
  /// their analyses: (Triage, InvariantPreservingWrites, ReachPrepass).
  /// Jobs is not part of the key — verdicts are jobs-invariant, so a
  /// resident engine serves any --jobs value via
  /// BatchQueryEngine::setJobs.
  std::map<std::tuple<bool, bool, bool>, std::unique_ptr<BatchQueryEngine>>
      Engines;

  uint64_t Requests = 0; ///< Requests served against this session.
};

/// All resident sessions. The daemon owns one for its lifetime; one-shot
/// `aptc` owns one per command.
class ServiceState {
public:
  using ErrSink = std::function<void(std::string_view)>;

  /// The session for \p Path, after re-reading the file: a fingerprint
  /// match reuses resident state, a mismatch invalidates (see file
  /// comment), a new path creates a fresh session. Returns nullptr when
  /// the file cannot be read, after writing the same
  /// "error: cannot open '<path>'\n" line one-shot aptc prints.
  Session *fileSession(const std::string &Path, const ErrSink &Err);

  /// The resident session for \p Path without touching the filesystem,
  /// or nullptr. Snapshot serialization and tests.
  Session *findSession(const std::string &Path);
  const Session *findSession(const std::string &Path) const;

  /// The session for \p Path, created empty if absent (no file I/O).
  /// Snapshot restore populates sessions through this.
  Session &obtainSession(const std::string &Path);

  /// Drops the session for \p Path entirely. Snapshot restore uses this
  /// to replace a resident session wholesale.
  void dropSession(const std::string &Path);

  /// Installs a fully built session under its own path, replacing any
  /// resident one. Snapshot restore builds sessions off to the side and
  /// adopts them only once the whole document validated.
  void adoptSession(std::unique_ptr<Session> S);

  const std::map<std::string, std::unique_ptr<Session>> &sessions() const {
    return Sessions;
  }

private:
  std::map<std::string, std::unique_ptr<Session>> Sessions;
};

/// RAII thread-default DFA store override: every LangQuery constructed
/// on this thread while the scope is live binds to \p S (the session
/// store), including the ones buried inside Prover, lint, and trace
/// export. Restores the previous default on exit.
class StoreScope {
public:
  explicit StoreScope(MinDfaStore *S) : Prev(MinDfaStore::setThreadDefault(S)) {}
  ~StoreScope() { MinDfaStore::setThreadDefault(Prev); }
  StoreScope(const StoreScope &) = delete;
  StoreScope &operator=(const StoreScope &) = delete;

private:
  MinDfaStore *Prev;
};

} // namespace apt::svc

#endif // APT_SERVICE_SERVICESTATE_H
