//===- service/Server.cpp -------------------------------------------------===//
//
// Part of the APT project; see Server.h for the threading model.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "service/Snapshot.h"
#include "support/Metrics.h"
#include "support/Timeline.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace apt;
using namespace apt::svc;

namespace {

volatile sig_atomic_t GotSignal = 0;

void onSignal(int) { GotSignal = 1; }

/// Reads from \p Fd into \p Buf until it holds at least one full line or
/// the peer closes. Returns false on EOF/error with no complete line.
bool readLine(int Fd, std::string &Buf, std::string &Line) {
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return true;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      return false;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool writeAll(int Fd, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t N = ::write(Fd, S.data() + Off, S.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int apt::svc::runServer(ServiceState &State, const ServerOptions &Opts) {
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "aptd: --socket is required\n");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "aptd: socket path too long: '%s'\n",
                 Opts.SocketPath.c_str());
    return 1;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  if (!Opts.SnapshotLoad.empty()) {
    SnapshotStats Stats;
    std::string Err;
    SnapshotError E = loadSnapshot(State, Opts.SnapshotLoad, Stats, Err);
    if (E != SnapshotError::None) {
      std::fprintf(stderr, "aptd: snapshot load failed (%s): %s\n",
                   snapshotErrorName(E), Err.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "aptd: warm start: %zu session(s), %zu dfa / %zu goal / "
                 "%zu lang entries\n",
                 Stats.Sessions, Stats.DfaEntries, Stats.GoalEntries,
                 Stats.LangEntries);
  }

  // A stale socket file from a crashed daemon would make bind fail;
  // remove it up front. A *live* daemon on the same path loses its
  // socket too — callers own path uniqueness (the CI harness keys paths
  // by pid).
  ::unlink(Opts.SocketPath.c_str());

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::perror("aptd: socket");
    return 1;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 16) < 0) {
    std::perror("aptd: bind/listen");
    ::close(ListenFd);
    return 1;
  }

  // A peer that disconnects mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::fprintf(stderr, "aptd: listening on %s\n", Opts.SocketPath.c_str());

  ProtocolHandler Handler(State, Opts.SlowMs);
  if (!Opts.SnapshotLoad.empty())
    Handler.noteSnapshotLoaded(); // the warm start above succeeded

  // The time-series ring lives here, on the same thread as the handler
  // that serves it (Timeline is single-threaded by design). Sampling
  // rides the idle side of the poll loop: the timeout shrinks to the
  // sampling interval so a quiet daemon still ticks on time, and a busy
  // one samples between connections (per-sample skew, never drift).
  metrics::Timeline Timeline(Opts.TimelineCapacity);
  auto Start = std::chrono::steady_clock::now();
  auto NowMs = [&Start] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  };
  uint64_t LastSampleMs = 0;
  int PollTimeoutMs = 500;
  if (Opts.TimelineMs != 0) {
    Handler.setTimeline(&Timeline, Opts.TimelineMs);
    Timeline.sample(metrics::Registry::global(), 0); // t=0 baseline
    PollTimeoutMs = static_cast<int>(
        std::min<uint64_t>(500, Opts.TimelineMs));
  }

  bool Shutdown = false;
  while (!Shutdown && !GotSignal) {
    if (Opts.TimelineMs != 0) {
      uint64_t Now = NowMs();
      if (Now - LastSampleMs >= Opts.TimelineMs) {
        Timeline.sample(metrics::Registry::global(), Now);
        LastSampleMs = Now;
      }
    }
    pollfd Pfd{ListenFd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, PollTimeoutMs);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      std::perror("aptd: poll");
      break;
    }
    if (Ready == 0)
      continue;
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    // One connection at a time, all its requests in order (see Server.h).
    std::string Buf, Line;
    while (!Shutdown && readLine(ClientFd, Buf, Line)) {
      std::string Response = Handler.handleLine(Line, Shutdown);
      Response.push_back('\n');
      if (!writeAll(ClientFd, Response))
        break;
    }
    ::close(ClientFd);
  }

  ::close(ListenFd);
  ::unlink(Opts.SocketPath.c_str());

  if (!Opts.SnapshotSave.empty()) {
    SnapshotStats Stats;
    std::string Err;
    if (!saveSnapshot(State, Opts.SnapshotSave, Stats, Err)) {
      std::fprintf(stderr, "aptd: snapshot save failed: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "aptd: snapshot saved: %zu session(s), %zu dfa / %zu goal / "
                 "%zu lang entries\n",
                 Stats.Sessions, Stats.DfaEntries, Stats.GoalEntries,
                 Stats.LangEntries);
  }
  return 0;
}
