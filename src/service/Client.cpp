//===- service/Client.cpp -------------------------------------------------===//
//
// Part of the APT project; see Client.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace apt;
using namespace apt::svc;

namespace {

bool writeAll(int Fd, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t N = ::write(Fd, S.data() + Off, S.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

int apt::svc::runViaDaemon(const std::string &SocketPath,
                           const std::vector<std::string> &Args) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "aptc: socket path too long: '%s'\n",
                 SocketPath.c_str());
    return 2;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("aptc: socket");
    return 2;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "aptc: cannot connect to aptd at '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return 2;
  }

  JsonValue::Array Argv;
  for (const std::string &A : Args)
    Argv.push_back(JsonValue(A));
  JsonValue::Object Req;
  Req["id"] = JsonValue(static_cast<int64_t>(1));
  Req["op"] = JsonValue("run");
  Req["argv"] = JsonValue(std::move(Argv));
  std::string Line = JsonValue(std::move(Req)).dump();
  Line.push_back('\n');
  if (!writeAll(Fd, Line)) {
    std::fprintf(stderr, "aptc: failed sending request to aptd\n");
    ::close(Fd);
    return 2;
  }

  std::string Buf;
  char Chunk[4096];
  size_t Nl;
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0) {
      std::fprintf(stderr, "aptc: aptd closed the connection mid-response\n");
      ::close(Fd);
      return 2;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  JsonParseResult Parsed = parseJson(std::string_view(Buf.data(), Nl));
  if (!Parsed) {
    std::fprintf(stderr, "aptc: invalid response from aptd: %s\n",
                 Parsed.Error.c_str());
    return 2;
  }
  const JsonValue &Resp = Parsed.Value;
  if (!Resp["ok"].isBool() || !Resp["ok"].asBool()) {
    const JsonValue &E = Resp["error"];
    std::fprintf(stderr, "aptc: aptd error %s: %s\n",
                 E["code"].isString() ? E["code"].asString().c_str() : "?",
                 E["message"].isString() ? E["message"].asString().c_str()
                                         : "unknown error");
    return 2;
  }
  const JsonValue &Result = Resp["result"];
  if (!Result["exit"].isInt() || !Result["stdout"].isString() ||
      !Result["stderr"].isString()) {
    std::fprintf(stderr, "aptc: malformed run result from aptd\n");
    return 2;
  }
  // Replay the daemon-captured streams verbatim; stdout first, flushed,
  // then stderr — the same ordering the one-shot CLI guarantees.
  const std::string &Out = Result["stdout"].asString();
  const std::string &Err = Result["stderr"].asString();
  std::fwrite(Out.data(), 1, Out.size(), stdout);
  std::fflush(stdout);
  std::fwrite(Err.data(), 1, Err.size(), stderr);
  return static_cast<int>(Result["exit"].asInt());
}
