//===- service/Client.cpp -------------------------------------------------===//
//
// Part of the APT project; see Client.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace apt;
using namespace apt::svc;

namespace {

bool writeAll(int Fd, const std::string &S) {
  size_t Off = 0;
  while (Off < S.size()) {
    ssize_t N = ::write(Fd, S.data() + Off, S.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Connects to the daemon socket; -1 with a stderr line on failure.
int connectDaemon(const std::string &SocketPath) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "aptc: socket path too long: '%s'\n",
                 SocketPath.c_str());
    return -1;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("aptc: socket");
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "aptc: cannot connect to aptd at '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Sends \p Request (one line) and reads one response line into \p Out.
bool roundTrip(int Fd, JsonValue Request, std::string &Out) {
  std::string Line = Request.dump();
  Line.push_back('\n');
  if (!writeAll(Fd, Line)) {
    std::fprintf(stderr, "aptc: failed sending request to aptd\n");
    return false;
  }
  Out.clear();
  char Chunk[4096];
  size_t Nl;
  static thread_local std::string Buf; // leftover bytes between calls
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0) {
      std::fprintf(stderr, "aptc: aptd closed the connection mid-response\n");
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  Out = Buf.substr(0, Nl);
  Buf.erase(0, Nl + 1);
  return true;
}

/// Sends one parameterless \p Op request and returns its "result", or a
/// null value after explaining the failure on stderr.
JsonValue fetchOp(int Fd, const char *Op) {
  JsonValue::Object Req;
  Req["id"] = JsonValue(static_cast<int64_t>(1));
  Req["op"] = JsonValue(Op);
  std::string RespLine;
  if (!roundTrip(Fd, JsonValue(std::move(Req)), RespLine))
    return JsonValue();
  JsonParseResult Parsed = parseJson(RespLine);
  if (!Parsed) {
    std::fprintf(stderr, "aptc: invalid response from aptd: %s\n",
                 Parsed.Error.c_str());
    return JsonValue();
  }
  if (!Parsed.Value["ok"].isBool() || !Parsed.Value["ok"].asBool()) {
    const JsonValue &E = Parsed.Value["error"];
    std::fprintf(stderr, "aptc: aptd error %s: %s\n",
                 E["code"].isString() ? E["code"].asString().c_str() : "?",
                 E["message"].isString() ? E["message"].asString().c_str()
                                         : "unknown error");
    return JsonValue();
  }
  return Parsed.Value["result"];
}

uint64_t asU64(const JsonValue &V) {
  return V.isInt() ? static_cast<uint64_t>(V.asInt()) : 0;
}

/// One rendered frame of the live view, built off-screen and written in
/// a single fwrite so a refresh never shows a torn table.
std::string renderTopFrame(const std::string &SocketPath,
                           const JsonValue &Status,
                           const JsonValue &Timeline) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "aptd @ %s — up %.1f s, %llu request(s), %llu slow\n",
                SocketPath.c_str(),
                static_cast<double>(asU64(Status["uptime_ms"])) / 1000.0,
                static_cast<unsigned long long>(asU64(Status["requests"])),
                static_cast<unsigned long long>(
                    asU64(Status["slow_queries"])));
  Out += Buf;

  const JsonValue &Snap = Status["snapshot"];
  if (Snap["loaded"].isBool() && Snap["loaded"].asBool()) {
    std::snprintf(Buf, sizeof(Buf), "snapshot: loaded %.1f s ago\n",
                  static_cast<double>(asU64(Snap["age_ms"])) / 1000.0);
    Out += Buf;
  } else {
    Out += "snapshot: none\n";
  }

  Out += "\nops:                 count   total_us     max_us     p50_us"
         "     p99_us\n";
  if (Status["ops"].isObject()) {
    for (const auto &[Op, S] : Status["ops"].asObject()) {
      std::snprintf(Buf, sizeof(Buf),
                    "  %-16s %8llu %10llu %10llu %10llu %10llu\n", Op.c_str(),
                    static_cast<unsigned long long>(asU64(S["count"])),
                    static_cast<unsigned long long>(asU64(S["total_us"])),
                    static_cast<unsigned long long>(asU64(S["max_us"])),
                    static_cast<unsigned long long>(asU64(S["p50_us"])),
                    static_cast<unsigned long long>(asU64(S["p99_us"])));
      Out += Buf;
    }
  }

  Out += "\nsessions:            reqs    dfa     goal    lang\n";
  if (Status["sessions"].isArray()) {
    for (const JsonValue &S : Status["sessions"].asArray()) {
      std::string Path = S["path"].isString() ? S["path"].asString() : "?";
      if (Path.size() > 18) // keep the table aligned; tails matter most
        Path = "…" + Path.substr(Path.size() - 17);
      std::snprintf(Buf, sizeof(Buf), "  %-18s %6llu %7llu %7llu %7llu\n",
                    Path.c_str(),
                    static_cast<unsigned long long>(asU64(S["requests"])),
                    static_cast<unsigned long long>(asU64(S["dfa_entries"])),
                    static_cast<unsigned long long>(asU64(S["goal_entries"])),
                    static_cast<unsigned long long>(asU64(S["lang_entries"])));
      Out += Buf;
    }
  }

  std::snprintf(Buf, sizeof(Buf),
                "\ntimeline: %llu/%llu sample(s) @ %llu ms, %llu dropped\n",
                static_cast<unsigned long long>(
                    Timeline["samples"].isArray()
                        ? Timeline["samples"].asArray().size()
                        : 0),
                static_cast<unsigned long long>(asU64(Timeline["capacity"])),
                static_cast<unsigned long long>(
                    asU64(Timeline["interval_ms"])),
                static_cast<unsigned long long>(asU64(Timeline["dropped"])));
  Out += Buf;

  // Counter movement over the newest tick: the at-a-glance "is it doing
  // anything" signal.
  if (Timeline["samples"].isArray() &&
      Timeline["samples"].asArray().size() >= 2) {
    const JsonValue::Array &Samples = Timeline["samples"].asArray();
    const JsonValue &Prev = Samples[Samples.size() - 2];
    const JsonValue &Last = Samples[Samples.size() - 1];
    std::snprintf(Buf, sizeof(Buf), "deltas %llu -> %llu ms:\n",
                  static_cast<unsigned long long>(asU64(Prev["at_ms"])),
                  static_cast<unsigned long long>(asU64(Last["at_ms"])));
    Out += Buf;
    size_t Shown = 0;
    if (Last["values"].isObject()) {
      for (const auto &[Name, V] : Last["values"].asObject()) {
        uint64_t Now = asU64(V);
        uint64_t Before =
            Prev["values"].isObject() ? asU64(Prev["values"][Name]) : 0;
        if (Now == Before || Shown >= 10)
          continue;
        long long Delta = static_cast<long long>(Now) -
                          static_cast<long long>(Before);
        std::snprintf(Buf, sizeof(Buf), "  %-36s %+lld (now %llu)\n",
                      Name.c_str(), Delta,
                      static_cast<unsigned long long>(Now));
        Out += Buf;
        ++Shown;
      }
    }
  }
  return Out;
}

} // namespace

int apt::svc::runViaDaemon(const std::string &SocketPath,
                           const std::vector<std::string> &Args) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "aptc: socket path too long: '%s'\n",
                 SocketPath.c_str());
    return 2;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("aptc: socket");
    return 2;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "aptc: cannot connect to aptd at '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    ::close(Fd);
    return 2;
  }

  JsonValue::Array Argv;
  for (const std::string &A : Args)
    Argv.push_back(JsonValue(A));
  JsonValue::Object Req;
  Req["id"] = JsonValue(static_cast<int64_t>(1));
  Req["op"] = JsonValue("run");
  Req["argv"] = JsonValue(std::move(Argv));
  std::string Line = JsonValue(std::move(Req)).dump();
  Line.push_back('\n');
  if (!writeAll(Fd, Line)) {
    std::fprintf(stderr, "aptc: failed sending request to aptd\n");
    ::close(Fd);
    return 2;
  }

  std::string Buf;
  char Chunk[4096];
  size_t Nl;
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0) {
      std::fprintf(stderr, "aptc: aptd closed the connection mid-response\n");
      ::close(Fd);
      return 2;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  JsonParseResult Parsed = parseJson(std::string_view(Buf.data(), Nl));
  if (!Parsed) {
    std::fprintf(stderr, "aptc: invalid response from aptd: %s\n",
                 Parsed.Error.c_str());
    return 2;
  }
  const JsonValue &Resp = Parsed.Value;
  if (!Resp["ok"].isBool() || !Resp["ok"].asBool()) {
    const JsonValue &E = Resp["error"];
    std::fprintf(stderr, "aptc: aptd error %s: %s\n",
                 E["code"].isString() ? E["code"].asString().c_str() : "?",
                 E["message"].isString() ? E["message"].asString().c_str()
                                         : "unknown error");
    return 2;
  }
  const JsonValue &Result = Resp["result"];
  if (!Result["exit"].isInt() || !Result["stdout"].isString() ||
      !Result["stderr"].isString()) {
    std::fprintf(stderr, "aptc: malformed run result from aptd\n");
    return 2;
  }
  // Replay the daemon-captured streams verbatim; stdout first, flushed,
  // then stderr — the same ordering the one-shot CLI guarantees.
  const std::string &Out = Result["stdout"].asString();
  const std::string &Err = Result["stderr"].asString();
  std::fwrite(Out.data(), 1, Out.size(), stdout);
  std::fflush(stdout);
  std::fwrite(Err.data(), 1, Err.size(), stderr);
  return static_cast<int>(Result["exit"].asInt());
}

int apt::svc::runTopCommand(const std::string &SocketPath,
                            const std::vector<std::string> &Args) {
  bool IsTty = ::isatty(STDOUT_FILENO) != 0;
  uint64_t IntervalMs = 1000;
  // Non-tty default: one frame and exit, so `aptc top --connect S | cat`
  // (and the soak harness) terminates without --iterations.
  uint64_t Iterations = IsTty ? 0 : 1;

  auto ParseU64 = [](const std::string &S, uint64_t &Out) {
    if (S.empty())
      return false;
    char *End = nullptr;
    Out = std::strtoull(S.c_str(), &End, 10);
    return End && *End == '\0';
  };
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    std::string Val;
    uint64_t *Dst = nullptr;
    for (const char *Flag : {"--interval-ms", "--iterations"}) {
      size_t Len = std::strlen(Flag);
      if (A.compare(0, Len, Flag) != 0)
        continue;
      if (A.size() == Len && I + 1 < Args.size())
        Val = Args[++I];
      else if (A.size() > Len && A[Len] == '=')
        Val = A.substr(Len + 1);
      else
        continue;
      Dst = Flag[2] == 'i' && Flag[3] == 'n' ? &IntervalMs : &Iterations;
      break;
    }
    if (!Dst || !ParseU64(Val, *Dst)) {
      std::fprintf(stderr,
                   "aptc top: unknown or malformed flag '%s' (expected "
                   "--interval-ms N or --iterations N)\n",
                   A.c_str());
      return 2;
    }
  }
  if (IntervalMs == 0)
    IntervalMs = 1;

  for (uint64_t Frame = 0; Iterations == 0 || Frame < Iterations; ++Frame) {
    if (Frame != 0)
      ::usleep(static_cast<useconds_t>(IntervalMs) * 1000);
    // Fresh connection per refresh: the daemon serves one connection at
    // a time, and a held-open top must not lock out real requests.
    int Fd = connectDaemon(SocketPath);
    if (Fd < 0)
      return 2;
    JsonValue Status = fetchOp(Fd, "status");
    JsonValue Timeline = fetchOp(Fd, "timeline");
    ::close(Fd);
    if (Status.isNull() || Timeline.isNull())
      return 2;
    std::string FrameText = renderTopFrame(SocketPath, Status, Timeline);
    if (IsTty)
      std::fputs("\033[H\033[2J", stdout); // home + clear, single frame
    std::fwrite(FrameText.data(), 1, FrameText.size(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
