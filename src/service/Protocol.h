//===- service/Protocol.h - aptd wire protocol ------------------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aptd request/response protocol, independent of any transport:
/// newline-delimited JSON, one request object per line in, exactly one
/// response object per line out. docs/SERVICE.md is the normative
/// reference and docs/service_schema.json pins the response shape
/// (validated by the `service_schema_check` ctest).
///
/// Requests: { "id": <int|string>, "op": "<name>", ...params }.
/// Responses: { "id": <echoed>, "ok": true,  "result": {...} }
///         or { "id": <echoed>, "ok": false, "error": {"code": "APTD-ENNN",
///              "message": "..."} }.
///
/// Ops: ping, run {argv}, load_axioms {path}, load_program {path},
/// stats, metrics, status, timeline, snapshot_save {path},
/// snapshot_load {path}, shutdown.
///
/// Every request line gets a monotone per-handler *request id* (1, 2,
/// ...), independent of the client-chosen "id" field. The id correlates
/// a request across every observability surface: the `run` result
/// carries it as "request", artifacts the command writes (--trace,
/// --trace-chrome, --profile, --metrics-json) stamp it on their headers,
/// and the slow-request log stores it — so a slow entry can be traced
/// back to the exact artifact files of the offending request.
///
/// Error codes (the full table lives in docs/SERVICE.md):
///   APTD-E001 request line is not valid JSON
///   APTD-E002 request is well-formed JSON but not a valid request
///   APTD-E003 unknown op
///   APTD-E004 file I/O failure (load/snapshot paths)
///   APTD-E005 snapshot version mismatch
///   APTD-E006 snapshot corrupt
///   APTD-E007 internal error (caught exception)
///
//===----------------------------------------------------------------------===//

#ifndef APT_SERVICE_PROTOCOL_H
#define APT_SERVICE_PROTOCOL_H

#include "service/ServiceState.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Timeline.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace apt::svc {

/// Machine-readable protocol error codes.
inline constexpr const char *kErrBadJson = "APTD-E001";
inline constexpr const char *kErrBadRequest = "APTD-E002";
inline constexpr const char *kErrUnknownOp = "APTD-E003";
inline constexpr const char *kErrIo = "APTD-E004";
inline constexpr const char *kErrSnapshotVersion = "APTD-E005";
inline constexpr const char *kErrSnapshotCorrupt = "APTD-E006";
inline constexpr const char *kErrInternal = "APTD-E007";

/// One entry of the slow-query log: requests whose wall time exceeded
/// the configured threshold, newest-heaviest first (PR 5's slow-query
/// log surfaced per-connection, as the ISSUE requires).
struct SlowQuery {
  uint64_t RequestId = 0; ///< Monotone handler request id (see file header).
  uint64_t WallUs = 0;
  std::string Op;
  std::string Detail; ///< e.g. the argv of a `run`, or a load path.
};

/// Turns request lines into response lines against a resident
/// ServiceState. Transport-free so tests can drive it without a socket;
/// the Unix-socket server (Server.h) is a thin wrapper.
class ProtocolHandler {
public:
  /// \p SlowMs: requests slower than this land in the slow-query log
  /// (and are echoed to the daemon's stderr). 0 disables the log.
  explicit ProtocolHandler(ServiceState &State, uint64_t SlowMs = 0)
      : State(State), SlowUs(SlowMs * 1000),
        StartedAt(std::chrono::steady_clock::now()) {}

  /// Handles one request line and returns the response line (compact
  /// JSON, no trailing newline). Sets \p Shutdown when the request was a
  /// `shutdown` op; the transport should stop accepting after replying.
  std::string handleLine(std::string_view Line, bool &Shutdown);

  /// The slowest requests seen so far (capacity-bounded, sorted slowest
  /// first). Also exported by the `stats` op.
  const std::vector<SlowQuery> &slowLog() const { return Slow; }

  /// Request lines handled so far == the last request id assigned.
  uint64_t requestCount() const { return Requests; }

  /// Forces an entry into the slow-query log, bypassing the wall-time
  /// threshold check only in the sense that \p WallUs is caller-supplied.
  /// handleLine calls this with measured times; tests call it directly to
  /// exercise the capacity/ordering policy deterministically.
  void recordSlow(uint64_t RequestId, uint64_t WallUs, std::string Op,
                  std::string Detail);

  /// Marks "a snapshot was loaded now" for the `status` op's snapshot
  /// age. Called by the server after a --snapshot warm start and by the
  /// snapshot_load op itself.
  void noteSnapshotLoaded() { SnapshotLoadedAt = std::chrono::steady_clock::now(); }

  /// Attaches the daemon's timeline ring so the `status` and `timeline`
  /// ops can serve it. \p IntervalMs is reported verbatim (the handler
  /// never samples; the server's poll loop owns that). Pass nullptr to
  /// detach. The pointee must outlive the handler or the next setTimeline.
  void setTimeline(const metrics::Timeline *T, uint64_t IntervalMs) {
    Timeline = T;
    TimelineMs = IntervalMs;
  }

  ServiceState &state() { return State; }

private:
  JsonValue dispatch(const JsonValue &Request, uint64_t RequestId,
                     bool &Shutdown, std::string &ErrCode,
                     std::string &ErrMsg);

  JsonValue statusResult() const;
  JsonValue sessionsJson() const;

  ServiceState &State;
  uint64_t SlowUs;
  std::vector<SlowQuery> Slow;
  uint64_t Requests = 0;
  /// Per-op latency histograms, keyed by op name ("_invalid" buckets the
  /// unparseable lines). Same power-of-two-bucket Histogram the global
  /// registry uses, but owned here so `status` reports this daemon's
  /// protocol traffic even after registry resets.
  std::map<std::string, metrics::Histogram> OpLatency;
  std::chrono::steady_clock::time_point StartedAt;
  std::chrono::steady_clock::time_point SnapshotLoadedAt{}; ///< epoch = never
  const metrics::Timeline *Timeline = nullptr;
  uint64_t TimelineMs = 0;
  static constexpr size_t kSlowLogCapacity = 16;
};

} // namespace apt::svc

#endif // APT_SERVICE_PROTOCOL_H
