//===- service/ServiceState.cpp -------------------------------------------===//
//
// Part of the APT project; see ServiceState.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceState.h"

#include "core/Prover.h"
#include "support/Metrics.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace apt;
using namespace apt::svc;

std::string apt::svc::contentFingerprint(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull; // FNV prime
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

Session *ServiceState::fileSession(const std::string &Path,
                                   const ErrSink &Err) {
  std::ifstream In(Path);
  if (!In) {
    // The exact line one-shot aptc's readFile prints, so a daemon-routed
    // request for a missing file stays byte-identical.
    char Buf[512];
    int N = std::snprintf(Buf, sizeof(Buf), "error: cannot open '%s'\n",
                          Path.c_str());
    Err(std::string_view(Buf, static_cast<size_t>(N)));
    return nullptr;
  }
  std::stringstream BufStream;
  BufStream << In.rdbuf();
  std::string Source = BufStream.str();
  std::string Fp = contentFingerprint(Source);

  Session &S = obtainSession(Path);
  if (S.Fingerprint == Fp) {
    // Snapshot-restored sessions carry a fingerprint but no source (the
    // snapshot stores caches, not file bytes); install the bytes just
    // read so the first post-restore parse sees the real file.
    if (S.Source.empty())
      S.Source = std::move(Source);
    ++S.Requests;
    return &S;
  }

  bool Invalidation = !S.Fingerprint.empty();
  if (Invalidation) {
    // The file changed under a resident session. Parse artifacts and
    // prepared engines are stale; goal-cache entries minted under the
    // superseded axiom-set fingerprint are evicted by their key prefix
    // (Prover keys shared goals as "<fingerprint>\x1d<goal>"). The
    // FieldTable, DFA store, and language cache survive: their entries
    // are keyed by regex structure over append-only FieldIds, so they
    // stay valid — that survival is the "most cache entries outlive a
    // localized edit" property docs/SERVICE.md documents.
    metrics::Registry &R = metrics::Registry::global();
    R.counter("apt.svc.invalidations").add(1);
    if (S.AxiomsParsed && S.AxiomFp != 0) {
      std::string Prefix = std::to_string(S.AxiomFp) + "\x1d";
      size_t Evicted = S.Goals.eraseIf([&](const std::string &Key) {
        return Key.compare(0, Prefix.size(), Prefix) == 0;
      });
      R.counter("apt.svc.goal_evictions").add(Evicted);
    }
    S.Engines.clear();
  }
  S.AxiomsParsed = false;
  S.Axioms = AxiomFileContents{};
  S.AxiomDiags.clear();
  S.AxiomFp = 0;
  S.ProgramParsed = false;
  S.Program = ProgramParseResult{};
  S.Source = std::move(Source);
  S.Fingerprint = std::move(Fp);
  ++S.Requests;
  return &S;
}

Session *ServiceState::findSession(const std::string &Path) {
  auto It = Sessions.find(Path);
  return It == Sessions.end() ? nullptr : It->second.get();
}

const Session *ServiceState::findSession(const std::string &Path) const {
  auto It = Sessions.find(Path);
  return It == Sessions.end() ? nullptr : It->second.get();
}

Session &ServiceState::obtainSession(const std::string &Path) {
  std::unique_ptr<Session> &Slot = Sessions[Path];
  if (!Slot)
    Slot = std::make_unique<Session>(Path);
  return *Slot;
}

void ServiceState::dropSession(const std::string &Path) {
  Sessions.erase(Path);
}

void ServiceState::adoptSession(std::unique_ptr<Session> S) {
  std::string Path = S->Path;
  Sessions[Path] = std::move(S);
}
