//===- service/Commands.h - Shared CLI command layer ------------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `aptc` subcommands (prove/deps/loops/dump/lint/reach) as a
/// library,
/// parameterized over output sinks and resident state. One-shot `aptc`
/// calls runServiceCommand with stdio sinks and a ServiceState it
/// discards afterwards; the daemon calls it with string-capturing sinks
/// and its long-lived ServiceState. Parity by construction: both modes
/// execute the same code path, so daemon verdicts are byte-identical to
/// one-shot verdicts (asserted by tools/service_parity_check.py).
///
/// Per-request observability (the ISSUE's "session-scoped numbers" fix):
/// runServiceCommand snapshots the process-wide metrics registry on
/// entry, and `--metrics-json` exports the delta since that baseline —
/// so a daemon that has served a thousand requests still reports this
/// request's counters. Likewise `deps --stats` prints
/// BatchStats::since(<pre-run snapshot>) of the resident engine. In a
/// fresh process both baselines are zero, and since(zero) is the
/// identity, so one-shot output is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SERVICE_COMMANDS_H
#define APT_SERVICE_COMMANDS_H

#include "service/ServiceState.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace apt::svc {

/// Where a command's two output streams go. The sinks must accept
/// arbitrary chunk sizes; FlushOut (optional) is invoked before a
/// contiguous stderr block is emitted so interleaving with a merged
/// stdout stays impossible (the `--stats` contract from PR 3).
struct CommandIo {
  std::function<void(std::string_view)> Out;
  std::function<void(std::string_view)> Err;
  std::function<void()> FlushOut;
  /// Daemon request id serving this command, 0 for one-shot runs. Lands
  /// on the header of every artifact the command writes (--trace,
  /// --trace-chrome, --profile, --metrics-json) so artifacts correlate
  /// with the daemon's slow-request log and `status` counters.
  uint64_t RequestId = 0;
};

/// Sinks bound to the process's real stdout/stderr (one-shot mode).
CommandIo stdioCommandIo();

/// Runs one CLI command against \p State. \p Args is the full argument
/// vector after the program name: Args[0] is the subcommand
/// ("prove", "deps", "loops", "dump", "lint", "reach", "top"); the rest
/// are its arguments and flags. Returns the process exit code (0 ok, 1
/// verdict-level failure, 2 usage/input error). Unknown or missing
/// subcommands print the usage text to Io.Err and return 2. ("top" only
/// explains that it needs --connect: the live view is daemon-only and
/// aptc routes it to runTopCommand before reaching this layer.)
int runServiceCommand(ServiceState &State, const std::vector<std::string> &Args,
                      const CommandIo &Io);

/// The names runServiceCommand dispatches on, for tools that enumerate
/// the CLI surface (tools/docs_check.py greps this table).
extern const char *const kSubcommands[7];

} // namespace apt::svc

#endif // APT_SERVICE_COMMANDS_H
