//===- service/Server.h - Unix-socket transport for aptd --------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's transport: a SOCK_STREAM Unix-domain listener feeding
/// request lines to a ProtocolHandler. Deliberately single-threaded —
/// requests are served one at a time in arrival order, which is what
/// makes resident-state mutation (session invalidation, snapshot load)
/// safe without a lock and keeps daemon verdicts deterministic. The
/// parallelism that matters (batch analysis workers) lives *inside* a
/// request, in BatchQueryEngine's pool.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SERVICE_SERVER_H
#define APT_SERVICE_SERVER_H

#include "service/Protocol.h"

#include <string>

namespace apt::svc {

struct ServerOptions {
  std::string SocketPath;
  uint64_t SlowMs = 0;       ///< Slow-query threshold; 0 disables.
  std::string SnapshotLoad;  ///< Warm-start snapshot (optional).
  std::string SnapshotSave;  ///< Written on clean shutdown (optional).
  uint64_t TimelineMs = 1000;  ///< Metric sampling interval; 0 disables.
  size_t TimelineCapacity = 256; ///< Ring size (sliding window length).
};

/// Runs the accept/serve loop until a `shutdown` request or SIGINT/
/// SIGTERM. Returns the process exit code (0 on clean shutdown, 1 on
/// setup failure — message on stderr). Removes the socket file on exit.
int runServer(ServiceState &State, const ServerOptions &Opts);

} // namespace apt::svc

#endif // APT_SERVICE_SERVER_H
