//===- service/Snapshot.cpp -----------------------------------------------===//
//
// Part of the APT project; see Snapshot.h for the format and policy.
//
//===----------------------------------------------------------------------===//

#include "service/Snapshot.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

using namespace apt;
using namespace apt::svc;

const char *apt::svc::snapshotErrorName(SnapshotError E) {
  switch (E) {
  case SnapshotError::None:
    return "none";
  case SnapshotError::Io:
    return "io";
  case SnapshotError::Version:
    return "version";
  case SnapshotError::Corrupt:
    return "corrupt";
  }
  return "corrupt";
}

namespace {

// Cache keys are arbitrary bytes (prover goal keys embed a '\x1d'
// fingerprint separator), so they travel hex-encoded.
std::string toHex(const std::string &S) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(S.size() * 2);
  for (unsigned char C : S) {
    Out.push_back(Digits[C >> 4]);
    Out.push_back(Digits[C & 0xf]);
  }
  return Out;
}

bool fromHex(const std::string &Hex, std::string &Out) {
  if (Hex.size() % 2 != 0)
    return false;
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    return -1;
  };
  Out.clear();
  Out.reserve(Hex.size() / 2);
  for (size_t I = 0; I < Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(static_cast<char>((Hi << 4) | Lo));
  }
  return true;
}

// Accessor helpers over the strict JsonValue variant. Each returns false
// (rather than throwing) so snapshotFromJson can reject corrupt content
// with a structured error.
const JsonValue *field(const JsonValue &V, const char *Name) {
  if (!V.isObject())
    return nullptr;
  const JsonValue::Object &O = V.asObject();
  auto It = O.find(Name);
  return It == O.end() ? nullptr : &It->second;
}

bool getInt(const JsonValue &V, const char *Name, int64_t &Out) {
  const JsonValue *F = field(V, Name);
  if (!F || !F->isInt())
    return false;
  Out = F->asInt();
  return true;
}

bool getString(const JsonValue &V, const char *Name, std::string &Out) {
  const JsonValue *F = field(V, Name);
  if (!F || !F->isString())
    return false;
  Out = F->asString();
  return true;
}

bool getU32Array(const JsonValue &V, const char *Name,
                 std::vector<uint32_t> &Out) {
  const JsonValue *F = field(V, Name);
  if (!F || !F->isArray())
    return false;
  Out.clear();
  for (const JsonValue &E : F->asArray()) {
    if (!E.isInt() || E.asInt() < 0 ||
        static_cast<uint64_t>(E.asInt()) > 0xffffffffull)
      return false;
    Out.push_back(static_cast<uint32_t>(E.asInt()));
  }
  return true;
}

JsonValue u32Array(const std::vector<uint32_t> &Xs) {
  JsonValue::Array A;
  A.reserve(Xs.size());
  for (uint32_t X : Xs)
    A.push_back(JsonValue(static_cast<int64_t>(X)));
  return JsonValue(std::move(A));
}

// Bool-cache contents as a deterministic [[hex-key, value]] array.
JsonValue boolCacheToJson(const ShardedBoolCache &Cache) {
  std::vector<std::pair<std::string, bool>> Entries;
  Cache.forEach([&](const std::string &Key, bool Value) {
    Entries.emplace_back(toHex(Key), Value);
  });
  std::sort(Entries.begin(), Entries.end());
  JsonValue::Array A;
  A.reserve(Entries.size());
  for (auto &[K, V] : Entries) {
    JsonValue::Array Pair;
    Pair.push_back(JsonValue(std::move(K)));
    Pair.push_back(JsonValue(V));
    A.push_back(JsonValue(std::move(Pair)));
  }
  return JsonValue(std::move(A));
}

bool boolCacheFromJson(const JsonValue &V, ShardedBoolCache &Cache,
                       size_t &Entries) {
  if (!V.isArray())
    return false;
  for (const JsonValue &E : V.asArray()) {
    if (!E.isArray() || E.asArray().size() != 2)
      return false;
    const JsonValue &KV = E.asArray()[0];
    const JsonValue &BV = E.asArray()[1];
    if (!KV.isString() || !BV.isBool())
      return false;
    std::string Key;
    if (!fromHex(KV.asString(), Key))
      return false;
    Cache.insert(Key, BV.asBool());
    ++Entries;
  }
  return true;
}

} // namespace

JsonValue apt::svc::classDfaToJson(const ClassDfa &D) {
  const AlphabetPartition &P = D.partition();
  JsonValue::Object PJ;
  PJ["fields"] = u32Array(P.Fields);
  PJ["class_of_field"] = u32Array(P.ClassOfField);
  PJ["class_rep"] = u32Array(P.ClassRep);
  PJ["num_classes"] = JsonValue(static_cast<int64_t>(P.NumClasses));
  PJ["other_class"] = JsonValue(static_cast<int64_t>(P.OtherClass));

  std::vector<uint32_t> Transitions;
  Transitions.reserve(D.numStates() * D.numClasses());
  for (uint32_t S = 0; S < D.numStates(); ++S)
    for (uint32_t C = 0; C < D.numClasses(); ++C)
      Transitions.push_back(D.step(S, C));
  std::vector<uint32_t> Accepting;
  Accepting.reserve(D.numStates());
  for (uint32_t S = 0; S < D.numStates(); ++S)
    Accepting.push_back(D.isAccepting(S) ? 1 : 0);

  JsonValue::Object O;
  O["partition"] = JsonValue(std::move(PJ));
  O["transitions"] = u32Array(Transitions);
  O["accepting"] = u32Array(Accepting);
  O["start"] = JsonValue(static_cast<int64_t>(D.start()));
  O["sink"] = JsonValue(static_cast<int64_t>(D.sink()));
  return JsonValue(std::move(O));
}

bool apt::svc::classDfaFromJson(const JsonValue &V, ClassDfa &Out,
                                std::string &Error) {
  const JsonValue *PV = field(V, "partition");
  AlphabetPartition P;
  int64_t NumClasses = 0, OtherClass = 0, Start = 0, Sink = 0;
  std::vector<uint32_t> Transitions, Accepting;
  if (!PV || !getU32Array(*PV, "fields", P.Fields) ||
      !getU32Array(*PV, "class_of_field", P.ClassOfField) ||
      !getU32Array(*PV, "class_rep", P.ClassRep) ||
      !getInt(*PV, "num_classes", NumClasses) ||
      !getInt(*PV, "other_class", OtherClass) ||
      !getU32Array(V, "transitions", Transitions) ||
      !getU32Array(V, "accepting", Accepting) || !getInt(V, "start", Start) ||
      !getInt(V, "sink", Sink)) {
    Error = "malformed dfa record";
    return false;
  }
  // Structural validation: a bad table would turn step() into an
  // out-of-bounds read long after loading.
  size_t NumStates = Accepting.size();
  if (NumClasses < 1 || NumClasses > 0xffffffffll ||
      P.ClassOfField.size() != P.Fields.size() ||
      P.ClassRep.size() != static_cast<size_t>(NumClasses) ||
      OtherClass != NumClasses - 1 || NumStates == 0 ||
      Transitions.size() != NumStates * static_cast<size_t>(NumClasses) ||
      Start < 0 || static_cast<size_t>(Start) >= NumStates || Sink < 0 ||
      static_cast<size_t>(Sink) >= NumStates ||
      !std::is_sorted(P.Fields.begin(), P.Fields.end())) {
    Error = "inconsistent dfa record";
    return false;
  }
  for (uint32_t C : P.ClassOfField)
    if (C >= NumClasses) {
      Error = "inconsistent dfa record";
      return false;
    }
  for (uint32_t T : Transitions)
    if (T >= NumStates) {
      Error = "inconsistent dfa record";
      return false;
    }
  P.NumClasses = static_cast<uint32_t>(NumClasses);
  P.OtherClass = static_cast<uint32_t>(OtherClass);
  std::vector<bool> AcceptingBits(NumStates);
  for (size_t I = 0; I < NumStates; ++I)
    AcceptingBits[I] = Accepting[I] != 0;
  Out = ClassDfa(std::move(P), std::move(Transitions),
                 std::move(AcceptingBits), static_cast<uint32_t>(Start),
                 static_cast<uint32_t>(Sink));
  return true;
}

JsonValue apt::svc::storeToJson(const MinDfaStore &Store) {
  std::map<std::string, std::shared_ptr<const ClassDfa>> Entries;
  Store.forEach(
      [&](const std::string &Key, const std::shared_ptr<const ClassDfa> &D) {
        Entries[toHex(Key)] = D;
      });
  JsonValue::Array A;
  for (const auto &[Key, D] : Entries) {
    JsonValue::Object E;
    E["key"] = JsonValue(Key);
    E["dfa"] = classDfaToJson(*D);
    A.push_back(JsonValue(std::move(E)));
  }
  return JsonValue(std::move(A));
}

SnapshotError apt::svc::storeFromJson(const JsonValue &V, MinDfaStore &Store,
                                      size_t &Entries, std::string &Error) {
  if (!V.isArray()) {
    Error = "dfas is not an array";
    return SnapshotError::Corrupt;
  }
  for (const JsonValue &E : V.asArray()) {
    std::string HexKey, Key;
    const JsonValue *DV = field(E, "dfa");
    if (!getString(E, "key", HexKey) || !fromHex(HexKey, Key) || !DV) {
      Error = "malformed dfa store entry";
      return SnapshotError::Corrupt;
    }
    ClassDfa D = ClassDfa(AlphabetPartition{}, {0}, {false}, 0, 0);
    if (!classDfaFromJson(*DV, D, Error))
      return SnapshotError::Corrupt;
    Store.intern(Key, std::move(D));
    ++Entries;
  }
  return SnapshotError::None;
}

JsonValue apt::svc::snapshotToJson(const ServiceState &State) {
  JsonValue::Array Sessions;
  for (const auto &[Path, S] : State.sessions()) {
    JsonValue::Object O;
    O["path"] = JsonValue(Path);
    O["fingerprint"] = JsonValue(S->Fingerprint);
    JsonValue::Array Fields;
    for (FieldId I = 0; I < S->Fields.size(); ++I)
      Fields.push_back(JsonValue(std::string(S->Fields.name(I))));
    O["fields"] = JsonValue(std::move(Fields));
    O["dfas"] = storeToJson(S->Store);
    O["goals"] = boolCacheToJson(S->Goals);
    O["lang"] = boolCacheToJson(S->Lang);
    Sessions.push_back(JsonValue(std::move(O)));
  }
  JsonValue::Object Root;
  Root["kind"] = JsonValue("aptd-snapshot");
  Root["version"] = JsonValue(kSnapshotVersion);
  Root["sessions"] = JsonValue(std::move(Sessions));
  return JsonValue(std::move(Root));
}

SnapshotError apt::svc::snapshotFromJson(const JsonValue &Doc,
                                         ServiceState &State,
                                         SnapshotStats &Stats,
                                         std::string &Error) {
  std::string Kind;
  if (!Doc.isObject() || !getString(Doc, "kind", Kind) ||
      Kind != "aptd-snapshot") {
    Error = "not an aptd snapshot (missing kind)";
    return SnapshotError::Corrupt;
  }
  int64_t Version = 0;
  if (!getInt(Doc, "version", Version)) {
    Error = "missing snapshot version";
    return SnapshotError::Corrupt;
  }
  if (Version != kSnapshotVersion) {
    Error = "snapshot version " + std::to_string(Version) +
            " is not supported (expected " + std::to_string(kSnapshotVersion) +
            ")";
    return SnapshotError::Version;
  }
  const JsonValue *Sessions = field(Doc, "sessions");
  if (!Sessions || !Sessions->isArray()) {
    Error = "missing sessions array";
    return SnapshotError::Corrupt;
  }

  // Two passes: validate + build everything first, install second, so a
  // corrupt record never leaves State partially restored.
  std::vector<std::unique_ptr<Session>> Restored;
  for (const JsonValue &SV : Sessions->asArray()) {
    std::string Path, Fingerprint;
    const JsonValue *Fields = field(SV, "fields");
    const JsonValue *Dfas = field(SV, "dfas");
    const JsonValue *Goals = field(SV, "goals");
    const JsonValue *Lang = field(SV, "lang");
    if (!getString(SV, "path", Path) ||
        !getString(SV, "fingerprint", Fingerprint) || !Fields ||
        !Fields->isArray() || !Dfas || !Goals || !Lang) {
      Error = "malformed session record";
      return SnapshotError::Corrupt;
    }
    auto S = std::make_unique<Session>(Path);
    S->Fingerprint = Fingerprint;
    // Re-intern the names in serialization order: FieldIds are dense and
    // assigned in interning order, so this reproduces the exact ids every
    // serialized cache key was minted under.
    for (const JsonValue &Name : Fields->asArray()) {
      if (!Name.isString()) {
        Error = "malformed field table";
        return SnapshotError::Corrupt;
      }
      S->Fields.intern(Name.asString());
    }
    if (S->Fields.size() != Fields->asArray().size()) {
      Error = "duplicate names in field table";
      return SnapshotError::Corrupt;
    }
    size_t DfaEntries = 0, GoalEntries = 0, LangEntries = 0;
    SnapshotError SE = storeFromJson(*Dfas, S->Store, DfaEntries, Error);
    if (SE != SnapshotError::None)
      return SE;
    if (!boolCacheFromJson(*Goals, S->Goals, GoalEntries) ||
        !boolCacheFromJson(*Lang, S->Lang, LangEntries)) {
      Error = "malformed cache entry list";
      return SnapshotError::Corrupt;
    }
    Stats.DfaEntries += DfaEntries;
    Stats.GoalEntries += GoalEntries;
    Stats.LangEntries += LangEntries;
    ++Stats.Sessions;
    Restored.push_back(std::move(S));
  }
  for (std::unique_ptr<Session> &S : Restored) {
    State.dropSession(S->Path);
    State.adoptSession(std::move(S));
  }
  return SnapshotError::None;
}

bool apt::svc::saveSnapshot(const ServiceState &State, const std::string &Path,
                            SnapshotStats &Stats, std::string &Error) {
  JsonValue Doc = snapshotToJson(State);
  for (const auto &[SessionPath, S] : State.sessions()) {
    (void)SessionPath;
    Stats.DfaEntries += S->Store.size();
    Stats.GoalEntries += S->Goals.size();
    Stats.LangEntries += S->Lang.size();
    ++Stats.Sessions;
  }
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot write '" + Path + "'";
    return false;
  }
  Out << Doc.dumpPretty() << '\n';
  Out.flush();
  if (!Out) {
    Error = "failed writing '" + Path + "'";
    return false;
  }
  return true;
}

SnapshotError apt::svc::loadSnapshot(ServiceState &State,
                                     const std::string &Path,
                                     SnapshotStats &Stats,
                                     std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return SnapshotError::Io;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  JsonParseResult Parsed = parseJson(Buf.str());
  if (!Parsed) {
    Error = "invalid JSON: " + Parsed.Error;
    return SnapshotError::Corrupt;
  }
  return snapshotFromJson(Parsed.Value, State, Stats, Error);
}
