//===- service/Protocol.cpp -----------------------------------------------===//
//
// Part of the APT project; see Protocol.h for the wire format.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "service/Commands.h"
#include "service/Snapshot.h"
#include "support/Metrics.h"
#include "support/Version.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

using namespace apt;
using namespace apt::svc;

namespace {

JsonValue errorResponse(const JsonValue &Id, const std::string &Code,
                        const std::string &Message) {
  JsonValue::Object E;
  E["code"] = JsonValue(Code);
  E["message"] = JsonValue(Message);
  JsonValue::Object R;
  R["id"] = Id;
  R["ok"] = JsonValue(false);
  R["error"] = JsonValue(std::move(E));
  return JsonValue(std::move(R));
}

JsonValue okResponse(const JsonValue &Id, JsonValue Result) {
  JsonValue::Object R;
  R["id"] = Id;
  R["ok"] = JsonValue(true);
  R["result"] = std::move(Result);
  return JsonValue(std::move(R));
}

JsonValue snapshotStatsJson(const SnapshotStats &S) {
  JsonValue::Object O;
  O["sessions"] = JsonValue(static_cast<int64_t>(S.Sessions));
  O["dfa_entries"] = JsonValue(static_cast<int64_t>(S.DfaEntries));
  O["goal_entries"] = JsonValue(static_cast<int64_t>(S.GoalEntries));
  O["lang_entries"] = JsonValue(static_cast<int64_t>(S.LangEntries));
  return JsonValue(std::move(O));
}

/// Milliseconds from \p From to now; 0 when \p From is the epoch default
/// (i.e. the event never happened).
uint64_t msSince(std::chrono::steady_clock::time_point From) {
  if (From == std::chrono::steady_clock::time_point{})
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - From)
          .count());
}

const char *snapshotErrorCode(SnapshotError E) {
  switch (E) {
  case SnapshotError::Io:
    return kErrIo;
  case SnapshotError::Version:
    return kErrSnapshotVersion;
  case SnapshotError::Corrupt:
    return kErrSnapshotCorrupt;
  case SnapshotError::None:
    break;
  }
  return kErrInternal;
}

} // namespace

void ProtocolHandler::recordSlow(uint64_t RequestId, uint64_t WallUs,
                                 std::string Op, std::string Detail) {
  if (SlowUs == 0 || WallUs < SlowUs)
    return;
  metrics::Registry::global().counter("apt.svc.slow_requests").add(1);
  std::fprintf(stderr, "aptd: slow request: req=%llu %llu us op=%s %s\n",
               static_cast<unsigned long long>(RequestId),
               static_cast<unsigned long long>(WallUs), Op.c_str(),
               Detail.c_str());
  Slow.push_back(SlowQuery{RequestId, WallUs, std::move(Op),
                           std::move(Detail)});
  std::sort(Slow.begin(), Slow.end(),
            [](const SlowQuery &A, const SlowQuery &B) {
              return A.WallUs > B.WallUs;
            });
  if (Slow.size() > kSlowLogCapacity)
    Slow.resize(kSlowLogCapacity);
}

/// The `stats`/`status` session table: one row per resident session.
JsonValue ProtocolHandler::sessionsJson() const {
  JsonValue::Array Sessions;
  for (const auto &[Path, S] : State.sessions()) {
    JsonValue::Object O;
    O["path"] = JsonValue(Path);
    O["fingerprint"] = JsonValue(S->Fingerprint);
    O["requests"] = JsonValue(static_cast<int64_t>(S->Requests));
    O["dfa_entries"] = JsonValue(static_cast<int64_t>(S->Store.size()));
    O["goal_entries"] = JsonValue(static_cast<int64_t>(S->Goals.size()));
    O["lang_entries"] = JsonValue(static_cast<int64_t>(S->Lang.size()));
    O["fields"] = JsonValue(static_cast<int64_t>(S->Fields.size()));
    O["engines"] = JsonValue(static_cast<int64_t>(S->Engines.size()));
    Sessions.push_back(JsonValue(std::move(O)));
  }
  return JsonValue(std::move(Sessions));
}

/// The `status` op body: a one-stop health view of this daemon. Cheap on
/// purpose — everything here is already in memory (`aptc top` polls it
/// every second).
JsonValue ProtocolHandler::statusResult() const {
  JsonValue::Object R;
  R["uptime_ms"] = JsonValue(msSince(StartedAt));
  R["requests"] = JsonValue(Requests);

  JsonValue::Object Ver;
  Ver["build"] = version::buildJson();
  Ver["protocol"] = JsonValue(version::kProtocolVersion);
  Ver["snapshot"] = JsonValue(kSnapshotVersion);
  R["version"] = JsonValue(std::move(Ver));

  JsonValue::Object Ops;
  for (const auto &[Op, H] : OpLatency) {
    metrics::Histogram::Snapshot S = H.snapshot();
    JsonValue::Object O;
    O["count"] = JsonValue(S.Count);
    O["total_us"] = JsonValue(S.Sum);
    O["max_us"] = JsonValue(S.Max);
    O["p50_us"] = JsonValue(S.quantile(0.50));
    O["p99_us"] = JsonValue(S.quantile(0.99));
    Ops.emplace(Op, JsonValue(std::move(O)));
  }
  R["ops"] = JsonValue(std::move(Ops));

  R["sessions"] = sessionsJson();
  R["slow_queries"] = JsonValue(static_cast<uint64_t>(Slow.size()));

  JsonValue::Object Snap;
  bool Loaded = SnapshotLoadedAt != std::chrono::steady_clock::time_point{};
  Snap["loaded"] = JsonValue(Loaded);
  Snap["age_ms"] = JsonValue(Loaded ? msSince(SnapshotLoadedAt) : 0);
  R["snapshot"] = JsonValue(std::move(Snap));

  JsonValue::Object TL;
  TL["capacity"] =
      JsonValue(static_cast<uint64_t>(Timeline ? Timeline->capacity() : 0));
  TL["samples"] =
      JsonValue(static_cast<uint64_t>(Timeline ? Timeline->size() : 0));
  TL["dropped"] = JsonValue(Timeline ? Timeline->dropped() : uint64_t(0));
  TL["interval_ms"] = JsonValue(Timeline ? TimelineMs : uint64_t(0));
  const metrics::Timeline::Sample *Last = Timeline ? Timeline->latest()
                                                   : nullptr;
  TL["last_at_ms"] = JsonValue(Last ? Last->AtMs : uint64_t(0));
  R["timeline"] = JsonValue(std::move(TL));
  return JsonValue(std::move(R));
}

JsonValue ProtocolHandler::dispatch(const JsonValue &Request,
                                    uint64_t RequestId, bool &Shutdown,
                                    std::string &ErrCode,
                                    std::string &ErrMsg) {
  const std::string &Op = Request["op"].asString();

  if (Op == "ping") {
    JsonValue::Object R;
    R["pong"] = JsonValue(true);
    R["protocol"] = JsonValue(version::kProtocolVersion);
    R["snapshot_version"] = JsonValue(kSnapshotVersion);
    return JsonValue(std::move(R));
  }

  if (Op == "run") {
    const JsonValue &Argv = Request["argv"];
    if (!Argv.isArray() || Argv.asArray().empty()) {
      ErrCode = kErrBadRequest;
      ErrMsg = "run requires a non-empty 'argv' array of strings";
      return JsonValue();
    }
    std::vector<std::string> Args;
    Args.reserve(Argv.asArray().size());
    for (const JsonValue &A : Argv.asArray()) {
      if (!A.isString()) {
        ErrCode = kErrBadRequest;
        ErrMsg = "run 'argv' entries must be strings";
        return JsonValue();
      }
      Args.push_back(A.asString());
    }
    std::string Out, Err;
    CommandIo Io;
    Io.Out = [&Out](std::string_view S) { Out.append(S.data(), S.size()); };
    Io.Err = [&Err](std::string_view S) { Err.append(S.data(), S.size()); };
    Io.FlushOut = [] {};
    Io.RequestId = RequestId; // stamps the artifacts this command writes
    int Exit = runServiceCommand(State, Args, Io);
    JsonValue::Object R;
    R["exit"] = JsonValue(static_cast<int64_t>(Exit));
    R["request"] = JsonValue(RequestId);
    R["stdout"] = JsonValue(std::move(Out));
    R["stderr"] = JsonValue(std::move(Err));
    return JsonValue(std::move(R));
  }

  if (Op == "load_axioms" || Op == "load_program") {
    const JsonValue &PathV = Request["path"];
    if (!PathV.isString()) {
      ErrCode = kErrBadRequest;
      ErrMsg = Op + " requires a 'path' string";
      return JsonValue();
    }
    std::string LoadErr;
    Session *S = State.fileSession(
        PathV.asString(),
        [&LoadErr](std::string_view M) { LoadErr.append(M.data(), M.size()); });
    if (!S) {
      ErrCode = kErrIo;
      // Drop the trailing newline of the CLI-format error line.
      if (!LoadErr.empty() && LoadErr.back() == '\n')
        LoadErr.pop_back();
      ErrMsg = LoadErr;
      return JsonValue();
    }
    JsonValue::Object R;
    R["path"] = JsonValue(S->Path);
    R["fingerprint"] = JsonValue(S->Fingerprint);
    R["requests"] = JsonValue(static_cast<int64_t>(S->Requests));
    return JsonValue(std::move(R));
  }

  if (Op == "stats") {
    JsonValue::Array SlowJson;
    for (const SlowQuery &Q : Slow) {
      JsonValue::Object O;
      O["request"] = JsonValue(Q.RequestId);
      O["wall_us"] = JsonValue(static_cast<int64_t>(Q.WallUs));
      O["op"] = JsonValue(Q.Op);
      O["detail"] = JsonValue(Q.Detail);
      SlowJson.push_back(JsonValue(std::move(O)));
    }
    JsonValue::Object R;
    R["sessions"] = sessionsJson();
    R["slow_queries"] = JsonValue(std::move(SlowJson));
    return JsonValue(std::move(R));
  }

  if (Op == "metrics")
    return metrics::Registry::global().toJson();

  if (Op == "status")
    return statusResult();

  if (Op == "timeline") {
    // Full ring dump; `status` only carries the summary. An unattached
    // timeline (tests driving the handler directly, --timeline-ms 0)
    // reports an empty zero-capacity ring rather than an error.
    if (!Timeline) {
      JsonValue::Object R;
      R["capacity"] = JsonValue(uint64_t(0));
      R["dropped"] = JsonValue(uint64_t(0));
      R["interval_ms"] = JsonValue(uint64_t(0));
      R["samples"] = JsonValue(JsonValue::Array{});
      return JsonValue(std::move(R));
    }
    JsonValue R = Timeline->toJson();
    R.asObject().emplace("interval_ms", JsonValue(TimelineMs));
    return R;
  }

  if (Op == "snapshot_save" || Op == "snapshot_load") {
    const JsonValue &PathV = Request["path"];
    if (!PathV.isString()) {
      ErrCode = kErrBadRequest;
      ErrMsg = Op + " requires a 'path' string";
      return JsonValue();
    }
    SnapshotStats Stats;
    std::string SnapErr;
    if (Op == "snapshot_save") {
      if (!saveSnapshot(State, PathV.asString(), Stats, SnapErr)) {
        ErrCode = kErrIo;
        ErrMsg = SnapErr;
        return JsonValue();
      }
    } else {
      SnapshotError E = loadSnapshot(State, PathV.asString(), Stats, SnapErr);
      if (E != SnapshotError::None) {
        ErrCode = snapshotErrorCode(E);
        ErrMsg = SnapErr;
        return JsonValue();
      }
      metrics::Registry::global().counter("apt.svc.snapshot_loads").add(1);
      noteSnapshotLoaded();
    }
    return snapshotStatsJson(Stats);
  }

  if (Op == "shutdown") {
    Shutdown = true;
    JsonValue::Object R;
    R["shutting_down"] = JsonValue(true);
    return JsonValue(std::move(R));
  }

  ErrCode = kErrUnknownOp;
  ErrMsg = "unknown op '" + Op + "'";
  return JsonValue();
}

std::string ProtocolHandler::handleLine(std::string_view Line, bool &Shutdown) {
  auto T0 = std::chrono::steady_clock::now();
  metrics::Registry &R = metrics::Registry::global();
  R.counter("apt.svc.proto.requests").add(1);
  // Every line gets an id, even unparseable ones: the id must correlate
  // with apt.svc.proto.requests, and an error line still is a request.
  uint64_t Rid = ++Requests;
  auto ElapsedUs = [&T0] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
  };

  JsonParseResult Parsed = parseJson(Line);
  if (!Parsed) {
    R.counter("apt.svc.proto.errors").add(1);
    OpLatency["_invalid"].observe(ElapsedUs());
    return errorResponse(JsonValue(), kErrBadJson,
                         "request is not valid JSON: " + Parsed.Error)
        .dump();
  }
  const JsonValue &Request = Parsed.Value;
  const JsonValue &Id = Request["id"];
  if (!Request.isObject() || !Request["op"].isString()) {
    R.counter("apt.svc.proto.errors").add(1);
    OpLatency["_invalid"].observe(ElapsedUs());
    return errorResponse(Id, kErrBadRequest,
                         "request must be an object with a string 'op'")
        .dump();
  }

  std::string ErrCode, ErrMsg;
  JsonValue Result;
  try {
    Result = dispatch(Request, Rid, Shutdown, ErrCode, ErrMsg);
  } catch (const std::exception &E) {
    ErrCode = kErrInternal;
    ErrMsg = E.what();
  }

  uint64_t WallUs = ElapsedUs();
  R.histogram("apt.svc.proto.wall_us").observe(WallUs);
  OpLatency[Request["op"].asString()].observe(WallUs);
  std::string Detail;
  if (Request["op"].asString() == "run" && Request["argv"].isArray()) {
    for (const JsonValue &A : Request["argv"].asArray())
      if (A.isString()) {
        if (!Detail.empty())
          Detail.push_back(' ');
        Detail += A.asString();
      }
  } else if (Request["path"].isString()) {
    Detail = Request["path"].asString();
  }
  recordSlow(Rid, WallUs, Request["op"].asString(), std::move(Detail));

  if (!ErrCode.empty()) {
    R.counter("apt.svc.proto.errors").add(1);
    return errorResponse(Id, ErrCode, ErrMsg).dump();
  }
  return okResponse(Id, std::move(Result)).dump();
}
