//===- support/Arena.h - Bump allocation with scoped rewind -----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-based bump allocator for the engine's transient scratch memory:
/// subset-construction tables, Hopcroft partition scratch, product-search
/// visited maps. The automata kernels allocate thousands of short-lived
/// buffers per cold query; a bump pointer turns each into a pointer
/// increment and lets a whole construction be released with one rewind
/// (docs/MEMORY.md).
///
/// Lifetimes are strictly scoped: callers take a checkpoint (usually via
/// ArenaScope), allocate freely, and rewind. Nothing allocated from an
/// arena may own a destructor that matters -- arenas hand out raw bytes
/// and never run destructors.
///
/// The allocator has a process-global enable switch (`aptc ... --arena
/// on|off`). When disabled, every allocation is served by `operator new`
/// and tracked so rewind still releases it; call sites are identical in
/// both modes, which is what makes the verdict byte-parity tests across
/// the toggle meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_ARENA_H
#define APT_SUPPORT_ARENA_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace apt {

/// Process-wide arena statistics, aggregated across every Arena instance
/// and exported as the `apt.mem.*` metrics (docs/OBSERVABILITY.md).
struct ArenaStatsSnapshot {
  uint64_t Allocs = 0;       ///< Total allocate() calls served.
  uint64_t Bytes = 0;        ///< Total bytes handed out (cumulative).
  uint64_t Blocks = 0;       ///< Arena blocks obtained from the heap.
  uint64_t BlockBytes = 0;   ///< Bytes currently held in arena blocks.
  uint64_t HighWaterMax = 0; ///< Max live bytes seen in any one arena.
};

class Arena {
public:
  /// \p BlockBytes is the size of each slab; requests larger than a slab
  /// get a dedicated oversize block.
  explicit Arena(size_t BlockBytes = 64 * 1024);
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of uninitialized storage aligned to \p Align.
  /// Never returns null (aborts on OOM like operator new).
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  /// Typed array of \p N default-uninitialized T. T must be trivially
  /// destructible -- the arena never runs destructors.
  template <typename T> T *allocateArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// A position to rewind to. Only valid for rewinding the arena it was
  /// taken from, in LIFO order.
  struct Checkpoint {
    size_t Block = 0;   ///< Index into Blocks.
    size_t Used = 0;    ///< Bump offset inside that block.
    size_t Tracked = 0; ///< Heap-tracking watermark (disabled mode).
    size_t Live = 0;    ///< Live-byte count at checkpoint time.
  };

  Checkpoint checkpoint() const;

  /// Releases everything allocated after \p C. In enabled mode this is a
  /// pointer reset (slabs past the checkpoint stay cached for reuse); in
  /// disabled mode the tracked heap allocations are freed.
  void rewind(const Checkpoint &C);

  /// Rewind to empty.
  void reset();

  /// Live bytes currently allocated (since construction / last rewind).
  size_t liveBytes() const { return Live; }
  /// Max of liveBytes() over this arena's lifetime.
  size_t highWater() const { return HighWater; }
  /// Cumulative allocate() calls on this arena.
  uint64_t allocCount() const { return Allocs; }

  /// One lazily-created arena per thread, used by the automata kernels
  /// as scratch keyed to the worker that runs the query (the batch
  /// engine's per-worker reuse). Callers must scope their use with
  /// ArenaScope -- the thread arena is shared by everything on the
  /// thread.
  static Arena &threadScratch();

  /// Process-global switch (default on). When off, allocations come from
  /// the heap but remain rewind-released, so control flow is identical.
  static bool enabledGlobal() {
    return GlobalEnabled.load(std::memory_order_relaxed);
  }
  static void setEnabledGlobal(bool On) {
    GlobalEnabled.store(On, std::memory_order_relaxed);
  }

  /// Aggregate statistics over all arenas (relaxed counters; exact when
  /// quiescent). Feeds the `apt.mem.*` metrics.
  static ArenaStatsSnapshot statsSnapshot();

private:
  struct Block {
    char *Data = nullptr;
    size_t Size = 0;
  };

  void *allocateSlow(size_t Bytes, size_t Align);
  void noteLive(size_t Bytes);

  std::vector<Block> Blocks;
  size_t CurBlock = 0; ///< Active block index (Blocks may cache more).
  size_t Used = 0;     ///< Bump offset in Blocks[CurBlock].
  size_t BlockBytes;
  size_t Live = 0;
  size_t HighWater = 0;
  uint64_t Allocs = 0;
  /// Disabled-mode bookkeeping: raw heap pointers released on rewind.
  std::vector<void *> Tracked;

  static std::atomic<bool> GlobalEnabled;
};

/// RAII checkpoint/rewind over an arena.
class ArenaScope {
public:
  explicit ArenaScope(Arena &A) : A(A), C(A.checkpoint()) {}
  ~ArenaScope() { A.rewind(C); }
  ArenaScope(const ArenaScope &) = delete;
  ArenaScope &operator=(const ArenaScope &) = delete;

  Arena &arena() { return A; }

private:
  Arena &A;
  Arena::Checkpoint C;
};

/// Minimal std allocator adapter so std::vector and friends can live in
/// an arena inside a kernel's ArenaScope. Deallocation is a no-op (the
/// scope's rewind releases everything), so never use this for containers
/// that outlive the scope.
template <typename T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(Arena &A) : A(&A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &O) : A(O.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *, size_t) {}

  Arena *arena() const { return A; }

  friend bool operator==(const ArenaAllocator &X, const ArenaAllocator &Y) {
    return X.A == Y.A;
  }

private:
  Arena *A;
};

} // namespace apt

#endif // APT_SUPPORT_ARENA_H
