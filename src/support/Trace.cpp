//===- support/Trace.cpp --------------------------------------------------===//
//
// Part of the APT project; see Trace.h for the design constraints.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Clock.h"
#include "support/Metrics.h"

#include <atomic>

using namespace apt;
using namespace apt::trace;

const char *apt::trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::QueryBegin:
    return "query_begin";
  case EventKind::QueryEnd:
    return "query_end";
  case EventKind::GoalBegin:
    return "goal_begin";
  case EventKind::GoalEnd:
    return "goal_end";
  case EventKind::CacheHit:
    return "cache_hit";
  case EventKind::SharedCacheHit:
    return "shared_cache_hit";
  case EventKind::CachePoisoned:
    return "cache_poisoned";
  case EventKind::HypothesisHit:
    return "hypothesis_hit";
  case EventKind::SuffixSplit:
    return "suffix_split";
  case EventKind::FormAApplied:
    return "form_a_applied";
  case EventKind::FormBApplied:
    return "form_b_applied";
  case EventKind::StepAB:
    return "step_ab";
  case EventKind::StepC:
    return "step_c";
  case EventKind::StepD:
    return "step_d";
  case EventKind::AltSplit:
    return "alt_split";
  case EventKind::StarInduction:
    return "star_induction";
  case EventKind::SevenCaseInduction:
    return "seven_case_induction";
  case EventKind::BudgetExhausted:
    return "budget_exhausted";
  case EventKind::LangSubset:
    return "lang_subset";
  case EventKind::LangDisjoint:
    return "lang_disjoint";
  case EventKind::LangWitness:
    return "lang_witness";
  case EventKind::Triage:
    return "triage";
  case EventKind::SpanBegin:
    return "span_begin";
  case EventKind::SpanEnd:
    return "span_end";
  }
  return "unknown";
}

const char *apt::trace::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::CacheLookup:
    return "cache_lookup";
  case SpanKind::SuffixSplits:
    return "suffix_splits";
  case SpanKind::PrefixEqual:
    return "prefix_equal";
  case SpanKind::AltSplit:
    return "alt_split";
  case SpanKind::StarInduction:
    return "star_induction";
  case SpanKind::SevenCase:
    return "seven_case";
  case SpanKind::LangSubset:
    return "lang_subset";
  case SpanKind::LangDisjoint:
    return "lang_disjoint";
  case SpanKind::Triage:
    return "triage";
  case SpanKind::Reach:
    return "reach";
  }
  return "unknown";
}

namespace {

std::atomic<bool> Enabled{false};
std::atomic<bool> Timing{false};
std::atomic<Collector *> Sink{nullptr};
std::atomic<uint64_t> NextQueryId{1};
std::atomic<uint64_t> NextThreadTag{1};

/// Per-thread fixed-capacity ring. The buffer is allocated on the
/// thread's first record (so untraced threads cost nothing) and reused
/// for the thread's lifetime; recording is wait-free from then on.
struct Ring {
  std::vector<Event> Buf;
  size_t Head = 0;    ///< Next write position.
  size_t Count = 0;   ///< Live events (<= RingCapacity).
  uint64_t Seq = 0;   ///< Events ever recorded on this thread.
  uint64_t Dropped = 0;
  uint64_t ThreadTag = 0;
  uint64_t CurrentQuery = 0;

  /// First allocation; doubles up to RingCapacity as a thread actually
  /// records. Short-lived worker threads (the batch engine spawns a
  /// fresh pool per run) would otherwise pay the full ~1.3 MB ring on
  /// their first event, which dominates small traced runs.
  static constexpr size_t InitialCapacity = 256;

  void push(EventKind Kind, uint64_t GoalHash, uint32_t Depth, uint8_t Flag,
            uint64_t Aux) {
    if (Buf.empty()) {
      Buf.resize(InitialCapacity);
      ThreadTag = NextThreadTag.fetch_add(1, std::memory_order_relaxed);
    } else if (Count == Buf.size() && Buf.size() < RingCapacity) {
      // Full but not yet at the cap: double, restoring recording order
      // (when full, Head is both the write slot and the oldest event).
      std::vector<Event> Bigger(Buf.size() * 2);
      for (size_t I = 0; I < Count; ++I)
        Bigger[I] = Buf[(Head + I) & (Buf.size() - 1)];
      Buf = std::move(Bigger);
      Head = Count;
    }
    Event &E = Buf[Head];
    E.Seq = Seq++;
    E.QueryId = CurrentQuery;
    E.GoalHash = GoalHash;
    E.Aux = Aux;
    E.Tick = Timing.load(std::memory_order_relaxed) ? fastclock::ticks() : 0;
    E.Depth = Depth;
    E.Kind = Kind;
    E.Flag = Flag;
    Head = (Head + 1) & (Buf.size() - 1);
    if (Count < Buf.size())
      ++Count;
    else
      ++Dropped;
  }

  void flush() {
    if (Count == 0 && Dropped == 0)
      return;
    Collector *C = Sink.load(std::memory_order_acquire);
    if (C) {
      Collector::ThreadBatch Batch;
      Batch.ThreadTag = ThreadTag;
      Batch.Dropped = Dropped;
      Batch.Events.reserve(Count);
      size_t Start = (Head + Buf.size() - Count) & (Buf.size() - 1);
      for (size_t I = 0; I < Count; ++I)
        Batch.Events.push_back(Buf[(Start + I) & (Buf.size() - 1)]);
      C->take(std::move(Batch));
    }
    Head = 0;
    Count = 0;
    Dropped = 0;
  }

  ~Ring() { flush(); }
};

Ring &ring() {
  thread_local Ring R;
  return R;
}

static_assert((RingCapacity & (RingCapacity - 1)) == 0,
              "ring indexing relies on a power-of-two capacity");

} // namespace

bool apt::trace::enabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void apt::trace::setEnabled(bool On) { Enabled.store(On); }

bool apt::trace::timingEnabled() {
  return Timing.load(std::memory_order_relaxed);
}

void apt::trace::setTimingEnabled(bool On) {
  if (On)
    fastclock::calibrate(); // pay the spin here, never on a prover thread
  Timing.store(On);
}

void apt::trace::setCollector(Collector *C) {
  Sink.store(C, std::memory_order_release);
}

Collector *apt::trace::collector() {
  return Sink.load(std::memory_order_acquire);
}

void apt::trace::record(EventKind Kind, uint64_t GoalHash, uint32_t Depth,
                        uint8_t Flag, uint64_t Aux) {
  if (!enabled())
    return;
  ring().push(Kind, GoalHash, Depth, Flag, Aux);
}

uint64_t apt::trace::beginQuery(uint64_t Tag) {
  if (!enabled())
    return 0;
  uint64_t Id = NextQueryId.fetch_add(1, std::memory_order_relaxed);
  Ring &R = ring();
  R.push(EventKind::QueryBegin, 0, 0, 0, Tag);
  // QueryBegin itself carries the *enclosing* scope (0 at top level);
  // everything after it belongs to the new scope.
  R.CurrentQuery = Id;
  return Id;
}

void apt::trace::endQuery(uint64_t Id, bool Proved) {
  if (Id == 0)
    return;
  Ring &R = ring();
  R.push(EventKind::QueryEnd, 0, 0, Proved ? 1 : 0, 0);
  if (R.CurrentQuery == Id)
    R.CurrentQuery = 0;
}

void apt::trace::flushThisThread() { ring().flush(); }

void Collector::take(ThreadBatch Batch) {
  // Ring wrap-around is the one way trace data silently degrades, so a
  // drop count surfaces on every layer: here as a process-wide metric,
  // in the JSONL summary record, and in trace_test's zero-drop asserts.
  metrics::Registry::global()
      .counter("apt.trace.dropped_events")
      .add(Batch.Dropped);
  std::lock_guard<std::mutex> Lock(M);
  Batches.push_back(std::move(Batch));
}

std::vector<Collector::ThreadBatch> Collector::drain() {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<ThreadBatch> Out;
  Out.swap(Batches);
  return Out;
}

std::vector<Collector::ThreadBatch> Collector::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return Batches;
}

uint64_t Collector::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t N = 0;
  for (const ThreadBatch &B : Batches)
    N += B.Dropped;
  return N;
}
