//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the APT project; see Json.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

using namespace apt;

const JsonValue &JsonValue::operator[](const std::string &Key) const {
  static const JsonValue Null;
  if (!isObject())
    return Null;
  auto It = asObject().find(Key);
  return It == asObject().end() ? Null : It->second;
}

std::string apt::jsonQuote(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
  return Out;
}

namespace {

void dumpTo(const JsonValue &V, std::string &Out, int Indent, int Depth) {
  auto NewlineIndent = [&](int D) {
    if (Indent < 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };
  if (V.isNull()) {
    Out += "null";
  } else if (V.isBool()) {
    Out += V.asBool() ? "true" : "false";
  } else if (V.isInt()) {
    Out += std::to_string(V.asInt());
  } else if (V.isDouble()) {
    double D = V.asDouble();
    if (std::isfinite(D)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no inf/nan.
    }
  } else if (V.isString()) {
    Out += jsonQuote(V.asString());
  } else if (V.isArray()) {
    const JsonValue::Array &A = V.asArray();
    if (A.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    bool First = true;
    for (const JsonValue &E : A) {
      if (!First)
        Out += ',';
      First = false;
      NewlineIndent(Depth + 1);
      dumpTo(E, Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += ']';
  } else {
    const JsonValue::Object &O = V.asObject();
    if (O.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    bool First = true;
    for (const auto &[K, E] : O) {
      if (!First)
        Out += ',';
      First = false;
      NewlineIndent(Depth + 1);
      Out += jsonQuote(K);
      Out += Indent < 0 ? ":" : ": ";
      dumpTo(E, Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += '}';
  }
}

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    if (!parseValue(R.Value)) {
      R.Error = "offset " + std::to_string(At) + ": " + Err;
      return R;
    }
    skipWs();
    if (At != Text.size()) {
      R.Error = "offset " + std::to_string(At) + ": trailing characters";
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  bool fail(const char *Message) {
    if (Err.empty())
      Err = Message;
    return false;
  }

  void skipWs() {
    while (At < Text.size() &&
           (Text[At] == ' ' || Text[At] == '\t' || Text[At] == '\n' ||
            Text[At] == '\r'))
      ++At;
  }

  bool lit(std::string_view S) {
    if (Text.substr(At, S.size()) != S)
      return false;
    At += S.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (At >= Text.size())
      return fail("unexpected end of input");
    char C = Text[At];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    if (lit("true")) {
      Out = JsonValue(true);
      return true;
    }
    if (lit("false")) {
      Out = JsonValue(false);
      return true;
    }
    if (lit("null")) {
      Out = JsonValue(nullptr);
      return true;
    }
    return parseNumber(Out);
  }

  bool parseObject(JsonValue &Out) {
    ++At; // '{'
    JsonValue::Object O;
    skipWs();
    if (At < Text.size() && Text[At] == '}') {
      ++At;
      Out = JsonValue(std::move(O));
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return fail("expected object key");
      skipWs();
      if (At >= Text.size() || Text[At] != ':')
        return fail("expected ':'");
      ++At;
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      O[std::move(Key)] = std::move(V);
      skipWs();
      if (At < Text.size() && Text[At] == ',') {
        ++At;
        continue;
      }
      if (At < Text.size() && Text[At] == '}') {
        ++At;
        Out = JsonValue(std::move(O));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out) {
    ++At; // '['
    JsonValue::Array A;
    skipWs();
    if (At < Text.size() && Text[At] == ']') {
      ++At;
      Out = JsonValue(std::move(A));
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      A.push_back(std::move(V));
      skipWs();
      if (At < Text.size() && Text[At] == ',') {
        ++At;
        continue;
      }
      if (At < Text.size() && Text[At] == ']') {
        ++At;
        Out = JsonValue(std::move(A));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string &Out) {
    if (At >= Text.size() || Text[At] != '"')
      return fail("expected string");
    ++At;
    while (At < Text.size()) {
      char C = Text[At];
      if (C == '"') {
        ++At;
        return true;
      }
      if (C == '\\') {
        if (At + 1 >= Text.size())
          return fail("bad escape");
        char E = Text[At + 1];
        At += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (At + 4 > Text.size())
            return fail("bad \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[At + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          At += 4;
          // UTF-8 encode the BMP code point (we never emit surrogate
          // pairs, and traces are ASCII; non-BMP input decodes as two
          // separate 3-byte sequences, which round-trips our own output).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
        }
        continue;
      }
      Out += C;
      ++At;
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = At;
    if (At < Text.size() && Text[At] == '-')
      ++At;
    // JSON forbids leading zeros ("01"); a lone 0 or "0.x" is fine.
    if (At + 1 < Text.size() && Text[At] == '0' &&
        std::isdigit(static_cast<unsigned char>(Text[At + 1])))
      return fail("leading zero in number");
    while (At < Text.size() && std::isdigit(static_cast<unsigned char>(
                                   Text[At])))
      ++At;
    bool IsDouble = false;
    if (At < Text.size() && Text[At] == '.') {
      IsDouble = true;
      ++At;
      while (At < Text.size() && std::isdigit(static_cast<unsigned char>(
                                     Text[At])))
        ++At;
    }
    if (At < Text.size() && (Text[At] == 'e' || Text[At] == 'E')) {
      IsDouble = true;
      ++At;
      if (At < Text.size() && (Text[At] == '+' || Text[At] == '-'))
        ++At;
      while (At < Text.size() && std::isdigit(static_cast<unsigned char>(
                                     Text[At])))
        ++At;
    }
    if (At == Start)
      return fail("expected value");
    std::string_view Num = Text.substr(Start, At - Start);
    if (!IsDouble) {
      int64_t I = 0;
      auto [P, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), I);
      if (Ec == std::errc() && P == Num.data() + Num.size()) {
        Out = JsonValue(I);
        return true;
      }
      // Out-of-range integer: fall through to double.
    }
    double D = 0;
    auto [P, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), D);
    if (Ec != std::errc() || P != Num.data() + Num.size())
      return fail("bad number");
    Out = JsonValue(D);
    return true;
  }

  std::string_view Text;
  size_t At = 0;
  std::string Err;
};

} // namespace

std::string JsonValue::dump() const {
  std::string Out;
  dumpTo(*this, Out, /*Indent=*/-1, /*Depth=*/0);
  return Out;
}

std::string JsonValue::dumpPretty() const {
  std::string Out;
  dumpTo(*this, Out, /*Indent=*/2, /*Depth=*/0);
  return Out;
}

JsonParseResult apt::parseJson(std::string_view Text) {
  return Parser(Text).run();
}
