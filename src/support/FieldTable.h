//===- support/FieldTable.h - Interned pointer-field names ------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interning table mapping pointer-field names (the edge labels of a data
/// structure viewed as a directed graph) to dense integer ids. Regular
/// expressions, automata, heap graphs and axioms all refer to fields by
/// FieldId so that comparisons are O(1) and alphabets are dense bit sets.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_FIELDTABLE_H
#define APT_SUPPORT_FIELDTABLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace apt {

/// Dense id of an interned pointer-field name.
using FieldId = uint32_t;

/// Interning table for pointer-field names.
///
/// A FieldTable is shared by every component that talks about the same
/// universe of field names (one per analysis session is typical). Ids are
/// assigned densely in interning order, so they can index vectors directly.
class FieldTable {
public:
  FieldTable() = default;

  /// Interns \p Name, returning its id (existing or freshly assigned).
  FieldId intern(std::string_view Name);

  /// Returns the id of \p Name if it has been interned, and std::nullopt
  /// otherwise. Never allocates a new id.
  std::optional<FieldId> lookup(std::string_view Name) const;

  /// Returns the name of an interned field. \p Id must be valid.
  const std::string &name(FieldId Id) const;

  /// Number of interned fields; valid ids are [0, size()).
  size_t size() const { return Names.size(); }

  /// True if no field has been interned yet.
  bool empty() const { return Names.empty(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, FieldId> Ids;
};

/// A concrete path through a data structure: a finite word of field names.
using Word = std::vector<FieldId>;

/// Renders \p W as dotted field names, or "<eps>" for the empty word.
std::string wordToString(const Word &W, const FieldTable &Fields);

} // namespace apt

#endif // APT_SUPPORT_FIELDTABLE_H
