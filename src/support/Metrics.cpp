//===- support/Metrics.cpp ------------------------------------------------===//
//
// Part of the APT project; see Metrics.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <limits>

using namespace apt;
using namespace apt::metrics;

void Histogram::observe(uint64_t Sample) {
  // bit_width(0) = 0, bit_width(1) = 1, bit_width(2..3) = 2, ... so the
  // bucket index is exactly the [2^(i-1), 2^i) rule from the header.
  size_t Bucket = static_cast<size_t>(std::bit_width(Sample));
  if (Bucket >= NumBuckets)
    Bucket = NumBuckets - 1;
  Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::bucketUpperBound(size_t I) {
  if (I + 1 >= NumBuckets)
    return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << I) - 1; // bucket i holds samples <= 2^i - 1
}

Histogram::Snapshot &Histogram::Snapshot::operator+=(const Snapshot &O) {
  Count += O.Count;
  Sum += O.Sum;
  if (O.Max > Max)
    Max = O.Max;
  for (size_t I = 0; I < NumBuckets; ++I)
    Buckets[I] += O.Buckets[I];
  return *this;
}

uint64_t Histogram::Snapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q <= 0)
    Q = 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (static_cast<double>(Rank) < Q * static_cast<double>(Count))
    ++Rank; // ceil
  if (Rank == 0)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Cum = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    Cum += Buckets[I];
    if (Cum >= Rank)
      return std::min(bucketUpperBound(I), Max);
  }
  return Max; // unreachable when Buckets sum to Count
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Max = Max.load(std::memory_order_relaxed);
  for (size_t I = 0; I < NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

Registry &Registry::global() {
  static Registry *R = new Registry(); // leaked: outlive thread exits
  return *R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

RegistrySnapshot Registry::snapshotAll() const {
  std::lock_guard<std::mutex> Lock(M);
  RegistrySnapshot Snap;
  for (const auto &[Name, C] : Counters)
    Snap.Counters[Name] = C->value();
  for (const auto &[Name, H] : Histograms)
    Snap.Histograms[Name] = H->snapshot();
  return Snap;
}

std::map<std::string, uint64_t> Registry::values() const {
  std::lock_guard<std::mutex> Lock(M);
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, G] : Gauges)
    Out[Name] = G->value();
  for (const auto &[Name, C] : Counters)
    Out[Name] = C->value(); // counters win on a (conventionless) collision
  return Out;
}

static uint64_t satSub(uint64_t A, uint64_t B) { return A > B ? A - B : 0; }

JsonValue Registry::toJson() const { return toJsonSince(RegistrySnapshot{}); }

JsonValue Registry::toJsonSince(const RegistrySnapshot &Base) const {
  std::lock_guard<std::mutex> Lock(M);
  JsonValue::Object Root;
  Root["version"] = JsonValue(int64_t{1});

  JsonValue::Object CountersJson;
  for (const auto &[Name, C] : Counters) {
    auto It = Base.Counters.find(Name);
    uint64_t Baseline = It == Base.Counters.end() ? 0 : It->second;
    CountersJson[Name] = JsonValue(satSub(C->value(), Baseline));
  }
  Root["counters"] = JsonValue(std::move(CountersJson));

  JsonValue::Object GaugesJson;
  for (const auto &[Name, G] : Gauges)
    GaugesJson[Name] = JsonValue(G->value());
  Root["gauges"] = JsonValue(std::move(GaugesJson));

  JsonValue::Object HistogramsJson;
  for (const auto &[Name, H] : Histograms) {
    Histogram::Snapshot S = H->snapshot();
    if (auto It = Base.Histograms.find(Name); It != Base.Histograms.end()) {
      const Histogram::Snapshot &B = It->second;
      S.Count = satSub(S.Count, B.Count);
      S.Sum = satSub(S.Sum, B.Sum);
      for (size_t I = 0; I < Histogram::NumBuckets; ++I)
        S.Buckets[I] = satSub(S.Buckets[I], B.Buckets[I]);
      // The lifetime max is the tightest bound available for the delta
      // window (per-sample maxima are not retained); an idle window
      // exports as empty.
      if (S.Count == 0)
        S.Max = 0;
    }
    JsonValue::Object HJ;
    HJ["count"] = JsonValue(S.Count);
    HJ["sum"] = JsonValue(S.Sum);
    HJ["max"] = JsonValue(S.Max);
    HJ["p50"] = JsonValue(S.quantile(0.50));
    HJ["p90"] = JsonValue(S.quantile(0.90));
    HJ["p99"] = JsonValue(S.quantile(0.99));
    JsonValue::Array BucketsJson;
    for (size_t I = 0; I < Histogram::NumBuckets; ++I) {
      if (S.Buckets[I] == 0)
        continue; // sparse: empty buckets add noise, not information
      JsonValue::Object B;
      uint64_t Le = Histogram::bucketUpperBound(I);
      B["le"] = Le == std::numeric_limits<uint64_t>::max()
                    ? JsonValue("+inf")
                    : JsonValue(Le);
      B["count"] = JsonValue(S.Buckets[I]);
      BucketsJson.push_back(JsonValue(std::move(B)));
    }
    HJ["buckets"] = JsonValue(std::move(BucketsJson));
    HistogramsJson[Name] = JsonValue(std::move(HJ));
  }
  Root["histograms"] = JsonValue(std::move(HistogramsJson));
  return JsonValue(std::move(Root));
}

void Registry::resetAll() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}
