//===- support/Timeline.cpp -----------------------------------------------===//
//
// Part of the APT project; see Timeline.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/Timeline.h"

using namespace apt;
using namespace apt::metrics;

std::vector<std::string> Timeline::defaultPrefixes() {
  return {"apt.svc.", "apt.mem.", "apt.trace.", "apt.lang.", "apt.triage."};
}

Timeline::Timeline(size_t Capacity, std::vector<std::string> Prefixes)
    : Cap(Capacity == 0 ? 1 : Capacity), Prefixes(std::move(Prefixes)) {}

void Timeline::sample(const Registry &R, uint64_t AtMs) {
  Sample S;
  S.AtMs = AtMs;
  for (auto &[Name, Value] : R.values()) {
    bool Keep = Prefixes.empty();
    for (const std::string &P : Prefixes) {
      if (Name.compare(0, P.size(), P) == 0) {
        Keep = true;
        break;
      }
    }
    if (Keep)
      S.Values.emplace(Name, Value);
  }
  if (Ring.size() == Cap) {
    Ring.pop_front();
    ++Evicted;
  }
  Ring.push_back(std::move(S));
}

JsonValue Timeline::toJson() const {
  JsonValue::Object Root;
  Root["capacity"] = JsonValue(static_cast<uint64_t>(Cap));
  Root["dropped"] = JsonValue(Evicted);
  JsonValue::Array Samples;
  for (const Sample &S : Ring) {
    JsonValue::Object O;
    O["at_ms"] = JsonValue(S.AtMs);
    JsonValue::Object Values;
    for (const auto &[Name, Value] : S.Values)
      Values[Name] = JsonValue(Value);
    O["values"] = JsonValue(std::move(Values));
    Samples.push_back(JsonValue(std::move(O)));
  }
  Root["samples"] = JsonValue(std::move(Samples));
  return JsonValue(std::move(Root));
}
