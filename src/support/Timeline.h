//===- support/Timeline.h - Bounded ring of metric snapshots ----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring of periodic metric readings, the daemon's time-series
/// memory. The `aptd` poll loop calls sample() on a fixed interval
/// (--timeline-ms, default 1000); each sample stores the flat counter +
/// gauge values whose names match a prefix filter (service traffic,
/// cache gauges, arena high-water marks, trace-ring drops by default).
/// When the ring is full the oldest sample is evicted and counted, so a
/// long-lived daemon holds a sliding window, never unbounded history.
///
/// The ring is intentionally NOT thread-safe: the server's poll loop and
/// the protocol handler that serves the `timeline` op run on the same
/// thread (the daemon is single-threaded by design, docs/SERVICE.md).
///
/// Cost discipline: one sample is one Registry::values() walk (~a mutex
/// plus copying <100 name/value pairs). bench_check.py --mode service
/// gates it at <= 1% of the default 1 s sampling interval.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_TIMELINE_H
#define APT_SUPPORT_TIMELINE_H

#include "support/Json.h"
#include "support/Metrics.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace apt::metrics {

class Timeline {
public:
  /// One periodic reading: milliseconds since the daemon started, and
  /// the filtered flat counter/gauge values at that instant.
  struct Sample {
    uint64_t AtMs = 0;
    std::map<std::string, uint64_t> Values;
  };

  /// The default name filter: service traffic, cache sizes, arena
  /// high-water marks, and trace-ring drops. Everything the `status` op
  /// summarizes, nothing per-query (those belong to --metrics-json).
  static std::vector<std::string> defaultPrefixes();

  explicit Timeline(size_t Capacity = 256,
                    std::vector<std::string> Prefixes = defaultPrefixes());

  /// Appends one reading of \p R taken at \p AtMs, evicting the oldest
  /// sample when the ring is at capacity. AtMs must be non-decreasing
  /// across calls (the sampler passes a monotone clock).
  void sample(const Registry &R, uint64_t AtMs);

  size_t size() const { return Ring.size(); }
  size_t capacity() const { return Cap; }
  /// Samples evicted to ring wrap-around since construction.
  uint64_t dropped() const { return Evicted; }
  /// Newest sample, or nullptr while empty.
  const Sample *latest() const { return Ring.empty() ? nullptr : &Ring.back(); }
  /// Oldest -> newest.
  const std::deque<Sample> &samples() const { return Ring; }

  /// {"capacity":N,"dropped":N,"samples":[{"at_ms":N,"values":{...}}]},
  /// samples oldest first — the `timeline` op's result body
  /// (docs/service_schema.json).
  JsonValue toJson() const;

private:
  size_t Cap;
  std::vector<std::string> Prefixes;
  std::deque<Sample> Ring;
  uint64_t Evicted = 0;
};

} // namespace apt::metrics

#endif // APT_SUPPORT_TIMELINE_H
