//===- support/Clock.cpp --------------------------------------------------===//
//
// Part of the APT project; see Clock.h for the design.
//
//===----------------------------------------------------------------------===//

#include "support/Clock.h"

#include <atomic>
#include <bit>

using namespace apt;

namespace {

/// Measured nanoseconds-per-tick, stored as IEEE bits so a single atomic
/// publishes the double (0 = not yet calibrated).
std::atomic<uint64_t> NsPerTickBits{0};

double measureNsPerTick() {
#if APT_CLOCK_TSC
  using Clock = std::chrono::steady_clock;
  // Two (steady_clock, tsc) sample pairs separated by a ~2 ms spin: long
  // enough that the ~20-40 ns sampling skew is below 0.01%, short enough
  // to be unnoticeable at startup. The spin re-reads the clock rather
  // than sleeping so a descheduled thread stretches both axes equally.
  Clock::time_point W0 = Clock::now();
  uint64_t T0 = fastclock::ticks();
  Clock::time_point Deadline = W0 + std::chrono::milliseconds(2);
  Clock::time_point W1;
  do {
    W1 = Clock::now();
  } while (W1 < Deadline);
  uint64_t T1 = fastclock::ticks();
  double Ns =
      std::chrono::duration<double, std::nano>(W1 - W0).count();
  double Ticks = static_cast<double>(T1 - T0);
  if (Ticks <= 0 || Ns <= 0)
    return 1.0; // non-monotone TSC (VM migration?): degrade, don't divide by 0
  return Ns / Ticks;
#else
  // ticks() already is steady_clock; its period is compile-time exact.
  using Period = std::chrono::steady_clock::period;
  return 1e9 * static_cast<double>(Period::num) /
         static_cast<double>(Period::den);
#endif
}

} // namespace

void fastclock::calibrate() {
  double R = measureNsPerTick();
  NsPerTickBits.store(std::bit_cast<uint64_t>(R), std::memory_order_release);
}

double fastclock::nsPerTick() {
  uint64_t Bits = NsPerTickBits.load(std::memory_order_acquire);
  if (Bits == 0) {
    calibrate();
    Bits = NsPerTickBits.load(std::memory_order_acquire);
  }
  return std::bit_cast<double>(Bits);
}

uint64_t fastclock::ticksToNanos(uint64_t TickDelta) {
  return static_cast<uint64_t>(static_cast<double>(TickDelta) * nsPerTick());
}

const char *fastclock::sourceName() {
#if APT_CLOCK_TSC
  return "tsc";
#else
  return "steady_clock";
#endif
}
