//===- support/Clock.h - Calibrated fast timestamps -------------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timestamp source of the timed-tracing mode (support/Trace.h): a
/// raw monotonic tick counter cheap enough to stamp every hot-path trace
/// event, plus a one-time calibration against std::chrono::steady_clock
/// that converts ticks to nanoseconds on the cold path.
///
/// On x86-64 ticks() reads the TSC (one `rdtsc`, ~5-10 ns, no syscall,
/// no serialization -- profiling wants low overhead, not fence-accurate
/// ordering; modern cores have an invariant TSC, which the calibration
/// assumes). Everywhere else it falls back to steady_clock, which is
/// still far below the cost of a prover rule application.
///
/// Conversion is deliberately split off the read: the hot path stores
/// raw ticks in the 48-byte trace event, and only the profile aggregator
/// (analysis/Profile.h) pays for the multiply. Calibration runs once,
/// lazily, the first time a conversion is requested -- or eagerly via
/// calibrate(), which trace::setTimingEnabled() calls so no prover
/// thread ever takes the calibration spin.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_CLOCK_H
#define APT_SUPPORT_CLOCK_H

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#define APT_CLOCK_TSC 1
#include <x86intrin.h>
#else
#define APT_CLOCK_TSC 0
#endif

namespace apt::fastclock {

/// Raw monotonic tick count. Unit is *ticks* (TSC cycles or steady_clock
/// ticks), meaningful only through ticksToNanos/nsPerTick.
inline uint64_t ticks() {
#if APT_CLOCK_TSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Runs (or re-runs) the tick-rate calibration: samples (steady_clock,
/// ticks) pairs across a short spin and stores the measured rate.
/// Idempotent and thread-safe; costs a few milliseconds.
void calibrate();

/// Nanoseconds per tick, calibrating lazily on first use.
double nsPerTick();

/// Converts a tick *delta* to nanoseconds (do not feed absolute TSC
/// values through this for wall-clock purposes; only differences are
/// meaningful).
uint64_t ticksToNanos(uint64_t TickDelta);

/// "tsc" or "steady_clock"; recorded in profile headers so a reader
/// knows which source produced the numbers.
const char *sourceName();

} // namespace apt::fastclock

#endif // APT_SUPPORT_CLOCK_H
