//===- support/FieldTable.cpp ---------------------------------------------===//
//
// Part of the APT project; see FieldTable.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/FieldTable.h"

#include <cassert>

using namespace apt;

FieldId FieldTable::intern(std::string_view Name) {
  assert(!Name.empty() && "field names must be non-empty");
  auto It = Ids.find(std::string(Name));
  if (It != Ids.end())
    return It->second;
  FieldId Id = static_cast<FieldId>(Names.size());
  Names.emplace_back(Name);
  Ids.emplace(Names.back(), Id);
  return Id;
}

std::optional<FieldId> FieldTable::lookup(std::string_view Name) const {
  auto It = Ids.find(std::string(Name));
  if (It == Ids.end())
    return std::nullopt;
  return It->second;
}

const std::string &FieldTable::name(FieldId Id) const {
  assert(Id < Names.size() && "invalid field id");
  return Names[Id];
}

std::string apt::wordToString(const Word &W, const FieldTable &Fields) {
  if (W.empty())
    return "<eps>";
  std::string Out;
  for (size_t I = 0; I < W.size(); ++I) {
    if (I > 0)
      Out += '.';
    Out += Fields.name(W[I]);
  }
  return Out;
}
