//===- support/Arena.cpp - Bump allocation with scoped rewind -------------===//
//
// Part of the APT project; see Arena.h for the design and docs/MEMORY.md
// for lifetime rules.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <cstdlib>
#include <new>

namespace apt {

std::atomic<bool> Arena::GlobalEnabled{true};

namespace {
/// Process-global aggregates behind statsSnapshot(). Relaxed: these feed
/// metrics, not control flow.
std::atomic<uint64_t> GAllocs{0};
std::atomic<uint64_t> GBytes{0};
std::atomic<uint64_t> GBlocks{0};
std::atomic<uint64_t> GBlockBytes{0};
std::atomic<uint64_t> GHighWaterMax{0};

void raiseHighWaterMax(uint64_t V) {
  uint64_t Cur = GHighWaterMax.load(std::memory_order_relaxed);
  while (V > Cur && !GHighWaterMax.compare_exchange_weak(
                        Cur, V, std::memory_order_relaxed))
    ;
}

inline size_t alignUp(size_t N, size_t Align) {
  return (N + Align - 1) & ~(Align - 1);
}
} // namespace

Arena::Arena(size_t BlockBytes) : BlockBytes(BlockBytes ? BlockBytes : 4096) {}

Arena::~Arena() {
  for (void *P : Tracked)
    ::operator delete(P);
  for (Block &B : Blocks) {
    GBlocks.fetch_sub(1, std::memory_order_relaxed);
    GBlockBytes.fetch_sub(B.Size, std::memory_order_relaxed);
    ::operator delete(B.Data);
  }
}

void Arena::noteLive(size_t Bytes) {
  ++Allocs;
  Live += Bytes;
  if (Live > HighWater) {
    HighWater = Live;
    raiseHighWaterMax(HighWater);
  }
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  GBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void *Arena::allocate(size_t Bytes, size_t Align) {
  if (Bytes == 0)
    Bytes = 1;
  if (!enabledGlobal()) {
    // Disabled mode: same call sites, heap-backed storage, released at
    // the same rewind points. operator new returns max_align_t-aligned
    // memory, which covers every Align we hand out.
    void *P = ::operator new(Bytes);
    Tracked.push_back(P);
    noteLive(Bytes);
    return P;
  }
  if (CurBlock < Blocks.size()) {
    size_t At = alignUp(Used, Align);
    if (At + Bytes <= Blocks[CurBlock].Size) {
      Used = At + Bytes;
      noteLive(Bytes);
      return Blocks[CurBlock].Data + At;
    }
  }
  return allocateSlow(Bytes, Align);
}

void *Arena::allocateSlow(size_t Bytes, size_t Align) {
  // Move to the next cached block that fits, or mint a new one. Oversize
  // requests get a dedicated block so slab memory is never torn up.
  while (CurBlock + 1 < Blocks.size()) {
    ++CurBlock;
    Used = 0;
    size_t At = alignUp(Used, Align);
    if (At + Bytes <= Blocks[CurBlock].Size) {
      Used = At + Bytes;
      noteLive(Bytes);
      return Blocks[CurBlock].Data + At;
    }
  }
  size_t Size = Bytes + Align > BlockBytes ? Bytes + Align : BlockBytes;
  Block B;
  B.Data = static_cast<char *>(::operator new(Size));
  B.Size = Size;
  Blocks.push_back(B);
  CurBlock = Blocks.size() - 1;
  GBlocks.fetch_add(1, std::memory_order_relaxed);
  GBlockBytes.fetch_add(Size, std::memory_order_relaxed);
  size_t At = alignUp(0, Align);
  Used = At + Bytes;
  noteLive(Bytes);
  return Blocks[CurBlock].Data + At;
}

Arena::Checkpoint Arena::checkpoint() const {
  Checkpoint C;
  C.Block = CurBlock;
  C.Used = Used;
  C.Tracked = Tracked.size();
  C.Live = Live;
  return C;
}

void Arena::rewind(const Checkpoint &C) {
  while (Tracked.size() > C.Tracked) {
    ::operator delete(Tracked.back());
    Tracked.pop_back();
  }
  // Blocks past the checkpoint stay cached for the next scope; only the
  // bump positions move. (A checkpoint taken before any block exists has
  // Block == 0 whether or not block 0 was minted later; resetting to
  // offset 0 of block 0 is correct in both cases.)
  CurBlock = C.Block;
  Used = C.Used;
  Live = C.Live;
}

void Arena::reset() {
  Checkpoint Zero;
  rewind(Zero);
}

Arena &Arena::threadScratch() {
  static thread_local Arena Scratch(256 * 1024);
  return Scratch;
}

ArenaStatsSnapshot Arena::statsSnapshot() {
  ArenaStatsSnapshot S;
  S.Allocs = GAllocs.load(std::memory_order_relaxed);
  S.Bytes = GBytes.load(std::memory_order_relaxed);
  S.Blocks = GBlocks.load(std::memory_order_relaxed);
  S.BlockBytes = GBlockBytes.load(std::memory_order_relaxed);
  S.HighWaterMax = GHighWaterMax.load(std::memory_order_relaxed);
  return S;
}

} // namespace apt
