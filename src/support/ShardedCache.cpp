//===- support/ShardedCache.cpp -------------------------------------------===//
//
// Part of the APT project; see ShardedCache.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/ShardedCache.h"

#include "support/Metrics.h"

using namespace apt;

ShardedBoolCache::ShardedBoolCache(size_t RequestedShards) {
  size_t N = 1;
  while (N < RequestedShards && N < 1024)
    N <<= 1;
  Shards = std::make_unique<Shard[]>(N);
  Mask = N - 1;
}

ShardedBoolCache::Shard &ShardedBoolCache::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>()(Key) & Mask];
}

std::optional<bool> ShardedBoolCache::lookup(const std::string &Key) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

void ShardedBoolCache::insert(const std::string &Key, bool Value) {
  Insertions.fetch_add(1, std::memory_order_relaxed);
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  S.Map.emplace(Key, Value); // first writer wins
}

ShardedBoolCache::Stats ShardedBoolCache::stats() const {
  Stats Out;
  Out.Hits = Hits.load(std::memory_order_relaxed);
  Out.Misses = Misses.load(std::memory_order_relaxed);
  Out.Insertions = Insertions.load(std::memory_order_relaxed);
  return Out;
}

size_t ShardedBoolCache::size() const {
  size_t Total = 0;
  for (size_t I = 0; I <= Mask; ++I) {
    std::lock_guard<std::mutex> Lock(Shards[I].M);
    Total += Shards[I].Map.size();
  }
  return Total;
}

void ShardedBoolCache::publishMetrics(const std::string &Prefix) const {
  Stats S = stats();
  publishShardedCacheMetrics(Prefix, S.Hits, S.Misses, S.Insertions, size());
}

void apt::publishShardedCacheMetrics(const std::string &Prefix, uint64_t Hits,
                                     uint64_t Misses, uint64_t Insertions,
                                     uint64_t Entries) {
  metrics::Registry &R = metrics::Registry::global();
  R.gauge(Prefix + ".hits").set(Hits);
  R.gauge(Prefix + ".misses").set(Misses);
  R.gauge(Prefix + ".insertions").set(Insertions);
  R.gauge(Prefix + ".entries").set(Entries);
}
