//===- support/Trace.h - Per-thread ring-buffer proof tracing ---*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace substrate of the observability layer (docs/OBSERVABILITY.md):
/// a structured event is recorded for every `proveDisj` rule application
/// (suffix splits, form-A/form-B axiom hits, steps A-D, alternation
/// splits, the 3-case and 7-case inductions, cache hits and cache
/// poisoning) and for every language query, cheap enough to leave
/// compiled in everywhere.
///
/// Design constraints, in order:
///
///  * **Zero allocation on the hot path.** Events are fixed-size PODs
///    carrying enums, depths and 64-bit key hashes -- never strings --
///    and are written into a pre-sized thread_local ring buffer. The
///    ring wraps (oldest events are dropped and counted) rather than
///    grow. Full regex/proof text is only materialized on the cold path
///    (analysis/TraceExport.h), from the recorded ProofNode.
///
///  * **Off by default, free when off.** A single relaxed atomic load
///    guards every APT_TRACE_EVENT site; with tracing disabled at
///    runtime the cost is one predictable branch. Compiling with
///    -DAPT_TRACE_DISABLED (CMake: -DAPT_TRACE=OFF) removes the sites
///    entirely.
///
///  * **No locks on the hot path.** Worker threads never synchronize
///    while recording; rings drain to a mutex-protected Collector on
///    thread exit (the batch engine's pools join inside run(), so worker
///    rings are always flushed before the trace is written) or via
///    flushThisThread().
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_TRACE_H
#define APT_SUPPORT_TRACE_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace apt::trace {

/// What happened. Kept in sync with eventKindName(); the JSONL schema in
/// docs/OBSERVABILITY.md documents each kind's Flag/Aux payload.
enum class EventKind : uint8_t {
  QueryBegin,         ///< proveDisjoint entered. Aux = caller tag.
  QueryEnd,           ///< proveDisjoint returned. Flag = proved.
  GoalBegin,          ///< A goal is explored. Aux = goal-key hash.
  GoalEnd,            ///< The goal resolved. Flag = proved.
  CacheHit,           ///< Goal answered by the per-prover cache.
  SharedCacheHit,     ///< Goal answered by the cross-thread cache.
  CachePoisoned,      ///< Failure not cached. Flag = PoisonReason.
  HypothesisHit,      ///< Goal matched an induction hypothesis.
  SuffixSplit,        ///< A suffix split found an axiom. Aux = (i<<32)|j.
  FormAApplied,       ///< T1 (same-origin) axiom covered the suffixes.
  FormBApplied,       ///< T2 (distinct-origin) axiom covered them.
  StepAB,             ///< Steps A+B: T1 and T2 closed the goal outright.
  StepC,              ///< Step C: T1 + provably equal prefixes.
  StepD,              ///< Step D: T2 + recursively disjoint prefixes.
  AltSplit,           ///< Alternation case split proven. Flag = on-P side.
  StarInduction,      ///< 3-case single-star induction attempted.
  SevenCaseInduction, ///< 7-case double-Kleene induction attempted.
  BudgetExhausted,    ///< MaxSteps ran out.
  LangSubset,         ///< Language subset query. Flag = LangFlags.
  LangDisjoint,       ///< Language disjoint query. Flag = LangFlags.
  LangWitness,        ///< Witness word found by the on-the-fly product:
                      ///< Flag = 1 for a shared word refuting disjointness,
                      ///< 0 for a subset counterexample; Aux = word length,
                      ///< GoalHash = hash of the query key it refutes.
  Triage,             ///< Triage cascade consulted on a prepared pair.
                      ///< Flag = resolving TriageTier (0 = escalated),
                      ///< Aux = 1 when the pair was resolved.
  SpanBegin,          ///< Timed scope opened. Flag = SpanKind.
  SpanEnd,            ///< Timed scope closed. Flag = SpanKind.
};

constexpr size_t NumEventKinds =
    static_cast<size_t>(EventKind::SpanEnd) + 1;

/// Stable lowercase identifier, e.g. "step_d" (used in the JSONL export).
const char *eventKindName(EventKind K);

/// What a SpanBegin/SpanEnd pair brackets (the Flag byte). Query and
/// goal scopes need no span kind: QueryBegin/QueryEnd and
/// GoalBegin/GoalEnd are themselves paired and, in timed mode, carry
/// timestamps like every other event. Kept in sync with spanKindName().
enum class SpanKind : uint8_t {
  CacheLookup,    ///< Goal-cache probe (local + shared) inside prove().
  SuffixSplits,   ///< Suffix-split search: axiom matching, steps A-D.
  PrefixEqual,    ///< Step C's prefix-equality decision (equality rules).
  AltSplit,       ///< Alternation case-split attempt (all branches).
  StarInduction,  ///< 3-case single-star induction attempt.
  SevenCase,      ///< 7-case double-Kleene induction attempt.
  LangSubset,     ///< Uncached language subset computation.
  LangDisjoint,   ///< Uncached language disjointness computation.
  Triage,         ///< Static triage cascade run on one prepared pair.
  Reach,          ///< Reachability pre-pass run on one prepared pair.
};

constexpr size_t NumSpanKinds =
    static_cast<size_t>(SpanKind::Reach) + 1;

/// Stable lowercase identifier, e.g. "suffix_splits" (profile rule key).
const char *spanKindName(SpanKind K);

/// CachePoisoned Flag values: why the failure must not be memoized.
enum class PoisonReason : uint8_t {
  DepthCutoff = 0,     ///< MaxDepth or MaxGoalComponents exceeded.
  StepBudget = 1,      ///< MaxSteps exhausted.
  InductionDepth = 2,  ///< MaxInductionDepth exceeded.
  CycleCut = 3,        ///< Goal re-entered while in progress.
};

/// Bit layout of the Flag byte on LangSubset/LangDisjoint events.
enum LangFlags : uint8_t {
  LangResult = 1 << 0,    ///< The query's answer.
  LangCached = 1 << 1,    ///< Served from the per-instance cache.
  LangShared = 1 << 2,    ///< Served from the cross-thread cache.
};

/// One recorded event. Fixed-size POD; 48 bytes.
struct Event {
  uint64_t Seq = 0;      ///< Per-thread sequence number (monotone).
  uint64_t QueryId = 0;  ///< Innermost query scope; 0 = outside any.
  uint64_t GoalHash = 0; ///< Hash of the goal/query key; 0 = n/a.
  uint64_t Aux = 0;      ///< Kind-specific payload.
  uint64_t Tick = 0;     ///< fastclock::ticks() timestamp in timed mode;
                         ///< 0 when timing is off (support/Clock.h).
  uint32_t Depth = 0;    ///< Prover recursion depth; 0 = n/a.
  EventKind Kind = EventKind::QueryBegin;
  uint8_t Flag = 0;      ///< Kind-specific payload.
};

/// Events a ring can hold before wrapping (per thread; the buffer starts
/// small on the thread's first record and doubles up to this cap, so a
/// short-lived worker never pays the full ~1.6 MB at 48 B/event).
constexpr size_t RingCapacity = 1 << 15;

/// Receives drained rings. Thread-safe; one instance is typically
/// installed for the duration of a traced run (setCollector) and drained
/// after its worker pool has joined.
class Collector {
public:
  /// Events of one thread's ring, in recording order.
  struct ThreadBatch {
    uint64_t ThreadTag = 0; ///< Small per-thread id (first-use order).
    uint64_t Dropped = 0;   ///< Events lost to ring wrap-around.
    std::vector<Event> Events;
  };

  /// Appends one drained ring. Called by the recording machinery.
  void take(ThreadBatch Batch);

  /// Removes and returns everything collected so far.
  std::vector<ThreadBatch> drain();

  /// Copies everything collected so far without removing it, so the
  /// profile aggregator and the trace writer can both consume one run.
  std::vector<ThreadBatch> snapshot() const;

  /// Sum of Dropped across batches currently held.
  uint64_t droppedEvents() const;

private:
  mutable std::mutex M;
  std::vector<ThreadBatch> Batches;
};

/// Runtime switch. Disabled rings record nothing; enabling mid-run only
/// affects events recorded after the (seq_cst) store becomes visible.
bool enabled();
void setEnabled(bool On);

/// Timed mode: when on (and tracing is enabled), every recorded event is
/// stamped with fastclock::ticks() and the ScopedSpan sites emit their
/// SpanBegin/SpanEnd pairs. Off by default; one extra relaxed load per
/// recorded event when tracing runs untimed. setTimingEnabled(true)
/// calibrates the clock eagerly so no recording thread ever does.
bool timingEnabled();
void setTimingEnabled(bool On);

/// Installs the collector drained rings flush into (nullptr detaches).
/// Not thread-safe against concurrent recording threads exiting; install
/// before spawning traced work and detach after joining it.
void setCollector(Collector *C);
Collector *collector();

/// Records one event into this thread's ring (no-op when disabled).
void record(EventKind Kind, uint64_t GoalHash = 0, uint32_t Depth = 0,
            uint8_t Flag = 0, uint64_t Aux = 0);

/// Opens a query scope: allocates a process-unique id, records
/// QueryBegin (Aux = \p Tag) and makes the id the thread's current scope.
/// Returns 0 when tracing is disabled.
uint64_t beginQuery(uint64_t Tag = 0);

/// Closes the scope opened by beginQuery (no-op for id 0).
void endQuery(uint64_t Id, bool Proved);

/// Pushes this thread's ring to the installed collector and clears it.
/// Also happens automatically when a thread exits.
void flushThisThread();

/// RAII timed scope: emits SpanBegin on construction and SpanEnd on
/// destruction, both carrying Flag = \p K, when tracing *and* timing are
/// enabled (the liveness decision is taken once, at construction, so a
/// span never ends up half-emitted around a mid-scope mode flip). Use
/// through APT_TRACE_SPAN so the declaration compiles out with the rest
/// of the trace sites.
class ScopedSpan {
public:
  explicit ScopedSpan(SpanKind K, uint64_t GoalHash = 0, uint32_t Depth = 0)
      : Kind(K), GoalHash(GoalHash), Depth(Depth),
        Live(enabled() && timingEnabled()) {
    if (Live)
      record(EventKind::SpanBegin, GoalHash, Depth,
             static_cast<uint8_t>(Kind));
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() {
    if (Live)
      record(EventKind::SpanEnd, GoalHash, Depth,
             static_cast<uint8_t>(Kind));
  }

private:
  SpanKind Kind;
  uint64_t GoalHash;
  uint32_t Depth;
  bool Live;
};

} // namespace apt::trace

/// Statement-shaped hot-path macro; arguments are not evaluated unless
/// tracing is both compiled in and runtime-enabled.
#if defined(APT_TRACE_DISABLED)
#define APT_TRACE_ENABLED 0
#define APT_TRACE_EVENT(...)                                                 \
  do {                                                                       \
  } while (false)
/// Compiled out: expands to nothing (the trailing semicolon at the call
/// site is an empty statement).
#define APT_TRACE_SPAN(Var, ...)
#else
#define APT_TRACE_ENABLED 1
#define APT_TRACE_EVENT(...)                                                 \
  do {                                                                       \
    if (::apt::trace::enabled())                                             \
      ::apt::trace::record(__VA_ARGS__);                                     \
  } while (false)
/// Declaration-shaped: opens a timed span named \p Var covering the rest
/// of the enclosing block. No-op (two relaxed loads) unless tracing and
/// timing are both runtime-enabled.
#define APT_TRACE_SPAN(Var, ...) ::apt::trace::ScopedSpan Var(__VA_ARGS__)
#endif

#endif // APT_SUPPORT_TRACE_H
