//===- support/ChromeTrace.h - Chrome trace-event JSON export ---*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds a traced run's paired begin/end events into Chrome trace-event
/// JSON (the format chrome://tracing and Perfetto load): QueryBegin/End,
/// GoalBegin/End and SpanBegin/End pairs become "X" complete events with
/// microsecond timestamps, one track per recording thread, plus "M"
/// metadata naming the process and threads. When the run was served by
/// the daemon, the request id becomes an async "b"/"e" bracket spanning
/// the whole run so per-request latency reads directly off the timeline.
///
/// `aptc ... --trace-chrome=<file>` drives this from the command layer;
/// it consumes Collector::snapshot() (non-destructive), so it composes
/// with --trace and --profile on the same run. Only timed events (those
/// carrying a fastclock tick — --trace-chrome forces timed mode) can be
/// placed on the timeline; the writer is a single streaming pass with
/// snprintf formatting, no JSON tree, because the profile overhead gate
/// (traced+export <= 1.10x plain, bench_smoke_profile) covers it.
///
/// Structural guarantees, pinned by the chrome_trace_check ctest: the
/// output is a valid JSON array; every duration event is balanced by
/// construction (unpaired begins/ends are counted, not emitted); within
/// one (pid, tid) track the "X" events appear in non-decreasing ts order.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_CHROMETRACE_H
#define APT_SUPPORT_CHROMETRACE_H

#include "support/Trace.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace apt::trace {

struct ChromeTraceOptions {
  /// Shown as the process name in the trace viewer ("aptc deps", ...).
  std::string ProcessName = "aptc";
  /// Nonzero: the daemon request this run served; emitted as an async
  /// "b"/"e" bracket (cat "request") spanning the run.
  uint64_t RequestId = 0;
};

struct ChromeTraceStats {
  size_t Complete = 0;   ///< "X" duration events emitted.
  size_t Unmatched = 0;  ///< Begin/end events with no partner (skipped).
  uint64_t Dropped = 0;  ///< Ring wrap-around losses across batches.
};

/// Writes \p Batches as one Chrome trace-event JSON array to \p OS.
/// Deterministic for a fixed input (events are sorted per track).
ChromeTraceStats
writeChromeTrace(std::ostream &OS,
                 const std::vector<Collector::ThreadBatch> &Batches,
                 const ChromeTraceOptions &Opts = ChromeTraceOptions());

} // namespace apt::trace

#endif // APT_SUPPORT_CHROMETRACE_H
