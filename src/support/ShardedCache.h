//===- support/ShardedCache.h - Thread-safe sharded memo table --*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, mutex-per-shard map from canonical string keys to boolean
/// verdicts. This is the concurrency substrate of the batch dependence-
/// query engine (analysis/QueryEngine.h): worker threads each run their
/// own Prover, but all provers publish proven/refuted goals and language-
/// query answers here, so a subset test or subgoal settled on one thread
/// is free on every other.
///
/// Only *order-independent facts* may be stored: a key must determine its
/// value regardless of which thread computes it first (proved goals,
/// definitive non-poisoned failures, language-query answers). Entries are
/// never evicted or overwritten, so a reader can act on any hit without
/// revalidation.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_SHARDEDCACHE_H
#define APT_SUPPORT_SHARDEDCACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace apt {

/// Thread-safe string -> bool memo table, sharded to keep lock contention
/// proportional to 1/NumShards rather than to the thread count.
class ShardedBoolCache {
public:
  /// \p RequestedShards is rounded up to a power of two (so the shard
  /// index is a mask, not a modulo).
  explicit ShardedBoolCache(size_t RequestedShards = 16);

  ShardedBoolCache(const ShardedBoolCache &) = delete;
  ShardedBoolCache &operator=(const ShardedBoolCache &) = delete;

  /// Returns the cached verdict for \p Key, or nullopt on a miss.
  std::optional<bool> lookup(const std::string &Key);

  /// Publishes \p Key -> \p Value. The first writer wins; concurrent
  /// inserts of the same key must carry the same value (see file
  /// comment), so dropping the loser is harmless.
  void insert(const std::string &Key, bool Value);

  /// Counter snapshot. Counters are monotone over the cache's lifetime.
  struct Stats {
    uint64_t Hits = 0;       ///< lookups that found an entry
    uint64_t Misses = 0;     ///< lookups that found nothing
    uint64_t Insertions = 0; ///< insert calls (including first-writer losses)
  };
  Stats stats() const;

  /// Number of distinct keys stored (takes every shard lock; intended for
  /// stats reporting, not hot paths).
  size_t size() const;

  /// Publishes this cache's current stats() and size() as gauges named
  /// "<Prefix>.hits", ".misses", ".insertions" and ".entries" in the
  /// global metrics registry (support/Metrics.h). Cold path only.
  void publishMetrics(const std::string &Prefix) const;

  /// Visits every (key, value) pair under the shard locks, in shard order
  /// (key order within a shard is unspecified). \p Fn must not call back
  /// into this cache. Cold path: snapshot serialization and tests.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> Lock(Shards[I].M);
      for (const auto &[K, V] : Shards[I].Map)
        F(K, V);
    }
  }

  /// Removes every entry whose key satisfies \p Pred and returns how many
  /// were dropped. This is the one sanctioned exception to the
  /// never-evicted contract: the service layer uses it to invalidate
  /// entries minted under a superseded axiom-set fingerprint, and callers
  /// must guarantee no concurrent reader still trusts those keys.
  template <typename Pred> size_t eraseIf(Pred &&P) {
    size_t Erased = 0;
    for (size_t I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> Lock(Shards[I].M);
      for (auto It = Shards[I].Map.begin(); It != Shards[I].Map.end();) {
        if (P(It->first)) {
          It = Shards[I].Map.erase(It);
          ++Erased;
        } else {
          ++It;
        }
      }
    }
    return Erased;
  }

  size_t numShards() const { return Mask + 1; }

private:
  struct Shard {
    std::mutex M;
    std::unordered_map<std::string, bool> Map;
  };

  Shard &shardFor(const std::string &Key);

  std::unique_ptr<Shard[]> Shards;
  size_t Mask;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Insertions{0};
};

/// Implementation detail shared with ShardedInternCache: publishes the
/// standard ".hits"/".misses"/".insertions"/".entries" gauge quartet to
/// the global metrics registry (defined in ShardedCache.cpp so this
/// header stays free of the Metrics dependency).
void publishShardedCacheMetrics(const std::string &Prefix, uint64_t Hits,
                                uint64_t Misses, uint64_t Insertions,
                                uint64_t Entries);

/// Thread-safe string -> shared immutable object intern table, sharded
/// like ShardedBoolCache. Where the bool cache memoizes *verdicts*, this
/// one memoizes *values* (e.g. minimized automata): the first thread to
/// intern a key wins and every later lookup shares its object.
///
/// The same order-independence contract applies: a key must determine its
/// value up to semantic equality no matter which thread builds it first,
/// because a losing racer's object is dropped in favor of the winner's.
/// Entries are never evicted; stored objects must be immutable.
template <typename V> class ShardedInternCache {
public:
  explicit ShardedInternCache(size_t RequestedShards = 16) {
    size_t N = 1;
    while (N < RequestedShards && N < 1024)
      N <<= 1;
    Shards = std::make_unique<Shard[]>(N);
    Mask = N - 1;
  }

  ShardedInternCache(const ShardedInternCache &) = delete;
  ShardedInternCache &operator=(const ShardedInternCache &) = delete;

  /// The interned object for \p Key, or nullptr on a miss.
  std::shared_ptr<const V> lookup(const std::string &Key) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    Hits.fetch_add(1, std::memory_order_relaxed);
    return It->second;
  }

  /// Publishes \p Value under \p Key and returns the interned object:
  /// \p Value itself if this call won, the earlier winner otherwise.
  std::shared_ptr<const V> intern(const std::string &Key,
                                  std::shared_ptr<const V> Value) {
    Insertions.fetch_add(1, std::memory_order_relaxed);
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    auto [It, Inserted] = S.Map.emplace(Key, std::move(Value));
    return It->second; // first writer wins
  }

  /// Counter snapshot; monotone over the cache's lifetime.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
  };
  Stats stats() const {
    Stats Out;
    Out.Hits = Hits.load(std::memory_order_relaxed);
    Out.Misses = Misses.load(std::memory_order_relaxed);
    Out.Insertions = Insertions.load(std::memory_order_relaxed);
    return Out;
  }

  /// Distinct keys stored (takes every shard lock; stats reporting only).
  size_t size() const {
    size_t Total = 0;
    for (size_t I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> Lock(Shards[I].M);
      Total += Shards[I].Map.size();
    }
    return Total;
  }

  /// Same gauge quartet as ShardedBoolCache::publishMetrics.
  void publishMetrics(const std::string &Prefix) const {
    Stats S = stats();
    publishShardedCacheMetrics(Prefix, S.Hits, S.Misses, S.Insertions,
                               size());
  }

  /// Visits every (key, interned object) pair under the shard locks, in
  /// shard order. \p Fn must not call back into this cache. Cold path:
  /// snapshot serialization and tests.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I <= Mask; ++I) {
      std::lock_guard<std::mutex> Lock(Shards[I].M);
      for (const auto &[Key, Obj] : Shards[I].Map)
        F(Key, Obj);
    }
  }

  size_t numShards() const { return Mask + 1; }

private:
  struct Shard {
    std::mutex M;
    std::unordered_map<std::string, std::shared_ptr<const V>> Map;
  };

  Shard &shardFor(const std::string &Key) {
    return Shards[std::hash<std::string>()(Key) & Mask];
  }

  std::unique_ptr<Shard[]> Shards;
  size_t Mask;
  mutable std::atomic<uint64_t> Hits{0}, Misses{0}, Insertions{0};
};

} // namespace apt

#endif // APT_SUPPORT_SHARDEDCACHE_H
