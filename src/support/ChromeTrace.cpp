//===- support/ChromeTrace.cpp --------------------------------------------===//
//
// Part of the APT project; see ChromeTrace.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/ChromeTrace.h"

#include "support/Clock.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <ostream>

using namespace apt;
using namespace apt::trace;

namespace {

/// One folded duration event, nanoseconds relative to the run's first
/// timed event. Kept integral end to end: the writer emits ts/dur as
/// fixed-point microseconds ("%llu.%03llu"), which is both exact at the
/// clock's resolution and much cheaper than printf double formatting --
/// on big traces the per-event %f calls were the dominant export cost.
struct Complete {
  uint64_t TsNs = 0;
  uint64_t DurNs = 0;
  const char *Name = nullptr;
  uint64_t GoalHash = 0;
  uint64_t QueryId = 0;
  uint32_t Depth = 0;
};

/// A begin event waiting for its end.
struct OpenFrame {
  const Event *Begin = nullptr;
  const char *Name = nullptr;
};

const char *frameName(const Event &E) {
  switch (E.Kind) {
  case EventKind::QueryBegin:
  case EventKind::QueryEnd:
    return "query";
  case EventKind::GoalBegin:
  case EventKind::GoalEnd:
    return "goal";
  case EventKind::SpanBegin:
  case EventKind::SpanEnd:
    return E.Flag < NumSpanKinds ? spanKindName(static_cast<SpanKind>(E.Flag))
                                 : "span";
  default:
    return nullptr;
  }
}

bool isBegin(EventKind K) {
  return K == EventKind::QueryBegin || K == EventKind::GoalBegin ||
         K == EventKind::SpanBegin;
}

bool isEnd(EventKind K) {
  return K == EventKind::QueryEnd || K == EventKind::GoalEnd ||
         K == EventKind::SpanEnd;
}

/// Does \p End close \p Begin? Kinds must correspond and span frames
/// must agree on the SpanKind byte.
bool closes(const Event &Begin, const Event &End) {
  switch (End.Kind) {
  case EventKind::QueryEnd:
    return Begin.Kind == EventKind::QueryBegin;
  case EventKind::GoalEnd:
    return Begin.Kind == EventKind::GoalBegin;
  case EventKind::SpanEnd:
    return Begin.Kind == EventKind::SpanBegin && Begin.Flag == End.Flag;
  default:
    return false;
  }
}

/// Minimal JSON string escape for the (ASCII, internally generated)
/// names that reach the output.
void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

void appendRecord(std::string &Out, bool &First, const char *Fmt, ...)
    __attribute__((format(printf, 3, 4)));

void appendRecord(std::string &Out, bool &First, const char *Fmt, ...) {
  if (!First)
    Out += ",\n";
  First = false;
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, std::min<size_t>(static_cast<size_t>(N), sizeof(Buf) - 1));
}

} // namespace

ChromeTraceStats
apt::trace::writeChromeTrace(std::ostream &OS,
                             const std::vector<Collector::ThreadBatch> &Batches,
                             const ChromeTraceOptions &Opts) {
  ChromeTraceStats Stats;

  // The zero point: the earliest timed event anywhere in the run. Raw
  // ticks are meaningless as absolutes (support/Clock.h), so every ts is
  // a delta against this.
  uint64_t MinTick = std::numeric_limits<uint64_t>::max();
  for (const Collector::ThreadBatch &B : Batches) {
    Stats.Dropped += B.Dropped;
    for (const Event &E : B.Events)
      if (E.Tick != 0 && E.Tick < MinTick)
        MinTick = E.Tick;
  }

  std::string Out;
  Out.reserve(1 << 14);
  Out += "[\n";
  bool First = true;

  std::string ProcName;
  appendEscaped(ProcName, Opts.ProcessName);
  appendRecord(Out, First,
               "{\"args\":{\"name\":\"%s\"},\"name\":\"process_name\","
               "\"ph\":\"M\",\"pid\":1,\"tid\":0}",
               ProcName.c_str());

  uint64_t MaxEndNs = 0;
  std::vector<OpenFrame> Stack;
  std::vector<Complete> Frames;
  for (const Collector::ThreadBatch &B : Batches) {
    appendRecord(Out, First,
                 "{\"args\":{\"name\":\"worker %llu\"},"
                 "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%llu}",
                 static_cast<unsigned long long>(B.ThreadTag),
                 static_cast<unsigned long long>(B.ThreadTag));

    // Fold this thread's begin/end pairs. Scopes are RAII on the
    // recording side, so within one ring they nest properly; anything
    // unpaired here lost its partner to ring wrap-around.
    Stack.clear();
    Frames.clear();
    for (const Event &E : B.Events) {
      if (E.Tick == 0)
        continue; // untimed events cannot be placed on the timeline
      if (isBegin(E.Kind)) {
        Stack.push_back({&E, frameName(E)});
      } else if (isEnd(E.Kind)) {
        if (!Stack.empty() && closes(*Stack.back().Begin, E)) {
          const Event &Begin = *Stack.back().Begin;
          Complete F;
          F.TsNs = fastclock::ticksToNanos(Begin.Tick - MinTick);
          F.DurNs = E.Tick >= Begin.Tick
                        ? fastclock::ticksToNanos(E.Tick - Begin.Tick)
                        : 0;
          F.Name = Stack.back().Name;
          F.GoalHash = Begin.GoalHash;
          F.QueryId = Begin.QueryId ? Begin.QueryId : E.QueryId;
          F.Depth = Begin.Depth;
          Frames.push_back(F);
          Stack.pop_back();
          MaxEndNs = std::max(MaxEndNs, F.TsNs + F.DurNs);
        } else {
          ++Stats.Unmatched;
        }
      }
    }
    Stats.Unmatched += Stack.size();

    // The viewer tolerates any array order, but the structural validator
    // (and human diffing) want per-track monotone timestamps; at equal
    // ts the longer frame first so enclosing scopes precede their
    // children.
    std::stable_sort(Frames.begin(), Frames.end(),
                     [](const Complete &A, const Complete &B) {
                       if (A.TsNs != B.TsNs)
                         return A.TsNs < B.TsNs;
                       return A.DurNs > B.DurNs;
                     });

    for (const Complete &F : Frames) {
      char ArgsBuf[128];
      int ArgsLen = 0;
      ArgsBuf[0] = '\0';
      if (F.GoalHash)
        ArgsLen += std::snprintf(ArgsBuf + ArgsLen,
                                 sizeof(ArgsBuf) - static_cast<size_t>(ArgsLen),
                                 "%s\"goal\":\"0x%016llx\"",
                                 ArgsLen ? "," : "",
                                 static_cast<unsigned long long>(F.GoalHash));
      if (F.QueryId)
        ArgsLen += std::snprintf(ArgsBuf + ArgsLen,
                                 sizeof(ArgsBuf) - static_cast<size_t>(ArgsLen),
                                 "%s\"query\":%llu", ArgsLen ? "," : "",
                                 static_cast<unsigned long long>(F.QueryId));
      if (F.Depth)
        ArgsLen += std::snprintf(ArgsBuf + ArgsLen,
                                 sizeof(ArgsBuf) - static_cast<size_t>(ArgsLen),
                                 "%s\"depth\":%u", ArgsLen ? "," : "", F.Depth);
      appendRecord(Out, First,
                   "{\"args\":{%s},\"cat\":\"apt\","
                   "\"dur\":%llu.%03llu,"
                   "\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
                   "\"ts\":%llu.%03llu}",
                   ArgsBuf,
                   static_cast<unsigned long long>(F.DurNs / 1000),
                   static_cast<unsigned long long>(F.DurNs % 1000), F.Name,
                   static_cast<unsigned long long>(B.ThreadTag),
                   static_cast<unsigned long long>(F.TsNs / 1000),
                   static_cast<unsigned long long>(F.TsNs % 1000));
      ++Stats.Complete;
    }
  }

  if (Opts.RequestId != 0) {
    // Async bracket on its own track: b at the zero point, e past the
    // last folded frame, so the request envelope encloses every event.
    appendRecord(Out, First,
                 "{\"cat\":\"request\",\"id\":%llu,\"name\":\"request "
                 "%llu\",\"ph\":\"b\",\"pid\":1,\"tid\":0,\"ts\":0.000}",
                 static_cast<unsigned long long>(Opts.RequestId),
                 static_cast<unsigned long long>(Opts.RequestId));
    appendRecord(Out, First,
                 "{\"cat\":\"request\",\"id\":%llu,\"name\":\"request "
                 "%llu\",\"ph\":\"e\",\"pid\":1,\"tid\":0,"
                 "\"ts\":%llu.%03llu}",
                 static_cast<unsigned long long>(Opts.RequestId),
                 static_cast<unsigned long long>(Opts.RequestId),
                 static_cast<unsigned long long>(MaxEndNs / 1000),
                 static_cast<unsigned long long>(MaxEndNs % 1000));
  }

  Out += "\n]\n";
  OS << Out;
  return Stats;
}
