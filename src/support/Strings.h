//===- support/Strings.h - Small string helpers -----------------*- C++ -*-===//
//
// Part of the APT project; see DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String utilities shared across the project: trimming, joining and a hash
/// combiner for composite cache keys.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_STRINGS_H
#define APT_SUPPORT_STRINGS_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace apt {

/// Returns \p S without leading/trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Splits \p S on \p Sep, dropping empty pieces.
std::vector<std::string> splitNonEmpty(std::string_view S, char Sep);

/// Levenshtein edit distance between \p A and \p B (insert/delete/replace
/// all cost 1). Used for "did you mean ...?" fix-it suggestions.
size_t editDistance(std::string_view A, std::string_view B);

/// Mixes \p Value into \p Seed (boost::hash_combine recipe).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

} // namespace apt

#endif // APT_SUPPORT_STRINGS_H
