//===- support/Json.h - Minimal JSON value model ----------------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value model with a writer and a strict
/// recursive-descent parser. It exists for the observability layer
/// (support/Metrics.h JSON export, the `aptc --trace` JSONL records and
/// their replay in analysis/TraceExport.h) and is deliberately minimal:
/// objects preserve *sorted* key order (std::map), so serializing the
/// same value twice -- or on two different threads/job counts -- yields
/// byte-identical text, which the trace canonicalization relies on.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_JSON_H
#define APT_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace apt {

/// One JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so counters round-trip
/// exactly (a uint64 histogram sum does not fit a double losslessly).
class JsonValue {
public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : V(nullptr) {}
  JsonValue(std::nullptr_t) : V(nullptr) {}
  JsonValue(bool B) : V(B) {}
  JsonValue(int64_t N) : V(N) {}
  JsonValue(uint64_t N) : V(static_cast<int64_t>(N)) {}
  JsonValue(int N) : V(static_cast<int64_t>(N)) {}
  JsonValue(unsigned N) : V(static_cast<int64_t>(N)) {}
  JsonValue(double D) : V(D) {}
  JsonValue(std::string S) : V(std::move(S)) {}
  JsonValue(const char *S) : V(std::string(S)) {}
  JsonValue(Array A) : V(std::move(A)) {}
  JsonValue(Object O) : V(std::move(O)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(V); }
  bool isBool() const { return std::holds_alternative<bool>(V); }
  bool isInt() const { return std::holds_alternative<int64_t>(V); }
  bool isDouble() const { return std::holds_alternative<double>(V); }
  /// isInt() || isDouble().
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return std::holds_alternative<std::string>(V); }
  bool isArray() const { return std::holds_alternative<Array>(V); }
  bool isObject() const { return std::holds_alternative<Object>(V); }

  bool asBool() const { return std::get<bool>(V); }
  int64_t asInt() const { return std::get<int64_t>(V); }
  /// Numeric value as double (works for both number kinds).
  double asDouble() const {
    return isInt() ? static_cast<double>(std::get<int64_t>(V))
                   : std::get<double>(V);
  }
  const std::string &asString() const { return std::get<std::string>(V); }
  const Array &asArray() const { return std::get<Array>(V); }
  Array &asArray() { return std::get<Array>(V); }
  const Object &asObject() const { return std::get<Object>(V); }
  Object &asObject() { return std::get<Object>(V); }

  /// Object member access; returns a shared null value for missing keys
  /// (or non-objects), so lookups chain without exceptions.
  const JsonValue &operator[](const std::string &Key) const;

  /// True if this is an object with member \p Key.
  bool has(const std::string &Key) const {
    return isObject() && asObject().count(Key) > 0;
  }

  /// Serializes to compact JSON (no whitespace). Deterministic: object
  /// keys are emitted in sorted order.
  std::string dump() const;

  /// Serializes with two-space indentation (for files meant for humans).
  std::string dumpPretty() const;

private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      V;
};

/// Result of parsing JSON text.
struct JsonParseResult {
  JsonValue Value;
  bool Ok = false;
  std::string Error; ///< "offset N: message" on failure.

  explicit operator bool() const { return Ok; }
};

/// Parses one JSON document; trailing non-whitespace is an error.
JsonParseResult parseJson(std::string_view Text);

/// Escapes \p S as a JSON string literal including the quotes.
std::string jsonQuote(std::string_view S);

} // namespace apt

#endif // APT_SUPPORT_JSON_H
