//===- support/Version.cpp ------------------------------------------------===//
//
// Part of the APT project; see Version.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/Version.h"

#include "support/Arena.h"

#include <cstring>

using namespace apt;
using namespace apt::version;

// CMake always defines APT_SANITIZE_NAME (root CMakeLists.txt); the
// fallback keeps non-CMake compiles (e.g. tooling one-offs) building.
#ifndef APT_SANITIZE_NAME
#define APT_SANITIZE_NAME "OFF"
#endif

const char *apt::version::sanitizerName() {
  // The CMake cache spells the disabled state "OFF"; report it lowercase
  // like the other values so consumers never case-fold.
  if (std::strcmp(APT_SANITIZE_NAME, "OFF") == 0)
    return "off";
  return APT_SANITIZE_NAME;
}

bool apt::version::traceCompiledIn() {
  // APT_TRACE_DISABLED is the CMake-level switch (Trace.h derives
  // APT_TRACE_ENABLED from it); testing it directly avoids pulling the
  // whole trace substrate into this translation unit.
#if defined(APT_TRACE_DISABLED)
  return false;
#else
  return true;
#endif
}

bool apt::version::arenaEnabled() { return apt::Arena::enabledGlobal(); }

std::string apt::version::buildConfigString() {
  std::string S = "protocol ";
  S += std::to_string(kProtocolVersion);
  S += ", trace=";
  S += traceCompiledIn() ? "on" : "off";
  S += ", sanitizer=";
  S += sanitizerName();
  S += ", arena=";
  S += arenaEnabled() ? "on" : "off";
  return S;
}

std::string apt::version::versionLine(const char *Tool) {
  std::string S = Tool;
  S += ' ';
  S += kRelease;
  S += " (";
  S += buildConfigString();
  S += ')';
  return S;
}

JsonValue apt::version::buildJson() {
  JsonValue::Object O;
  O["arena"] = JsonValue(arenaEnabled());
  O["protocol"] = JsonValue(kProtocolVersion);
  O["release"] = JsonValue(kRelease);
  O["sanitizer"] = JsonValue(sanitizerName());
  O["trace"] = JsonValue(traceCompiledIn());
  return JsonValue(std::move(O));
}
