//===- support/Version.h - Build identity and protocol version --*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One place that knows what this binary is: release string, wire-protocol
/// version, and the build configuration that changes observable behavior
/// (APT_TRACE, sanitizer flavor, arena default). `aptc --version` /
/// `aptd --version` print versionLine(); every artifact header (--trace,
/// --profile, --metrics-json) and the daemon's `status` op embed
/// buildJson() so a stray file can always be traced back to the binary
/// and configuration that produced it.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_VERSION_H
#define APT_SUPPORT_VERSION_H

#include "support/Json.h"

#include <string>

namespace apt::version {

/// Release string; bumped when a PR lands a user-visible surface change.
inline constexpr const char *kRelease = "0.10";

/// Version of the aptd NDJSON wire protocol: the set of ops and the
/// schema-pinned response shapes (docs/service_schema.json). Bumped only
/// on incompatible changes; additive ops/fields keep the number.
inline constexpr int64_t kProtocolVersion = 1;

/// "address", "thread", or "off" — the APT_SANITIZE flavor compiled in.
const char *sanitizerName();

/// True when the APT_TRACE_EVENT sites are compiled in (APT_TRACE=ON).
bool traceCompiledIn();

/// True when the bump arena is the process default right now
/// (support/Arena.h; flippable per run with --arena on|off).
bool arenaEnabled();

/// "protocol 1, trace=on, sanitizer=off, arena=on" — the parenthesized
/// part of versionLine(), also usable on its own in logs.
std::string buildConfigString();

/// "aptc 0.10 (protocol 1, trace=on, sanitizer=off, arena=on)".
std::string versionLine(const char *Tool);

/// {"arena":bool,"protocol":1,"release":"0.10","sanitizer":"off",
///  "trace":bool} — the `build` object embedded in artifact headers and
/// the daemon's `status` op.
JsonValue buildJson();

} // namespace apt::version

#endif // APT_SUPPORT_VERSION_H
