//===- support/Strings.cpp ------------------------------------------------===//
//
// Part of the APT project; see Strings.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/Strings.h"

#include <algorithm>
#include <cctype>

using namespace apt;

std::string_view apt::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::string apt::join(const std::vector<std::string> &Parts,
                      std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I > 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

size_t apt::editDistance(std::string_view A, std::string_view B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Prev = Row[J];
      size_t Sub = Diag + (A[I - 1] == B[J - 1] ? 0 : 1);
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Sub});
      Diag = Prev;
    }
  }
  return Row[B.size()];
}

std::vector<std::string> apt::splitNonEmpty(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      if (I > Start)
        Out.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}
