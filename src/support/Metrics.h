//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small process-wide metrics registry: named counters (monotone adds),
/// gauges (last-write-wins snapshots, e.g. cache entry counts) and
/// log2-bucketed histograms (e.g. per-query wall time). The model follows
/// `ProverStats::operator+=`: every instrument merges monotonically, so
/// concurrent writers only ever need relaxed atomics, and a snapshot
/// taken at any time is a valid (if slightly stale) lower bound.
///
/// `aptc --metrics-json=<file>` serializes Registry::global(); the JSON
/// shape is pinned by docs/metrics_schema.json and validated by the
/// `metrics_schema_check` ctest. Metric names are dotted lowercase
/// ("apt.batch.query_wall_us"); the full inventory lives in
/// docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef APT_SUPPORT_METRICS_H
#define APT_SUPPORT_METRICS_H

#include "support/Json.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace apt::metrics {

/// Monotone counter. add() is wait-free.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins value (cache sizes, configured job counts).
class Gauge {
public:
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Histogram over uint64 samples with power-of-two buckets: bucket i
/// counts samples in [2^(i-1), 2^i) (bucket 0 counts zeros and ones
/// land in bucket 1), the last bucket is unbounded. Wait-free observe().
class Histogram {
public:
  static constexpr size_t NumBuckets = 32;

  void observe(uint64_t Sample);

  /// Consistent-enough copy of the counters (each is read relaxed; the
  /// set is monotone, so a snapshot is a valid lower bound).
  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Max = 0;
    std::array<uint64_t, NumBuckets> Buckets{};

    /// Component-wise monotone merge (Max takes the larger side).
    Snapshot &operator+=(const Snapshot &O);

    /// Upper-bound estimate of the \p Q quantile (0 < Q <= 1): the
    /// inclusive upper bound of the first bucket whose cumulative count
    /// reaches ceil(Q * Count), clamped to Max (which is exact). With
    /// power-of-two buckets the estimate is within 2x of the true value;
    /// the JSON export surfaces p50/p90/p99 through this.
    uint64_t quantile(double Q) const;
  };
  Snapshot snapshot() const;
  void reset();

  /// Inclusive upper bound of bucket \p I (UINT64_MAX for the last).
  static uint64_t bucketUpperBound(size_t I);

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
};

/// A point-in-time reading of the monotone instruments (counters and
/// histograms; gauges are last-write-wins and have no meaningful delta).
/// Used as a baseline for Registry::toJsonSince: the service layer
/// snapshots the registry at request entry so a daemon-routed
/// `--metrics-json` reports per-request numbers, not process-lifetime
/// totals accumulated across every request the daemon ever served.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, Histogram::Snapshot> Histograms;
};

/// Name -> instrument registry. Instruments are created on first use and
/// never destroyed (stable addresses, so hot paths may cache the
/// reference). Lookup takes a mutex; cache the reference outside loops.
class Registry {
public:
  /// The process-wide instance (what --metrics-json exports).
  static Registry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Reads every counter and histogram (relaxed; monotone lower bound).
  RegistrySnapshot snapshotAll() const;

  /// Current value of every counter and gauge, merged into one sorted
  /// name -> value map (the two namespaces never collide by convention;
  /// if they ever did, the counter wins). This is the cheap flat reading
  /// the Timeline sampler stores per tick — histograms are deliberately
  /// excluded, their snapshots are two orders of magnitude heavier.
  std::map<std::string, uint64_t> values() const;

  /// {"version":1,"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Deterministic (sorted names; see docs/metrics_schema.json).
  JsonValue toJson() const;
  std::string toJsonString() const { return toJson().dumpPretty(); }

  /// Same shape as toJson(), but counters and histogram counts/sums/
  /// buckets are reported as saturating deltas against \p Base; a
  /// histogram whose delta count is zero exports as empty, and quantiles
  /// are computed over the delta buckets. Gauges always report their
  /// current value. toJson() is exactly toJsonSince(RegistrySnapshot{}).
  JsonValue toJsonSince(const RegistrySnapshot &Base) const;

  /// Zeroes every registered instrument (registrations survive). Tests
  /// only; not safe against concurrent writers that assume monotonicity.
  void resetAll();

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace apt::metrics

#endif // APT_SUPPORT_METRICS_H
