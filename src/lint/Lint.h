//===- lint/Lint.h - Static verification of axioms and programs -*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `aptlint`: static checks that run over axiom sets, shape declarations
/// and mini-language programs *before* the prover consumes them. APT's
/// verdicts are only as trustworthy as the user's axioms (§3.1-3.2): a
/// contradictory axiom makes every No unsound, a vacuous one silently
/// weakens the test to Maybe. Checks (codes in docs/DIAGNOSTICS.md):
///
///  * contradiction  - a form-A axiom `forall p: p.RE1 <> p.RE2` whose two
///                     languages both contain the empty word asserts
///                     `p <> p` (APT-E001); overlapping non-empty
///                     languages are suspicious but satisfiable
///                     (APT-W002).
///  * vacuity        - empty-language sides (APT-W003) and axioms over
///                     fields outside the declared alphabet (APT-E004).
///  * redundancy     - an axiom implied by another via regular-language
///                     subset tests on the DFA engine, optionally
///                     cross-checked against the Brzozowski-derivative
///                     engine (APT-W005, APT-X999).
///  * consistency    - bounded model checking: exhaustively enumerate
///                     small heap graphs over the axioms' alphabet and
///                     report when none satisfies the whole set
///                     (APT-E006), citing the axiom the best candidate
///                     violates.
///  * program checks - opaque calls that clobber all handles (APT-W101),
///                     loops with no computable `p := p.w*` summary
///                     (APT-W102), shadowed or conflicting shape
///                     declarations (APT-W103 / APT-E104).
///
/// `aptc lint` exposes the passes from the shell and `aptc prove`/`deps`
/// run them warn-only up front.
///
//===----------------------------------------------------------------------===//

#ifndef APT_LINT_LINT_H
#define APT_LINT_LINT_H

#include "core/Axiom.h"
#include "ir/Ast.h"
#include "lint/Diagnostics.h"
#include "regex/LangOps.h"

#include <optional>
#include <set>
#include <string>

namespace apt {

/// Knobs for the lint passes.
struct LintOptions {
  /// Engine answering the subset/disjointness queries behind the
  /// contradiction, overlap and subsumption verdicts.
  LangEngine Engine = LangEngine::Dfa;
  /// When set, every language query is answered by both engines and a
  /// disagreement is itself reported (APT-X999). Used by the test suite.
  bool CrossCheckEngines = false;
  /// Run the bounded model check (APT-E006).
  bool CheckModels = true;
  /// Model check bound: graphs of 1..ModelMaxNodes nodes are enumerated.
  size_t ModelMaxNodes = 3;
  /// Model check budget: give up (silently, without a verdict) once this
  /// many graphs have been examined, so wide alphabets stay cheap.
  size_t ModelBudget = 50000;
};

/// One axiom set to lint, with everything needed for good locations.
struct AxiomLintInput {
  const AxiomSet *Axioms = nullptr;
  /// File name for diagnostics (axiom lines come from Axiom::Line).
  std::string File;
  /// Declared pointer-field alphabet, when one exists (the `fields:`
  /// directive of an axiom file, or the union of pointer fields declared
  /// by a program's types). nullopt disables the unknown-field check.
  std::optional<std::set<FieldId>> Alphabet;
};

/// Runs the axiom-set checks, appending findings to \p Diags.
void lintAxiomSet(const AxiomLintInput &In, const FieldTable &Fields,
                  DiagnosticEngine &Diags, const LintOptions &Opts = {});

/// Runs the whole-program checks: every type's axiom set (against the
/// union of declared pointer fields), shape-declaration shadowing and
/// conflicts, opaque calls, and unsummarizable loops. \p Fields is
/// non-const because the underlying flow analysis may intern handles.
void lintProgram(const Program &Prog, std::string_view File,
                 FieldTable &Fields, DiagnosticEngine &Diags,
                 const LintOptions &Opts = {});

} // namespace apt

#endif // APT_LINT_LINT_H
