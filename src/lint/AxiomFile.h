//===- lint/AxiomFile.h - Axiom-file loader with diagnostics ----*- C++ -*-===//
//
// Part of the APT project; see Diagnostics.h for the reporting substrate
// and core/Axiom.h for the per-axiom grammar.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loader for `.axioms` files, shared by `aptc prove` and `aptc lint`:
///
///   # comment
///   fields: L, R, N              -- optional declared alphabet
///   A1: forall p: p.L <> p.R     -- optional NAME: label
///   forall p <> q: p.N <> q.N    -- auto-named A<k> otherwise
///
/// Parse failures are reported through the DiagnosticEngine (APT-E007)
/// with file/line locations instead of aborting at the first bad line, so
/// a single run surfaces every defect. The optional `fields:` directive
/// declares the structure's pointer-field alphabet; when present, the
/// lint pass checks every axiom against it (APT-E004).
///
//===----------------------------------------------------------------------===//

#ifndef APT_LINT_AXIOMFILE_H
#define APT_LINT_AXIOMFILE_H

#include "core/Axiom.h"
#include "lint/Diagnostics.h"

#include <optional>
#include <set>
#include <string_view>

namespace apt {

/// Result of loading an axiom file.
struct AxiomFileContents {
  AxiomSet Axioms; ///< Every axiom that parsed (lines are recorded).
  /// Alphabet from `fields:` directives, or nullopt when absent.
  std::optional<std::set<FieldId>> DeclaredFields;
  bool Ok = true; ///< False if any line failed to parse (APT-E007).
};

/// Parses \p Text (the contents of \p FileName, used only for locations),
/// interning field names into \p Fields and reporting problems to
/// \p Diags.
AxiomFileContents parseAxiomFile(std::string_view Text,
                                 std::string_view FileName,
                                 FieldTable &Fields,
                                 DiagnosticEngine &Diags);

} // namespace apt

#endif // APT_LINT_AXIOMFILE_H
