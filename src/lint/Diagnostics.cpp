//===- lint/Diagnostics.cpp -----------------------------------------------===//
//
// Part of the APT project; see Diagnostics.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "lint/Diagnostics.h"

using namespace apt;

const char *apt::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string SourceLoc::toString() const {
  if (File.empty())
    return Line > 0 ? "<input>:" + std::to_string(Line) : "<input>";
  std::string Out = File;
  if (Line > 0) {
    Out += ":" + std::to_string(Line);
    if (Col > 0)
      Out += ":" + std::to_string(Col);
  }
  return Out;
}

std::string Diagnostic::toString() const {
  std::string Out = Loc.toString() + ": " + severityName(Severity) + ": " +
                    Message + " [" + Code + "]";
  for (const std::string &N : Notes)
    Out += "\n  note: " + N;
  if (Fix)
    Out += "\n  fix-it: " + Fix->Note + " -> `" + Fix->Replacement + "`";
  return Out;
}

Diagnostic &DiagnosticEngine::report(std::string Code, DiagSeverity Severity,
                                     SourceLoc Loc, std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back(Diagnostic{std::move(Code), Severity, std::move(Loc),
                             std::move(Message), {}, std::nullopt});
  return Diags.back();
}

bool DiagnosticEngine::has(std::string_view Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

size_t DiagnosticEngine::count(std::string_view Code) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Code == Code;
  return N;
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += '\n';
  }
  return Out;
}

std::string DiagnosticEngine::summary() const {
  return std::to_string(NumErrors) + " error(s), " +
         std::to_string(NumWarnings) + " warning(s)";
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}
