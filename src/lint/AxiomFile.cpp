//===- lint/AxiomFile.cpp -------------------------------------------------===//
//
// Part of the APT project; see AxiomFile.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "lint/AxiomFile.h"

#include "support/Strings.h"

#include <cctype>
#include <map>
#include <sstream>

using namespace apt;

static bool isIdent(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      return false;
  return true;
}

AxiomFileContents apt::parseAxiomFile(std::string_view Text,
                                      std::string_view FileName,
                                      FieldTable &Fields,
                                      DiagnosticEngine &Diags) {
  AxiomFileContents Out;
  std::map<std::string, int> NameLines; // first definition of each name
  int LineNo = 0, AutoName = 0;
  std::stringstream Lines{std::string(Text)};
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    SourceLoc Loc(std::string(FileName), LineNo);
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty() || Trimmed.front() == '#')
      continue;

    // `fields: L, R, N` declares the structure's pointer-field alphabet.
    if (Trimmed.substr(0, 7) == "fields:") {
      std::string Args(Trimmed.substr(7));
      for (char &C : Args)
        if (C == ',' || C == '\t')
          C = ' ';
      if (!Out.DeclaredFields)
        Out.DeclaredFields.emplace();
      for (const std::string &Name : splitNonEmpty(Args, ' ')) {
        if (!isIdent(Name)) {
          Diags.error("APT-E007", Loc,
                      "bad field name '" + Name + "' in fields directive");
          Out.Ok = false;
          continue;
        }
        Out.DeclaredFields->insert(Fields.intern(Name));
      }
      continue;
    }

    // Optional "NAME:" label (NAME a plain identifier other than forall).
    std::string Name = "A" + std::to_string(++AutoName);
    size_t Colon = Trimmed.find(':');
    if (Colon != std::string::npos) {
      std::string_view Head = trim(Trimmed.substr(0, Colon));
      if (Head != "forall" && isIdent(Head)) {
        Name = std::string(Head);
        Trimmed = trim(Trimmed.substr(Colon + 1));
      }
    }

    AxiomParseResult A = parseAxiom(Trimmed, Fields, Name);
    if (!A) {
      Diags.error("APT-E007", Loc, A.Error).note("while parsing axiom '" +
                                                 Name + "'");
      Out.Ok = false;
      continue;
    }
    auto [It, Fresh] = NameLines.emplace(Name, LineNo);
    if (!Fresh)
      Diags.warning("APT-W008", Loc,
                    "axiom name '" + Name + "' is already in use")
          .note("first defined at line " + std::to_string(It->second) +
                "; duplicate names make proof references ambiguous");
    A.Value.Line = LineNo;
    Out.Axioms.add(std::move(A.Value));
  }
  return Out;
}
