//===- lint/Lint.cpp ------------------------------------------------------===//
//
// Part of the APT project; see Lint.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "analysis/Collector.h"
#include "graph/AxiomChecker.h"
#include "graph/GraphBuilders.h"
#include "support/Strings.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace apt;

namespace {

/// Language-query facade for the lint passes: answers through the
/// configured primary engine and, when cross-checking is on, re-answers
/// through the other engine and reports any disagreement (which would be
/// an engine bug, not a user error).
class LangOracle {
public:
  LangOracle(const LintOptions &Opts, const FieldTable &Fields,
             DiagnosticEngine &Diags, std::string File)
      : Primary(Opts.Engine), Fields(Fields), Diags(Diags),
        File(std::move(File)) {
    if (Opts.CrossCheckEngines)
      Secondary.emplace(Opts.Engine == LangEngine::Dfa
                            ? LangEngine::Derivative
                            : LangEngine::Dfa);
  }

  bool subsetOf(const RegexRef &A, const RegexRef &B) {
    bool Got = Primary.subsetOf(A, B);
    if (Secondary)
      crossCheck(Got, Secondary->subsetOf(A, B), "subset", A, B);
    return Got;
  }

  bool disjoint(const RegexRef &A, const RegexRef &B) {
    bool Got = Primary.disjoint(A, B);
    if (Secondary)
      crossCheck(Got, Secondary->disjoint(A, B), "disjointness", A, B);
    return Got;
  }

  bool equivalent(const RegexRef &A, const RegexRef &B) {
    return subsetOf(A, B) && subsetOf(B, A);
  }

  bool containsEpsilon(const RegexRef &R) {
    return subsetOf(Regex::epsilon(), R);
  }

private:
  void crossCheck(bool Got, bool Other, const char *What, const RegexRef &A,
                  const RegexRef &B) {
    if (Got == Other)
      return;
    Diags.error("APT-X999", SourceLoc(File),
                std::string("internal: DFA and derivative engines disagree "
                            "on the ") +
                    What + " query for '" + A->toString(Fields) + "' vs '" +
                    B->toString(Fields) + "'");
  }

  LangQuery Primary;
  std::optional<LangQuery> Secondary;
  const FieldTable &Fields;
  DiagnosticEngine &Diags;
  std::string File;
};

/// A copy of \p R with the empty word removed, when that is expressible
/// by a small syntactic edit (X* -> X+, dropping an eps alternative);
/// nullptr when there is no such edit.
RegexRef withoutEpsilon(const RegexRef &R) {
  if (R->kind() == RegexKind::Star && !R->child()->nullable())
    return Regex::plus(R->child());
  if (R->kind() == RegexKind::Alt) {
    std::vector<RegexRef> Keep;
    for (const RegexRef &C : R->children())
      if (!C->isEpsilon())
        Keep.push_back(C);
    if (Keep.size() < R->children().size()) {
      RegexRef Fixed = Regex::alt(std::move(Keep));
      if (!Fixed->nullable())
        return Fixed;
    }
  }
  return nullptr;
}

/// Display name of an axiom for messages: its label, or its full text.
std::string axiomName(const Axiom &A, const FieldTable &Fields) {
  return A.Name.empty() ? "'" + A.toString(Fields) + "'"
                        : "'" + A.Name + "'";
}

/// True if disjointness axiom \p I follows from same-form axiom \p J:
/// shrinking either language of a disjointness fact preserves it, and
/// both axiom forms are symmetric in their two sides.
bool disjointnessImplied(const Axiom &I, const Axiom &J, LangOracle &L) {
  return (L.subsetOf(I.Lhs, J.Lhs) && L.subsetOf(I.Rhs, J.Rhs)) ||
         (L.subsetOf(I.Lhs, J.Rhs) && L.subsetOf(I.Rhs, J.Lhs));
}

/// True if equality axiom \p I is a restatement of \p J (same language
/// pair, possibly swapped).
bool equalityImplied(const Axiom &I, const Axiom &J, LangOracle &L) {
  return (L.equivalent(I.Lhs, J.Lhs) && L.equivalent(I.Rhs, J.Rhs)) ||
         (L.equivalent(I.Lhs, J.Rhs) && L.equivalent(I.Rhs, J.Lhs));
}

/// Walks every statement of \p Body, recursing into loop and branch
/// bodies.
void walkStmts(const std::vector<StmtPtr> &Body,
               const std::function<void(const Stmt &)> &Visit) {
  for (const StmtPtr &S : Body) {
    Visit(*S);
    walkStmts(S->Body, Visit);
    walkStmts(S->Else, Visit);
  }
}

//===----------------------------------------------------------------------===//
// Bounded model check (APT-E006)
//===----------------------------------------------------------------------===//

void checkSmallModels(const AxiomLintInput &In, const FieldTable &Fields,
                      DiagnosticEngine &Diags, const LintOptions &Opts) {
  const AxiomSet &AS = *In.Axioms;
  std::set<FieldId> FieldSet;
  for (const Axiom &A : AS.axioms()) {
    A.Lhs->collectSymbols(FieldSet);
    A.Rhs->collectSymbols(FieldSet);
  }
  std::vector<FieldId> Alphabet(FieldSet.begin(), FieldSet.end());

  size_t Budget = Opts.ModelBudget;
  bool Found = false, Complete = true, HaveBest = false;
  size_t BestSatisfied = 0, BestNodes = 0;
  std::string BestViolation;

  for (size_t N = 1; N <= Opts.ModelMaxNodes && !Found && Complete; ++N) {
    enumerateHeapGraphs(Alphabet, N, [&](const HeapGraph &G) {
      if (Budget == 0) {
        Complete = false;
        return false;
      }
      --Budget;
      size_t Satisfied = 0;
      for (const Axiom &A : AS.axioms()) {
        if (std::optional<AxiomViolation> V = checkAxiom(G, A, Fields)) {
          if (!HaveBest || Satisfied > BestSatisfied) {
            HaveBest = true;
            BestSatisfied = Satisfied;
            BestNodes = N;
            BestViolation = "a best-scoring candidate graph (" +
                            std::to_string(N) + " node(s)) violates axiom " +
                            axiomName(A, Fields) + ": " + V->Message;
          }
          return true; // Violated: keep searching.
        }
        ++Satisfied;
      }
      Found = true;
      return false;
    });
  }

  if (Found || !Complete)
    return; // Satisfiable, or bound too small to conclude anything.

  std::vector<std::string> Names;
  for (FieldId F : Alphabet)
    Names.push_back(Fields.name(F));
  Diagnostic &D = Diags.error(
      "APT-E006", SourceLoc(In.File),
      "axiom set is unsatisfiable on every heap graph with at most " +
          std::to_string(Opts.ModelMaxNodes) + " node(s) over {" +
          join(Names, ", ") + "}");
  D.note("the axioms admit no small model: the set is contradictory, or "
         "holds only of structures larger than the search bound");
  if (HaveBest)
    D.note(BestViolation + " (" + std::to_string(BestSatisfied) + "/" +
           std::to_string(AS.size()) + " axioms hold there)");
}

} // namespace

//===----------------------------------------------------------------------===//
// Axiom-set lint
//===----------------------------------------------------------------------===//

void apt::lintAxiomSet(const AxiomLintInput &In, const FieldTable &Fields,
                       DiagnosticEngine &Diags, const LintOptions &Opts) {
  const AxiomSet &AS = *In.Axioms;
  LangOracle Lang(Opts, Fields, Diags, In.File);
  auto LocOf = [&](const Axiom &A) { return SourceLoc(In.File, A.Line); };

  const size_t N = AS.size();
  std::vector<bool> Degenerate(N, false); // empty side or contradictory
  bool AnyContradiction = false;

  for (size_t I = 0; I < N; ++I) {
    const Axiom &A = AS.axioms()[I];

    // Vacuity: a side denoting the empty language makes the axiom
    // trivially true and therefore useless (APT-W003).
    bool LhsEmpty = A.Lhs->isEmpty(), RhsEmpty = A.Rhs->isEmpty();
    if (LhsEmpty || RhsEmpty) {
      Degenerate[I] = true;
      Diags.warning("APT-W003", LocOf(A),
                    "axiom " + axiomName(A, Fields) +
                        " is vacuously true: its " +
                        (LhsEmpty ? "left" : "right") +
                        " side denotes the empty language")
          .fixit("", "delete the axiom; it constrains nothing");
    }

    // Unknown fields: with a declared alphabet, a field no axiom target
    // can ever traverse is almost certainly a typo (APT-E004).
    if (In.Alphabet) {
      std::set<FieldId> Used;
      A.Lhs->collectSymbols(Used);
      A.Rhs->collectSymbols(Used);
      for (FieldId F : Used) {
        if (In.Alphabet->count(F))
          continue;
        const std::string &Bad = Fields.name(F);
        Diagnostic &D = Diags.error(
            "APT-E004", LocOf(A),
            "axiom " + axiomName(A, Fields) + " mentions '" + Bad +
                "', which is not a declared pointer field");
        std::string Best;
        size_t BestDist = 3; // Suggest only close names (distance <= 2).
        for (FieldId Candidate : *In.Alphabet) {
          size_t Dist = editDistance(Bad, Fields.name(Candidate));
          if (Dist < BestDist) {
            BestDist = Dist;
            Best = Fields.name(Candidate);
          }
        }
        if (!Best.empty())
          D.fixit(Best, "did you mean '" + Best + "'?");
      }
    }

    // Contradiction and overlap apply to same-origin disjointness only:
    // for form B the origins differ, so shared words are harmless.
    if (A.Form != AxiomForm::SameOriginDisjoint || LhsEmpty || RhsEmpty)
      continue;
    if (Lang.containsEpsilon(A.Lhs) && Lang.containsEpsilon(A.Rhs)) {
      // p belongs to both p.RE1 and p.RE2, so the axiom asserts p <> p.
      Degenerate[I] = true;
      AnyContradiction = true;
      Diagnostic &D = Diags.error(
          "APT-E001", LocOf(A),
          "axiom " + axiomName(A, Fields) +
              " is contradictory: both sides accept the empty word, so "
              "it asserts p <> p for every p");
      RegexRef FixL = withoutEpsilon(A.Lhs);
      RegexRef FixR = FixL ? nullptr : withoutEpsilon(A.Rhs);
      if (FixL || FixR) {
        Axiom Fixed(A.Form, FixL ? FixL : A.Lhs, FixR ? FixR : A.Rhs,
                    A.Name);
        D.fixit(Fixed.toString(Fields),
                "remove the empty word from one side");
      }
    } else if (!Lang.disjoint(A.Lhs, A.Rhs)) {
      Diags.warning("APT-W002", LocOf(A),
                    "axiom " + axiomName(A, Fields) +
                        " has overlapping sides: they share a non-empty "
                        "word w, so the axiom outlaws every w path")
          .note("satisfiable, but only by structures in which no such "
                "path exists; this is usually an over-strong axiom");
    }
  }

  // Redundancy: axiom I is flagged when some other axiom J of the same
  // form implies it -- strictly stronger J always wins; among equivalent
  // axioms every one after the first is flagged (APT-W005).
  for (size_t I = 0; I < N; ++I) {
    if (Degenerate[I])
      continue;
    const Axiom &A = AS.axioms()[I];
    for (size_t J = 0; J < N; ++J) {
      if (J == I || Degenerate[J])
        continue;
      const Axiom &B = AS.axioms()[J];
      if (B.Form != A.Form)
        continue;
      bool Implied = A.Form == AxiomForm::Equal
                         ? equalityImplied(A, B, Lang)
                         : disjointnessImplied(A, B, Lang);
      if (!Implied)
        continue;
      bool Mutual = A.Form == AxiomForm::Equal
                        ? true // Equality subsumption is already mutual.
                        : disjointnessImplied(B, A, Lang);
      if (Mutual && J > I)
        continue; // The earlier of two equivalent axioms survives.
      Diags.warning("APT-W005", LocOf(A),
                    "axiom " + axiomName(A, Fields) + " is implied by " +
                        axiomName(B, Fields) +
                        (Mutual ? " (they are equivalent)"
                                : " (its languages are contained in the "
                                  "stronger axiom's)"))
          .note(axiomName(B, Fields) + " is " + B.toString(Fields) +
                (B.Line > 0 ? " (line " + std::to_string(B.Line) + ")"
                            : std::string()))
          .fixit("", "delete the redundant axiom");
      break; // One witness per redundant axiom is enough.
    }
  }

  // Bounded model check. Skipped when a contradiction was already
  // reported: an E001 set has no models at any size, so E006 would only
  // repeat the finding.
  if (Opts.CheckModels && !AS.empty() && !AnyContradiction)
    checkSmallModels(In, Fields, Diags, Opts);
}

//===----------------------------------------------------------------------===//
// Program lint
//===----------------------------------------------------------------------===//

void apt::lintProgram(const Program &Prog, std::string_view File,
                      FieldTable &Fields, DiagnosticEngine &Diags,
                      const LintOptions &Opts) {
  // The declared alphabet is the union across types: Figure-3-style
  // axioms attached to one type legitimately mention fields of the other
  // types making up the same structure.
  std::set<FieldId> PointerFields;
  for (const TypeDecl &T : Prog.Types)
    for (const FieldDecl &F : T.Fields)
      if (F.isPointer())
        PointerFields.insert(F.Id);

  for (const TypeDecl &T : Prog.Types) {
    AxiomLintInput In;
    In.Axioms = &T.Axioms;
    In.File = std::string(File);
    In.Alphabet = PointerFields;
    lintAxiomSet(In, Fields, Diags, Opts);

    // Shape declarations: an identical redeclaration is shadowing
    // (APT-W103); `list` and `ring` over the same chain field assert
    // contradictory cyclicity (APT-E104).
    std::map<std::string, int> Seen;            // canonical key -> line
    std::map<std::string, std::pair<std::string, int>> ChainKind;
    for (const ShapeDecl &S : T.Shapes) {
      std::vector<std::string> Sorted = S.FieldNames;
      std::sort(Sorted.begin(), Sorted.end());
      std::string Key = S.Kind + "(" + join(Sorted, ",") + ")";
      auto [It, Fresh] = Seen.emplace(Key, S.Line);
      if (!Fresh)
        Diags.warning("APT-W103", SourceLoc(In.File, S.Line),
                      "shape '" + S.Text + "' of type '" + T.Name +
                          "' shadows an identical declaration")
            .note("first declared at line " + std::to_string(It->second))
            .fixit("", "delete the duplicate declaration");
      if ((S.Kind == "list" || S.Kind == "ring") && !S.FieldNames.empty()) {
        const std::string &Chain = S.FieldNames.front();
        auto [CK, FreshChain] =
            ChainKind.emplace(Chain, std::make_pair(S.Kind, S.Line));
        if (!FreshChain && CK->second.first != S.Kind)
          Diags.error("APT-E104", SourceLoc(In.File, S.Line),
                      "shape '" + S.Text + "' conflicts with '" +
                          CK->second.first + "(" + Chain + ")' at line " +
                          std::to_string(CK->second.second) +
                          ": a field cannot chain both an acyclic list "
                          "and a ring");
      }
    }
  }

  for (const Function &F : Prog.Functions) {
    // Opaque calls throw away every collected access path (the language
    // has no interprocedural analysis), so queries spanning one always
    // degrade to Maybe (APT-W101).
    walkStmts(F.Body, [&](const Stmt &S) {
      if (S.Kind == StmtKind::Call)
        Diags.warning("APT-W101", SourceLoc(std::string(File), S.Line),
                      "opaque call to '" + S.Callee + "' in fn '" + F.Name +
                          "' clobbers every collected access path")
            .note("dependence queries that span this call answer Maybe; "
                  "inline the callee or move it out of the queried "
                  "region");
    });

    // Loops whose body modifies pointers without any `p := p.w` net
    // effect have no induction summary: no loop-carried query about them
    // can ever be refuted (APT-W102).
    AnalysisResult R = analyzeFunction(Prog, F, Fields);
    std::map<int, const Stmt *> LoopStmts;
    walkStmts(F.Body, [&](const Stmt &S) {
      if (S.Kind == StmtKind::While)
        LoopStmts[S.Id] = &S;
    });
    for (const auto &[LoopId, Sum] : R.Loops) {
      if (!Sum.Induction.empty() || Sum.Clobbered.empty())
        continue;
      const Stmt *Loop = LoopStmts.count(LoopId) ? LoopStmts[LoopId]
                                                 : nullptr;
      std::vector<std::string> Vars(Sum.Clobbered.begin(),
                                    Sum.Clobbered.end());
      Diags.warning("APT-W102",
                    SourceLoc(std::string(File),
                              Loop ? Loop->Line : 0),
                    "loop" +
                        (Loop ? " over '" + Loop->CondVar + "'"
                              : std::string()) +
                        " in fn '" + F.Name +
                        "' has no computable `p := p.w*` summary: " +
                        join(Vars, ", ") +
                        (Vars.size() == 1 ? " changes" : " change") +
                        " unpredictably between iterations")
          .note("loop-carried dependence queries in this loop answer "
                "Maybe; rewrite the update as a chain of field walks "
                "from the loop variable");
    }
  }
}
