//===- lint/Diagnostics.h - Structured front-end diagnostics ----*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostics substrate shared by every front-end pass:
/// each finding carries a stable code (see docs/DIAGNOSTICS.md), a
/// severity, a source location, free-form notes, and an optional fix-it.
/// The lint passes (Lint.h), the axiom-file loader (AxiomFile.h) and the
/// `aptc` driver all report through a DiagnosticEngine; severities decide
/// the process exit code, codes let tests and tooling match findings
/// without parsing prose.
///
//===----------------------------------------------------------------------===//

#ifndef APT_LINT_DIAGNOSTICS_H
#define APT_LINT_DIAGNOSTICS_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apt {

/// Severity of a diagnostic. Errors make `aptc lint` exit non-zero;
/// warnings and notes never do.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// "note" / "warning" / "error".
const char *severityName(DiagSeverity S);

/// A source position. Line 0 means "whole file" (or unknown); column 0
/// means "whole line".
struct SourceLoc {
  std::string File;
  int Line = 0; ///< 1-based.
  int Col = 0;  ///< 1-based.

  SourceLoc() = default;
  explicit SourceLoc(std::string File, int Line = 0, int Col = 0)
      : File(std::move(File)), Line(Line), Col(Col) {}

  /// "file:line:col", degrading to "file:line", "file", or "<input>".
  std::string toString() const;
};

/// A suggested textual repair attached to a diagnostic.
struct FixIt {
  std::string Replacement; ///< Proposed new text for the flagged entity.
  std::string Note;        ///< Human explanation ("did you mean 'N'?").
};

/// One finding.
struct Diagnostic {
  std::string Code; ///< Stable identifier, e.g. "APT-E001".
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
  std::vector<std::string> Notes; ///< Secondary explanatory lines.
  std::optional<FixIt> Fix;

  /// Fluent helpers so report sites read as one expression.
  Diagnostic &note(std::string Text) {
    Notes.push_back(std::move(Text));
    return *this;
  }
  Diagnostic &fixit(std::string Replacement, std::string Note) {
    Fix = FixIt{std::move(Replacement), std::move(Note)};
    return *this;
  }

  /// Renders "loc: severity: message [code]" plus indented notes and the
  /// fix-it, one finding per block.
  std::string toString() const;
};

/// Collects diagnostics from one front-end run.
class DiagnosticEngine {
public:
  /// Reports a finding; returns a reference valid until the next report,
  /// for attaching notes and fix-its.
  Diagnostic &report(std::string Code, DiagSeverity Severity, SourceLoc Loc,
                     std::string Message);

  Diagnostic &error(std::string Code, SourceLoc Loc, std::string Message) {
    return report(std::move(Code), DiagSeverity::Error, std::move(Loc),
                  std::move(Message));
  }
  Diagnostic &warning(std::string Code, SourceLoc Loc, std::string Message) {
    return report(std::move(Code), DiagSeverity::Warning, std::move(Loc),
                  std::move(Message));
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  size_t errorCount() const { return NumErrors; }
  size_t warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors > 0; }
  bool empty() const { return Diags.empty(); }

  /// True if some finding carries \p Code.
  bool has(std::string_view Code) const;

  /// Number of findings carrying \p Code.
  size_t count(std::string_view Code) const;

  /// All findings rendered in report order, one block per finding.
  std::string render() const;

  /// "N error(s), M warning(s)".
  std::string summary() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
  size_t NumWarnings = 0;
};

} // namespace apt

#endif // APT_LINT_DIAGNOSTICS_H
