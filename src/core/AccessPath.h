//===- core/AccessPath.h - Handle-anchored access paths ---------*- C++ -*-===//
//
// Part of the APT project; see Axiom.h for the axiom half of the prover's
// inputs.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access paths (paper §3.1/§3.3): a *handle* naming a fixed vertex of the
/// data structure plus a regular expression describing the set of paths the
/// program may have traversed from that vertex. The dependence test receives
/// two access paths anchored at a common handle.
///
/// For the prover, a path is decomposed into *components*: the elements of
/// its top-level concatenation (paper §4.1, "a regular expression consists
/// of zero or more components"). Kleene-plus components are expanded to
/// `x.x*` so that the induction machinery only ever deals with stars; the
/// paper's `a+` cases are recovered exactly (it presents them with '+' "to
/// simplify the presentation").
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_ACCESSPATH_H
#define APT_CORE_ACCESSPATH_H

#include "regex/Regex.h"

#include <string>
#include <vector>

namespace apt {

/// Splits \p R into its top-level concatenation components, expanding
/// Plus(x) into {x, Star(x)}. Epsilon yields no components; a non-concat
/// node is a single component.
std::vector<RegexRef> pathComponents(const RegexRef &R);

/// Reassembles components into a single regex (inverse of pathComponents
/// up to Plus-normalization).
RegexRef componentsToRegex(const std::vector<RegexRef> &Components);

/// A handle-anchored access path, e.g. `_hroot.L.L.N`.
struct AccessPath {
  std::string Handle; ///< Name of the anchoring vertex, e.g. "_hroot".
  RegexRef Path;      ///< Paths traversed from the handle; never null.

  AccessPath() : Path(Regex::epsilon()) {}
  AccessPath(std::string Handle, RegexRef Path)
      : Handle(std::move(Handle)), Path(std::move(Path)) {}

  /// The path's top-level components (Plus expanded; see pathComponents).
  std::vector<RegexRef> components() const { return pathComponents(Path); }

  /// Renders as "handle.regex" ("handle" alone for the epsilon path).
  std::string toString(const FieldTable &Fields) const;

  /// This path extended by one more traversal.
  AccessPath extended(const RegexRef &Suffix) const {
    return AccessPath(Handle, Regex::concat(Path, Suffix));
  }
};

} // namespace apt

#endif // APT_CORE_ACCESSPATH_H
