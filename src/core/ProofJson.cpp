//===- core/ProofJson.cpp -------------------------------------------------===//
//
// Part of the APT project; see ProofJson.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/ProofJson.h"

#include "regex/RegexParser.h"

using namespace apt;

const char *apt::proofRuleName(ProofJustification::Rule R) {
  switch (R) {
  case ProofJustification::Rule::None:
    return "none";
  case ProofJustification::Rule::Vacuous:
    return "vacuous";
  case ProofJustification::Rule::Hypothesis:
    return "hypothesis";
  case ProofJustification::Rule::DirectT1T2:
    return "direct_t1_t2";
  case ProofJustification::Rule::T1PrefixEqual:
    return "t1_prefix_equal";
  case ProofJustification::Rule::T2PrefixDisjoint:
    return "t2_prefix_disjoint";
  case ProofJustification::Rule::AltSplit:
    return "alt_split";
  case ProofJustification::Rule::Induction:
    return "induction";
  case ProofJustification::Rule::SevenCase:
    return "seven_case";
  case ProofJustification::Rule::Cached:
    return "cached";
  }
  return "none";
}

const char *apt::axiomFormName(AxiomForm F) {
  switch (F) {
  case AxiomForm::SameOriginDisjoint:
    return "same_origin";
  case AxiomForm::DiffOriginDisjoint:
    return "diff_origin";
  case AxiomForm::Equal:
    return "equal";
  }
  return "same_origin";
}

static bool ruleFromName(const std::string &Name,
                         ProofJustification::Rule &Out) {
  using Rule = ProofJustification::Rule;
  static const std::pair<const char *, Rule> Table[] = {
      {"none", Rule::None},
      {"vacuous", Rule::Vacuous},
      {"hypothesis", Rule::Hypothesis},
      {"direct_t1_t2", Rule::DirectT1T2},
      {"t1_prefix_equal", Rule::T1PrefixEqual},
      {"t2_prefix_disjoint", Rule::T2PrefixDisjoint},
      {"alt_split", Rule::AltSplit},
      {"induction", Rule::Induction},
      {"seven_case", Rule::SevenCase},
      {"cached", Rule::Cached},
  };
  for (const auto &[N, R] : Table)
    if (Name == N) {
      Out = R;
      return true;
    }
  return false;
}

static bool formFromName(const std::string &Name, AxiomForm &Out) {
  if (Name == "same_origin")
    Out = AxiomForm::SameOriginDisjoint;
  else if (Name == "diff_origin")
    Out = AxiomForm::DiffOriginDisjoint;
  else if (Name == "equal")
    Out = AxiomForm::Equal;
  else
    return false;
  return true;
}

JsonValue apt::axiomToJson(const Axiom &A, const FieldTable &Fields) {
  JsonValue::Object O;
  O.emplace("form", axiomFormName(A.Form));
  O.emplace("lhs", A.Lhs ? A.Lhs->toString(Fields) : "never");
  O.emplace("rhs", A.Rhs ? A.Rhs->toString(Fields) : "never");
  if (!A.Name.empty())
    O.emplace("name", A.Name);
  return JsonValue(std::move(O));
}

JsonValue apt::axiomSetToJson(const AxiomSet &Axioms,
                              const FieldTable &Fields) {
  JsonValue::Array Arr;
  for (const Axiom &A : Axioms.axioms())
    Arr.push_back(axiomToJson(A, Fields));
  return JsonValue(std::move(Arr));
}

/// Emits \p R under \p Key unless it is null.
static void putRegex(JsonValue::Object &O, const char *Key,
                     const RegexRef &R, const FieldTable &Fields) {
  if (R)
    O.emplace(Key, R->toString(Fields));
}

JsonValue apt::proofToJson(const ProofNode &N, const FieldTable &Fields) {
  JsonValue::Object O;
  O.emplace("statement", N.Statement);
  if (!N.Rule.empty())
    O.emplace("rule_text", N.Rule);
  O.emplace("rule", proofRuleName(N.J.Kind));
  putRegex(O, "goal_p", N.J.GoalP, Fields);
  putRegex(O, "goal_q", N.J.GoalQ, Fields);
  putRegex(O, "suf_p", N.J.SufP, Fields);
  putRegex(O, "suf_q", N.J.SufQ, Fields);
  putRegex(O, "pre_p", N.J.PreP, Fields);
  putRegex(O, "pre_q", N.J.PreQ, Fields);
  if (N.J.HasT1)
    O.emplace("t1", axiomToJson(N.J.T1, Fields));
  if (N.J.HasT2)
    O.emplace("t2", axiomToJson(N.J.T2, Fields));
  putRegex(O, "hyp_p", N.J.HypP, Fields);
  putRegex(O, "hyp_q", N.J.HypQ, Fields);
  if (N.J.Kind == ProofJustification::Rule::AltSplit)
    O.emplace("split_on_p", N.J.SplitOnP);
  if (!N.Children.empty()) {
    JsonValue::Array Kids;
    for (const std::unique_ptr<ProofNode> &C : N.Children)
      Kids.push_back(proofToJson(*C, Fields));
    O.emplace("children", JsonValue(std::move(Kids)));
  }
  return JsonValue(std::move(O));
}

/// Parses the regex at \p V[Key] into \p Out. Absent keys leave \p Out
/// null (fine: absence encodes a null RegexRef). Returns false only on a
/// present-but-invalid value.
static bool getRegex(const JsonValue &V, const char *Key, FieldTable &Fields,
                     RegexRef &Out, std::string &Error) {
  if (!V.has(Key))
    return true;
  const JsonValue &S = V[Key];
  if (!S.isString()) {
    Error = std::string(Key) + ": expected a string";
    return false;
  }
  RegexParseResult R = parseRegex(S.asString(), Fields);
  if (!R) {
    Error = std::string(Key) + ": " + R.Error;
    return false;
  }
  Out = R.Value;
  return true;
}

AxiomFromJsonResult apt::axiomFromJson(const JsonValue &V,
                                       FieldTable &Fields) {
  AxiomFromJsonResult Out;
  if (!V.isObject()) {
    Out.Error = "axiom: expected an object";
    return Out;
  }
  if (!V["form"].isString() ||
      !formFromName(V["form"].asString(), Out.Value.Form)) {
    Out.Error = "axiom: bad or missing 'form'";
    return Out;
  }
  if (!getRegex(V, "lhs", Fields, Out.Value.Lhs, Out.Error) ||
      !getRegex(V, "rhs", Fields, Out.Value.Rhs, Out.Error))
    return Out;
  if (!Out.Value.Lhs || !Out.Value.Rhs) {
    Out.Error = "axiom: missing 'lhs' or 'rhs'";
    return Out;
  }
  if (V.has("name")) {
    if (!V["name"].isString()) {
      Out.Error = "axiom: 'name' must be a string";
      return Out;
    }
    Out.Value.Name = V["name"].asString();
  }
  Out.Ok = true;
  return Out;
}

bool apt::axiomSetFromJson(const JsonValue &V, FieldTable &Fields,
                           AxiomSet &Out, std::string &Error) {
  if (!V.isArray()) {
    Error = "axioms: expected an array";
    return false;
  }
  for (const JsonValue &E : V.asArray()) {
    AxiomFromJsonResult A = axiomFromJson(E, Fields);
    if (!A) {
      Error = A.Error;
      return false;
    }
    Out.add(std::move(A.Value));
  }
  return true;
}

static bool proofNodeFromJson(const JsonValue &V, FieldTable &Fields,
                              ProofNode &Out, std::string &Error) {
  if (!V.isObject()) {
    Error = "proof node: expected an object";
    return false;
  }
  if (V["statement"].isString())
    Out.Statement = V["statement"].asString();
  if (V["rule_text"].isString())
    Out.Rule = V["rule_text"].asString();
  if (!V["rule"].isString() ||
      !ruleFromName(V["rule"].asString(), Out.J.Kind)) {
    Error = "proof node: bad or missing 'rule'";
    return false;
  }
  if (!getRegex(V, "goal_p", Fields, Out.J.GoalP, Error) ||
      !getRegex(V, "goal_q", Fields, Out.J.GoalQ, Error) ||
      !getRegex(V, "suf_p", Fields, Out.J.SufP, Error) ||
      !getRegex(V, "suf_q", Fields, Out.J.SufQ, Error) ||
      !getRegex(V, "pre_p", Fields, Out.J.PreP, Error) ||
      !getRegex(V, "pre_q", Fields, Out.J.PreQ, Error) ||
      !getRegex(V, "hyp_p", Fields, Out.J.HypP, Error) ||
      !getRegex(V, "hyp_q", Fields, Out.J.HypQ, Error))
    return false;
  if (V.has("t1")) {
    AxiomFromJsonResult A = axiomFromJson(V["t1"], Fields);
    if (!A) {
      Error = "t1: " + A.Error;
      return false;
    }
    Out.J.T1 = std::move(A.Value);
    Out.J.HasT1 = true;
  }
  if (V.has("t2")) {
    AxiomFromJsonResult A = axiomFromJson(V["t2"], Fields);
    if (!A) {
      Error = "t2: " + A.Error;
      return false;
    }
    Out.J.T2 = std::move(A.Value);
    Out.J.HasT2 = true;
  }
  if (V["split_on_p"].isBool())
    Out.J.SplitOnP = V["split_on_p"].asBool();
  if (V.has("children")) {
    if (!V["children"].isArray()) {
      Error = "proof node: 'children' must be an array";
      return false;
    }
    for (const JsonValue &C : V["children"].asArray()) {
      auto Child = std::make_unique<ProofNode>();
      if (!proofNodeFromJson(C, Fields, *Child, Error))
        return false;
      Out.Children.push_back(std::move(Child));
    }
  }
  return true;
}

ProofFromJsonResult apt::proofFromJson(const JsonValue &V,
                                       FieldTable &Fields) {
  ProofFromJsonResult Out;
  auto Root = std::make_unique<ProofNode>();
  if (!proofNodeFromJson(V, Fields, *Root, Out.Error))
    return Out;
  Out.Value = std::move(Root);
  return Out;
}
