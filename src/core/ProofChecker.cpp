//===- core/ProofChecker.cpp ----------------------------------------------===//
//
// Part of the APT project; see ProofChecker.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/ProofChecker.h"

#include <algorithm>
#include <deque>
#include <set>
#include <vector>

using namespace apt;

namespace {

/// Walk context: active induction hypotheses and goals already verified
/// (for cache references).
struct CheckContext {
  const AxiomSet &Axioms;
  LangQuery &Lang;
  std::vector<std::pair<RegexRef, RegexRef>> Hypotheses;
  std::vector<std::pair<RegexRef, RegexRef>> Proven;
  std::string Error;

  bool fail(const ProofNode &Node, const std::string &Why) {
    if (Error.empty())
      Error = Node.Statement + ": " + Why;
    return false;
  }

  bool sameGoal(const RegexRef &AP, const RegexRef &AQ, const RegexRef &BP,
                const RegexRef &BQ) {
    return (Lang.equivalent(AP, BP) && Lang.equivalent(AQ, BQ)) ||
           (Lang.equivalent(AP, BQ) && Lang.equivalent(AQ, BP));
  }
};

/// True if \p A occurs (structurally, up to side symmetry) in the axiom
/// set -- the checker refuses axioms the prover invented.
bool axiomInSet(const Axiom &A, const AxiomSet &Axioms) {
  for (const Axiom &B : Axioms.axioms()) {
    if (A.Form != B.Form)
      continue;
    if ((structurallyEqual(A.Lhs, B.Lhs) &&
         structurallyEqual(A.Rhs, B.Rhs)) ||
        (structurallyEqual(A.Lhs, B.Rhs) &&
         structurallyEqual(A.Rhs, B.Lhs)))
      return true;
  }
  return false;
}

/// Re-verifies the axiom application: \p A's sides must cover the two
/// suffix languages (in either orientation).
bool axiomApplies(const Axiom &A, const RegexRef &Sp, const RegexRef &Sq,
                  LangQuery &Lang) {
  return (Lang.subsetOf(Sp, A.Lhs) && Lang.subsetOf(Sq, A.Rhs)) ||
         (Lang.subsetOf(Sp, A.Rhs) && Lang.subsetOf(Sq, A.Lhs));
}

/// Independent re-check of "the prefixes denote the same single vertex":
/// singleton words connected by the equality axioms' rewrite relation.
bool prefixesEqual(const RegexRef &P, const RegexRef &Q,
                   const AxiomSet &Axioms) {
  std::optional<Word> WP = P->singletonWord();
  std::optional<Word> WQ = Q->singletonWord();
  if (!WP || !WQ)
    return false;
  if (*WP == *WQ)
    return true;

  std::vector<std::pair<Word, Word>> Rules;
  for (const Axiom &A : Axioms.axioms()) {
    if (A.Form != AxiomForm::Equal)
      continue;
    std::optional<Word> L = A.Lhs->singletonWord();
    std::optional<Word> R = A.Rhs->singletonWord();
    if (!L || !R || *L == *R)
      continue;
    Rules.emplace_back(*L, *R);
    Rules.emplace_back(*R, *L);
  }
  if (Rules.empty())
    return false;

  constexpr size_t MaxVisited = 512;
  std::set<Word> Visited{*WP};
  std::deque<Word> Worklist{*WP};
  while (!Worklist.empty() && Visited.size() < MaxVisited) {
    Word Cur = std::move(Worklist.front());
    Worklist.pop_front();
    if (Cur == *WQ)
      return true;
    for (const auto &[From, To] : Rules) {
      if (From.size() > Cur.size())
        continue;
      for (size_t At = 0; At + From.size() <= Cur.size(); ++At) {
        if (!std::equal(From.begin(), From.end(), Cur.begin() + At))
          continue;
        Word Next(Cur.begin(), Cur.begin() + At);
        Next.insert(Next.end(), To.begin(), To.end());
        Next.insert(Next.end(), Cur.begin() + At + From.size(), Cur.end());
        if (Visited.insert(Next).second)
          Worklist.push_back(Next);
      }
    }
  }
  return false;
}

bool checkNode(const ProofNode &Node, CheckContext &Ctx) {
  const ProofJustification &J = Node.J;
  if (!J.GoalP || !J.GoalQ)
    return Ctx.fail(Node, "no structured justification recorded");

  // The split-based rules share the prefix/suffix decomposition check:
  // the goal side must equal prefix . suffix as a language.
  auto SplitValid = [&]() {
    if (!J.SufP || !J.SufQ || !J.PreP || !J.PreQ)
      return false;
    return Ctx.Lang.equivalent(J.GoalP, Regex::concat(J.PreP, J.SufP)) &&
           Ctx.Lang.equivalent(J.GoalQ, Regex::concat(J.PreQ, J.SufQ));
  };

  switch (J.Kind) {
  case ProofJustification::Rule::None:
    return Ctx.fail(Node, "unjustified step");

  case ProofJustification::Rule::Vacuous:
    if (!Ctx.Lang.languageEmpty(J.GoalP) &&
        !Ctx.Lang.languageEmpty(J.GoalQ))
      return Ctx.fail(Node, "claimed vacuous but both sides non-empty");
    break;

  case ProofJustification::Rule::Hypothesis: {
    bool Found = false;
    for (const auto &[HP, HQ] : Ctx.Hypotheses)
      if (Ctx.sameGoal(J.GoalP, J.GoalQ, HP, HQ))
        Found = true;
    if (!Found)
      return Ctx.fail(Node, "no matching active induction hypothesis");
    break;
  }

  case ProofJustification::Rule::Cached: {
    bool Found = false;
    for (const auto &[PP, PQ] : Ctx.Proven)
      if (Ctx.sameGoal(J.GoalP, J.GoalQ, PP, PQ))
        Found = true;
    for (const auto &[HP, HQ] : Ctx.Hypotheses)
      if (Ctx.sameGoal(J.GoalP, J.GoalQ, HP, HQ))
        Found = true;
    if (!Found)
      return Ctx.fail(Node, "cache reference to a goal not proven in "
                            "this tree");
    break;
  }

  case ProofJustification::Rule::DirectT1T2:
    if (!J.HasT1 || !J.HasT2)
      return Ctx.fail(Node, "direct rule without both axioms");
    if (!SplitValid())
      return Ctx.fail(Node, "suffix split does not recompose the goal");
    if (J.T1.Form != AxiomForm::SameOriginDisjoint ||
        !axiomInSet(J.T1, Ctx.Axioms) ||
        !axiomApplies(J.T1, J.SufP, J.SufQ, Ctx.Lang))
      return Ctx.fail(Node, "T1 axiom does not apply");
    if (J.T2.Form != AxiomForm::DiffOriginDisjoint ||
        !axiomInSet(J.T2, Ctx.Axioms) ||
        !axiomApplies(J.T2, J.SufP, J.SufQ, Ctx.Lang))
      return Ctx.fail(Node, "T2 axiom does not apply");
    break;

  case ProofJustification::Rule::T1PrefixEqual:
    if (!J.HasT1)
      return Ctx.fail(Node, "step C without a T1 axiom");
    if (!SplitValid())
      return Ctx.fail(Node, "suffix split does not recompose the goal");
    if (J.T1.Form != AxiomForm::SameOriginDisjoint ||
        !axiomInSet(J.T1, Ctx.Axioms) ||
        !axiomApplies(J.T1, J.SufP, J.SufQ, Ctx.Lang))
      return Ctx.fail(Node, "T1 axiom does not apply");
    if (!prefixesEqual(J.PreP, J.PreQ, Ctx.Axioms))
      return Ctx.fail(Node, "prefixes not provably the same vertex");
    break;

  case ProofJustification::Rule::T2PrefixDisjoint: {
    if (!J.HasT2)
      return Ctx.fail(Node, "step D without a T2 axiom");
    if (!SplitValid())
      return Ctx.fail(Node, "suffix split does not recompose the goal");
    if (J.T2.Form != AxiomForm::DiffOriginDisjoint ||
        !axiomInSet(J.T2, Ctx.Axioms) ||
        !axiomApplies(J.T2, J.SufP, J.SufQ, Ctx.Lang))
      return Ctx.fail(Node, "T2 axiom does not apply");
    if (Node.Children.size() != 1)
      return Ctx.fail(Node, "step D needs exactly one subproof");
    const ProofNode &Sub = *Node.Children.front();
    if (!Sub.J.GoalP ||
        !Ctx.sameGoal(Sub.J.GoalP, Sub.J.GoalQ, J.PreP, J.PreQ))
      return Ctx.fail(Node, "subproof does not prove the prefixes");
    if (!checkNode(Sub, Ctx))
      return false;
    break;
  }

  case ProofJustification::Rule::AltSplit: {
    if (Node.Children.empty())
      return Ctx.fail(Node, "alternation split with no branches");
    // Every branch subproof must hold; the branch goals must jointly
    // cover the split side and leave the other side intact.
    std::vector<RegexRef> SplitSides;
    for (const std::unique_ptr<ProofNode> &C : Node.Children) {
      if (!checkNode(*C, Ctx))
        return false;
      if (!C->J.GoalP)
        return Ctx.fail(Node, "branch without a recorded goal");
      const RegexRef &Fixed = J.SplitOnP ? J.GoalQ : J.GoalP;
      const RegexRef &CFixed = J.SplitOnP ? C->J.GoalQ : C->J.GoalP;
      if (!Ctx.Lang.equivalent(Fixed, CFixed))
        return Ctx.fail(Node, "branch changed the unsplit side");
      SplitSides.push_back(J.SplitOnP ? C->J.GoalP : C->J.GoalQ);
    }
    RegexRef Covered = Regex::alt(SplitSides);
    const RegexRef &Side = J.SplitOnP ? J.GoalP : J.GoalQ;
    if (!Ctx.Lang.subsetOf(Side, Covered))
      return Ctx.fail(Node, "branches do not cover the split side");
    break;
  }

  case ProofJustification::Rule::Induction:
  case ProofJustification::Rule::SevenCase: {
    // The case list is generated by construction (coverage trusted; see
    // file comment); each case must hold, with the recorded hypothesis
    // active only inside the final (step) case.
    if (Node.Children.empty())
      return Ctx.fail(Node, "induction with no cases");
    if (!J.HypP || !J.HypQ)
      return Ctx.fail(Node, "induction without a recorded hypothesis");
    for (size_t I = 0; I + 1 < Node.Children.size(); ++I)
      if (!checkNode(*Node.Children[I], Ctx))
        return false;
    Ctx.Hypotheses.emplace_back(J.HypP, J.HypQ);
    bool StepOk = checkNode(*Node.Children.back(), Ctx);
    Ctx.Hypotheses.pop_back();
    if (!StepOk)
      return false;
    break;
  }
  }

  Ctx.Proven.emplace_back(J.GoalP, J.GoalQ);
  return true;
}

} // namespace

ProofCheckResult apt::checkProof(const ProofNode &Proof,
                                 const AxiomSet &Axioms, LangQuery &Lang) {
  CheckContext Ctx{Axioms, Lang, {}, {}, {}};
  ProofCheckResult Out;
  Out.Ok = checkNode(Proof, Ctx);
  Out.Error = Ctx.Error;
  return Out;
}
