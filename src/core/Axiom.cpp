//===- core/Axiom.cpp -----------------------------------------------------===//
//
// Part of the APT project; see Axiom.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Axiom.h"

#include "regex/RegexParser.h"
#include "support/Strings.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace apt;

/// Renders one axiom side, parenthesizing top-level alternations so the
/// output reads unambiguously after the "p." prefix.
static std::string sideToString(const RegexRef &R, const FieldTable &Fields) {
  std::string Out = R->toString(Fields);
  if (R->kind() == RegexKind::Alt)
    return "(" + Out + ")";
  return Out;
}

std::string Axiom::toString(const FieldTable &Fields) const {
  std::string Prefix = !Name.empty() ? Name + ": " : std::string();
  switch (Form) {
  case AxiomForm::SameOriginDisjoint:
    return Prefix + "forall p: p." + sideToString(Lhs, Fields) + " <> p." +
           sideToString(Rhs, Fields);
  case AxiomForm::DiffOriginDisjoint:
    return Prefix + "forall p <> q: p." + sideToString(Lhs, Fields) +
           " <> q." + sideToString(Rhs, Fields);
  case AxiomForm::Equal:
    return Prefix + "forall p: p." + sideToString(Lhs, Fields) + " = p." +
           sideToString(Rhs, Fields);
  }
  assert(false && "unknown axiom form");
  return "";
}

const Axiom *AxiomSet::byName(std::string_view Name) const {
  for (const Axiom &A : Axioms)
    if (A.Name == Name)
      return &A;
  return nullptr;
}

/// Structural identity key of an axiom (used for set operations). The two
/// disjointness forms are symmetric in their expressions, so sides are
/// ordered canonically.
static std::string axiomKey(const Axiom &A) {
  // All three forms are symmetric in their two expressions (form 2 by
  // renaming p <-> q), so the sides are ordered canonically.
  const std::string &L = A.Lhs->key(), &R = A.Rhs->key();
  char Tag = A.Form == AxiomForm::SameOriginDisjoint   ? 'S'
             : A.Form == AxiomForm::DiffOriginDisjoint ? 'D'
                                                       : 'E';
  return Tag + std::min(L, R) + "\x1f" + std::max(L, R);
}

AxiomSet AxiomSet::intersectWith(const AxiomSet &Other) const {
  std::set<std::string> Keys;
  for (const Axiom &A : Other.Axioms)
    Keys.insert(axiomKey(A));
  AxiomSet Out;
  for (const Axiom &A : Axioms)
    if (Keys.count(axiomKey(A)))
      Out.add(A);
  return Out;
}

AxiomSet AxiomSet::unionWith(const AxiomSet &Other) const {
  AxiomSet Out = *this;
  std::set<std::string> Keys;
  for (const Axiom &A : Axioms)
    Keys.insert(axiomKey(A));
  for (const Axiom &A : Other.Axioms)
    if (Keys.insert(axiomKey(A)).second)
      Out.add(A);
  return Out;
}

std::string AxiomSet::toString(const FieldTable &Fields) const {
  std::string Out;
  for (const Axiom &A : Axioms) {
    Out += A.toString(Fields);
    Out += '\n';
  }
  return Out;
}

Axiom AxiomSet::acyclicity(const std::vector<FieldId> &StructFields,
                           std::string Name) {
  assert(!StructFields.empty() && "acyclicity over an empty field set");
  std::vector<RegexRef> Parts;
  Parts.reserve(StructFields.size());
  for (FieldId F : StructFields)
    Parts.push_back(Regex::symbol(F));
  RegexRef AnyField = Regex::alt(std::move(Parts));
  return Axiom(AxiomForm::SameOriginDisjoint, Regex::plus(AnyField),
               Regex::epsilon(), std::move(Name));
}

//===----------------------------------------------------------------------===//
// Axiom parsing
//===----------------------------------------------------------------------===//

namespace {

/// Scans an identifier at the front of \p S, returning it and advancing.
std::string_view takeIdent(std::string_view &S) {
  S = trim(S);
  size_t I = 0;
  while (I < S.size() &&
         (std::isalnum(static_cast<unsigned char>(S[I])) || S[I] == '_'))
    ++I;
  std::string_view Ident = S.substr(0, I);
  S = S.substr(I);
  return Ident;
}

/// Parses "var" or "var.RE" where `var` must equal \p ExpectedVar; returns
/// the RE (epsilon when the dot part is absent).
RegexParseResult parseSide(std::string_view Side, std::string_view ExpectedVar,
                           FieldTable &Fields, std::string &Error) {
  Side = trim(Side);
  std::string_view Var = takeIdent(Side);
  RegexParseResult Out;
  if (Var != ExpectedVar) {
    Error = "expected bound variable '" + std::string(ExpectedVar) +
            "', found '" + std::string(Var) + "'";
    return Out;
  }
  Side = trim(Side);
  if (Side.empty()) {
    Out.Value = Regex::epsilon();
    return Out;
  }
  if (Side.front() != '.') {
    Error = "expected '.' after bound variable";
    return Out;
  }
  Out = parseRegex(Side.substr(1), Fields);
  if (!Out)
    Error = "bad regular expression: " + Out.Error;
  return Out;
}

} // namespace

AxiomParseResult apt::parseAxiom(std::string_view Text, FieldTable &Fields,
                                 std::string Name) {
  AxiomParseResult Out;
  std::string_view S = trim(Text);

  auto Fail = [&](std::string Message) {
    Out.Error = std::move(Message);
    return Out;
  };

  std::string_view Kw = takeIdent(S);
  if (Kw != "forall")
    return Fail("axiom must start with 'forall'");

  std::string_view VarP = takeIdent(S);
  if (VarP.empty())
    return Fail("expected bound variable after 'forall'");

  S = trim(S);
  bool TwoVars = false;
  std::string_view VarQ;
  if (S.size() >= 2 && (S.substr(0, 2) == "<>" || S.substr(0, 2) == "!=")) {
    S = S.substr(2);
    VarQ = takeIdent(S);
    if (VarQ.empty() || VarQ == VarP)
      return Fail("expected a second, distinct bound variable");
    TwoVars = true;
    S = trim(S);
  }
  if (S.empty() || S.front() != ':')
    return Fail("expected ':' after the quantifier");
  S = S.substr(1);

  // Find the top-level relation token. '<', '>', '=' and '!' never occur
  // inside regular expressions, so a plain scan suffices.
  size_t RelPos = std::string_view::npos;
  bool IsEquality = false;
  for (size_t I = 0; I + 1 <= S.size(); ++I) {
    if (I + 1 < S.size() &&
        (S.substr(I, 2) == "<>" || S.substr(I, 2) == "!=")) {
      RelPos = I;
      break;
    }
    if (S[I] == '=') {
      RelPos = I;
      IsEquality = true;
      break;
    }
  }
  if (RelPos == std::string_view::npos)
    return Fail("expected '<>' or '=' between the two access paths");

  std::string_view LhsText = S.substr(0, RelPos);
  std::string_view RhsText = S.substr(RelPos + (IsEquality ? 1 : 2));

  std::string Error;
  RegexParseResult Lhs = parseSide(LhsText, VarP, Fields, Error);
  if (!Lhs)
    return Fail(Error);
  RegexParseResult Rhs =
      parseSide(RhsText, TwoVars ? VarQ : VarP, Fields, Error);
  if (!Rhs)
    return Fail(Error);

  if (IsEquality && TwoVars)
    return Fail("equality axioms take the one-variable form");

  Out.Value =
      Axiom(TwoVars ? AxiomForm::DiffOriginDisjoint
                    : (IsEquality ? AxiomForm::Equal
                                  : AxiomForm::SameOriginDisjoint),
            Lhs.Value, Rhs.Value, std::move(Name));
  Out.Ok = true;
  return Out;
}
