//===- core/DepTest.cpp ---------------------------------------------------===//
//
// Part of the APT project; see DepTest.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/DepTest.h"

#include <cassert>

using namespace apt;

const char *apt::depVerdictName(DepVerdict V) {
  switch (V) {
  case DepVerdict::No:
    return "No";
  case DepVerdict::Maybe:
    return "Maybe";
  case DepVerdict::Yes:
    return "Yes";
  }
  assert(false && "unknown verdict");
  return "";
}

const char *apt::depKindName(DepKind K) {
  switch (K) {
  case DepKind::None:
    return "none";
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  assert(false && "unknown kind");
  return "";
}

static DepKind classify(const MemRef &S, const MemRef &T) {
  if (S.IsWrite && T.IsWrite)
    return DepKind::Output;
  if (S.IsWrite)
    return DepKind::Flow;
  if (T.IsWrite)
    return DepKind::Anti;
  return DepKind::None;
}

DepTestResult apt::dependenceTest(const AxiomSet &Axioms, const MemRef &S,
                                  const MemRef &T, Prover &P) {
  DepTestResult Out;
  Out.Kind = classify(S, T);

  // Two reads never conflict.
  if (Out.Kind == DepKind::None) {
    Out.Verdict = DepVerdict::No;
    Out.Reason = "neither reference writes";
    return Out;
  }

  // Pointers are not cast freely between data-structure types and point to
  // the start of a vertex (safe in ANSI C; see §4.1), so references into
  // different structure types, or to non-overlapping fields, cannot alias.
  if (S.TypeName != T.TypeName) {
    Out.Verdict = DepVerdict::No;
    Out.Kind = DepKind::None;
    Out.Reason = "pointers have different data-structure types ('" +
                 S.TypeName + "' vs '" + T.TypeName + "')";
    return Out;
  }
  if (S.Field != T.Field) {
    Out.Verdict = DepVerdict::No;
    Out.Kind = DepKind::None;
    Out.Reason = "accessed fields do not overlap";
    return Out;
  }

  // The core test assumes a common handle. Without a relation between two
  // distinct handles, be conservative (the paper notes the distinct-handle
  // test additionally needs that relationship).
  if (S.Path.Handle != T.Path.Handle) {
    Out.Verdict = DepVerdict::Maybe;
    Out.Reason = "access paths are anchored at unrelated handles ('" +
                 S.Path.Handle + "' vs '" + T.Path.Handle + "')";
    return Out;
  }

  // Definite dependence: both paths always denote the same single vertex.
  // Identical singleton paths are the paper's |Path|=1 check; equality
  // axioms extend it to provably equal vertices (e.g. around a cycle).
  if (P.proveEqualPaths(Axioms, S.Path.Path, T.Path.Path)) {
    Out.Verdict = DepVerdict::Yes;
    Out.Reason = "paths provably denote the same vertex";
    return Out;
  }

  if (P.proveDisjoint(Axioms, S.Path.Path, T.Path.Path)) {
    Out.Verdict = DepVerdict::No;
    Out.Kind = DepKind::None;
    Out.Reason = "proved: forall x, x." +
                 S.Path.Path->toString(P.fields()) + " <> x." +
                 T.Path.Path->toString(P.fields());
    Out.ProofText = P.proofText();
    return Out;
  }

  Out.Verdict = DepVerdict::Maybe;
  Out.Reason = "no proof of independence found";
  return Out;
}

DepTestResult
apt::dependenceTest(const AxiomSet &Axioms, const MemRef &S, const MemRef &T,
                    Prover &P,
                    const std::vector<HandleRelation> &Relations) {
  if (S.Path.Handle == T.Path.Handle || Relations.empty())
    return dependenceTest(Axioms, S, T, P);

  // Try to rebase one reference onto the other's handle: a relation
  // To = From.Path turns an access To.Q into From.Path.Q. One hop is
  // tried in both directions; chains can be pre-composed by the caller.
  for (const HandleRelation &R : Relations) {
    assert(R.Path && "relation with a null path");
    if (R.From == S.Path.Handle && R.To == T.Path.Handle) {
      MemRef T2 = T;
      T2.Path = AccessPath(S.Path.Handle,
                           Regex::concat(R.Path, T.Path.Path));
      return dependenceTest(Axioms, S, T2, P);
    }
    if (R.From == T.Path.Handle && R.To == S.Path.Handle) {
      MemRef S2 = S;
      S2.Path = AccessPath(T.Path.Handle,
                           Regex::concat(R.Path, S.Path.Path));
      return dependenceTest(Axioms, S2, T, P);
    }
  }
  return dependenceTest(Axioms, S, T, P);
}
