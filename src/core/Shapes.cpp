//===- core/Shapes.cpp ----------------------------------------------------===//
//
// Part of the APT project; see Shapes.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Shapes.h"

#include "support/Strings.h"

#include <cassert>
#include <cctype>

using namespace apt;

static RegexRef altOfFields(const std::vector<FieldId> &Fields) {
  std::vector<RegexRef> Parts;
  Parts.reserve(Fields.size());
  for (FieldId F : Fields)
    Parts.push_back(Regex::symbol(F));
  return Regex::alt(std::move(Parts));
}

std::vector<Axiom> apt::shapeTree(const std::vector<FieldId> &Fields,
                                  const std::string &Prefix) {
  assert(!Fields.empty() && "a tree needs at least one child field");
  std::vector<Axiom> Out;
  int N = 0;
  // Children of one node are pairwise distinct.
  for (size_t I = 0; I < Fields.size(); ++I)
    for (size_t J = I + 1; J < Fields.size(); ++J)
      Out.emplace_back(AxiomForm::SameOriginDisjoint,
                       Regex::symbol(Fields[I]), Regex::symbol(Fields[J]),
                       Prefix + std::to_string(++N));
  // No two nodes share a child.
  RegexRef Any = altOfFields(Fields);
  Out.emplace_back(AxiomForm::DiffOriginDisjoint, Any, Any,
                   Prefix + std::to_string(++N));
  // No cycles.
  Out.emplace_back(AxiomForm::SameOriginDisjoint, Regex::plus(Any),
                   Regex::epsilon(), Prefix + std::to_string(++N));
  return Out;
}

std::vector<Axiom> apt::shapeList(FieldId F, const std::string &Prefix) {
  std::vector<Axiom> Out;
  RegexRef S = Regex::symbol(F);
  Out.emplace_back(AxiomForm::DiffOriginDisjoint, S, S, Prefix + "1");
  Out.emplace_back(AxiomForm::SameOriginDisjoint, Regex::plus(S),
                   Regex::epsilon(), Prefix + "2");
  return Out;
}

std::vector<Axiom> apt::shapeRing(FieldId F, const std::string &Prefix) {
  std::vector<Axiom> Out;
  RegexRef S = Regex::symbol(F);
  Out.emplace_back(AxiomForm::DiffOriginDisjoint, S, S, Prefix + "1");
  Out.emplace_back(AxiomForm::SameOriginDisjoint, S, Regex::epsilon(),
                   Prefix + "2");
  return Out;
}

std::vector<Axiom> apt::shapeInverse(FieldId F, FieldId G,
                                     const std::string &Prefix) {
  std::vector<Axiom> Out;
  Out.emplace_back(AxiomForm::Equal, Regex::word({F, G}), Regex::epsilon(),
                   Prefix + "1");
  Out.emplace_back(AxiomForm::Equal, Regex::word({G, F}), Regex::epsilon(),
                   Prefix + "2");
  return Out;
}

std::vector<Axiom> apt::shapeAcyclic(const std::vector<FieldId> &Fields,
                                     const std::string &Prefix) {
  std::vector<Axiom> Out;
  Out.push_back(AxiomSet::acyclicity(Fields, Prefix + "1"));
  return Out;
}

std::vector<Axiom> apt::shapeDisjoint(FieldId Entry,
                                      const std::vector<FieldId> &Span,
                                      const std::string &Prefix) {
  std::vector<Axiom> Out;
  RegexRef E = Regex::symbol(Entry);
  Out.emplace_back(AxiomForm::DiffOriginDisjoint, E, E, Prefix + "1");
  RegexRef Reach = Regex::concat(E, Regex::star(altOfFields(Span)));
  Out.emplace_back(AxiomForm::DiffOriginDisjoint, Reach, Reach,
                   Prefix + "2");
  return Out;
}

//===----------------------------------------------------------------------===//
// Concrete syntax
//===----------------------------------------------------------------------===//

namespace {

/// Splits "name(arg, arg | arg, ...)" into the name and argument groups
/// (groups separated by '|', items by ',').
bool splitCall(std::string_view Text, std::string &Name,
               std::vector<std::vector<std::string>> &Groups,
               std::string &Error) {
  Text = trim(Text);
  size_t Open = Text.find('(');
  if (Open == std::string_view::npos || Text.back() != ')') {
    Error = "expected 'shape-name(field, ...)'";
    return false;
  }
  Name = std::string(trim(Text.substr(0, Open)));
  std::string_view Args = Text.substr(Open + 1, Text.size() - Open - 2);
  Groups.emplace_back();
  std::string Current;
  for (char C : Args) {
    if (C == ',' || C == '|') {
      std::string_view T = trim(Current);
      if (T.empty()) {
        Error = "empty field name in shape arguments";
        return false;
      }
      Groups.back().emplace_back(T);
      Current.clear();
      if (C == '|')
        Groups.emplace_back();
      continue;
    }
    Current += C;
  }
  std::string_view T = trim(Current);
  if (!T.empty())
    Groups.back().emplace_back(T);
  if (Groups.back().empty()) {
    Error = "shape declaration needs at least one field";
    return false;
  }
  return true;
}

std::vector<FieldId> internGroup(const std::vector<std::string> &Names,
                                 FieldTable &Fields) {
  std::vector<FieldId> Out;
  Out.reserve(Names.size());
  for (const std::string &N : Names)
    Out.push_back(Fields.intern(N));
  return Out;
}

} // namespace

std::vector<Axiom> apt::parseShape(std::string_view Text,
                                   FieldTable &Fields, std::string &Error) {
  std::string Name;
  std::vector<std::vector<std::string>> Groups;
  if (!splitCall(Text, Name, Groups, Error))
    return {};

  auto WantGroups = [&](size_t N) {
    if (Groups.size() == N)
      return true;
    Error = "shape '" + Name + "' takes " + std::to_string(N) +
            " argument group(s)";
    return false;
  };
  auto WantFields = [&](size_t GroupIdx, size_t N) {
    if (Groups[GroupIdx].size() == N)
      return true;
    Error = "shape '" + Name + "' takes " + std::to_string(N) + " field(s)";
    return false;
  };

  if (Name == "tree") {
    if (!WantGroups(1))
      return {};
    return shapeTree(internGroup(Groups[0], Fields));
  }
  if (Name == "list") {
    if (!WantGroups(1) || !WantFields(0, 1))
      return {};
    return shapeList(Fields.intern(Groups[0][0]));
  }
  if (Name == "ring") {
    if (!WantGroups(1) || !WantFields(0, 1))
      return {};
    return shapeRing(Fields.intern(Groups[0][0]));
  }
  if (Name == "inverse") {
    if (!WantGroups(1) || !WantFields(0, 2))
      return {};
    return shapeInverse(Fields.intern(Groups[0][0]),
                        Fields.intern(Groups[0][1]));
  }
  if (Name == "acyclic") {
    if (!WantGroups(1))
      return {};
    return shapeAcyclic(internGroup(Groups[0], Fields));
  }
  if (Name == "disjoint") {
    if (!WantGroups(2) || !WantFields(0, 1))
      return {};
    return shapeDisjoint(Fields.intern(Groups[0][0]),
                         internGroup(Groups[1], Fields));
  }
  Error = "unknown shape '" + Name +
          "' (known: tree, list, ring, inverse, acyclic, disjoint)";
  return {};
}
