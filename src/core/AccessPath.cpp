//===- core/AccessPath.cpp ------------------------------------------------===//
//
// Part of the APT project; see AccessPath.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/AccessPath.h"

using namespace apt;

static void appendComponents(const RegexRef &R, std::vector<RegexRef> &Out) {
  switch (R->kind()) {
  case RegexKind::Epsilon:
    return;
  case RegexKind::Concat:
    for (const RegexRef &C : R->children())
      appendComponents(C, Out);
    return;
  case RegexKind::Plus:
    // a+ == a.a*; expanding here lets the prover treat every loop as a
    // star while reproducing the paper's '+' cases.
    appendComponents(R->child(), Out);
    Out.push_back(Regex::star(R->child()));
    return;
  default:
    Out.push_back(R);
    return;
  }
}

std::vector<RegexRef> apt::pathComponents(const RegexRef &R) {
  std::vector<RegexRef> Out;
  appendComponents(R, Out);
  return Out;
}

RegexRef apt::componentsToRegex(const std::vector<RegexRef> &Components) {
  return Regex::concat(Components);
}

std::string AccessPath::toString(const FieldTable &Fields) const {
  if (Path->isEpsilon())
    return Handle;
  return Handle + "." + Path->toString(Fields);
}
