//===- core/Prover.h - The APT theorem prover (paper section 4) -*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of APT: a decidable theorem prover that, given a set of
/// aliasing axioms, attempts to prove theorems of the form
///
///     forall vertices x:  x.P <> x.Q
///
/// i.e. that two access paths anchored at the same vertex can never reach
/// the same vertex in any data structure satisfying the axioms. This is
/// the paper's `proveDisj` (§4.1), organized as follows:
///
///  * Suffix enumeration: every component-granularity split P = Pp.Sp,
///    Q = Pq.Sq is tried (the paper's (1,1)/(1,0)/(0,1) recursive suffix
///    generation produces exactly this set).
///  * For each split, T1 (same-origin) axioms and T2 (distinct-origin)
///    axioms are applied to the suffixes by regular-language subset tests.
///    T1 && T2 closes the goal outright; T1 plus provably equal prefixes
///    (step C) or T2 plus recursively provably disjoint prefixes (step D)
///    also close it.
///  * Alternation components are first treated whole; if the proof fails
///    they are split, and every branch must be proven (step E).
///  * Kleene components are first treated whole; if the proof fails the
///    prover performs induction (step E): base cases eps and a, then an
///    inductive step that assumes the a*a instance and proves the a*aa
///    instance. When both paths end in stars the paper's seven-case
///    combined induction is used. The inductive hypothesis is installed as
///    an assumed goal (matched by identity or language equivalence), which
///    keeps the induction sound: a hypothesis can only discharge a goal
///    whose words are strictly shorter than the step goal's.
///  * All goals are memoized; in-progress goals fail their recursive
///    re-entries, making the search finite, and explicit depth/step
///    budgets implement the paper's "pruned heuristically and cutoff
///    points set" remark.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_PROVER_H
#define APT_CORE_PROVER_H

#include "core/AccessPath.h"
#include "core/Axiom.h"
#include "core/Proof.h"
#include "regex/LangOps.h"
#include "support/ShardedCache.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace apt {

/// Tuning knobs for the prover (the paper's user-controllable cutoffs).
struct ProverOptions {
  /// Which regular-language decision engine answers subset queries.
  LangEngine Engine = LangEngine::Dfa;

  /// Memoize goals (paper §4.2 assumes intermediate proofs are cached).
  bool EnableGoalCache = true;

  /// Fail fast when the two path languages intersect: a shared word w
  /// means the single vertex x.w would witness a dependence in any model
  /// where the w-path exists, so no proof is sought.
  bool PruneIntersectingLanguages = true;

  /// Use the paper's seven-case combined induction when both paths end in
  /// Kleene components (otherwise nested single-star inductions run).
  bool PaperStyleDoubleKleene = true;

  /// Recursion depth cutoff.
  size_t MaxDepth = 48;

  /// Maximum nesting of Kleene inductions. Each induction unrolls star
  /// components, growing goals, so unbounded nesting makes failing
  /// searches explode; real proofs rarely need more than a handful.
  size_t MaxInductionDepth = 6;

  /// Total goal budget; exhausting it fails the remaining goals.
  size_t MaxSteps = 200000;

  /// Goals with more components than this fail immediately.
  size_t MaxGoalComponents = 64;

  /// Record a proof tree for successful proofs.
  bool RecordProof = true;

  /// Preprocess query paths: language-preserving simplification
  /// (regex/Simplify.h) plus canonicalization of singleton-word paths
  /// via the form-3 equality axioms, so that e.g. `next.next.prev`
  /// enters the proof as `next` and cycle-crossing queries succeed.
  bool NormalizePaths = true;

  /// Memoize whole proveDisjoint verdicts (keyed by axiom fingerprint and
  /// the raw query keys). A repeated top-level query then skips
  /// normalization and the goal search entirely and touches no heap --
  /// the warm-path contract of tests/engine_perf_test.cpp. Goal-level
  /// caching (EnableGoalCache) is unaffected.
  bool MemoizeVerdicts = true;
};

/// Aggregate counters exposed for tests and the complexity benchmarks.
struct ProverStats {
  uint64_t GoalsExplored = 0;
  uint64_t GoalCacheHits = 0;
  /// Subset of GoalCacheHits answered by the attached cross-thread cache
  /// (a goal another prover instance settled first).
  uint64_t SharedGoalHits = 0;
  uint64_t HypothesisHits = 0;
  uint64_t AltSplits = 0;
  uint64_t Inductions = 0;
  uint64_t BudgetExhausted = 0;
  /// Top-level proveDisjoint calls answered by the verdict memo.
  uint64_t VerdictMemoHits = 0;

  /// Component-wise sum, used by the batch engine to merge per-worker
  /// prover counters on quiesce.
  ProverStats &operator+=(const ProverStats &O) {
    GoalsExplored += O.GoalsExplored;
    GoalCacheHits += O.GoalCacheHits;
    SharedGoalHits += O.SharedGoalHits;
    HypothesisHits += O.HypothesisHits;
    AltSplits += O.AltSplits;
    Inductions += O.Inductions;
    BudgetExhausted += O.BudgetExhausted;
    VerdictMemoHits += O.VerdictMemoHits;
    return *this;
  }
};

/// The APT theorem prover. One instance holds the language-query caches
/// and may be reused across many queries against the same field table.
class Prover {
public:
  explicit Prover(const FieldTable &Fields, ProverOptions Opts = {});

  /// Attempts to prove `forall x: x.P <> x.Q` from \p Axioms. Returns
  /// true iff a proof was found (false means "no proof", not "false").
  bool proveDisjoint(const AxiomSet &Axioms, const RegexRef &P,
                     const RegexRef &Q);

  /// Attempts to prove that two same-handle paths denote the *same single
  /// vertex* (used for step C and for the dependence test's Yes answers):
  /// singleton-word identity, or a chain of form-3 equality axioms.
  bool proveEqualPaths(const AxiomSet &Axioms, const RegexRef &P,
                       const RegexRef &Q);

  /// Proof tree of the last successful proveDisjoint (null if none or if
  /// recording is disabled). Valid until the next proveDisjoint call.
  const ProofNode *proof() const { return Root ? Root.get() : nullptr; }

  /// Renders the last proof; empty string if there is none.
  std::string proofText() const { return Root ? Root->toString() : ""; }

  const ProverStats &stats() const { return Stats; }
  LangQuery &langQuery() { return Lang; }
  const ProverOptions &options() const { return Opts; }
  const FieldTable &fields() const { return Fields; }

  /// Clears goal caches and statistics (language caches survive).
  void resetCaches();

  /// Attaches a cross-thread goal-verdict cache (see ShardedCache.h).
  /// Each Prover instance remains single-threaded -- its search state
  /// (in-progress stack, hypotheses, budgets) is untouched -- but proven
  /// goals and definitive (non-poisoned) failures are published to and
  /// read from \p Shared, so concurrent provers share subproofs. Keys
  /// embed the axiom-set fingerprint and the active-hypothesis
  /// signature, making entries order-independent facts; see
  /// docs/ARCHITECTURE.md for the full threading model. Pass nullptr to
  /// detach. The caller keeps ownership.
  void attachSharedGoalCache(ShardedBoolCache *Shared) {
    SharedGoals = Shared;
  }

  /// Structural fingerprint of an axiom set; cached goal verdicts are
  /// scoped to the axiom set they were derived under. Public so the
  /// batch engine can deduplicate structurally equal queries.
  static size_t axiomSetFingerprint(const AxiomSet &Axioms);

private:
  /// A disjointness goal: prove forall x, x.concat(P) <> x.concat(Q).
  struct Goal {
    std::vector<RegexRef> P, Q;
  };

  bool prove(const AxiomSet &Axioms, Goal G, ProofNode *Out, size_t Depth);
  bool proveCore(const AxiomSet &Axioms, const Goal &G, ProofNode *Out,
                 size_t Depth);
  bool trySuffixSplits(const AxiomSet &Axioms, const Goal &G, ProofNode *Out,
                       size_t Depth);
  bool tryAlternationSplit(const AxiomSet &Axioms, const Goal &G,
                           ProofNode *Out, size_t Depth);
  bool tryKleeneInduction(const AxiomSet &Axioms, const Goal &G,
                          ProofNode *Out, size_t Depth);
  bool tryKleeneInductionImpl(const AxiomSet &Axioms, const Goal &G,
                              ProofNode *Out, size_t Depth);
  bool trySingleStarInduction(const AxiomSet &Axioms, const Goal &G,
                              bool OnP, size_t StarIdx, ProofNode *Out,
                              size_t Depth);
  bool trySevenCaseInduction(const AxiomSet &Axioms, const Goal &G,
                             ProofNode *Out, size_t Depth);

  /// Searches \p Axioms for a same-origin (form 1) axiom whose sides cover
  /// the two suffix languages; returns its name or empty on failure.
  const Axiom *findFormA(const AxiomSet &Axioms, const RegexRef &Sp,
                         const RegexRef &Sq);
  /// Likewise for distinct-origin (form 2) axioms.
  const Axiom *findFormB(const AxiomSet &Axioms, const RegexRef &Sp,
                         const RegexRef &Sq);

  /// True if goal \p G matches an active induction hypothesis.
  bool matchesHypothesis(const Goal &G);

  std::string goalKey(const Goal &G) const;
  std::string goalStatement(const Goal &G) const;

  /// Rebuilds the form-3 equality memo when the axiom set changes.
  /// Rewrite rules are a pure function of the axiom set, so entries are
  /// keyed by its fingerprint: step C probes path equality for every
  /// prefix-pair candidate, and without the memo each probe re-derives
  /// the rules and re-runs the bounded rewrite BFS, which dominates
  /// whole proofs under ring-style equality axioms.
  void ensureEqualityMemo(const AxiomSet &Axioms, size_t Fp);
  /// Memoized canonicalWord over the current equality memo.
  const Word &canonicalForm(const Word &W);

  const FieldTable &Fields;
  ProverOptions Opts;
  LangQuery Lang;
  ProverStats Stats;

  std::unordered_map<std::string, bool> GoalCache;
  ShardedBoolCache *SharedGoals = nullptr;
  std::vector<std::string> InProgress;

  /// Active induction hypotheses: canonical key plus the two sides for
  /// language-equivalence matching.
  struct Hypothesis {
    std::string Key;
    RegexRef P, Q;
    std::string Label;
  };
  std::vector<Hypothesis> ActiveHyps;

  size_t EqMemoFp = 0;
  bool EqMemoValid = false;
  std::vector<std::pair<Word, Word>> EqRules;
  std::map<Word, Word> CanonMemo;

  size_t StepsLeft = 0;
  size_t InductionDepth = 0;
  size_t CurrentAxiomFp = 0;
  /// Set when a cutoff (depth, steps, induction depth, goal size) or a
  /// cycle cut influenced the current subtree; such failures are
  /// context-dependent and are not cached.
  bool Poisoned = false;
  /// Shared so the verdict memo below can retain the proof of a memoized
  /// query: a memo hit re-publishes the stored tree here without copying
  /// or re-proving.
  std::shared_ptr<ProofNode> Root;

  /// Whole-query verdict memo (Opts.MemoizeVerdicts): fp + '\x1d' + raw
  /// P/Q keys -> verdict and proof. KeyBuf is reused so warm hits do not
  /// allocate.
  struct VerdictEntry {
    bool Ok = false;
    std::shared_ptr<ProofNode> Proof;
  };
  std::unordered_map<std::string, VerdictEntry> VerdictMemo;
  std::string VerdictKeyBuf;
};

} // namespace apt

#endif // APT_CORE_PROVER_H
