//===- core/Proof.h - Recorded proof trees ----------------------*- C++ -*-===//
//
// Part of the APT project; see Prover.h for the engine that builds these.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A proof tree recording how the prover discharged a disjointness goal.
/// Each node carries the goal statement in the paper's notation plus the
/// rule that closed it; children are the subgoals the rule demanded. The
/// quickstart example prints these trees in the style of the paper's §3.3
/// worked proof.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_PROOF_H
#define APT_CORE_PROOF_H

#include "core/Axiom.h"
#include "regex/Regex.h"

#include <memory>
#include <string>
#include <vector>

namespace apt {

/// Machine-checkable payload of one proof step, consumed by the
/// independent checker in ProofChecker.h. GoalP/GoalQ are always set;
/// the remaining fields depend on Kind.
struct ProofJustification {
  enum class Rule {
    None,             ///< No structured record (recording disabled).
    Vacuous,          ///< A goal side denotes the empty language.
    Hypothesis,       ///< Matches an active induction hypothesis.
    DirectT1T2,       ///< Suffix split closed by a T1 and a T2 axiom.
    T1PrefixEqual,    ///< T1 axiom + prefixes denote the same vertex.
    T2PrefixDisjoint, ///< T2 axiom + recursively disjoint prefixes.
    AltSplit,         ///< Alternation case split (children = branches).
    Induction,        ///< Single-star induction (eps / one / step).
    SevenCase,        ///< The paper's double-Kleene seven-case rule.
    Cached,           ///< Goal proven earlier in the same session.
  };

  Rule Kind = Rule::None;
  RegexRef GoalP, GoalQ; ///< The goal: forall x, x.GoalP <> x.GoalQ.
  RegexRef SufP, SufQ;   ///< Suffixes of the split (T1/T2 rules).
  RegexRef PreP, PreQ;   ///< Prefixes of the split (T1/T2 rules).
  Axiom T1, T2;          ///< Applied axioms (valid per HasT1/HasT2).
  bool HasT1 = false, HasT2 = false;
  RegexRef HypP, HypQ;   ///< Installed hypothesis (induction rules).
  bool SplitOnP = false; ///< AltSplit: which side was split.
};

/// One step of a recorded proof.
struct ProofNode {
  std::string Statement; ///< E.g. "forall x: x.L.L.N <> x.L.R.N".
  std::string Rule;      ///< How it was discharged, e.g. "T2 by A3; ...".
  ProofJustification J;  ///< Structured payload for the proof checker.
  std::vector<std::unique_ptr<ProofNode>> Children;

  ProofNode() = default;
  explicit ProofNode(std::string Statement)
      : Statement(std::move(Statement)) {}

  /// Adds and returns a fresh child node.
  ProofNode *addChild(std::string ChildStatement) {
    Children.push_back(
        std::make_unique<ProofNode>(std::move(ChildStatement)));
    return Children.back().get();
  }

  /// Renders the subtree, two spaces of indent per level.
  std::string toString(unsigned Indent = 0) const {
    std::string Out(Indent * 2, ' ');
    Out += Statement;
    if (!Rule.empty()) {
      Out += "  -- ";
      Out += Rule;
    }
    Out += '\n';
    for (const std::unique_ptr<ProofNode> &C : Children)
      Out += C->toString(Indent + 1);
    return Out;
  }
};

} // namespace apt

#endif // APT_CORE_PROOF_H
