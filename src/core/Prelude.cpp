//===- core/Prelude.cpp ---------------------------------------------------===//
//
// Part of the APT project; see Prelude.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "core/Prelude.h"

#include "core/Shapes.h"

#include <cassert>

using namespace apt;

/// Parses one axiom, asserting success (all prelude axioms are constants).
static Axiom mustParse(std::string_view Text, FieldTable &Fields,
                       std::string Name) {
  AxiomParseResult R = parseAxiom(Text, Fields, std::move(Name));
  assert(R && "prelude axiom failed to parse");
  (void)R.Ok;
  return R.Value;
}

static std::vector<FieldId> internAll(FieldTable &Fields,
                                      std::initializer_list<const char *> Names) {
  std::vector<FieldId> Out;
  for (const char *N : Names)
    Out.push_back(Fields.intern(N));
  return Out;
}

/// Declares the node population each field points at (see
/// StructureInfo::FieldTarget).
static void setTargets(
    StructureInfo &S, FieldTable &Fields,
    std::initializer_list<std::pair<const char *, const char *>> Pairs) {
  for (const auto &[Field, Target] : Pairs)
    S.FieldTarget[Fields.intern(Field)] = Target;
}

StructureInfo apt::preludeLinkedList(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "LinkedList";
  S.PointerFields = internAll(Fields, {"next"});
  S.Axioms.add(mustParse("forall p <> q: p.next <> q.next", Fields, "L1"));
  S.Axioms.add(mustParse("forall p: p.next+ <> p.eps", Fields, "L2"));
  setTargets(S, Fields, {{"next", "node"}});
  return S;
}

StructureInfo apt::preludeCircularList(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "CircularList";
  S.PointerFields = internAll(Fields, {"next"});
  // Injectivity only: the last node's next may close the cycle.
  S.Axioms.add(mustParse("forall p <> q: p.next <> q.next", Fields, "C1"));
  setTargets(S, Fields, {{"next", "node"}});
  return S;
}

StructureInfo apt::preludeDoublyLinkedRing(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "DoublyLinkedRing";
  S.PointerFields = internAll(Fields, {"next", "prev"});
  S.Axioms.add(mustParse("forall p <> q: p.next <> q.next", Fields, "D1"));
  S.Axioms.add(mustParse("forall p <> q: p.prev <> q.prev", Fields, "D2"));
  S.Axioms.add(mustParse("forall p: p.next.prev = p.eps", Fields, "D3"));
  S.Axioms.add(mustParse("forall p: p.prev.next = p.eps", Fields, "D4"));
  // Rings of length >= 2: no node is its own neighbor.
  S.Axioms.add(mustParse("forall p: p.next <> p.eps", Fields, "D5"));
  S.Axioms.add(mustParse("forall p: p.prev <> p.eps", Fields, "D6"));
  setTargets(S, Fields, {{"next", "node"}, {"prev", "node"}});
  return S;
}

StructureInfo apt::preludeBinaryTree(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "BinaryTree";
  S.PointerFields = internAll(Fields, {"L", "R"});
  S.Axioms.add(mustParse("forall p: p.L <> p.R", Fields, "T1"));
  S.Axioms.add(mustParse("forall p <> q: p.(L|R) <> q.(L|R)", Fields, "T2"));
  S.Axioms.add(mustParse("forall p: p.(L|R)+ <> p.eps", Fields, "T3"));
  setTargets(S, Fields, {{"L", "node"}, {"R", "node"}});
  return S;
}

StructureInfo apt::preludeLeafLinkedTree(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "LLBinaryTree";
  S.PointerFields = internAll(Fields, {"L", "R", "N"});
  // The four axioms of Figure 3.
  S.Axioms.add(mustParse("forall p: p.L <> p.R", Fields, "A1"));
  S.Axioms.add(mustParse("forall p <> q: p.(L|R) <> q.(L|R)", Fields, "A2"));
  S.Axioms.add(mustParse("forall p <> q: p.N <> q.N", Fields, "A3"));
  S.Axioms.add(mustParse("forall p: p.(L|R|N)+ <> p.eps", Fields, "A4"));
  setTargets(S, Fields,
             {{"L", "node"}, {"R", "node"}, {"N", "node"}});
  return S;
}

StructureInfo apt::preludeSparseMatrixMinimal(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "SparseMatrix";
  S.PointerFields = internAll(Fields, {"rows", "cols", "nrowH", "ncolH",
                                       "relem", "celem", "nrowE", "ncolE"});
  // The three axioms of §5, sufficient to prove Theorem T.
  S.Axioms.add(
      mustParse("forall p <> q: p.ncolE <> q.ncolE", Fields, "A1"));
  S.Axioms.add(mustParse("forall p: p.ncolE+ <> p.nrowE+", Fields, "A2"));
  S.Axioms.add(
      mustParse("forall p: p.(ncolE|nrowE)+ <> p.eps", Fields, "A3"));
  setTargets(S, Fields,
             {{"rows", "rowh"}, {"nrowH", "rowh"}, {"cols", "colh"},
              {"ncolH", "colh"}, {"relem", "elem"}, {"celem", "elem"},
              {"nrowE", "elem"}, {"ncolE", "elem"}});
  return S;
}

StructureInfo apt::preludeSparseMatrixFull(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "SparseMatrix";
  S.PointerFields = internAll(Fields, {"rows", "cols", "nrowH", "ncolH",
                                       "relem", "celem", "nrowE", "ncolE"});
  // The twelve axioms of Appendix A.
  // Rows and columns are linked lists; successors within a row and within
  // a column are distinct.
  S.Axioms.add(
      mustParse("forall p <> q: p.nrowE <> q.nrowE", Fields, "M1"));
  S.Axioms.add(
      mustParse("forall p <> q: p.ncolE <> q.ncolE", Fields, "M2"));
  S.Axioms.add(mustParse("forall p: p.nrowE <> p.ncolE", Fields, "M3"));
  // Rows are disjoint, likewise columns.
  S.Axioms.add(
      mustParse("forall p: p.ncolE* <> p.nrowE+.ncolE*", Fields, "M4"));
  S.Axioms.add(
      mustParse("forall p: p.nrowE* <> p.ncolE+.nrowE*", Fields, "M5"));
  // Row and column headers form linked lists.
  S.Axioms.add(
      mustParse("forall p <> q: p.nrowH <> q.nrowH", Fields, "M6"));
  S.Axioms.add(
      mustParse("forall p <> q: p.ncolH <> q.ncolH", Fields, "M7"));
  // Rows (columns) are disjoint from the headers' perspective.
  S.Axioms.add(mustParse(
      "forall p <> q: p.relem.ncolE* <> q.relem.ncolE*", Fields, "M8"));
  S.Axioms.add(mustParse(
      "forall p <> q: p.celem.nrowE* <> q.celem.nrowE*", Fields, "M9"));
  // The root belongs to the header lists.
  S.Axioms.add(mustParse("forall p <> q: p.rows <> q.nrowH", Fields, "M10"));
  S.Axioms.add(mustParse("forall p <> q: p.cols <> q.ncolH", Fields, "M11"));
  // The whole structure is acyclic.
  S.Axioms.add(mustParse(
      "forall p: p.(rows|cols|relem|celem|nrowH|ncolH|nrowE|ncolE)+ <> p.eps",
      Fields, "M12"));
  setTargets(S, Fields,
             {{"rows", "rowh"}, {"nrowH", "rowh"}, {"cols", "colh"},
              {"ncolH", "colh"}, {"relem", "elem"}, {"celem", "elem"},
              {"nrowE", "elem"}, {"ncolE", "elem"}});
  return S;
}

StructureInfo apt::preludeRangeTree2D(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "RangeTree2D";
  S.PointerFields =
      internAll(Fields, {"L", "R", "N", "sub", "yL", "yR", "yN"});
  // The x-tree is a leaf-linked tree.
  S.Axioms.add(mustParse("forall p: p.L <> p.R", Fields, "X1"));
  S.Axioms.add(mustParse("forall p <> q: p.(L|R) <> q.(L|R)", Fields, "X2"));
  S.Axioms.add(mustParse("forall p <> q: p.N <> q.N", Fields, "X3"));
  // Each y-tree is a leaf-linked tree.
  S.Axioms.add(mustParse("forall p: p.yL <> p.yR", Fields, "Y1"));
  S.Axioms.add(
      mustParse("forall p <> q: p.(yL|yR) <> q.(yL|yR)", Fields, "Y2"));
  S.Axioms.add(mustParse("forall p <> q: p.yN <> q.yN", Fields, "Y3"));
  // Distinct x-nodes own distinct, disjoint y-trees.
  S.Axioms.add(mustParse("forall p <> q: p.sub <> q.sub", Fields, "S1"));
  S.Axioms.add(mustParse(
      "forall p <> q: p.sub.(yL|yR|yN)* <> q.sub.(yL|yR|yN)*", Fields,
      "S2"));
  // x-nodes are never y-nodes: pure x-paths and sub-crossing paths from
  // a common origin land in disjoint node populations.
  S.Axioms.add(mustParse(
      "forall p: p.(L|R|N)* <> p.(L|R|N)*.sub.(L|R|N|sub|yL|yR|yN)*",
      Fields, "S3"));
  // The whole structure is acyclic.
  S.Axioms.add(mustParse(
      "forall p: p.(L|R|N|sub|yL|yR|yN)+ <> p.eps", Fields, "S4"));
  setTargets(S, Fields,
             {{"L", "xnode"}, {"R", "xnode"}, {"N", "xnode"},
              {"sub", "ynode"}, {"yL", "ynode"}, {"yR", "ynode"},
              {"yN", "ynode"}});
  return S;
}

StructureInfo apt::preludeOctree(FieldTable &Fields) {
  StructureInfo S;
  S.Name = "Octree";
  S.PointerFields = internAll(Fields, {"c0", "c1", "c2", "c3", "c4", "c5",
                                       "c6", "c7", "bodies", "bnext"});
  // Built from shape declarations: the cell tree, per-cell disjoint body
  // lists, and list-ness of the body chain.
  std::vector<FieldId> Children(S.PointerFields.begin(),
                                S.PointerFields.begin() + 8);
  for (Axiom &A : shapeTree(Children))
    S.Axioms.add(std::move(A));
  for (Axiom &A : shapeDisjoint(Fields.intern("bodies"),
                                {Fields.intern("bnext")}))
    S.Axioms.add(std::move(A));
  for (Axiom &A : shapeList(Fields.intern("bnext")))
    S.Axioms.add(std::move(A));
  setTargets(S, Fields,
             {{"c0", "cell"}, {"c1", "cell"}, {"c2", "cell"},
              {"c3", "cell"}, {"c4", "cell"}, {"c5", "cell"},
              {"c6", "cell"}, {"c7", "cell"}, {"bodies", "body"},
              {"bnext", "body"}});
  return S;
}
