//===- core/ProofJson.h - Proof/axiom JSON (de)serialization ----*- C++ -*-===//
//
// Part of the APT project; see Proof.h for the trees serialized here.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON round-tripping for axioms and recorded proof trees, used by the
/// trace-export layer (analysis/TraceExport.h): a `proof` record in a
/// trace file carries the axiom set plus the full structured tree, so a
/// reader can re-validate the prover's No verdict with ProofChecker
/// without access to the original program.
///
/// Regexes are serialized through their textual form (Regex::toString)
/// and parsed back with regex/RegexParser.h, which round-trips exactly:
/// the printer emits the grammar the parser accepts. Rule and axiom-form
/// names are stable snake_case strings; see docs/OBSERVABILITY.md for
/// the schema.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_PROOFJSON_H
#define APT_CORE_PROOFJSON_H

#include "core/Axiom.h"
#include "core/Proof.h"
#include "support/Json.h"

#include <memory>
#include <string>

namespace apt {

/// Stable snake_case name of a justification rule ("direct_t1_t2", ...).
const char *proofRuleName(ProofJustification::Rule R);

/// Stable name of an axiom form: "same_origin", "diff_origin", "equal".
const char *axiomFormName(AxiomForm F);

/// Serializes one axiom as {"form","lhs","rhs"} plus "name" when set.
JsonValue axiomToJson(const Axiom &A, const FieldTable &Fields);

/// Serializes a whole set as a JSON array, preserving order.
JsonValue axiomSetToJson(const AxiomSet &Axioms, const FieldTable &Fields);

/// Serializes a proof tree. Null regex fields and unset axiom slots are
/// omitted; children serialize recursively under "children".
JsonValue proofToJson(const ProofNode &N, const FieldTable &Fields);

/// Outcome of deserializing an axiom or a proof tree.
struct AxiomFromJsonResult {
  Axiom Value;
  bool Ok = false;
  std::string Error;

  explicit operator bool() const { return Ok; }
};

struct ProofFromJsonResult {
  std::unique_ptr<ProofNode> Value; ///< Non-null on success.
  std::string Error;                ///< Non-empty on failure.

  explicit operator bool() const { return Value != nullptr; }
};

/// Parses an axiom produced by axiomToJson, interning field names into
/// \p Fields.
AxiomFromJsonResult axiomFromJson(const JsonValue &V, FieldTable &Fields);

/// Parses an array produced by axiomSetToJson into \p Out. Returns false
/// and sets \p Error on the first malformed element.
bool axiomSetFromJson(const JsonValue &V, FieldTable &Fields, AxiomSet &Out,
                      std::string &Error);

/// Parses a tree produced by proofToJson, interning field names into
/// \p Fields.
ProofFromJsonResult proofFromJson(const JsonValue &V, FieldTable &Fields);

} // namespace apt

#endif // APT_CORE_PROOFJSON_H
