//===- core/Axiom.h - Aliasing axioms (paper section 3.1) -------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aliasing axioms describe uniform properties of a data structure viewed
/// as a directed graph with field-labeled edges. An axiom takes one of the
/// paper's three forms (§3.1):
///
///   1. forall p:      p.RE1 <> p.RE2   (same-origin disjointness)
///   2. forall p <> q: p.RE1 <> q.RE2   (distinct-origin disjointness)
///   3. forall p:      p.RE1 =  p.RE2   (set equality; describes cycles)
///
/// where `p.RE` denotes the set of vertices reached from vertex p along any
/// path whose label word is in L(RE).
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_AXIOM_H
#define APT_CORE_AXIOM_H

#include "regex/Regex.h"

#include <string>
#include <vector>

namespace apt {

/// The three axiom forms of paper §3.1.
enum class AxiomForm {
  SameOriginDisjoint, ///< forall p:      p.RE1 <> p.RE2
  DiffOriginDisjoint, ///< forall p <> q: p.RE1 <> q.RE2
  Equal,              ///< forall p:      p.RE1 = p.RE2
};

/// One aliasing axiom.
struct Axiom {
  AxiomForm Form = AxiomForm::SameOriginDisjoint;
  RegexRef Lhs;     ///< RE1
  RegexRef Rhs;     ///< RE2
  std::string Name; ///< Optional label such as "A1" (used in proofs).
  int Line = 0;     ///< 1-based source line when parsed from a file
                    ///< (0 = unknown). Diagnostics only; not part of the
                    ///< structural identity used by set operations.

  Axiom() = default;
  Axiom(AxiomForm Form, RegexRef Lhs, RegexRef Rhs, std::string Name = "")
      : Form(Form), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)),
        Name(std::move(Name)) {}

  /// Renders the axiom in the paper's notation, e.g.
  /// "forall p <> q: p.ncolE <> q.ncolE".
  std::string toString(const FieldTable &Fields) const;
};

/// A set of axioms valid at some program region.
///
/// Supports intersection (paper §3.4: when a dependence test spans a
/// structural modification, the applicable axioms are the intersection of
/// the sets valid before and after the modifying statement).
class AxiomSet {
public:
  AxiomSet() = default;

  void add(Axiom A) { Axioms.push_back(std::move(A)); }

  const std::vector<Axiom> &axioms() const { return Axioms; }
  size_t size() const { return Axioms.size(); }
  bool empty() const { return Axioms.empty(); }

  /// Finds an axiom by name; returns nullptr if absent.
  const Axiom *byName(std::string_view Name) const;

  /// Axioms present (structurally) in both sets.
  AxiomSet intersectWith(const AxiomSet &Other) const;

  /// Union of both sets (structural duplicates removed).
  AxiomSet unionWith(const AxiomSet &Other) const;

  std::string toString(const FieldTable &Fields) const;

  /// Convenience: the acyclicity axiom "forall p: p.(f1|...|fk)+ <> p.eps"
  /// over the given fields (paper Figure 3's A4, Appendix A's last axiom).
  static Axiom acyclicity(const std::vector<FieldId> &StructFields,
                          std::string Name = "");

private:
  std::vector<Axiom> Axioms;
};

/// Result of parsing an axiom from text.
struct AxiomParseResult {
  Axiom Value;
  bool Ok = false;
  std::string Error; ///< Non-empty on failure.

  explicit operator bool() const { return Ok; }
};

/// Parses the paper's concrete axiom syntax:
///
/// \code
///   forall p: p.L <> p.R
///   forall p <> q: p.(L|R) <> q.(L|R)
///   forall p: p.next.prev = p.eps
/// \endcode
///
/// `!=` is accepted for `<>`; the bound variable names are arbitrary
/// identifiers but must be used consistently; `p` alone abbreviates
/// `p.eps`. Field names are interned into \p Fields.
AxiomParseResult parseAxiom(std::string_view Text, FieldTable &Fields,
                            std::string Name = "");

} // namespace apt

#endif // APT_CORE_AXIOM_H
