//===- core/Prelude.h - Canned structures from the paper --------*- C++ -*-===//
//
// Part of the APT project; see Axiom.h for the axiom representation.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ready-made field sets and axiom sets for the data structures the paper
/// uses: the leaf-linked binary tree of Figure 3, the orthogonal-list
/// sparse matrix of Figure 6 / Appendix A (both the minimal three-axiom
/// set of §5 and the full twelve-axiom set), plus the common structures
/// the related-work comparison needs (lists, trees, cyclic lists, 2-D
/// range trees). Tests, benchmarks and examples all share these.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_PRELUDE_H
#define APT_CORE_PRELUDE_H

#include "core/Axiom.h"

#include <map>
#include <string>
#include <vector>

namespace apt {

/// A named data structure: its pointer fields and aliasing axioms.
struct StructureInfo {
  std::string Name;
  std::vector<FieldId> PointerFields;
  AxiomSet Axioms;
  /// Which node population each field targets (e.g. the sparse matrix's
  /// nrowE/ncolE/relem/celem all point at element nodes). Used by the
  /// Larus-style baseline to group potentially confluent fields; fields
  /// missing from the map are treated as one shared population.
  std::map<FieldId, std::string> FieldTarget;
};

/// Singly-linked acyclic list over field `next`.
StructureInfo preludeLinkedList(FieldTable &Fields);

/// Circular singly-linked list over `next` (injective next, no
/// acyclicity).
StructureInfo preludeCircularList(FieldTable &Fields);

/// Circular doubly-linked list over `next`/`prev`, with the equality
/// axioms `p.next.prev = p` and `p.prev.next = p`.
StructureInfo preludeDoublyLinkedRing(FieldTable &Fields);

/// Plain binary tree over `L`/`R`.
StructureInfo preludeBinaryTree(FieldTable &Fields);

/// The leaf-linked binary tree of Figure 3: `L`/`R` form a tree, `N` links
/// the leaves, the whole structure is acyclic (axioms A1-A4).
StructureInfo preludeLeafLinkedTree(FieldTable &Fields);

/// The sparse matrix of Figure 6 with only the three axioms of §5 (enough
/// to prove Theorem T).
StructureInfo preludeSparseMatrixMinimal(FieldTable &Fields);

/// The sparse matrix with the full twelve axioms of Appendix A.
StructureInfo preludeSparseMatrixFull(FieldTable &Fields);

/// A two-dimensional range tree (§3.1): a leaf-linked tree of leaf-linked
/// trees, the x-tree over `L`/`R`/`N` with a `sub` pointer to per-node
/// y-trees over `yL`/`yR`/`yN`.
StructureInfo preludeRangeTree2D(FieldTable &Fields);

/// A Barnes-Hut octree (the paper's motivating N-body structure): an
/// 8-ary tree over `c0`..`c7`, each cell owning a disjoint `bodies` list
/// chained by `bnext`.
StructureInfo preludeOctree(FieldTable &Fields);

} // namespace apt

#endif // APT_CORE_PRELUDE_H
