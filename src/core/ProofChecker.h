//===- core/ProofChecker.h - Independent proof validation -------*- C++ -*-===//
//
// Part of the APT project; see Proof.h for the structured justifications
// validated here.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent checker for recorded proof trees: every leaf claim the
/// prover made (axiom applications, suffix-split algebra, prefix
/// equality, hypothesis usage, cache references) is re-verified with
/// fresh regular-language queries, without consulting the prover. A
/// passing check means the proof is self-contained evidence for the
/// disjointness theorem, modulo two structurally-generated facts it
/// trusts: that alternation splits and Kleene-induction case lists cover
/// their parent goals (both are produced by construction, and the case
/// *contents* are still re-verified).
///
/// A proof is self-contained only when produced by a single
/// proveDisjoint call on a fresh (or cache-reset) Prover: goal-cache
/// references into *earlier queries* of the same Prover are rejected,
/// because the referenced subproof is not part of this tree.
///
/// Used by tests as a second line of defense behind the concrete-graph
/// soundness oracle, and available to library users who want auditable
/// verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_PROOFCHECKER_H
#define APT_CORE_PROOFCHECKER_H

#include "core/Axiom.h"
#include "core/Proof.h"
#include "regex/LangOps.h"

#include <string>

namespace apt {

/// Outcome of checking a proof tree.
struct ProofCheckResult {
  bool Ok = false;
  std::string Error; ///< First failure, with the offending statement.

  explicit operator bool() const { return Ok; }
};

/// Re-verifies \p Proof against \p Axioms. \p Lang supplies the
/// regular-language decision procedures (its caches make repeated
/// checking cheap).
ProofCheckResult checkProof(const ProofNode &Proof, const AxiomSet &Axioms,
                            LangQuery &Lang);

} // namespace apt

#endif // APT_CORE_PROOFCHECKER_H
