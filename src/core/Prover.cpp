//===- core/Prover.cpp - The APT theorem prover ---------------------------===//
//
// Part of the APT project; see Prover.h for the algorithm overview.
//
//===----------------------------------------------------------------------===//

#include "core/Prover.h"

#include "regex/Simplify.h"
#include "support/Strings.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <deque>
#include <functional>
#include <set>

using namespace apt;

namespace {
// Defined with proveEqualPaths below; also used by path normalization.
std::vector<std::pair<Word, Word>> equalityRules(const AxiomSet &Axioms);
Word canonicalWord(const std::vector<std::pair<Word, Word>> &Rules,
                   const Word &Start);
} // namespace

Prover::Prover(const FieldTable &Fields, ProverOptions Opts)
    : Fields(Fields), Opts(Opts), Lang(Opts.Engine, /*EnableCache=*/true) {}

void Prover::resetCaches() {
  GoalCache.clear();
  VerdictMemo.clear();
  InProgress.clear();
  ActiveHyps.clear();
  EqMemoValid = false;
  EqRules.clear();
  CanonMemo.clear();
  Stats = ProverStats();
}

//===----------------------------------------------------------------------===//
// Goal bookkeeping
//===----------------------------------------------------------------------===//

std::string Prover::goalKey(const Goal &G) const {
  // Disjointness is symmetric; canonicalize side order so G(P,Q) and
  // G(Q,P) share one cache entry.
  std::string KP = componentsToRegex(G.P)->key();
  std::string KQ = componentsToRegex(G.Q)->key();
  if (KQ < KP)
    std::swap(KP, KQ);
  return KP + "\x1f" + KQ;
}

std::string Prover::goalStatement(const Goal &G) const {
  return "forall x: x." + componentsToRegex(G.P)->toString(Fields) +
         " <> x." + componentsToRegex(G.Q)->toString(Fields);
}

bool Prover::matchesHypothesis(const Goal &G) {
  if (ActiveHyps.empty())
    return false;
  std::string Key = goalKey(G);
  RegexRef RP = componentsToRegex(G.P), RQ = componentsToRegex(G.Q);
  for (const Hypothesis &H : ActiveHyps) {
    if (H.Key == Key) {
      ++Stats.HypothesisHits;
      APT_TRACE_EVENT(trace::EventKind::HypothesisHit,
                      std::hash<std::string>{}(Key), 0, /*ByKey=*/1);
      return true;
    }
    // Structural keys can differ for equal languages (e.g. a.a* vs a*.a);
    // fall back to language equivalence.
    if ((Lang.equivalent(RP, H.P) && Lang.equivalent(RQ, H.Q)) ||
        (Lang.equivalent(RP, H.Q) && Lang.equivalent(RQ, H.P))) {
      ++Stats.HypothesisHits;
      APT_TRACE_EVENT(trace::EventKind::HypothesisHit,
                      std::hash<std::string>{}(Key), 0, /*ByKey=*/0);
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Axiom application (the paper's T1/T2 computations)
//===----------------------------------------------------------------------===//

const Axiom *Prover::findFormA(const AxiomSet &Axioms, const RegexRef &Sp,
                               const RegexRef &Sq) {
  for (const Axiom &A : Axioms.axioms()) {
    if (A.Form != AxiomForm::SameOriginDisjoint)
      continue;
    if ((Lang.subsetOf(Sp, A.Lhs) && Lang.subsetOf(Sq, A.Rhs)) ||
        (Lang.subsetOf(Sp, A.Rhs) && Lang.subsetOf(Sq, A.Lhs)))
      return &A;
  }
  return nullptr;
}

const Axiom *Prover::findFormB(const AxiomSet &Axioms, const RegexRef &Sp,
                               const RegexRef &Sq) {
  for (const Axiom &A : Axioms.axioms()) {
    if (A.Form != AxiomForm::DiffOriginDisjoint)
      continue;
    if ((Lang.subsetOf(Sp, A.Lhs) && Lang.subsetOf(Sq, A.Rhs)) ||
        (Lang.subsetOf(Sp, A.Rhs) && Lang.subsetOf(Sq, A.Lhs)))
      return &A;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

size_t Prover::axiomSetFingerprint(const AxiomSet &Axioms) {
  // Allocation-free and order-independent: each axiom hashes to a 64-bit
  // value (FNV over form + the interned regex keys, finalized with an
  // avalanche mix), and the per-axiom hashes combine commutatively. The
  // previous scheme materialized and sorted one string per axiom on
  // every call -- on the warm path that was the last mandatory heap
  // traffic in proveDisjoint.
  auto Feed = [](uint64_t H, const char *P, size_t N) {
    for (size_t I = 0; I < N; ++I) {
      H ^= static_cast<unsigned char>(P[I]);
      H *= 0x100000001b3ULL;
    }
    return H;
  };
  uint64_t Sum = 0, Xor = 0;
  for (const Axiom &A : Axioms.axioms()) {
    uint64_t H = 0xcbf29ce484222325ULL;
    char Form = static_cast<char>('0' + static_cast<int>(A.Form));
    H = Feed(H, &Form, 1);
    H = Feed(H, A.Lhs->key().data(), A.Lhs->key().size());
    H = Feed(H, "\x1f", 1);
    H = Feed(H, A.Rhs->key().data(), A.Rhs->key().size());
    // Finalize per axiom so the commutative combine below still mixes
    // well (fmix64 of MurmurHash3).
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    H *= 0xc4ceb9fe1a85ec53ULL;
    H ^= H >> 33;
    Sum += H;
    Xor ^= H;
  }
  size_t Seed = Axioms.size();
  hashCombine(Seed, static_cast<size_t>(Sum));
  hashCombine(Seed, static_cast<size_t>(Xor));
  return Seed;
}

bool Prover::proveDisjoint(const AxiomSet &Axioms, const RegexRef &P,
                           const RegexRef &Q) {
  assert(P && Q && "null access path regex");
  RegexRef NP = P, NQ = Q;
  CurrentAxiomFp = axiomSetFingerprint(Axioms);
  if (Opts.MemoizeVerdicts) {
    // Whole-verdict memo: a repeat of a settled top-level query skips
    // normalization and the goal search. The key is built in a reused
    // buffer and the stored proof is re-shared, so a hit performs no
    // heap allocation (tests/engine_perf_test.cpp pins this).
    char FpBuf[2 * sizeof(size_t) + 1];
    int FpLen = std::snprintf(FpBuf, sizeof(FpBuf), "%zx", CurrentAxiomFp);
    VerdictKeyBuf.assign(FpBuf, static_cast<size_t>(FpLen));
    VerdictKeyBuf += '\x1d';
    VerdictKeyBuf += P->key();
    VerdictKeyBuf += '\x1f';
    VerdictKeyBuf += Q->key();
    auto It = VerdictMemo.find(VerdictKeyBuf);
    if (It != VerdictMemo.end()) {
      ++Stats.VerdictMemoHits;
      Root = It->second.Proof;
      if (APT_TRACE_ENABLED && trace::enabled()) {
        uint64_t TraceQuery = trace::beginQuery(
            std::hash<std::string>{}(P->key() + "\x1f" + Q->key()));
        trace::endQuery(TraceQuery, It->second.Ok);
      }
      return It->second.Ok;
    }
  }
  if (Opts.NormalizePaths) {
    // Language-preserving shrinking, then canonicalization of
    // singleton-word paths through the equality axioms (so that e.g.
    // ring paths crossing next.prev reduce before the suffix machinery
    // runs -- it only knows the disjointness axiom forms).
    NP = simplifyRegex(NP, Lang);
    NQ = simplifyRegex(NQ, Lang);
    ensureEqualityMemo(Axioms, CurrentAxiomFp);
    if (!EqRules.empty()) {
      if (std::optional<Word> W = NP->singletonWord())
        NP = Regex::word(canonicalForm(*W));
      if (std::optional<Word> W = NQ->singletonWord())
        NQ = Regex::word(canonicalForm(*W));
    }
  }
  Goal G{pathComponents(NP), pathComponents(NQ)};
  StepsLeft = Opts.MaxSteps;
  Root.reset();
  InductionDepth = 0;
  Poisoned = false;
  // One trace query scope per proveDisjoint call; the tag hashes the
  // normalized query so traces correlate across job counts.
  uint64_t TraceQuery = 0;
  if (APT_TRACE_ENABLED && trace::enabled())
    TraceQuery = trace::beginQuery(
        std::hash<std::string>{}(NP->key() + "\x1f" + NQ->key()));
  std::unique_ptr<ProofNode> Node;
  if (Opts.RecordProof)
    Node = std::make_unique<ProofNode>();
  bool Ok = prove(Axioms, std::move(G), Node.get(), /*Depth=*/0);
  if (Ok && Node)
    Root = std::move(Node);
  trace::endQuery(TraceQuery, Ok);
  // Verdicts influenced by budget/depth cutoffs are context-dependent
  // (a later call with warmer caches could do better); only settled
  // answers are memoized, mirroring the goal cache's poisoning rule.
  if (Opts.MemoizeVerdicts && (Ok || !Poisoned))
    VerdictMemo.emplace(VerdictKeyBuf, VerdictEntry{Ok, Root});
  return Ok;
}

namespace {

/// Bidirectional rewrite rules from the form-3 equality axioms whose
/// sides are single words (e.g. forall p: p.next.prev = p.eps describes
/// a doubly-linked cycle and rewrites ...next.prev... to ...).
std::vector<std::pair<Word, Word>> equalityRules(const AxiomSet &Axioms) {
  std::vector<std::pair<Word, Word>> Rules;
  for (const Axiom &A : Axioms.axioms()) {
    if (A.Form != AxiomForm::Equal)
      continue;
    std::optional<Word> L = A.Lhs->singletonWord();
    std::optional<Word> R = A.Rhs->singletonWord();
    if (!L || !R || *L == *R)
      continue;
    Rules.emplace_back(*L, *R);
    Rules.emplace_back(*R, *L);
  }
  return Rules;
}

/// Canonical representative of \p Start's rewrite-equivalence class:
/// the shortest (then lexicographically smallest) word reachable by
/// bounded rewriting. Words denoting the same vertex share a canonical
/// form whenever the bounded exploration connects them.
Word canonicalWord(const std::vector<std::pair<Word, Word>> &Rules,
                   const Word &Start) {
  if (Rules.empty())
    return Start;
  constexpr size_t MaxVisited = 512;
  Word Best = Start;
  std::set<Word> Visited{Start};
  std::deque<Word> Worklist{Start};
  auto Better = [](const Word &A, const Word &B) {
    return A.size() != B.size() ? A.size() < B.size() : A < B;
  };
  while (!Worklist.empty() && Visited.size() < MaxVisited) {
    Word Cur = std::move(Worklist.front());
    Worklist.pop_front();
    if (Better(Cur, Best))
      Best = Cur;
    for (const auto &[From, To] : Rules) {
      if (From.size() > Cur.size())
        continue;
      for (size_t At = 0; At + From.size() <= Cur.size(); ++At) {
        if (!std::equal(From.begin(), From.end(), Cur.begin() + At))
          continue;
        Word Next(Cur.begin(), Cur.begin() + At);
        Next.insert(Next.end(), To.begin(), To.end());
        Next.insert(Next.end(), Cur.begin() + At + From.size(), Cur.end());
        if (Visited.insert(Next).second)
          Worklist.push_back(Next);
      }
    }
  }
  return Best;
}

} // namespace

bool Prover::proveEqualPaths(const AxiomSet &Axioms, const RegexRef &P,
                             const RegexRef &Q) {
  APT_TRACE_SPAN(Span, trace::SpanKind::PrefixEqual);
  // Only singleton-word paths denote single vertices (fields are
  // functions), so only those can be proven pointwise equal.
  std::optional<Word> WP = P->singletonWord();
  std::optional<Word> WQ = Q->singletonWord();
  if (!WP || !WQ)
    return false;
  if (*WP == *WQ)
    return true;
  ensureEqualityMemo(Axioms, axiomSetFingerprint(Axioms));
  if (EqRules.empty())
    return false;
  // Equal vertices share a canonical form (rewriting is symmetric); the
  // bounded search makes a differing canonical form a conservative "not
  // proven equal".
  return canonicalForm(*WP) == canonicalForm(*WQ);
}

void Prover::ensureEqualityMemo(const AxiomSet &Axioms, size_t Fp) {
  if (EqMemoValid && EqMemoFp == Fp)
    return;
  EqRules = equalityRules(Axioms);
  CanonMemo.clear();
  EqMemoFp = Fp;
  EqMemoValid = true;
}

const Word &Prover::canonicalForm(const Word &W) {
  auto It = CanonMemo.find(W);
  if (It == CanonMemo.end())
    It = CanonMemo.emplace(W, canonicalWord(EqRules, W)).first;
  return It->second;
}

//===----------------------------------------------------------------------===//
// The proveDisj core
//===----------------------------------------------------------------------===//

bool Prover::prove(const AxiomSet &Axioms, Goal G, ProofNode *Out,
                   size_t Depth) {
  if (StepsLeft == 0) {
    ++Stats.BudgetExhausted;
    Poisoned = true;
    APT_TRACE_EVENT(trace::EventKind::BudgetExhausted, 0,
                    static_cast<uint32_t>(Depth),
                    static_cast<uint8_t>(trace::PoisonReason::StepBudget));
    return false;
  }
  --StepsLeft;
  ++Stats.GoalsExplored;

  if (Out) {
    Out->Statement = goalStatement(G);
    Out->J.GoalP = componentsToRegex(G.P);
    Out->J.GoalQ = componentsToRegex(G.Q);
  }

  if (Depth > Opts.MaxDepth ||
      G.P.size() + G.Q.size() > Opts.MaxGoalComponents) {
    // This failure reflects a cutoff, not the goal itself; it must not be
    // cached as a definitive "no proof".
    Poisoned = true;
    APT_TRACE_EVENT(trace::EventKind::CachePoisoned, 0,
                    static_cast<uint32_t>(Depth),
                    static_cast<uint8_t>(trace::PoisonReason::DepthCutoff));
    return false;
  }

  // The cache result depends on the axiom set and on which induction
  // hypotheses are active.
  std::string Key = goalKey(G);
  std::string FullKey = std::to_string(CurrentAxiomFp) + "\x1d" + Key;
  if (!ActiveHyps.empty()) {
    std::vector<std::string> HypKeys;
    for (const Hypothesis &H : ActiveHyps)
      HypKeys.push_back(H.Key);
    std::sort(HypKeys.begin(), HypKeys.end());
    FullKey += "\x1e";
    FullKey += join(HypKeys, "\x1e");
  }

  // Goal-key hash shared by this goal's events (computed only when a
  // trace is being recorded; strings never enter the ring).
  [[maybe_unused]] uint64_t GoalH = 0;
  if (APT_TRACE_ENABLED && trace::enabled())
    GoalH = std::hash<std::string>{}(FullKey);
  APT_TRACE_EVENT(trace::EventKind::GoalBegin, GoalH,
                  static_cast<uint32_t>(Depth));
  // Every path below emits a matching GoalEnd (including the cache-hit
  // and cycle-cut early returns) so the timed-mode profile aggregator
  // sees balanced goal frames.

  if (Opts.EnableGoalCache) {
    // The probes run under a CacheLookup span that closes before any
    // GoalEnd below, keeping the timed-frame stream strictly LIFO.
    std::optional<bool> Hit;
    bool FromShared = false;
    {
      APT_TRACE_SPAN(LookupSpan, trace::SpanKind::CacheLookup, GoalH,
                     static_cast<uint32_t>(Depth));
      auto It = GoalCache.find(FullKey);
      if (It != GoalCache.end()) {
        Hit = It->second;
      } else if (SharedGoals) {
        // A goal another prover instance settled first (same axiom set
        // and hypothesis signature, so the verdict is an
        // order-independent fact). Sound even for a goal on our own
        // in-progress stack: the publisher's proof completed without
        // assuming it.
        Hit = SharedGoals->lookup(FullKey);
        FromShared = Hit.has_value();
      }
    }
    if (Hit) {
      ++Stats.GoalCacheHits;
      if (FromShared) {
        ++Stats.SharedGoalHits;
        APT_TRACE_EVENT(trace::EventKind::SharedCacheHit, GoalH,
                        static_cast<uint32_t>(Depth), *Hit ? 1 : 0);
        GoalCache.emplace(FullKey, *Hit);
      } else {
        APT_TRACE_EVENT(trace::EventKind::CacheHit, GoalH,
                        static_cast<uint32_t>(Depth), *Hit ? 1 : 0);
      }
      if (Out && *Hit) {
        Out->Rule = "previously proven (cache)";
        Out->J.Kind = ProofJustification::Rule::Cached;
      }
      APT_TRACE_EVENT(trace::EventKind::GoalEnd, GoalH,
                      static_cast<uint32_t>(Depth), *Hit ? 1 : 0);
      return *Hit;
    }
  }

  // A goal currently being proven higher up the stack must not close
  // itself; failing the re-entry keeps the search finite. The failure is
  // context-dependent, so it poisons caching like a cutoff does.
  if (std::find(InProgress.begin(), InProgress.end(), FullKey) !=
      InProgress.end()) {
    Poisoned = true;
    APT_TRACE_EVENT(trace::EventKind::CachePoisoned, GoalH,
                    static_cast<uint32_t>(Depth),
                    static_cast<uint8_t>(trace::PoisonReason::CycleCut));
    APT_TRACE_EVENT(trace::EventKind::GoalEnd, GoalH,
                    static_cast<uint32_t>(Depth), 0);
    return false;
  }

  InProgress.push_back(FullKey);
  bool SavedPoison = Poisoned;
  Poisoned = false;
  bool Result = proveCore(Axioms, G, Out, Depth);
  bool MyPoison = Poisoned;
  Poisoned = SavedPoison || MyPoison;
  InProgress.pop_back();
  APT_TRACE_EVENT(trace::EventKind::GoalEnd, GoalH,
                  static_cast<uint32_t>(Depth), Result ? 1 : 0,
                  MyPoison ? 1 : 0);

  // Successful proofs are always cacheable (under the hypothesis
  // signature baked into the key); failures only when no cutoff or cycle
  // cut influenced the subtree (those depend on budgets and the search
  // context, which is also why they must never reach the shared cache).
  if (Opts.EnableGoalCache && (Result || !MyPoison)) {
    if (SharedGoals)
      SharedGoals->insert(FullKey, Result);
    GoalCache.emplace(std::move(FullKey), Result);
  }
  return Result;
}

bool Prover::proveCore(const AxiomSet &Axioms, const Goal &G, ProofNode *Out,
                       size_t Depth) {
  RegexRef RP = componentsToRegex(G.P);
  RegexRef RQ = componentsToRegex(G.Q);

  // A side with no path at all reaches no vertex.
  if (RP->isEmpty() || RQ->isEmpty()) {
    if (Out) {
      Out->Rule = "vacuous: a side denotes no path";
      Out->J.Kind = ProofJustification::Rule::Vacuous;
    }
    return true;
  }

  if (matchesHypothesis(G)) {
    if (Out) {
      Out->Rule = "by the induction hypothesis";
      Out->J.Kind = ProofJustification::Rule::Hypothesis;
    }
    return true;
  }

  if (structurallyEqual(RP, RQ))
    return false;

  // If the two languages share a word w, the vertex x.w witnesses an
  // overlap in any model where that path exists; no proof can be found,
  // so do not search for one.
  if (Opts.PruneIntersectingLanguages && !Lang.disjoint(RP, RQ))
    return false;

  if (trySuffixSplits(Axioms, G, Out, Depth))
    return true;
  if (tryAlternationSplit(Axioms, G, Out, Depth))
    return true;
  if (tryKleeneInduction(Axioms, G, Out, Depth))
    return true;
  return false;
}

bool Prover::trySuffixSplits(const AxiomSet &Axioms, const Goal &G,
                             ProofNode *Out, size_t Depth) {
  // Timed mode attributes the whole split search (axiom matching and
  // steps A-D, including step D's recursive prove) to this span; nested
  // goal and rule frames subtract out as child time in the profile.
  APT_TRACE_SPAN(Span, trace::SpanKind::SuffixSplits, 0,
                 static_cast<uint32_t>(Depth));
  const size_t N = G.P.size(), M = G.Q.size();

  // Enumerate suffix splits shortest-first: the paper's recursive suffix
  // generation ((1,1) then (1,0)/(0,1), repeated) visits exactly the pairs
  // (i, j) != (0, 0) of suffix component counts.
  for (size_t Total = 1; Total <= N + M; ++Total) {
    for (size_t I = Total >= M ? Total - M : 0; I <= std::min(Total, N);
         ++I) {
      size_t J = Total - I;
      RegexRef Sp = componentsToRegex(
          std::vector<RegexRef>(G.P.begin() + (N - I), G.P.end()));
      RegexRef Sq = componentsToRegex(
          std::vector<RegexRef>(G.Q.begin() + (M - J), G.Q.end()));
      std::vector<RegexRef> PrefP(G.P.begin(), G.P.end() - I);
      std::vector<RegexRef> PrefQ(G.Q.begin(), G.Q.end() - J);

      const Axiom *T1 = findFormA(Axioms, Sp, Sq);
      const Axiom *T2 = findFormB(Axioms, Sp, Sq);
      if (!T1 && !T2)
        continue;

      // An applicable axiom was found: this split is a rule application
      // (splits with no matching axiom are search, not application).
      APT_TRACE_EVENT(trace::EventKind::SuffixSplit, 0,
                      static_cast<uint32_t>(Depth),
                      static_cast<uint8_t>((T1 ? 1 : 0) | (T2 ? 2 : 0)),
                      (static_cast<uint64_t>(I) << 32) | J);
      if (T1)
        APT_TRACE_EVENT(trace::EventKind::FormAApplied, 0,
                        static_cast<uint32_t>(Depth));
      if (T2)
        APT_TRACE_EVENT(trace::EventKind::FormBApplied, 0,
                        static_cast<uint32_t>(Depth));

      std::string SplitDesc = "suffixes (" + Sp->toString(Fields) + ", " +
                              Sq->toString(Fields) + ")";
      auto AxName = [this](const Axiom *A) {
        return A->Name.empty() ? "[" + A->toString(Fields) + "]" : A->Name;
      };

      // Steps A+B: suffixes disjoint whether the prefixes lead to the
      // same vertex (T1) or to distinct vertices (T2).
      if (T1 && T2) {
        APT_TRACE_EVENT(trace::EventKind::StepAB, 0,
                        static_cast<uint32_t>(Depth));
        if (Out) {
          Out->Rule = SplitDesc + ": T1 by " + AxName(T1) + " and T2 by " +
                      AxName(T2);
          Out->J.Kind = ProofJustification::Rule::DirectT1T2;
          Out->J.SufP = Sp;
          Out->J.SufQ = Sq;
          Out->J.PreP = componentsToRegex(PrefP);
          Out->J.PreQ = componentsToRegex(PrefQ);
          Out->J.T1 = *T1;
          Out->J.HasT1 = true;
          Out->J.T2 = *T2;
          Out->J.HasT2 = true;
        }
        return true;
      }

      // Step C: same-origin disjointness suffices when the prefixes
      // provably name the same single vertex.
      if (T1) {
        RegexRef RPrefP = componentsToRegex(PrefP);
        RegexRef RPrefQ = componentsToRegex(PrefQ);
        if (proveEqualPaths(Axioms, RPrefP, RPrefQ)) {
          APT_TRACE_EVENT(trace::EventKind::StepC, 0,
                          static_cast<uint32_t>(Depth));
          if (Out) {
            Out->Rule = SplitDesc + ": T1 by " + AxName(T1) +
                        "; prefixes denote the same vertex";
            Out->J.Kind = ProofJustification::Rule::T1PrefixEqual;
            Out->J.SufP = Sp;
            Out->J.SufQ = Sq;
            Out->J.PreP = RPrefP;
            Out->J.PreQ = RPrefQ;
            Out->J.T1 = *T1;
            Out->J.HasT1 = true;
          }
          return true;
        }
      }

      // Step D: distinct-origin disjointness suffices when the prefixes
      // are recursively provably disjoint.
      if (T2 && !(PrefP.empty() && PrefQ.empty())) {
        ProofNode Sub;
        if (prove(Axioms, Goal{PrefP, PrefQ}, Out ? &Sub : nullptr,
                  Depth + 1)) {
          APT_TRACE_EVENT(trace::EventKind::StepD, 0,
                          static_cast<uint32_t>(Depth));
          if (Out) {
            Out->Rule =
                SplitDesc + ": T2 by " + AxName(T2) + "; prefixes disjoint";
            Out->J.Kind = ProofJustification::Rule::T2PrefixDisjoint;
            Out->J.SufP = Sp;
            Out->J.SufQ = Sq;
            Out->J.PreP = componentsToRegex(PrefP);
            Out->J.PreQ = componentsToRegex(PrefQ);
            Out->J.T2 = *T2;
            Out->J.HasT2 = true;
            Out->Children.push_back(
                std::make_unique<ProofNode>(std::move(Sub)));
          }
          return true;
        }
      }
    }
  }
  return false;
}

bool Prover::tryAlternationSplit(const AxiomSet &Axioms, const Goal &G,
                                 ProofNode *Out, size_t Depth) {
  APT_TRACE_SPAN(Span, trace::SpanKind::AltSplit, 0,
                 static_cast<uint32_t>(Depth));
  // Try alternation components right-to-left on each side; every branch
  // must be proven for the split to succeed.
  for (int Side = 0; Side < 2; ++Side) {
    const std::vector<RegexRef> &Comps = Side == 0 ? G.P : G.Q;
    for (size_t RevIdx = Comps.size(); RevIdx-- > 0;) {
      const RegexRef &C = Comps[RevIdx];
      if (C->kind() != RegexKind::Alt)
        continue;
      ++Stats.AltSplits;

      std::vector<std::unique_ptr<ProofNode>> BranchProofs;
      bool AllProven = true;
      for (const RegexRef &Branch : C->children()) {
        // Substitute the branch and re-normalize the component list (the
        // branch may itself be a concatenation or a plus).
        std::vector<RegexRef> NewComps;
        for (size_t K = 0; K < Comps.size(); ++K) {
          if (K == RevIdx) {
            for (const RegexRef &Sub : pathComponents(Branch))
              NewComps.push_back(Sub);
          } else {
            NewComps.push_back(Comps[K]);
          }
        }
        Goal Sub = Side == 0 ? Goal{NewComps, G.Q} : Goal{G.P, NewComps};
        auto Node = Out ? std::make_unique<ProofNode>() : nullptr;
        if (!prove(Axioms, std::move(Sub), Node.get(), Depth + 1)) {
          AllProven = false;
          break;
        }
        if (Node)
          BranchProofs.push_back(std::move(Node));
      }
      if (AllProven) {
        APT_TRACE_EVENT(trace::EventKind::AltSplit, 0,
                        static_cast<uint32_t>(Depth), Side == 0 ? 1 : 0);
        if (Out) {
          Out->Rule = "case split on alternation " + C->toString(Fields) +
                      " (all branches proven)";
          Out->J.Kind = ProofJustification::Rule::AltSplit;
          Out->J.SplitOnP = Side == 0;
          Out->Children = std::move(BranchProofs);
        }
        return true;
      }
    }
  }
  return false;
}

bool Prover::tryKleeneInduction(const AxiomSet &Axioms, const Goal &G,
                                ProofNode *Out, size_t Depth) {
  if (InductionDepth >= Opts.MaxInductionDepth) {
    Poisoned = true;
    APT_TRACE_EVENT(
        trace::EventKind::CachePoisoned, 0, static_cast<uint32_t>(Depth),
        static_cast<uint8_t>(trace::PoisonReason::InductionDepth));
    return false;
  }
  ++InductionDepth;
  bool Ok = tryKleeneInductionImpl(Axioms, G, Out, Depth);
  --InductionDepth;
  return Ok;
}

bool Prover::tryKleeneInductionImpl(const AxiomSet &Axioms, const Goal &G,
                                    ProofNode *Out, size_t Depth) {
  bool PEndsStar = !G.P.empty() && G.P.back()->kind() == RegexKind::Star;
  bool QEndsStar = !G.Q.empty() && G.Q.back()->kind() == RegexKind::Star;

  if (Opts.PaperStyleDoubleKleene && PEndsStar && QEndsStar &&
      trySevenCaseInduction(Axioms, G, Out, Depth))
    return true;

  // Single-star induction on the rightmost star of either side (the
  // seven-case form above is the composition of two of these; running the
  // single form afterwards also covers stars that are not path-final).
  // Sides whose star is the final component are tried first, matching the
  // paper's prefix-final formulation.
  auto StarIdx = [](const std::vector<RegexRef> &Comps) -> int {
    for (size_t RevIdx = Comps.size(); RevIdx-- > 0;)
      if (Comps[RevIdx]->kind() == RegexKind::Star)
        return static_cast<int>(RevIdx);
    return -1;
  };
  int IdxP = StarIdx(G.P), IdxQ = StarIdx(G.Q);
  bool PFirst = PEndsStar || !QEndsStar;
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    bool OnP = (Attempt == 0) == PFirst;
    int Idx = OnP ? IdxP : IdxQ;
    if (Idx < 0)
      continue;
    if (trySingleStarInduction(Axioms, G, OnP, static_cast<size_t>(Idx),
                               Out, Depth))
      return true;
  }
  return false;
}

/// Replaces component \p Idx of \p Comps with \p Replacement (flattened),
/// returning the new component list.
static std::vector<RegexRef>
replaceComponent(const std::vector<RegexRef> &Comps, size_t Idx,
                 const std::vector<RegexRef> &Replacement) {
  std::vector<RegexRef> Out;
  Out.reserve(Comps.size() + Replacement.size());
  for (size_t K = 0; K < Comps.size(); ++K) {
    if (K == Idx) {
      for (const RegexRef &R : Replacement)
        Out.push_back(R);
    } else {
      Out.push_back(Comps[K]);
    }
  }
  return Out;
}

bool Prover::trySingleStarInduction(const AxiomSet &Axioms, const Goal &G,
                                    bool OnP, size_t StarIdx, ProofNode *Out,
                                    size_t Depth) {
  ++Stats.Inductions;
  APT_TRACE_SPAN(Span, trace::SpanKind::StarInduction, 0,
                 static_cast<uint32_t>(Depth));
  APT_TRACE_EVENT(trace::EventKind::StarInduction, 0,
                  static_cast<uint32_t>(Depth), OnP ? 1 : 0,
                  static_cast<uint64_t>(StarIdx));
  const std::vector<RegexRef> &Comps = OnP ? G.P : G.Q;
  RegexRef Star = Comps[StarIdx];
  RegexRef Inner = Star->child();
  std::vector<RegexRef> InnerComps = pathComponents(Inner);

  auto MakeGoal = [&](std::vector<RegexRef> NewSide) {
    return OnP ? Goal{std::move(NewSide), G.Q} : Goal{G.P, std::move(NewSide)};
  };

  // Base case 1: a* replaced by eps.
  Goal BaseEps = MakeGoal(replaceComponent(Comps, StarIdx, {}));
  auto NodeEps = Out ? std::make_unique<ProofNode>() : nullptr;
  if (!prove(Axioms, BaseEps, NodeEps.get(), Depth + 1))
    return false;

  // Base case 2: a* replaced by a.
  Goal BaseOne = MakeGoal(replaceComponent(Comps, StarIdx, InnerComps));
  auto NodeOne = Out ? std::make_unique<ProofNode>() : nullptr;
  if (!prove(Axioms, BaseOne, NodeOne.get(), Depth + 1))
    return false;

  // Inductive step: assume the a*.a instance, prove the a*.a.a instance.
  std::vector<RegexRef> HypRepl{Star};
  HypRepl.insert(HypRepl.end(), InnerComps.begin(), InnerComps.end());
  std::vector<RegexRef> StepRepl = HypRepl;
  StepRepl.insert(StepRepl.end(), InnerComps.begin(), InnerComps.end());

  Goal HypGoal = MakeGoal(replaceComponent(Comps, StarIdx, HypRepl));
  Goal StepGoal = MakeGoal(replaceComponent(Comps, StarIdx, StepRepl));

  Hypothesis H;
  H.Key = goalKey(HypGoal);
  H.P = componentsToRegex(HypGoal.P);
  H.Q = componentsToRegex(HypGoal.Q);
  H.Label = goalStatement(HypGoal);
  ActiveHyps.push_back(H);
  auto NodeStep = Out ? std::make_unique<ProofNode>() : nullptr;
  bool StepOk = prove(Axioms, StepGoal, NodeStep.get(), Depth + 1);
  ActiveHyps.pop_back();
  if (!StepOk)
    return false;

  if (Out) {
    Out->Rule = "induction on " + Star->toString(Fields) +
                (OnP ? " (left path)" : " (right path)");
    Out->J.Kind = ProofJustification::Rule::Induction;
    Out->J.HypP = H.P;
    Out->J.HypQ = H.Q;
    NodeEps->Statement = "[base eps] " + NodeEps->Statement;
    NodeOne->Statement = "[base one] " + NodeOne->Statement;
    NodeStep->Statement = "[step, assuming " + H.Label + "] " +
                          NodeStep->Statement;
    Out->Children.push_back(std::move(NodeEps));
    Out->Children.push_back(std::move(NodeOne));
    Out->Children.push_back(std::move(NodeStep));
  }
  return true;
}

bool Prover::trySevenCaseInduction(const AxiomSet &Axioms, const Goal &G,
                                   ProofNode *Out, size_t Depth) {
  ++Stats.Inductions;
  APT_TRACE_SPAN(Span, trace::SpanKind::SevenCase, 0,
                 static_cast<uint32_t>(Depth));
  APT_TRACE_EVENT(trace::EventKind::SevenCaseInduction, 0,
                  static_cast<uint32_t>(Depth));
  // P = P'.a*, Q = Q'.b*; the paper's seven cases when both paths end in
  // Kleene components (§4.1), with a+ written as a*.a.
  std::vector<RegexRef> PPrefix(G.P.begin(), G.P.end() - 1);
  std::vector<RegexRef> QPrefix(G.Q.begin(), G.Q.end() - 1);
  RegexRef StarA = G.P.back(), StarB = G.Q.back();
  std::vector<RegexRef> A = pathComponents(StarA->child());
  std::vector<RegexRef> B = pathComponents(StarB->child());

  auto WithSuffix = [](const std::vector<RegexRef> &Prefix,
                       std::initializer_list<const std::vector<RegexRef> *>
                           Suffixes) {
    std::vector<RegexRef> Out = Prefix;
    for (const std::vector<RegexRef> *S : Suffixes)
      Out.insert(Out.end(), S->begin(), S->end());
    return Out;
  };
  std::vector<RegexRef> StarAOnly{StarA}, StarBOnly{StarB};

  struct Case {
    const char *Label;
    Goal G;
  };
  // Cases 1-3 plus subcases 4.1-4.3; 4.4 is handled separately because it
  // installs the hypothesis.
  Case Cases[] = {
      {"(eps, eps)", Goal{PPrefix, QPrefix}},
      {"(eps, b+)", Goal{PPrefix, WithSuffix(QPrefix, {&StarBOnly, &B})}},
      {"(a+, eps)", Goal{WithSuffix(PPrefix, {&StarAOnly, &A}), QPrefix}},
      {"(a, b)",
       Goal{WithSuffix(PPrefix, {&A}), WithSuffix(QPrefix, {&B})}},
      {"(a+, b)",
       Goal{WithSuffix(PPrefix, {&StarAOnly, &A}), WithSuffix(QPrefix, {&B})}},
      {"(a, b+)",
       Goal{WithSuffix(PPrefix, {&A}), WithSuffix(QPrefix, {&StarBOnly, &B})}},
  };

  std::vector<std::unique_ptr<ProofNode>> CaseProofs;
  for (Case &C : Cases) {
    auto Node = Out ? std::make_unique<ProofNode>() : nullptr;
    if (!prove(Axioms, C.G, Node.get(), Depth + 1))
      return false;
    if (Node) {
      Node->Statement = "[case " + std::string(C.Label) + "] " +
                        Node->Statement;
      CaseProofs.push_back(std::move(Node));
    }
  }

  // Case 4.4: assume (a+, b+), prove (a+.a, b+.b).
  Goal HypGoal{WithSuffix(PPrefix, {&StarAOnly, &A}),
               WithSuffix(QPrefix, {&StarBOnly, &B})};
  Goal StepGoal{WithSuffix(PPrefix, {&StarAOnly, &A, &A}),
                WithSuffix(QPrefix, {&StarBOnly, &B, &B})};

  Hypothesis H;
  H.Key = goalKey(HypGoal);
  H.P = componentsToRegex(HypGoal.P);
  H.Q = componentsToRegex(HypGoal.Q);
  H.Label = goalStatement(HypGoal);
  ActiveHyps.push_back(H);
  auto NodeStep = Out ? std::make_unique<ProofNode>() : nullptr;
  bool StepOk = prove(Axioms, StepGoal, NodeStep.get(), Depth + 1);
  ActiveHyps.pop_back();
  if (!StepOk)
    return false;

  if (Out) {
    Out->Rule = "seven-case double-Kleene induction on (" +
                StarA->toString(Fields) + ", " + StarB->toString(Fields) +
                ")";
    Out->J.Kind = ProofJustification::Rule::SevenCase;
    Out->J.HypP = H.P;
    Out->J.HypQ = H.Q;
    NodeStep->Statement = "[case (a+.a, b+.b), assuming " + H.Label + "] " +
                          NodeStep->Statement;
    Out->Children = std::move(CaseProofs);
    Out->Children.push_back(std::move(NodeStep));
  }
  return true;
}
