//===- core/DepTest.h - The deptest entry point (paper §4.1) ----*- C++ -*-===//
//
// Part of the APT project; see Prover.h for the proveDisj engine this
// wraps.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence-test driver of paper §4.1. Given two statement
/// executions
///
///     S:  ... p->f ...        T:  ... q->g ...
///
/// with at least one of them writing, `deptest` answers whether a data
/// dependence S -> T may exist:
///
///  * `No` if p and q have different (data-structure) types, or f and g do
///    not overlap, or the prover shows the access paths can never reach
///    the same vertex;
///  * `Yes` if the paths provably always reach the same vertex (identical
///    singleton paths, possibly via equality axioms);
///  * `Maybe` otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_DEPTEST_H
#define APT_CORE_DEPTEST_H

#include "core/AccessPath.h"
#include "core/Axiom.h"
#include "core/Prover.h"

#include <string>
#include <vector>

namespace apt {

/// The three possible answers of the dependence test.
enum class DepVerdict {
  No,    ///< Provably independent.
  Maybe, ///< Dependence neither proven nor refuted.
  Yes,   ///< Provably dependent.
};

const char *depVerdictName(DepVerdict V);

/// Classification of a found/possible dependence by access kinds.
enum class DepKind {
  None,   ///< No dependence (verdict No, or neither side writes).
  Flow,   ///< S writes, T reads.
  Anti,   ///< S reads, T writes.
  Output, ///< Both write.
};

const char *depKindName(DepKind K);

/// One side of a dependence query: the memory reference `ptr->Field`
/// where `ptr` is described by an access path.
struct MemRef {
  std::string TypeName; ///< Data-structure type of the pointer.
  FieldId Field = 0;    ///< Field accessed relative to the pointer.
  AccessPath Path;      ///< Where the pointer may point.
  bool IsWrite = false; ///< Whether the access stores.
};

/// Result of a dependence test, with an explanation for reporting.
struct DepTestResult {
  DepVerdict Verdict = DepVerdict::Maybe;
  DepKind Kind = DepKind::None;
  std::string Reason;    ///< One-line human-readable justification.
  std::string ProofText; ///< Prover proof tree for No verdicts (optional).
};

/// Known relationship between two handles: the vertex named by \p To is
/// reached from the vertex named by \p From along \p Path (a singleton
/// word, since a handle names one vertex).
struct HandleRelation {
  std::string From;
  std::string To;
  RegexRef Path;
};

/// Runs the paper's deptest: S precedes T; at least one must write for a
/// dependence to be possible. \p Axioms must be valid over the whole
/// region between S and T (see AxiomSet::intersectWith for regions that
/// span structural modifications).
DepTestResult dependenceTest(const AxiomSet &Axioms, const MemRef &S,
                             const MemRef &T, Prover &P);

/// The distinct-handle variant the paper sketches in §4.1: when S and T
/// are anchored at different handles, a known relation rebases one path
/// onto the other's handle and the common-handle test proceeds. Without
/// an applicable relation the result is a conservative Maybe.
DepTestResult dependenceTest(const AxiomSet &Axioms, const MemRef &S,
                             const MemRef &T, Prover &P,
                             const std::vector<HandleRelation> &Relations);

} // namespace apt

#endif // APT_CORE_DEPTEST_H
