//===- core/Shapes.h - Shape declarations that generate axioms --*- C++ -*-===//
//
// Part of the APT project; see Axiom.h for the axioms generated here.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §3.2 notes that axioms "can be specified indirectly using a higher
/// level of abstraction, e.g. the ADDS data structure description
/// language". This module is that abstraction layer: common shape
/// declarations expand into the canonical axiom sets the paper writes by
/// hand, so a type can say `shape tree(L, R)` instead of spelling out
/// treeness.
///
/// Generated axioms are exactly the prelude patterns:
///
///   tree(f1..fk)      pairwise same-origin distinctness of the fields,
///                     distinct-origin injectivity of their union, and
///                     acyclicity over them (a rooted k-ary tree).
///   list(f)           injectivity of f plus acyclicity (an acyclic
///                     singly-linked chain).
///   ring(f)           injectivity of f and no self-loop (a cycle of
///                     length >= 2 is permitted).
///   inverse(f, g)     f and g are mutually inverse: p.f.g = p = p.g.f.
///   acyclic(f1..fk)   no path over the fields returns to its origin.
///   disjoint(entry | f1..fk)
///                     distinct `entry` edges lead into disjoint
///                     substructures spanned by the fields.
///
//===----------------------------------------------------------------------===//

#ifndef APT_CORE_SHAPES_H
#define APT_CORE_SHAPES_H

#include "core/Axiom.h"

#include <string>
#include <vector>

namespace apt {

/// Axioms making f1..fk a k-ary tree: per-node children distinct, no
/// sharing between nodes, no cycles. Axiom names get \p Prefix.
std::vector<Axiom> shapeTree(const std::vector<FieldId> &Fields,
                             const std::string &Prefix = "tree");

/// Axioms making \p F an acyclic singly-linked list field.
std::vector<Axiom> shapeList(FieldId F, const std::string &Prefix = "list");

/// Axioms making \p F a cyclic chain of length >= 2 (injective,
/// no self-loop, cycles allowed).
std::vector<Axiom> shapeRing(FieldId F, const std::string &Prefix = "ring");

/// Axioms making \p F and \p G mutual inverses (doubly-linked
/// structures): forall p: p.F.G = p and p.G.F = p.
std::vector<Axiom> shapeInverse(FieldId F, FieldId G,
                                const std::string &Prefix = "inv");

/// The acyclicity axiom over the given fields.
std::vector<Axiom> shapeAcyclic(const std::vector<FieldId> &Fields,
                                const std::string &Prefix = "acyclic");

/// Distinct \p Entry edges lead to disjoint substructures spanned by
/// \p Span: forall p<>q: p.Entry.(Span)* <> q.Entry.(Span)*.
std::vector<Axiom> shapeDisjoint(FieldId Entry,
                                 const std::vector<FieldId> &Span,
                                 const std::string &Prefix = "disj");

/// Parses a shape declaration in the concrete syntax used by the
/// mini-language's `shape ...;` sugar:
///
///   tree(L, R) | list(next) | ring(next) | inverse(next, prev)
///   | acyclic(L, R, N) | disjoint(sub | yL, yR, yN)
///
/// Returns the generated axioms, or an empty vector plus \p Error.
std::vector<Axiom> parseShape(std::string_view Text, FieldTable &Fields,
                              std::string &Error);

} // namespace apt

#endif // APT_CORE_SHAPES_H
