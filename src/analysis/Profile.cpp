//===- analysis/Profile.cpp -----------------------------------------------===//
//
// Part of the APT project; see Profile.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "analysis/Profile.h"

#include "support/Clock.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace apt;
using namespace apt::trace;

namespace {

std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return std::string(Buf);
}

enum class FrameKind : uint8_t { Query, Goal, Span };

/// One open scope during the per-thread replay.
struct Frame {
  FrameKind FK;
  uint8_t Span = 0;       ///< SpanKind payload when FK == Span.
  const char *Name;       ///< Stable rule name ("query", "goal", span kind).
  uint64_t Key = 0;       ///< Query tag or goal hash.
  uint64_t BeginTick = 0;
  uint64_t ChildNs = 0;   ///< Inclusive time of already-closed children.
  /// Subtree self time by rule name; only maintained for query and goal
  /// frames (they own the dominant-rule verdicts).
  std::map<std::string, uint64_t> RuleSelf;
};

/// Goal rows aggregate across occurrences of the same goal hash.
struct GoalAgg {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  std::map<std::string, uint64_t> RuleSelf;
};

const std::string &dominantRule(const std::map<std::string, uint64_t> &M) {
  static const std::string None = "";
  const std::string *Best = &None;
  uint64_t BestNs = 0;
  for (const auto &[Name, Ns] : M)
    if (Ns > BestNs) { // map order makes the smallest name win ties
      Best = &Name;
      BestNs = Ns;
    }
  return *Best;
}

Profile::LatencyStats latencyStats(std::vector<uint64_t> &Durations) {
  Profile::LatencyStats S;
  S.Count = Durations.size();
  if (Durations.empty())
    return S;
  std::sort(Durations.begin(), Durations.end());
  for (uint64_t D : Durations)
    S.TotalNs += D;
  auto Pct = [&](double Q) {
    size_t Rank = static_cast<size_t>(Q * static_cast<double>(S.Count));
    if (static_cast<double>(Rank) < Q * static_cast<double>(S.Count))
      ++Rank; // ceil
    Rank = std::clamp<size_t>(Rank, 1, S.Count);
    return Durations[Rank - 1];
  };
  S.P50Ns = Pct(0.50);
  S.P90Ns = Pct(0.90);
  S.P99Ns = Pct(0.99);
  S.MaxNs = Durations.back();
  return S;
}

JsonValue latencyJson(const Profile::LatencyStats &S,
                      const std::vector<Profile::SlowRow> &Top) {
  JsonValue::Object O;
  O["count"] = JsonValue(S.Count);
  O["total_ns"] = JsonValue(S.TotalNs);
  O["p50_ns"] = JsonValue(S.P50Ns);
  O["p90_ns"] = JsonValue(S.P90Ns);
  O["p99_ns"] = JsonValue(S.P99Ns);
  O["max_ns"] = JsonValue(S.MaxNs);
  JsonValue::Array Rows;
  for (const Profile::SlowRow &R : Top) {
    JsonValue::Object Row;
    Row["key"] = JsonValue(hex64(R.Key));
    Row["count"] = JsonValue(R.Count);
    Row["total_ns"] = JsonValue(R.TotalNs);
    Row["dominant_rule"] = JsonValue(R.DominantRule);
    Rows.push_back(JsonValue(std::move(Row)));
  }
  O["top"] = JsonValue(std::move(Rows));
  return JsonValue(std::move(O));
}

} // namespace

Profile Profile::fromBatches(
    const std::vector<trace::Collector::ThreadBatch> &Batches,
    const ProfileOptions &Opts) {
  Profile P;
  P.Threads = Batches.size();

  std::vector<uint64_t> QueryDurations;
  std::vector<uint64_t> GoalDurations;
  std::vector<SlowRow> QueryRows;
  std::map<uint64_t, GoalAgg> GoalAggs;

  for (const Collector::ThreadBatch &Batch : Batches) {
    P.DroppedEvents += Batch.Dropped;
    std::vector<Frame> Stack;

    // Closes the top frame at \p EndTick, attributing its time upward.
    auto CloseTop = [&](uint64_t EndTick) {
      Frame F = std::move(Stack.back());
      Stack.pop_back();
      uint64_t Total =
          EndTick >= F.BeginTick ? fastclock::ticksToNanos(EndTick - F.BeginTick)
                                 : 0;
      uint64_t Self = Total > F.ChildNs ? Total - F.ChildNs : 0;

      RuleRow &R = P.Rules[F.Name];
      ++R.Count;
      R.SelfNs += Self;
      // gprof-style inclusive time: a recursive re-entry of the same rule
      // only counts at its outermost occurrence.
      bool Recursive = std::any_of(
          Stack.begin(), Stack.end(),
          [&](const Frame &Below) { return Below.Name == F.Name; });
      if (!Recursive)
        R.TotalNs += Total;

      if (F.FK == FrameKind::Span) {
        switch (static_cast<SpanKind>(F.Span)) {
        case SpanKind::CacheLookup:
          P.CacheNs += Self;
          break;
        case SpanKind::LangSubset:
        case SpanKind::LangDisjoint:
          P.LangNs += Self;
          break;
        case SpanKind::Triage:
          P.TriageNs += Self;
          break;
        case SpanKind::Reach:
          P.ReachNs += Self;
          break;
        default:
          P.ProverNs += Self;
          break;
        }
      } else {
        P.ProverNs += Self;
      }

      if (Self > 0) {
        std::string Path;
        for (const Frame &Below : Stack) {
          Path += Below.Name;
          Path += ';';
        }
        Path += F.Name;
        P.Folded[Path] += Self;
      }

      // Dominant-rule bookkeeping: this frame's self time belongs to
      // every enclosing query/goal subtree, and to its own if it is one.
      F.RuleSelf[F.Name] += Self;
      for (Frame &Below : Stack)
        if (Below.FK != FrameKind::Span)
          Below.RuleSelf[F.Name] += Self;

      if (F.FK == FrameKind::Query) {
        QueryDurations.push_back(Total);
        QueryRows.push_back({F.Key, 1, Total, dominantRule(F.RuleSelf)});
      } else if (F.FK == FrameKind::Goal) {
        GoalDurations.push_back(Total);
        bool Outermost = std::none_of(
            Stack.begin(), Stack.end(), [&](const Frame &Below) {
              return Below.FK == FrameKind::Goal && Below.Key == F.Key;
            });
        if (Outermost) {
          GoalAgg &A = GoalAggs[F.Key];
          ++A.Count;
          A.TotalNs += Total;
          for (const auto &[Name, Ns] : F.RuleSelf)
            A.RuleSelf[Name] += Ns;
        }
      }

      if (!Stack.empty())
        Stack.back().ChildNs += Total;
      else
        P.TotalNs += Total;
    };

    // Pops down to (and including) the topmost frame matching \p Match,
    // force-closing anything above it; returns false if none matches.
    auto CloseMatching = [&](uint64_t EndTick, auto Match) {
      size_t I = Stack.size();
      while (I > 0 && !Match(Stack[I - 1]))
        --I;
      if (I == 0)
        return false;
      // Frames above the match lost their end event (ring wrap or an
      // early exit the instrumentation missed); close them here so their
      // time still lands somewhere sensible.
      while (Stack.size() > I) {
        ++P.UnmatchedEvents;
        CloseTop(EndTick);
      }
      CloseTop(EndTick);
      return true;
    };

    for (const Event &E : Batch.Events) {
      if (E.Tick == 0)
        continue; // recorded while timing was off
      ++P.TimedEvents;
      switch (E.Kind) {
      case EventKind::QueryBegin:
        Stack.push_back(
            {FrameKind::Query, 0, "query", E.Aux, E.Tick, 0, {}});
        break;
      case EventKind::GoalBegin:
        Stack.push_back(
            {FrameKind::Goal, 0, "goal", E.GoalHash, E.Tick, 0, {}});
        break;
      case EventKind::SpanBegin:
        Stack.push_back({FrameKind::Span, E.Flag,
                         spanKindName(static_cast<SpanKind>(E.Flag)), 0,
                         E.Tick, 0, {}});
        break;
      case EventKind::QueryEnd:
        if (!CloseMatching(E.Tick, [](const Frame &F) {
              return F.FK == FrameKind::Query;
            }))
          ++P.UnmatchedEvents;
        break;
      case EventKind::GoalEnd:
        if (!CloseMatching(E.Tick, [&](const Frame &F) {
              return F.FK == FrameKind::Goal && F.Key == E.GoalHash;
            }) &&
            !CloseMatching(E.Tick, [](const Frame &F) {
              return F.FK == FrameKind::Goal;
            }))
          ++P.UnmatchedEvents;
        break;
      case EventKind::SpanEnd:
        if (!CloseMatching(E.Tick, [&](const Frame &F) {
              return F.FK == FrameKind::Span && F.Span == E.Flag;
            }))
          ++P.UnmatchedEvents;
        break;
      default:
        break; // point events only contribute their timestamps
      }
    }

    // Begins whose end was lost entirely: count and discard (their time
    // cannot be bounded).
    P.UnmatchedEvents += Stack.size();
  }

  P.Queries = latencyStats(QueryDurations);
  P.Goals = latencyStats(GoalDurations);

  auto SlowOrder = [](const SlowRow &A, const SlowRow &B) {
    if (A.TotalNs != B.TotalNs)
      return A.TotalNs > B.TotalNs;
    return A.Key < B.Key; // deterministic tiebreak
  };
  std::sort(QueryRows.begin(), QueryRows.end(), SlowOrder);
  if (QueryRows.size() > Opts.TopK)
    QueryRows.resize(Opts.TopK);
  P.TopQueries = std::move(QueryRows);

  std::vector<SlowRow> GoalRows;
  GoalRows.reserve(GoalAggs.size());
  for (const auto &[Key, A] : GoalAggs)
    GoalRows.push_back({Key, A.Count, A.TotalNs, dominantRule(A.RuleSelf)});
  std::sort(GoalRows.begin(), GoalRows.end(), SlowOrder);
  if (GoalRows.size() > Opts.TopK)
    GoalRows.resize(Opts.TopK);
  P.TopGoals = std::move(GoalRows);

  return P;
}

Profile Profile::fromCollector(const trace::Collector &C,
                               const ProfileOptions &Opts) {
  return fromBatches(C.snapshot(), Opts);
}

JsonValue Profile::toJson(const std::string &Mode) const {
  JsonValue::Object Root;
  Root["version"] = JsonValue(int64_t{1});
  Root["mode"] = JsonValue(Mode);
  Root["trace_compiled_in"] = JsonValue(APT_TRACE_ENABLED != 0);

  JsonValue::Object Clock;
  Clock["source"] = JsonValue(fastclock::sourceName());
  Clock["ns_per_tick"] = JsonValue(fastclock::nsPerTick());
  Root["clock"] = JsonValue(std::move(Clock));

  Root["threads"] = JsonValue(static_cast<uint64_t>(Threads));
  Root["timed_events"] = JsonValue(TimedEvents);
  Root["dropped_events"] = JsonValue(DroppedEvents);
  Root["unmatched_events"] = JsonValue(UnmatchedEvents);
  Root["total_ns"] = JsonValue(TotalNs);

  JsonValue::Object Phases;
  Phases["prover_ns"] = JsonValue(ProverNs);
  Phases["lang_ns"] = JsonValue(LangNs);
  Phases["cache_ns"] = JsonValue(CacheNs);
  Phases["triage_ns"] = JsonValue(TriageNs);
  Phases["reach_ns"] = JsonValue(ReachNs);
  Root["phases"] = JsonValue(std::move(Phases));

  JsonValue::Object RulesJson;
  for (const auto &[Name, R] : Rules) {
    JsonValue::Object Row;
    Row["count"] = JsonValue(R.Count);
    Row["self_ns"] = JsonValue(R.SelfNs);
    Row["total_ns"] = JsonValue(R.TotalNs);
    RulesJson[Name] = JsonValue(std::move(Row));
  }
  Root["rules"] = JsonValue(std::move(RulesJson));

  Root["queries"] = latencyJson(Queries, TopQueries);
  Root["goals"] = latencyJson(Goals, TopGoals);
  return JsonValue(std::move(Root));
}

std::string Profile::toFolded() const {
  std::string Out;
  for (const auto &[Stack, SelfNs] : Folded) {
    Out += Stack;
    Out += ' ';
    Out += std::to_string(SelfNs);
    Out += '\n';
  }
  return Out;
}

void Profile::publishMetrics() const {
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("apt.prof.total_ns").add(TotalNs);
  Reg.counter("apt.prof.prover_ns").add(ProverNs);
  Reg.counter("apt.prof.lang_ns").add(LangNs);
  Reg.counter("apt.prof.cache_ns").add(CacheNs);
  Reg.counter("apt.prof.triage_ns").add(TriageNs);
  Reg.counter("apt.prof.reach_ns").add(ReachNs);
  Reg.counter("apt.prof.timed_events").add(TimedEvents);
  Reg.counter("apt.prof.unmatched_events").add(UnmatchedEvents);
}
