//===- analysis/DepQueries.h - Program-level dependence queries -*- C++ -*-===//
//
// Part of the APT project; see Collector.h for the analysis feeding these
// queries and core/DepTest.h for the underlying test.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query layer tying the pieces of Figure 4 together: given an
/// analyzed function, answer dependence questions between labeled memory
/// references -- straight-line statement pairs (the §3.3 example) and
/// loop-carried self/cross dependences (the §5 factorization loops) --
/// and classify whole loops as parallelizable.
///
/// Axiom scoping follows §3.4: a query between references in different
/// structural-modification epochs uses the intersection of the axiom sets
/// valid in each epoch. In the simplistic configuration nothing is known
/// after a modification (the intersection is empty); in the
/// invariant-preserving configuration the declared axioms hold in every
/// epoch.
///
//===----------------------------------------------------------------------===//

#ifndef APT_ANALYSIS_DEPQUERIES_H
#define APT_ANALYSIS_DEPQUERIES_H

#include "analysis/Collector.h"
#include "analysis/Triage.h"
#include "core/DepTest.h"
#include "core/Prover.h"
#include "ir/Ast.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace apt {

/// Verdict for a whole loop.
struct LoopParallelism {
  bool Parallelizable = false;
  /// Ref-label pairs whose loop-carried dependence could not be refuted
  /// (empty iff Parallelizable).
  std::vector<std::pair<std::string, std::string>> BlockingPairs;
  /// Number of loop-carried queries answered No.
  int RefutedPairs = 0;
};

/// A statement-pair query reduced to the exact inputs of the core
/// dependence test. Exposed so the batch engine (QueryEngine.h) can
/// deduplicate structurally equal queries -- same scoped axiom set, same
/// memrefs -- before spending prover time, and so its workers can run
/// the prover step on whichever thread claims the query.
struct PreparedQuery {
  /// True when the query was answered during preparation (missing label)
  /// and the prover is not consulted; \p Immediate holds the answer.
  bool Direct = false;
  /// True when the triage cascade (analysis/Triage.h) resolved the pair;
  /// \p Immediate holds the (parity-exact) answer and the prover is not
  /// consulted. Mutually exclusive with Direct.
  bool Triaged = false;
  /// Resolving tier when Triaged (None otherwise).
  TriageTier Tier = TriageTier::None;
  /// The cascade's machine-checkable independence claim and reason
  /// (docs/TRIAGE.md); meaningful only when Triaged.
  bool TriageIndependent = false;
  std::string TriageReason;
  /// Wall time the cascade spent per tier on this pair (0 for tiers not
  /// reached, and everywhere when triage is off). Accumulated into
  /// BatchStats for kills and escalations alike.
  uint64_t TriageNs[3] = {0, 0, 0};
  DepTestResult Immediate;
  AxiomSet Axioms; ///< §3.4 epoch-scoped axioms for this pair.
  MemRef S, T;     ///< The two sides handed to dependenceTest.
};

/// Dependence query engine for one analyzed function.
class DepQueryEngine {
public:
  /// Analyzes \p F immediately. \p Prog and \p Fields must outlive the
  /// engine.
  DepQueryEngine(const Program &Prog, const Function &F, FieldTable &Fields,
                 AnalyzerOptions Opts = {});

  const AnalysisResult &analysis() const { return Result; }

  /// Reduces the (LabelS, LabelT) statement pair to a PreparedQuery:
  /// common-handle selection (with provenance rebasing), §3.4 axiom
  /// scoping, and the no-common-handle fallback. Pure with respect to
  /// the engine's state, so it is safe to call concurrently.
  PreparedQuery prepareStatementPair(const std::string &LabelS,
                                     const std::string &LabelT) const;

  /// Tests whether the statement labeled \p LabelT depends on the one
  /// labeled \p LabelS (S precedes T on a common control path). Uses a
  /// common handle between the two reference's path sets. Equivalent to
  /// preparing the pair and running dependenceTest on the result.
  DepTestResult testStatementPair(const std::string &LabelS,
                                  const std::string &LabelT, Prover &P);

  /// Tests the loop-carried dependence of \p LabelT on \p LabelS at the
  /// level of the loop with statement id \p LoopId: iteration i executes
  /// S, a later iteration j > i executes T.
  DepTestResult testLoopCarried(int LoopId, const std::string &LabelS,
                                const std::string &LabelT, Prover &P);

  /// Statement ids of all loops, outermost first.
  std::vector<int> loopIds() const;

  /// Runs loop-carried tests over every pair of labeled refs in the loop
  /// (both directions); the loop parallelizes iff every pair involving a
  /// write is refuted.
  LoopParallelism analyzeLoopParallelism(int LoopId, Prover &P);

private:
  /// Axioms applicable to a query between \p A and \p B (§3.4 epoch
  /// intersection).
  AxiomSet axiomsFor(const CollectedRef &A, const CollectedRef &B) const;

  /// Runs the triage cascade on the fully prepared pair, filling in the
  /// Triaged outcome fields of \p Out. No-op when triage is disabled.
  void consultTriage(const CollectedRef &RefS, const CollectedRef &RefT,
                     PreparedQuery &Out) const;

  /// True if \p Ref's statement lies (transitively) inside the body of
  /// the loop with statement id \p LoopId.
  bool refInsideLoopBody(int LoopId, const CollectedRef &Ref) const;

  const Program &Prog;
  const Function &Func;
  FieldTable &Fields;
  AnalyzerOptions Opts;
  AnalysisResult Result;
  /// The static triage cascade; null when Opts.Triage is off.
  std::unique_ptr<TriageEngine> Triage;
};

} // namespace apt

#endif // APT_ANALYSIS_DEPQUERIES_H
