//===- analysis/QueryEngine.h - Parallel batch dependence queries -*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch dependence-query engine: answer *every* statement-pair
/// query of a program in one run, on as many threads as the host offers.
///
/// The paper's pitch is that APT is cheap enough to run on all statement
/// pairs of a loop body (§6 reports sub-second totals for whole
/// benchmarks on an 8-PE Sequent); this engine is the compiler-facing
/// realization of that claim:
///
///  1. **Plan** -- enumerate the labeled statement pairs of every
///     function, in deterministic program order.
///  2. **Prepare** -- reduce each pair to the exact inputs of the core
///     dependence test (common-handle selection, §3.4 axiom scoping) via
///     DepQueryEngine::prepareStatementPair. This phase is sequential
///     and cheap.
///  3. **Deduplicate** -- structurally equal prepared queries (same
///     axiom-set fingerprint, types, fields, handles, path keys, access
///     kinds) are proven once and their verdict broadcast. Different
///     labels frequently collapse: every read of `e.val` inside a loop
///     body produces the same prepared query.
///  4. **Fan out** -- unique queries are sorted by descending Kleene
///     weight (stars make proofs expensive: each one may trigger a
///     3-case or 7-case induction) and claimed one at a time from a
///     shared counter by the ThreadPool workers, so the expensive
///     queries start first and a worker finishing a cheap query steals
///     the next unclaimed one (LPT-style self-scheduling,
///     ThreadPool::parallelForDynamic).
///  5. **Share** -- each worker runs a private Prover (its search state
///     is inherently sequential) attached to two cross-thread sharded
///     caches (support/ShardedCache.h): proven/refuted goals and
///     language-query answers settled by one worker are free for all
///     others. Worker counters are merged into BatchStats on quiesce.
///
/// Results are returned in plan order, independent of the thread count;
/// verdicts are identical to a sequential run (the caches store only
/// order-independent facts -- see Prover::attachSharedGoalCache).
///
//===----------------------------------------------------------------------===//

#ifndef APT_ANALYSIS_QUERYENGINE_H
#define APT_ANALYSIS_QUERYENGINE_H

#include "analysis/DepQueries.h"
#include "support/ShardedCache.h"

#include <memory>
#include <string>
#include <vector>

namespace apt {

class ReachEngine;

/// One statement-pair dependence question of a batch.
struct BatchQuery {
  std::string Func;   ///< Function containing both labels.
  std::string LabelS; ///< Earlier statement (program order).
  std::string LabelT; ///< Later statement.
};

/// Answer to one BatchQuery, in the same order as the request.
struct BatchResult {
  BatchQuery Query;
  DepTestResult Result;
};

/// Per-run instrumentation of the batch engine. All counters are
/// cumulative over the engine's lifetime (every run() call adds to
/// them), so they are monotone -- tests and dashboards may assert that.
struct BatchStats {
  uint64_t Queries = 0;       ///< Pairs answered (incl. duplicates).
  uint64_t UniqueQueries = 0; ///< Distinct prepared queries proven.
  uint64_t DirectQueries = 0; ///< Answered during preparation.
  uint64_t DedupSaved = 0;    ///< Prover runs avoided by deduplication.

  /// Triage cascade accounting (docs/TRIAGE.md). A *triaged* pair is one
  /// the static cascade resolved during preparation, so it never entered
  /// dedup or the prover fan-out; an *escalated* pair ran the cascade
  /// without a resolution and continued to the prover.
  uint64_t TriagedPairs = 0;    ///< Pairs resolved by any triage tier.
  uint64_t TriageT1 = 0;        ///< Resolved by type/field/access screens.
  uint64_t TriageT2 = 0;        ///< Resolved by distinct-allocation facts.
  uint64_t TriageT3 = 0;        ///< Resolved by the points-to pass.
  uint64_t TriageEscalated = 0; ///< Cascade ran but had to escalate.
  uint64_t TriageT1Ns = 0;      ///< Wall time spent in tier 1.
  uint64_t TriageT2Ns = 0;      ///< Wall time spent in tier 2.
  uint64_t TriageT3Ns = 0;      ///< Wall time spent in tier 3.

  /// Reachability pre-pass accounting (docs/REACHABILITY.md). A *reach*
  /// pair is one the model-based engine resolved during preparation
  /// (after triage, before dedup), byte-identical to the prover's answer;
  /// an escalated pair consulted the engine without a resolution.
  uint64_t ReachPairs = 0;     ///< Pairs resolved by the reach pre-pass.
  uint64_t ReachYes = 0;       ///< ... with a definite-dependence verdict.
  uint64_t ReachMaybe = 0;     ///< ... with an overlap-witnessed Maybe.
  uint64_t ReachEscalated = 0; ///< Pre-pass ran but had to escalate.
  uint64_t ReachModels = 0;    ///< Satisfying models the engine has built.
  uint64_t ReachNs = 0;        ///< Wall time spent in the pre-pass.

  /// Merged per-worker prover counters (GoalsExplored, GoalCacheHits,
  /// SharedGoalHits, ...).
  ProverStats Prover;
  /// Merged per-worker language-query counters.
  uint64_t LangQueries = 0;
  uint64_t LangCacheHits = 0;
  uint64_t LangSharedHits = 0;
  uint64_t DfaBuilt = 0;
  uint64_t DfaStatesBuilt = 0;  ///< Subset-construction states compiled.
  uint64_t DfaMinStates = 0;    ///< States surviving Hopcroft minimization.
  uint64_t DfaStoreHits = 0;    ///< Automata reused from the interned store.
  uint64_t AlphabetSymbols = 0; ///< Raw union-alphabet symbols per product.
  uint64_t AlphabetClasses = 0; ///< Compressed pair classes per product.
  uint64_t ProductStates = 0;   ///< Pair states the lazy product visited.

  /// Snapshots of the two cross-thread caches (lifetime-monotone).
  ShardedBoolCache::Stats GoalCache;
  ShardedBoolCache::Stats LangCache;
  uint64_t GoalCacheEntries = 0;
  uint64_t LangCacheEntries = 0;

  double WallMs = 0; ///< Elapsed time of the proving phases.
  double CpuMs = 0;  ///< Process CPU time of the proving phases.
  unsigned Jobs = 1; ///< Worker threads used by the last run.

  /// Per-phase wall-time attribution of run() (cumulative, like every
  /// other field): sequential prepare/dedup, parallel prove fan-out
  /// (same window WallMs covers), sequential verdict broadcast. Also
  /// published as apt.prof.{prepare,prove,broadcast}_us histograms.
  double PrepareMs = 0;
  double ProveMs = 0;
  double BroadcastMs = 0;

  /// Fraction of prover-bound queries answered by deduplication.
  /// Triaged pairs never reach dedup, so they are excluded from the
  /// denominator alongside direct answers.
  double dedupRatio() const {
    uint64_t Provable = Queries - DirectQueries - TriagedPairs;
    return Provable ? static_cast<double>(DedupSaved) / Provable : 0.0;
  }

  /// Multi-line human-readable block (the `aptc deps --stats` output).
  std::string toString() const;

  /// The activity between \p Base (an earlier stats() snapshot of the
  /// same engine) and this snapshot: monotone counters and phase times
  /// subtract, point-in-time fields (cache entry counts, Jobs) keep
  /// their current value. since(BatchStats{}) is the identity, so a
  /// fresh engine's first run reports the same block either way — which
  /// is how the service layer keeps daemon-routed `--stats` per-request
  /// while one-shot output stays byte-identical.
  BatchStats since(const BatchStats &Base) const;
};

/// Options for a batch run.
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  /// Jobs == 1 runs on the calling thread with no pool.
  unsigned Jobs = 0;
  AnalyzerOptions Analyzer;
  ProverOptions Prover;
  /// Cross-thread caches to use instead of the engine's own. The service
  /// layer points resident engines at session-owned caches so warmth
  /// survives engine reconstruction and snapshots can serialize it; both
  /// must outlive the engine. nullptr (the default) keeps the engine's
  /// private caches — behaviorally identical for a single engine, since
  /// a fresh session cache starts as empty as a fresh engine cache.
  ShardedBoolCache *ExternalGoalCache = nullptr;
  ShardedBoolCache *ExternalLangCache = nullptr;
};

/// Whole-program batch engine. Analyzes every function up front (the
/// sequential phase) and then answers dependence queries in parallel.
/// The shared caches live as long as the engine, so successive run()
/// calls start warm.
class BatchQueryEngine {
public:
  /// Analyzes every function of \p Prog immediately. \p Prog and
  /// \p Fields must outlive the engine. No field interning happens after
  /// construction, which is what makes the parallel phase safe.
  BatchQueryEngine(const Program &Prog, FieldTable &Fields,
                   BatchOptions Opts = {});
  ~BatchQueryEngine();

  /// Every labeled statement pair of every function: functions in
  /// program order, labels ordered by (statement id, label), all pairs
  /// (i, j) with i < j. Deterministic.
  std::vector<BatchQuery> plan() const;

  /// Answers \p Queries; the result vector is index-aligned with the
  /// request and identical for every Jobs value.
  std::vector<BatchResult> run(const std::vector<BatchQuery> &Queries);

  /// run(plan()).
  std::vector<BatchResult> runAll() { return run(plan()); }

  /// Number of worker threads the next run will use.
  unsigned jobs() const;

  /// Changes the worker count for subsequent run() calls. Verdicts are
  /// jobs-invariant, so a resident engine can serve requests with
  /// different --jobs values without re-analyzing the program.
  void setJobs(unsigned J) { Opts.Jobs = J; }

  const BatchStats &stats() const { return Stats; }

  /// The options this engine was built with. Trace export uses these to
  /// construct a matching fresh prover when re-proving No verdicts into
  /// self-contained proof records.
  const BatchOptions &options() const { return Opts; }

  /// Per-function analyses, e.g. for rendering dumps alongside verdicts.
  const DepQueryEngine *engineFor(const std::string &Func) const;

private:
  const Program &Prog;
  FieldTable &Fields;
  BatchOptions Opts;
  /// One analyzed engine per function, in program order.
  std::vector<std::pair<std::string, std::unique_ptr<DepQueryEngine>>>
      Engines;
  ShardedBoolCache OwnGoals;
  ShardedBoolCache OwnLang;
  /// Resolved cache targets: the external overrides from BatchOptions,
  /// or the engine's own caches above.
  ShardedBoolCache *SharedGoals;
  ShardedBoolCache *SharedLang;
  /// Lazily constructed reachability engine for the pre-pass (only when
  /// AnalyzerOptions::ReachPrepass is on). Consulted exclusively from the
  /// sequential prepare phase, which keeps verdicts jobs-invariant.
  std::unique_ptr<ReachEngine> Reach;
  BatchStats Stats;
};

} // namespace apt

#endif // APT_ANALYSIS_QUERYENGINE_H
