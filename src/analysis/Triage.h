//===- analysis/Triage.h - Tiered static triage cascade --------*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static triage cascade that runs on each PreparedQuery before any
/// prover time is spent (docs/TRIAGE.md): a sequence of increasingly
/// expensive conservative filters, cheapest first, each able to resolve
/// a pair outright or pass it to the next tier.
///
///   * **T1 -- access-kind and type/field vocabulary.** Replays the
///     deptest screens: two reads never conflict; references into
///     different structure types or to non-overlapping fields cannot
///     alias. Byte-identical to the result `dependenceTest` would
///     return, so resolving here changes no output.
///   * **T2 -- distinct allocation sites.** Consults the Collector's
///     provenance facts: a reference whose base pointer carries an
///     epsilon-path entry for a handle born at a `new` statement
///     definitely names that allocation's vertex. Two such references
///     with disjoint allocation sites can never touch the same vertex
///     (distinct `new`s return distinct objects, in every execution).
///   * **T3 -- Steensgaard points-to classes.** Consults the per-function
///     unification pass (PointsTo.h): base pointers in different
///     points-to classes cannot point to the same vertex.
///
/// T2 and T3 only run on pairs whose prepared access paths are anchored
/// at *distinct* handles -- exactly the pairs `dependenceTest` answers
/// with its conservative "unrelated handles" Maybe before reaching the
/// prover. The cascade therefore emits that same Maybe result (verdict
/// parity with --triage=off is a hard invariant, enforced by the
/// aptc_deps_triage_parity ctest) while recording the machine-checkable
/// independence claim in TriageOutcome::Independent / ::Reason; the
/// differential suite cross-checks those claims against bounded concrete
/// interpretation. Pairs sharing a handle are real prover work and
/// always escalate past T1.
///
//===----------------------------------------------------------------------===//

#ifndef APT_ANALYSIS_TRIAGE_H
#define APT_ANALYSIS_TRIAGE_H

#include "analysis/Collector.h"
#include "analysis/PointsTo.h"
#include "core/DepTest.h"

#include <cstdint>
#include <map>
#include <string>

namespace apt {

/// Which tier resolved a pair (None = escalated to the prover).
enum class TriageTier : uint8_t { None = 0, T1 = 1, T2 = 2, T3 = 3 };

/// Stable lowercase identifier ("t1", ...; "escalated" for None).
const char *triageTierName(TriageTier T);

/// Outcome of running the cascade on one prepared pair.
struct TriageOutcome {
  /// True when a tier produced the final DepTestResult; false = escalate.
  bool Resolved = false;
  TriageTier Tier = TriageTier::None;
  /// The machine-checkable claim: the two references never conflict,
  /// i.e. in no execution do they touch the same (vertex, field) cell
  /// with at least one of them writing. True for every resolving tier
  /// (T1 rejections and the T2/T3 distinct-vertex proofs alike); the
  /// differential suite checks it against concrete interpretation.
  bool Independent = false;
  /// Machine-checkable rejection reason, e.g. "t2:distinct-alloc #3 vs
  /// #5". Stable prefix per tier; cross-checked by the differential
  /// suite.
  std::string Reason;
  /// The exact result to emit -- byte-identical to what dependenceTest
  /// would have returned for this PreparedQuery.
  DepTestResult Result;
  /// Wall time spent inside each tier that ran, in nanoseconds
  /// (index 0 = T1). Tiers not reached stay 0.
  uint64_t TierNs[3] = {0, 0, 0};
};

/// The cascade for one analyzed function. Construction runs the
/// Steensgaard pass; triage() is const and safe to call concurrently.
class TriageEngine {
public:
  /// \p Prog, \p Fields and \p Analysis must outlive the engine (the
  /// owning DepQueryEngine guarantees this).
  TriageEngine(const Program &Prog, const Function &F,
               const FieldTable &Fields, const AnalysisResult &Analysis);

  /// Runs the cascade on the pair (\p RefS, \p RefT) as prepared into
  /// the memrefs (\p S, \p T) by prepareStatementPair.
  TriageOutcome triage(const CollectedRef &RefS, const CollectedRef &RefT,
                       const MemRef &S, const MemRef &T) const;

  const PointsToGraph &pointsTo() const { return PT; }

private:
  /// Base pointer variable of the labeled reference, or nullptr.
  const std::string *baseVarOf(const std::string &Label) const;
  void indexLabels(const std::vector<StmtPtr> &Body);

  const FieldTable &Fields;
  const AnalysisResult &Analysis;
  PointsToGraph PT;
  /// Label -> base pointer variable of the labeled memory reference.
  std::map<std::string, std::string> LabelBase;
};

} // namespace apt

#endif // APT_ANALYSIS_TRIAGE_H
