//===- analysis/Profile.h - Time-attribution profile aggregation -*- C++ -*-===//
//
// Part of the APT project: a reproduction of Hummel, Hendren & Nicolau,
// "A General Data Dependence Test for Dynamic, Pointer-Based Data
// Structures" (PLDI 1994).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cold path of the time-attribution profiler: folds the timed event
/// batches a traced run left in its trace::Collector into per-rule
/// latency aggregates. The hot path only ever stamps raw TSC ticks into
/// ring events (support/Clock.h, support/Trace.h); everything expensive
/// -- tick-to-nanosecond conversion, span matching, stack reconstruction,
/// sorting -- happens here, once, after the worker pool has joined.
///
/// Each thread batch is replayed in recording order against a frame
/// stack. QueryBegin/QueryEnd, GoalBegin/GoalEnd and SpanBegin/SpanEnd
/// open and close frames; every other event is a point event and only
/// contributes its timestamp. Closing a frame yields its *total* time
/// (end minus begin) and *self* time (total minus time spent in child
/// frames), which feed:
///
///   * per-rule rows: count / self_ns / total_ns per frame name, with
///     gprof-style totals (recursive re-entries of a name only count the
///     outermost occurrence, so total_ns never exceeds wall time);
///   * phase buckets: prover vs language ops vs cache-probe self time;
///   * exact latency percentiles (p50/p90/p99) over per-query and
///     per-goal durations, from the sorted duration vectors;
///   * top-K slowest queries and goals, each with its dominant rule
///     (the frame name with the most self time in its subtree);
///   * collapsed call stacks ("query;goal;suffix_splits 1234") in the
///     standard flamegraph folded format, weighted by self nanoseconds.
///
/// The folder is tolerant of the ways real rings degrade: events with
/// Tick == 0 (recorded while timing was off) are ignored, unmatched ends
/// (begin lost to ring wrap-around) are counted and skipped, and frames
/// still open at batch end (end lost) are discarded after counting.
///
/// `aptc prove|deps --profile=<file>` serializes toJson() (shape pinned
/// by docs/profile_schema.json); `--profile-folded=<file>` writes
/// toFolded() for `flamegraph.pl` / speedscope.
///
//===----------------------------------------------------------------------===//

#ifndef APT_ANALYSIS_PROFILE_H
#define APT_ANALYSIS_PROFILE_H

#include "support/Json.h"
#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apt {

/// Knobs for Profile::fromBatches.
struct ProfileOptions {
  size_t TopK = 10; ///< Rows kept in the slow-query / slow-goal tables.
};

/// Aggregated time attribution for one traced run.
class Profile {
public:
  /// One per-rule aggregate row (keyed by frame name in Rules).
  struct RuleRow {
    uint64_t Count = 0;   ///< Frames closed under this name.
    uint64_t SelfNs = 0;  ///< Time in the frame minus its children.
    uint64_t TotalNs = 0; ///< Inclusive time; outermost occurrences only.
  };

  /// One slow-query / slow-goal table row.
  struct SlowRow {
    uint64_t Key = 0;     ///< Query tag (QueryBegin Aux) or goal hash.
    uint64_t Count = 0;   ///< Frames merged into the row (1 for queries).
    uint64_t TotalNs = 0; ///< Inclusive time, summed over occurrences.
    std::string DominantRule; ///< Most self time in the row's subtree.
  };

  /// Exact order statistics over a duration population.
  struct LatencyStats {
    uint64_t Count = 0;
    uint64_t TotalNs = 0;
    uint64_t P50Ns = 0;
    uint64_t P90Ns = 0;
    uint64_t P99Ns = 0;
    uint64_t MaxNs = 0;
  };

  /// Folds \p Batches (recording order per batch, as the collector hands
  /// them out) into an aggregate profile. Pure function of its inputs.
  static Profile fromBatches(
      const std::vector<trace::Collector::ThreadBatch> &Batches,
      const ProfileOptions &Opts = {});

  /// Convenience: snapshots \p C (leaving it intact for the trace
  /// writer's drain) and folds the copy.
  static Profile fromCollector(const trace::Collector &C,
                               const ProfileOptions &Opts = {});

  std::map<std::string, RuleRow> Rules; ///< Keyed by frame name.

  uint64_t ProverNs = 0; ///< Self time in prover rule frames.
  uint64_t LangNs = 0;   ///< Self time in lang_subset/lang_disjoint.
  uint64_t CacheNs = 0;  ///< Self time in cache_lookup frames.
  uint64_t TriageNs = 0; ///< Self time in triage cascade frames.
  uint64_t ReachNs = 0;  ///< Self time in reachability pre-pass frames.

  LatencyStats Queries;            ///< Over per-query durations.
  LatencyStats Goals;              ///< Over per-goal-frame durations.
  std::vector<SlowRow> TopQueries; ///< Slowest first, <= Opts.TopK rows.
  std::vector<SlowRow> TopGoals;   ///< Slowest first, <= Opts.TopK rows.

  /// Collapsed stacks: "query;goal;suffix_splits" -> self nanoseconds.
  std::map<std::string, uint64_t> Folded;

  uint64_t TotalNs = 0;         ///< Sum of root-frame inclusive times.
  uint64_t DroppedEvents = 0;   ///< Ring wrap-around losses (from batches).
  uint64_t UnmatchedEvents = 0; ///< Ends without begins + begins never closed.
  uint64_t TimedEvents = 0;     ///< Events with a nonzero timestamp.
  size_t Threads = 0;           ///< Batches folded.

  /// True when any rule accumulated nonzero self time (i.e. the run was
  /// actually traced in timed mode on a build with tracing compiled in).
  bool hasSamples() const { return TotalNs != 0; }

  /// Schema-pinned JSON document (docs/profile_schema.json). \p Mode
  /// mirrors the trace header: "prove", "pair" or "batch".
  JsonValue toJson(const std::string &Mode) const;

  /// Flamegraph folded format: one "stack self_ns" line per entry of
  /// Folded, sorted by stack for determinism.
  std::string toFolded() const;

  /// Publishes the aggregate as apt.prof.* metrics on the global
  /// registry (phase self times, total, unmatched/timed event counts)
  /// so --metrics-json and deps --stats surface the breakdown.
  void publishMetrics() const;
};

} // namespace apt

#endif // APT_ANALYSIS_PROFILE_H
