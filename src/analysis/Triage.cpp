//===- analysis/Triage.cpp ------------------------------------------------===//
//
// Part of the APT project; see Triage.h for the tier contracts and
// docs/TRIAGE.md for the soundness argument per tier.
//
//===----------------------------------------------------------------------===//

#include "analysis/Triage.h"

#include <chrono>
#include <set>

using namespace apt;

const char *apt::triageTierName(TriageTier T) {
  switch (T) {
  case TriageTier::None:
    return "escalated";
  case TriageTier::T1:
    return "t1";
  case TriageTier::T2:
    return "t2";
  case TriageTier::T3:
    return "t3";
  }
  return "unknown";
}

TriageEngine::TriageEngine(const Program &Prog, const Function &F,
                           const FieldTable &Fields,
                           const AnalysisResult &Analysis)
    : Fields(Fields), Analysis(Analysis), PT(Prog, F) {
  indexLabels(F.Body);
}

void TriageEngine::indexLabels(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &SP : Body) {
    const Stmt &S = *SP;
    if (!S.Label.empty()) {
      switch (S.Kind) {
      case StmtKind::DataRead:
      case StmtKind::DataWrite:
      case StmtKind::StructWrite:
        LabelBase[S.Label] = S.Base;
        break;
      case StmtKind::PtrAssign:
        // A labeled `p = q.f` records its field read against base q.
        if (S.Rhs == PtrRhsKind::VarField)
          LabelBase[S.Label] = S.RhsVar;
        break;
      default:
        break;
      }
    }
    indexLabels(S.Body);
    indexLabels(S.Else);
  }
}

const std::string *TriageEngine::baseVarOf(const std::string &Label) const {
  auto It = LabelBase.find(Label);
  return It == LabelBase.end() ? nullptr : &It->second;
}

namespace {

/// Mirrors DepTest's classify(): the access-kind component of tier 1.
DepKind classifyKinds(const MemRef &S, const MemRef &T) {
  if (S.IsWrite && T.IsWrite)
    return DepKind::Output;
  if (S.IsWrite)
    return DepKind::Flow;
  if (T.IsWrite)
    return DepKind::Anti;
  return DepKind::None;
}

/// Allocation sites the reference's base pointer *definitely* names: an
/// APM entry (H, epsilon) means the base is exactly handle H's vertex
/// (every recorded entry holds simultaneously -- Apm.h), and a handle
/// born at a `new` statement names that allocation. All sites in the
/// returned set denote the same vertex, so any disjointness against the
/// other side's set is decisive.
std::set<int> definiteAllocSites(const CollectedRef &Ref,
                                 const AnalysisResult &Analysis) {
  std::set<int> Sites;
  for (const auto &[Handle, Path] : Ref.Paths) {
    if (!Path->isEpsilon())
      continue;
    auto It = Analysis.HandleAllocSite.find(Handle);
    if (It != Analysis.HandleAllocSite.end())
      Sites.insert(It->second);
  }
  return Sites;
}

uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace

TriageOutcome TriageEngine::triage(const CollectedRef &RefS,
                                   const CollectedRef &RefT, const MemRef &S,
                                   const MemRef &T) const {
  TriageOutcome Out;

  // --- Tier 1: access kinds and type/field vocabulary. Replays the
  // deptest screens verbatim (Reason strings included), so a T1 kill is
  // byte-identical to the untriaged answer.
  auto T1Start = std::chrono::steady_clock::now();
  DepKind Kind = classifyKinds(S, T);
  if (Kind == DepKind::None) {
    Out.Resolved = true;
    Out.Tier = TriageTier::T1;
    Out.Independent = true;
    Out.Reason = "t1:no-write";
    Out.Result.Verdict = DepVerdict::No;
    Out.Result.Kind = DepKind::None;
    Out.Result.Reason = "neither reference writes";
    Out.TierNs[0] = nanosSince(T1Start);
    return Out;
  }
  if (S.TypeName != T.TypeName) {
    Out.Resolved = true;
    Out.Tier = TriageTier::T1;
    Out.Independent = true;
    Out.Reason =
        "t1:type-disjoint '" + S.TypeName + "' vs '" + T.TypeName + "'";
    Out.Result.Verdict = DepVerdict::No;
    Out.Result.Kind = DepKind::None;
    Out.Result.Reason = "pointers have different data-structure types ('" +
                        S.TypeName + "' vs '" + T.TypeName + "')";
    Out.TierNs[0] = nanosSince(T1Start);
    return Out;
  }
  if (S.Field != T.Field) {
    Out.Resolved = true;
    Out.Tier = TriageTier::T1;
    Out.Independent = true;
    Out.Reason = "t1:field-disjoint '" + Fields.name(S.Field) + "' vs '" +
                 Fields.name(T.Field) + "'";
    Out.Result.Verdict = DepVerdict::No;
    Out.Result.Kind = DepKind::None;
    Out.Result.Reason = "accessed fields do not overlap";
    Out.TierNs[0] = nanosSince(T1Start);
    return Out;
  }
  Out.TierNs[0] = nanosSince(T1Start);

  // Pairs sharing a handle are genuine prover work (equality and
  // disjointness proofs over a common anchor); the cascade never
  // resolves them. T2/T3 only rule on distinct-handle pairs, where the
  // untriaged test answers a conservative Maybe before any prover time
  // -- the cascade emits that exact Maybe while recording its stronger
  // internal independence claim.
  if (S.Path.Handle == T.Path.Handle)
    return Out;
  DepTestResult Unrelated;
  Unrelated.Verdict = DepVerdict::Maybe;
  Unrelated.Kind = Kind;
  Unrelated.Reason = "access paths are anchored at unrelated handles ('" +
                     S.Path.Handle + "' vs '" + T.Path.Handle + "')";

  // --- Tier 2: distinct allocation sites from Collector provenance.
  auto T2Start = std::chrono::steady_clock::now();
  std::set<int> SitesS = definiteAllocSites(RefS, Analysis);
  std::set<int> SitesT = definiteAllocSites(RefT, Analysis);
  bool Disjoint = !SitesS.empty() && !SitesT.empty();
  for (int Site : SitesS)
    if (SitesT.count(Site))
      Disjoint = false;
  if (Disjoint) {
    Out.Resolved = true;
    Out.Tier = TriageTier::T2;
    Out.Independent = true;
    Out.Reason = "t2:distinct-alloc #" + std::to_string(*SitesS.begin()) +
                 " vs #" + std::to_string(*SitesT.begin());
    Out.Result = Unrelated;
    Out.TierNs[1] = nanosSince(T2Start);
    return Out;
  }
  Out.TierNs[1] = nanosSince(T2Start);

  // --- Tier 3: Steensgaard points-to classes.
  auto T3Start = std::chrono::steady_clock::now();
  const std::string *BaseS = baseVarOf(RefS.Label);
  const std::string *BaseT = baseVarOf(RefT.Label);
  if (BaseS && BaseT) {
    int ClassS = PT.classOf(*BaseS);
    int ClassT = PT.classOf(*BaseT);
    if (ClassS >= 0 && ClassT >= 0 && ClassS != ClassT) {
      Out.Resolved = true;
      Out.Tier = TriageTier::T3;
      Out.Independent = true;
      Out.Reason = "t3:points-to class " + std::to_string(ClassS) + " vs " +
                   std::to_string(ClassT);
      Out.Result = Unrelated;
      Out.TierNs[2] = nanosSince(T3Start);
      return Out;
    }
  }
  Out.TierNs[2] = nanosSince(T3Start);
  return Out; // escalate
}
