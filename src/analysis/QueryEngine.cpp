//===- analysis/QueryEngine.cpp -------------------------------------------===//
//
// Part of the APT project; see QueryEngine.h for the threading model.
//
//===----------------------------------------------------------------------===//

#include "analysis/QueryEngine.h"

#include "parallel/ThreadPool.h"
#include "reach/ReachEngine.h"
#include "regex/Minimize.h"
#include "support/Arena.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>
#include <unordered_map>

using namespace apt;

BatchQueryEngine::BatchQueryEngine(const Program &Prog, FieldTable &Fields,
                                   BatchOptions Opts)
    : Prog(Prog), Fields(Fields), Opts(Opts),
      // Shard counts sized for tens of threads; see ShardedCache.h.
      OwnGoals(32), OwnLang(64),
      SharedGoals(Opts.ExternalGoalCache ? Opts.ExternalGoalCache : &OwnGoals),
      SharedLang(Opts.ExternalLangCache ? Opts.ExternalLangCache : &OwnLang) {
  for (const Function &F : Prog.Functions)
    Engines.emplace_back(F.Name, std::make_unique<DepQueryEngine>(
                                     Prog, F, Fields, Opts.Analyzer));
}

BatchQueryEngine::~BatchQueryEngine() = default;

unsigned BatchQueryEngine::jobs() const {
  if (Opts.Jobs > 0)
    return Opts.Jobs;
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

const DepQueryEngine *
BatchQueryEngine::engineFor(const std::string &Func) const {
  for (const auto &[Name, Engine] : Engines)
    if (Name == Func)
      return Engine.get();
  return nullptr;
}

std::vector<BatchQuery> BatchQueryEngine::plan() const {
  std::vector<BatchQuery> Out;
  for (const auto &[Name, Engine] : Engines) {
    // Order labels by program position (statement id), then by label so
    // two labels on one statement still order deterministically.
    std::vector<std::pair<int, std::string>> Labels;
    for (const auto &[Label, Ref] : Engine->analysis().Refs)
      Labels.emplace_back(Ref.StmtId, Label);
    std::sort(Labels.begin(), Labels.end());
    for (size_t I = 0; I < Labels.size(); ++I)
      for (size_t J = I + 1; J < Labels.size(); ++J)
        Out.push_back({Name, Labels[I].second, Labels[J].second});
  }
  return Out;
}

namespace {

/// Number of Kleene (Star/Plus) nodes in \p R. The scheduling weight of
/// a query: every star can trigger a 3-case or 7-case induction, so
/// star-heavy queries dominate wall time and must start first.
size_t kleeneWeight(const RegexRef &R) {
  size_t N = (R->kind() == RegexKind::Star || R->kind() == RegexKind::Plus)
                 ? 1
                 : 0;
  for (const RegexRef &C : R->children())
    N += kleeneWeight(C);
  return N;
}

/// Structural identity key of a prepared query: two queries with equal
/// keys produce byte-identical DepTestResults (up to ProofText, which
/// may legally cite the goal cache), so one prover run answers both.
std::string queryKey(const PreparedQuery &Q) {
  std::string Key = std::to_string(Prover::axiomSetFingerprint(Q.Axioms));
  for (const MemRef *M : {&Q.S, &Q.T}) {
    Key += "\x1f" + M->TypeName;
    Key += "\x1f" + std::to_string(M->Field);
    Key += "\x1f" + M->Path.Handle;
    Key += "\x1f" + M->Path.Path->key();
    Key += M->IsWrite ? "\x1fw" : "\x1fr";
  }
  return Key;
}

struct Task {
  PreparedQuery Prepared;
  size_t Weight = 0;    ///< Combined Kleene weight of both paths.
  size_t FirstSlot = 0; ///< Earliest result index, for stable ordering.
  std::vector<size_t> Slots; ///< Result indices this task answers.
  DepTestResult Result;
};

} // namespace

std::vector<BatchResult>
BatchQueryEngine::run(const std::vector<BatchQuery> &Queries) {
  std::vector<BatchResult> Results(Queries.size());
  Stats.Queries += Queries.size();
  uint64_t DirectBase = Stats.DirectQueries;
  uint64_t DedupBase = Stats.DedupSaved;
  uint64_t TriagedBase = Stats.TriagedPairs;
  uint64_t TriageT1Base = Stats.TriageT1;
  uint64_t TriageT2Base = Stats.TriageT2;
  uint64_t TriageT3Base = Stats.TriageT3;
  uint64_t EscalatedBase = Stats.TriageEscalated;
  uint64_t ReachBase = Stats.ReachPairs;
  uint64_t ReachYesBase = Stats.ReachYes;
  uint64_t ReachMaybeBase = Stats.ReachMaybe;
  uint64_t ReachEscBase = Stats.ReachEscalated;
  uint64_t ReachNsBase = Stats.ReachNs;

  // Phase 1 (sequential): prepare and deduplicate.
  auto PrepareStart = std::chrono::steady_clock::now();
  std::vector<Task> Tasks;
  std::unordered_map<std::string, size_t> TaskIndex;
  for (size_t I = 0; I < Queries.size(); ++I) {
    const BatchQuery &Q = Queries[I];
    Results[I].Query = Q;
    const DepQueryEngine *Engine = engineFor(Q.Func);
    PreparedQuery P;
    if (!Engine) {
      P.Direct = true;
      P.Immediate.Verdict = DepVerdict::Maybe;
      P.Immediate.Reason = "no function named '" + Q.Func + "'";
    } else {
      P = Engine->prepareStatementPair(Q.LabelS, Q.LabelT);
    }
    if (P.Direct) {
      ++Stats.DirectQueries;
      Results[I].Result = P.Immediate;
      continue;
    }
    Stats.TriageT1Ns += P.TriageNs[0];
    Stats.TriageT2Ns += P.TriageNs[1];
    Stats.TriageT3Ns += P.TriageNs[2];
    if (P.Triaged) {
      // Resolved by the static cascade: the verdict is final, so the
      // pair skips dedup and the prover fan-out entirely.
      ++Stats.TriagedPairs;
      switch (P.Tier) {
      case TriageTier::T1:
        ++Stats.TriageT1;
        break;
      case TriageTier::T2:
        ++Stats.TriageT2;
        break;
      case TriageTier::T3:
        ++Stats.TriageT3;
        break;
      case TriageTier::None:
        break;
      }
      Results[I].Result = P.Immediate;
      continue;
    }
    if (Opts.Analyzer.Triage)
      ++Stats.TriageEscalated;
    if (Opts.Analyzer.ReachPrepass) {
      // Model-based reachability pre-pass (docs/REACHABILITY.md): answer
      // the byte-parity fragment here, before dedup and the prover
      // fan-out. Runs only in this sequential phase, so verdicts stay
      // jobs-invariant; triage counters above are untouched either way.
      APT_TRACE_SPAN(Span, trace::SpanKind::Reach);
      auto ReachStart = std::chrono::steady_clock::now();
      if (!Reach)
        Reach = std::make_unique<ReachEngine>(Fields);
      std::optional<DepTestResult> RA = Reach->prepass(P.Axioms, P.S, P.T);
      Stats.ReachNs += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - ReachStart)
              .count());
      Stats.ReachModels = Reach->stats().ModelsBuilt;
      if (RA) {
        ++Stats.ReachPairs;
        if (RA->Verdict == DepVerdict::Yes)
          ++Stats.ReachYes;
        else
          ++Stats.ReachMaybe;
        Results[I].Result = *RA;
        continue;
      }
      ++Stats.ReachEscalated;
    }
    std::string Key = queryKey(P);
    auto [It, Inserted] = TaskIndex.emplace(Key, Tasks.size());
    if (Inserted) {
      Task T;
      T.Weight =
          kleeneWeight(P.S.Path.Path) + kleeneWeight(P.T.Path.Path);
      T.FirstSlot = I;
      T.Prepared = std::move(P);
      Tasks.push_back(std::move(T));
    } else {
      ++Stats.DedupSaved;
    }
    Tasks[It->second].Slots.push_back(I);
  }
  Stats.UniqueQueries += Tasks.size();
  double RunPrepareMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - PrepareStart)
                            .count();
  Stats.PrepareMs += RunPrepareMs;

  // Phase 2: fan the unique queries out, heaviest first.
  std::vector<size_t> Order(Tasks.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    if (Tasks[A].Weight != Tasks[B].Weight)
      return Tasks[A].Weight > Tasks[B].Weight;
    return Tasks[A].FirstSlot < Tasks[B].FirstSlot;
  });

  const unsigned Jobs = jobs();
  Stats.Jobs = Jobs;
  auto WallStart = std::chrono::steady_clock::now();
  std::clock_t CpuStart = std::clock();

  // Always-on per-query wall-time histogram: two steady_clock reads per
  // unique query, noise next to even the cheapest proof.
  metrics::Histogram &QueryWall =
      metrics::Registry::global().histogram("apt.batch.query_wall_us");
  auto RunTask = [&](Prover &P, Task &T) {
    auto T0 = std::chrono::steady_clock::now();
    T.Result = dependenceTest(T.Prepared.Axioms, T.Prepared.S,
                              T.Prepared.T, P);
    QueryWall.observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - T0)
            .count()));
  };
  // Per-run delta accumulators: worker provers are created fresh for this
  // run, so merging them here yields exactly this run's contribution —
  // suitable both for the cumulative Stats and for monotone counter adds
  // into the global metrics registry below.
  ProverStats RunProver;
  LangQuery::Stats RunLang;
  auto MergeWorker = [&](Prover &P) {
    RunProver += P.stats();
    const LangQuery::Stats &L = P.langQuery().stats();
    RunLang.SubsetQueries += L.SubsetQueries;
    RunLang.DisjointQueries += L.DisjointQueries;
    RunLang.CacheHits += L.CacheHits;
    RunLang.SharedCacheHits += L.SharedCacheHits;
    RunLang.DfaBuilt += L.DfaBuilt;
    RunLang.DfaStatesBuilt += L.DfaStatesBuilt;
    RunLang.DfaMinStates += L.DfaMinStates;
    RunLang.DfaStoreHits += L.DfaStoreHits;
    RunLang.AlphabetSymbols += L.AlphabetSymbols;
    RunLang.AlphabetClasses += L.AlphabetClasses;
    RunLang.ProductStatesExplored += L.ProductStatesExplored;
  };
  auto MakeProver = [&]() {
    Prover P(Fields, Opts.Prover);
    P.attachSharedGoalCache(SharedGoals);
    P.langQuery().attachSharedCache(SharedLang);
    return P;
  };

  if (Jobs <= 1 || Tasks.size() <= 1) {
    // Sequential path: one prover, plan order (the heaviest-first order
    // only matters for multi-thread tail latency).
    Prover P = MakeProver();
    for (Task &T : Tasks)
      RunTask(P, T);
    MergeWorker(P);
  } else {
    ThreadPool Pool(Jobs);
    std::vector<Prover> WorkerProvers;
    size_t NumSlots = std::min<size_t>(Jobs, Tasks.size());
    WorkerProvers.reserve(NumSlots);
    for (size_t I = 0; I < NumSlots; ++I)
      WorkerProvers.push_back(MakeProver());
    Pool.parallelForDynamic(Order.size(), [&](size_t Slot, size_t I) {
      RunTask(WorkerProvers[Slot], Tasks[Order[I]]);
    });
    for (Prover &P : WorkerProvers)
      MergeWorker(P);
  }

  Stats.Prover += RunProver;
  Stats.LangQueries += RunLang.SubsetQueries + RunLang.DisjointQueries;
  Stats.LangCacheHits += RunLang.CacheHits;
  Stats.LangSharedHits += RunLang.SharedCacheHits;
  Stats.DfaBuilt += RunLang.DfaBuilt;
  Stats.DfaStatesBuilt += RunLang.DfaStatesBuilt;
  Stats.DfaMinStates += RunLang.DfaMinStates;
  Stats.DfaStoreHits += RunLang.DfaStoreHits;
  Stats.AlphabetSymbols += RunLang.AlphabetSymbols;
  Stats.AlphabetClasses += RunLang.AlphabetClasses;
  Stats.ProductStates += RunLang.ProductStatesExplored;

  double RunWallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - WallStart)
                         .count();
  Stats.WallMs += RunWallMs;
  Stats.ProveMs += RunWallMs;
  Stats.CpuMs += 1000.0 * static_cast<double>(std::clock() - CpuStart) /
                 CLOCKS_PER_SEC;
  Stats.GoalCache = SharedGoals->stats();
  Stats.LangCache = SharedLang->stats();
  Stats.GoalCacheEntries = SharedGoals->size();
  Stats.LangCacheEntries = SharedLang->size();

  // Publish this run into the process-wide registry (the --metrics-json
  // surface). Worker provers are fresh per run, so their merged counters
  // are per-run deltas and add monotonically.
  {
    metrics::Registry &R = metrics::Registry::global();
    R.counter("apt.batch.runs").add(1);
    R.counter("apt.batch.queries").add(Queries.size());
    R.counter("apt.batch.unique_queries").add(Tasks.size());
    R.counter("apt.batch.direct_queries").add(Stats.DirectQueries - DirectBase);
    R.counter("apt.batch.dedup_saved").add(Stats.DedupSaved - DedupBase);
    R.counter("apt.triage.pairs").add(Stats.TriagedPairs - TriagedBase);
    R.counter("apt.triage.t1_kills").add(Stats.TriageT1 - TriageT1Base);
    R.counter("apt.triage.t2_kills").add(Stats.TriageT2 - TriageT2Base);
    R.counter("apt.triage.t3_kills").add(Stats.TriageT3 - TriageT3Base);
    R.counter("apt.triage.escalated")
        .add(Stats.TriageEscalated - EscalatedBase);
    R.counter("apt.reach.pairs").add(Stats.ReachPairs - ReachBase);
    R.counter("apt.reach.yes").add(Stats.ReachYes - ReachYesBase);
    R.counter("apt.reach.maybe").add(Stats.ReachMaybe - ReachMaybeBase);
    R.counter("apt.reach.escalated")
        .add(Stats.ReachEscalated - ReachEscBase);
    R.counter("apt.reach.wall_ns").add(Stats.ReachNs - ReachNsBase);
    R.gauge("apt.reach.models").set(Stats.ReachModels);
    R.counter("apt.prover.goals_explored").add(RunProver.GoalsExplored);
    R.counter("apt.prover.goal_cache_hits").add(RunProver.GoalCacheHits);
    R.counter("apt.prover.shared_goal_hits").add(RunProver.SharedGoalHits);
    R.counter("apt.prover.hypothesis_hits").add(RunProver.HypothesisHits);
    R.counter("apt.prover.alt_splits").add(RunProver.AltSplits);
    R.counter("apt.prover.inductions").add(RunProver.Inductions);
    R.counter("apt.prover.budget_exhausted").add(RunProver.BudgetExhausted);
    R.counter("apt.prover.verdict_memo_hits").add(RunProver.VerdictMemoHits);
    R.counter("apt.lang.queries")
        .add(RunLang.SubsetQueries + RunLang.DisjointQueries);
    R.counter("apt.lang.cache_hits").add(RunLang.CacheHits);
    R.counter("apt.lang.shared_hits").add(RunLang.SharedCacheHits);
    R.counter("apt.lang.dfa_built").add(RunLang.DfaBuilt);
    R.counter("apt.lang.dfa_states_built").add(RunLang.DfaStatesBuilt);
    R.counter("apt.lang.dfa_min_states").add(RunLang.DfaMinStates);
    R.counter("apt.lang.dfa_store_hits").add(RunLang.DfaStoreHits);
    R.counter("apt.lang.alphabet_symbols").add(RunLang.AlphabetSymbols);
    R.counter("apt.lang.alphabet_classes").add(RunLang.AlphabetClasses);
    R.counter("apt.lang.product_states").add(RunLang.ProductStatesExplored);
    // Process-wide arena accounting (support/Arena.h): cumulative alloc
    // traffic plus the worst per-arena high-water mark, so memory use of
    // the automata kernels is visible on the --metrics-json surface.
    ArenaStatsSnapshot Mem = Arena::statsSnapshot();
    R.gauge("apt.mem.arena_allocs").set(Mem.Allocs);
    R.gauge("apt.mem.arena_bytes").set(Mem.Bytes);
    R.gauge("apt.mem.arena_blocks").set(Mem.Blocks);
    R.gauge("apt.mem.arena_block_bytes").set(Mem.BlockBytes);
    R.gauge("apt.mem.arena_high_water").set(Mem.HighWaterMax);
    R.gauge("apt.mem.arena_enabled").set(Arena::enabledGlobal() ? 1 : 0);
    R.gauge("apt.batch.jobs").set(Jobs);
    R.histogram("apt.batch.run_wall_ms")
        .observe(static_cast<uint64_t>(RunWallMs));
    SharedGoals->publishMetrics("apt.cache.goal");
    SharedLang->publishMetrics("apt.cache.lang");
    // The store LangQuerys on this thread bind to: global() one-shot,
    // the session store under the service layer.
    MinDfaStore::threadDefault()->publishMetrics("apt.lang.dfa_store");
  }

  // Phase 3 (sequential): broadcast each unique verdict to its
  // duplicates, restoring plan order.
  auto BroadcastStart = std::chrono::steady_clock::now();
  for (const Task &T : Tasks)
    for (size_t Slot : T.Slots)
      Results[Slot].Result = T.Result;
  double RunBroadcastMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - BroadcastStart)
                              .count();
  Stats.BroadcastMs += RunBroadcastMs;

  // Phase-time histograms in whole microseconds: ms-resolution would
  // round the (fast) prepare and broadcast phases to zero.
  {
    metrics::Registry &R = metrics::Registry::global();
    R.histogram("apt.prof.prepare_us")
        .observe(static_cast<uint64_t>(RunPrepareMs * 1000.0));
    R.histogram("apt.prof.prove_us")
        .observe(static_cast<uint64_t>(RunWallMs * 1000.0));
    R.histogram("apt.prof.broadcast_us")
        .observe(static_cast<uint64_t>(RunBroadcastMs * 1000.0));
  }
  return Results;
}

std::string BatchStats::toString() const {
  char Buf[2048];
  double Parallelism = WallMs > 0 ? CpuMs / WallMs : 0.0;
  double TriageMs =
      static_cast<double>(TriageT1Ns + TriageT2Ns + TriageT3Ns) / 1e6;
  double ReachMs = static_cast<double>(ReachNs) / 1e6;
  std::snprintf(
      Buf, sizeof(Buf),
      "batch stats:\n"
      "  queries:    %llu (direct %llu, unique %llu, dedup-saved %llu, "
      "dedup ratio %.1f%%)\n"
      "  triage:     %llu pairs (t1 %llu, t2 %llu, t3 %llu, "
      "escalated %llu; %.2f ms)\n"
      "  reach:      %llu pairs (yes %llu, maybe %llu, escalated %llu; "
      "%llu models; %.2f ms)\n"
      "  jobs:       %u; wall %.2f ms, cpu %.2f ms (parallelism %.2fx)\n"
      "  prover:     %llu goals, %llu cache hits (%llu shared), "
      "%llu inductions, %llu alt splits\n"
      "  goal cache: %llu entries; %llu hits, %llu misses, %llu inserts\n"
      "  lang cache: %llu entries; %llu hits, %llu misses, %llu inserts "
      "(%llu lang queries, %llu DFAs built)\n"
      "  lang engine: %llu store hits, %llu states built -> %llu minimal, "
      "%llu syms -> %llu classes, %llu product states\n"
      "  time:       prepare %.2f ms, prove %.2f ms, broadcast %.2f ms\n",
      static_cast<unsigned long long>(Queries),
      static_cast<unsigned long long>(DirectQueries),
      static_cast<unsigned long long>(UniqueQueries),
      static_cast<unsigned long long>(DedupSaved), 100.0 * dedupRatio(),
      static_cast<unsigned long long>(TriagedPairs),
      static_cast<unsigned long long>(TriageT1),
      static_cast<unsigned long long>(TriageT2),
      static_cast<unsigned long long>(TriageT3),
      static_cast<unsigned long long>(TriageEscalated), TriageMs,
      static_cast<unsigned long long>(ReachPairs),
      static_cast<unsigned long long>(ReachYes),
      static_cast<unsigned long long>(ReachMaybe),
      static_cast<unsigned long long>(ReachEscalated),
      static_cast<unsigned long long>(ReachModels), ReachMs,
      Jobs, WallMs, CpuMs, Parallelism,
      static_cast<unsigned long long>(Prover.GoalsExplored),
      static_cast<unsigned long long>(Prover.GoalCacheHits),
      static_cast<unsigned long long>(Prover.SharedGoalHits),
      static_cast<unsigned long long>(Prover.Inductions),
      static_cast<unsigned long long>(Prover.AltSplits),
      static_cast<unsigned long long>(GoalCacheEntries),
      static_cast<unsigned long long>(GoalCache.Hits),
      static_cast<unsigned long long>(GoalCache.Misses),
      static_cast<unsigned long long>(GoalCache.Insertions),
      static_cast<unsigned long long>(LangCacheEntries),
      static_cast<unsigned long long>(LangCache.Hits),
      static_cast<unsigned long long>(LangCache.Misses),
      static_cast<unsigned long long>(LangCache.Insertions),
      static_cast<unsigned long long>(LangQueries),
      static_cast<unsigned long long>(DfaBuilt),
      static_cast<unsigned long long>(DfaStoreHits),
      static_cast<unsigned long long>(DfaStatesBuilt),
      static_cast<unsigned long long>(DfaMinStates),
      static_cast<unsigned long long>(AlphabetSymbols),
      static_cast<unsigned long long>(AlphabetClasses),
      static_cast<unsigned long long>(ProductStates), PrepareMs, ProveMs,
      BroadcastMs);
  return Buf;
}

BatchStats BatchStats::since(const BatchStats &Base) const {
  BatchStats D = *this;
  D.Queries -= Base.Queries;
  D.UniqueQueries -= Base.UniqueQueries;
  D.DirectQueries -= Base.DirectQueries;
  D.DedupSaved -= Base.DedupSaved;
  D.TriagedPairs -= Base.TriagedPairs;
  D.TriageT1 -= Base.TriageT1;
  D.TriageT2 -= Base.TriageT2;
  D.TriageT3 -= Base.TriageT3;
  D.TriageEscalated -= Base.TriageEscalated;
  D.TriageT1Ns -= Base.TriageT1Ns;
  D.TriageT2Ns -= Base.TriageT2Ns;
  D.TriageT3Ns -= Base.TriageT3Ns;
  D.ReachPairs -= Base.ReachPairs;
  D.ReachYes -= Base.ReachYes;
  D.ReachMaybe -= Base.ReachMaybe;
  D.ReachEscalated -= Base.ReachEscalated;
  D.ReachNs -= Base.ReachNs;
  // ReachModels is cumulative over the engine's lifetime (like the cache
  // entry counts): keep the current reading.
  D.Prover.GoalsExplored -= Base.Prover.GoalsExplored;
  D.Prover.GoalCacheHits -= Base.Prover.GoalCacheHits;
  D.Prover.SharedGoalHits -= Base.Prover.SharedGoalHits;
  D.Prover.HypothesisHits -= Base.Prover.HypothesisHits;
  D.Prover.AltSplits -= Base.Prover.AltSplits;
  D.Prover.Inductions -= Base.Prover.Inductions;
  D.Prover.BudgetExhausted -= Base.Prover.BudgetExhausted;
  D.LangQueries -= Base.LangQueries;
  D.LangCacheHits -= Base.LangCacheHits;
  D.LangSharedHits -= Base.LangSharedHits;
  D.DfaBuilt -= Base.DfaBuilt;
  D.DfaStatesBuilt -= Base.DfaStatesBuilt;
  D.DfaMinStates -= Base.DfaMinStates;
  D.DfaStoreHits -= Base.DfaStoreHits;
  D.AlphabetSymbols -= Base.AlphabetSymbols;
  D.AlphabetClasses -= Base.AlphabetClasses;
  D.ProductStates -= Base.ProductStates;
  D.GoalCache.Hits -= Base.GoalCache.Hits;
  D.GoalCache.Misses -= Base.GoalCache.Misses;
  D.GoalCache.Insertions -= Base.GoalCache.Insertions;
  D.LangCache.Hits -= Base.LangCache.Hits;
  D.LangCache.Misses -= Base.LangCache.Misses;
  D.LangCache.Insertions -= Base.LangCache.Insertions;
  D.WallMs -= Base.WallMs;
  D.CpuMs -= Base.CpuMs;
  D.PrepareMs -= Base.PrepareMs;
  D.ProveMs -= Base.ProveMs;
  D.BroadcastMs -= Base.BroadcastMs;
  // GoalCacheEntries / LangCacheEntries / Jobs are point-in-time values,
  // not deltas: keep the current reading.
  return D;
}
