//===- analysis/Collector.cpp ---------------------------------------------===//
//
// Part of the APT project; see Collector.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "analysis/Collector.h"

#include "core/AccessPath.h"
#include "support/Strings.h"

#include <cassert>

using namespace apt;

namespace {

/// Forward flow analysis over a function body. Blocks are walked up to
/// three times per loop: a symbolic pass (induction detection), the real
/// pass (APMs + refs), and an iteration-probe pass (loop-carried refs).
class Analyzer {
public:
  Analyzer(const Program &Prog, FieldTable &Fields,
           const AnalyzerOptions &Opts)
      : Prog(Prog), Fields(Fields), Opts(Opts) {}

  AnalysisResult run(const Function &F) {
    for (const auto &[Name, Type] : F.Params) {
      VarTypes[Name] = Type;
      State.set(freshHandle(Name), Name, Regex::epsilon());
    }
    Mode = PassMode::Real;
    transferBlock(F.Body);
    Result.NumEpochs = Epoch + 1;
    return std::move(Result);
  }

private:
  enum class PassMode { Real, Symbolic, IterProbe };

  const Program &Prog;
  FieldTable &Fields;
  AnalyzerOptions Opts;
  AnalysisResult Result;
  Apm State;
  std::map<std::string, std::string> VarTypes;
  std::map<std::string, int> HandleCount;
  int Epoch = 0;
  PassMode Mode = PassMode::Real;
  LoopSummary *ProbeSummary = nullptr; ///< Target of IterProbe recording.

  bool isPointerVar(const std::string &V) const {
    auto It = VarTypes.find(V);
    return It != VarTypes.end() && !It->second.empty();
  }

  std::string freshHandle(const std::string &Var) {
    int &C = HandleCount[Var];
    ++C;
    return "_h" + Var + (C > 1 ? std::to_string(C) : "");
  }

  const FieldDecl *fieldDecl(const std::string &Var,
                             const std::string &FieldName) const {
    auto It = VarTypes.find(Var);
    if (It == VarTypes.end() || It->second.empty())
      return nullptr;
    const TypeDecl *T = Prog.type(It->second);
    return T ? T->field(FieldName) : nullptr;
  }

  void transferBlock(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &S : Body)
      transferStmt(*S);
  }

  void transferStmt(const Stmt &S) {
    if (Mode == PassMode::Real)
      Result.Before[S.Id] = State;

    switch (S.Kind) {
    case StmtKind::PtrAssign:
      transferPtrAssign(S);
      return;
    case StmtKind::DataRead:
      recordRef(S, S.Base, S.FieldName, /*IsWrite=*/false);
      return;
    case StmtKind::DataWrite:
      recordRef(S, S.Base, S.FieldName, /*IsWrite=*/true);
      return;
    case StmtKind::StructWrite:
      recordRef(S, S.Base, S.FieldName, /*IsWrite=*/true);
      if (Mode == PassMode::Real)
        Result.StructWriteIds.push_back(S.Id);
      ++Epoch;
      // §3.4: a structural modification may invalidate collected paths.
      // The simplistic analysis re-anchors every pointer variable at a
      // fresh handle, deliberately losing all relational information --
      // "access paths for structurally read-only portions of the code"
      // only. The invariant-preserving mode keeps the paths, modeling
      // the paper's sophisticated analysis.
      if (!Opts.InvariantPreservingWrites)
        reanchorAllPointers();
      return;
    case StmtKind::Call:
      // An opaque callee may modify anything reachable from its pointer
      // arguments; treat it like a structural modification unless the
      // analysis assumes invariant-preserving mutators.
      if (Mode == PassMode::Real)
        Result.StructWriteIds.push_back(S.Id);
      ++Epoch;
      if (!Opts.InvariantPreservingWrites)
        reanchorAllPointers();
      return;
    case StmtKind::While:
      transferLoop(S);
      return;
    case StmtKind::If: {
      Apm Saved = State;
      transferBlock(S.Body);
      Apm ThenState = std::move(State);
      State = std::move(Saved);
      transferBlock(S.Else);
      State = Apm::join(ThenState, State);
      return;
    }
    }
    assert(false && "unknown statement kind");
  }

  void transferPtrAssign(const Stmt &S) {
    const std::string &Dst = S.Dst;
    switch (S.Rhs) {
    case PtrRhsKind::Var: {
      if (Dst == S.RhsVar)
        return;
      VarTypes[Dst] = VarTypes.count(S.RhsVar) ? VarTypes[S.RhsVar] : "";
      if (!isPointerVar(Dst))
        return;
      std::vector<std::pair<std::string, RegexRef>> Parents =
          State.pathsOf(S.RhsVar);
      State.copyVar(Dst, S.RhsVar);
      std::string H = freshHandle(Dst);
      State.set(H, Dst, Regex::epsilon());
      if (Mode == PassMode::Real)
        Result.HandleParents[H] = std::move(Parents);
      return;
    }
    case PtrRhsKind::VarField: {
      // p = q.f reads the pointer field q->f.
      recordRef(S, S.RhsVar, S.RhsField, /*IsWrite=*/false);
      const FieldDecl *FD = fieldDecl(S.RhsVar, S.RhsField);
      assert(FD && FD->isPointer() && "parser guarantees a pointer field");
      RegexRef Step = Regex::symbol(FD->Id);
      if (Dst == S.RhsVar) {
        // Self-relative: extend in place, keep the handles (the
        // induction-variable case of §3.3).
        State.extendVar(Dst, Step);
        return;
      }
      VarTypes[Dst] = FD->PointeeType;
      State.killVar(Dst);
      std::vector<std::pair<std::string, RegexRef>> Parents;
      for (const auto &[Handle, Path] : State.pathsOf(S.RhsVar)) {
        RegexRef Extended = Regex::concat(Path, Step);
        State.set(Handle, Dst, Extended);
        Parents.emplace_back(Handle, Extended);
      }
      std::string H = freshHandle(Dst);
      State.set(H, Dst, Regex::epsilon());
      if (Mode == PassMode::Real)
        Result.HandleParents[H] = std::move(Parents);
      return;
    }
    case PtrRhsKind::New: {
      VarTypes[Dst] = S.RhsType;
      State.killVar(Dst);
      // Fresh memory: reachable from no existing handle.
      std::string H = freshHandle(Dst);
      State.set(H, Dst, Regex::epsilon());
      if (Mode == PassMode::Real)
        Result.HandleAllocSite[H] = S.Id;
      return;
    }
    case PtrRhsKind::Null:
      if (isPointerVar(Dst))
        State.killVar(Dst);
      return;
    }
    assert(false && "unknown rhs kind");
  }

  void reanchorAllPointers() {
    for (const auto &[Var, Type] : VarTypes) {
      if (Type.empty())
        continue;
      State.killVar(Var);
      State.set(freshHandle(Var), Var, Regex::epsilon());
    }
  }

  void recordRef(const Stmt &S, const std::string &Base,
                 const std::string &FieldName, bool IsWrite) {
    if (S.Label.empty())
      return;
    const FieldDecl *FD = fieldDecl(Base, FieldName);
    assert(FD && "parser guarantees the field exists");

    if (Mode == PassMode::IterProbe && ProbeSummary) {
      // Record the path re-anchored at an induction variable's
      // start-of-iteration value, if one anchors this reference.
      for (const auto &[Handle, Path] : State.pathsOf(Base)) {
        if (Handle.rfind("@iter:", 0) != 0)
          continue;
        ProbeSummary->IterRefs[S.Label] = {Handle.substr(6), Path};
        break;
      }
      return;
    }
    if (Mode != PassMode::Real)
      return;

    CollectedRef R;
    R.StmtId = S.Id;
    R.Label = S.Label;
    R.TypeName = VarTypes[Base];
    R.Field = FD->Id;
    R.IsWrite = IsWrite;
    R.Epoch = Epoch;
    for (const auto &[Handle, Path] : State.pathsOf(Base))
      R.Paths[Handle] = Path;
    Result.Refs[S.Label] = std::move(R);
  }

  void transferLoop(const Stmt &S) {
    // Pass 1 (symbolic): detect the body's net effect on each pointer
    // variable. Every variable starts as `v -> eps` from pseudo-handle
    // @v; afterwards, a sole entry (@v, w) means `v := v.w` per
    // iteration (an induction variable), (@v, eps) means untouched, and
    // anything else means clobbered.
    LoopSummary Sum;
    Sum.StmtId = S.Id;
    {
      Apm SavedState = State;
      PassMode SavedMode = Mode;
      int SavedEpoch = Epoch;
      auto SavedTypes = VarTypes;
      State = Apm();
      for (const auto &[Var, Type] : VarTypes)
        if (!Type.empty())
          State.set("@" + Var, Var, Regex::epsilon());
      Mode = PassMode::Symbolic;
      transferBlock(S.Body);
      Sum.HasStructWrite = Epoch != SavedEpoch;

      for (const auto &[Var, Type] : SavedTypes) {
        if (Type.empty())
          continue;
        std::vector<std::pair<std::string, RegexRef>> Paths =
            State.pathsOf(Var);
        if (Paths.size() == 1 && Paths.front().first == "@" + Var) {
          if (Paths.front().second->isEpsilon())
            Sum.Invariant.insert(Var); // Same vertex every iteration.
          else
            Sum.Induction[Var] = Paths.front().second;
        } else {
          Sum.Clobbered.insert(Var);
        }
      }
      State = std::move(SavedState);
      Mode = SavedMode;
      Epoch = SavedEpoch;
      VarTypes = std::move(SavedTypes);
    }

    // Pass 2: summarize onto the current state. At the head of any
    // iteration, an induction variable has advanced by (w)*; clobbered
    // variables are iteration-local and get fresh (per-iteration)
    // handles.
    for (const auto &[Var, Inc] : Sum.Induction)
      State.extendVar(Var, Regex::star(Inc));
    for (const std::string &Var : Sum.Clobbered) {
      State.killVar(Var);
      State.set(freshHandle(Var), Var, Regex::epsilon());
    }

    // Pass 3 (real): walk the body once from the summarized head state,
    // recording APMs and refs. The post-loop state is the head state
    // itself (it covers "after any number of iterations", including
    // zero).
    Apm HeadState = State;
    int EpochAtHead = Epoch;
    transferBlock(S.Body);
    State = std::move(HeadState);
    // Structural writes in the body advanced the epoch; keep the
    // advanced value so later refs are in a later epoch, but restore the
    // head APM (conservatively re-anchored if the body modified).
    if (Epoch != EpochAtHead && Mode == PassMode::Real &&
        !Opts.InvariantPreservingWrites)
      reanchorAllPointers();

    // Pass 4 (iteration probe): collect per-iteration access paths
    // anchored at the induction and invariant variables for loop-carried
    // queries.
    if (Mode == PassMode::Real &&
        (!Sum.Induction.empty() || !Sum.Invariant.empty())) {
      Apm SavedState = std::move(State);
      PassMode SavedMode = Mode;
      int SavedEpoch = Epoch;
      auto SavedTypes = VarTypes;
      LoopSummary *SavedProbe = ProbeSummary;

      State = Apm();
      for (const auto &[Var, Inc] : Sum.Induction)
        State.set("@iter:" + Var, Var, Regex::epsilon());
      for (const std::string &Var : Sum.Invariant)
        State.set("@iter:" + Var, Var, Regex::epsilon());
      Mode = PassMode::IterProbe;
      ProbeSummary = &Sum;
      transferBlock(S.Body);

      State = std::move(SavedState);
      Mode = SavedMode;
      Epoch = SavedEpoch;
      VarTypes = std::move(SavedTypes);
      ProbeSummary = SavedProbe;
    }

    if (Mode == PassMode::Real)
      Result.Loops[S.Id] = std::move(Sum);
  }
};

} // namespace

AnalysisResult apt::analyzeFunction(const Program &Prog, const Function &F,
                                    FieldTable &Fields,
                                    const AnalyzerOptions &Opts) {
  return Analyzer(Prog, Fields, Opts).run(F);
}

//===----------------------------------------------------------------------===//
// dumpAnalysis
//===----------------------------------------------------------------------===//

namespace {

/// One-line rendering of a statement for the dump (no nesting).
std::string stmtHeadline(const Stmt &S) {
  std::string Out = "#" + std::to_string(S.Id);
  if (!S.Label.empty())
    Out += " [" + S.Label + "]";
  switch (S.Kind) {
  case StmtKind::PtrAssign:
    Out += " " + S.Dst + " = ...";
    break;
  case StmtKind::DataWrite:
    Out += " " + S.Base + "." + S.FieldName + " = <data>";
    break;
  case StmtKind::DataRead:
    Out += " " + S.DataVar + " = " + S.Base + "." + S.FieldName;
    break;
  case StmtKind::StructWrite:
    Out += " " + S.Base + "." + S.FieldName + " = <ptr>";
    break;
  case StmtKind::While:
    Out += " while " + S.CondVar;
    break;
  case StmtKind::If:
    Out += " if " + S.CondVar;
    break;
  case StmtKind::Call:
    Out += " call " + S.Callee + "(...)";
    break;
  }
  return Out;
}

void dumpBlock(const std::vector<StmtPtr> &Body, const AnalysisResult &R,
               const FieldTable &Fields, unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  for (const StmtPtr &S : Body) {
    Out += Pad + stmtHeadline(*S) + "\n";
    auto It = R.Before.find(S->Id);
    if (It != R.Before.end() && !It->second.empty()) {
      for (const std::string &Line :
           splitNonEmpty(It->second.toString(Fields), '\n'))
        Out += Pad + "  " + Line + "\n";
    }
    dumpBlock(S->Body, R, Fields, Indent + 1, Out);
    if (!S->Else.empty()) {
      Out += Pad + "else:\n";
      dumpBlock(S->Else, R, Fields, Indent + 1, Out);
    }
  }
}

} // namespace

std::string apt::dumpAnalysis(const AnalysisResult &R, const Function &F,
                              const FieldTable &Fields) {
  std::string Out = "== analysis of fn " + F.Name + " ==\n";
  Out += "epochs: " + std::to_string(R.NumEpochs) + "; structural writes:";
  if (R.StructWriteIds.empty())
    Out += " none";
  for (int Id : R.StructWriteIds)
    Out += " #" + std::to_string(Id);
  Out += "\n\nstatements (APM shown before each):\n";
  dumpBlock(F.Body, R, Fields, 1, Out);

  if (!R.Refs.empty()) {
    Out += "\nlabeled references:\n";
    for (const auto &[Label, Ref] : R.Refs) {
      Out += "  " + Label + ": " + Ref.TypeName + "." +
             Fields.name(Ref.Field) + (Ref.IsWrite ? " write" : " read") +
             " (epoch " + std::to_string(Ref.Epoch) + ")";
      for (const auto &[Handle, Path] : Ref.Paths)
        Out += "  " + AccessPath(Handle, Path).toString(Fields);
      Out += "\n";
    }
  }

  if (!R.Loops.empty()) {
    Out += "\nloops:\n";
    for (const auto &[Id, Sum] : R.Loops) {
      Out += "  loop #" + std::to_string(Id) + ":";
      for (const auto &[Var, Inc] : Sum.Induction)
        Out += " " + Var + " += " + Inc->toString(Fields);
      for (const std::string &Var : Sum.Invariant)
        Out += " " + Var + " (invariant)";
      if (Sum.HasStructWrite)
        Out += " [modifies structure]";
      Out += "\n";
      for (const auto &[Label, VP] : Sum.IterRefs)
        Out += "    iter-ref " + Label + ": " +
               AccessPath("@" + VP.first, VP.second).toString(Fields) +
               "\n";
    }
  }

  if (!R.HandleParents.empty()) {
    Out += "\nhandle provenance:\n";
    for (const auto &[Handle, Parents] : R.HandleParents) {
      Out += "  " + Handle + " =";
      for (const auto &[Parent, Path] : Parents)
        Out += " " + AccessPath(Parent, Path).toString(Fields);
      Out += "\n";
    }
  }
  return Out;
}
