//===- analysis/TraceExport.cpp -------------------------------------------===//
//
// Part of the APT project; see TraceExport.h for the record schema.
//
//===----------------------------------------------------------------------===//

#include "analysis/TraceExport.h"

#include "core/ProofChecker.h"
#include "core/ProofJson.h"
#include "support/Clock.h"
#include "support/Json.h"
#include "support/Version.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

using namespace apt;

namespace {

/// 64-bit hashes render as fixed-width hex strings: JSON integers are
/// signed, and a top-bit hash must survive the round trip.
std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

void writeLine(std::ostream &OS, const JsonValue &V) {
  OS << V.dump() << '\n';
}

JsonValue headerRecord(const char *Mode, uint64_t RequestId) {
  JsonValue::Object O;
  O.emplace("build", version::buildJson());
  O.emplace("format", "apt-trace");
  O.emplace("mode", Mode);
  if (RequestId) // daemon-served run: correlates with the slow-request log
    O.emplace("request", RequestId);
  O.emplace("type", "header");
  O.emplace("version", 1);
  return JsonValue(std::move(O));
}

JsonValue verdictRecord(size_t Index, const DepTestResult &R) {
  JsonValue::Object O;
  O.emplace("index", static_cast<uint64_t>(Index));
  O.emplace("kind", depKindName(R.Kind));
  O.emplace("reason", R.Reason);
  O.emplace("type", "verdict");
  O.emplace("verdict", depVerdictName(R.Verdict));
  return JsonValue(std::move(O));
}

JsonValue memRefToJson(const MemRef &M, const FieldTable &Fields) {
  JsonValue::Object O;
  O.emplace("field", Fields.name(M.Field));
  O.emplace("handle", M.Path.Handle);
  O.emplace("path", M.Path.Path->toString(Fields));
  O.emplace("type_name", M.TypeName);
  O.emplace("write", M.IsWrite);
  return JsonValue(std::move(O));
}

/// Re-derives a self-contained proof for a prover-established No verdict
/// and appends the proof record. The fresh prover has no shared caches
/// attached, so Rule::Cached nodes can only reference goals inside this
/// tree -- exactly what ProofChecker demands of a standalone proof.
bool emitProofRecord(std::ostream &OS, size_t Index, const AxiomSet &Axioms,
                     const MemRef &S, const MemRef &T,
                     const FieldTable &Fields, ProverOptions Opts) {
  Opts.RecordProof = true;
  Prover Fresh(Fields, Opts);
  DepTestResult R = dependenceTest(Axioms, S, T, Fresh);
  if (R.Verdict != DepVerdict::No || !Fresh.proof())
    return false;
  JsonValue::Object O;
  O.emplace("axioms", axiomSetToJson(Axioms, Fields));
  O.emplace("index", static_cast<uint64_t>(Index));
  O.emplace("proof", proofToJson(*Fresh.proof(), Fields));
  O.emplace("s", memRefToJson(S, Fields));
  O.emplace("t", memRefToJson(T, Fields));
  O.emplace("type", "proof");
  writeLine(OS, JsonValue(std::move(O)));
  return true;
}

/// Drains \p Events into event records. Nondeterministic section of the
/// trace; canonicalTrace removes it.
void emitEvents(std::ostream &OS, trace::Collector *Events,
                TraceWriteStats &Stats) {
  if (!Events)
    return;
  for (trace::Collector::ThreadBatch &B : Events->drain()) {
    Stats.Dropped += B.Dropped;
    for (const trace::Event &E : B.Events) {
      JsonValue::Object O;
      if (E.Aux)
        O.emplace("aux", hex64(E.Aux));
      if (E.Depth)
        O.emplace("depth", E.Depth);
      if (E.Flag)
        O.emplace("flag", static_cast<uint64_t>(E.Flag));
      if (E.GoalHash)
        O.emplace("goal", hex64(E.GoalHash));
      O.emplace("kind", trace::eventKindName(E.Kind));
      if (E.Tick) // timed mode: absolute timestamp in nanoseconds
        O.emplace("ns", fastclock::ticksToNanos(E.Tick));
      if (E.QueryId)
        O.emplace("query", E.QueryId);
      O.emplace("seq", E.Seq);
      O.emplace("thread", B.ThreadTag);
      O.emplace("type", "event");
      writeLine(OS, JsonValue(std::move(O)));
      ++Stats.Events;
    }
  }
}

void emitSummary(std::ostream &OS, const TraceWriteStats &Stats) {
  JsonValue::Object O;
  O.emplace("dropped", Stats.Dropped);
  O.emplace("events", static_cast<uint64_t>(Stats.Events));
  O.emplace("proofs", static_cast<uint64_t>(Stats.Proofs));
  O.emplace("type", "summary");
  O.emplace("verdicts", static_cast<uint64_t>(Stats.Verdicts));
  writeLine(OS, JsonValue(std::move(O)));
}

} // namespace

TraceWriteStats apt::writeBatchTrace(std::ostream &OS,
                                     const BatchQueryEngine &Engine,
                                     const std::vector<BatchResult> &Results,
                                     const FieldTable &Fields,
                                     trace::Collector *Events,
                                     uint64_t RequestId) {
  TraceWriteStats Stats;
  writeLine(OS, headerRecord("batch", RequestId));
  for (size_t I = 0; I < Results.size(); ++I) {
    const BatchResult &BR = Results[I];
    JsonValue V = verdictRecord(I, BR.Result);
    V.asObject().emplace("func", BR.Query.Func);
    V.asObject().emplace("s", BR.Query.LabelS);
    V.asObject().emplace("t", BR.Query.LabelT);
    writeLine(OS, V);
    ++Stats.Verdicts;
  }
  // Proof records only exist for No verdicts the *prover* established;
  // direct answers (type/field mismatches, missing labels) carry their
  // whole justification in the verdict's reason already.
  for (size_t I = 0; I < Results.size(); ++I) {
    const BatchResult &BR = Results[I];
    if (BR.Result.Verdict != DepVerdict::No || BR.Result.ProofText.empty())
      continue;
    const DepQueryEngine *E = Engine.engineFor(BR.Query.Func);
    if (!E)
      continue;
    PreparedQuery P =
        E->prepareStatementPair(BR.Query.LabelS, BR.Query.LabelT);
    if (P.Direct)
      continue;
    if (emitProofRecord(OS, I, P.Axioms, P.S, P.T, Fields,
                        Engine.options().Prover))
      ++Stats.Proofs;
  }
  emitEvents(OS, Events, Stats);
  emitSummary(OS, Stats);
  return Stats;
}

TraceWriteStats apt::writeProveTrace(std::ostream &OS, const AxiomSet &Axioms,
                                     const RegexRef &P, const RegexRef &Q,
                                     const FieldTable &Fields,
                                     const ProverOptions &Opts,
                                     trace::Collector *Events,
                                     uint64_t RequestId) {
  TraceWriteStats Stats;
  writeLine(OS, headerRecord("prove", RequestId));
  ProverOptions Fresh = Opts;
  Fresh.RecordProof = true;
  Prover Prover_(Fields, Fresh);
  bool Proved = Prover_.proveDisjoint(Axioms, P, Q);
  {
    JsonValue::Object O;
    O.emplace("index", 0);
    O.emplace("p", P->toString(Fields));
    O.emplace("q", Q->toString(Fields));
    O.emplace("type", "verdict");
    O.emplace("verdict", Proved ? "No" : "Maybe");
    O.emplace("reason", Proved ? "disjointness proved"
                               : "no proof of independence found");
    writeLine(OS, JsonValue(std::move(O)));
    ++Stats.Verdicts;
  }
  if (Proved && Prover_.proof()) {
    JsonValue::Object O;
    O.emplace("axioms", axiomSetToJson(Axioms, Fields));
    O.emplace("index", 0);
    O.emplace("proof", proofToJson(*Prover_.proof(), Fields));
    O.emplace("type", "proof");
    writeLine(OS, JsonValue(std::move(O)));
    ++Stats.Proofs;
  }
  emitEvents(OS, Events, Stats);
  emitSummary(OS, Stats);
  return Stats;
}

TraceWriteStats apt::writePairTrace(std::ostream &OS, const AxiomSet &Axioms,
                                    const MemRef &S, const MemRef &T,
                                    const DepTestResult &R,
                                    const FieldTable &Fields,
                                    const ProverOptions &Opts,
                                    trace::Collector *Events,
                                    uint64_t RequestId) {
  TraceWriteStats Stats;
  writeLine(OS, headerRecord("pair", RequestId));
  JsonValue V = verdictRecord(0, R);
  V.asObject().emplace("s", memRefToJson(S, Fields));
  V.asObject().emplace("t", memRefToJson(T, Fields));
  writeLine(OS, V);
  ++Stats.Verdicts;
  if (R.Verdict == DepVerdict::No && !R.ProofText.empty() &&
      emitProofRecord(OS, 0, Axioms, S, T, Fields, Opts))
    ++Stats.Proofs;
  emitEvents(OS, Events, Stats);
  emitSummary(OS, Stats);
  return Stats;
}

ReplayReport apt::replayTrace(std::istream &In, FieldTable &Fields) {
  ReplayReport Report;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    ++Report.Lines;
    JsonParseResult P = parseJson(Line);
    if (!P) {
      ++Report.Failed;
      Report.Errors.push_back("line " + std::to_string(LineNo) + ": " +
                              P.Error);
      continue;
    }
    if (!P.Value["type"].isString() || P.Value["type"].asString() != "proof")
      continue;
    ++Report.ProofRecords;
    auto Fail = [&](const std::string &Msg) {
      ++Report.Failed;
      Report.Errors.push_back("line " + std::to_string(LineNo) + ": " + Msg);
    };
    AxiomSet Axioms;
    std::string Error;
    if (!axiomSetFromJson(P.Value["axioms"], Fields, Axioms, Error)) {
      Fail(Error);
      continue;
    }
    ProofFromJsonResult Proof = proofFromJson(P.Value["proof"], Fields);
    if (!Proof) {
      Fail(Proof.Error);
      continue;
    }
    LangQuery Lang;
    ProofCheckResult Check = checkProof(*Proof.Value, Axioms, Lang);
    if (!Check) {
      Fail("proof rejected: " + Check.Error);
      continue;
    }
    ++Report.Replayed;
  }
  return Report;
}

std::string apt::canonicalTrace(const std::string &TraceText) {
  std::vector<std::string> Kept;
  std::istringstream In(TraceText);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    JsonParseResult P = parseJson(Line);
    if (!P)
      continue;
    const std::string &Type =
        P.Value["type"].isString() ? P.Value["type"].asString() : "";
    if (Type != "verdict" && Type != "proof")
      continue;
    // Re-dump rather than keep the raw line: field order and spacing
    // normalize, so producers are free to format differently.
    Kept.push_back(P.Value.dump());
  }
  std::sort(Kept.begin(), Kept.end());
  std::string Out;
  for (const std::string &L : Kept) {
    Out += L;
    Out += '\n';
  }
  return Out;
}
