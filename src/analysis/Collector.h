//===- analysis/Collector.h - Access-path collection ------------*- C++ -*-===//
//
// Part of the APT project; see Apm.h for the matrices this flow analysis
// computes.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-reference analysis of paper §3.2-§3.4: a forward flow
/// analysis over the mini pointer language that
///
///  * maintains an access path matrix per program point (fresh handle per
///    assignment, self-relative updates extend in place, dead handles
///    collected),
///  * detects loop induction variables (`p = p.f...` net effects) and
///    summarizes loops by appending `(w)*` to the induction variable's
///    paths,
///  * records every *labeled* memory reference with its candidate access
///    paths, and
///  * tracks structural modifications (pointer-field writes) by stamping
///    every reference with an epoch, so dependence queries that span a
///    modification can intersect axiom sets (§3.4).
///
/// Handles created inside a loop body denote iteration-local vertices;
/// queries between different iterations must use the loop's induction
/// summary (see DepQueries.h) rather than those handles.
///
//===----------------------------------------------------------------------===//

#ifndef APT_ANALYSIS_COLLECTOR_H
#define APT_ANALYSIS_COLLECTOR_H

#include "analysis/Apm.h"
#include "ir/Ast.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace apt {

/// A labeled memory reference `base.field` with the access paths that may
/// describe `base` at that point.
struct CollectedRef {
  int StmtId = -1;
  std::string Label;
  std::string TypeName;  ///< Declared structure type of the base pointer.
  FieldId Field = 0;     ///< Field accessed.
  bool IsWrite = false;
  int Epoch = 0;         ///< Structural-modification epoch (§3.4).
  /// Candidate (handle -> path) pairs for the base pointer.
  std::map<std::string, RegexRef> Paths;
};

/// Summary of one loop.
struct LoopSummary {
  int StmtId = -1;
  /// Induction variables: per-iteration increment regex (w in `p := p.w`).
  std::map<std::string, RegexRef> Induction;
  /// Pointer variables the body provably never changes (their "increment"
  /// is epsilon: every iteration sees the same vertex).
  std::set<std::string> Invariant;
  /// Pointer variables the body modifies in a way that has no `p := p.w`
  /// net effect (reanchored or control-dependent): the loop carries no
  /// computable summary for them, so loop-carried queries about them are
  /// answered Maybe. Front-end lint warns when a loop has only these.
  std::set<std::string> Clobbered;
  /// Whether the body performs structural modifications.
  bool HasStructWrite = false;
  /// Labeled refs inside the body, re-anchored at the loop's induction
  /// variables: label -> (induction var, path from the var's value at the
  /// start of the iteration). Used for loop-carried queries.
  std::map<std::string, std::pair<std::string, RegexRef>> IterRefs;
};

/// Everything the analysis produced for one function.
struct AnalysisResult {
  /// APM holding *before* each statement id executes.
  std::map<int, Apm> Before;
  /// Labeled refs, keyed by label.
  std::map<std::string, CollectedRef> Refs;
  /// Loop summaries keyed by the while-statement id.
  std::map<int, LoopSummary> Loops;
  /// Statement ids of structural modifications, in program order.
  std::vector<int> StructWriteIds;
  /// Final epoch count (number of structural-modification boundaries + 1).
  int NumEpochs = 1;
  /// Handle provenance: at its creation, each handle's vertex was
  /// reachable from these parent handles along these paths (the paper's
  /// "relationship between the two handles", §4.1). Fresh-allocation and
  /// post-modification handles have no parents.
  std::map<std::string, std::vector<std::pair<std::string, RegexRef>>>
      HandleParents;
  /// Allocation provenance: handles born at a `p = new T` statement,
  /// mapped to that statement's id. A reference carrying an epsilon-path
  /// entry for such a handle definitely names that allocation's vertex
  /// (consumed by the triage cascade's tier 2, analysis/Triage.h).
  std::map<std::string, int> HandleAllocSite;
};

/// Knobs for the collector, mirroring the two analyses of §5.
struct AnalyzerOptions {
  /// When true, structural writes are assumed to preserve the declared
  /// data-structure invariants and previously collected access paths
  /// (the paper's "more sophisticated analysis capable of handling
  /// modifications" -- the *fully parallel* configuration). When false,
  /// every structural write re-anchors all pointer variables, losing
  /// relational information (the "simplistic analysis" -- *partially
  /// parallel*).
  bool InvariantPreservingWrites = false;
  /// Run the static triage cascade (analysis/Triage.h) on every prepared
  /// statement pair before the prover. Default on; `aptc --triage=off`
  /// disables it. Verdicts are identical either way.
  bool Triage = true;
  /// Run the model-based reachability pre-pass (reach/ReachEngine.h) on
  /// every pair that escapes triage, answering the byte-parity fragment
  /// before dedup and the prover fan-out. Default off;
  /// `aptc --reach-prepass on` enables it. Verdicts are identical either
  /// way (ctest-gated; see docs/REACHABILITY.md).
  bool ReachPrepass = false;
};

/// Runs the access-path analysis over \p F. \p Prog supplies the type
/// declarations (field kinds and per-type axioms).
AnalysisResult analyzeFunction(const Program &Prog, const Function &F,
                               FieldTable &Fields,
                               const AnalyzerOptions &Opts = {});

/// Renders a human-readable report of \p R: per-statement APMs, labeled
/// references with their candidate paths, loop summaries (induction and
/// invariant variables, iteration-anchored refs), handle provenance and
/// modification epochs. Used by `aptc dump` and by tests as a golden
/// view of the analysis.
std::string dumpAnalysis(const AnalysisResult &R, const Function &F,
                         const FieldTable &Fields);

} // namespace apt

#endif // APT_ANALYSIS_COLLECTOR_H
